#include <gtest/gtest.h>

#include "src/mcusim/profiler.hpp"
#include "src/nb201/features.hpp"
#include "src/search/pruning_search.hpp"

namespace micronas {
namespace {

struct Fixture {
  std::unique_ptr<LatencyEstimator> estimator;
  std::unique_ptr<ProxySuite> suite;
  std::unique_ptr<SupernetHwModel> hw;

  explicit Fixture(std::uint64_t seed = 1) {
    Rng rng(seed);
    ProfilerOptions popts;
    popts.deterministic = true;
    LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, popts);
    estimator = std::make_unique<LatencyEstimator>(
        std::move(table), profile_constant_overhead_ms(McuSpec{}, rng, popts));

    ProxySuiteConfig cfg;
    cfg.proxy_net.input_size = 8;
    cfg.proxy_net.base_channels = 4;
    cfg.lr.grid = 8;
    cfg.lr.input_size = 8;
    Tensor probe(Shape{8, 3, 8, 8});
    Rng data_rng(seed + 100);
    data_rng.fill_normal(probe.data());
    suite = std::make_unique<ProxySuite>(cfg, std::move(probe), estimator.get());
    hw = std::make_unique<SupernetHwModel>(MacroNetConfig{}, estimator.get());
  }
};

TEST(PruningSearch, ReducesToSingletonIn84Evals) {
  Fixture f;
  PruningSearchConfig cfg;
  cfg.weights = IndicatorWeights::te_nas();
  Rng rng(2);
  const PruningSearchResult res = pruning_search(*f.suite, *f.hw, cfg, rng);
  // 6*(5+4+3+2) = 84 candidate evaluations, 24 prune decisions.
  EXPECT_EQ(res.proxy_evals, 84);
  EXPECT_EQ(res.decisions.size(), 24U);
  // The result is a valid concrete genotype (constructible, encodable).
  EXPECT_GE(res.genotype.index(), 0);
  EXPECT_LT(res.genotype.index(), nb201::kNumArchitectures);
}

TEST(PruningSearch, DecisionsCoverEveryEdgeEveryRound) {
  Fixture f;
  PruningSearchConfig cfg;
  Rng rng(3);
  const PruningSearchResult res = pruning_search(*f.suite, *f.hw, cfg, rng);
  std::array<std::array<int, nb201::kNumEdges>, 4> seen{};
  for (const auto& d : res.decisions) {
    ASSERT_GE(d.round, 0);
    ASSERT_LT(d.round, 4);
    ++seen[static_cast<std::size_t>(d.round)][static_cast<std::size_t>(d.edge)];
  }
  for (int r = 0; r < 4; ++r) {
    for (int e = 0; e < nb201::kNumEdges; ++e) {
      EXPECT_EQ(seen[static_cast<std::size_t>(r)][static_cast<std::size_t>(e)], 1)
          << "round " << r << " edge " << e;
    }
  }
}

TEST(PruningSearch, LatencyWeightPullsTowardFasterCells) {
  // The paper's core hardware-aware claim: adding a latency term to the
  // objective steers pruning toward cheaper cells. With a strong weight
  // the discovered model must be no slower than the trainless baseline.
  Fixture f_base(11), f_hw(11);
  Rng rng_a(4), rng_b(4);

  PruningSearchConfig base_cfg;
  base_cfg.weights = IndicatorWeights::te_nas();
  const auto base = pruning_search(*f_base.suite, *f_base.hw, base_cfg, rng_a);

  PruningSearchConfig hw_cfg;
  hw_cfg.weights = IndicatorWeights::latency_guided(3.0);
  const auto fast = pruning_search(*f_hw.suite, *f_hw.hw, hw_cfg, rng_b);

  const double base_ms = f_base.estimator->estimate_ms(build_macro_model(base.genotype));
  const double fast_ms = f_hw.estimator->estimate_ms(build_macro_model(fast.genotype));
  EXPECT_LE(fast_ms, base_ms * 1.001);
}

TEST(PruningSearch, RejectsBadConfig) {
  Fixture f;
  PruningSearchConfig cfg;
  cfg.proxy_repeats = 0;
  Rng rng(5);
  EXPECT_THROW(pruning_search(*f.suite, *f.hw, cfg, rng), std::invalid_argument);
}

TEST(PruningSearch, WallTimeRecorded) {
  Fixture f;
  PruningSearchConfig cfg;
  Rng rng(6);
  const auto res = pruning_search(*f.suite, *f.hw, cfg, rng);
  EXPECT_GT(res.wall_seconds, 0.0);
}


class PruningWeightsTest : public ::testing::TestWithParam<IndicatorWeights> {};

TEST_P(PruningWeightsTest, NeverReturnsUntrainableCell) {
  // The connectivity guard must hold under every weighting, including
  // pathological hardware-only objectives that would otherwise strip
  // the cell bare: the discovered genotype always keeps a live
  // input->output path.
  Fixture f(77);
  PruningSearchConfig cfg;
  cfg.weights = GetParam();
  Rng rng(7);
  const auto res = pruning_search(*f.suite, *f.hw, cfg, rng);
  EXPECT_TRUE(nb201::analyze_cell(res.genotype).connected) << res.genotype.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    WeightSweep, PruningWeightsTest,
    ::testing::Values(IndicatorWeights::te_nas(), IndicatorWeights::latency_guided(8.0),
                      IndicatorWeights::flops_guided(8.0),
                      IndicatorWeights{0.0, 0.0, 1.0, 1.0},   // hardware only
                      IndicatorWeights{0.0, 1.0, 0.0, 4.0}));

}  // namespace
}  // namespace micronas
