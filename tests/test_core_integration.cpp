// End-to-end integration tests of the MicroNas facade: profiling,
// probe-batch synthesis, pruning search, adaptive weights and final
// reporting all wired together — the full Fig. 1 pipeline.
#include <gtest/gtest.h>

#include "src/core/micronas.hpp"

namespace micronas {
namespace {

MicroNasConfig fast_config() {
  MicroNasConfig cfg;
  cfg.batch_size = 6;
  cfg.proxy_net.input_size = 8;
  cfg.proxy_net.base_channels = 4;
  cfg.lr.grid = 8;
  cfg.lr.input_size = 8;
  cfg.profiler.deterministic = true;
  cfg.seed = 7;
  return cfg;
}

TEST(MicroNasIntegration, SearchProducesCompleteReport) {
  MicroNas nas(fast_config());
  const DiscoveredModel model = nas.search();

  EXPECT_GE(model.genotype.index(), 0);
  EXPECT_LT(model.genotype.index(), nb201::kNumArchitectures);
  EXPECT_GE(model.indicators.ntk_condition, 1.0);
  EXPECT_GT(model.indicators.linear_regions, 0.0);
  EXPECT_GT(model.indicators.flops_m, 0.0);
  EXPECT_GT(model.indicators.params_m, 0.0);
  EXPECT_GT(model.indicators.latency_ms, 0.0);
  EXPECT_GT(model.indicators.peak_sram_kb, 0.0);
  EXPECT_GT(model.accuracy, 10.0);
  EXPECT_GT(model.measured_latency_ms, 0.0);
  EXPECT_GE(model.proxy_evals, 84);
  EXPECT_GT(model.modeled_gpu_hours, 0.0);
  EXPECT_EQ(model.decisions.size(), 24U);
}

TEST(MicroNasIntegration, EstimateTracksMeasurement) {
  MicroNas nas(fast_config());
  const DiscoveredModel model = nas.search();
  // LUT estimate vs simulator measurement within 10 %.
  const double rel = std::abs(model.indicators.latency_ms - model.measured_latency_ms) /
                     model.measured_latency_ms;
  EXPECT_LT(rel, 0.10);
}

TEST(MicroNasIntegration, DeterministicGivenSeed) {
  MicroNas a(fast_config());
  MicroNas b(fast_config());
  const DiscoveredModel ma = a.search();
  const DiscoveredModel mb = b.search();
  EXPECT_EQ(ma.genotype, mb.genotype);
  EXPECT_DOUBLE_EQ(ma.accuracy, mb.accuracy);
}

TEST(MicroNasIntegration, LatencyConstraintAdaptsWeights) {
  // Force a constraint that the trainless-objective winner is unlikely
  // to satisfy; the adaptive loop must escalate hardware weights and
  // land on a feasible (or at least much faster) model.
  MicroNasConfig cfg = fast_config();
  cfg.weights = IndicatorWeights::te_nas();

  MicroNas probe_run(cfg);
  const DiscoveredModel unconstrained = probe_run.search();

  cfg.constraints.max_latency_ms = unconstrained.indicators.latency_ms * 0.55;
  MicroNas nas(cfg);
  const DiscoveredModel constrained = nas.search();

  EXPECT_LT(constrained.indicators.latency_ms, unconstrained.indicators.latency_ms);
  EXPECT_GE(constrained.adapt_rounds_used, 1);
  // Adapted weights must have grown beyond the te_nas zeros.
  EXPECT_GT(constrained.final_weights.latency + constrained.final_weights.flops, 0.0);
}

TEST(MicroNasIntegration, EvaluateArbitraryGenotype) {
  MicroNas nas(fast_config());
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(nb201::Op::kConv1x1);
  const DiscoveredModel m = nas.evaluate(nb201::Genotype(ops));
  EXPECT_GT(m.accuracy, 10.0);
  EXPECT_GT(m.indicators.latency_ms, 0.0);
}

TEST(MicroNasIntegration, DatasetSelectionChangesProbeAndOracle) {
  MicroNasConfig cfg = fast_config();
  cfg.dataset = nb201::Dataset::kImageNet16;
  MicroNas nas(cfg);
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(nb201::Op::kConv3x3);
  const DiscoveredModel m = nas.evaluate(nb201::Genotype(ops));
  // ImageNet16-120 ceilings are ~47 %.
  EXPECT_LT(m.accuracy, 60.0);
  EXPECT_GT(m.accuracy, 20.0);
}

TEST(MicroNasIntegration, RejectsBadBatch) {
  MicroNasConfig cfg = fast_config();
  cfg.batch_size = 1;
  EXPECT_THROW(MicroNas{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace micronas
