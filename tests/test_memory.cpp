#include <gtest/gtest.h>

#include "src/hw/memory_model.hpp"

namespace micronas {
namespace {

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

TEST(MemoryModel, PeakPositiveAndArenaIncluded) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const MemoryModelSpec spec;
  const MemoryReport r = analyze_memory(m, spec);
  EXPECT_GT(r.peak_sram_bytes, spec.runtime_arena_bytes);
  EXPECT_GT(r.flash_bytes, spec.code_flash_bytes);
}

TEST(MemoryModel, PeakDominatedByEarlyHighResolutionLayers) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const MemoryReport r = analyze_memory(m);
  // 5 live 16x32x32 fp32 node buffers = 320 KB of cell schedule, far
  // above the later stages (channels double but spatial quarters).
  EXPECT_NEAR(r.peak_sram_kb(), 5 * 64 + 24, 40.0);
}

TEST(MemoryModel, FlashTracksParams) {
  const MemoryReport big = analyze_memory(build_macro_model(all_op(nb201::Op::kConv3x3)));
  const MemoryReport small = analyze_memory(build_macro_model(all_op(nb201::Op::kSkipConnect)));
  EXPECT_GT(big.flash_bytes, small.flash_bytes);
}

TEST(MemoryModel, PeakActivationScalesWithResolution) {
  MacroNetConfig small;
  small.input_size = 16;
  MacroNetConfig big;
  big.input_size = 64;
  const auto g = all_op(nb201::Op::kConv3x3);
  EXPECT_LT(peak_activation_bytes(build_macro_model(g, small)),
            peak_activation_bytes(build_macro_model(g, big)));
}

TEST(MemoryModel, Int8HalvesNothingButQuartersFp32) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  MemoryModelSpec fp32;
  MemoryModelSpec int8;
  int8.bytes_per_activation = 1;
  int8.bytes_per_weight = 1;
  const MemoryReport r32 = analyze_memory(m, fp32);
  const MemoryReport r8 = analyze_memory(m, int8);
  EXPECT_LT(r8.peak_sram_bytes, r32.peak_sram_bytes);
  EXPECT_LT(r8.flash_bytes, r32.flash_bytes);
}

TEST(MemoryModel, SkipOnlyCellUsesLessSramThanConvCell) {
  // Fewer live buffers: node sums of copies vs conv outputs — the
  // schedule bound is the same, but the per-layer working set differs
  // for the conv-heavy cell only via in+out, so peaks are close; just
  // check both are sane and ordered weakly.
  const MemoryReport conv = analyze_memory(build_macro_model(all_op(nb201::Op::kConv3x3)));
  const MemoryReport skip = analyze_memory(build_macro_model(all_op(nb201::Op::kSkipConnect)));
  EXPECT_GE(conv.peak_sram_bytes, skip.peak_sram_bytes);
}

TEST(MemoryModel, StreamedPeakNeverExceedsPlainPeak) {
  // Row-strip streaming collapses a stride-1 conv/pool layer's in+out
  // pair to max(in, out); every other layer is unchanged, so the
  // streamed figure is a true lower bound on the plain peak.
  for (const auto op : {nb201::Op::kConv3x3, nb201::Op::kAvgPool3x3, nb201::Op::kSkipConnect}) {
    const MemoryReport r = analyze_memory(build_macro_model(all_op(op)));
    EXPECT_GT(r.streamed_peak_sram_bytes, 0);
    EXPECT_LE(r.streamed_peak_sram_bytes, r.peak_sram_bytes);
  }
}

TEST(MemoryModel, StreamingShrinksWhenLayerPeakDominatesSchedule) {
  // Make the per-layer term dominate the cell-schedule term: with empty
  // (all-none) cells and base_channels 2, the stem conv's in+out pair
  // ((3 + 2) * H * W) tops the schedule bound (2 * 2 * H * W), and
  // streaming the stem to max(3, 2) * H * W drops the peak below it.
  MacroNetConfig cfg;
  cfg.base_channels = 2;
  const MemoryReport r = analyze_memory(build_macro_model(nb201::Genotype{}, cfg));
  EXPECT_LT(r.streamed_peak_sram_bytes, r.peak_sram_bytes);
}

TEST(MemoryModel, StandaloneSkeletonFitsTypicalMcu) {
  // The empty skeleton must fit the F746's 320 KB SRAM comfortably.
  const MemoryReport r = analyze_memory(build_macro_model(nb201::Genotype{}));
  EXPECT_LT(r.peak_sram_kb(), 320.0);
}

TEST(MemoryModel, Fp32FullCellNeedsQuantizationToFit) {
  // A full conv cell at fp32 exceeds the F746's 320 KB SRAM (5 live
  // 16x32x32 buffers), which is exactly why TinyML deployments
  // quantize: the int8 version fits with room to spare.
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(nb201::Op::kConv3x3);
  const MacroModel m = build_macro_model(nb201::Genotype(ops));
  EXPECT_GT(analyze_memory(m).peak_sram_kb(), 320.0);
  MemoryModelSpec int8;
  int8.bytes_per_activation = 1;
  int8.bytes_per_weight = 1;
  EXPECT_LT(analyze_memory(m, int8).peak_sram_kb(), 320.0);
}

}  // namespace
}  // namespace micronas
