// Edge cases of the multi-objective kernel (ParetoArchive, dominance,
// fronts, crowding, hypervolume) and of the stats/ranking transforms
// it leans on: empty input, single element, all-dominated, all-ties,
// duplicate genotypes.
#include <gtest/gtest.h>

#include <limits>

#include "src/nb201/canonical.hpp"
#include "src/search/exhaustive.hpp"
#include "src/search/pareto_archive.hpp"
#include "src/stats/ranking.hpp"

namespace micronas {
namespace {

ParetoEntry entry(int genotype_index, std::vector<double> objectives, double accuracy = 0.0) {
  ParetoEntry e;
  e.genotype = nb201::Genotype::from_index(genotype_index);
  e.objectives = std::move(objectives);
  e.accuracy = accuracy;
  return e;
}

// ---------------------------------------------------------------------------
// Dominance.

TEST(ParetoDominates, BasicAndTies) {
  EXPECT_TRUE(pareto_dominates(std::vector<double>{1.0, 2.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_TRUE(pareto_dominates(std::vector<double>{1.0, 1.0}, std::vector<double>{2.0, 2.0}));
  EXPECT_FALSE(pareto_dominates(std::vector<double>{1.0, 3.0}, std::vector<double>{2.0, 2.0}));
  // Identical vectors dominate in neither direction.
  EXPECT_FALSE(pareto_dominates(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0, 2.0}));
  EXPECT_THROW(pareto_dominates(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Archive edge cases.

TEST(ParetoArchive, EmptyArchive) {
  const ParetoArchive archive({"a", "b"});
  EXPECT_TRUE(archive.empty());
  EXPECT_EQ(archive.size(), 0U);
  EXPECT_TRUE(archive.snapshot().empty());
  EXPECT_EQ(archive.hypervolume(std::vector<double>{1.0, 1.0}), 0.0);
  // CSV still carries the header row.
  EXPECT_NE(archive.to_csv().find("genotype"), std::string::npos);
}

TEST(ParetoArchive, DefaultConstructedRejectsInsert) {
  ParetoArchive archive;
  EXPECT_THROW(archive.insert(entry(0, {1.0})), std::logic_error);
}

TEST(ParetoArchive, WrongObjectiveLengthThrows) {
  ParetoArchive archive({"a", "b"});
  EXPECT_THROW(archive.insert(entry(0, {1.0})), std::invalid_argument);
}

TEST(ParetoArchive, SingleElement) {
  ParetoArchive archive({"a", "b"});
  EXPECT_TRUE(archive.insert(entry(3, {1.0, 2.0})));
  EXPECT_EQ(archive.size(), 1U);
  const auto snap = archive.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  EXPECT_EQ(snap[0].genotype.index(), 3);
  EXPECT_EQ(archive.hypervolume(std::vector<double>{2.0, 3.0}), 1.0);
}

TEST(ParetoArchive, AllDominatedCollapseToOne) {
  ParetoArchive archive({"a", "b"});
  // Dominator first: everything after is rejected.
  EXPECT_TRUE(archive.insert(entry(0, {1.0, 1.0})));
  EXPECT_FALSE(archive.insert(entry(1, {2.0, 1.0})));
  EXPECT_FALSE(archive.insert(entry(2, {1.0, 3.0})));
  EXPECT_EQ(archive.size(), 1U);

  // Dominator last: it must evict every incumbent.
  ParetoArchive reversed({"a", "b"});
  EXPECT_TRUE(reversed.insert(entry(1, {2.0, 1.0})));
  EXPECT_TRUE(reversed.insert(entry(2, {1.0, 3.0})));
  EXPECT_TRUE(reversed.insert(entry(0, {1.0, 1.0})));
  EXPECT_EQ(reversed.size(), 1U);
  EXPECT_EQ(reversed.snapshot()[0].genotype.index(), 0);
}

TEST(ParetoArchive, AllTiesKeepOneDeterministically) {
  // Identical objective vectors from distinct genotypes collapse to a
  // single representative, independent of insertion order.
  const std::vector<int> indices = {14000, 77, 5000, 444};
  ParetoArchive forward({"a", "b"});
  for (int i : indices) forward.insert(entry(i, {1.0, 1.0}));
  ParetoArchive backward({"a", "b"});
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) backward.insert(entry(*it, {1.0, 1.0}));

  ASSERT_EQ(forward.size(), 1U);
  ASSERT_EQ(backward.size(), 1U);
  EXPECT_EQ(forward.snapshot()[0].genotype, backward.snapshot()[0].genotype);
  EXPECT_EQ(forward.to_csv(), backward.to_csv());
}

TEST(ParetoArchive, DuplicateGenotypesInsertOnce) {
  ParetoArchive archive({"a", "b"});
  EXPECT_TRUE(archive.insert(entry(123, {1.0, 2.0})));
  EXPECT_FALSE(archive.insert(entry(123, {1.0, 2.0})));
  EXPECT_EQ(archive.size(), 1U);
}

TEST(ParetoArchive, SnapshotIsMonotoneStaircaseIn2D) {
  ParetoArchive archive({"cost", "neg_quality"});
  archive.insert(entry(1, {3.0, -30.0}));
  archive.insert(entry(2, {1.0, -10.0}));
  archive.insert(entry(3, {2.0, -20.0}));
  archive.insert(entry(4, {2.5, -15.0}));  // dominated by genotype 3
  const auto snap = archive.snapshot();
  ASSERT_EQ(snap.size(), 3U);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GT(snap[i].objectives[0], snap[i - 1].objectives[0]);
    EXPECT_LT(snap[i].objectives[1], snap[i - 1].objectives[1]);
  }
}

// ---------------------------------------------------------------------------
// pareto_front (exhaustive) now routes through the archive.

TEST(ParetoFront, TiesResolvedIndependentOfInputOrder) {
  auto record = [](int index, double flops, double acc) {
    ArchRecord r;
    r.genotype = nb201::Genotype::from_index(index);
    r.flops_m = flops;
    r.accuracy = acc;
    return r;
  };
  // Two exact (cost, accuracy) ties plus one distinct point.
  const ArchRecord a = record(140, 5.0, 50.0);
  const ArchRecord b = record(4100, 5.0, 50.0);
  const ArchRecord c = record(7, 1.0, 20.0);

  const auto front1 = pareto_front({a, b, c});
  const auto front2 = pareto_front({b, a, c});
  ASSERT_EQ(front1.size(), 2U);
  ASSERT_EQ(front2.size(), 2U);
  for (std::size_t i = 0; i < front1.size(); ++i) {
    EXPECT_EQ(front1[i].genotype, front2[i].genotype);
  }
  // The documented tie-break: smallest canonical index wins.
  const int kept = front1[1].genotype.index();
  const int canon_a = nb201::canonicalize(a.genotype).index();
  const int canon_b = nb201::canonicalize(b.genotype).index();
  EXPECT_EQ(nb201::canonicalize(front1[1].genotype).index(), std::min(canon_a, canon_b));
  EXPECT_TRUE(kept == a.genotype.index() || kept == b.genotype.index());
}

TEST(ParetoFront, EmptyInput) { EXPECT_TRUE(pareto_front({}).empty()); }

// ---------------------------------------------------------------------------
// Non-dominated sort and crowding distances.

TEST(NonDominatedSort, EmptyAndFronts) {
  EXPECT_TRUE(non_dominated_sort({}).empty());

  const std::vector<std::vector<double>> objectives = {
      {1.0, 4.0},  // front 0
      {2.0, 2.0},  // front 0
      {4.0, 1.0},  // front 0
      {3.0, 3.0},  // front 1 (dominated by {2,2})
      {5.0, 5.0},  // front 2 (dominated by {3,3})
  };
  const auto fronts = non_dominated_sort(objectives);
  ASSERT_EQ(fronts.size(), 3U);
  EXPECT_EQ(fronts[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(fronts[1], (std::vector<std::size_t>{3}));
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{4}));
}

TEST(CrowdingDistances, ExtremesInfiniteInteriorFinite) {
  const std::vector<std::vector<double>> objectives = {{1.0, 4.0}, {2.0, 2.0}, {4.0, 1.0}};
  const std::vector<std::size_t> front = {0, 1, 2};
  const auto dist = crowding_distances(objectives, front);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ASSERT_EQ(dist.size(), 3U);
  EXPECT_EQ(dist[0], kInf);
  EXPECT_EQ(dist[2], kInf);
  EXPECT_GT(dist[1], 0.0);
  EXPECT_LT(dist[1], kInf);
}

TEST(CrowdingDistances, AllTiesAreZeroWidthAndDeterministic) {
  const std::vector<std::vector<double>> objectives = {{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const std::vector<std::size_t> front = {0, 1, 2};
  const auto dist = crowding_distances(objectives, front);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Stable sort keeps front order: first/last get the boundary bonus,
  // the middle one accumulates nothing from zero-spread objectives.
  EXPECT_EQ(dist[0], kInf);
  EXPECT_EQ(dist[1], 0.0);
  EXPECT_EQ(dist[2], kInf);
}

TEST(CrowdingDistances, EmptyFront) {
  EXPECT_TRUE(crowding_distances({}, {}).empty());
}

// ---------------------------------------------------------------------------
// Hypervolume.

TEST(Hypervolume, TwoDimensional) {
  const std::vector<std::vector<double>> pts = {{1.0, 3.0}, {2.0, 1.0}};
  EXPECT_DOUBLE_EQ(hypervolume(pts, std::vector<double>{4.0, 4.0}), 7.0);
  // Points outside the reference box are ignored.
  const std::vector<std::vector<double>> outside = {{5.0, 1.0}};
  EXPECT_DOUBLE_EQ(hypervolume(outside, std::vector<double>{4.0, 4.0}), 0.0);
}

TEST(Hypervolume, ThreeAndFourDimensional) {
  const std::vector<std::vector<double>> unit = {{1.0, 1.0, 1.0}};
  EXPECT_DOUBLE_EQ(hypervolume(unit, std::vector<double>{2.0, 2.0, 2.0}), 1.0);

  // Two overlapping boxes: 2x2x2 + 3x1x1 minus the 2x1x1 overlap.
  const std::vector<std::vector<double>> pts = {{1.0, 1.0, 1.0}, {0.0, 2.0, 2.0}};
  EXPECT_DOUBLE_EQ(hypervolume(pts, std::vector<double>{3.0, 3.0, 3.0}), 8.0 + 3.0 - 2.0);

  const std::vector<std::vector<double>> p4 = {{0.0, 0.0, 0.0, 0.0}};
  EXPECT_DOUBLE_EQ(hypervolume(p4, std::vector<double>{1.0, 2.0, 3.0, 1.0}), 6.0);
}

TEST(Hypervolume, DegenerateInputs) {
  EXPECT_EQ(hypervolume({}, std::vector<double>{1.0}), 0.0);
  const std::vector<std::vector<double>> one = {{1.0}};
  EXPECT_THROW(hypervolume(one, std::vector<double>{}), std::invalid_argument);
  const std::vector<std::vector<double>> two = {{1.0, 2.0}};
  EXPECT_THROW(hypervolume(two, std::vector<double>{3.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// stats/ranking edge cases (the objective layer depends on these).

TEST(RankingEdgeCases, EmptyInputs) {
  EXPECT_TRUE(stats::average_ranks({}).empty());
  EXPECT_TRUE(stats::ordinal_ranks_ascending({}).empty());
  EXPECT_TRUE(stats::ordinal_ranks_descending({}).empty());
  EXPECT_THROW(stats::argmin({}), std::invalid_argument);
  EXPECT_THROW(stats::argmax({}), std::invalid_argument);
}

TEST(RankingEdgeCases, SingleElement) {
  const std::vector<double> one = {42.0};
  EXPECT_EQ(stats::average_ranks(one), (std::vector<double>{1.0}));
  EXPECT_EQ(stats::ordinal_ranks_ascending(one), (std::vector<int>{0}));
  EXPECT_EQ(stats::argmin(one), 0U);
  EXPECT_EQ(stats::argmax(one), 0U);
}

TEST(RankingEdgeCases, AllTies) {
  const std::vector<double> ties = {7.0, 7.0, 7.0, 7.0};
  // Average ranks share the mean of positions 1..4.
  EXPECT_EQ(stats::average_ranks(ties), (std::vector<double>{2.5, 2.5, 2.5, 2.5}));
  // Ordinal ranks break ties by original index, both directions.
  EXPECT_EQ(stats::ordinal_ranks_ascending(ties), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(stats::ordinal_ranks_descending(ties), (std::vector<int>{0, 1, 2, 3}));
  // argmin/argmax return the first on ties.
  EXPECT_EQ(stats::argmin(ties), 0U);
  EXPECT_EQ(stats::argmax(ties), 0U);
}

}  // namespace
}  // namespace micronas
