// Graph IR: construction, shape/dtype inference, validation, and the
// lowering frontend's structural contract against the macro model.
#include <gtest/gtest.h>

#include "src/ir/graph.hpp"
#include "src/ir/lower.hpp"
#include "src/net/macro_net.hpp"
#include "src/proxies/flops.hpp"

namespace micronas::ir {
namespace {

TEST(IrGraph, ShapeAndDtypeInference) {
  Graph g;
  const int x = g.add_input({Shape{1, 3, 8, 8}, DType::kF32});
  Tensor w(Shape{4, 3, 3, 3});
  const int w_id = g.add_const(std::move(w), "w");
  ConvAttrs attrs;
  attrs.kernel = 3;
  attrs.stride = 1;
  attrs.pad = 1;
  const int conv = g.add_node(OpKind::kConv2d, {x, w_id}, attrs);
  EXPECT_EQ(g.node(conv).type.shape, (Shape{1, 4, 8, 8}));
  EXPECT_EQ(g.node(conv).type.dtype, DType::kF32);

  const int relu = g.add_node(OpKind::kRelu, {conv});
  const int gap = g.add_node(OpKind::kGlobalAvgPool, {relu});
  EXPECT_EQ(g.node(gap).type.shape, (Shape{1, 4}));

  Tensor fw(Shape{10, 4});
  const int fw_id = g.add_const(std::move(fw), "fc.w");
  const int fc = g.add_node(OpKind::kLinear, {gap, fw_id});
  EXPECT_EQ(g.node(fc).type.shape, (Shape{1, 10}));
  g.set_output(fc);
  EXPECT_NO_THROW(g.validate());
}

TEST(IrGraph, RejectsMalformedWiring) {
  Graph g;
  const int x = g.add_input({Shape{1, 3, 8, 8}, DType::kF32});
  Tensor w(Shape{4, 5, 3, 3});  // Cin 5 != 3
  const int w_id = g.add_const(std::move(w), "w");
  ConvAttrs attrs;
  attrs.kernel = 3;
  EXPECT_THROW(g.add_node(OpKind::kConv2d, {x, w_id}, attrs), std::invalid_argument);

  // Kernel attribute must match the weight tensor.
  Tensor w2(Shape{4, 3, 3, 3});
  const int w2_id = g.add_const(std::move(w2), "w2");
  ConvAttrs bad;
  bad.kernel = 5;
  EXPECT_THROW(g.add_node(OpKind::kConv2d, {x, w2_id}, bad), std::invalid_argument);

  // Add requires matching shapes.
  const int y = g.add_node(OpKind::kRelu, {x});
  Tensor small(Shape{1, 3, 4, 4});
  const int s_id = g.add_const(std::move(small), "small");
  EXPECT_THROW(g.add_node(OpKind::kAdd, {y, s_id}), std::invalid_argument);

  // Quantize wants f32, dequantize wants i8.
  const int q = g.add_node(OpKind::kQuantize, {x});
  EXPECT_THROW(g.add_node(OpKind::kQuantize, {q}), std::invalid_argument);
  EXPECT_NO_THROW(g.add_node(OpKind::kDequantize, {q}));
  EXPECT_THROW(g.add_node(OpKind::kDequantize, {y}), std::invalid_argument);
}

TEST(IrGraph, CompactDropsUnreachableAndRemaps) {
  Graph g;
  const int x = g.add_input({Shape{1, 2, 4, 4}, DType::kF32});
  const int dead = g.add_node(OpKind::kRelu, {x});  // never consumed
  const int live = g.add_node(OpKind::kRelu, {x});
  g.add_const(Tensor(Shape{2}), "orphan");
  g.set_output(live);
  (void)dead;

  const int before = g.size();
  const int removed = g.compact();
  EXPECT_EQ(removed, 2);
  EXPECT_EQ(g.size(), before - 2);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.node(g.output()).op, OpKind::kRelu);
  EXPECT_EQ(g.node(g.output()).inputs[0], g.input());
}

TEST(IrLower, MirrorsMacroSkeletonStructure) {
  // Conv/pool/linear op counts of the lowered graph must match the
  // macro model (BN and ReLU are extra IR nodes; adds differ because
  // `none` edges lower to zero-const adds that fold away later).
  const nb201::Genotype g = nb201::Genotype::from_index(4421);
  MacroNetConfig macro;
  macro.cells_per_stage = 2;
  macro.input_size = 16;
  const MacroModel m = build_macro_model(g, macro);

  LowerOptions options;
  options.macro = macro;
  const Graph graph = lower_genotype(g, options);

  int macro_convs = 0, macro_pools = 0, macro_linear = 0;
  for (const auto& spec : m.layers) {
    macro_convs += spec.kind == LayerKind::kConv ? 1 : 0;
    macro_pools += spec.kind == LayerKind::kAvgPool ? 1 : 0;
    macro_linear += spec.kind == LayerKind::kLinear ? 1 : 0;
  }
  int ir_convs = 0, ir_pools = 0, ir_linear = 0, ir_bn = 0;
  for (const auto& node : graph.nodes()) {
    ir_convs += node.op == OpKind::kConv2d ? 1 : 0;
    ir_pools += node.op == OpKind::kAvgPool ? 1 : 0;
    ir_linear += node.op == OpKind::kLinear ? 1 : 0;
    ir_bn += node.op == OpKind::kBatchNorm ? 1 : 0;
  }
  EXPECT_EQ(ir_convs, macro_convs);
  EXPECT_EQ(ir_pools, macro_pools);
  EXPECT_EQ(ir_linear, macro_linear);
  EXPECT_EQ(ir_bn, ir_convs);  // every conv carries a BN in the frontend

  // Output must be the [1, num_classes] logits.
  EXPECT_EQ(graph.node(graph.output()).type.shape, (Shape{1, macro.num_classes}));
}

TEST(IrLower, DeterministicGivenSeedAndSensitiveToIt) {
  const nb201::Genotype g = nb201::Genotype::from_index(123);
  LowerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  const Graph a = lower_genotype(g, options);
  const Graph b = lower_genotype(g, options);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    if (a.node(i).is_const() && a.node(i).type.dtype == DType::kF32) {
      const auto da = a.node(i).f32_data.data();
      const auto db = b.node(i).f32_data.data();
      ASSERT_EQ(da.size(), db.size());
      for (std::size_t k = 0; k < da.size(); ++k) ASSERT_EQ(da[k], db[k]);
    }
  }

  options.seed = 2;
  const Graph c = lower_genotype(g, options);
  bool any_diff = false;
  for (int i = 0; i < a.size() && !any_diff; ++i) {
    if (!a.node(i).is_const() || a.node(i).type.dtype != DType::kF32) continue;
    const auto da = a.node(i).f32_data.data();
    const auto dc = c.node(i).f32_data.data();
    for (std::size_t k = 0; k < da.size(); ++k) {
      if (da[k] != dc[k]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(IrLower, AllNoneGenotypeStillProducesValidGraph) {
  const Graph graph = lower_genotype(nb201::Genotype(), LowerOptions{
                                                           .macro = {.cells_per_stage = 1},
                                                       });
  EXPECT_NO_THROW(graph.validate());
  EXPECT_EQ(graph.node(graph.output()).op, OpKind::kLinear);
}

}  // namespace
}  // namespace micronas::ir
