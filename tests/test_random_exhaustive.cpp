#include <gtest/gtest.h>

#include "src/mcusim/profiler.hpp"
#include "src/search/cost_model.hpp"
#include "src/search/exhaustive.hpp"
#include "src/search/random_search.hpp"

namespace micronas {
namespace {

std::unique_ptr<ProxySuite> make_suite(const LatencyEstimator* est, std::uint64_t seed = 1) {
  ProxySuiteConfig cfg;
  cfg.proxy_net.input_size = 8;
  cfg.proxy_net.base_channels = 4;
  cfg.lr.grid = 8;
  cfg.lr.input_size = 8;
  Tensor probe(Shape{6, 3, 8, 8});
  Rng rng(seed);
  rng.fill_normal(probe.data());
  return std::make_unique<ProxySuite>(cfg, std::move(probe), est);
}

TEST(RandomSearch, EvaluatesRequestedBudget) {
  auto suite = make_suite(nullptr);
  RandomSearchConfig cfg;
  cfg.num_samples = 10;
  cfg.weights = IndicatorWeights::te_nas();
  Rng rng(2);
  const auto res = random_search(*suite, cfg, rng);
  EXPECT_EQ(res.proxy_evals, 10);
  EXPECT_GE(res.indicators.ntk_condition, 1.0);
}

TEST(RandomSearch, ConstraintRespectedWhenFeasibleExists) {
  auto suite = make_suite(nullptr, 3);
  RandomSearchConfig cfg;
  cfg.num_samples = 30;
  cfg.constraints.max_flops_m = 80.0;  // excludes conv3x3-heavy cells
  Rng rng(3);
  const auto res = random_search(*suite, cfg, rng);
  EXPECT_LE(res.indicators.flops_m, 80.0);
}

TEST(RandomSearch, RejectsBadBudget) {
  auto suite = make_suite(nullptr);
  RandomSearchConfig cfg;
  cfg.num_samples = 0;
  Rng rng(4);
  EXPECT_THROW(random_search(*suite, cfg, rng), std::invalid_argument);
}

TEST(Exhaustive, RecordsWholeSpace) {
  const nb201::SurrogateOracle oracle;
  const auto records = exhaustive_records(oracle, nb201::Dataset::kCifar10, MacroNetConfig{},
                                          nullptr);
  EXPECT_EQ(records.size(), static_cast<std::size_t>(nb201::kNumArchitectures));
  // Sanity on ranges.
  for (int i = 0; i < 100; ++i) {
    const auto& r = records[static_cast<std::size_t>(i * 151)];
    EXPECT_GT(r.accuracy, 0.0);
    EXPECT_GE(r.flops_m, 0.0);
    EXPECT_GT(r.params_m, 0.0);
  }
}

TEST(Exhaustive, BestByAccuracyRespectsConstraints) {
  const nb201::SurrogateOracle oracle;
  const auto records = exhaustive_records(oracle, nb201::Dataset::kCifar10, MacroNetConfig{},
                                          nullptr);
  Constraints c;
  c.max_params_m = 0.4;
  const ArchRecord& best = best_by_accuracy(records, c);
  EXPECT_LE(best.params_m, 0.4);

  const ArchRecord& unconstrained = best_by_accuracy(records, Constraints{});
  EXPECT_GE(unconstrained.accuracy, best.accuracy);

  Constraints impossible;
  impossible.max_params_m = 1e-9;
  EXPECT_THROW(best_by_accuracy(records, impossible), std::runtime_error);
}

TEST(Exhaustive, ParetoFrontIsMonotone) {
  const nb201::SurrogateOracle oracle;
  auto records = exhaustive_records(oracle, nb201::Dataset::kCifar10, MacroNetConfig{}, nullptr);
  const auto front = pareto_front(std::move(records));
  ASSERT_GT(front.size(), 2U);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].flops_m, front[i - 1].flops_m);  // cost ascending
    EXPECT_GT(front[i].accuracy, front[i - 1].accuracy);  // accuracy strictly up
  }
}

TEST(CostModelAccounting, RatiosMatchPaperCalibration) {
  const CostModel cm;
  // 1000-eval trained search = 552 GPU-h (µNAS row).
  EXPECT_NEAR(cm.trained_search_gpu_hours(1000), 552.0, 1e-9);
  // 84-eval proxy search = 0.43 GPU-h (TE-NAS / MicroNAS row).
  EXPECT_NEAR(cm.proxy_search_gpu_hours(84), 0.43, 1e-9);
  // The paper's headline: ~1104x efficiency (552 / 0.5 as reported).
  const double ratio = search_efficiency_ratio(cm.trained_search_gpu_hours(1000),
                                               cm.proxy_search_gpu_hours(84));
  EXPECT_GT(ratio, 1000.0);
  EXPECT_LT(ratio, 1400.0);
  EXPECT_THROW(search_efficiency_ratio(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace micronas
