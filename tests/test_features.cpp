#include <gtest/gtest.h>

#include "src/nb201/features.hpp"

namespace micronas::nb201 {
namespace {

Genotype make(std::array<Op, kNumEdges> ops) { return Genotype(ops); }

TEST(Features, AllNoneIsDisconnected) {
  const CellFeatures f = analyze_cell(Genotype{});
  EXPECT_FALSE(f.connected);
  EXPECT_EQ(f.live_paths, 0);
}

TEST(Features, DirectSkipConnects) {
  Genotype g;
  g.set_op(edge_index(0, 3), Op::kSkipConnect);
  const CellFeatures f = analyze_cell(g);
  EXPECT_TRUE(f.connected);
  EXPECT_EQ(f.live_paths, 1);
  EXPECT_EQ(f.n_skip, 1);
  EXPECT_EQ(f.conv_depth, 0);
  EXPECT_EQ(f.graph_depth, 1);
  EXPECT_FALSE(f.has_residual_skip);
}

TEST(Features, AllConv3x3) {
  std::array<Op, kNumEdges> ops;
  ops.fill(Op::kConv3x3);
  const CellFeatures f = analyze_cell(make(ops));
  EXPECT_TRUE(f.connected);
  EXPECT_EQ(f.live_paths, 4);
  EXPECT_EQ(f.n_conv3x3, 6);
  EXPECT_EQ(f.conv_depth, 3);   // path 0->1->2->3
  EXPECT_EQ(f.graph_depth, 3);
  EXPECT_DOUBLE_EQ(f.conv_mass(), 6.0);
}

TEST(Features, DeadBranchNotCounted) {
  // Conv on 0->1 but node 1 has no live outgoing edge: edge is dead.
  Genotype g;
  g.set_op(edge_index(0, 1), Op::kConv3x3);
  g.set_op(edge_index(0, 3), Op::kSkipConnect);
  const CellFeatures f = analyze_cell(g);
  EXPECT_TRUE(f.connected);
  EXPECT_EQ(f.n_conv3x3, 0);  // the conv edge is not on any live path
  EXPECT_EQ(f.n_skip, 1);
  EXPECT_FALSE(f.edge_effective[edge_index(0, 1)]);
}

TEST(Features, ResidualSkipDetected) {
  // Skip 0->3 in parallel with conv path 0->1->3.
  Genotype g;
  g.set_op(edge_index(0, 3), Op::kSkipConnect);
  g.set_op(edge_index(0, 1), Op::kConv3x3);
  g.set_op(edge_index(1, 3), Op::kConv3x3);
  const CellFeatures f = analyze_cell(g);
  EXPECT_TRUE(f.has_residual_skip);
  EXPECT_EQ(f.live_paths, 2);
  EXPECT_EQ(f.conv_depth, 2);
}

TEST(Features, SkipWithoutParallelConvIsNotResidual) {
  // Only skips everywhere: no conv to bridge.
  std::array<Op, kNumEdges> ops;
  ops.fill(Op::kSkipConnect);
  const CellFeatures f = analyze_cell(make(ops));
  EXPECT_TRUE(f.connected);
  EXPECT_FALSE(f.has_residual_skip);
  EXPECT_EQ(f.n_skip, 6);
  EXPECT_EQ(f.conv_depth, 0);
}

TEST(Features, PoolOnlyCell) {
  std::array<Op, kNumEdges> ops;
  ops.fill(Op::kAvgPool3x3);
  const CellFeatures f = analyze_cell(make(ops));
  EXPECT_TRUE(f.connected);
  EXPECT_EQ(f.n_pool, 6);
  EXPECT_EQ(f.conv_depth, 0);
  EXPECT_EQ(f.graph_depth, 3);
}

TEST(Features, MixedCountsOnlyEffectiveEdges) {
  // Live: 0->2 (conv1x1), 2->3 (conv3x3). Dead: 1->2 (node 1 unreachable).
  Genotype g;
  g.set_op(edge_index(0, 2), Op::kConv1x1);
  g.set_op(edge_index(2, 3), Op::kConv3x3);
  g.set_op(edge_index(1, 2), Op::kConv3x3);  // source node 1 unreachable
  const CellFeatures f = analyze_cell(g);
  EXPECT_EQ(f.n_conv1x1, 1);
  EXPECT_EQ(f.n_conv3x3, 1);  // only the live 2->3 conv counts
  EXPECT_FALSE(f.edge_effective[edge_index(1, 2)]);
  EXPECT_NEAR(f.conv_mass(), 1.62, 1e-9);
}

TEST(Features, AllPathsTableIsConsistent) {
  const auto& paths = all_paths();
  ASSERT_EQ(paths.size(), 4U);
  for (const auto& p : paths) {
    // Paths start at node 0 and end at node 3.
    EXPECT_EQ(edge_endpoints(p.front()).from, 0);
    EXPECT_EQ(edge_endpoints(p.back()).to, 3);
    // Consecutive edges chain.
    for (std::size_t i = 1; i < p.size(); ++i) {
      EXPECT_EQ(edge_endpoints(p[i - 1]).to, edge_endpoints(p[i]).from);
    }
  }
}

TEST(Features, ConnectivityMatchesBruteForce) {
  // Brute-force reachability over all 15 625 cells must agree with the
  // path-based analysis.
  for (int idx = 0; idx < kNumArchitectures; idx += 97) {
    const Genotype g = Genotype::from_index(idx);
    // BFS over signal-carrying edges.
    std::array<bool, kNumNodes> reach{};
    reach[0] = true;
    for (int node = 1; node < kNumNodes; ++node) {
      for (int from = 0; from < node; ++from) {
        if (reach[from] && op_carries_signal(g.op(from, node))) reach[node] = true;
      }
    }
    EXPECT_EQ(analyze_cell(g).connected, reach[3]) << g.to_string();
  }
}

}  // namespace
}  // namespace micronas::nb201
