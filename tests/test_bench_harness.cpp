// Benchmark-subsystem tests: the stats aggregator on known samples,
// the BENCH_*.json schema round-trip, and the compare tool's
// regression / improvement / missing-case verdicts (including the
// acceptance check that a synthetic 2x slowdown fails while identical
// inputs pass).
#include <gtest/gtest.h>

#include <cmath>

#include "bench/compare.hpp"
#include "bench/harness.hpp"
#include "src/common/json.hpp"

namespace micronas::bench {
namespace {

// ------------------------------------------------------------ statistics

TEST(BenchStats, KnownSamples) {
  // 1..10: mean 5.5, median 5.5, p90 by linear interpolation = 9.1.
  const SampleStats s = compute_stats({10, 9, 8, 7, 6, 5, 4, 3, 2, 1});
  EXPECT_EQ(s.count, 10U);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.median, 5.5);
  EXPECT_NEAR(s.p90, 9.1, 1e-12);
  // Sample stddev of 1..10 is sqrt(55/6).
  EXPECT_NEAR(s.stddev, std::sqrt(55.0 / 6.0), 1e-12);
}

TEST(BenchStats, OddCountMedianIsMiddleValue) {
  const SampleStats s = compute_stats({3, 1, 2});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.p90, 2.8);
}

TEST(BenchStats, SingleSample) {
  const SampleStats s = compute_stats({4.2});
  EXPECT_EQ(s.count, 1U);
  EXPECT_DOUBLE_EQ(s.min, 4.2);
  EXPECT_DOUBLE_EQ(s.median, 4.2);
  EXPECT_DOUBLE_EQ(s.p90, 4.2);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(BenchStats, EmptyIsAllZero) {
  const SampleStats s = compute_stats({});
  EXPECT_EQ(s.count, 0U);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

// ------------------------------------------------------------------ json

TEST(BenchJson, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, -3e2], "b": {"nested": "va\"lue"}, "c": true, "d": null})";
  const Json parsed = Json::parse(text);
  EXPECT_DOUBLE_EQ(parsed.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_EQ(parsed.at("b").at("nested").as_string(), "va\"lue");
  EXPECT_TRUE(parsed.at("c").as_bool());
  EXPECT_TRUE(parsed.at("d").is_null());
  // dump -> parse -> dump is a fixed point (keys are sorted).
  const std::string once = parsed.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(BenchJson, AcceptsSubnormalsRejectsOverflow) {
  // %.17g can emit subnormals; parse must accept them (strtod flags
  // ERANGE underflow) while genuine overflow is malformed.
  EXPECT_GT(Json::parse("5e-324").as_number(), 0.0);
  EXPECT_THROW(Json::parse("1e999"), std::runtime_error);
}

TEST(BenchJson, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"dup\" 1}"), std::runtime_error);
}

// ---------------------------------------------------------- report schema

CaseResult make_case(const std::string& suite, const std::string& name, double median_ms) {
  CaseResult c;
  c.suite = suite;
  c.name = name;
  c.tier = 1;
  c.params = {{"batch", "16"}};
  c.warmup = 2;
  c.wall_ms = compute_stats({median_ms * 0.9, median_ms, median_ms * 1.1});
  c.cpu_ms = c.wall_ms;
  c.items_per_second = 1000.0 / median_ms;
  c.counters = {{"kendall_tau", 0.42}};
  return c;
}

Report make_report(double scale = 1.0) {
  Report r;
  r.build.git_sha = "abc1234";
  r.build.compiler = "GNU 12.2.0";
  r.build.flags = "-O3";
  r.build.build_type = "Release";
  r.build.hardware_threads = 4;
  r.build.timestamp_utc = "2026-07-30T00:00:00Z";
  r.cases.push_back(make_case("micro", "conv/4", 2.0 * scale));
  r.cases.push_back(make_case("macro", "table1", 150.0 * scale));
  return r;
}

TEST(BenchReport, JsonSchemaRoundTrip) {
  const Report original = make_report();
  const Json doc = original.to_json();
  EXPECT_DOUBLE_EQ(doc.at("schema_version").as_number(), 1.0);

  const Report restored = Report::from_json(doc);
  ASSERT_EQ(restored.cases.size(), original.cases.size());
  EXPECT_EQ(restored.build.git_sha, original.build.git_sha);
  EXPECT_EQ(restored.build.hardware_threads, 4);
  for (std::size_t i = 0; i < original.cases.size(); ++i) {
    const CaseResult& a = original.cases[i];
    const CaseResult& b = restored.cases[i];
    EXPECT_EQ(b.full_name(), a.full_name());
    EXPECT_EQ(b.tier, a.tier);
    EXPECT_EQ(b.params, a.params);
    EXPECT_EQ(b.warmup, a.warmup);
    EXPECT_EQ(b.wall_ms.count, a.wall_ms.count);
    EXPECT_DOUBLE_EQ(b.wall_ms.median, a.wall_ms.median);
    EXPECT_DOUBLE_EQ(b.wall_ms.p90, a.wall_ms.p90);
    EXPECT_DOUBLE_EQ(b.wall_ms.stddev, a.wall_ms.stddev);
    EXPECT_DOUBLE_EQ(b.items_per_second, a.items_per_second);
    EXPECT_EQ(b.counters, a.counters);
  }
  // Serialization is deterministic.
  EXPECT_EQ(restored.to_json().dump(2), doc.dump(2));
}

TEST(BenchReport, RejectsUnknownSchemaVersion) {
  Json doc = make_report().to_json();
  JsonObject o = doc.as_object();
  o["schema_version"] = 2;
  const Json bumped(std::move(o));
  EXPECT_THROW(Report::from_json(bumped), std::runtime_error);
}

TEST(BenchReport, MergeLatestWinsAndSorts) {
  Report a = make_report();
  Report b;
  b.build = a.build;
  b.cases.push_back(make_case("micro", "conv/4", 99.0));  // replaces
  b.cases.push_back(make_case("aaa", "first", 1.0));      // new, sorts first
  a.merge(b);
  ASSERT_EQ(a.cases.size(), 3U);
  EXPECT_EQ(a.cases[0].full_name(), "aaa.first");
  for (const CaseResult& c : a.cases) {
    if (c.full_name() == "micro.conv/4") {
      EXPECT_DOUBLE_EQ(c.wall_ms.median, 99.0);
    }
  }
}

// --------------------------------------------------------------- compare

TEST(BenchCompare, IdenticalInputsPass) {
  const Report base = make_report();
  const CompareOptions opts{.threshold = 0.25};
  const CompareResult result = compare_reports(base, base, opts);
  EXPECT_FALSE(result.failed(opts));
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.improvements, 0);
  EXPECT_EQ(result.missing, 0);
  for (const CaseComparison& c : result.cases) {
    EXPECT_EQ(c.verdict, Verdict::kOk);
    EXPECT_DOUBLE_EQ(c.ratio, 1.0);
  }
}

TEST(BenchCompare, SyntheticTwoXSlowdownIsFlagged) {
  const Report base = make_report();
  const Report slow = make_report(/*scale=*/2.0);
  const CompareOptions opts{.threshold = 0.25};
  const CompareResult result = compare_reports(base, slow, opts);
  EXPECT_TRUE(result.failed(opts));
  EXPECT_EQ(result.regressions, 2);
  for (const CaseComparison& c : result.cases) {
    EXPECT_EQ(c.verdict, Verdict::kRegression);
    EXPECT_NEAR(c.ratio, 2.0, 1e-12);
  }
}

TEST(BenchCompare, ImprovementIsReportedNotFailed) {
  const Report base = make_report();
  const Report fast = make_report(/*scale=*/0.5);
  const CompareOptions opts{.threshold = 0.25};
  const CompareResult result = compare_reports(base, fast, opts);
  EXPECT_FALSE(result.failed(opts));
  EXPECT_EQ(result.improvements, 2);
  EXPECT_EQ(result.regressions, 0);
}

TEST(BenchCompare, WithinThresholdIsOk) {
  const Report base = make_report();
  const Report near = make_report(/*scale=*/1.2);  // +20 % < 25 % threshold
  const CompareOptions opts{.threshold = 0.25};
  const CompareResult result = compare_reports(base, near, opts);
  EXPECT_FALSE(result.failed(opts));
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.improvements, 0);
}

TEST(BenchCompare, MissingCaseFailsUnlessAllowed) {
  const Report base = make_report();
  Report current = make_report();
  current.cases.pop_back();  // drop macro.table1

  const CompareOptions strict{.threshold = 0.25};
  const CompareResult result = compare_reports(base, current, strict);
  EXPECT_TRUE(result.failed(strict));
  EXPECT_EQ(result.missing, 1);

  const CompareOptions lenient{.threshold = 0.25, .allow_missing = true};
  EXPECT_FALSE(compare_reports(base, current, lenient).failed(lenient));
}

TEST(BenchCompare, ZeroMeasurementCurrentCountsAsMissing) {
  const Report base = make_report();
  Report current = make_report();
  current.cases[0].wall_ms = compute_stats({});  // case stopped measuring
  const CompareOptions opts{.threshold = 0.25};
  const CompareResult result = compare_reports(base, current, opts);
  EXPECT_TRUE(result.failed(opts));
  EXPECT_EQ(result.missing, 1);
  EXPECT_EQ(result.regressions, 0);
}

TEST(BenchCompare, CounterGatingOffByDefault) {
  const Report base = make_report();
  Report current = make_report();
  current.cases[0].counters["kendall_tau"] = 9.0;  // wild drift
  const CompareOptions opts{.threshold = 0.25};
  const CompareResult result = compare_reports(base, current, opts);
  EXPECT_FALSE(result.failed(opts));
  EXPECT_EQ(result.counter_regressions, 0);
  for (const CaseComparison& c : result.cases) EXPECT_TRUE(c.counter_drifts.empty());
}

TEST(BenchCompare, CounterDriftBeyondThresholdFails) {
  const Report base = make_report();
  Report current = make_report();
  current.cases[0].counters["kendall_tau"] = 0.42 * 1.01;  // +1 %
  const CompareOptions opts{.threshold = 0.25, .counter_threshold = 0.001};
  const CompareResult result = compare_reports(base, current, opts);
  EXPECT_TRUE(result.failed(opts));
  EXPECT_EQ(result.counter_regressions, 1);
  ASSERT_EQ(result.cases[0].counter_drifts.size(), 1U);
  EXPECT_EQ(result.cases[0].counter_drifts[0].name, "kendall_tau");
  EXPECT_NEAR(result.cases[0].counter_drifts[0].rel, 0.01, 1e-9);

  // Within the threshold: same comparison passes.
  const CompareOptions loose{.threshold = 0.25, .counter_threshold = 0.05};
  EXPECT_FALSE(compare_reports(base, current, loose).failed(loose));
}

TEST(BenchCompare, VanishedCounterCountsAsDrift) {
  const Report base = make_report();
  Report current = make_report();
  current.cases[1].counters.clear();  // lost coverage, values unchanged
  const CompareOptions opts{.threshold = 0.25, .counter_threshold = 0.001};
  const CompareResult result = compare_reports(base, current, opts);
  EXPECT_TRUE(result.failed(opts));
  EXPECT_EQ(result.counter_regressions, 1);
  ASSERT_EQ(result.cases[1].counter_drifts.size(), 1U);
  EXPECT_TRUE(result.cases[1].counter_drifts[0].missing);
}

TEST(BenchCompare, NewCaseIsInformationalOnly) {
  const Report base = make_report();
  Report current = make_report();
  current.cases.push_back(make_case("brand", "new_case", 5.0));

  const CompareOptions opts{.threshold = 0.25};
  const CompareResult result = compare_reports(base, current, opts);
  EXPECT_FALSE(result.failed(opts));
  EXPECT_EQ(result.added, 1);
  bool saw_new = false;
  for (const CaseComparison& c : result.cases) {
    if (c.full_name == "brand.new_case") {
      EXPECT_EQ(c.verdict, Verdict::kNew);
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_new);
  // Render never throws and mentions the PASS/FAIL summary.
  EXPECT_NE(render_comparison(result, opts).find("PASS"), std::string::npos);
}

// ------------------------------------------------------- harness execution

BENCH_CASE_OPTS(harness_selftest, fixed_reps,
                CaseOptions{.warmup = 1, .min_reps = 4, .max_reps = 4, .steady_rsd = 0.0}) {
  int iterations = 0;
  for (auto _ : state) {
    ++iterations;
    // Enough work that the wall sample cannot quantize to zero.
    for (int i = 0; i < 10000; ++i) do_not_optimize(i);
  }
  state.counter("iterations", iterations);
  state.set_items_processed(10.0);
}

TEST(BenchRunner, ExecutesRegisteredCaseWithRepetitionPolicy) {
  RunnerOptions options;
  options.filter = "harness_selftest.fixed_reps";
  const Runner runner(options);
  ASSERT_EQ(runner.selection().size(), 1U);

  const Report report = runner.run(nullptr);
  ASSERT_EQ(report.cases.size(), 1U);
  const CaseResult& c = report.cases[0];
  // 1 warmup discarded + 4 recorded samples = 5 loop iterations.
  EXPECT_EQ(c.wall_ms.count, 4U);
  EXPECT_EQ(c.warmup, 1);
  EXPECT_DOUBLE_EQ(c.counters.at("iterations"), 5.0);
  EXPECT_GT(c.wall_ms.median, 0.0);
  EXPECT_GT(c.items_per_second, 0.0);
  EXPECT_FALSE(report.build.git_sha.empty());
}

}  // namespace
}  // namespace micronas::bench
