#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/hw/latency_estimator.hpp"
#include "src/mcusim/profiler.hpp"
#include "src/nb201/space.hpp"
#include "src/stats/correlation.hpp"
#include "src/stats/summary.hpp"

namespace micronas {
namespace {

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

LatencyEstimator make_estimator(const McuSpec& mcu = {}) {
  Rng rng(1);
  ProfilerOptions opts;
  opts.deterministic = true;
  LatencyTable table = build_latency_table(mcu, rng, MacroNetConfig{}, opts);
  const double overhead = profile_constant_overhead_ms(mcu, rng, opts);
  return LatencyEstimator(std::move(table), overhead, mcu.clock_hz);
}

TEST(LatencyTable, InsertLookup) {
  LatencyTable t;
  LatencyKey k;
  k.kind = LayerKind::kConv;
  k.cin = 16;
  k.cout = 16;
  k.h = 32;
  k.w = 32;
  k.kernel = 3;
  k.stride = 1;
  t.insert(k, 1234.5);
  EXPECT_TRUE(t.contains(k));
  EXPECT_DOUBLE_EQ(*t.lookup(k), 1234.5);
  LatencyKey other = k;
  other.cin = 32;
  EXPECT_FALSE(t.contains(other));
}

TEST(LatencyTable, RejectsBadCycles) {
  LatencyTable t;
  LatencyKey k;
  EXPECT_THROW(t.insert(k, -1.0), std::invalid_argument);
}

TEST(LatencyTable, SerializationRoundTrip) {
  Rng rng(2);
  ProfilerOptions opts;
  opts.deterministic = true;
  const LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, opts);
  const LatencyTable parsed = LatencyTable::deserialize(table.serialize());
  EXPECT_EQ(parsed.size(), table.size());
  for (const auto& [k, v] : table.entries()) {
    ASSERT_TRUE(parsed.contains(k)) << k.to_string();
    EXPECT_DOUBLE_EQ(*parsed.lookup(k), v);
  }
}

TEST(LatencyTable, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "micronas_lut_test.txt";
  LatencyTable t;
  LatencyKey k;
  k.kind = LayerKind::kAvgPool;
  k.cin = 8;
  k.cout = 8;
  k.h = 4;
  k.w = 4;
  k.kernel = 3;
  t.insert(k, 99.0);
  t.save(path);
  const LatencyTable loaded = LatencyTable::load(path);
  EXPECT_DOUBLE_EQ(*loaded.lookup(k), 99.0);
  std::remove(path.c_str());
}

TEST(LatencyTable, ScaledFallback) {
  LatencyTable t;
  LatencyKey k;
  k.kind = LayerKind::kConv;
  k.cin = 16;
  k.cout = 16;
  k.h = 16;
  k.w = 16;
  k.kernel = 3;
  k.stride = 1;
  t.insert(k, 1000.0);

  // Same kind/kernel, double the channels on both sides: 4x the MACs.
  LayerSpec spec;
  spec.kind = LayerKind::kConv;
  spec.cin = 32;
  spec.cout = 32;
  spec.h = 16;
  spec.w = 16;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.out_h = 16;
  spec.out_w = 16;
  const auto scaled = t.lookup_scaled(spec);
  ASSERT_TRUE(scaled.has_value());
  EXPECT_NEAR(*scaled, 4000.0, 1.0);

  // No same-kind entry -> nullopt.
  LayerSpec fc;
  fc.kind = LayerKind::kLinear;
  fc.cin = 10;
  fc.cout = 10;
  EXPECT_FALSE(t.lookup_scaled(fc).has_value());
}

TEST(LatencyEstimator, CoversWholeSearchSpace) {
  const LatencyEstimator est = make_estimator();
  Rng rng(3);
  for (const auto& g : nb201::sample_genotypes(rng, 100)) {
    const double ms = est.estimate_ms(build_macro_model(g));
    EXPECT_GT(ms, 0.0);
  }
}

TEST(LatencyEstimator, AccurateAgainstSimulator) {
  // The paper validates its LUT estimator against board measurements;
  // we validate against the simulator. The estimator misses the
  // cross-layer SRAM-pressure term and jitter, so demand MAPE < 10 %
  // and near-perfect rank agreement rather than equality.
  const LatencyEstimator est = make_estimator();
  Rng rng(4);
  std::vector<double> predicted, measured;
  Rng jitter(5);
  for (const auto& g : nb201::sample_genotypes(rng, 60)) {
    const MacroModel m = build_macro_model(g);
    predicted.push_back(est.estimate_ms(m));
    measured.push_back(measure_latency_ms(m, McuSpec{}, jitter));
  }
  EXPECT_LT(stats::mape(predicted, measured), 0.10);
  EXPECT_GT(stats::spearman_rho(predicted, measured), 0.98);
}

TEST(LatencyEstimator, OrderingAcrossUniformCells) {
  const LatencyEstimator est = make_estimator();
  const double l_skip = est.estimate_ms(build_macro_model(all_op(nb201::Op::kSkipConnect)));
  const double l_1x1 = est.estimate_ms(build_macro_model(all_op(nb201::Op::kConv1x1)));
  const double l_3x3 = est.estimate_ms(build_macro_model(all_op(nb201::Op::kConv3x3)));
  EXPECT_LT(l_skip, l_1x1);
  EXPECT_LT(l_1x1, l_3x3);
}

TEST(LatencyEstimator, IncludesConstantOverhead) {
  const LatencyEstimator est = make_estimator();
  EXPECT_GT(est.constant_overhead_ms(), 0.0);
  const double empty = est.estimate_ms(build_macro_model(nb201::Genotype{}));
  EXPECT_GT(empty, est.constant_overhead_ms());
}

TEST(LatencyEstimator, RejectsBadConstruction) {
  EXPECT_THROW(LatencyEstimator(LatencyTable{}, 1.0), std::invalid_argument);
  Rng rng(6);
  ProfilerOptions opts;
  opts.deterministic = true;
  LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, opts);
  EXPECT_THROW(LatencyEstimator(std::move(table), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace micronas
