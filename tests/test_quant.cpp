#include <gtest/gtest.h>

#include "src/hw/latency_estimator.hpp"
#include "src/hw/quant.hpp"
#include "src/mcusim/profiler.hpp"

namespace micronas {
namespace {

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

TEST(Quant, RetagsEveryLayer) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  EXPECT_TRUE(model_is_uniform_precision(m, 32));
  const MacroModel q = quantize_model(m);
  EXPECT_TRUE(model_is_uniform_precision(q, 8));
  EXPECT_EQ(q.layers.size(), m.layers.size());
  EXPECT_THROW(quantize_model(m, QuantSpec{.bits = 7}), std::invalid_argument);
}

TEST(Quant, Int8CutsLatencySubstantially) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const MacroModel q = quantize_model(m);
  const double fp32_ms = simulate_network(m).latency_ms;
  const double int8_ms = simulate_network(q).latency_ms;
  EXPECT_LT(int8_ms, fp32_ms / 2.0);
  EXPECT_GT(int8_ms, fp32_ms / 5.0);  // overheads do not quantize away
}

TEST(Quant, Int8RelievesSramPressure) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  EXPECT_TRUE(simulate_network(m).sram_pressure);  // 344 KB fp32 > 320 KB
  const MacroModel q = quantize_model(m);
  EXPECT_FALSE(simulate_network(q).sram_pressure);  // ~86 KB int8
}

TEST(Quant, MemoryAccountingUsesNarrowWidths) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const MemoryReport fp32 = analyze_quantized_memory(m, QuantSpec{.bits = 32});
  const MemoryReport int8 = analyze_quantized_memory(quantize_model(m));
  EXPECT_LT(int8.peak_sram_bytes, fp32.peak_sram_bytes / 2);
  EXPECT_LT(int8.flash_bytes, fp32.flash_bytes / 2);
  // int8 flash includes per-channel quantizer metadata.
  MemoryModelSpec raw;
  raw.bytes_per_activation = 1;
  raw.bytes_per_weight = 1;
  EXPECT_GT(int8.flash_bytes, analyze_memory(m, raw).flash_bytes);
}

TEST(Quant, AccuracyPenaltyApplied) {
  EXPECT_DOUBLE_EQ(quantized_accuracy(94.0), 93.6);
  EXPECT_DOUBLE_EQ(quantized_accuracy(94.0, QuantSpec{.bits = 16}), 94.0);
  EXPECT_DOUBLE_EQ(quantized_accuracy(94.0, QuantSpec{.bits = 32}), 94.0);
  EXPECT_DOUBLE_EQ(quantized_accuracy(0.1), 0.0);  // clamped at zero
}

TEST(Quant, LatencyTableKeysPrecisionSeparately) {
  Rng rng(1);
  ProfilerOptions opts;
  opts.deterministic = true;
  const LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, opts);

  LayerSpec conv;
  conv.kind = LayerKind::kConv;
  conv.cin = 16;
  conv.cout = 16;
  conv.h = 32;
  conv.w = 32;
  conv.kernel = 3;
  conv.stride = 1;
  conv.pad = 1;
  conv.out_h = 32;
  conv.out_w = 32;
  const auto fp32 = table.lookup(LatencyKey::from_spec(conv));
  LayerSpec q = conv;
  q.bits = 8;
  const auto int8 = table.lookup(LatencyKey::from_spec(q));
  ASSERT_TRUE(fp32.has_value());
  ASSERT_TRUE(int8.has_value());
  EXPECT_LT(*int8, *fp32);
}

TEST(Quant, EstimatorTracksQuantizedSimulation) {
  Rng rng(2);
  ProfilerOptions opts;
  opts.deterministic = true;
  LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, opts);
  const LatencyEstimator est(std::move(table),
                             profile_constant_overhead_ms(McuSpec{}, rng, opts));
  const MacroModel q = quantize_model(build_macro_model(all_op(nb201::Op::kConv1x1)));
  const double est_ms = est.estimate_ms(q);
  const double sim_ms = simulate_network(q).latency_ms;
  EXPECT_NEAR(est_ms, sim_ms, 0.15 * sim_ms);
}

}  // namespace
}  // namespace micronas
