#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.hpp"

namespace micronas {
namespace {

TEST(DatasetSpecs, CanonicalShapes) {
  const DatasetSpec c10 = dataset_spec(nb201::Dataset::kCifar10);
  EXPECT_EQ(c10.height, 32);
  EXPECT_EQ(c10.num_classes, 10);
  const DatasetSpec c100 = dataset_spec(nb201::Dataset::kCifar100);
  EXPECT_EQ(c100.num_classes, 100);
  const DatasetSpec in16 = dataset_spec(nb201::Dataset::kImageNet16);
  EXPECT_EQ(in16.height, 16);
  EXPECT_EQ(in16.num_classes, 120);
}

TEST(SyntheticDataset, BatchShapeAndLabels) {
  Rng rng(1);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), rng);
  const Batch b = ds.sample_batch(16, rng);
  EXPECT_EQ(b.images.shape(), Shape({16, 3, 32, 32}));
  ASSERT_EQ(b.labels.size(), 16U);
  for (int label : b.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(SyntheticDataset, ResizedBatch) {
  Rng rng(2);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), rng);
  const Batch b = ds.sample_batch_resized(8, 16, rng);
  EXPECT_EQ(b.images.shape(), Shape({8, 3, 16, 16}));
}

TEST(SyntheticDataset, Standardized) {
  Rng rng(3);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar100), rng);
  const Batch b = ds.sample_batch(32, rng);
  double sum = 0.0, sq = 0.0;
  for (float v : b.images.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(b.images.numel());
  EXPECT_NEAR(sum / n, 0.0, 1e-4);
  EXPECT_NEAR(sq / n, 1.0, 1e-3);
}

TEST(SyntheticDataset, ClassStructurePresent) {
  // Two samples of the same class should correlate more than samples
  // of different classes on average (the class template is shared).
  Rng rng(4);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), rng);
  const Batch b = ds.sample_batch(64, rng);

  const std::size_t per = b.images.numel() / 64;
  auto dot = [&](int i, int j) {
    double s = 0.0;
    for (std::size_t k = 0; k < per; ++k) {
      s += static_cast<double>(b.images[static_cast<std::size_t>(i) * per + k]) *
           b.images[static_cast<std::size_t>(j) * per + k];
    }
    return s / static_cast<double>(per);
  };

  double same = 0.0, diff = 0.0;
  int n_same = 0, n_diff = 0;
  for (int i = 0; i < 64; ++i) {
    for (int j = i + 1; j < 64; ++j) {
      if (b.labels[static_cast<std::size_t>(i)] == b.labels[static_cast<std::size_t>(j)]) {
        same += dot(i, j);
        ++n_same;
      } else {
        diff += dot(i, j);
        ++n_diff;
      }
    }
  }
  ASSERT_GT(n_same, 0);
  ASSERT_GT(n_diff, 0);
  EXPECT_GT(same / n_same, diff / n_diff);
}

TEST(SyntheticDataset, DeterministicGivenRng) {
  Rng rng_a(9), rng_b(9);
  SyntheticDataset a(dataset_spec(nb201::Dataset::kCifar10), rng_a);
  SyntheticDataset b(dataset_spec(nb201::Dataset::kCifar10), rng_b);
  const Batch ba = a.sample_batch(4, rng_a);
  const Batch bb = b.sample_batch(4, rng_b);
  for (std::size_t i = 0; i < ba.images.numel(); ++i) {
    ASSERT_EQ(ba.images[i], bb.images[i]);
  }
}

TEST(SyntheticDataset, RejectsBadArgs) {
  Rng rng(5);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), rng);
  EXPECT_THROW(ds.sample_batch(0, rng), std::invalid_argument);
  EXPECT_THROW(ds.sample_batch_resized(4, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace micronas
