#include <gtest/gtest.h>

#include "src/mcusim/profiler.hpp"
#include "src/search/evolution_search.hpp"

namespace micronas {
namespace {

TEST(Evolution, FindsGoodModelUnconstrained) {
  const nb201::SurrogateOracle oracle;
  EvolutionSearchConfig cfg;
  cfg.population_size = 20;
  cfg.tournament_size = 5;
  cfg.total_evals = 300;
  Rng rng(1);
  const auto res = evolution_search(oracle, cfg, MacroNetConfig{}, nullptr, rng);
  EXPECT_EQ(res.trained_evals, 300);
  EXPECT_EQ(res.history.size(), 300U);
  // 300 evaluations of aging evolution should reach the top of the
  // surrogate landscape (~94 %).
  EXPECT_GT(res.accuracy, 90.0);
}

TEST(Evolution, HistoryIsMonotone) {
  const nb201::SurrogateOracle oracle;
  EvolutionSearchConfig cfg;
  cfg.population_size = 10;
  cfg.tournament_size = 3;
  cfg.total_evals = 100;
  Rng rng(2);
  const auto res = evolution_search(oracle, cfg, MacroNetConfig{}, nullptr, rng);
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_GE(res.history[i], res.history[i - 1]);
  }
  EXPECT_DOUBLE_EQ(res.history.back(), res.accuracy);
}

TEST(Evolution, RespectsParamsConstraint) {
  const nb201::SurrogateOracle oracle;
  EvolutionSearchConfig cfg;
  cfg.population_size = 16;
  cfg.tournament_size = 4;
  cfg.total_evals = 200;
  cfg.constraints.max_params_m = 0.4;
  Rng rng(3);
  const auto res = evolution_search(oracle, cfg, MacroNetConfig{}, nullptr, rng);
  EXPECT_LE(params_m(res.genotype), 0.4);
  // Constrained search trades accuracy but should stay well above chance.
  EXPECT_GT(res.accuracy, 60.0);
}

TEST(Evolution, ConstrainedWinnerWorseThanUnconstrained) {
  const nb201::SurrogateOracle oracle;
  EvolutionSearchConfig free_cfg;
  free_cfg.population_size = 16;
  free_cfg.tournament_size = 4;
  free_cfg.total_evals = 250;
  Rng rng_a(4);
  const auto free_run = evolution_search(oracle, free_cfg, MacroNetConfig{}, nullptr, rng_a);

  EvolutionSearchConfig tight_cfg = free_cfg;
  tight_cfg.constraints.max_params_m = 0.15;
  Rng rng_b(4);
  const auto tight_run = evolution_search(oracle, tight_cfg, MacroNetConfig{}, nullptr, rng_b);

  EXPECT_GE(free_run.accuracy, tight_run.accuracy);
}

TEST(Evolution, FeasibleHelper) {
  Constraints none;
  EXPECT_TRUE(feasible(nb201::Genotype{}, none, MacroNetConfig{}, nullptr));
  Constraints tight;
  tight.max_params_m = 0.001;  // nothing fits
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(nb201::Op::kConv3x3);
  EXPECT_FALSE(feasible(nb201::Genotype(ops), tight, MacroNetConfig{}, nullptr));
}

TEST(Evolution, LatencyConstraintWithoutEstimatorThrows) {
  Constraints c;
  c.max_latency_ms = 100.0;
  EXPECT_THROW(feasible(nb201::Genotype{}, c, MacroNetConfig{}, nullptr), std::invalid_argument);
}

TEST(Evolution, RejectsBadConfig) {
  const nb201::SurrogateOracle oracle;
  Rng rng(5);
  EvolutionSearchConfig cfg;
  cfg.population_size = 1;
  EXPECT_THROW(evolution_search(oracle, cfg, MacroNetConfig{}, nullptr, rng),
               std::invalid_argument);
  cfg.population_size = 10;
  cfg.tournament_size = 11;
  EXPECT_THROW(evolution_search(oracle, cfg, MacroNetConfig{}, nullptr, rng),
               std::invalid_argument);
  cfg.tournament_size = 3;
  cfg.total_evals = 5;
  EXPECT_THROW(evolution_search(oracle, cfg, MacroNetConfig{}, nullptr, rng),
               std::invalid_argument);
}

TEST(Evolution, DeterministicGivenSeed) {
  const nb201::SurrogateOracle oracle;
  EvolutionSearchConfig cfg;
  cfg.population_size = 10;
  cfg.tournament_size = 3;
  cfg.total_evals = 60;
  Rng a(9), b(9);
  const auto ra = evolution_search(oracle, cfg, MacroNetConfig{}, nullptr, a);
  const auto rb = evolution_search(oracle, cfg, MacroNetConfig{}, nullptr, b);
  EXPECT_EQ(ra.genotype, rb.genotype);
  EXPECT_DOUBLE_EQ(ra.accuracy, rb.accuracy);
}

}  // namespace
}  // namespace micronas
