// ModelServer under overload: the admission-control contract. A
// bounded queue turns excess load away synchronously (QueueFullError),
// expired requests are dropped with a distinct future error
// (DeadlineExpiredError), the accepted/rejected/dropped/completed
// counters exactly balance the offered load, and concurrent stop()
// under pressure drains without deadlock. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "src/data/synthetic.hpp"
#include "src/serve/model_server.hpp"

namespace micronas {
namespace {

compile::CompiledModel compiled_small() {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.seed = 5;
  return compile::compile_genotype(
      nb201::Genotype::from_string("|nor_conv_3x3~0|+|skip_connect~0|nor_conv_1x1~1|+"
                                   "|avg_pool_3x3~0|none~1|nor_conv_3x3~2|"),
      options);
}

std::vector<Tensor> sample_inputs(int n, std::uint64_t seed) {
  DatasetSpec spec;
  spec.height = spec.width = 8;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs.push_back(data.sample_batch(1, rng).images);
  return inputs;
}

// With a hold window far longer than the test and max_batch above
// max_queue, admitted requests deterministically sit in the queue —
// so the (max_queue + 1)-th submit MUST hit the bound.
TEST(ModelServerOverload, FullQueueRejectsSynchronously) {
  serve::ServerOptions options;
  options.max_batch = 8;
  options.max_wait_us = 10'000'000;  // stop() cuts this short
  options.max_queue = 3;
  serve::ModelServer server(compiled_small(), options);

  const std::vector<Tensor> inputs = sample_inputs(4, 41);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(server.submit(inputs[static_cast<std::size_t>(i)]));
  EXPECT_THROW(server.submit(inputs[3]), serve::QueueFullError);

  // The rejected caller never got a future; the admitted three still
  // complete with logits once the server drains.
  server.stop();
  for (std::future<Tensor>& f : futures) EXPECT_GT(f.get().numel(), 0u);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 3);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.requests, 3);
}

// The per-request submit() overload with a non-positive deadline is
// already expired — a guaranteed drop, and the future must rethrow
// DeadlineExpiredError specifically (not a generic runtime_error a
// client would confuse with an executor failure).
TEST(ModelServerOverload, ExpiredDeadlineDropsWithDistinctError) {
  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_wait_us = 200;
  serve::ModelServer server(compiled_small(), options);

  const std::vector<Tensor> inputs = sample_inputs(3, 43);
  std::future<Tensor> doomed = server.submit(inputs[0], /*deadline_us=*/-1);
  EXPECT_THROW(doomed.get(), serve::DeadlineExpiredError);

  // A drop poisons nothing: later no-deadline requests still serve.
  EXPECT_GT(server.infer(inputs[1]).numel(), 0u);
  std::future<Tensor> doomed2 = server.submit(inputs[2], 0);
  EXPECT_THROW(doomed2.get(), serve::DeadlineExpiredError);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 3);
  EXPECT_EQ(stats.dropped, 2);
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.rejected, 0);
}

// ServerOptions::deadline_us applies to every submit(): requests held
// open waiting for a batch that never fills expire in place.
TEST(ModelServerOverload, DefaultDeadlineExpiresHeldRequests) {
  serve::ServerOptions options;
  options.max_batch = 64;          // the batch can never fill...
  options.max_wait_us = 30'000;    // ...so the hold window must elapse
  options.deadline_us = 1;         // by which point every request expired
  serve::ModelServer server(compiled_small(), options);

  const std::vector<Tensor> inputs = sample_inputs(5, 47);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& in : inputs) futures.push_back(server.submit(in));
  for (std::future<Tensor>& f : futures) {
    EXPECT_THROW(f.get(), serve::DeadlineExpiredError);
  }

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 5);
  EXPECT_EQ(stats.dropped, 5);
  EXPECT_EQ(stats.requests, 0);
}

// The ledger property: under concurrent clients, a tight queue and a
// mix of deadlines, every submit() ends in exactly one of rejected
// (throw), dropped (DeadlineExpiredError) or completed (logits), and
// the server's counters agree with the clients' own books exactly.
TEST(ModelServerOverload, CountersExactlyBalanceOfferedLoad) {
  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_wait_us = 100;
  options.max_queue = 8;
  options.threads = 2;
  serve::ModelServer server(compiled_small(), options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<long long> accepted{0}, rejected{0}, completed{0}, dropped{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<Tensor> inputs =
          sample_inputs(kPerClient, 600 + static_cast<std::uint64_t>(c));
      // Burst-submit the whole load before resolving anything — that is
      // what actually fills the bounded queue and forces rejections.
      std::vector<std::future<Tensor>> futures;
      for (int i = 0; i < kPerClient; ++i) {
        try {
          // Every third request carries a 1 us deadline: some expire in
          // the queue, some get batched first — both ledgers must agree
          // whichever way each race lands.
          futures.push_back(i % 3 == 0 ? server.submit(inputs[static_cast<std::size_t>(i)], 1)
                                       : server.submit(inputs[static_cast<std::size_t>(i)]));
          ++accepted;
        } catch (const serve::QueueFullError&) {
          ++rejected;
        }
      }
      for (std::future<Tensor>& f : futures) {
        try {
          const Tensor logits = f.get();
          EXPECT_GT(logits.numel(), 0u);
          ++completed;
        } catch (const serve::DeadlineExpiredError&) {
          ++dropped;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted + stats.rejected, kClients * kPerClient);
  EXPECT_EQ(stats.accepted, accepted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.requests, completed.load());
  EXPECT_EQ(stats.dropped, dropped.load());
  EXPECT_EQ(stats.accepted, stats.requests + stats.dropped);
}

// Concurrent stop() while clients are still hammering a tight queue:
// every stop() caller must block until the drain finished (no early
// return, no deadlock), every future a client holds must resolve, and
// the ledger must still balance afterwards.
TEST(ModelServerOverload, ConcurrentStopUnderOverloadDrainsWithoutDeadlock) {
  serve::ServerOptions options;
  options.max_batch = 2;
  options.max_wait_us = 1'000'000;  // stop() must cut the wait short
  options.max_queue = 4;
  serve::ModelServer server(compiled_small(), options);

  std::atomic<long long> accepted{0}, rejected{0}, after_stop{0};
  std::atomic<long long> completed{0}, dropped{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<Tensor> inputs =
          sample_inputs(30, 700 + static_cast<std::uint64_t>(c));
      for (const Tensor& in : inputs) {
        std::future<Tensor> f;
        try {
          f = server.submit(in);
        } catch (const serve::QueueFullError&) {
          ++rejected;
          continue;
        } catch (const std::runtime_error&) {
          ++after_stop;  // server stopped while we were submitting
          continue;
        }
        ++accepted;
        try {
          EXPECT_GT(f.get().numel(), 0u);
          ++completed;
        } catch (const serve::DeadlineExpiredError&) {
          ++dropped;
        }
      }
    });
  }

  std::vector<long long> drained(4, -1);
  std::vector<std::thread> stoppers;
  for (std::size_t t = 0; t < drained.size(); ++t) {
    stoppers.emplace_back([&server, &drained, t] {
      server.stop();
      // Postcondition for EVERY caller, not just the join winner: the
      // queue is drained, so the ledger balances right here.
      const serve::ServerStats s = server.stats();
      drained[t] = (s.accepted == s.requests + s.dropped) ? 1 : 0;
    });
  }
  for (std::thread& t : stoppers) t.join();
  for (std::thread& t : clients) t.join();

  for (std::size_t t = 0; t < drained.size(); ++t) {
    EXPECT_EQ(drained[t], 1) << "stop() caller " << t << " observed an unbalanced ledger";
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, accepted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.requests, completed.load());
  EXPECT_EQ(stats.dropped, dropped.load());
  EXPECT_EQ(stats.accepted, stats.requests + stats.dropped);
}

// Overload semantics are mode-independent: the legacy per-slot fan-out
// path enforces the same bounded queue and deadline contract.
TEST(ModelServerOverload, FanoutPathEnforcesTheSameAdmissionControl) {
  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_wait_us = 10'000'000;
  options.max_queue = 2;
  options.per_slot_fanout = true;
  serve::ModelServer server(compiled_small(), options);

  const std::vector<Tensor> inputs = sample_inputs(4, 53);
  std::future<Tensor> doomed = server.submit(inputs[0], /*deadline_us=*/-1);
  EXPECT_THROW(doomed.get(), serve::DeadlineExpiredError);

  std::vector<std::future<Tensor>> futures;
  futures.push_back(server.submit(inputs[1]));
  futures.push_back(server.submit(inputs[2]));
  EXPECT_THROW(server.submit(inputs[3]), serve::QueueFullError);

  server.stop();
  for (std::future<Tensor>& f : futures) EXPECT_GT(f.get().numel(), 0u);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 3);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_EQ(stats.requests, 2);
}

}  // namespace
}  // namespace micronas
