// Packed int8 GEMM kernels: the blocked/vectorized paths behind
// qconv2d_auto / qlinear_auto must be byte-identical to the scalar
// reference kernels for every shape, batch size and thread count the
// selection table can route to them — exact int32 accumulation means
// layout and schedule cannot legally change a single output byte.
// Also pins the packing layout (ABI: serialized into .mnpkg PACK
// sections), the selection table itself, and the BatchedExecutor
// per-sample parallelism gate these kernels run behind.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/compile/compiler.hpp"
#include "src/hw/quant.hpp"
#include "src/nb201/genotype.hpp"
#include "src/rt/kernels_int8.hpp"
#include "src/rt/kernels_int8_gemm.hpp"
#include "src/rt/runtime.hpp"

namespace micronas::rt {
namespace {

struct ConvCase {
  int batch, cin, hw, cout, kernel, stride, pad;
};

std::string case_name(const ConvCase& c) {
  return "batch=" + std::to_string(c.batch) + " cin=" + std::to_string(c.cin) +
         " hw=" + std::to_string(c.hw) + " cout=" + std::to_string(c.cout) +
         " k=" + std::to_string(c.kernel) + " s=" + std::to_string(c.stride) +
         " p=" + std::to_string(c.pad);
}

/// Random-but-deterministic conv operands with per-channel requant
/// params covering both positive and negative shifts.
struct ConvData {
  std::vector<std::int8_t> input, weight;
  std::vector<std::int32_t> bias, weight_sum, mantissa;
  std::vector<int> shift;
  int out_h, out_w;

  explicit ConvData(const ConvCase& c, std::uint32_t seed) {
    std::mt19937 rng(seed);
    out_h = (c.hw + 2 * c.pad - c.kernel) / c.stride + 1;
    out_w = out_h;
    const int patch = c.cin * c.kernel * c.kernel;
    input.resize(static_cast<std::size_t>(c.batch) * c.cin * c.hw * c.hw);
    weight.resize(static_cast<std::size_t>(c.cout) * patch);
    for (auto& v : input) v = static_cast<std::int8_t>(rng());
    for (auto& v : weight) v = static_cast<std::int8_t>(rng());
    bias.resize(c.cout);
    weight_sum.assign(c.cout, 0);
    mantissa.resize(c.cout);
    shift.resize(c.cout);
    for (int ch = 0; ch < c.cout; ++ch) {
      bias[ch] = static_cast<std::int32_t>(rng() % 2001) - 1000;
      for (int k = 0; k < patch; ++k) weight_sum[ch] += weight[ch * patch + k];
      quantize_multiplier(0.0005 + 0.001 * (ch % 7), &mantissa[ch], &shift[ch]);
    }
  }
};

QConv2dArgs conv_args(const ConvCase& c, ConvData& d, std::int8_t* columns, std::int8_t* out) {
  QConv2dArgs a{};
  a.batch = c.batch;
  a.cin = c.cin;
  a.h = a.w = c.hw;
  a.cout = c.cout;
  a.kernel = c.kernel;
  a.stride = c.stride;
  a.pad = c.pad;
  a.out_h = d.out_h;
  a.out_w = d.out_w;
  a.in_zp = -3;
  a.out_zp = 5;
  a.fused_relu = true;
  a.input = d.input.data();
  a.weight = d.weight.data();
  a.bias = d.bias.data();
  a.weight_sum = d.weight_sum.data();
  a.mantissa = d.mantissa.data();
  a.shift = d.shift.data();
  a.columns = columns;
  a.output = out;
  return a;
}

std::size_t conv_scratch_bytes(const ConvCase& c, const ConvData& d) {
  const std::size_t scalar = static_cast<std::size_t>(c.batch) * d.out_h * d.out_w * c.cin *
                             c.kernel * c.kernel;
  const std::size_t gemm = static_cast<std::size_t>(c.batch) *
                           qconv_gemm_scratch_bytes(c.cin, c.hw, c.hw, c.kernel, c.pad, d.out_h,
                                                    d.out_w);
  return std::max(scalar, gemm);
}

// The headline property: for a grid of shapes crossing kernel size,
// stride, padding, ragged channel counts and batch sizes, every kernel
// the selection table can pick produces output bytes memcmp-equal to
// the scalar reference, for serial and pooled execution alike.
TEST(QConvGemm, AllSelectedKernelsBitIdenticalToScalarAcrossShapesAndThreads) {
  const ConvCase cases[] = {
      {1, 3, 9, 8, 3, 1, 1},   {1, 16, 16, 16, 3, 1, 1}, {2, 16, 16, 8, 3, 2, 1},
      {1, 33, 7, 17, 3, 1, 1}, {3, 8, 5, 24, 3, 2, 1},   {1, 16, 8, 16, 3, 1, 0},
      {1, 16, 16, 16, 1, 1, 0}, {2, 64, 4, 64, 1, 1, 0}, {1, 32, 8, 32, 1, 2, 0},
      {2, 24, 6, 40, 1, 1, 0},  {1, 64, 8, 64, 1, 1, 0},
  };
  ThreadPool pool3(3);
  ThreadPool pool7(7);
  for (const ConvCase& c : cases) {
    ConvData d(c, 0xC0FFEEu ^ static_cast<std::uint32_t>(c.cin * 131 + c.kernel));
    const std::size_t out_elems = static_cast<std::size_t>(c.batch) * c.cout * d.out_h * d.out_w;
    std::vector<std::int8_t> scratch(conv_scratch_bytes(c, d));
    std::vector<std::int8_t> ref(out_elems), got(out_elems);

    QConv2dArgs a = conv_args(c, d, scratch.data(), ref.data());
    qconv2d(a, nullptr);

    const int patch = c.cin * c.kernel * c.kernel;
    const PackedWeights packed = pack_weights_dot16(d.weight.data(), c.cout, patch);
    struct Variant {
      const char* what;
      const PackedWeights* packed;
      ThreadPool* pool;
    };
    const Variant variants[] = {
        {"auto/packed/serial", &packed, nullptr}, {"auto/packed/pool3", &packed, &pool3},
        {"auto/packed/pool7", &packed, &pool7},   {"auto/unpacked/serial", nullptr, nullptr},
        {"auto/unpacked/pool3", nullptr, &pool3},
    };
    for (const Variant& v : variants) {
      std::fill(got.begin(), got.end(), std::int8_t{0});
      QConv2dArgs b = conv_args(c, d, scratch.data(), got.data());
      qconv2d_auto(b, v.packed, v.pool);
      ASSERT_EQ(std::memcmp(ref.data(), got.data(), out_elems), 0)
          << case_name(c) << " via " << v.what << " ("
          << qconv_kernel_name(select_qconv_kernel(b, v.packed)) << ")";
    }
  }
}

TEST(QConvGemm, GemmKernelItselfBitIdenticalWhereSelectionPrefersDirect) {
  // 1x1/s1/p0 with a large plane routes to the direct kernel; force
  // the GEMM down the same shapes via a stride-2 sibling so both
  // blocked kernels stay covered on 1x1 weights.
  const ConvCase c{2, 32, 8, 32, 1, 2, 0};
  ConvData d(c, 77);
  const std::size_t out_elems = static_cast<std::size_t>(c.batch) * c.cout * d.out_h * d.out_w;
  std::vector<std::int8_t> scratch(conv_scratch_bytes(c, d));
  std::vector<std::int8_t> ref(out_elems), got(out_elems);
  QConv2dArgs a = conv_args(c, d, scratch.data(), ref.data());
  qconv2d(a, nullptr);
  const PackedWeights packed = pack_weights_dot16(d.weight.data(), c.cout, c.cin);
  QConv2dArgs b = conv_args(c, d, scratch.data(), got.data());
  ASSERT_EQ(select_qconv_kernel(b, &packed),
            fast_kernels_enabled() ? QConvKernel::kIm2colGemm : QConvKernel::kScalar);
  qconv2d_auto(b, &packed, nullptr);
  EXPECT_EQ(std::memcmp(ref.data(), got.data(), out_elems), 0);
}

TEST(QLinearGemm, BitIdenticalToScalarAcrossShapesAndThreads) {
  struct LinCase {
    int batch, in_features, out_features;
  };
  const LinCase cases[] = {{1, 64, 10}, {3, 64, 10}, {5, 37, 13}, {2, 256, 100}, {7, 8, 3}};
  ThreadPool pool4(4);
  for (const LinCase& c : cases) {
    std::mt19937 rng(static_cast<std::uint32_t>(c.in_features * 1009 + c.batch));
    std::vector<std::int8_t> input(static_cast<std::size_t>(c.batch) * c.in_features);
    std::vector<std::int8_t> weight(static_cast<std::size_t>(c.out_features) * c.in_features);
    for (auto& v : input) v = static_cast<std::int8_t>(rng());
    for (auto& v : weight) v = static_cast<std::int8_t>(rng());
    std::vector<std::int32_t> bias(c.out_features), wsum(c.out_features, 0),
        mant(c.out_features);
    std::vector<int> shift(c.out_features);
    for (int o = 0; o < c.out_features; ++o) {
      bias[o] = static_cast<std::int32_t>(rng() % 400) - 200;
      for (int k = 0; k < c.in_features; ++k) wsum[o] += weight[o * c.in_features + k];
      quantize_multiplier(0.002 + 0.0003 * o, &mant[o], &shift[o]);
    }
    std::vector<std::int8_t> ref(static_cast<std::size_t>(c.batch) * c.out_features);
    std::vector<std::int8_t> got(ref.size());
    QLinearArgs a{};
    a.batch = c.batch;
    a.in_features = c.in_features;
    a.out_features = c.out_features;
    a.in_zp = 2;
    a.out_zp = -7;
    a.input = input.data();
    a.weight = weight.data();
    a.bias = bias.data();
    a.weight_sum = wsum.data();
    a.mantissa = mant.data();
    a.shift = shift.data();
    a.output = ref.data();
    qlinear(a, nullptr);
    const PackedWeights packed =
        pack_weights_dot16(weight.data(), c.out_features, c.in_features);
    for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &pool4}) {
      std::fill(got.begin(), got.end(), std::int8_t{0});
      a.output = got.data();
      qlinear_auto(a, &packed, pool);
      ASSERT_EQ(std::memcmp(ref.data(), got.data(), ref.size()), 0)
          << "batch=" << c.batch << " in=" << c.in_features << " out=" << c.out_features
          << (pool ? " pooled" : " serial");
    }
  }
}

// ------------------------------------------------------ packing layout

TEST(PackWeights, Dot16LayoutWidensRowsAndZeroPadsTheTail) {
  const int cout = 3, patch = kDotLanes + 5;  // forces a ragged K tail
  std::vector<std::int8_t> weight(static_cast<std::size_t>(cout) * patch);
  std::mt19937 rng(9);
  for (auto& v : weight) v = static_cast<std::int8_t>(rng());
  const PackedWeights pw = pack_weights_dot16(weight.data(), cout, patch);
  EXPECT_EQ(pw.layout, WeightLayout::kPackedDot16);
  EXPECT_EQ(pw.cout, cout);
  EXPECT_EQ(pw.patch, patch);
  EXPECT_EQ(pw.padded_patch(), 2 * kDotLanes);
  ASSERT_EQ(pw.data.size(), static_cast<std::size_t>(cout) * pw.padded_patch());
  for (int c = 0; c < cout; ++c) {
    for (int k = 0; k < pw.padded_patch(); ++k) {
      const std::int16_t want = k < patch ? static_cast<std::int16_t>(weight[c * patch + k]) : 0;
      ASSERT_EQ(pw.data[static_cast<std::size_t>(c) * pw.padded_patch() + k], want)
          << "row " << c << " lane " << k;
    }
  }
}

TEST(PackWeights, GraphPackingCoversExactlyTheWantedNodesKeyedByConsumer) {
  const nb201::Genotype g = nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_1x1~1|+|avg_pool_3x3~0|skip_connect~1|nor_conv_3x3~2|");
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.calibration_batches = 1;
  options.quantize = true;
  options.seed = 3;
  const compile::CompiledModel model = compile::compile_genotype(g, options);
  const PackedWeightSet set = pack_graph_weights(model.graph);
  int packed_nodes = 0;
  for (const ir::Node& node : model.graph.nodes()) {
    const PackedWeights* pw = set.find(node.id);
    if (node_wants_packed_weights(model.graph, node)) {
      ASSERT_NE(pw, nullptr) << "node " << node.id;
      const ir::Node& weight = model.graph.node(node.inputs[1]);
      EXPECT_EQ(pw->cout, weight.type.shape[0]);
      EXPECT_EQ(static_cast<std::size_t>(pw->cout) * pw->padded_patch(), pw->data.size());
      ++packed_nodes;
    } else {
      EXPECT_EQ(pw, nullptr) << "node " << node.id;
    }
  }
  EXPECT_GT(packed_nodes, 0);
  EXPECT_FALSE(set.empty());
  // Out-of-range ids must not fault.
  EXPECT_EQ(set.find(-1), nullptr);
  EXPECT_EQ(set.find(1 << 20), nullptr);
}

// --------------------------------------------------- selection table

TEST(KernelSelection, TableRoutesByShapeAndPackedAvailability) {
  if (!fast_kernels_enabled()) GTEST_SKIP() << "portable build: always scalar";
  ConvCase big1x1{1, 16, 16, 16, 1, 1, 0};  // 256 out pixels
  ConvData dbig(big1x1, 1);
  std::vector<std::int8_t> scratch(conv_scratch_bytes(big1x1, dbig));
  std::vector<std::int8_t> out(16 * 16 * 16);
  QConv2dArgs a = conv_args(big1x1, dbig, scratch.data(), out.data());
  const PackedWeights packed1x1 = pack_weights_dot16(dbig.weight.data(), 16, 16);
  // Large-plane 1x1 prefers direct even when packed weights exist.
  EXPECT_EQ(select_qconv_kernel(a, &packed1x1), QConvKernel::kDirectConv);
  EXPECT_EQ(select_qconv_kernel(a, nullptr), QConvKernel::kDirectConv);

  ConvCase small1x1{1, 64, 4, 64, 1, 1, 0};  // 16 out pixels: below kDirectMinPix
  ConvData dsmall(small1x1, 2);
  std::vector<std::int8_t> scratch2(conv_scratch_bytes(small1x1, dsmall));
  std::vector<std::int8_t> out2(64 * 4 * 4);
  QConv2dArgs b = conv_args(small1x1, dsmall, scratch2.data(), out2.data());
  const PackedWeights packed_small = pack_weights_dot16(dsmall.weight.data(), 64, 64);
  EXPECT_EQ(select_qconv_kernel(b, &packed_small), QConvKernel::kIm2colGemm);
  EXPECT_EQ(select_qconv_kernel(b, nullptr), QConvKernel::kDirectConv);

  ConvCase spatial{1, 16, 16, 16, 3, 1, 1};
  ConvData dsp(spatial, 3);
  std::vector<std::int8_t> scratch3(conv_scratch_bytes(spatial, dsp));
  std::vector<std::int8_t> out3(16 * 16 * 16);
  QConv2dArgs s = conv_args(spatial, dsp, scratch3.data(), out3.data());
  const PackedWeights packed_sp = pack_weights_dot16(dsp.weight.data(), 16, 16 * 9);
  EXPECT_EQ(select_qconv_kernel(s, &packed_sp), QConvKernel::kIm2colGemm);
  // Spatial conv without packed weights: scalar, never a blocked path.
  EXPECT_EQ(select_qconv_kernel(s, nullptr), QConvKernel::kScalar);
  // A packed set for the WRONG shape must not be trusted.
  const PackedWeights mismatched = pack_weights_dot16(dsp.weight.data(), 16, 16);
  EXPECT_EQ(select_qconv_kernel(s, &mismatched), QConvKernel::kScalar);

  QLinearArgs l{};
  l.batch = 1;
  l.in_features = 64;
  l.out_features = 10;
  std::vector<std::int8_t> lw(640);
  const PackedWeights packed_lin = pack_weights_dot16(lw.data(), 10, 64);
  EXPECT_EQ(select_qlinear_kernel(l, &packed_lin), QLinearKernel::kGemm);
  EXPECT_EQ(select_qlinear_kernel(l, nullptr), QLinearKernel::kScalar);
}

// ------------------------------------- batched executor dispatch gate

TEST(BatchedDispatchGate, SampleIoBytesCountsRealBytesNotElements) {
  const nb201::Genotype g = nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_3x3~1|+|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|");
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.calibration_batches = 1;
  options.quantize = true;
  options.seed = 5;
  const compile::CompiledModel model = compile::compile_genotype(g, options);
  bool saw_int8 = false, saw_f32 = false;
  for (const ir::Node& node : model.graph.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    const std::size_t bytes = BatchedExecutor::sample_io_bytes(model.graph, node);
    if (bytes == 0 || bytes == ~std::size_t{0}) continue;  // heavy ops: always parallel
    const auto elem_bytes = [](ir::DType t) {
      return t == ir::DType::kI8 ? std::size_t{1} : sizeof(float);
    };
    std::size_t expect = node.type.shape.numel() * elem_bytes(node.type.dtype);
    for (int in : node.inputs) {
      const ir::Node& src = model.graph.node(in);
      if (src.is_const()) continue;
      expect += src.type.shape.numel() * elem_bytes(src.type.dtype);
    }
    ASSERT_EQ(bytes, expect) << "node " << node.id << " op "
                             << static_cast<int>(node.op);
    if (node.type.dtype == ir::DType::kI8) saw_int8 = true;
    if (node.type.dtype == ir::DType::kF32) saw_f32 = true;
  }
  EXPECT_TRUE(saw_int8);
  // An int8 tensor of N elements must gate on N bytes (not 4N): a
  // 16x16x16 int8 activation (4 KB in+out ~ 12 KB with two inputs) sits
  // far below the 32 KB gate even though 4N would put f32 there.
  EXPECT_LT(std::size_t{3} * 16 * 16 * 16, BatchedExecutor::kMinParallelSampleBytes);
  (void)saw_f32;
}

}  // namespace
}  // namespace micronas::rt
