#include <gtest/gtest.h>

#include <set>

#include "src/nb201/genotype.hpp"

namespace micronas::nb201 {
namespace {

TEST(Ops, NamesRoundTrip) {
  for (Op op : kAllOps) {
    EXPECT_EQ(op_from_name(op_name(op)), op);
  }
  EXPECT_THROW(op_from_name("conv7x7"), std::invalid_argument);
}

TEST(Ops, SignalAndParams) {
  EXPECT_FALSE(op_carries_signal(Op::kNone));
  EXPECT_TRUE(op_carries_signal(Op::kSkipConnect));
  EXPECT_TRUE(op_has_params(Op::kConv1x1));
  EXPECT_TRUE(op_has_params(Op::kConv3x3));
  EXPECT_FALSE(op_has_params(Op::kAvgPool3x3));
  EXPECT_FALSE(op_has_params(Op::kSkipConnect));
}

TEST(EdgeIndexing, CanonicalOrder) {
  EXPECT_EQ(edge_index(0, 1), 0);
  EXPECT_EQ(edge_index(0, 2), 1);
  EXPECT_EQ(edge_index(1, 2), 2);
  EXPECT_EQ(edge_index(0, 3), 3);
  EXPECT_EQ(edge_index(1, 3), 4);
  EXPECT_EQ(edge_index(2, 3), 5);
  EXPECT_THROW(edge_index(1, 0), std::invalid_argument);
  EXPECT_THROW(edge_index(0, 0), std::invalid_argument);
}

TEST(EdgeIndexing, EndpointsInverse) {
  for (int e = 0; e < kNumEdges; ++e) {
    const auto ep = edge_endpoints(e);
    EXPECT_EQ(edge_index(ep.from, ep.to), e);
  }
  EXPECT_THROW(edge_endpoints(6), std::out_of_range);
}

TEST(Genotype, DefaultIsAllNone) {
  const Genotype g;
  for (int e = 0; e < kNumEdges; ++e) EXPECT_EQ(g.op(e), Op::kNone);
  EXPECT_EQ(g.index(), 0);
}

TEST(Genotype, IndexRoundTripExhaustive) {
  for (int i = 0; i < kNumArchitectures; ++i) {
    EXPECT_EQ(Genotype::from_index(i).index(), i);
  }
}

TEST(Genotype, IndexBounds) {
  EXPECT_THROW(Genotype::from_index(-1), std::out_of_range);
  EXPECT_THROW(Genotype::from_index(kNumArchitectures), std::out_of_range);
}

TEST(Genotype, StringFormat) {
  Genotype g;
  g.set_op(edge_index(0, 1), Op::kConv3x3);
  g.set_op(edge_index(1, 2), Op::kSkipConnect);
  g.set_op(edge_index(2, 3), Op::kConv1x1);
  EXPECT_EQ(g.to_string(),
            "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|none~0|none~1|nor_conv_1x1~2|");
}

TEST(Genotype, StringRoundTripSampled) {
  for (int i = 0; i < kNumArchitectures; i += 137) {
    const Genotype g = Genotype::from_index(i);
    EXPECT_EQ(Genotype::from_string(g.to_string()), g) << g.to_string();
  }
}

TEST(Genotype, FromStringRejectsMalformed) {
  EXPECT_THROW(Genotype::from_string("|none~0|"), std::invalid_argument);
  EXPECT_THROW(Genotype::from_string("|bogus~0|+|none~0|none~1|+|none~0|none~1|none~2|"),
               std::invalid_argument);
  EXPECT_THROW(Genotype::from_string("|none~5|+|none~0|none~1|+|none~0|none~1|none~2|"),
               std::invalid_argument);
}

TEST(Genotype, StableHashDistinct) {
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < kNumArchitectures; i += 11) {
    hashes.insert(Genotype::from_index(i).stable_hash());
  }
  // No collisions across the sampled subset.
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>((kNumArchitectures + 10) / 11));
}

TEST(Genotype, OrderingUsableAsKey) {
  const Genotype a = Genotype::from_index(3);
  const Genotype b = Genotype::from_index(4);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(Genotype, SetOpBounds) {
  Genotype g;
  EXPECT_THROW(g.set_op(-1, Op::kNone), std::out_of_range);
  EXPECT_THROW(g.set_op(6, Op::kNone), std::out_of_range);
  EXPECT_THROW(g.op(6), std::out_of_range);
}

}  // namespace
}  // namespace micronas::nb201
