#include <gtest/gtest.h>

#include "src/nb201/canonical.hpp"
#include "src/nb201/features.hpp"
#include "src/nb201/surrogate.hpp"
#include "src/mcusim/cortex_m7.hpp"
#include "src/proxies/flops.hpp"

namespace micronas::nb201 {
namespace {

TEST(Canonical, Idempotent) {
  for (int i = 0; i < kNumArchitectures; i += 131) {
    const Genotype g = Genotype::from_index(i);
    const Genotype c = canonicalize(g);
    EXPECT_EQ(canonicalize(c), c) << g.to_string();
    EXPECT_TRUE(is_canonical(c));
  }
}

TEST(Canonical, DeadEdgeRewritten) {
  // Conv on 0->1 with node 1 dead-ended: canonical form drops it.
  Genotype g;
  g.set_op(edge_index(0, 1), Op::kConv3x3);
  g.set_op(edge_index(0, 3), Op::kSkipConnect);
  const Genotype c = canonicalize(g);
  EXPECT_EQ(c.op(edge_index(0, 1)), Op::kNone);
  EXPECT_EQ(c.op(edge_index(0, 3)), Op::kSkipConnect);
}

TEST(Canonical, LiveCellUnchanged) {
  std::array<Op, kNumEdges> ops;
  ops.fill(Op::kConv3x3);
  const Genotype g(ops);
  EXPECT_EQ(canonicalize(g), g);
}

TEST(Canonical, DisconnectedCollapsesToEmpty) {
  Genotype g;
  g.set_op(edge_index(0, 1), Op::kConv3x3);
  g.set_op(edge_index(1, 2), Op::kAvgPool3x3);  // never reaches node 3
  const Genotype c = canonicalize(g);
  EXPECT_EQ(c, Genotype{});
}

TEST(Canonical, EquivalenceRespectsFunction) {
  // Two genotypes differing only on a dead edge are equivalent.
  Genotype a;
  a.set_op(edge_index(0, 3), Op::kConv1x1);
  Genotype b = a;
  b.set_op(edge_index(0, 1), Op::kAvgPool3x3);  // dead: node 1 unused
  EXPECT_TRUE(functionally_equivalent(a, b));
  Genotype c = a;
  c.set_op(edge_index(0, 3), Op::kConv3x3);
  EXPECT_FALSE(functionally_equivalent(a, c));
}

TEST(Canonical, EquivalentCellsShareStructuralScore) {
  const SurrogateOracle oracle;
  Genotype a;
  a.set_op(edge_index(0, 2), Op::kConv3x3);
  a.set_op(edge_index(2, 3), Op::kConv1x1);
  Genotype b = a;
  b.set_op(edge_index(0, 1), Op::kConv3x3);  // dead edge (node 1 unused)
  EXPECT_DOUBLE_EQ(oracle.structural_score(a, Dataset::kCifar10),
                   oracle.structural_score(b, Dataset::kCifar10));
}

TEST(Canonical, SpaceCensus) {
  const SpaceRedundancy r = analyze_space_redundancy();
  EXPECT_EQ(r.total, kNumArchitectures);
  // The canonical classes are a strict subset of the space but still
  // number in the thousands.
  EXPECT_LT(r.canonical_classes, kNumArchitectures);
  EXPECT_GT(r.canonical_classes, 1000);
  EXPECT_GE(r.already_canonical, r.canonical_classes);
  EXPECT_GT(r.redundancy_fraction(), 0.05);
  EXPECT_LT(r.redundancy_fraction(), 0.95);
}


TEST(Canonical, DeadCodeEliminationNeverSlowerOrLarger) {
  // Deploying the canonical form is a semantics-preserving optimization
  // pass: dead edges execute on the MCU but contribute nothing, so the
  // canonicalized model is never slower, never larger, and identical in
  // function (equal structural score).
  const SurrogateOracle oracle;
  for (int i = 0; i < kNumArchitectures; i += 449) {
    const Genotype g = Genotype::from_index(i);
    const Genotype c = canonicalize(g);
    EXPECT_DOUBLE_EQ(oracle.structural_score(g, Dataset::kCifar10),
                     oracle.structural_score(c, Dataset::kCifar10));
    EXPECT_LE(micronas::flops_m(c), micronas::flops_m(g) + 1e-12);
    EXPECT_LE(micronas::params_m(c), micronas::params_m(g) + 1e-12);
    const double lat_g =
        micronas::simulate_network(micronas::build_macro_model(g)).latency_ms;
    const double lat_c =
        micronas::simulate_network(micronas::build_macro_model(c)).latency_ms;
    EXPECT_LE(lat_c, lat_g + 1e-9) << g.to_string();
  }
}

TEST(Canonical, EliminationSavesRealLatencyWhenDeadConvsExist) {
  Genotype g;
  g.set_op(edge_index(0, 3), Op::kSkipConnect);
  g.set_op(edge_index(0, 1), Op::kConv3x3);  // dead: node 1 unused
  const Genotype c = canonicalize(g);
  const double lat_g = micronas::simulate_network(micronas::build_macro_model(g)).latency_ms;
  const double lat_c = micronas::simulate_network(micronas::build_macro_model(c)).latency_ms;
  EXPECT_LT(lat_c, 0.7 * lat_g);  // 15 dead conv3x3 instances eliminated
}

}  // namespace
}  // namespace micronas::nb201
