// BatchedExecutor: one coalesced batch is ONE executor invocation, and
// batching must be invisible in the numbers — sample i of any
// run_batch is bit-identical to a serial Executor::run of the same
// input, across sampled genotypes, batch sizes (incl. ragged final
// batches), slot positions and thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "src/compile/compiler.hpp"
#include "src/data/synthetic.hpp"
#include "src/nb201/space.hpp"
#include "src/rt/memory_planner.hpp"
#include "src/rt/runtime.hpp"

namespace micronas {
namespace {

constexpr int kCapacity = 4;

compile::CompiledModel compile_small(const nb201::Genotype& g, bool quantize = true) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.calibration_batches = 1;
  options.quantize = quantize;
  options.seed = 13;
  return compile::compile_genotype(g, options);
}

std::vector<Tensor> sample_inputs(int n, std::uint64_t seed, int input_size = 8) {
  DatasetSpec spec;
  spec.height = spec.width = input_size;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs.push_back(data.sample_batch(1, rng).images);
  return inputs;
}

void expect_bit_identical(const Tensor& got, const Tensor& want, const std::string& what) {
  ASSERT_EQ(got.numel(), want.numel()) << what;
  for (std::size_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << what << " diverges at logit " << i;
  }
}

/// Feed `inputs` through a BatchedExecutor in chunks of at most
/// `chunk` (the final batch is ragged when chunk does not divide the
/// count) and assert every sample against the serial expectation.
void check_chunked(rt::BatchedExecutor& batched, const std::vector<Tensor>& inputs,
                   const std::vector<Tensor>& expected, int chunk, const std::string& what) {
  std::size_t done = 0;
  while (done < inputs.size()) {
    const std::size_t take = std::min(static_cast<std::size_t>(chunk), inputs.size() - done);
    const std::vector<Tensor> logits =
        batched.run_batch(std::span<const Tensor>(inputs.data() + done, take));
    ASSERT_EQ(logits.size(), take);
    for (std::size_t i = 0; i < take; ++i) {
      expect_bit_identical(logits[i], expected[done + i],
                           what + ": input " + std::to_string(done + i) + " in a batch of " +
                               std::to_string(take) + " at slot " + std::to_string(i));
    }
    done += take;
  }
}

// The headline property: over ~25 sampled genotypes, batched logits
// are bit-identical to serial per-input for batch sizes {1, 3, N,
// N+ragged} and thread counts {1, 3} — partial final batches included.
TEST(BatchedExecutor, BatchedLogitsBitIdenticalToSerialOnSampledGenotypes) {
  Rng rng(101);
  const std::vector<nb201::Genotype> genotypes = nb201::sample_genotypes(rng, 25);
  // kCapacity + 3 inputs: chunk kCapacity leaves a ragged final batch
  // of 3; chunk 3 leaves a ragged final batch of 1.
  const int kInputs = kCapacity + 3;

  int arch = 0;
  for (const auto& g : genotypes) {
    const compile::CompiledModel model = compile_small(g);
    const std::vector<Tensor> inputs =
        sample_inputs(kInputs, 900 + static_cast<std::uint64_t>(arch));

    rt::Executor serial(model.graph, model.plan, rt::ExecOptions{1});
    std::vector<Tensor> expected;
    expected.reserve(inputs.size());
    for (const Tensor& in : inputs) expected.push_back(serial.run(in));

    for (const int threads : {1, 3}) {
      rt::BatchedExecutor batched(model.graph, kCapacity, rt::ExecOptions{threads});
      const std::string what =
          "arch " + std::to_string(arch) + " (" + g.to_string() + ") threads " +
          std::to_string(threads);
      for (const int chunk : {1, 3, kCapacity}) {
        check_chunked(batched, inputs, expected, chunk, what);
      }
    }
    ++arch;
  }
}

// Slot position must not matter: the same input run at every slot of a
// full batch (alongside different neighbors) yields the same logits.
TEST(BatchedExecutor, SlotPositionDoesNotChangeLogits) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(7777));
  const std::vector<Tensor> inputs = sample_inputs(kCapacity, 31);

  rt::Executor serial(model.graph, model.plan, rt::ExecOptions{1});
  const Tensor expected = serial.run(inputs[0]);

  rt::BatchedExecutor batched(model.graph, kCapacity, rt::ExecOptions{2});
  for (int slot = 0; slot < kCapacity; ++slot) {
    std::vector<Tensor> batch = inputs;
    std::swap(batch[0], batch[static_cast<std::size_t>(slot)]);
    const std::vector<Tensor> logits = batched.run_batch(std::span<const Tensor>(batch));
    expect_bit_identical(logits[static_cast<std::size_t>(slot)], expected,
                         "slot " + std::to_string(slot));
  }
}

// The arena really is compiled at batch capacity: N times the batch-1
// arena's liveness (same schedule, scaled buffers), and the
// CompiledModel::plan_for_batch plumbing agrees with what the executor
// plans for itself.
TEST(BatchedExecutor, ArenaScalesWithBatchCapacity) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(42));
  const rt::MemoryPlan batch_plan = model.plan_for_batch(kCapacity);
  ASSERT_EQ(batch_plan.buffers.size(), model.plan.buffers.size());
  EXPECT_EQ(batch_plan.schedule, model.plan.schedule);
  for (std::size_t i = 0; i < batch_plan.buffers.size(); ++i) {
    EXPECT_EQ(batch_plan.buffers[i].size, model.plan.buffers[i].size * kCapacity);
    EXPECT_EQ(batch_plan.buffers[i].def_step, model.plan.buffers[i].def_step);
    EXPECT_EQ(batch_plan.buffers[i].last_use_step, model.plan.buffers[i].last_use_step);
  }
  // The arena itself re-packs the scaled buffers (alignment padding
  // amortizes), so only a lower bound is exact: it must at least hold
  // kCapacity copies of the largest value.
  long long largest = 0;
  for (const auto& b : model.plan.buffers) largest = std::max(largest, b.size);
  EXPECT_GE(batch_plan.arena_bytes, largest * kCapacity);

  rt::BatchedExecutor from_plan(model.graph, batch_plan, kCapacity, rt::ExecOptions{1});
  rt::BatchedExecutor self_planned(model.graph, kCapacity, rt::ExecOptions{1});
  EXPECT_EQ(from_plan.arena_bytes(), self_planned.arena_bytes());
  EXPECT_EQ(from_plan.batch_capacity(), kCapacity);

  const std::vector<Tensor> inputs = sample_inputs(kCapacity, 77);
  const std::vector<Tensor> a = from_plan.run_batch(std::span<const Tensor>(inputs));
  const std::vector<Tensor> b = self_planned.run_batch(std::span<const Tensor>(inputs));
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    expect_bit_identical(a[i], b[i], "plan provenance, input " + std::to_string(i));
  }
}

// A float pipeline (quantize=false) batches the same way — the
// broadcast path over the f32 reference kernels.
TEST(BatchedExecutor, FloatPipelineBatchesBitIdentically) {
  const compile::CompiledModel model =
      compile_small(nb201::Genotype::from_index(1234), /*quantize=*/false);
  const std::vector<Tensor> inputs = sample_inputs(kCapacity + 1, 55);

  rt::Executor serial(model.graph, model.plan, rt::ExecOptions{1});
  std::vector<Tensor> expected;
  for (const Tensor& in : inputs) expected.push_back(serial.run(in));

  for (const int threads : {1, 2}) {
    rt::BatchedExecutor batched(model.graph, kCapacity, rt::ExecOptions{threads});
    check_chunked(batched, inputs, expected, kCapacity,
                  "float pipeline, threads " + std::to_string(threads));
  }
}

// A fully folded graph (all-`none` genotype, output is a constant)
// still serves every sample of a batch that constant.
TEST(BatchedExecutor, FullyFoldedConstOutputBroadcasts) {
  const compile::CompiledModel model = compile_small(nb201::Genotype(), /*quantize=*/false);
  ASSERT_TRUE(model.graph.node(model.graph.output()).is_const());

  rt::BatchedExecutor batched(model.graph, 3, rt::ExecOptions{1});
  const std::vector<Tensor> inputs = sample_inputs(3, 9);
  const std::vector<Tensor> logits = batched.run_batch(std::span<const Tensor>(inputs));
  ASSERT_EQ(logits.size(), 3u);
  expect_bit_identical(logits[1], logits[0], "const output, sample 1");
  expect_bit_identical(logits[2], logits[0], "const output, sample 2");
}

TEST(BatchedExecutor, RejectsBadBatchesAndPlans) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(5));
  rt::BatchedExecutor batched(model.graph, 2, rt::ExecOptions{1});

  // Empty and over-capacity batches.
  EXPECT_THROW(batched.run_batch(std::span<const Tensor>()), std::invalid_argument);
  const std::vector<Tensor> three = sample_inputs(3, 1);
  EXPECT_THROW(batched.run_batch(std::span<const Tensor>(three)), std::invalid_argument);

  // Wrong input shape, at any slot.
  std::vector<Tensor> mixed = sample_inputs(2, 2);
  mixed[1] = Tensor(Shape{1, 3, 4, 4});
  EXPECT_THROW(batched.run_batch(std::span<const Tensor>(mixed)), std::invalid_argument);

  // Capacity must be positive, and a batch-1 plan is not a batch-4 plan.
  EXPECT_THROW(rt::BatchedExecutor(model.graph, 0, rt::ExecOptions{1}), std::invalid_argument);
  EXPECT_THROW(rt::BatchedExecutor(model.graph, model.plan, 4, rt::ExecOptions{1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace micronas
