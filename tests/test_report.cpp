#include <gtest/gtest.h>

#include "src/core/report.hpp"

namespace micronas {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"Name", "Value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "23456"});
  const std::string out = t.render();
  // Header, rule, two rows.
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
}

TEST(TablePrinter, RowWidthChecked) {
  TablePrinter t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, EmptyHeadersThrow) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, NumericFormatting) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::fmt_int(1234), "1234");
}

}  // namespace
}  // namespace micronas
