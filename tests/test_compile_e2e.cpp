// Golden end-to-end compile regression: a fixed genotype + seed must
// keep producing the same compile report (node counts, pass effects,
// arena plan, predicted/executed latency) and bit-identical int8
// logits (FNV-1a over the output bytes).
//
// The golden file lives at tests/golden/compile_report.golden. After
// an *intentional* behaviour change, regenerate with
//
//   scripts/update_golden.sh
//
// (equivalently: MICRONAS_UPDATE_GOLDEN=1 ./build/test_compile_e2e)
// and commit the diff alongside the change that caused it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/core/micronas.hpp"
#include "src/data/synthetic.hpp"
#include "src/hw/latency_estimator.hpp"
#include "src/rt/runtime.hpp"
#include "src/serialize/serialize.hpp"

namespace micronas {
namespace {

#ifndef MICRONAS_SOURCE_DIR
#error "MICRONAS_SOURCE_DIR must point at the repository root"
#endif

const char* golden_path() { return MICRONAS_SOURCE_DIR "/tests/golden/compile_report.golden"; }

/// The fixed scenario: reduced skeleton, seed 7, deterministic
/// profiling — everything that feeds the report is a pure function of
/// this block.
std::string run_fixed_compile() {
  const nb201::Genotype genotype = nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|");
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 16;
  options.seed = 7;
  compile::CompiledModel model = compile::compile_genotype(genotype, options);

  const McuSpec mcu;
  ProfilerOptions popts;
  popts.deterministic = true;
  Rng profile_rng(7);
  LatencyTable table = build_latency_table(mcu, profile_rng, options.macro, popts);
  const LatencyEstimator estimator(std::move(table),
                                   profile_constant_overhead_ms(mcu, profile_rng, popts),
                                   mcu.clock_hz);
  const MacroModel macro =
      quantize_model(build_macro_model(genotype, options.macro), options.quant);
  model.report.predicted_latency_ms = estimator.estimate_ms(macro);
  model.report.executed_latency_ms = simulate_compiled(model, mcu, nullptr).latency_ms;

  DatasetSpec spec;
  spec.height = spec.width = options.macro.input_size;
  Rng data_rng(7);
  SyntheticDataset data(spec, data_rng);
  const Tensor input = data.sample_batch(1, data_rng).images;
  rt::Executor exec(model.graph, model.plan, rt::ExecOptions{1});
  const Tensor logits = exec.run(input);

  std::ostringstream ss;
  ss << model.report.to_string(/*include_timing=*/false);
  // Shared helper so the CI model-package gate and test_serialize
  // compare against exactly the hash this golden records.
  ss << "logits_hash " << serialize::logits_hash_hex(logits) << "\n";
  return ss.str();
}

TEST(CompileGoldenE2e, ReportMatchesGolden) {
  const std::string actual = run_fixed_compile();

  if (std::getenv("MICRONAS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " — run scripts/update_golden.sh";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "compile report drifted; if intentional, run scripts/update_golden.sh";
}

TEST(CompileGoldenE2e, RepeatedCompilesAreBitIdentical) {
  EXPECT_EQ(run_fixed_compile(), run_fixed_compile());
}

TEST(CompileWinner, ClosesTheLoopFromSearchToExecutable) {
  MicroNasConfig cfg;
  cfg.seed = 7;
  cfg.batch_size = 16;
  cfg.proxy_net.input_size = 8;
  cfg.proxy_net.base_channels = 4;
  cfg.lr.grid = 10;
  cfg.lr.input_size = 8;
  cfg.deploy_net.cells_per_stage = 1;  // keep the compile fast in CI
  cfg.deploy_net.input_size = 16;
  MicroNas nas(cfg);
  const DiscoveredModel winner = nas.evaluate(nb201::Genotype::from_index(8888));

  const compile::CompiledModel compiled = nas.compile_winner(winner);
  EXPECT_NO_THROW(compiled.graph.validate());
  EXPECT_GT(compiled.plan.arena_bytes, 0);
  EXPECT_GT(compiled.report.predicted_latency_ms, 0.0);
  EXPECT_GT(compiled.report.executed_latency_ms, 0.0);
  EXPECT_LE(compiled.report.arena_bytes, compiled.report.model_peak_sram_bytes);

  // The compiled schedule must execute: one int8 inference on the
  // deployment input shape.
  DatasetSpec spec;
  spec.height = spec.width = cfg.deploy_net.input_size;
  Rng rng(3);
  SyntheticDataset data(spec, rng);
  rt::Executor exec(compiled.graph, compiled.plan, rt::ExecOptions{2});
  const Tensor logits = exec.run(data.sample_batch(1, rng).images);
  EXPECT_EQ(logits.shape(), (Shape{1, cfg.deploy_net.num_classes}));

  // Fusion removes per-layer overheads the LUT estimator prices on the
  // un-fused macro model, so executed must not exceed predicted.
  EXPECT_LT(compiled.report.executed_latency_ms, compiled.report.predicted_latency_ms * 1.05);
}

}  // namespace
}  // namespace micronas
