#include <gtest/gtest.h>

#include "src/proxies/ntk.hpp"

namespace micronas {
namespace {

CellNetConfig tiny_config() {
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  cfg.num_classes = 10;
  return cfg;
}

Tensor probe(int n, const CellNetConfig& cfg, Rng& rng) {
  Tensor t(Shape{n, cfg.input_channels, cfg.input_size, cfg.input_size});
  rng.fill_normal(t.data());
  return t;
}

TEST(Ntk, GramIsSymmetricPsd) {
  Rng rng(1);
  const CellNetConfig cfg = tiny_config();
  CellNet net(nb201::Genotype::from_index(8000), cfg, rng);
  const Tensor images = probe(8, cfg, rng);
  const Matrix gram = compute_ntk_gram(net, images, NtkMode::kSumLogits);
  EXPECT_EQ(gram.rows(), 8);
  EXPECT_LT(gram.asymmetry(), 1e-9);
  const auto eig = sym_eig(gram);
  for (double l : eig.eigenvalues) EXPECT_GE(l, -1e-6 * eig.eigenvalues.front());
}

TEST(Ntk, ConditionNumberAtLeastOne) {
  Rng rng(2);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(3);
  const Tensor images = probe(8, cfg, data_rng);
  const NtkResult res = ntk_condition(nb201::Genotype::from_index(12000), cfg, images, rng);
  EXPECT_GE(res.condition_number, 1.0);
  EXPECT_EQ(res.eigenvalues.size(), 8U);
  EXPECT_GT(res.param_count, 0U);
}

TEST(Ntk, DiagonalEntriesAreSquaredGradNorms) {
  Rng rng(4);
  const CellNetConfig cfg = tiny_config();
  CellNet net(nb201::Genotype::from_index(15000), cfg, rng);
  Rng data_rng(5);
  const Tensor images = probe(4, cfg, data_rng);
  const Matrix gram = compute_ntk_gram(net, images, NtkMode::kSumLogits);
  for (int i = 0; i < 4; ++i) EXPECT_GT(gram(i, i), 0.0);
  // Cauchy–Schwarz: |Θ_ij| <= sqrt(Θ_ii Θ_jj).
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_LE(std::abs(gram(i, j)), std::sqrt(gram(i, i) * gram(j, j)) + 1e-6);
    }
  }
}

TEST(Ntk, PerLogitModeMatchesStructure) {
  Rng rng(6);
  const CellNetConfig cfg = tiny_config();
  CellNet net(nb201::Genotype::from_index(400), cfg, rng);
  Rng data_rng(7);
  const Tensor images = probe(4, cfg, data_rng);
  const Matrix gram = compute_ntk_gram(net, images, NtkMode::kPerLogit);
  EXPECT_EQ(gram.rows(), 4);
  EXPECT_LT(gram.asymmetry(), 1e-9);
  for (int i = 0; i < 4; ++i) EXPECT_GT(gram(i, i), 0.0);
}

TEST(Ntk, RepeatsAverage) {
  Rng rng(8);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(9);
  const Tensor images = probe(6, cfg, data_rng);
  NtkOptions opts;
  opts.repeats = 3;
  const NtkResult res = ntk_condition(nb201::Genotype::from_index(9999), cfg, images, rng, opts);
  EXPECT_GE(res.condition_number, 1.0);
}

TEST(Ntk, ConditionIndexMonotone) {
  Rng rng(10);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(11);
  const Tensor images = probe(8, cfg, data_rng);
  const NtkResult res = ntk_condition(nb201::Genotype::from_index(14444), cfg, images, rng);
  double prev = 0.0;
  for (int i = 1; i <= 8; ++i) {
    const double ki = ntk_condition_index(res, i);
    EXPECT_GE(ki, prev);
    prev = ki;
  }
}

TEST(Ntk, SupernetEvaluates) {
  Rng rng(12);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(13);
  const Tensor images = probe(4, cfg, data_rng);
  const NtkResult res = ntk_condition(edge_ops_from_opset(nb201::OpSet::full()), cfg, images, rng);
  EXPECT_GE(res.condition_number, 1.0);
}

TEST(Ntk, DisconnectedCellDegenerates) {
  // All-none cell: only classifier gradients survive (input-independent
  // features), so rows of the Jacobian coincide and κ explodes. The
  // proxy must report that degeneracy as a huge condition number, not
  // crash — this is how the search rejects untrainable cells.
  Rng rng(14);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(15);
  const Tensor images = probe(4, cfg, data_rng);
  const NtkResult res = ntk_condition(nb201::Genotype{}, cfg, images, rng);
  EXPECT_GT(res.condition_number, 1e3);
}

TEST(Ntk, RejectsBadInputs) {
  Rng rng(16);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(17);
  const Tensor images = probe(4, cfg, data_rng);
  NtkOptions opts;
  opts.repeats = 0;
  EXPECT_THROW(ntk_condition(nb201::Genotype{}, cfg, images, rng, opts), std::invalid_argument);
}

}  // namespace
}  // namespace micronas
