#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/linalg/sym_eig.hpp"

namespace micronas {
namespace {

TEST(Matrix, MultiplyIdentity) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 2) = 5;
  a(1, 1) = -2;
  const Matrix i3 = Matrix::identity(3);
  const Matrix prod = a.multiply(i3);
  EXPECT_DOUBLE_EQ(prod(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), -2.0);
}

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(2, 3);
  a(0, 1) = 4;
  a(1, 2) = -1;
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_DOUBLE_EQ(t(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -1.0);
}

TEST(Matrix, SymmetrizeRemovesAsymmetry) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(a.asymmetry(), 2.0);
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a.asymmetry(), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
}

TEST(GramMatrix, PsdAndSymmetric) {
  std::vector<std::vector<float>> rows = {{1, 0, 2}, {0, 1, 1}, {1, 1, 0}};
  const Matrix g = gram_matrix(rows);
  EXPECT_DOUBLE_EQ(g.asymmetry(), 0.0);
  EXPECT_DOUBLE_EQ(g(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 2.0);
  const auto eig = sym_eig(g);
  for (double l : eig.eigenvalues) EXPECT_GE(l, -1e-9);
}

TEST(GramMatrix, RaggedThrows) {
  std::vector<std::vector<float>> rows = {{1, 2}, {1}};
  EXPECT_THROW(gram_matrix(rows), std::invalid_argument);
}

TEST(SymEig, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto eig = sym_eig(a);
  ASSERT_EQ(eig.eigenvalues.size(), 3U);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-12);
}

TEST(SymEig, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const auto eig = sym_eig(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
}

TEST(SymEig, TraceAndDeterminantPreserved) {
  Rng rng(7);
  const int n = 12;
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  double trace = 0.0;
  for (int i = 0; i < n; ++i) trace += a(i, i);

  const auto eig = sym_eig(a);
  double eig_sum = 0.0;
  for (double l : eig.eigenvalues) eig_sum += l;
  EXPECT_NEAR(eig_sum, trace, 1e-8);
  EXPECT_LT(eig.off_diagonal_norm, 1e-8);
}

TEST(SymEig, RejectsAsymmetric) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 5.0;
  EXPECT_THROW(sym_eig(a), std::invalid_argument);
}

TEST(SymEig, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(sym_eig(a), std::invalid_argument);
}

TEST(SymEig, SizeOne) {
  Matrix a(1, 1);
  a(0, 0) = 42.0;
  const auto eig = sym_eig(a);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[0], 42.0);
}

TEST(ConditionNumber, IdentityIsOne) {
  const auto eig = sym_eig(Matrix::identity(5));
  EXPECT_NEAR(condition_number(eig.eigenvalues), 1.0, 1e-12);
}

TEST(ConditionNumber, IgnoresRankDeficiency) {
  // The zero eigenvalue is numerical rank deficiency, not signal: the
  // pseudo-condition number uses the smallest *nonzero* eigenvalue.
  const std::vector<double> eig = {1.0, 0.25, 0.0};
  EXPECT_DOUBLE_EQ(condition_number(eig), 4.0);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(condition_number(zeros), 1.0);
}

TEST(ConditionIndex, MonotoneInIndex) {
  const std::vector<double> eig = {8.0, 4.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(condition_index(eig, 1), 1.0);
  EXPECT_DOUBLE_EQ(condition_index(eig, 2), 2.0);
  EXPECT_DOUBLE_EQ(condition_index(eig, 4), 8.0);
  EXPECT_THROW(condition_index(eig, 0), std::out_of_range);
  EXPECT_THROW(condition_index(eig, 5), std::out_of_range);
}

}  // namespace
}  // namespace micronas
