#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.hpp"

namespace micronas {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5U);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, UniformIntThrowsOnBadRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, IndexThrowsOnEmpty) {
  Rng rng(7);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(123);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.08);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  const auto picks = rng.sample_without_replacement(100, 50);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 50U);
  for (const auto p : picks) EXPECT_LT(p, 100U);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(9);
  const auto picks = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10U);
}

TEST(Rng, SampleWithoutReplacementThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  // Children should produce different streams.
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (c1.uniform() == c2.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, FillNormalFillsAll) {
  Rng rng(3);
  std::vector<float> v(64, -100.0F);
  rng.fill_normal(v, 0.0F, 1.0F);
  EXPECT_TRUE(std::none_of(v.begin(), v.end(), [](float x) { return x == -100.0F; }));
}

TEST(HashUtils, SplitMixAvalanche) {
  // Single-bit input changes should flip roughly half the output bits.
  const std::uint64_t a = splitmix64(0x1234);
  const std::uint64_t b = splitmix64(0x1235);
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(HashUtils, HashToUniformRange) {
  for (std::uint64_t h = 0; h < 1000; ++h) {
    const double u = hash_to_uniform(h);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashUtils, HashToNormalMoments) {
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = hash_to_normal(static_cast<std::uint64_t>(i) * 2654435761ULL);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 1.0, 0.1);
}

TEST(HashUtils, HashToNormalDeterministic) {
  EXPECT_DOUBLE_EQ(hash_to_normal(99), hash_to_normal(99));
}

}  // namespace
}  // namespace micronas
