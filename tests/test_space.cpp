#include <gtest/gtest.h>

#include <set>

#include "src/nb201/space.hpp"

namespace micronas::nb201 {
namespace {

TEST(Space, EnumerationCompleteAndUnique) {
  const auto all = enumerate_space();
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kNumArchitectures));
  std::set<int> indices;
  for (const auto& g : all) indices.insert(g.index());
  EXPECT_EQ(indices.size(), all.size());
}

TEST(Space, RandomGenotypeCoversOps) {
  Rng rng(1);
  std::set<Op> seen;
  for (int i = 0; i < 200; ++i) {
    const Genotype g = random_genotype(rng);
    for (int e = 0; e < kNumEdges; ++e) seen.insert(g.op(e));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumOps));
}

TEST(Space, SampleWithoutReplacementUnique) {
  Rng rng(2);
  const auto sample = sample_genotypes(rng, 500);
  std::set<int> indices;
  for (const auto& g : sample) indices.insert(g.index());
  EXPECT_EQ(indices.size(), 500U);
  EXPECT_THROW(sample_genotypes(rng, kNumArchitectures + 1), std::invalid_argument);
}

TEST(Space, NeighborsCount) {
  const Genotype g = Genotype::from_index(777);
  const auto ns = neighbors(g);
  EXPECT_EQ(ns.size(), static_cast<std::size_t>(kNumEdges * (kNumOps - 1)));
  // Every neighbour differs on exactly one edge.
  for (const auto& n : ns) {
    int diffs = 0;
    for (int e = 0; e < kNumEdges; ++e) {
      if (n.op(e) != g.op(e)) ++diffs;
    }
    EXPECT_EQ(diffs, 1);
  }
}

TEST(Space, MutateChangesOneEdge) {
  Rng rng(3);
  const Genotype g = Genotype::from_index(1234);
  for (int i = 0; i < 50; ++i) {
    const Genotype m = mutate(g, rng);
    int diffs = 0;
    for (int e = 0; e < kNumEdges; ++e) {
      if (m.op(e) != g.op(e)) ++diffs;
    }
    EXPECT_EQ(diffs, 1);
  }
}

TEST(OpSet, FullSupernet) {
  const OpSet s = OpSet::full();
  EXPECT_EQ(s.total_ops(), kNumEdges * kNumOps);
  EXPECT_EQ(s.cardinality(), static_cast<long long>(kNumArchitectures));
  EXPECT_FALSE(s.is_singleton());
}

TEST(OpSet, RemoveShrinks) {
  OpSet s = OpSet::full();
  s.remove(0, Op::kNone);
  EXPECT_EQ(s.total_ops(), kNumEdges * kNumOps - 1);
  EXPECT_FALSE(s.contains(0, Op::kNone));
  EXPECT_TRUE(s.contains(1, Op::kNone));
  EXPECT_THROW(s.remove(0, Op::kNone), std::invalid_argument);  // already gone
}

TEST(OpSet, CannotEmptyEdge) {
  OpSet s = OpSet::full();
  for (Op op : {Op::kNone, Op::kSkipConnect, Op::kConv1x1, Op::kConv3x3}) s.remove(2, op);
  EXPECT_EQ(s.ops_on_edge(2).size(), 1U);
  EXPECT_THROW(s.remove(2, Op::kAvgPool3x3), std::logic_error);
}

TEST(OpSet, ToGenotypeRequiresSingleton) {
  OpSet s = OpSet::full();
  EXPECT_THROW(s.to_genotype(), std::logic_error);
  for (int e = 0; e < kNumEdges; ++e) {
    for (Op op : {Op::kNone, Op::kSkipConnect, Op::kConv1x1, Op::kAvgPool3x3}) s.remove(e, op);
  }
  ASSERT_TRUE(s.is_singleton());
  const Genotype g = s.to_genotype();
  for (int e = 0; e < kNumEdges; ++e) EXPECT_EQ(g.op(e), Op::kConv3x3);
}

TEST(OpSet, SampleRespectsRemainingOps) {
  Rng rng(4);
  OpSet s = OpSet::full();
  for (int e = 0; e < kNumEdges; ++e) {
    s.remove(e, Op::kNone);
    s.remove(e, Op::kAvgPool3x3);
  }
  for (int i = 0; i < 100; ++i) {
    const Genotype g = s.sample(rng);
    for (int e = 0; e < kNumEdges; ++e) {
      EXPECT_NE(g.op(e), Op::kNone);
      EXPECT_NE(g.op(e), Op::kAvgPool3x3);
    }
  }
}

TEST(OpSet, EdgeBoundsChecked) {
  OpSet s = OpSet::full();
  EXPECT_THROW(s.ops_on_edge(-1), std::out_of_range);
  EXPECT_THROW(s.ops_on_edge(6), std::out_of_range);
  EXPECT_THROW(s.remove(6, Op::kNone), std::out_of_range);
}

}  // namespace
}  // namespace micronas::nb201
