#include <gtest/gtest.h>

#include "src/search/eval_engine.hpp"
#include "src/nb201/space.hpp"

namespace micronas {
namespace {

std::unique_ptr<ProxySuite> make_suite(std::uint64_t seed = 1) {
  ProxySuiteConfig cfg;
  cfg.proxy_net.input_size = 8;
  cfg.proxy_net.base_channels = 4;
  cfg.lr.grid = 8;
  cfg.lr.input_size = 8;
  Tensor probe(Shape{6, 3, 8, 8});
  Rng rng(seed);
  rng.fill_normal(probe.data());
  return std::make_unique<ProxySuite>(cfg, std::move(probe), nullptr);
}

EvalEngineConfig engine_config(int threads, bool cache = true, std::uint64_t seed = 42) {
  EvalEngineConfig cfg;
  cfg.threads = threads;
  cfg.cache = cache;
  cfg.seed = seed;
  return cfg;
}

bool bitwise_equal(const IndicatorValues& a, const IndicatorValues& b) {
  return a.ntk_condition == b.ntk_condition && a.linear_regions == b.linear_regions &&
         a.flops_m == b.flops_m && a.params_m == b.params_m && a.latency_ms == b.latency_ms &&
         a.peak_sram_kb == b.peak_sram_kb;
}

TEST(EvalEngine, ParallelBatchBitIdenticalToSerial) {
  auto suite = make_suite();
  const ProxyEvalEngine serial(*suite, engine_config(1));
  const ProxyEvalEngine parallel(*suite, engine_config(4));

  Rng rng(7);
  const std::vector<nb201::Genotype> batch = nb201::sample_genotypes(rng, 24);
  const auto serial_values = serial.evaluate_batch(batch);
  const auto parallel_values = parallel.evaluate_batch(batch);

  ASSERT_EQ(serial_values.size(), parallel_values.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(serial_values[i], parallel_values[i]))
        << batch[i].to_string();
  }
}

TEST(EvalEngine, ResultsIndependentOfCacheState) {
  auto suite = make_suite();
  const ProxyEvalEngine cached(*suite, engine_config(1, /*cache=*/true));
  const ProxyEvalEngine uncached(*suite, engine_config(1, /*cache=*/false));

  Rng rng(8);
  const nb201::Genotype g = nb201::random_genotype(rng);
  const IndicatorValues first = cached.evaluate(g);
  const IndicatorValues replay = cached.evaluate(g);   // cache hit
  const IndicatorValues fresh = uncached.evaluate(g);  // recomputed
  EXPECT_TRUE(bitwise_equal(first, replay));
  EXPECT_TRUE(bitwise_equal(first, fresh));
}

TEST(EvalEngine, CacheHitsSkipRecomputation) {
  auto suite = make_suite();
  const ProxyEvalEngine engine(*suite, engine_config(1));

  Rng rng(9);
  const nb201::Genotype g = nb201::random_genotype(rng);
  engine.evaluate(g);
  const long long evals_after_first = suite->proxy_eval_count();
  engine.evaluate(g);
  engine.evaluate(g);
  EXPECT_EQ(suite->proxy_eval_count(), evals_after_first);  // no new proxy work

  const EvalEngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.cache_hits, 2);
  EXPECT_EQ(stats.evaluations, 1);
}

TEST(EvalEngine, IsomorphicGenotypesShareCacheEntries) {
  auto suite = make_suite();
  const ProxyEvalEngine engine(*suite, engine_config(1));

  // Two genotypes differing only on a dead edge (node 1 never reaches
  // the output) are functionally equivalent and must share an entry.
  nb201::Genotype a;
  a.set_op(nb201::edge_index(0, 3), nb201::Op::kConv1x1);
  nb201::Genotype b = a;
  b.set_op(nb201::edge_index(0, 1), nb201::Op::kAvgPool3x3);  // dead edge
  ASSERT_TRUE(nb201::functionally_equivalent(a, b));
  ASSERT_NE(a, b);

  const IndicatorValues va = engine.evaluate(a);
  const long long evals_after_first = suite->proxy_eval_count();
  const IndicatorValues vb = engine.evaluate(b);
  EXPECT_EQ(suite->proxy_eval_count(), evals_after_first);  // b replayed from a's entry
  EXPECT_TRUE(bitwise_equal(va, vb));
  EXPECT_EQ(engine.stats().cache_hits, 1);
}

TEST(EvalEngine, CacheDisabledRecomputes) {
  auto suite = make_suite();
  const ProxyEvalEngine engine(*suite, engine_config(1, /*cache=*/false));
  Rng rng(10);
  const nb201::Genotype g = nb201::random_genotype(rng);
  engine.evaluate(g);
  engine.evaluate(g);
  EXPECT_EQ(engine.stats().cache_hits, 0);
  EXPECT_EQ(engine.stats().evaluations, 2);
}

TEST(EvalEngine, ClearCacheForcesRecomputation) {
  auto suite = make_suite();
  const ProxyEvalEngine engine(*suite, engine_config(1));
  Rng rng(11);
  const nb201::Genotype g = nb201::random_genotype(rng);
  const IndicatorValues before = engine.evaluate(g);
  engine.clear_cache();
  const IndicatorValues after = engine.evaluate(g);
  EXPECT_EQ(engine.stats().evaluations, 2);
  // Content-hash seeding: the recomputation reproduces the same bits.
  EXPECT_TRUE(bitwise_equal(before, after));
}

TEST(EvalEngine, SupernetBatchBitIdenticalToSerial) {
  auto suite = make_suite();
  const ProxyEvalEngine serial(*suite, engine_config(1));
  const ProxyEvalEngine parallel(*suite, engine_config(4));

  // A few partially pruned supernets.
  std::vector<EdgeOps> candidates;
  nb201::OpSet opset = nb201::OpSet::full();
  candidates.push_back(edge_ops_from_opset(opset));
  opset.remove(0, nb201::Op::kNone);
  candidates.push_back(edge_ops_from_opset(opset));
  opset.remove(3, nb201::Op::kAvgPool3x3);
  candidates.push_back(edge_ops_from_opset(opset));

  const auto a = serial.evaluate_supernets(candidates, /*repeats=*/2);
  const auto b = parallel.evaluate_supernets(candidates, /*repeats=*/2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ntk_condition, b[i].ntk_condition);
    EXPECT_EQ(a[i].linear_regions, b[i].linear_regions);
  }
}

TEST(EvalEngine, SupernetBatchesAreMemoized) {
  // The adaptive outer loop re-prunes from the full supernet, so the
  // same candidate supernets recur across rounds — the second batch
  // must replay from the cache without new proxy work.
  auto suite = make_suite();
  const ProxyEvalEngine engine(*suite, engine_config(1));
  const std::vector<EdgeOps> candidates = {edge_ops_from_opset(nb201::OpSet::full())};

  const auto first = engine.evaluate_supernets(candidates, /*repeats=*/1);
  const long long evals_after_first = suite->proxy_eval_count();
  const auto second = engine.evaluate_supernets(candidates, /*repeats=*/1);
  EXPECT_EQ(suite->proxy_eval_count(), evals_after_first);
  EXPECT_EQ(engine.stats().supernet_hits, 1);
  EXPECT_EQ(first[0].ntk_condition, second[0].ntk_condition);
  EXPECT_EQ(first[0].linear_regions, second[0].linear_regions);

  // A different repeat count is a different measurement, not a hit.
  engine.evaluate_supernets(candidates, /*repeats=*/2);
  EXPECT_EQ(engine.stats().supernet_hits, 1);
}

TEST(EvalEngine, HardwareIndicatorsMatchAnalyticEngine) {
  // A full engine and an analytic-only engine agree on the hardware
  // subset, and the analytic engine rejects proxy evaluation.
  auto suite = make_suite();
  const ProxyEvalEngine full(*suite, engine_config(1));
  const ProxyEvalEngine analytic(suite->config().deploy_net, nullptr, engine_config(1));

  Rng rng(12);
  const nb201::Genotype g = nb201::random_genotype(rng);
  const IndicatorValues a = full.hardware_indicators(g);
  const IndicatorValues b = analytic.hardware_indicators(g);
  EXPECT_EQ(a.flops_m, b.flops_m);
  EXPECT_EQ(a.params_m, b.params_m);
  EXPECT_EQ(a.peak_sram_kb, b.peak_sram_kb);
  EXPECT_THROW(analytic.evaluate(g), std::logic_error);
}

TEST(EvalEngine, StatsHitRate) {
  auto suite = make_suite();
  const ProxyEvalEngine engine(*suite, engine_config(1));
  Rng rng(13);
  const nb201::Genotype g = nb201::random_genotype(rng);
  engine.evaluate(g);
  engine.evaluate(g);
  EXPECT_DOUBLE_EQ(engine.stats().hit_rate(), 0.5);
}

}  // namespace
}  // namespace micronas
