#include <gtest/gtest.h>

#include "src/proxies/flops.hpp"

namespace micronas {
namespace {

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

TEST(Flops, LayerFlopsConv) {
  LayerSpec conv;
  conv.kind = LayerKind::kConv;
  conv.cin = 16;
  conv.cout = 16;
  conv.kernel = 3;
  conv.h = 32;
  conv.w = 32;
  conv.out_h = 32;
  conv.out_w = 32;
  // NB201 convention: FLOPs = MACs.
  EXPECT_EQ(layer_flops(conv), 9LL * 16 * 16 * 32 * 32);
}

TEST(Flops, LayerFlopsNonConv) {
  LayerSpec skip;
  skip.kind = LayerKind::kSkip;
  skip.cin = 16;
  skip.cout = 16;
  skip.h = 8;
  skip.w = 8;
  skip.out_h = 8;
  skip.out_w = 8;
  EXPECT_EQ(layer_flops(skip), 0);

  LayerSpec add = skip;
  add.kind = LayerKind::kAdd;
  EXPECT_EQ(layer_flops(add), 16LL * 8 * 8);

  LayerSpec pool = skip;
  pool.kind = LayerKind::kAvgPool;
  pool.kernel = 3;
  EXPECT_EQ(layer_flops(pool), 9LL * 16 * 8 * 8);
}

TEST(Flops, OrderingAcrossUniformCells) {
  const double f_none = flops_m(nb201::Genotype{});
  const double f_skip = flops_m(all_op(nb201::Op::kSkipConnect));
  const double f_pool = flops_m(all_op(nb201::Op::kAvgPool3x3));
  const double f_1x1 = flops_m(all_op(nb201::Op::kConv1x1));
  const double f_3x3 = flops_m(all_op(nb201::Op::kConv3x3));
  EXPECT_LT(f_none, f_pool);
  EXPECT_LE(f_skip, f_pool);
  EXPECT_LT(f_pool, f_1x1);
  EXPECT_LT(f_1x1, f_3x3);
  // The 3x3 cell should cost roughly 9x the 1x1 cell in cell FLOPs;
  // shared skeleton cost dilutes the ratio, so just require > 4x on
  // the difference above the empty skeleton.
  EXPECT_GT((f_3x3 - f_none) / (f_1x1 - f_none), 4.0);
}

TEST(Flops, MagnitudeMatchesNb201Scale) {
  // NB201's largest CIFAR-10 cell is ~220 MFLOPs (TE-NAS Table I:
  // 188.66 M); ours must land in that decade.
  const double f = flops_m(all_op(nb201::Op::kConv3x3));
  EXPECT_GT(f, 120.0);
  EXPECT_LT(f, 320.0);
}

TEST(Params, MagnitudeMatchesNb201Scale) {
  // NB201 params range ~0.07–1.53 M on CIFAR-10.
  const double p_max = params_m(all_op(nb201::Op::kConv3x3));
  EXPECT_GT(p_max, 0.8);
  EXPECT_LT(p_max, 2.0);
  const double p_min = params_m(all_op(nb201::Op::kSkipConnect));
  EXPECT_GT(p_min, 0.02);
  EXPECT_LT(p_min, 0.2);
}

TEST(Params, BreakdownConsistent) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const ParamsBreakdown p = count_params(m);
  EXPECT_GT(p.conv_params, 0);
  EXPECT_GT(p.bn_params, 0);
  EXPECT_GT(p.linear_params, 0);
  EXPECT_EQ(p.total(), p.conv_params + p.bn_params + p.linear_params);
  // Linear head: 64*10 + 10.
  EXPECT_EQ(p.linear_params, 650);
}

TEST(Flops, BreakdownConsistent) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const FlopsBreakdown f = count_flops(m);
  EXPECT_EQ(f.total(), f.conv_flops + f.linear_flops + f.pool_flops + f.add_flops);
  EXPECT_GT(f.conv_flops, f.add_flops);
}

TEST(Flops, MonotoneInCellsPerStage) {
  MacroNetConfig small;
  small.cells_per_stage = 2;
  MacroNetConfig big;
  big.cells_per_stage = 8;
  const auto g = all_op(nb201::Op::kConv3x3);
  EXPECT_LT(flops_m(g, small), flops_m(g, big));
}

TEST(Flops, EdgeSensitivity) {
  // Changing one edge from none to conv3x3 must add FLOPs.
  nb201::Genotype g;
  g.set_op(nb201::edge_index(0, 3), nb201::Op::kSkipConnect);
  const double base = flops_m(g);
  g.set_op(nb201::edge_index(0, 1), nb201::Op::kConv3x3);
  EXPECT_GT(flops_m(g), base);
}

}  // namespace
}  // namespace micronas
