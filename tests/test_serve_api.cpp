// The typed serve API and the multi-model router.
//
//   * serve::Request -> std::future<serve::Response>: logits bit-
//     identical to a serial Executor, with the response carrying its
//     model key, batch size, and queue/total latency;
//   * the error taxonomy is catchable at every level: QueueFullError /
//     DeadlineExpiredError / UnknownModelError each derive from
//     serve::ServeError (and std::runtime_error for legacy callers);
//   * MultiModelServer routes on Request::model_key: each model serves
//     from its own lane, unknown keys reject synchronously, unload
//     closes exactly one lane. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/data/synthetic.hpp"
#include "src/rt/runtime.hpp"
#include "src/serve/multi_model_server.hpp"

namespace micronas {
namespace {

compile::CompiledModel compiled_small(std::uint64_t seed = 5) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.seed = seed;
  return compile::compile_genotype(
      nb201::Genotype::from_string("|nor_conv_3x3~0|+|skip_connect~0|nor_conv_1x1~1|+"
                                   "|avg_pool_3x3~0|none~1|nor_conv_3x3~2|"),
      options);
}

std::vector<Tensor> sample_inputs(int n, std::uint64_t seed) {
  DatasetSpec spec;
  spec.height = spec.width = 8;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs.push_back(data.sample_batch(1, rng).images);
  return inputs;
}

TEST(ServeApi, TypedRequestReturnsTypedResponseWithIdenticalLogits) {
  auto model = std::make_shared<const compile::CompiledModel>(compiled_small());
  rt::Executor serial(model->graph, model->plan, rt::ExecOptions{1, &model->packed});
  const std::vector<Tensor> inputs = sample_inputs(12, 21);
  std::vector<Tensor> expected;
  for (const Tensor& in : inputs) expected.push_back(serial.run(in));

  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_wait_us = 200;
  serve::ModelServer server(model, options);

  std::vector<std::future<serve::Response>> futures;
  for (const Tensor& in : inputs) {
    serve::Request request;
    request.input = in;
    request.model_key = "m";
    futures.push_back(server.submit(std::move(request)));
  }
  for (std::size_t r = 0; r < futures.size(); ++r) {
    const serve::Response resp = futures[r].get();
    EXPECT_EQ(resp.model_key, "m");
    EXPECT_GE(resp.batch_size, 1);
    EXPECT_LE(resp.batch_size, options.max_batch);
    EXPECT_GE(resp.queue_ms, 0.0);
    EXPECT_GE(resp.total_ms, resp.queue_ms);
    ASSERT_EQ(resp.logits.numel(), expected[r].numel());
    for (std::size_t i = 0; i < expected[r].numel(); ++i) {
      ASSERT_EQ(resp.logits[i], expected[r][i]) << "request " << r << " logit " << i;
    }
  }
  server.stop();
  EXPECT_EQ(server.stats().requests, static_cast<long long>(inputs.size()));
}

TEST(ServeApi, ErrorTaxonomyDerivesFromServeError) {
  // Compile-time: every admission error IS-A ServeError IS-A
  // runtime_error, so one catch site can take them all (or pick one).
  static_assert(std::is_base_of_v<serve::ServeError, serve::QueueFullError>);
  static_assert(std::is_base_of_v<serve::ServeError, serve::DeadlineExpiredError>);
  static_assert(std::is_base_of_v<serve::ServeError, serve::UnknownModelError>);
  static_assert(std::is_base_of_v<std::runtime_error, serve::ServeError>);

  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_wait_us = 200;
  serve::ModelServer server(compiled_small(), options);

  // A typed request with an already-expired deadline drops through the
  // typed future with the distinct error — catchable as ServeError.
  serve::Request doomed;
  doomed.input = sample_inputs(1, 31)[0];
  doomed.deadline_us = -1;
  std::future<serve::Response> future = server.submit(std::move(doomed));
  try {
    future.get();
    FAIL() << "expired request must not produce logits";
  } catch (const serve::ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  server.stop();
}

TEST(ServeApi, MultiModelServerRoutesByModelKey) {
  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_wait_us = 200;
  serve::MultiModelServer server(options);

  auto model_a = std::make_shared<const compile::CompiledModel>(compiled_small(5));
  auto model_b = std::make_shared<const compile::CompiledModel>(compiled_small(9));
  server.add_model("a", model_a);
  server.add_model("b", model_b);
  EXPECT_EQ(server.keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(server.add_model("a", model_a), std::invalid_argument);

  // Same inputs, different weights: each lane must answer with ITS
  // model's logits (bit-identical to that model's serial run).
  rt::Executor serial_a(model_a->graph, model_a->plan, rt::ExecOptions{1, &model_a->packed});
  rt::Executor serial_b(model_b->graph, model_b->plan, rt::ExecOptions{1, &model_b->packed});
  const std::vector<Tensor> inputs = sample_inputs(8, 23);
  for (const Tensor& in : inputs) {
    for (const auto& [key, serial] :
         std::vector<std::pair<std::string, rt::Executor*>>{{"a", &serial_a}, {"b", &serial_b}}) {
      serve::Request request;
      request.input = in;
      request.model_key = key;
      const serve::Response resp = server.infer(std::move(request));
      const Tensor want = serial->run(in);
      EXPECT_EQ(resp.model_key, key);
      ASSERT_EQ(resp.logits.numel(), want.numel());
      for (std::size_t i = 0; i < want.numel(); ++i) {
        ASSERT_EQ(resp.logits[i], want[i]) << "lane " << key << " logit " << i;
      }
    }
  }

  // Per-model ledgers: both lanes saw exactly their own traffic.
  EXPECT_EQ(server.stats("a").requests, static_cast<long long>(inputs.size()));
  EXPECT_EQ(server.stats("b").requests, static_cast<long long>(inputs.size()));

  // Unknown keys reject synchronously, before any queue is touched.
  serve::Request stray;
  stray.input = inputs[0];
  stray.model_key = "no-such-model";
  EXPECT_THROW(server.submit(std::move(stray)), serve::UnknownModelError);

  // unload() closes exactly one lane; the other keeps serving.
  server.unload("b");
  EXPECT_EQ(server.keys(), (std::vector<std::string>{"a"}));
  EXPECT_THROW(server.stats("b"), serve::UnknownModelError);
  serve::Request still;
  still.input = inputs[0];
  still.model_key = "a";
  EXPECT_GT(server.infer(std::move(still)).logits.numel(), 0u);
  EXPECT_THROW(server.unload("b"), serve::UnknownModelError);
  server.stop();
}

TEST(ServeApi, ConcurrentClientsAcrossLanesStayIsolated) {
  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_wait_us = 200;
  options.threads = 2;
  serve::MultiModelServer server(options);
  auto model_a = std::make_shared<const compile::CompiledModel>(compiled_small(5));
  auto model_b = std::make_shared<const compile::CompiledModel>(compiled_small(9));
  server.add_model("a", model_a);
  server.add_model("b", model_b);

  rt::Executor serial_a(model_a->graph, model_a->plan, rt::ExecOptions{1, &model_a->packed});
  rt::Executor serial_b(model_b->graph, model_b->plan, rt::ExecOptions{1, &model_b->packed});
  const std::vector<Tensor> inputs = sample_inputs(6, 29);
  std::vector<Tensor> expected_a, expected_b;
  for (const Tensor& in : inputs) {
    expected_a.push_back(serial_a.run(in));
    expected_b.push_back(serial_b.run(in));
  }

  std::atomic<long long> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::string key = (c % 2 == 0) ? "a" : "b";
      const std::vector<Tensor>& expected = (c % 2 == 0) ? expected_a : expected_b;
      std::vector<std::future<serve::Response>> futures;
      for (const Tensor& in : inputs) {
        serve::Request request;
        request.input = in;
        request.model_key = key;
        futures.push_back(server.submit(std::move(request)));
      }
      for (std::size_t r = 0; r < futures.size(); ++r) {
        const serve::Response resp = futures[r].get();
        bool same = resp.logits.numel() == expected[r].numel() && resp.model_key == key;
        for (std::size_t i = 0; same && i < expected[r].numel(); ++i) {
          same = resp.logits[i] == expected[r][i];
        }
        if (!same) ++mismatches;
      }
    });
  }
  for (std::thread& c : clients) c.join();
  server.stop();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats("a").requests + server.stats("b").requests,
            static_cast<long long>(4 * inputs.size()));
}

}  // namespace
}  // namespace micronas
