#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "src/common/thread_pool.hpp"

namespace micronas {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeReturnsImmediately) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleWorkerRunsInIndexOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16U);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after a throwing batch.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.parallel_for(50, [&](std::size_t i) { sum += static_cast<long long>(i); });
  }
  EXPECT_EQ(sum.load(), 20LL * (49 * 50 / 2));
}

TEST(ThreadPool, ZeroPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

}  // namespace
}  // namespace micronas
