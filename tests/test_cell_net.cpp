#include <gtest/gtest.h>

#include <cmath>

#include "src/net/cell_net.hpp"

namespace micronas {
namespace {

CellNetConfig small_config() {
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  cfg.num_classes = 10;
  return cfg;
}

Tensor random_images(int n, const CellNetConfig& cfg, Rng& rng) {
  Tensor t(Shape{n, cfg.input_channels, cfg.input_size, cfg.input_size});
  rng.fill_normal(t.data());
  return t;
}

TEST(CellNet, ForwardShape) {
  Rng rng(1);
  CellNetConfig cfg = small_config();
  CellNet net(nb201::Genotype::from_index(8765), cfg, rng);
  const Tensor logits = net.forward(random_images(3, cfg, rng));
  EXPECT_EQ(logits.shape(), Shape({3, 10}));
}

TEST(CellNet, BackwardShapeAndGradCollection) {
  Rng rng(2);
  CellNetConfig cfg = small_config();
  CellNet net(nb201::Genotype::from_index(4321), cfg, rng);
  const Tensor x = random_images(2, cfg, rng);
  const Tensor logits = net.forward(x);
  Tensor gy(logits.shape(), 1.0F);
  const Tensor gx = net.backward(gy);
  EXPECT_EQ(gx.shape(), x.shape());

  std::vector<float> grads;
  net.collect_grads(grads);
  EXPECT_EQ(grads.size(), net.param_count());
  double norm = 0.0;
  for (float g : grads) norm += static_cast<double>(g) * g;
  EXPECT_GT(norm, 0.0);
}

TEST(CellNet, ZeroGradClears) {
  Rng rng(3);
  CellNetConfig cfg = small_config();
  CellNet net(nb201::Genotype::from_index(1111), cfg, rng);
  const Tensor x = random_images(1, cfg, rng);
  Tensor gy(Shape{1, 10}, 1.0F);
  (void)net.forward(x);
  (void)net.backward(gy);
  net.zero_grad();
  std::vector<float> grads;
  net.collect_grads(grads);
  for (float g : grads) EXPECT_EQ(g, 0.0F);
}

TEST(CellNet, GradientMatchesFiniteDifferenceThroughWholeNet) {
  // End-to-end analytic-vs-numeric check: perturb one input pixel and
  // compare to the collected input gradient of the sum of logits.
  Rng rng(4);
  CellNetConfig cfg = small_config();
  cfg.base_channels = 2;  // keep the net tiny for fp32 FD stability
  // A genotype exercising conv, skip, pool and none edges at once.
  nb201::Genotype g;
  g.set_op(nb201::edge_index(0, 1), nb201::Op::kConv3x3);
  g.set_op(nb201::edge_index(0, 2), nb201::Op::kSkipConnect);
  g.set_op(nb201::edge_index(1, 2), nb201::Op::kAvgPool3x3);
  g.set_op(nb201::edge_index(1, 3), nb201::Op::kConv1x1);
  g.set_op(nb201::edge_index(2, 3), nb201::Op::kConv3x3);
  CellNet net(g, cfg, rng);

  Tensor x = random_images(1, cfg, rng);
  const Tensor logits = net.forward(x);
  Tensor gy(logits.shape(), 1.0F);
  net.zero_grad();
  const Tensor gx = net.backward(gy);

  const double eps = 5e-3;
  for (std::size_t i = 0; i < x.numel(); i += 37) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double up = net.forward(x).sum();
    x[i] = orig - static_cast<float>(eps);
    const double down = net.forward(x).sum();
    x[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    const double scale = std::max({std::abs(numeric), std::abs(static_cast<double>(gx[i])), 1e-2});
    EXPECT_NEAR(gx[i], numeric, 0.05 * scale) << "pixel " << i;
  }
}

TEST(CellNet, AllNoneCellStillClassifiesFromStem) {
  // Even a disconnected cell yields logits (stem output is zeroed by
  // the cell, so logits equal the classifier bias) — the proxies must
  // not crash on degenerate candidates.
  Rng rng(5);
  CellNetConfig cfg = small_config();
  CellNet net(nb201::Genotype{}, cfg, rng);
  const Tensor logits = net.forward(random_images(2, cfg, rng));
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
  // Both rows identical: no input signal survives the zeroed cell.
  for (int c = 0; c < 10; ++c) EXPECT_FLOAT_EQ(logits.at(0, c), logits.at(1, c));
}

TEST(CellNet, SupernetHasMoreParamsThanAnyChild) {
  Rng rng(6);
  CellNetConfig cfg = small_config();
  CellNet supernet(nb201::OpSet::full(), cfg, rng);
  Rng rng2(6);
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(nb201::Op::kConv3x3);
  CellNet child(nb201::Genotype(ops), cfg, rng2);
  EXPECT_GT(supernet.param_count(), child.param_count());
}

TEST(CellNet, ReluPatternCollected) {
  Rng rng(7);
  CellNetConfig cfg = small_config();
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(nb201::Op::kConv3x3);
  CellNet net(nb201::Genotype(ops), cfg, rng);
  (void)net.forward(random_images(2, cfg, rng));
  std::vector<unsigned char> bits0, bits1;
  net.collect_relu_pattern(0, bits0);
  net.collect_relu_pattern(1, bits1);
  EXPECT_EQ(bits0.size(), bits1.size());
  EXPECT_GT(bits0.size(), 0U);
  EXPECT_NE(bits0, bits1);  // different inputs, different patterns
  EXPECT_THROW(net.collect_relu_pattern(2, bits0), std::out_of_range);
}

TEST(CellNet, MultiStageReducesSpatialAndWidens) {
  Rng rng(8);
  CellNetConfig cfg = small_config();
  cfg.num_stages = 3;
  cfg.input_size = 16;
  CellNet net(nb201::Genotype::from_index(2222), cfg, rng);
  // 16x16 -> 8x8 -> 4x4; width 4 -> 8 -> 16; just verify it runs and
  // produces the right logit shape.
  const Tensor logits = net.forward(random_images(1, cfg, rng));
  EXPECT_EQ(logits.shape(), Shape({1, 10}));
}

TEST(CellNet, DeterministicGivenSeed) {
  CellNetConfig cfg = small_config();
  Rng r1(99), r2(99);
  CellNet a(nb201::Genotype::from_index(123), cfg, r1);
  CellNet b(nb201::Genotype::from_index(123), cfg, r2);
  Rng rx(5);
  const Tensor x = random_images(1, cfg, rx);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(CellNet, RejectsBadConfig) {
  Rng rng(1);
  CellNetConfig cfg = small_config();
  cfg.num_stages = 0;
  EXPECT_THROW(CellNet(nb201::Genotype{}, cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace micronas
