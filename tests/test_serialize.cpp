// Model package (.mnpkg) round-trip and robustness suite.
//
//   * save -> load -> save is byte-identical and the reloaded model
//     executes to bit-identical logits, across 25 sampled genotypes;
//   * every truncation and every single-byte corruption of a package
//     fails closed with SerializeError (never UB — this file also runs
//     under the ASan/UBSan CI job);
//   * the fixed golden scenario's reloaded logits hash equals the
//     logits_hash recorded in tests/golden/compile_report.golden, and
//     the package layout matches tests/golden/serialize_package.golden
//     (regenerate intentional changes with scripts/update_golden.sh).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/rng.hpp"
#include "src/data/synthetic.hpp"
#include "src/ir/graph.hpp"
#include "src/rt/runtime.hpp"
#include "src/serialize/serialize.hpp"

namespace micronas {
namespace {

#ifndef MICRONAS_SOURCE_DIR
#error "MICRONAS_SOURCE_DIR must point at the repository root"
#endif

using serialize::SerializeError;

compile::CompiledModel compile_small(const nb201::Genotype& g, int input = 8,
                                     std::uint64_t seed = 1) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = input;
  options.seed = seed;
  return compile::compile_genotype(g, options);
}

Tensor sample_input(int input_size, std::uint64_t seed) {
  DatasetSpec spec;
  spec.height = spec.width = input_size;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  return data.sample_batch(1, rng).images;
}


TEST(Serialize, RoundTripIsByteIdenticalAndBitExactOn25Genotypes) {
  Rng rng(42);
  for (int i = 0; i < 25; ++i) {
    const auto index = static_cast<int>(
        rng.index(static_cast<std::size_t>(nb201::kNumArchitectures)));
    const nb201::Genotype g = nb201::Genotype::from_index(index);
    const compile::CompiledModel model = compile_small(g);

    const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
    const compile::CompiledModel loaded = serialize::load_model_bytes(bytes);

    // Save-of-load is byte-identical: nothing is lost or reordered.
    EXPECT_EQ(bytes, serialize::save_model_bytes(loaded)) << "genotype " << index;

    // Structure survived.
    ASSERT_EQ(loaded.graph.size(), model.graph.size());
    EXPECT_EQ(loaded.plan.arena_bytes, model.plan.arena_bytes);
    EXPECT_EQ(loaded.plan.buffers.size(), model.plan.buffers.size());
    EXPECT_EQ(loaded.report.to_string(), model.report.to_string());

    // Execution is bit-exact: same logits from the reloaded model.
    const Tensor input = sample_input(8, 7);
    rt::Executor original(model.graph, model.plan, rt::ExecOptions{1});
    rt::Executor reloaded(loaded.graph, loaded.plan, rt::ExecOptions{1});
    const Tensor a = original.run(input);
    const Tensor b = reloaded.run(input);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::size_t k = 0; k < a.numel(); ++k) {
      ASSERT_EQ(a[k], b[k]) << "genotype " << index << " logit " << k;
    }
  }
}

TEST(Serialize, FloatPipelineRoundTrips) {
  // Unquantized (fold/fuse/quantize off) models serialize too: f32
  // consts and float ops exercise the non-quant node paths.
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.fold = options.fuse = options.quantize = false;
  const compile::CompiledModel model =
      compile::compile_genotype(nb201::Genotype::from_index(123), options);
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const compile::CompiledModel loaded = serialize::load_model_bytes(bytes);
  EXPECT_EQ(bytes, serialize::save_model_bytes(loaded));

  const Tensor input = sample_input(8, 3);
  rt::Executor a(model.graph, model.plan, rt::ExecOptions{1});
  rt::Executor b(loaded.graph, loaded.plan, rt::ExecOptions{1});
  EXPECT_EQ(serialize::logits_hash_hex(a.run(input)),
            serialize::logits_hash_hex(b.run(input)));
}

TEST(Serialize, PackageInfoPeeksWithoutLoading) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(777));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const serialize::PackageInfo info = serialize::read_package_info(bytes);
  EXPECT_EQ(info.format_version, serialize::kFormatVersion);
  EXPECT_EQ(info.file_bytes, bytes.size());
  EXPECT_EQ(info.arch, model.report.arch);
  ASSERT_EQ(info.sections.size(), 6u);  // META GRPH CNST PLAN RPRT PACK
  // Const blobs must sit at mmap-friendly offsets.
  for (const serialize::SectionInfo& s : info.sections) {
    EXPECT_EQ(s.offset % serialize::kConstAlignment, 0u) << s.tag;
  }
}

TEST(Serialize, SaveLoadFileRoundTrip) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(4321));
  const std::string path = ::testing::TempDir() + "micronas_roundtrip.mnpkg";
  const std::uint64_t written = serialize::save_model(model, path);
  EXPECT_GT(written, 0u);
  const compile::CompiledModel loaded = serialize::load_model(path);
  EXPECT_EQ(serialize::save_model_bytes(loaded), serialize::save_model_bytes(model));
  std::remove(path.c_str());
}

TEST(Serialize, LoadIsAtLeastFiveTimesFasterThanRecompile) {
  // The package format's reason to exist: loading parses bytes while
  // recompiling re-lowers, re-folds and re-runs calibration inference.
  // Observed ~30x on the reduced skeleton; 5x is the acceptance bar
  // (min-of-3 on both sides to shrug off scheduler noise).
  const nb201::Genotype g = nb201::Genotype::from_index(2024);
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 16;
  const std::vector<std::byte> bytes =
      serialize::save_model_bytes(compile::compile_genotype(g, options));

  const auto min_ms = [](auto&& fn) {
    double best = 1e300;
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return best;
  };
  const double compile_ms =
      min_ms([&] { compile::compile_genotype(g, options); });
  const double load_ms = min_ms([&] { serialize::load_model_bytes(bytes); });
  EXPECT_GE(compile_ms / load_ms, 5.0)
      << "compile " << compile_ms << " ms vs load " << load_ms << " ms";
}

TEST(Serialize, EveryTruncationFailsClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  ASSERT_GT(bytes.size(), 0u);

  // Dense near the header/table, strided through the payload.
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < std::min<std::size_t>(bytes.size(), 256); ++n) cuts.push_back(n);
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 211);
  for (std::size_t n = 256; n < bytes.size(); n += stride) cuts.push_back(n);
  for (std::size_t n : cuts) {
    const std::span<const std::byte> prefix(bytes.data(), n);
    EXPECT_THROW(serialize::load_model_bytes(prefix), SerializeError)
        << "truncation to " << n << " bytes must fail closed";
  }
}

TEST(Serialize, EverySingleByteFlipFailsClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);

  // Section checksums make any payload flip detectable; header and
  // table flips trip magic/version/bounds/checksum checks instead.
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 499);
  for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
    std::vector<std::byte> corrupted = bytes;
    corrupted[pos] ^= std::byte{0xFF};
    EXPECT_THROW(serialize::load_model_bytes(corrupted), SerializeError)
        << "flipped byte at " << pos << " must fail closed";
  }
}

TEST(Serialize, RejectsGarbageAndEmptyInput) {
  EXPECT_THROW(serialize::load_model_bytes({}), SerializeError);
  std::vector<std::byte> junk(4096, std::byte{0x5A});
  EXPECT_THROW(serialize::load_model_bytes(junk), SerializeError);
  EXPECT_THROW(serialize::load_model("/nonexistent/path/model.mnpkg"), SerializeError);
}

// ------------------------------------------------- mmap-backed loading
//
// MappedPackage::map shares every fail-closed gate with the copying
// loader (same load_model_image core), but the payload is a live file
// mapping, so the corpora must ALSO hold through the mmap path: a
// truncated or corrupted file throws SerializeError at map() time —
// the declared-size check runs against the actual mapping length
// before any payload byte is dereferenced, so a short file can never
// SIGBUS.

void write_file_bytes(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Serialize, MappedLoadMatchesCopiedLoad) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::string path = ::testing::TempDir() + "micronas_mapped.mnpkg";
  serialize::save_model(model, path);

  const std::shared_ptr<const serialize::MappedPackage> pkg = serialize::MappedPackage::map(path);
  const compile::CompiledModel copied = serialize::load_model(path);
  std::remove(path.c_str());

  ASSERT_EQ(pkg->model().graph.size(), copied.graph.size());
  EXPECT_EQ(pkg->model().plan.arena_bytes, copied.plan.arena_bytes);
  EXPECT_EQ(pkg->arch(), copied.report.arch);
  EXPECT_GT(pkg->zero_copy_bytes(), 0u);

  // Bit-identical logits off the mapping (the file is already deleted:
  // the mapping outlives the directory entry, POSIX semantics).
  const Tensor input = sample_input(8, 7);
  rt::Executor mapped_exec(pkg->model().graph, pkg->model().plan,
                           rt::ExecOptions{1, &pkg->model().packed});
  rt::Executor copied_exec(copied.graph, copied.plan, rt::ExecOptions{1, &copied.packed});
  const Tensor a = mapped_exec.run(input);
  const Tensor b = copied_exec.run(input);
  ASSERT_EQ(a.numel(), b.numel());
  for (std::size_t k = 0; k < a.numel(); ++k) ASSERT_EQ(a[k], b[k]) << "logit " << k;
}

TEST(Serialize, MappedTruncationsFailClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const std::string path = ::testing::TempDir() + "micronas_mapped_trunc.mnpkg";

  // Dense near the header/table, strided through the payload (sparser
  // than the in-memory corpus: each cut is a file write + mmap).
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < std::min<std::size_t>(bytes.size(), 64); ++n) cuts.push_back(n);
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 53);
  for (std::size_t n = 64; n < bytes.size(); n += stride) cuts.push_back(n);
  for (std::size_t n : cuts) {
    write_file_bytes(path, std::span<const std::byte>(bytes.data(), n));
    EXPECT_THROW(serialize::MappedPackage::map(path), SerializeError)
        << "mapped truncation to " << n << " bytes must fail closed";
  }
  std::remove(path.c_str());
}

TEST(Serialize, MappedByteFlipsFailClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const std::string path = ::testing::TempDir() + "micronas_mapped_flip.mnpkg";

  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 101);
  for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
    std::vector<std::byte> corrupted = bytes;
    corrupted[pos] ^= std::byte{0xFF};
    write_file_bytes(path, corrupted);
    EXPECT_THROW(serialize::MappedPackage::map(path), SerializeError)
        << "mapped flipped byte at " << pos << " must fail closed";
  }
  std::remove(path.c_str());
}

TEST(Serialize, MappedRejectsMissingAndEmptyFiles) {
  EXPECT_THROW(serialize::MappedPackage::map("/nonexistent/path/model.mnpkg"), SerializeError);
  const std::string path = ::testing::TempDir() + "micronas_mapped_empty.mnpkg";
  write_file_bytes(path, {});
  EXPECT_THROW(serialize::MappedPackage::map(path), SerializeError);
  std::remove(path.c_str());
}

// ------------------------------------------------------ forged packages
//
// The truncation/byte-flip corpus above is caught by checksums, but
// fnv1a64 is unkeyed: a real attacker patches a field and recomputes
// every checksum. These tests mount exactly that attack — the forged
// package passes all integrity gates, so hostile values must fail
// closed on semantic validation (SerializeError), never reach UB
// (SIGFPE in conv_out_size, signed overflow, unbounded allocation).

void poke_le(std::vector<std::byte>& bytes, std::size_t at, std::uint64_t value, int width) {
  for (int i = 0; i < width; ++i) {
    bytes[at + static_cast<std::size_t>(i)] = static_cast<std::byte>((value >> (8 * i)) & 0xFF);
  }
}

/// Recompute all section checksums and the file checksum (which skips
/// its own u64 at byte 32; table of 32-byte entries starts at 40 — the
/// header layout documented in serialize.hpp).
void reforge_checksums(std::vector<std::byte>& bytes) {
  constexpr std::size_t kChecksumAt = 32;
  constexpr std::size_t kTableAt = 40;
  constexpr std::size_t kEntryBytes = 32;
  serialize::ByteReader header(bytes, "header");
  header.skip(24);
  const std::uint32_t section_count = header.u32();
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t entry_at = kTableAt + i * kEntryBytes;
    const std::span<const std::byte> entry_bytes(bytes.data() + entry_at, kEntryBytes);
    serialize::ByteReader entry(entry_bytes, "entry");
    entry.skip(8);  // tag, reserved
    const std::uint64_t offset = entry.u64();
    const std::uint64_t size = entry.u64();
    poke_le(bytes, entry_at + 24, fnv1a64(bytes.data() + offset, size), 8);
  }
  std::uint64_t h = fnv1a64(kFnv1a64Basis, bytes.data(), kChecksumAt);
  h = fnv1a64(h, bytes.data() + kChecksumAt + 8, bytes.size() - (kChecksumAt + 8));
  poke_le(bytes, kChecksumAt, h, 8);
}

serialize::SectionInfo section_named(const std::vector<std::byte>& bytes,
                                     const std::string& tag) {
  for (const serialize::SectionInfo& s : serialize::read_package_info(bytes).sections) {
    if (s.tag == tag) return s;
  }
  throw std::logic_error("package has no " + tag + " section");
}

/// Walk GRPH node records (mirroring the schema; op bytes follow
/// ir::OpKind declaration order) to the first op that consumes conv
/// attrs; returns the offset of its kernel field within the payload.
std::size_t conv_attrs_offset(std::span<const std::byte> grph) {
  serialize::ByteReader r(grph, "GRPH");
  const std::uint32_t node_count = r.u32();
  r.i32();  // input
  r.i32();  // output
  for (std::uint32_t i = 0; i < node_count; ++i) {
    r.i32();  // id
    const int op = r.u8();
    r.str();  // name
    const std::uint32_t num_inputs = r.u32();
    for (std::uint32_t k = 0; k < num_inputs; ++k) r.i32();
    const int rank = r.u8();
    for (int d = 0; d < rank; ++d) r.i32();
    r.u8();  // dtype
    if (op == static_cast<int>(ir::OpKind::kConv2d) ||
        op == static_cast<int>(ir::OpKind::kAvgPool) ||
        op == static_cast<int>(ir::OpKind::kQConv2d) ||
        op == static_cast<int>(ir::OpKind::kQAvgPool)) {
      return r.pos();
    }
    r.i32();  // kernel
    r.i32();  // stride
    r.i32();  // pad
    r.u8();   // fused_relu
    r.f64();  // bn_eps
    for (int a = 0; a < 3; ++a) {  // in_q, in2_q, out_q
      r.f64();
      r.i32();
    }
    const std::uint32_t num_mantissa = r.u32();
    for (std::uint32_t k = 0; k < num_mantissa; ++k) r.i32();
    const std::uint32_t num_shift = r.u32();
    for (std::uint32_t k = 0; k < num_shift; ++k) r.i32();
    r.i32();  // mantissa2
    r.i32();  // shift2
    if (r.u8() != 0) {  // const payload ref
      r.u64();
      r.u64();
    }
  }
  throw std::logic_error("GRPH has no conv/pool node");
}

/// Offset of arena_bytes within the RPRT payload (arch string, four
/// node counts, pass stats, then the byte totals).
std::size_t report_arena_offset(std::span<const std::byte> rprt) {
  serialize::ByteReader r(rprt, "RPRT");
  r.str();  // arch
  for (int i = 0; i < 4; ++i) r.i32();
  const std::uint32_t num_passes = r.u32();
  for (std::uint32_t i = 0; i < num_passes; ++i) {
    r.str();
    r.u8();
    r.i32();
    r.i32();
    r.f64();
  }
  return r.pos();
}

TEST(SerializeForged, HostileConvAttrsFailClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> baseline = serialize::save_model_bytes(model);
  const serialize::SectionInfo grph = section_named(baseline, "GRPH");
  const std::size_t attrs_at =
      grph.offset + conv_attrs_offset(std::span<const std::byte>(baseline).subspan(grph.offset, grph.size));

  // The reforge helper must be a faithful writer: recomputing the
  // checksums of an unmodified package reproduces it byte-for-byte.
  {
    std::vector<std::byte> intact = baseline;
    reforge_checksums(intact);
    EXPECT_EQ(intact, baseline);
  }

  // Keep the genuine kernel for the stride/pad attacks so the
  // kernel/weight-shape cross-check cannot mask them: stride 0 used to
  // reach conv_out_size's division (SIGFPE), pad near INT_MAX its
  // `in + 2*pad` (signed overflow).
  const std::span<const std::byte> attr_bytes(baseline.data() + attrs_at, 12);
  serialize::ByteReader attrs(attr_bytes, "attrs");
  const std::int32_t kernel0 = attrs.i32();
  const std::int32_t stride0 = attrs.i32();
  const std::int32_t pad0 = attrs.i32();
  const struct {
    std::int32_t kernel, stride, pad;
  } hostile[] = {
      {kernel0, 0, pad0},          {kernel0, 1, INT32_MAX}, {kernel0, -1, pad0},
      {kernel0, stride0, -1},      {0, stride0, pad0},      {INT32_MAX, stride0, pad0},
  };
  for (const auto& h : hostile) {
    std::vector<std::byte> forged = baseline;
    poke_le(forged, attrs_at + 0, static_cast<std::uint32_t>(h.kernel), 4);
    poke_le(forged, attrs_at + 4, static_cast<std::uint32_t>(h.stride), 4);
    poke_le(forged, attrs_at + 8, static_cast<std::uint32_t>(h.pad), 4);
    reforge_checksums(forged);
    EXPECT_THROW(serialize::load_model_bytes(forged), SerializeError)
        << "kernel=" << h.kernel << " stride=" << h.stride << " pad=" << h.pad;
  }
}

TEST(SerializeForged, HostileArenaDemandFailsClosed) {
  // A forged plan declaring naive_bytes == arena_bytes == 2^62 (report
  // patched to agree, all checksums valid) passes every structural
  // check; the loader must reject it before an Executor would try to
  // allocate a 4-exabyte arena.
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> baseline = serialize::save_model_bytes(model);
  const serialize::SectionInfo plan = section_named(baseline, "PLAN");
  const serialize::SectionInfo rprt = section_named(baseline, "RPRT");
  const std::size_t report_at =
      rprt.offset + report_arena_offset(std::span<const std::byte>(baseline).subspan(rprt.offset, rprt.size));

  std::vector<std::byte> forged = baseline;
  const std::uint64_t huge = 1ULL << 62;
  poke_le(forged, plan.offset + 0, huge, 8);  // plan.arena_bytes
  poke_le(forged, plan.offset + 8, huge, 8);  // plan.naive_bytes
  poke_le(forged, report_at + 0, huge, 8);    // report.arena_bytes
  poke_le(forged, report_at + 8, huge, 8);    // report.naive_arena_bytes
  reforge_checksums(forged);
  EXPECT_THROW(serialize::load_model_bytes(forged), SerializeError);
}

// --------------------------------------------- PLAN alias / strip tail
//
// The in-place-alias and row-strip records ride after the legacy PLAN
// layout. Both tell the executor to write one value over another's
// bytes, so a forged record is a memory-safety attack and must die in
// the loader's check_plan gate — while a package saved by a pre-tail
// writer (no records at all) still loads.

/// Byte offset, within the PLAN payload, of the appended tail (the u32
/// alias count): skips the legacy arena totals, placements, schedule.
std::size_t plan_tail_offset(std::span<const std::byte> plan) {
  serialize::ByteReader r(plan, "PLAN");
  r.i64();  // arena_bytes
  r.i64();  // naive_bytes
  r.skip(r.count(28) * 28);  // placements
  r.skip(r.count(4) * 4);    // schedule
  return r.pos();
}

/// A genotype whose plan actually streams: three stacked 3x3 convs at
/// one resolution, recompiled under half the arena their unstreamed
/// plan needs.
compile::CompiledModel compile_streamed() {
  const nb201::Genotype g = nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|none~0|nor_conv_3x3~1|+|none~0|none~1|nor_conv_3x3~2|");
  compile::CompilerOptions options;
  options.macro.num_stages = 1;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 32;
  const compile::CompiledModel base = compile::compile_genotype(g, options);
  options.plan.arena_budget = base.plan.arena_bytes / 2;
  compile::CompiledModel model = compile::compile_genotype(g, options);
  if (model.plan.strips.empty()) throw std::logic_error("expected a streamed plan");
  return model;
}

TEST(SerializeForged, ForgedAliasEntriesFailClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> baseline = serialize::save_model_bytes(model);
  const serialize::SectionInfo plan = section_named(baseline, "PLAN");
  const std::size_t tail_at =
      plan.offset + plan_tail_offset(std::span<const std::byte>(baseline).subspan(plan.offset, plan.size));
  serialize::ByteReader tail(
      std::span<const std::byte>(baseline).subspan(tail_at, plan.offset + plan.size - tail_at), "tail");
  const std::uint32_t alias_count = tail.u32();
  ASSERT_GT(alias_count, 0u) << "default compile carries no alias record to forge";
  const std::size_t rec_at = tail_at + 4;  // first {node_id, alias_of} record
  serialize::ByteReader rec(std::span<const std::byte>(baseline).subspan(rec_at, 8), "alias record");
  const std::int32_t node_id = rec.i32();

  // Out-of-range target, self-alias (never one of the node's inputs),
  // and a "no alias" -1 that would orphan the shared offset the entry
  // came with: each must fail closed, the last via the overlap check
  // losing its storage-group exemption.
  const std::int32_t hostile_alias[] = {INT32_MAX, node_id, -1};
  for (const std::int32_t a : hostile_alias) {
    std::vector<std::byte> forged = baseline;
    poke_le(forged, rec_at + 4, static_cast<std::uint32_t>(a), 4);
    reforge_checksums(forged);
    EXPECT_THROW(serialize::load_model_bytes(forged), SerializeError) << "alias_of=" << a;
  }
  // A record naming a node with no placement dies in the reader itself.
  std::vector<std::byte> forged = baseline;
  poke_le(forged, rec_at + 0, static_cast<std::uint32_t>(INT32_MAX), 4);
  reforge_checksums(forged);
  EXPECT_THROW(serialize::load_model_bytes(forged), SerializeError);
}

TEST(SerializeForged, ForgedStripGeometryFailsClosed) {
  const compile::CompiledModel model = compile_streamed();
  const std::vector<std::byte> baseline = serialize::save_model_bytes(model);
  const serialize::SectionInfo plan = section_named(baseline, "PLAN");
  const std::size_t tail_at =
      plan.offset + plan_tail_offset(std::span<const std::byte>(baseline).subspan(plan.offset, plan.size));
  serialize::ByteReader tail(
      std::span<const std::byte>(baseline).subspan(tail_at, plan.offset + plan.size - tail_at), "tail");
  const std::size_t alias_count = tail.u32();
  const std::size_t strips_at = tail_at + 4 + alias_count * 8;
  serialize::ByteReader strips(
      std::span<const std::byte>(baseline).subspan(strips_at, plan.offset + plan.size - strips_at), "strips");
  const std::uint32_t strip_count = strips.u32();
  ASSERT_GT(strip_count, 0u) << "streamed compile carries no strip record to forge";
  const std::size_t rec_at = strips_at + 4;  // first {node_id, strip_h} record
  const std::size_t scratch_at = strips_at + 4 + strip_count * 8;
  serialize::ByteReader rec(std::span<const std::byte>(baseline).subspan(rec_at, 8), "strip record");
  rec.i32();  // node_id
  const std::int32_t strip_h = rec.i32();
  const std::int32_t out_h = 32;
  ASSERT_GT(strip_h, 1);
  ASSERT_LT(strip_h, out_h);

  // strip_h = 0 breaks the halo-safety floor (a full strip must cover
  // at least `pad` rows or the bottom-up scatter clobbers unread
  // input); a huge strip_h escapes the output; and even a legal-range
  // strip_h that differs from the planner's choice must re-derive to a
  // different scratch requirement than the serialized one.
  const std::int32_t hostile_h[] = {0, 1 << 20, out_h};
  for (const std::int32_t h : hostile_h) {
    std::vector<std::byte> forged = baseline;
    poke_le(forged, rec_at + 4, static_cast<std::uint32_t>(h), 4);
    reforge_checksums(forged);
    EXPECT_THROW(serialize::load_model_bytes(forged), SerializeError) << "strip_h=" << h;
  }
  // A strip on a node that cannot stream, and a scratch demand the
  // strips do not account for (an executor allocates this much).
  std::vector<std::byte> forged = baseline;
  poke_le(forged, rec_at + 0, static_cast<std::uint32_t>(INT32_MAX), 4);
  reforge_checksums(forged);
  EXPECT_THROW(serialize::load_model_bytes(forged), SerializeError);
  forged = baseline;
  poke_le(forged, scratch_at, 1ULL << 62, 8);
  reforge_checksums(forged);
  EXPECT_THROW(serialize::load_model_bytes(forged), SerializeError);
}

TEST(Serialize, LegacyPlanWithoutTailLoads) {
  // A package written before the alias/strip tail existed carries the
  // bare PLAN layout. Reproduce one by compiling with aliasing off (the
  // tail is then 16 zero bytes) and shrinking the declared PLAN size to
  // cut it; the orphaned bytes stay in the file, which the section
  // table permits.
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.plan.alias_inplace = false;
  const compile::CompiledModel model =
      compile::compile_genotype(nb201::Genotype::from_index(888), options);
  for (const rt::BufferPlacement& b : model.plan.buffers) ASSERT_LT(b.alias_of, 0);
  ASSERT_TRUE(model.plan.strips.empty());

  std::vector<std::byte> legacy = serialize::save_model_bytes(model);
  const serialize::SectionInfo plan = section_named(legacy, "PLAN");
  const std::size_t tail =
      plan_tail_offset(std::span<const std::byte>(legacy).subspan(plan.offset, plan.size));
  ASSERT_EQ(plan.size - tail, 16u);  // empty tail: two zero counts + zero scratch

  constexpr std::size_t kTableAt = 40;
  constexpr std::size_t kEntryBytes = 32;
  const std::vector<serialize::SectionInfo> sections =
      serialize::read_package_info(legacy).sections;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].tag != "PLAN") continue;
    poke_le(legacy, kTableAt + i * kEntryBytes + 16, tail, 8);  // entry size field
  }
  reforge_checksums(legacy);

  const compile::CompiledModel loaded = serialize::load_model_bytes(legacy);
  EXPECT_EQ(loaded.plan.arena_bytes, model.plan.arena_bytes);
  EXPECT_TRUE(loaded.plan.strips.empty());
  EXPECT_EQ(loaded.plan.stream_scratch_bytes, 0);
  for (const rt::BufferPlacement& b : loaded.plan.buffers) EXPECT_LT(b.alias_of, 0);

  const Tensor input = sample_input(8, 11);
  rt::Executor a(model.graph, model.plan, rt::ExecOptions{1});
  rt::Executor b(loaded.graph, loaded.plan, rt::ExecOptions{1});
  const Tensor want = a.run(input);
  const Tensor got = b.run(input);
  ASSERT_EQ(want.numel(), got.numel());
  for (std::size_t k = 0; k < want.numel(); ++k) ASSERT_EQ(want[k], got[k]);
}

// ------------------------------------------------------- PACK section
//
// The kernel weight-layout table is an *optional* section with a
// forward/backward-compat contract: old readers skip the unknown tag,
// old packages (no PACK) load and get repacked, and unknown layout
// bytes inside PACK degrade to the repack fallback — while forged
// geometry still fails closed like every other hostile field.

/// Byte offsets inside the PACK payload, mirroring read_pack: u32
/// entry count, then 29-byte entries {i32 node_id, u8 layout,
/// i32 cout, i32 patch, u64 cnst_offset, u64 size}.
constexpr std::size_t kPackFirstEntryAt = 4;
constexpr std::size_t kPackLayoutAt = kPackFirstEntryAt + 4;
constexpr std::size_t kPackCoutAt = kPackFirstEntryAt + 5;

/// The loaded set must be indistinguishable from packing the loaded
/// graph from scratch — the invariant that makes serialized panels,
/// the loader's repack fallback, and runtime-owned packing
/// interchangeable.
void expect_packed_equals_fresh_pack(const compile::CompiledModel& loaded) {
  const rt::PackedWeightSet fresh = rt::pack_graph_weights(loaded.graph);
  ASSERT_EQ(loaded.packed.by_node.size(), fresh.by_node.size());
  std::size_t packed_nodes = 0;
  for (std::size_t i = 0; i < fresh.by_node.size(); ++i) {
    const rt::PackedWeights& got = loaded.packed.by_node[i];
    const rt::PackedWeights& want = fresh.by_node[i];
    ASSERT_EQ(got.empty(), want.empty()) << "node " << i;
    if (want.empty()) continue;
    ++packed_nodes;
    EXPECT_EQ(static_cast<int>(got.layout), static_cast<int>(want.layout)) << "node " << i;
    EXPECT_EQ(got.cout, want.cout) << "node " << i;
    EXPECT_EQ(got.patch, want.patch) << "node " << i;
    EXPECT_EQ(got.data, want.data) << "node " << i;
  }
  EXPECT_GT(packed_nodes, 0u) << "no packed-weight nodes — the check is vacuous";
}

TEST(SerializePack, RoundTripsPackedWeightsVerbatim) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  ASSERT_GE(section_named(bytes, "PACK").size, kPackFirstEntryAt + 29);
  const compile::CompiledModel loaded = serialize::load_model_bytes(bytes);
  expect_packed_equals_fresh_pack(loaded);
}

TEST(SerializePack, LegacyPackageWithoutPackIsRepackedOnLoad) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> baseline = serialize::save_model_bytes(model);

  // Rename PACK's tag in the section table to a fourcc this reader has
  // never heard of. That simulates both compat directions at once: a
  // future writer's extra section (unknown tags are stored and
  // ignored) and a pre-PACK legacy package (find_section comes back
  // empty, so the loader must repack from the graph weights).
  const serialize::PackageInfo info = serialize::read_package_info(baseline);
  std::size_t pack_index = info.sections.size();
  for (std::size_t i = 0; i < info.sections.size(); ++i) {
    if (info.sections[i].tag == "PACK") pack_index = i;
  }
  ASSERT_LT(pack_index, info.sections.size());
  constexpr std::size_t kTableAt = 40;
  constexpr std::size_t kEntryBytes = 32;
  std::vector<std::byte> legacy = baseline;
  poke_le(legacy, kTableAt + pack_index * kEntryBytes, 0x5A5A5A5Au, 4);  // "ZZZZ"
  reforge_checksums(legacy);

  const compile::CompiledModel loaded = serialize::load_model_bytes(legacy);
  expect_packed_equals_fresh_pack(loaded);

  const Tensor input = sample_input(8, 7);
  rt::Executor want(model.graph, model.plan, rt::ExecOptions{1});
  rt::Executor got(loaded.graph, loaded.plan, rt::ExecOptions{1});
  EXPECT_EQ(serialize::logits_hash_hex(got.run(input)),
            serialize::logits_hash_hex(want.run(input)))
      << "repack fallback changed the numerics";
}

TEST(SerializePack, ForgedEntryGeometryFailsClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> baseline = serialize::save_model_bytes(model);
  const serialize::SectionInfo pack = section_named(baseline, "PACK");
  ASSERT_GE(pack.size, kPackFirstEntryAt + 29);

  // cout that disagrees with the node's weight tensor: a forged value
  // with valid checksums must die on the geometry cross-check, never
  // reach the blob copy.
  std::vector<std::byte> forged = baseline;
  poke_le(forged, pack.offset + kPackCoutAt, 0x7FFFFFFFu, 4);
  reforge_checksums(forged);
  EXPECT_THROW(serialize::load_model_bytes(forged), SerializeError);
}

TEST(SerializePack, UnknownLayoutTagIsSkippedAndRepacked) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> baseline = serialize::save_model_bytes(model);
  const serialize::SectionInfo pack = section_named(baseline, "PACK");
  ASSERT_GE(pack.size, kPackFirstEntryAt + 29);

  // A layout byte from the future: the entry is skipped (its geometry
  // is opaque to this reader), the node falls through to the repack
  // fallback, and execution stays bit-identical.
  std::vector<std::byte> forged = baseline;
  poke_le(forged, pack.offset + kPackLayoutAt, 42, 1);
  reforge_checksums(forged);

  const compile::CompiledModel loaded = serialize::load_model_bytes(forged);
  expect_packed_equals_fresh_pack(loaded);

  const Tensor input = sample_input(8, 7);
  rt::Executor want(model.graph, model.plan, rt::ExecOptions{1});
  rt::Executor got(loaded.graph, loaded.plan, rt::ExecOptions{1});
  EXPECT_EQ(serialize::logits_hash_hex(got.run(input)),
            serialize::logits_hash_hex(want.run(input)));
}

// ----------------------------------------------------------- golden ties

/// The fixed golden scenario of tests/test_compile_e2e.cpp.
compile::CompiledModel golden_model() {
  const nb201::Genotype genotype = nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|");
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 16;
  options.seed = 7;
  return compile::compile_genotype(genotype, options);
}

TEST(SerializeGolden, ReloadedLogitsHashMatchesCompileReportGolden) {
  const std::string want = serialize::read_golden_logits_hash(
      MICRONAS_SOURCE_DIR "/tests/golden/compile_report.golden");

  const std::vector<std::byte> bytes = serialize::save_model_bytes(golden_model());
  const compile::CompiledModel loaded = serialize::load_model_bytes(bytes);
  rt::Executor exec(loaded.graph, loaded.plan, rt::ExecOptions{1});
  const Tensor logits = exec.run(sample_input(16, 7));
  EXPECT_EQ(serialize::logits_hash_hex(logits), want)
      << "save -> load -> execute no longer reproduces the golden compile-report logits";
}

/// Stable layout summary of the golden scenario's package: section
/// sizes plus content checksums for the deterministic sections. META
/// embeds the writer's variable-length git sha, so only its presence
/// is pinned (neither size nor checksum); RPRT carries pass wall
/// times, so only its size is.
std::string package_summary() {
  const compile::CompiledModel model = golden_model();
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const serialize::PackageInfo info = serialize::read_package_info(bytes);
  std::ostringstream ss;
  ss << "format_version " << info.format_version << "\n";
  ss << "arch " << info.arch << "\n";
  for (const serialize::SectionInfo& s : info.sections) {
    ss << "section " << s.tag;
    if (s.tag != "META") ss << " " << s.size;
    if (s.tag == "GRPH" || s.tag == "CNST" || s.tag == "PLAN") {
      char sum[32];
      std::snprintf(sum, sizeof(sum), "%016llx", static_cast<unsigned long long>(s.checksum));
      ss << " fnv64 " << sum;
    }
    ss << "\n";
  }
  ss << "arena_bytes " << model.plan.arena_bytes << "\n";
  return ss.str();
}

TEST(SerializeGolden, PackageLayoutMatchesGolden) {
  const char* path = MICRONAS_SOURCE_DIR "/tests/golden/serialize_package.golden";
  const std::string actual = package_summary();

  if (std::getenv("MICRONAS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run scripts/update_golden.sh";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "package layout drifted; if intentional, run scripts/update_golden.sh";
}

}  // namespace
}  // namespace micronas
