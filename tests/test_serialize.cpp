// Model package (.mnpkg) round-trip and robustness suite.
//
//   * save -> load -> save is byte-identical and the reloaded model
//     executes to bit-identical logits, across 25 sampled genotypes;
//   * every truncation and every single-byte corruption of a package
//     fails closed with SerializeError (never UB — this file also runs
//     under the ASan/UBSan CI job);
//   * the fixed golden scenario's reloaded logits hash equals the
//     logits_hash recorded in tests/golden/compile_report.golden, and
//     the package layout matches tests/golden/serialize_package.golden
//     (regenerate intentional changes with scripts/update_golden.sh).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/data/synthetic.hpp"
#include "src/rt/runtime.hpp"
#include "src/serialize/serialize.hpp"

namespace micronas {
namespace {

#ifndef MICRONAS_SOURCE_DIR
#error "MICRONAS_SOURCE_DIR must point at the repository root"
#endif

using serialize::SerializeError;

compile::CompiledModel compile_small(const nb201::Genotype& g, int input = 8,
                                     std::uint64_t seed = 1) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = input;
  options.seed = seed;
  return compile::compile_genotype(g, options);
}

Tensor sample_input(int input_size, std::uint64_t seed) {
  DatasetSpec spec;
  spec.height = spec.width = input_size;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  return data.sample_batch(1, rng).images;
}


TEST(Serialize, RoundTripIsByteIdenticalAndBitExactOn25Genotypes) {
  Rng rng(42);
  for (int i = 0; i < 25; ++i) {
    const auto index = static_cast<int>(
        rng.index(static_cast<std::size_t>(nb201::kNumArchitectures)));
    const nb201::Genotype g = nb201::Genotype::from_index(index);
    const compile::CompiledModel model = compile_small(g);

    const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
    const compile::CompiledModel loaded = serialize::load_model_bytes(bytes);

    // Save-of-load is byte-identical: nothing is lost or reordered.
    EXPECT_EQ(bytes, serialize::save_model_bytes(loaded)) << "genotype " << index;

    // Structure survived.
    ASSERT_EQ(loaded.graph.size(), model.graph.size());
    EXPECT_EQ(loaded.plan.arena_bytes, model.plan.arena_bytes);
    EXPECT_EQ(loaded.plan.buffers.size(), model.plan.buffers.size());
    EXPECT_EQ(loaded.report.to_string(), model.report.to_string());

    // Execution is bit-exact: same logits from the reloaded model.
    const Tensor input = sample_input(8, 7);
    rt::Executor original(model.graph, model.plan, rt::ExecOptions{1});
    rt::Executor reloaded(loaded.graph, loaded.plan, rt::ExecOptions{1});
    const Tensor a = original.run(input);
    const Tensor b = reloaded.run(input);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::size_t k = 0; k < a.numel(); ++k) {
      ASSERT_EQ(a[k], b[k]) << "genotype " << index << " logit " << k;
    }
  }
}

TEST(Serialize, FloatPipelineRoundTrips) {
  // Unquantized (fold/fuse/quantize off) models serialize too: f32
  // consts and float ops exercise the non-quant node paths.
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.fold = options.fuse = options.quantize = false;
  const compile::CompiledModel model =
      compile::compile_genotype(nb201::Genotype::from_index(123), options);
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const compile::CompiledModel loaded = serialize::load_model_bytes(bytes);
  EXPECT_EQ(bytes, serialize::save_model_bytes(loaded));

  const Tensor input = sample_input(8, 3);
  rt::Executor a(model.graph, model.plan, rt::ExecOptions{1});
  rt::Executor b(loaded.graph, loaded.plan, rt::ExecOptions{1});
  EXPECT_EQ(serialize::logits_hash_hex(a.run(input)),
            serialize::logits_hash_hex(b.run(input)));
}

TEST(Serialize, PackageInfoPeeksWithoutLoading) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(777));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const serialize::PackageInfo info = serialize::read_package_info(bytes);
  EXPECT_EQ(info.format_version, serialize::kFormatVersion);
  EXPECT_EQ(info.file_bytes, bytes.size());
  EXPECT_EQ(info.arch, model.report.arch);
  ASSERT_EQ(info.sections.size(), 5u);
  // Const blobs must sit at mmap-friendly offsets.
  for (const serialize::SectionInfo& s : info.sections) {
    EXPECT_EQ(s.offset % serialize::kConstAlignment, 0u) << s.tag;
  }
}

TEST(Serialize, SaveLoadFileRoundTrip) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(4321));
  const std::string path = ::testing::TempDir() + "micronas_roundtrip.mnpkg";
  const std::uint64_t written = serialize::save_model(model, path);
  EXPECT_GT(written, 0u);
  const compile::CompiledModel loaded = serialize::load_model(path);
  EXPECT_EQ(serialize::save_model_bytes(loaded), serialize::save_model_bytes(model));
  std::remove(path.c_str());
}

TEST(Serialize, LoadIsAtLeastFiveTimesFasterThanRecompile) {
  // The package format's reason to exist: loading parses bytes while
  // recompiling re-lowers, re-folds and re-runs calibration inference.
  // Observed ~30x on the reduced skeleton; 5x is the acceptance bar
  // (min-of-3 on both sides to shrug off scheduler noise).
  const nb201::Genotype g = nb201::Genotype::from_index(2024);
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 16;
  const std::vector<std::byte> bytes =
      serialize::save_model_bytes(compile::compile_genotype(g, options));

  const auto min_ms = [](auto&& fn) {
    double best = 1e300;
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return best;
  };
  const double compile_ms =
      min_ms([&] { compile::compile_genotype(g, options); });
  const double load_ms = min_ms([&] { serialize::load_model_bytes(bytes); });
  EXPECT_GE(compile_ms / load_ms, 5.0)
      << "compile " << compile_ms << " ms vs load " << load_ms << " ms";
}

TEST(Serialize, EveryTruncationFailsClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  ASSERT_GT(bytes.size(), 0u);

  // Dense near the header/table, strided through the payload.
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < std::min<std::size_t>(bytes.size(), 256); ++n) cuts.push_back(n);
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 211);
  for (std::size_t n = 256; n < bytes.size(); n += stride) cuts.push_back(n);
  for (std::size_t n : cuts) {
    const std::span<const std::byte> prefix(bytes.data(), n);
    EXPECT_THROW(serialize::load_model_bytes(prefix), SerializeError)
        << "truncation to " << n << " bytes must fail closed";
  }
}

TEST(Serialize, EverySingleByteFlipFailsClosed) {
  const compile::CompiledModel model = compile_small(nb201::Genotype::from_index(888));
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);

  // Section checksums make any payload flip detectable; header and
  // table flips trip magic/version/bounds/checksum checks instead.
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 499);
  for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
    std::vector<std::byte> corrupted = bytes;
    corrupted[pos] ^= std::byte{0xFF};
    EXPECT_THROW(serialize::load_model_bytes(corrupted), SerializeError)
        << "flipped byte at " << pos << " must fail closed";
  }
}

TEST(Serialize, RejectsGarbageAndEmptyInput) {
  EXPECT_THROW(serialize::load_model_bytes({}), SerializeError);
  std::vector<std::byte> junk(4096, std::byte{0x5A});
  EXPECT_THROW(serialize::load_model_bytes(junk), SerializeError);
  EXPECT_THROW(serialize::load_model("/nonexistent/path/model.mnpkg"), SerializeError);
}

// ----------------------------------------------------------- golden ties

/// The fixed golden scenario of tests/test_compile_e2e.cpp.
compile::CompiledModel golden_model() {
  const nb201::Genotype genotype = nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|");
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 16;
  options.seed = 7;
  return compile::compile_genotype(genotype, options);
}

TEST(SerializeGolden, ReloadedLogitsHashMatchesCompileReportGolden) {
  const std::string want = serialize::read_golden_logits_hash(
      MICRONAS_SOURCE_DIR "/tests/golden/compile_report.golden");

  const std::vector<std::byte> bytes = serialize::save_model_bytes(golden_model());
  const compile::CompiledModel loaded = serialize::load_model_bytes(bytes);
  rt::Executor exec(loaded.graph, loaded.plan, rt::ExecOptions{1});
  const Tensor logits = exec.run(sample_input(16, 7));
  EXPECT_EQ(serialize::logits_hash_hex(logits), want)
      << "save -> load -> execute no longer reproduces the golden compile-report logits";
}

/// Stable layout summary of the golden scenario's package: section
/// sizes for all five sections plus content checksums for the
/// deterministic ones (META carries the writer's git sha and RPRT the
/// pass wall times, so only their sizes are pinned).
std::string package_summary() {
  const compile::CompiledModel model = golden_model();
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const serialize::PackageInfo info = serialize::read_package_info(bytes);
  std::ostringstream ss;
  ss << "format_version " << info.format_version << "\n";
  ss << "arch " << info.arch << "\n";
  for (const serialize::SectionInfo& s : info.sections) {
    ss << "section " << s.tag << " " << s.size;
    if (s.tag == "GRPH" || s.tag == "CNST" || s.tag == "PLAN") {
      char sum[32];
      std::snprintf(sum, sizeof(sum), "%016llx", static_cast<unsigned long long>(s.checksum));
      ss << " fnv64 " << sum;
    }
    ss << "\n";
  }
  ss << "arena_bytes " << model.plan.arena_bytes << "\n";
  return ss.str();
}

TEST(SerializeGolden, PackageLayoutMatchesGolden) {
  const char* path = MICRONAS_SOURCE_DIR "/tests/golden/serialize_package.golden";
  const std::string actual = package_summary();

  if (std::getenv("MICRONAS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run scripts/update_golden.sh";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "package layout drifted; if intentional, run scripts/update_golden.sh";
}

}  // namespace
}  // namespace micronas
