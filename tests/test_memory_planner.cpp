// Static arena planner: liveness/overlap invariants, reuse quality,
// determinism, the in-place-alias and row-strip-streaming rungs
// (arena never grows, logits never change), and the end-to-end
// validation of hw/memory_model — the planned arena peak must stay at
// or under the analytic model's predicted peak SRAM on sampled NB201
// genotypes.
#include <gtest/gtest.h>

#include <iostream>
#include <map>
#include <stdexcept>

#include "src/compile/compiler.hpp"
#include "src/compile/passes.hpp"
#include "src/data/synthetic.hpp"
#include "src/hw/quant.hpp"
#include "src/ir/lower.hpp"
#include "src/nb201/space.hpp"
#include "src/rt/memory_planner.hpp"
#include "src/rt/runtime.hpp"

namespace micronas {
namespace {

ir::Graph lowered(const nb201::Genotype& g, int cells = 1, int input = 8) {
  ir::LowerOptions options;
  options.macro.cells_per_stage = cells;
  options.macro.input_size = input;
  return ir::lower_genotype(g, options);
}

Tensor sample_input(std::uint64_t seed, int input_size = 32) {
  DatasetSpec spec;
  spec.height = spec.width = input_size;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  return data.sample_batch(1, rng).images;
}

void expect_bit_identical(const Tensor& got, const Tensor& want, const std::string& what) {
  ASSERT_EQ(got.numel(), want.numel()) << what;
  for (std::size_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << what << " diverges at logit " << i;
  }
}

/// Arena storage root of a placement: follow alias links (and a
/// streamed node's overlay of its input) to the buffer that actually
/// owns the bytes — pairs with one root legitimately share storage.
int storage_root(const rt::MemoryPlan& plan, const ir::Graph& g, int id) {
  for (;;) {
    const rt::BufferPlacement* b = plan.find(id);
    if (b != nullptr && b->alias_of >= 0) {
      id = b->alias_of;
      continue;
    }
    if (plan.find_strip(id) != nullptr) {
      id = g.node(id).inputs[0];
      continue;
    }
    return id;
  }
}

/// Brute-force no-overlap-while-live over every placement pair,
/// skipping pairs that share one storage root (in-place aliases and
/// streamed overlays are byte sharing by design).
void expect_no_live_overlap(const rt::MemoryPlan& plan, const ir::Graph& g) {
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.buffers.size(); ++j) {
      const auto& a = plan.buffers[i];
      const auto& b = plan.buffers[j];
      const bool live_together =
          a.def_step <= b.last_use_step && b.def_step <= a.last_use_step;
      if (storage_root(plan, g, a.node_id) == storage_root(plan, g, b.node_id)) continue;
      const bool disjoint = a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
      EXPECT_TRUE(!live_together || disjoint)
          << "buffers %" << a.node_id << " and %" << b.node_id << " overlap while live";
    }
  }
}

TEST(MemoryPlanner, NoOverlapAmongLiveBuffersAndFullCoverage) {
  const ir::Graph g = lowered(nb201::Genotype::from_string(
                                  "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_3x3~1|+"
                                  "|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|"),
                              2, 16);
  const rt::MemoryPlan plan = rt::plan_memory(g);

  // Every executed node and the input have a placement.
  EXPECT_NE(plan.find(g.input()), nullptr);
  for (int id : plan.schedule) {
    ASSERT_NE(plan.find(id), nullptr);
    EXPECT_FALSE(g.node(id).is_const());
  }
  EXPECT_EQ(plan.buffers.size(), plan.schedule.size() + 1);  // + input

  // Brute-force pairwise check mirroring the planner's invariant.
  expect_no_live_overlap(plan, g);

  // Arena bound sanity: covers every placement, beats no-reuse.
  for (const auto& b : plan.buffers) EXPECT_LE(b.offset + b.size, plan.arena_bytes);
  EXPECT_LT(plan.arena_bytes, plan.naive_bytes);
  EXPECT_GT(plan.reuse_factor(), 1.5);
}

TEST(MemoryPlanner, LifetimesMatchConsumerSchedule) {
  const ir::Graph g = lowered(nb201::Genotype::from_index(321));
  const rt::MemoryPlan plan = rt::plan_memory(g);
  std::map<int, int> step_of;
  step_of[g.input()] = 0;
  for (std::size_t s = 0; s < plan.schedule.size(); ++s) {
    step_of[plan.schedule[s]] = static_cast<int>(s) + 1;
  }
  for (const auto& b : plan.buffers) {
    EXPECT_EQ(b.def_step, step_of.at(b.node_id));
    int last = b.def_step;
    for (int id : plan.schedule) {
      for (int in : g.node(id).inputs) {
        if (in == b.node_id) last = std::max(last, step_of.at(id));
      }
    }
    if (b.node_id == g.output()) last = static_cast<int>(plan.schedule.size());
    EXPECT_EQ(b.last_use_step, last) << "node %" << b.node_id;
  }
}

TEST(MemoryPlanner, DeterministicAcrossCalls) {
  const ir::Graph g = lowered(nb201::Genotype::from_index(4545), 2);
  const rt::MemoryPlan a = rt::plan_memory(g);
  const rt::MemoryPlan b = rt::plan_memory(g);
  ASSERT_EQ(a.buffers.size(), b.buffers.size());
  EXPECT_EQ(a.arena_bytes, b.arena_bytes);
  for (std::size_t i = 0; i < a.buffers.size(); ++i) {
    EXPECT_EQ(a.buffers[i].offset, b.buffers[i].offset);
  }
}

TEST(MemoryPlanner, HandlesFullyFoldedConstOutput) {
  // An all-`none` genotype under fold+fuse+dce (no quantization)
  // collapses the entire network into a constant: the cell outputs are
  // zero consts, so the reductions, GAP and classifier all fold. The
  // planner must cope with a graph whose output has no placement.
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.quantize = false;
  const compile::CompiledModel m = compile::compile_genotype(nb201::Genotype(), options);
  EXPECT_TRUE(m.graph.node(m.graph.output()).is_const());
  EXPECT_TRUE(m.plan.schedule.empty());

  // And it still executes: the logits are the folded constant.
  rt::Executor exec(m.graph, m.plan, rt::ExecOptions{1});
  Tensor input(Shape{1, 3, 8, 8});
  const Tensor logits = exec.run(input);
  EXPECT_EQ(logits.shape(), (Shape{1, 10}));
}

// Satellite: the planner's arena (+ its true scratch needs) must fit
// the analytic model's predicted peak SRAM for the same quantized
// deployment model, on every sampled genotype; the compile report logs
// the ratio.
TEST(MemoryPlanner, PlannedArenaWithinModelPredictedPeak) {
  Rng rng(11);
  double worst = 0.0;
  for (const auto& g : nb201::sample_genotypes(rng, 25)) {
    compile::CompilerOptions options;  // full NB201 skeleton, int8
    options.calibration_batches = 1;   // keep the float calibration pass cheap
    const compile::CompiledModel model = compile::compile_genotype(g, options);
    EXPECT_GT(model.report.model_peak_sram_bytes, 0);
    EXPECT_LE(model.report.arena_bytes, model.report.model_peak_sram_bytes)
        << "genotype " << g.to_string();
    worst = std::max(worst, model.report.arena_to_model_ratio);
  }
  std::cout << "[planner-vs-model] worst planned/predicted ratio over 25 genotypes: " << worst
            << "\n";
  EXPECT_LE(worst, 1.0);
}

// Satellite bugfix: reuse_factor's degenerate cases are explicit — an
// empty plan reuses nothing (1.0), and an arena-free plan that still
// claims naive bytes is infinitely compressed, not silently "1.0".
TEST(MemoryPlanner, ReuseFactorDegenerateCases) {
  rt::MemoryPlan plan;
  EXPECT_DOUBLE_EQ(plan.reuse_factor(), 1.0);  // no placements at all

  plan.naive_bytes = 4096;  // arena 0 but naive > 0: infinite compression
  EXPECT_TRUE(std::isinf(plan.reuse_factor()));
  EXPECT_GT(plan.reuse_factor(), 0.0);

  plan.arena_bytes = 1024;
  EXPECT_DOUBLE_EQ(plan.reuse_factor(), 4.0);  // the ordinary ratio
}

// Satellite property test: for 25 sampled genotypes, the
// reordered+aliased plan passes the loader's own gate (check_plan),
// never exceeds the unoptimized plan's arena, and the logits stay
// bit-identical across thread counts and batch sizes.
TEST(MemoryPlanner, OptimizedPlansAreValidSmallerAndBitIdenticalOn25Genotypes) {
  Rng rng(77);
  const Tensor input = sample_input(901, 8);
  int aliased_plans = 0;
  int reordered_graphs = 0;
  for (const auto& g : nb201::sample_genotypes(rng, 25)) {
    compile::CompilerOptions options;
    options.macro.cells_per_stage = 1;
    options.macro.input_size = 8;
    options.calibration_batches = 1;
    options.seed = 13;

    compile::CompilerOptions baseline = options;
    baseline.reorder = false;
    baseline.plan.alias_inplace = false;
    const compile::CompiledModel plain = compile::compile_genotype(g, baseline);
    const compile::CompiledModel tuned = compile::compile_genotype(g, options);

    // The loader's fail-closed gate accepts what the planner produced.
    ASSERT_NO_THROW(rt::check_plan(tuned.graph, tuned.plan)) << g.to_string();
    expect_no_live_overlap(tuned.plan, tuned.graph);
    EXPECT_LE(tuned.plan.arena_bytes, plain.plan.arena_bytes) << g.to_string();
    for (const auto& b : tuned.plan.buffers) aliased_plans += b.alias_of >= 0 ? 1 : 0;
    for (const auto& p : tuned.report.passes) {
      reordered_graphs += p.name == "schedule-reorder" && p.changed ? 1 : 0;
    }

    rt::Executor plain_exec(plain.graph, plain.plan, rt::ExecOptions{1, &plain.packed});
    const Tensor want = plain_exec.run(input);
    rt::Executor serial(tuned.graph, tuned.plan, rt::ExecOptions{1, &tuned.packed});
    expect_bit_identical(serial.run(input), want, g.to_string() + " serial");
    rt::Executor threaded(tuned.graph, tuned.plan, rt::ExecOptions{3, &tuned.packed});
    expect_bit_identical(threaded.run(input), want, g.to_string() + " threads=3");

    rt::BatchedExecutor batched(tuned.graph, tuned.plan_for_batch(3), 3,
                                rt::ExecOptions{3, &tuned.packed});
    const std::vector<Tensor> batch = {input, input, input};
    const std::vector<Tensor> logits = batched.run_batch(std::span<const Tensor>(batch));
    for (std::size_t i = 0; i < logits.size(); ++i) {
      expect_bit_identical(logits[i], want,
                           g.to_string() + " batched slot " + std::to_string(i));
    }
  }
  // The rungs must actually fire across the sample, not just validate.
  EXPECT_GT(aliased_plans, 0);
  std::cout << "[planner-rungs] " << aliased_plans << " aliased placements, "
            << reordered_graphs << "/25 graphs reordered\n";
}

// Tentpole acceptance: a genotype whose unstreamed plan needs arena A
// executes bit-identically under arena_budget = A/2 via row-strip
// streaming. A single-stage conv chain: every big activation dies at
// its consumer, so streaming can overlay each conv's output onto its
// input and the floor is one activation extent instead of two.
TEST(MemoryPlanner, StreamingMeetsHalvedBudgetBitIdentically) {
  const auto g = nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|none~0|nor_conv_3x3~1|+|none~0|none~1|nor_conv_3x3~2|");
  compile::CompilerOptions options;
  options.macro.num_stages = 1;
  options.macro.cells_per_stage = 1;
  options.calibration_batches = 1;
  options.seed = 13;
  const compile::CompiledModel base = compile::compile_genotype(g, options);
  const long long arena = base.plan.arena_bytes;
  ASSERT_GT(arena, 0);
  EXPECT_TRUE(base.plan.strips.empty());

  options.plan.arena_budget = arena / 2;
  const compile::CompiledModel streamed = compile::compile_genotype(g, options);
  EXPECT_LE(streamed.plan.arena_bytes, arena / 2);
  ASSERT_FALSE(streamed.plan.strips.empty());
  EXPECT_GT(streamed.plan.stream_scratch_bytes, 0);
  ASSERT_NO_THROW(rt::check_plan(streamed.graph, streamed.plan));
  expect_no_live_overlap(streamed.plan, streamed.graph);

  const Tensor input = sample_input(902);
  rt::Executor base_exec(base.graph, base.plan, rt::ExecOptions{1, &base.packed});
  const Tensor want = base_exec.run(input);
  rt::Executor stream_serial(streamed.graph, streamed.plan,
                             rt::ExecOptions{1, &streamed.packed});
  expect_bit_identical(stream_serial.run(input), want, "streamed serial");
  rt::Executor stream_threads(streamed.graph, streamed.plan,
                              rt::ExecOptions{3, &streamed.packed});
  expect_bit_identical(stream_threads.run(input), want, "streamed threads=3");

  // Batched streaming: at capacity 2 every buffer doubles but only the
  // equal-size mid-chain convs may stream, so the reachable floor is
  // higher — 1.5x the unstreamed batch-1 arena still forces strips.
  rt::MemoryPlanOptions batched_opts = options.plan;
  batched_opts.arena_budget = arena + arena / 2;
  rt::BatchedExecutor batched(streamed.graph, 2, rt::ExecOptions{1, &streamed.packed},
                              batched_opts);
  const std::vector<Tensor> batch = {input, input};
  const std::vector<Tensor> logits = batched.run_batch(std::span<const Tensor>(batch));
  expect_bit_identical(logits[0], want, "streamed batched slot 0");
  expect_bit_identical(logits[1], want, "streamed batched slot 1");
}

// An impossible budget must throw rather than silently overrun: the
// classifier tail (quantize/fc/dequantize) cannot stream.
TEST(MemoryPlanner, UnreachableBudgetThrows) {
  const ir::Graph g = lowered(nb201::Genotype::from_index(321));
  rt::MemoryPlanOptions options;
  options.arena_budget = 64;
  EXPECT_THROW(rt::plan_memory(g, options), std::runtime_error);
}

// The reorder pass is not vacuous: two independent same-size chains
// hanging off one value plan strictly smaller depth-first (finish one
// chain, free its intermediates, then start the other) than in the
// interleaved order they were built in — and the rewrite must not
// change the numbers.
TEST(MemoryPlanner, ScheduleReorderShrinksIndependentChains) {
  ir::Graph g;
  const int x = g.add_input(ir::TensorType{Shape{1, 4, 16, 16}, ir::DType::kF32});
  ir::ConvAttrs same;  // 3x3 stride-1 pool: keeps the big extent alive
  same.kernel = 3;
  same.stride = 1;
  same.pad = 1;
  ir::ConvAttrs halve;  // 2x2 stride-2 pool: shrinks it 4x
  halve.kernel = 2;
  halve.stride = 2;
  halve.pad = 0;
  const int a1 = g.add_node(ir::OpKind::kAvgPool, {x}, same, "a1");
  const int b1 = g.add_node(ir::OpKind::kAvgPool, {x}, same, "b1");
  const int a2 = g.add_node(ir::OpKind::kAvgPool, {a1}, halve, "a2");
  const int b2 = g.add_node(ir::OpKind::kAvgPool, {b1}, halve, "b2");
  g.set_output(g.add_node(ir::OpKind::kAdd, {a2, b2}));

  rt::MemoryPlanOptions options;
  options.alias_inplace = false;  // isolate the reordering rung
  const long long before = rt::plan_memory(g, options).arena_bytes;

  Tensor input(Shape{1, 4, 16, 16});
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>(i % 23) * 0.25F - 2.0F;
  }
  rt::Executor before_exec(g, rt::ExecOptions{});
  const Tensor want = before_exec.run(input);

  compile::ScheduleReorderPass pass(options);
  ASSERT_TRUE(pass.run(g));
  const rt::MemoryPlan after = rt::plan_memory(g, options);
  EXPECT_LT(after.arena_bytes, before);
  ASSERT_NO_THROW(rt::check_plan(g, after));

  rt::Executor after_exec(g, after, rt::ExecOptions{});
  expect_bit_identical(after_exec.run(input), want, "reordered chains");
}

}  // namespace
}  // namespace micronas
