// Static arena planner: liveness/overlap invariants, reuse quality,
// determinism, and the end-to-end validation of hw/memory_model —
// the planned arena peak must stay at or under the analytic model's
// predicted peak SRAM on sampled NB201 genotypes.
#include <gtest/gtest.h>

#include <iostream>
#include <map>

#include "src/compile/compiler.hpp"
#include "src/hw/quant.hpp"
#include "src/ir/lower.hpp"
#include "src/nb201/space.hpp"
#include "src/rt/memory_planner.hpp"
#include "src/rt/runtime.hpp"

namespace micronas {
namespace {

ir::Graph lowered(const nb201::Genotype& g, int cells = 1, int input = 8) {
  ir::LowerOptions options;
  options.macro.cells_per_stage = cells;
  options.macro.input_size = input;
  return ir::lower_genotype(g, options);
}

TEST(MemoryPlanner, NoOverlapAmongLiveBuffersAndFullCoverage) {
  const ir::Graph g = lowered(nb201::Genotype::from_string(
                                  "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_3x3~1|+"
                                  "|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|"),
                              2, 16);
  const rt::MemoryPlan plan = rt::plan_memory(g);

  // Every executed node and the input have a placement.
  EXPECT_NE(plan.find(g.input()), nullptr);
  for (int id : plan.schedule) {
    ASSERT_NE(plan.find(id), nullptr);
    EXPECT_FALSE(g.node(id).is_const());
  }
  EXPECT_EQ(plan.buffers.size(), plan.schedule.size() + 1);  // + input

  // Brute-force pairwise check mirroring the planner's invariant.
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.buffers.size(); ++j) {
      const auto& a = plan.buffers[i];
      const auto& b = plan.buffers[j];
      const bool live_together =
          a.def_step <= b.last_use_step && b.def_step <= a.last_use_step;
      const bool disjoint = a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
      EXPECT_TRUE(!live_together || disjoint)
          << "buffers %" << a.node_id << " and %" << b.node_id << " overlap while live";
    }
  }

  // Arena bound sanity: covers every placement, beats no-reuse.
  for (const auto& b : plan.buffers) EXPECT_LE(b.offset + b.size, plan.arena_bytes);
  EXPECT_LT(plan.arena_bytes, plan.naive_bytes);
  EXPECT_GT(plan.reuse_factor(), 1.5);
}

TEST(MemoryPlanner, LifetimesMatchConsumerSchedule) {
  const ir::Graph g = lowered(nb201::Genotype::from_index(321));
  const rt::MemoryPlan plan = rt::plan_memory(g);
  std::map<int, int> step_of;
  step_of[g.input()] = 0;
  for (std::size_t s = 0; s < plan.schedule.size(); ++s) {
    step_of[plan.schedule[s]] = static_cast<int>(s) + 1;
  }
  for (const auto& b : plan.buffers) {
    EXPECT_EQ(b.def_step, step_of.at(b.node_id));
    int last = b.def_step;
    for (int id : plan.schedule) {
      for (int in : g.node(id).inputs) {
        if (in == b.node_id) last = std::max(last, step_of.at(id));
      }
    }
    if (b.node_id == g.output()) last = static_cast<int>(plan.schedule.size());
    EXPECT_EQ(b.last_use_step, last) << "node %" << b.node_id;
  }
}

TEST(MemoryPlanner, DeterministicAcrossCalls) {
  const ir::Graph g = lowered(nb201::Genotype::from_index(4545), 2);
  const rt::MemoryPlan a = rt::plan_memory(g);
  const rt::MemoryPlan b = rt::plan_memory(g);
  ASSERT_EQ(a.buffers.size(), b.buffers.size());
  EXPECT_EQ(a.arena_bytes, b.arena_bytes);
  for (std::size_t i = 0; i < a.buffers.size(); ++i) {
    EXPECT_EQ(a.buffers[i].offset, b.buffers[i].offset);
  }
}

TEST(MemoryPlanner, HandlesFullyFoldedConstOutput) {
  // An all-`none` genotype under fold+fuse+dce (no quantization)
  // collapses the entire network into a constant: the cell outputs are
  // zero consts, so the reductions, GAP and classifier all fold. The
  // planner must cope with a graph whose output has no placement.
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.quantize = false;
  const compile::CompiledModel m = compile::compile_genotype(nb201::Genotype(), options);
  EXPECT_TRUE(m.graph.node(m.graph.output()).is_const());
  EXPECT_TRUE(m.plan.schedule.empty());

  // And it still executes: the logits are the folded constant.
  rt::Executor exec(m.graph, m.plan, rt::ExecOptions{1});
  Tensor input(Shape{1, 3, 8, 8});
  const Tensor logits = exec.run(input);
  EXPECT_EQ(logits.shape(), (Shape{1, 10}));
}

// Satellite: the planner's arena (+ its true scratch needs) must fit
// the analytic model's predicted peak SRAM for the same quantized
// deployment model, on every sampled genotype; the compile report logs
// the ratio.
TEST(MemoryPlanner, PlannedArenaWithinModelPredictedPeak) {
  Rng rng(11);
  double worst = 0.0;
  for (const auto& g : nb201::sample_genotypes(rng, 25)) {
    compile::CompilerOptions options;  // full NB201 skeleton, int8
    options.calibration_batches = 1;   // keep the float calibration pass cheap
    const compile::CompiledModel model = compile::compile_genotype(g, options);
    EXPECT_GT(model.report.model_peak_sram_bytes, 0);
    EXPECT_LE(model.report.arena_bytes, model.report.model_peak_sram_bytes)
        << "genotype " << g.to_string();
    worst = std::max(worst, model.report.arena_to_model_ratio);
  }
  std::cout << "[planner-vs-model] worst planned/predicted ratio over 25 genotypes: " << worst
            << "\n";
  EXPECT_LE(worst, 1.0);
}

}  // namespace
}  // namespace micronas
