#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/cli.hpp"
#include "src/common/config.hpp"
#include "src/common/csv.hpp"
#include "src/common/log.hpp"

namespace micronas {
namespace {

TEST(Cli, ParsesSpaceSeparated) {
  const char* argv[] = {"prog", "--alpha", "3", "--name", "hello"};
  CliArgs args(5, argv, {"alpha", "name"});
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_string("name", ""), "hello");
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--rate=0.5"};
  CliArgs args(2, argv, {"rate"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, argv, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv, {"x"});
  EXPECT_EQ(args.get_int("x", 7), 7);
  EXPECT_FALSE(args.has("x"));
}

TEST(Cli, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(CliArgs(3, argv, {"known"}), std::invalid_argument);
}

TEST(Cli, ListFlagSplitsOnCommas) {
  const char* argv[] = {"prog", "--mcus", "m4,,m7,"};
  CliArgs args(3, argv, {"mcus"});
  EXPECT_EQ(args.get_list("mcus", ""), (std::vector<std::string>{"m4", "m7"}));
  EXPECT_EQ(args.get_list("absent", "a,b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(args.get_list("absent", "").empty());
}

TEST(Cli, PositionalCollected) {
  const char* argv[] = {"prog", "pos1", "--k", "v", "pos2"};
  CliArgs args(5, argv, {"k"});
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
}

TEST(Config, RoundTrip) {
  Config cfg;
  cfg.set("name", "micronas");
  cfg.set_int("count", 42);
  cfg.set_double("pi", 3.14159);
  const Config parsed = Config::parse(cfg.to_string());
  EXPECT_EQ(parsed.get("name"), "micronas");
  EXPECT_EQ(parsed.get_int("count"), 42);
  EXPECT_NEAR(parsed.get_double("pi"), 3.14159, 1e-9);
}

TEST(Config, IgnoresCommentsAndBlanks) {
  const Config cfg = Config::parse("# a comment\n\nkey = value\n");
  EXPECT_EQ(cfg.get("key"), "value");
  EXPECT_EQ(cfg.entries().size(), 1U);
}

TEST(Config, MissingKeyThrows) {
  Config cfg;
  EXPECT_THROW(cfg.get("nope"), std::out_of_range);
  EXPECT_EQ(cfg.get_or("nope", "fallback"), "fallback");
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("no_equals_here\n"), std::invalid_argument);
}

TEST(Config, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "micronas_cfg_test.txt";
  Config cfg;
  cfg.set("a", "1");
  cfg.save(path);
  const Config loaded = Config::load(path);
  EXPECT_EQ(loaded.get("a"), "1");
  std::remove(path.c_str());
}

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
}

TEST(Log, LevelIsSticky) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}


TEST(Csv, BasicRoundTripFormat) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"x,y", "he said \"hi\""});
  const std::string out = csv.to_string();
  EXPECT_EQ(out, "a,b\n1,2\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(csv.rows(), 2U);
}

TEST(Csv, WidthChecked) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only"}), std::invalid_argument);
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
}

}  // namespace
}  // namespace micronas
