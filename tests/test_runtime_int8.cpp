// int8 runtime numerics: fixed-point requantization edge cases
// (saturation, rounding ties, the gemmlowp INT32_MIN corner),
// zero-point handling for asymmetric activations, agreement with the
// float reference, and bit-identical execution across thread counts
// and repeated runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "src/compile/compiler.hpp"
#include "src/data/synthetic.hpp"
#include "src/hw/quant.hpp"
#include "src/rt/kernels_int8.hpp"
#include "src/rt/runtime.hpp"

namespace micronas {
namespace {

// ----------------------------------------------------- affine helpers

TEST(AffineQuant, ChoosesParamsCoveringRangeWithExactZero) {
  const AffineParams p = choose_affine_params(-1.0, 3.0);
  EXPECT_NEAR(p.scale, 4.0 / 255.0, 1e-12);
  // Real zero must map exactly onto an integer grid point.
  const double zero_q = -(-1.0) / p.scale + kInt8Min;
  EXPECT_NEAR(static_cast<double>(p.zero_point), zero_q, 0.5 + 1e-9);
  EXPECT_EQ(quantize_one(0.0F, p), static_cast<std::int8_t>(p.zero_point));

  // Ranges not containing zero are widened to include it.
  const AffineParams pos = choose_affine_params(2.0, 6.0);
  EXPECT_NEAR(pos.scale, 6.0 / 255.0, 1e-12);
  EXPECT_EQ(pos.zero_point, kInt8Min);

  // Degenerate range: identity params.
  const AffineParams deg = choose_affine_params(0.0, 0.0);
  EXPECT_EQ(deg.scale, 1.0);
  EXPECT_EQ(deg.zero_point, 0);
}

TEST(AffineQuant, QuantizeSaturatesAndRoundsToNearest) {
  const AffineParams p{0.5, 10};
  EXPECT_EQ(quantize_one(1000.0F, p), static_cast<std::int8_t>(127));   // saturate high
  EXPECT_EQ(quantize_one(-1000.0F, p), static_cast<std::int8_t>(-128)); // saturate low
  EXPECT_EQ(quantize_one(0.24F, p), static_cast<std::int8_t>(10));      // rounds down
  EXPECT_EQ(quantize_one(0.26F, p), static_cast<std::int8_t>(11));      // rounds up
  EXPECT_EQ(dequantize_one(static_cast<std::int8_t>(12), p), 1.0F);
}

TEST(AffineQuant, QuantizeMultiplierRoundTripsPowersOfTwoExactly) {
  std::int32_t mantissa = 0;
  int shift = 0;
  for (const double m : {1.0, 0.5, 0.25, 2.0, 8.0}) {
    quantize_multiplier(m, &mantissa, &shift);
    EXPECT_EQ(mantissa, std::int32_t{1} << 30);  // 0.5 in Q31
    for (const std::int32_t x : {8, -8, 1000, -1000, 123456}) {
      // x·m integral for these x -> both rounding stages are exact.
      EXPECT_EQ(multiply_by_quantized_multiplier(x, mantissa, shift),
                static_cast<std::int32_t>(std::llround(x * m)))
          << "x=" << x << " m=" << m;
    }
  }
  // Known artifacts of the two-stage fixed-point idiom, exactly as in
  // gemmlowp/TFLite: positive double-rounding (1·0.25 -> 0.5 -> 1) and
  // the negative single-LSB tie collapsing to 0 (the SRDHM nudge is
  // asymmetric at the smallest magnitudes).
  quantize_multiplier(0.25, &mantissa, &shift);
  EXPECT_EQ(multiply_by_quantized_multiplier(1, mantissa, shift), 1);
  EXPECT_EQ(multiply_by_quantized_multiplier(-1, mantissa, shift), 0);
  EXPECT_THROW(quantize_multiplier(0.0, &mantissa, &shift), std::invalid_argument);
  EXPECT_THROW(quantize_multiplier(-1.0, &mantissa, &shift), std::invalid_argument);
}

TEST(AffineQuant, SaturatingRoundingDoublingHighMulEdges) {
  constexpr std::int32_t kMin = std::numeric_limits<std::int32_t>::min();
  constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();
  // The single overflow case of the gemmlowp idiom saturates.
  EXPECT_EQ(saturating_rounding_doubling_high_mul(kMin, kMin), kMax);
  // Identity against 0.5 in Q31 doubles back to x (exact for even x).
  const std::int32_t half = std::int32_t{1} << 30;
  EXPECT_EQ(saturating_rounding_doubling_high_mul(1 << 8, half), 1 << 7);
  EXPECT_EQ(saturating_rounding_doubling_high_mul(-(1 << 8), half), -(1 << 7));
  EXPECT_EQ(saturating_rounding_doubling_high_mul(0, kMax), 0);
}

TEST(AffineQuant, RoundingDivideByPotTiesAwayFromZero) {
  EXPECT_EQ(rounding_divide_by_pot(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(rounding_divide_by_pot(-5, 1), -3);  // −2.5 -> −3 (away from zero)
  EXPECT_EQ(rounding_divide_by_pot(4, 1), 2);
  EXPECT_EQ(rounding_divide_by_pot(-4, 1), -2);
  EXPECT_EQ(rounding_divide_by_pot(7, 2), 2);    // 1.75 -> 2
  EXPECT_EQ(rounding_divide_by_pot(-7, 2), -2);
  EXPECT_EQ(rounding_divide_by_pot(123, 0), 123);
  EXPECT_THROW(rounding_divide_by_pot(1, -1), std::invalid_argument);
}

// ------------------------------------------------------ kernel numerics

TEST(Int8Kernels, QReluClampsAtZeroPoint) {
  const std::int8_t in[5] = {-128, -5, 0, 5, 127};
  std::int8_t out[5];
  rt::qrelu(in, out, 5, /*zp=*/-3);
  EXPECT_EQ(out[0], -3);
  EXPECT_EQ(out[1], -3);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[3], 5);
  EXPECT_EQ(out[4], 127);
}

TEST(Int8Kernels, QAddMatchesRealArithmeticWithAsymmetricZeroPoints) {
  // a: scale 0.1 zp 3; b: scale 0.05 zp -7; out: scale 0.2 zp 5.
  const AffineParams a_p{0.1, 3}, b_p{0.05, -7}, out_p{0.2, 5};
  std::int32_t ma, mb;
  int sa, sb;
  quantize_multiplier(a_p.scale / out_p.scale, &ma, &sa);
  quantize_multiplier(b_p.scale / out_p.scale, &mb, &sb);
  std::int8_t a[4], b[4], out[4];
  const float av[4] = {1.0F, -0.4F, 5.0F, 0.0F};
  const float bv[4] = {-0.3F, 0.45F, 2.0F, 0.0F};
  for (int i = 0; i < 4; ++i) {
    a[i] = quantize_one(av[i], a_p);
    b[i] = quantize_one(bv[i], b_p);
  }
  rt::qadd(a, b, out, 4, a_p.zero_point, ma, sa, b_p.zero_point, mb, sb, out_p.zero_point);
  for (int i = 0; i < 4; ++i) {
    const float real = dequantize_one(out[i], out_p);
    EXPECT_NEAR(real, av[i] + bv[i], 2.5 * out_p.scale) << "i=" << i;
  }
  // Exact zero stays exact: zp_a/zp_b inputs must produce zp_out.
  a[0] = static_cast<std::int8_t>(a_p.zero_point);
  b[0] = static_cast<std::int8_t>(b_p.zero_point);
  rt::qadd(a, b, out, 1, a_p.zero_point, ma, sa, b_p.zero_point, mb, sb, out_p.zero_point);
  EXPECT_EQ(out[0], static_cast<std::int8_t>(out_p.zero_point));
}

TEST(Int8Kernels, QConvHandlesAsymmetricInputZeroPointAtBorders) {
  // 1 channel, 3x3 kernel of ones over a constant input: interior
  // sums see 9 pixels, corners 4 — padding must contribute *real
  // zero*, i.e. q == zp, not integer 0. A wrong pad value shows up
  // exactly at the border pixels.
  const AffineParams in_p{0.1, -28}, out_p{0.05, -100};
  const int h = 4, w = 4;
  std::int8_t input[h * w];
  const float real_in = 0.7F;
  for (auto& v : input) v = quantize_one(real_in, in_p);  // q = -21
  std::int8_t weight[9];
  for (auto& v : weight) v = 25;  // w_scale 0.02 -> real 0.5
  const double w_scale = 0.02;
  std::int32_t wsum = 9 * 25;
  std::int32_t mantissa;
  int shift;
  quantize_multiplier(in_p.scale * w_scale / out_p.scale, &mantissa, &shift);
  std::vector<std::int32_t> mant(1, mantissa);
  std::vector<int> sh(1, shift);

  rt::QConv2dArgs args;
  args.cin = 1;
  args.h = h;
  args.w = w;
  args.cout = 1;
  args.kernel = 3;
  args.stride = 1;
  args.pad = 1;
  args.out_h = h;
  args.out_w = w;
  args.in_zp = in_p.zero_point;
  args.out_zp = out_p.zero_point;
  args.input = input;
  args.weight = weight;
  args.weight_sum = &wsum;
  args.mantissa = mant.data();
  args.shift = sh.data();
  std::vector<std::int8_t> columns(static_cast<std::size_t>(h * w * 9));
  args.columns = columns.data();
  std::int8_t output[h * w];
  args.output = output;
  rt::qconv2d(args, nullptr);

  const float interior = 9 * real_in * 0.5F;   // 3.15
  const float corner = 4 * real_in * 0.5F;     // 1.4
  EXPECT_NEAR(dequantize_one(output[1 * w + 1], out_p), interior, 2.0F * out_p.scale);
  EXPECT_NEAR(dequantize_one(output[0], out_p), corner, 2.0F * out_p.scale);
}

// --------------------------------------------- end-to-end determinism

compile::CompiledModel small_compiled(std::uint64_t seed = 1) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 12;
  options.seed = seed;
  return compile::compile_genotype(
      nb201::Genotype::from_string("|nor_conv_3x3~0|+|none~0|skip_connect~1|+"
                                   "|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|"),
      options);
}

Tensor probe(int size) {
  DatasetSpec spec;
  spec.height = spec.width = size;
  Rng rng(5);
  SyntheticDataset data(spec, rng);
  return data.sample_batch(1, rng).images;
}

TEST(Int8Runtime, BitIdenticalAcrossRunsThreadsAndPlanModes) {
  const compile::CompiledModel model = small_compiled();
  const Tensor input = probe(12);

  rt::Executor planned1(model.graph, model.plan, rt::ExecOptions{1});
  const Tensor reference = planned1.run(input);
  ASSERT_EQ(reference.numel(), 10U);

  for (const int threads : {1, 2, 5, 0}) {
    rt::Executor exec(model.graph, model.plan, rt::ExecOptions{threads});
    for (int run = 0; run < 3; ++run) {
      const Tensor y = exec.run(input);
      for (std::size_t i = 0; i < y.numel(); ++i) {
        ASSERT_EQ(y[i], reference[i]) << "threads=" << threads << " run=" << run;
      }
    }
  }
  // Planned (arena) and unplanned (per-value buffers) execution agree
  // bit for bit — the plan is layout, not semantics.
  rt::Executor unplanned(model.graph, rt::ExecOptions{3});
  const Tensor y = unplanned.run(input);
  for (std::size_t i = 0; i < y.numel(); ++i) ASSERT_EQ(y[i], reference[i]);
}

TEST(Int8Runtime, ExecutorRejectsNonF32Endpoints) {
  // The runtime's entry/exit contract is f32 in, f32 out; graphs with
  // integer endpoints must be rejected at construction, not overflow
  // buffers at run time.
  ir::Graph i8_in;
  const int x = i8_in.add_input({Shape{1, 1, 2, 2}, ir::DType::kI8});
  i8_in.set_output(i8_in.add_node(ir::OpKind::kDequantize, {x}));
  EXPECT_THROW(rt::Executor(i8_in, rt::ExecOptions{1}), std::invalid_argument);

  ir::Graph i8_out;
  const int y = i8_out.add_input({Shape{1, 1, 2, 2}, ir::DType::kF32});
  i8_out.set_output(i8_out.add_node(ir::OpKind::kQuantize, {y}));
  EXPECT_THROW(rt::Executor(i8_out, rt::ExecOptions{1}), std::invalid_argument);
}

TEST(Int8Runtime, TracksFloatReferenceLogits) {
  const compile::CompiledModel model = small_compiled();
  compile::CompilerOptions naive;
  naive.macro.cells_per_stage = 1;
  naive.macro.input_size = 12;
  naive.fold = naive.fuse = naive.quantize = false;
  const compile::CompiledModel float_model = compile::compile_genotype(
      nb201::Genotype::from_string("|nor_conv_3x3~0|+|none~0|skip_connect~1|+"
                                   "|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|"),
      naive);

  const Tensor input = probe(12);
  rt::Executor qexec(model.graph, model.plan, rt::ExecOptions{1});
  rt::Executor fexec(float_model.graph, rt::ExecOptions{1});
  const Tensor qy = qexec.run(input);
  const Tensor fy = fexec.run(input);

  // Quantization error is bounded relative to the logit spread; top-1
  // must agree (that is what deployment accuracy depends on).
  float spread = 0.0F;
  for (std::size_t i = 0; i < fy.numel(); ++i) spread = std::max(spread, std::abs(fy[i]));
  std::size_t q_top = 0, f_top = 0;
  for (std::size_t i = 1; i < fy.numel(); ++i) {
    if (qy[i] > qy[q_top]) q_top = i;
    if (fy[i] > fy[f_top]) f_top = i;
  }
  EXPECT_EQ(q_top, f_top);
  for (std::size_t i = 0; i < fy.numel(); ++i) {
    EXPECT_NEAR(qy[i], fy[i], 0.1F * spread + 1.0F) << "logit " << i;
  }
}

}  // namespace
}  // namespace micronas
