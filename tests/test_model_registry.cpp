// ModelRegistry + MappedPackage: the zero-copy contract, proven on
// pointers.
//
//   * a mapped package's int8 weights point INTO the mapping
//     (package->contains() on the actual node data pointers), not at
//     copies;
//   * two registry loads of the same .mnpkg share ONE mapping and ONE
//     immutable CompiledModel (pointer identity, registry_hits metric);
//   * registry-served logits are bit-identical to a serial Executor
//     over a copy-loaded model;
//   * eviction drops the table entry while outstanding model handles
//     keep the mapping alive (run-after-evict still works);
//   * concurrent load/get/evict is data-race-free (this test runs
//     under the TSan CI lane).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/data/synthetic.hpp"
#include "src/obs/metrics.hpp"
#include "src/rt/runtime.hpp"
#include "src/serialize/serialize.hpp"
#include "src/serve/model_registry.hpp"

namespace micronas {
namespace {

compile::CompiledModel compile_small(const std::string& arch, std::uint64_t seed) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.seed = seed;
  return compile::compile_genotype(nb201::Genotype::from_string(arch), options);
}

constexpr const char* kArchA =
    "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_1x1~1|+|avg_pool_3x3~0|none~1|nor_conv_3x3~2|";
constexpr const char* kArchB =
    "|avg_pool_3x3~0|+|nor_conv_1x1~0|skip_connect~1|+|nor_conv_3x3~0|skip_connect~1|"
    "nor_conv_1x1~2|";

/// Save a freshly compiled model under a unique temp path.
std::string save_package(const std::string& arch, std::uint64_t seed, const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  serialize::save_model(compile_small(arch, seed), path);
  return path;
}

Tensor sample_input(std::uint64_t seed) {
  DatasetSpec spec;
  spec.height = spec.width = 8;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  return data.sample_batch(1, rng).images;
}

TEST(MappedPackage, WeightsPointIntoTheMapping) {
  const std::string path = save_package(kArchA, 3, "registry_zero_copy.mnpkg");
  const std::shared_ptr<const serialize::MappedPackage> pkg = serialize::MappedPackage::map(path);
  std::remove(path.c_str());

  // Every int8 constant's storage must live inside the mapped file —
  // borrowed views, not copies. (f32/i32 attrs stay owned: they are
  // tiny and endian-sensitive.)
  std::size_t borrowed_nodes = 0;
  const ir::Graph& graph = pkg->model().graph;
  for (int id = 0; id < graph.size(); ++id) {
    const ir::Node& node = graph.node(id);
    if (node.i8_data.empty()) continue;
    EXPECT_TRUE(node.i8_data.is_borrowed()) << "node " << id << " copied its weights";
    EXPECT_TRUE(pkg->contains(node.i8_data.data()))
        << "node " << id << " weights outside the mapping";
    EXPECT_TRUE(pkg->contains(node.i8_data.data() + node.i8_data.size() - 1))
        << "node " << id << " weights overrun the mapping";
    ++borrowed_nodes;
  }
  EXPECT_GT(borrowed_nodes, 0u);
  EXPECT_GT(pkg->zero_copy_bytes(), 0u);

  // Pre-packed GEMM panels ride the mapping too (little-endian hosts).
  for (const rt::PackedWeights& packed : pkg->model().packed.by_node) {
    if (packed.data.empty()) continue;
    if (packed.data.is_borrowed()) {
      EXPECT_TRUE(pkg->contains(packed.data.data())) << "packed panels outside the mapping";
    }
  }
}

TEST(ModelRegistry, TwoLoadsShareOneMappingAndOneModel) {
  const std::string path = save_package(kArchA, 3, "registry_dedup.mnpkg");
  obs::Counter& hits = obs::MetricsRegistry::instance().counter("serve.registry_hits");
  obs::Counter& loads = obs::MetricsRegistry::instance().counter("serve.models_loaded");
  const double hits0 = hits.value();
  const double loads0 = loads.value();

  serve::ModelRegistry registry;
  const serve::ModelRegistry::Entry a = registry.load(path);
  const serve::ModelRegistry::Entry b = registry.load(path);
  std::remove(path.c_str());

  // One mapping, one model, however often the file is loaded.
  EXPECT_EQ(a.package.get(), b.package.get());
  EXPECT_EQ(a.model.get(), b.model.get());
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(loads.value() - loads0, 1.0);
  EXPECT_EQ(hits.value() - hits0, 1.0);

  // The second handle's weights point into the FIRST load's mapping.
  const ir::Graph& graph = b.model->graph;
  for (int id = 0; id < graph.size(); ++id) {
    const ir::Node& node = graph.node(id);
    if (node.i8_data.empty()) continue;
    EXPECT_TRUE(a.package->contains(node.i8_data.data()));
  }
}

TEST(ModelRegistry, DistinctPackagesGetDistinctKeys) {
  const std::string path_a = save_package(kArchA, 3, "registry_key_a.mnpkg");
  const std::string path_b = save_package(kArchB, 4, "registry_key_b.mnpkg");
  serve::ModelRegistry registry;
  const std::string key_a = registry.load(path_a).key;
  const std::string key_b = registry.load(path_b).key;
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  EXPECT_NE(key_a, key_b);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.contains(key_a));
  EXPECT_TRUE(registry.contains(key_b));
  // The key is content-addressed: arch string + content hash.
  EXPECT_NE(key_a.find(kArchA), std::string::npos);
  EXPECT_NE(key_a.find('@'), std::string::npos);
}

TEST(ModelRegistry, RegistryModelRunsBitIdenticalToCopiedLoad) {
  const std::string path = save_package(kArchA, 3, "registry_bits.mnpkg");
  const compile::CompiledModel copied = serialize::load_model(path);

  serve::ModelRegistry registry;
  const serve::ModelRegistry::Entry entry = registry.load(path);
  std::remove(path.c_str());

  rt::Executor mapped_exec(entry.model->graph, entry.model->plan,
                           rt::ExecOptions{1, &entry.model->packed});
  rt::Executor copied_exec(copied.graph, copied.plan, rt::ExecOptions{1, &copied.packed});
  for (int i = 0; i < 4; ++i) {
    const Tensor input = sample_input(100 + static_cast<std::uint64_t>(i));
    const Tensor a = mapped_exec.run(input);
    const Tensor b = copied_exec.run(input);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::size_t k = 0; k < a.numel(); ++k) {
      ASSERT_EQ(a[k], b[k]) << "input " << i << " logit " << k;
    }
  }
}

TEST(ModelRegistry, EvictionDropsEntryButHandlesKeepTheMappingAlive) {
  const std::string path = save_package(kArchA, 3, "registry_evict.mnpkg");
  serve::ModelRegistry registry;
  const serve::ModelRegistry::Entry entry = registry.load(path);
  std::remove(path.c_str());

  ASSERT_TRUE(registry.contains(entry.key));
  EXPECT_TRUE(registry.evict(entry.key));
  EXPECT_FALSE(registry.contains(entry.key));
  EXPECT_FALSE(registry.evict(entry.key)) << "double evict must report absent";
  EXPECT_THROW(registry.get(entry.key), serve::UnknownModelError);
  EXPECT_EQ(registry.size(), 0u);

  // The outstanding handle still pins the mapping: running the model
  // after eviction reads the mapped weights safely.
  rt::Executor exec(entry.model->graph, entry.model->plan,
                    rt::ExecOptions{1, &entry.model->packed});
  EXPECT_GT(exec.run(sample_input(7)).numel(), 0u);
}

TEST(ModelRegistry, ConcurrentLoadGetEvictIsRaceFree) {
  const std::string path_a = save_package(kArchA, 3, "registry_race_a.mnpkg");
  const std::string path_b = save_package(kArchB, 4, "registry_race_b.mnpkg");
  serve::ModelRegistry registry;
  const std::string key_a = registry.load(path_a).key;
  const std::string key_b = registry.load(path_b).key;

  // Loaders re-load both files, readers hammer get()/contains()/keys(),
  // one evictor keeps deleting + re-loading package B. Every model
  // handle that comes back must stay runnable regardless of eviction
  // timing — the registry's shared_ptr graph is the only lifetime
  // authority.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const serve::ModelRegistry::Entry a = registry.load(path_a);
        const serve::ModelRegistry::Entry b = registry.load(path_b);
        if (a.model->graph.size() <= 0 || b.model->graph.size() <= 0) ++failures;
      }
    });
  }
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!registry.contains(key_a)) continue;
      try {
        const serve::ModelRegistry::Entry e = registry.get(key_a);
        if (e.key != key_a) ++failures;
      } catch (const serve::UnknownModelError&) {
        // a concurrent evictor won the race: acceptable, not a failure
      }
      (void)registry.keys();
      (void)registry.size();
    }
  });
  workers.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      registry.evict(key_b);
      const serve::ModelRegistry::Entry e = registry.load(path_b);
      rt::Executor exec(e.model->graph, e.model->plan, rt::ExecOptions{1, &e.model->packed});
      if (exec.run(sample_input(7)).numel() == 0) ++failures;
    }
    stop.store(true, std::memory_order_relaxed);
  });
  for (std::thread& w : workers) w.join();
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(registry.contains(key_b));
}

}  // namespace
}  // namespace micronas
