// Finite-difference validation of every backward pass. The NTK proxy
// is a function of exact parameter gradients, so these checks are the
// foundation the whole reproduction rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/common/rng.hpp"
#include "src/tensor/ops.hpp"

namespace micronas {
namespace {

constexpr double kEps = 1e-3;
constexpr double kTol = 2e-2;  // relative; fp32 centered differences

/// Central finite difference of scalar_fn w.r.t. x[i].
double fd_grad(Tensor& x, std::size_t i, const std::function<double()>& scalar_fn) {
  const float orig = x[i];
  x[i] = orig + static_cast<float>(kEps);
  const double up = scalar_fn();
  x[i] = orig - static_cast<float>(kEps);
  const double down = scalar_fn();
  x[i] = orig;
  return (up - down) / (2.0 * kEps);
}

void expect_close(double analytic, double numeric, const std::string& what) {
  const double scale = std::max({std::abs(analytic), std::abs(numeric), 1e-3});
  EXPECT_NEAR(analytic, numeric, kTol * scale) << what;
}

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  rng.fill_normal(t.data(), 0.0F, 1.0F);
  return t;
}

TEST(Conv2dGrad, MatchesFiniteDifference3x3) {
  Rng rng(11);
  Tensor x = random_tensor(Shape{2, 3, 5, 5}, rng);
  Tensor w = random_tensor(Shape{4, 3, 3, 3}, rng);

  auto loss = [&]() {
    const Tensor y = ops::conv2d_forward(x, w, nullptr, 1, 1);
    return static_cast<double>(y.sum());
  };

  const Tensor y = ops::conv2d_forward(x, w, nullptr, 1, 1);
  Tensor gy(y.shape(), 1.0F);
  const auto g = ops::conv2d_backward(x, w, false, 1, 1, gy);

  for (std::size_t i : {std::size_t{0}, std::size_t{7}, x.numel() - 1}) {
    expect_close(g.grad_input[i], fd_grad(x, i, loss), "dx[" + std::to_string(i) + "]");
  }
  for (std::size_t i : {std::size_t{0}, std::size_t{13}, w.numel() - 1}) {
    expect_close(g.grad_weight[i], fd_grad(w, i, loss), "dw[" + std::to_string(i) + "]");
  }
}

TEST(Conv2dGrad, MatchesFiniteDifference1x1) {
  Rng rng(12);
  Tensor x = random_tensor(Shape{1, 4, 3, 3}, rng);
  Tensor w = random_tensor(Shape{2, 4, 1, 1}, rng);

  auto loss = [&]() {
    const Tensor y = ops::conv2d_forward(x, w, nullptr, 1, 0);
    double s = 0.0;  // weighted sum exercises non-uniform grad_output
    for (std::size_t i = 0; i < y.numel(); ++i) s += (static_cast<double>(i % 3) - 1.0) * y[i];
    return s;
  };

  const Tensor y0 = ops::conv2d_forward(x, w, nullptr, 1, 0);
  Tensor gy(y0.shape());
  for (std::size_t i = 0; i < gy.numel(); ++i) gy[i] = static_cast<float>(i % 3) - 1.0F;
  const auto g = ops::conv2d_backward(x, w, false, 1, 0, gy);

  for (std::size_t i = 0; i < x.numel(); i += 7) {
    expect_close(g.grad_input[i], fd_grad(x, i, loss), "dx");
  }
  for (std::size_t i = 0; i < w.numel(); ++i) {
    expect_close(g.grad_weight[i], fd_grad(w, i, loss), "dw");
  }
}

TEST(Conv2dGrad, StridedWithBias) {
  Rng rng(13);
  Tensor x = random_tensor(Shape{1, 2, 6, 6}, rng);
  Tensor w = random_tensor(Shape{3, 2, 3, 3}, rng);
  Tensor b = random_tensor(Shape{3}, rng);

  auto loss = [&]() {
    const Tensor y = ops::conv2d_forward(x, w, &b, 2, 1);
    return static_cast<double>(y.sum());
  };

  const Tensor y = ops::conv2d_forward(x, w, &b, 2, 1);
  EXPECT_EQ(y.shape()[2], 3);  // (6+2-3)/2+1
  Tensor gy(y.shape(), 1.0F);
  const auto g = ops::conv2d_backward(x, w, true, 2, 1, gy);

  for (std::size_t i = 0; i < b.numel(); ++i) {
    expect_close(g.grad_bias[i], fd_grad(b, i, loss), "db");
  }
  for (std::size_t i = 0; i < x.numel(); i += 11) {
    expect_close(g.grad_input[i], fd_grad(x, i, loss), "dx strided");
  }
}

TEST(ReluGrad, MaskSemantics) {
  Tensor x = Tensor::from_vector(Shape{4}, {-1.0F, 0.0F, 0.5F, 2.0F});
  Tensor mask;
  const Tensor y = ops::relu_forward(x, &mask);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 0.0F);
  EXPECT_EQ(y[2], 0.5F);
  EXPECT_EQ(mask[0], 0.0F);
  EXPECT_EQ(mask[2], 1.0F);

  Tensor gy = Tensor::from_vector(Shape{4}, {1, 1, 1, 1});
  const Tensor gx = ops::relu_backward(mask, gy);
  EXPECT_EQ(gx[0], 0.0F);
  EXPECT_EQ(gx[3], 1.0F);
}

TEST(AvgPoolGrad, MatchesFiniteDifference) {
  Rng rng(14);
  Tensor x = random_tensor(Shape{1, 2, 5, 5}, rng);

  auto loss = [&]() {
    const Tensor y = ops::avg_pool_forward(x, 3, 1, 1);
    return static_cast<double>(y.sum());
  };

  const Tensor y = ops::avg_pool_forward(x, 3, 1, 1);
  EXPECT_EQ(y.shape(), x.shape());  // stride-1 pad-1 preserves size
  Tensor gy(y.shape(), 1.0F);
  const Tensor gx = ops::avg_pool_backward(x.shape(), 3, 1, 1, gy);
  for (std::size_t i = 0; i < x.numel(); i += 3) {
    expect_close(gx[i], fd_grad(x, i, loss), "avgpool dx");
  }
}

TEST(GlobalAvgPoolGrad, UniformSpread) {
  Rng rng(15);
  Tensor x = random_tensor(Shape{2, 3, 4, 4}, rng);
  const Tensor y = ops::global_avg_pool_forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 3}));

  Tensor gy(Shape{2, 3});
  gy.at(1, 2) = 16.0F;
  const Tensor gx = ops::global_avg_pool_backward(x.shape(), gy);
  EXPECT_FLOAT_EQ(gx.at(1, 2, 0, 0), 1.0F);  // 16 / (4*4)
  EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 0), 0.0F);
}

TEST(LinearGrad, MatchesFiniteDifference) {
  Rng rng(16);
  Tensor x = random_tensor(Shape{3, 4}, rng);
  Tensor w = random_tensor(Shape{2, 4}, rng);
  Tensor b = random_tensor(Shape{2}, rng);

  auto loss = [&]() {
    const Tensor y = ops::linear_forward(x, w, &b);
    return static_cast<double>(y.sum());
  };

  const Tensor y = ops::linear_forward(x, w, &b);
  Tensor gy(y.shape(), 1.0F);
  const auto g = ops::linear_backward(x, w, true, gy);

  for (std::size_t i = 0; i < x.numel(); ++i) expect_close(g.grad_input[i], fd_grad(x, i, loss), "dx");
  for (std::size_t i = 0; i < w.numel(); ++i) expect_close(g.grad_weight[i], fd_grad(w, i, loss), "dw");
  for (std::size_t i = 0; i < b.numel(); ++i) expect_close(g.grad_bias[i], fd_grad(b, i, loss), "db");
}

TEST(ConvOutSize, FloorSemantics) {
  EXPECT_EQ(ops::conv_out_size(32, 3, 1, 1), 32);
  EXPECT_EQ(ops::conv_out_size(32, 3, 2, 1), 16);
  EXPECT_EQ(ops::conv_out_size(5, 3, 2, 1), 3);
  EXPECT_EQ(ops::conv_out_size(1, 1, 1, 0), 1);
  EXPECT_THROW(ops::conv_out_size(2, 5, 1, 0), std::invalid_argument);
}

TEST(Conv2d, ShapeValidation) {
  Tensor x(Shape{1, 3, 4, 4});
  Tensor w_bad(Shape{2, 4, 3, 3});  // cin mismatch
  EXPECT_THROW(ops::conv2d_forward(x, w_bad, nullptr, 1, 1), std::invalid_argument);
}

TEST(Conv2d, KnownValue) {
  // 1x1 input, 1x1 kernel: convolution degenerates to multiplication.
  Tensor x = Tensor::from_vector(Shape{1, 1, 1, 1}, {3.0F});
  Tensor w = Tensor::from_vector(Shape{1, 1, 1, 1}, {4.0F});
  const Tensor y = ops::conv2d_forward(x, w, nullptr, 1, 0);
  EXPECT_FLOAT_EQ(y[0], 12.0F);
}

TEST(AvgPool, CountIncludePadSemantics) {
  // All ones: interior outputs 1.0, corner sees 4 valid cells / 9.
  Tensor x(Shape{1, 1, 3, 3}, 1.0F);
  const Tensor y = ops::avg_pool_forward(x, 3, 1, 1);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 1.0F);
  EXPECT_NEAR(y.at(0, 0, 0, 0), 4.0F / 9.0F, 1e-6);
}


TEST(Conv2dGemm, MatchesReferenceImplementation) {
  Rng rng(21);
  for (const auto& [cin, cout, hw, k, stride, pad] :
       std::vector<std::array<int, 6>>{{3, 8, 8, 3, 1, 1},
                                       {4, 4, 7, 1, 1, 0},
                                       {2, 6, 9, 3, 2, 1},
                                       {5, 3, 6, 3, 1, 0}}) {
    Tensor x = random_tensor(Shape{2, cin, hw, hw}, rng);
    Tensor w = random_tensor(Shape{cout, cin, k, k}, rng);
    Tensor b = random_tensor(Shape{cout}, rng);
    const Tensor ref = ops::conv2d_forward(x, w, &b, stride, pad);
    const Tensor gemm = ops::conv2d_forward_gemm(x, w, &b, stride, pad);
    ASSERT_EQ(ref.shape(), gemm.shape());
    for (std::size_t i = 0; i < ref.numel(); ++i) {
      ASSERT_NEAR(ref[i], gemm[i], 1e-4 * std::max(1.0F, std::abs(ref[i]))) << "cfg " << cin;
    }
  }
}

TEST(Conv2dGemm, Im2colLowering) {
  // 1x2x2 input, 2x2 kernel, no pad: a single column holding the patch.
  Tensor x = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  std::vector<float> cols;
  ops::im2col(x, 0, 2, 1, 0, cols, 1, 1);
  ASSERT_EQ(cols.size(), 4U);
  EXPECT_EQ(cols[0], 1.0F);
  EXPECT_EQ(cols[1], 2.0F);
  EXPECT_EQ(cols[2], 3.0F);
  EXPECT_EQ(cols[3], 4.0F);
}

TEST(Conv2dGemm, PaddingZeroFilled) {
  Tensor x = Tensor::from_vector(Shape{1, 1, 1, 1}, {5.0F});
  std::vector<float> cols;
  // 3x3 kernel, pad 1: out 1x1; only the center tap sees the pixel.
  ops::im2col(x, 0, 3, 1, 1, cols, 1, 1);
  ASSERT_EQ(cols.size(), 9U);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(cols[i], i == 4 ? 5.0F : 0.0F);
  }
}

}  // namespace
}  // namespace micronas
