// NSGA-II backend: archive validity, constraint handling, trajectory
// accounting, and bit-identical results across thread counts and
// cache states.
#include <gtest/gtest.h>

#include "src/search/nsga2_search.hpp"

namespace micronas {
namespace {

Nsga2Result run(const Nsga2Config& config, const EvalEngineConfig& ecfg,
                std::uint64_t rng_seed = 11) {
  const ProxyEvalEngine engine(MacroNetConfig{}, /*estimator=*/nullptr, ecfg);
  const nb201::SurrogateOracle oracle;
  Rng rng(rng_seed);
  return nsga2_search(engine, /*proxy_engine=*/nullptr, &oracle, config, rng);
}

Nsga2Config small_config() {
  Nsga2Config cfg;
  cfg.population_size = 16;
  cfg.generations = 6;
  return cfg;
}

TEST(Nsga2Search, ArchiveIsMutuallyNonDominatedAndNonTrivial) {
  const Nsga2Result res = run(small_config(), EvalEngineConfig{});
  ASSERT_GE(res.archive.size(), 5U);  // a real trade-off surface, not a point
  const auto snap = res.archive.snapshot();
  for (std::size_t i = 0; i < snap.size(); ++i) {
    for (std::size_t j = 0; j < snap.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(pareto_dominates(snap[i].objectives, snap[j].objectives))
          << "archive entries " << i << " and " << j << " are not mutually non-dominated";
    }
  }
  // No estimator: the cost objective falls back to FLOPs.
  EXPECT_EQ(res.archive.objective_names()[1], "flops_m");
  // Payload accuracy matches the negated first objective.
  for (const ParetoEntry& e : snap) EXPECT_DOUBLE_EQ(e.objectives[0], -e.accuracy);
}

TEST(Nsga2Search, HistoryAccountsEveryGeneration) {
  Nsga2Config cfg = small_config();
  cfg.track_hypervolume = true;
  const Nsga2Result res = run(cfg, EvalEngineConfig{});
  ASSERT_EQ(res.history.size(), static_cast<std::size_t>(cfg.generations) + 1);
  EXPECT_EQ(res.evaluations, static_cast<long long>(cfg.population_size) * (cfg.generations + 1));
  ASSERT_EQ(res.hv_reference.size(), res.archive.num_objectives());
  for (std::size_t g = 1; g < res.history.size(); ++g) {
    EXPECT_EQ(res.history[g].generation, static_cast<int>(g));
    // The archive only ever improves, so hypervolume is monotone.
    EXPECT_GE(res.history[g].hypervolume, res.history[g - 1].hypervolume);
    EXPECT_GT(res.history[g].evaluations, res.history[g - 1].evaluations);
  }
  EXPECT_GT(res.history.back().hypervolume, 0.0);
}

TEST(Nsga2Search, ConstraintsKeepArchiveFeasible) {
  Nsga2Config cfg = small_config();
  // Binding but satisfiable bounds: the space spans FLOPs ∈ [7.8, 158]
  // M and peak SRAM ∈ [152, 344] KB on the default skeleton.
  cfg.constraints.max_flops_m = 60.0;
  cfg.constraints.max_sram_kb = 250.0;
  const Nsga2Result res = run(cfg, EvalEngineConfig{});
  ASSERT_GE(res.archive.size(), 1U);
  for (const ParetoEntry& e : res.archive.snapshot()) {
    EXPECT_LE(e.indicators.flops_m, 60.0);
    EXPECT_LE(e.indicators.peak_sram_kb, 250.0);
  }
}

TEST(Nsga2Search, BitIdenticalAcrossThreadsAndCache) {
  const Nsga2Result base = run(small_config(), EvalEngineConfig{});  // serial + cached
  for (const int threads : {1, 4}) {
    for (const bool cache : {true, false}) {
      EvalEngineConfig ecfg;
      ecfg.threads = threads;
      ecfg.cache = cache;
      const Nsga2Result other = run(small_config(), ecfg);
      EXPECT_EQ(other.evaluations, base.evaluations);
      // CSV carries genotypes, objectives and payload at full
      // precision: string equality is bit equality.
      EXPECT_EQ(other.archive.to_csv(), base.archive.to_csv())
          << "threads=" << threads << " cache=" << cache;
    }
  }
}

TEST(Nsga2Search, RejectsInvalidSetups) {
  const ProxyEvalEngine engine(MacroNetConfig{}, nullptr, EvalEngineConfig{});
  Rng rng(1);
  // No quality source at all.
  EXPECT_THROW(nsga2_search(engine, nullptr, nullptr, Nsga2Config{}, rng), std::invalid_argument);
  // Analytic engine cannot serve as the proxy-quality engine.
  const nb201::SurrogateOracle oracle;
  EXPECT_THROW(nsga2_search(engine, &engine, &oracle, Nsga2Config{}, rng), std::invalid_argument);
  // Latency constraint without an estimator.
  Nsga2Config constrained;
  constrained.constraints.max_latency_ms = 100.0;
  EXPECT_THROW(nsga2_search(engine, nullptr, &oracle, constrained, rng), std::invalid_argument);
  // Degenerate population.
  Nsga2Config tiny;
  tiny.population_size = 1;
  EXPECT_THROW(nsga2_search(engine, nullptr, &oracle, tiny, rng), std::invalid_argument);
}

}  // namespace
}  // namespace micronas
