// Parameterized property sweeps across the search space and input
// regimes: invariants that must hold for *every* architecture or
// configuration, not just hand-picked cases.
#include <gtest/gtest.h>

#include <memory>

#include "src/hw/latency_estimator.hpp"
#include "src/hw/memory_model.hpp"
#include "src/mcusim/profiler.hpp"
#include "src/nb201/features.hpp"
#include "src/nb201/surrogate.hpp"
#include "src/proxies/flops.hpp"
#include "src/proxies/ntk.hpp"
#include "src/search/evolution_search.hpp"
#include "src/search/local_search.hpp"
#include "src/search/nsga2_search.hpp"
#include "src/search/random_search.hpp"

namespace micronas {
namespace {

// ---------------------------------------------------------------------------
// Per-architecture invariants, swept over a deterministic sample of cells.

class ArchPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchPropertyTest, GenotypeCodecsRoundTrip) {
  const auto g = nb201::Genotype::from_index(GetParam());
  EXPECT_EQ(nb201::Genotype::from_index(g.index()), g);
  EXPECT_EQ(nb201::Genotype::from_string(g.to_string()), g);
}

TEST_P(ArchPropertyTest, AnalyticIndicatorsWellFormed) {
  const auto g = nb201::Genotype::from_index(GetParam());
  const MacroModel m = build_macro_model(g);
  const auto flops = count_flops(m);
  const auto params = count_params(m);
  const auto mem = analyze_memory(m);
  EXPECT_GE(flops.total(), 0);
  EXPECT_GT(params.total(), 0);       // skeleton always has params
  EXPECT_GT(mem.peak_sram_bytes, 0);
  EXPECT_GT(mem.flash_bytes, 0);
  // FLOPs bounded by the all-conv3x3 maximum.
  static const double kMaxFlops = [] {
    std::array<nb201::Op, nb201::kNumEdges> ops;
    ops.fill(nb201::Op::kConv3x3);
    return flops_m(nb201::Genotype(ops));
  }();
  EXPECT_LE(flops.total_m(), kMaxFlops + 1e-9);
}

TEST_P(ArchPropertyTest, SurrogateAccuracyOrderedAcrossDatasets) {
  // For every cell, CIFAR-10 accuracy > CIFAR-100 accuracy >
  // ImageNet16-120 accuracy (more classes, harder task) — a structural
  // property of the real NB201 tables our oracle must preserve.
  const auto g = nb201::Genotype::from_index(GetParam());
  const nb201::SurrogateOracle oracle;
  const double c10 = oracle.mean_accuracy(g, nb201::Dataset::kCifar10);
  const double c100 = oracle.mean_accuracy(g, nb201::Dataset::kCifar100);
  const double in16 = oracle.mean_accuracy(g, nb201::Dataset::kImageNet16);
  EXPECT_GT(c10, c100);
  EXPECT_GT(c100, in16 - 2.0);  // slack: IN16 noise stddev is large
}

TEST_P(ArchPropertyTest, FeatureCountsBounded) {
  const auto f = nb201::analyze_cell(nb201::Genotype::from_index(GetParam()));
  EXPECT_LE(f.n_conv3x3 + f.n_conv1x1 + f.n_skip + f.n_pool, nb201::kNumEdges);
  EXPECT_GE(f.live_paths, f.connected ? 1 : 0);
  EXPECT_LE(f.live_paths, 4);
  EXPECT_LE(f.conv_depth, 3);
  EXPECT_LE(f.graph_depth, 3);
  if (!f.connected) {
    EXPECT_EQ(f.n_conv3x3 + f.n_conv1x1 + f.n_skip + f.n_pool, 0);
  }
}

TEST_P(ArchPropertyTest, LatencyEstimateConsistentWithSimulator) {
  static const auto estimator = [] {
    Rng rng(1);
    ProfilerOptions opts;
    opts.deterministic = true;
    LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, opts);
    return LatencyEstimator(std::move(table), profile_constant_overhead_ms(McuSpec{}, rng, opts));
  }();
  const auto g = nb201::Genotype::from_index(GetParam());
  const MacroModel m = build_macro_model(g);
  const double est = estimator.estimate_ms(m);
  const double sim = simulate_network(m).latency_ms;
  EXPECT_GT(est, 0.0);
  // Within 35 % even under SRAM pressure (the deliberate model gap).
  EXPECT_NEAR(est, sim, 0.35 * sim);
}

INSTANTIATE_TEST_SUITE_P(SpaceSweep, ArchPropertyTest,
                         ::testing::Values(0, 1, 77, 444, 1234, 3125, 5000, 7777, 9999, 11111,
                                           12500, 14000, 15000, 15624));

// ---------------------------------------------------------------------------
// NTK invariants across batch sizes (the Fig. 2b regime).

class NtkBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(NtkBatchTest, SpectrumWellFormedAtAnyBatch) {
  const int batch = GetParam();
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  Rng data_rng(10);
  Tensor probe(Shape{batch, 3, 8, 8});
  data_rng.fill_normal(probe.data());
  Rng rng(11);
  const NtkResult res = ntk_condition(nb201::Genotype::from_index(14000), cfg, probe, rng);
  ASSERT_EQ(res.eigenvalues.size(), static_cast<std::size_t>(batch));
  EXPECT_GE(res.condition_number, 1.0);
  // Eigenvalues descending.
  for (std::size_t i = 1; i < res.eigenvalues.size(); ++i) {
    EXPECT_LE(res.eigenvalues[i], res.eigenvalues[i - 1] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSweep, NtkBatchTest, ::testing::Values(2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Latency-model invariants across op types and stages.

struct OpStageCase {
  nb201::Op op;
  int stage;  // 0..2
};

class OpLatencyTest : public ::testing::TestWithParam<OpStageCase> {};

TEST_P(OpLatencyTest, ProfiledCycleCostsPositiveAndScaleFree) {
  const auto [op, stage] = GetParam();
  if (op == nb201::Op::kNone) GTEST_SKIP() << "none emits no layer";
  const int channels = 16 << stage;
  const int hw = 32 >> stage;
  LayerSpec spec;
  spec.cin = channels;
  spec.cout = channels;
  spec.h = hw;
  spec.w = hw;
  spec.out_h = hw;
  spec.out_w = hw;
  switch (op) {
    case nb201::Op::kSkipConnect: spec.kind = LayerKind::kSkip; break;
    case nb201::Op::kAvgPool3x3:
      spec.kind = LayerKind::kAvgPool;
      spec.kernel = 3;
      break;
    case nb201::Op::kConv1x1:
      spec.kind = LayerKind::kConv;
      spec.kernel = 1;
      break;
    case nb201::Op::kConv3x3:
      spec.kind = LayerKind::kConv;
      spec.kernel = 3;
      spec.pad = 1;
      break;
    default: break;
  }
  const double cycles = layer_cycles(spec);
  EXPECT_GT(cycles, 0.0);
  // Invocation overhead alone never explains a compute layer's cost at
  // stage resolution >= 8x8 with >= 16 channels.
  if (op == nb201::Op::kConv3x3) {
    EXPECT_GT(cycles, 10.0 * McuSpec{}.layer_overhead_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpStageSweep, OpLatencyTest,
    ::testing::Values(OpStageCase{nb201::Op::kSkipConnect, 0}, OpStageCase{nb201::Op::kSkipConnect, 2},
                      OpStageCase{nb201::Op::kAvgPool3x3, 0}, OpStageCase{nb201::Op::kAvgPool3x3, 1},
                      OpStageCase{nb201::Op::kConv1x1, 0}, OpStageCase{nb201::Op::kConv1x1, 2},
                      OpStageCase{nb201::Op::kConv3x3, 0}, OpStageCase{nb201::Op::kConv3x3, 1},
                      OpStageCase{nb201::Op::kConv3x3, 2}));

// ---------------------------------------------------------------------------
// Cross-backend determinism: every search backend must produce
// bit-identical winners (and, for NSGA-II, archive contents) whatever
// the engine's thread count or cache state — the eval-engine contract,
// checked end to end through each backend's own control flow.

struct EngineVariant {
  int threads;
  bool cache;
};

class BackendDeterminismTest : public ::testing::TestWithParam<EngineVariant> {
 protected:
  // Shared proxy suite (no estimator: hardware cost falls back to
  // FLOPs, which keeps the sweep fast and the values exact).
  static const ProxySuite& suite() {
    static const std::unique_ptr<ProxySuite> s = [] {
      ProxySuiteConfig cfg;
      cfg.proxy_net.input_size = 8;
      cfg.proxy_net.base_channels = 4;
      cfg.lr.grid = 8;
      cfg.lr.input_size = 8;
      Tensor probe(Shape{6, 3, 8, 8});
      Rng rng(99);
      rng.fill_normal(probe.data());
      return std::make_unique<ProxySuite>(cfg, std::move(probe), nullptr);
    }();
    return *s;
  }

  static EvalEngineConfig engine_config(const EngineVariant& v) {
    EvalEngineConfig e;
    e.threads = v.threads;
    e.cache = v.cache;
    e.seed = 0x5EED;  // fixed: the variant must not change the streams
    return e;
  }

  static bool same_bits(const IndicatorValues& a, const IndicatorValues& b) {
    return a.ntk_condition == b.ntk_condition && a.linear_regions == b.linear_regions &&
           a.flops_m == b.flops_m && a.params_m == b.params_m && a.latency_ms == b.latency_ms &&
           a.peak_sram_kb == b.peak_sram_kb;
  }
};

TEST_P(BackendDeterminismTest, RandomSearchWinnerIdentical) {
  auto once = [&](const EngineVariant& v) {
    const ProxyEvalEngine engine(suite(), engine_config(v));
    RandomSearchConfig cfg;
    cfg.num_samples = 12;
    cfg.weights = IndicatorWeights::flops_guided();
    Rng rng(5);
    return random_search(engine, cfg, rng);
  };
  static const RandomSearchResult baseline = once({1, true});
  const RandomSearchResult res = once(GetParam());
  EXPECT_EQ(res.genotype, baseline.genotype);
  EXPECT_TRUE(same_bits(res.indicators, baseline.indicators));
  EXPECT_EQ(res.proxy_evals, baseline.proxy_evals);
}

TEST_P(BackendDeterminismTest, LocalSearchTrajectoryIdentical) {
  auto once = [&](const EngineVariant& v) {
    const ProxyEvalEngine engine(suite(), engine_config(v));
    LocalSearchConfig cfg;
    cfg.max_evals = 30;
    cfg.max_restarts = 2;
    cfg.weights = IndicatorWeights::flops_guided();
    Rng rng(6);
    return local_search(engine, cfg, rng);
  };
  static const LocalSearchResult baseline = once({1, true});
  const LocalSearchResult res = once(GetParam());
  EXPECT_EQ(res.genotype, baseline.genotype);
  EXPECT_TRUE(same_bits(res.indicators, baseline.indicators));
  EXPECT_EQ(res.proxy_evals, baseline.proxy_evals);
  EXPECT_EQ(res.restarts, baseline.restarts);
}

TEST_P(BackendDeterminismTest, EvolutionWinnerIdentical) {
  auto once = [&](const EngineVariant& v) {
    const ProxyEvalEngine engine(MacroNetConfig{}, nullptr, engine_config(v));
    const nb201::SurrogateOracle oracle;
    EvolutionSearchConfig cfg;
    cfg.population_size = 10;
    cfg.tournament_size = 3;
    cfg.total_evals = 60;
    cfg.constraints.max_flops_m = 90.0;  // exercise the feasibility path
    Rng rng(7);
    return evolution_search(oracle, cfg, engine, rng);
  };
  static const EvolutionSearchResult baseline = once({1, true});
  const EvolutionSearchResult res = once(GetParam());
  EXPECT_EQ(res.genotype, baseline.genotype);
  EXPECT_EQ(res.accuracy, baseline.accuracy);
  EXPECT_EQ(res.history, baseline.history);
}

TEST_P(BackendDeterminismTest, Nsga2ArchiveIdentical) {
  auto once = [&](const EngineVariant& v) {
    const ProxyEvalEngine hw(MacroNetConfig{}, nullptr, engine_config(v));
    const ProxyEvalEngine proxies(suite(), engine_config(v));
    const nb201::SurrogateOracle oracle;
    Nsga2Config cfg;
    cfg.population_size = 10;
    cfg.generations = 3;
    Rng rng(8);
    return nsga2_search(hw, &proxies, &oracle, cfg, rng);
  };
  static const Nsga2Result baseline = once({1, true});
  const Nsga2Result res = once(GetParam());
  EXPECT_EQ(res.evaluations, baseline.evaluations);
  // Full-precision CSV equality == bit-identical archive contents.
  EXPECT_EQ(res.archive.to_csv(), baseline.archive.to_csv());
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndCache, BackendDeterminismTest,
                         ::testing::Values(EngineVariant{1, true}, EngineVariant{1, false},
                                           EngineVariant{4, true}, EngineVariant{4, false}),
                         [](const ::testing::TestParamInfo<EngineVariant>& info) {
                           return "threads" + std::to_string(info.param.threads) +
                                  (info.param.cache ? "_cache" : "_nocache");
                         });

// ---------------------------------------------------------------------------
// Surrogate noise calibration across datasets.

class DatasetNoiseTest : public ::testing::TestWithParam<nb201::Dataset> {};

TEST_P(DatasetNoiseTest, TrialNoiseMatchesConfiguredStddev) {
  const nb201::Dataset d = GetParam();
  const nb201::SurrogateOracle oracle;
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(nb201::Op::kConv1x1);
  const nb201::Genotype g(ops);
  double sum = 0.0, sq = 0.0;
  const int n = 200;
  for (int t = 0; t < n; ++t) {
    const double a = oracle.accuracy(g, d, t);
    sum += a;
    sq += a * a;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(std::max(sq / n - mean * mean, 0.0));
  const double expected = nb201::surrogate_params(d).noise_stddev;
  EXPECT_NEAR(stddev, expected, 0.5 * expected + 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetNoiseTest,
                         ::testing::Values(nb201::Dataset::kCifar10, nb201::Dataset::kCifar100,
                                           nb201::Dataset::kImageNet16));

}  // namespace
}  // namespace micronas
