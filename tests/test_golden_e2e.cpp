// Golden end-to-end regression: a fixed-seed MicroNas::search() must
// keep discovering the same model with the same indicator values.
//
// The golden file lives at tests/golden/e2e_search.golden. After an
// *intentional* behaviour change, regenerate it with
//
//   scripts/update_golden.sh
//
// (equivalently: MICRONAS_UPDATE_GOLDEN=1 ./build/test_golden_e2e) and
// commit the diff alongside the change that caused it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "src/core/micronas.hpp"

namespace micronas {
namespace {

#ifndef MICRONAS_SOURCE_DIR
#error "MICRONAS_SOURCE_DIR must point at the repository root"
#endif

const char* golden_path() { return MICRONAS_SOURCE_DIR "/tests/golden/e2e_search.golden"; }

/// The fixed search scenario: small proxy apparatus (the
/// pareto_explore configuration), latency-guided weights, seed 7.
DiscoveredModel run_fixed_search() {
  MicroNasConfig cfg;
  cfg.seed = 7;
  cfg.batch_size = 16;
  cfg.proxy_net.input_size = 8;
  cfg.proxy_net.base_channels = 4;
  cfg.lr.grid = 10;
  cfg.lr.input_size = 8;
  cfg.weights = IndicatorWeights::latency_guided(2.0);
  MicroNas nas(cfg);
  return nas.search();
}

std::map<std::string, std::string> serialize(const DiscoveredModel& model) {
  const nb201::Genotype canonical = nb201::canonicalize(model.genotype);
  const auto full = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  return {
      {"canonical", canonical.to_string()},
      {"canonical_index", std::to_string(canonical.index())},
      {"genotype_index", std::to_string(model.genotype.index())},
      {"accuracy", full(model.accuracy)},
      {"ntk_condition", full(model.indicators.ntk_condition)},
      {"linear_regions", full(model.indicators.linear_regions)},
      {"flops_m", full(model.indicators.flops_m)},
      {"params_m", full(model.indicators.params_m)},
      {"latency_ms", full(model.indicators.latency_ms)},
      {"peak_sram_kb", full(model.indicators.peak_sram_kb)},
      {"measured_latency_ms", full(model.measured_latency_ms)},
      {"adapt_rounds", std::to_string(model.adapt_rounds_used)},
  };
}

std::map<std::string, std::string> load_golden(const std::string& path) {
  std::ifstream in(path);
  std::map<std::string, std::string> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    out[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return out;
}

void save_golden(const std::string& path, const std::map<std::string, std::string>& kv) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << "# Golden result of the fixed-seed end-to-end search (see\n"
         "# tests/test_golden_e2e.cpp). Regenerate with scripts/update_golden.sh\n"
         "# after an intentional behaviour change.\n";
  for (const auto& [k, v] : kv) out << k << "=" << v << "\n";
}

TEST(GoldenEndToEnd, FixedSeedSearchMatchesGolden) {
  const auto actual = serialize(run_fixed_search());

  if (std::getenv("MICRONAS_UPDATE_GOLDEN") != nullptr) {
    save_golden(golden_path(), actual);
    std::cout << "golden file updated: " << golden_path() << "\n";
    return;
  }

  const auto golden = load_golden(golden_path());
  ASSERT_FALSE(golden.empty()) << "missing or empty golden file " << golden_path()
                               << " — run scripts/update_golden.sh to create it";

  for (const auto& [key, expected] : golden) {
    ASSERT_TRUE(actual.count(key)) << "golden key '" << key << "' not produced by the search";
    const std::string& got = actual.at(key);
    // Discrete fields must match exactly; floating-point fields get a
    // tight relative tolerance so a libm variation does not mask the
    // regressions this test exists to catch.
    double expected_d = 0.0;
    double got_d = 0.0;
    std::istringstream es(expected);
    std::istringstream gs(got);
    if (key != "canonical" && (es >> expected_d) && (gs >> got_d) &&
        es.rdbuf()->in_avail() == 0) {
      EXPECT_NEAR(got_d, expected_d, 1e-6 * std::max(1.0, std::abs(expected_d)))
          << "indicator '" << key << "' drifted from the golden value";
    } else {
      EXPECT_EQ(got, expected) << "field '" << key << "' changed";
    }
  }
}

}  // namespace
}  // namespace micronas
