#include <gtest/gtest.h>

#include "src/tensor/tensor.hpp"

namespace micronas {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[3], 5);
  EXPECT_EQ(s.numel(), 120U);
}

TEST(Shape, RejectsNonPositiveDims) {
  EXPECT_THROW(Shape({0, 3}), std::invalid_argument);
  EXPECT_THROW(Shape({-1}), std::invalid_argument);
}

TEST(Shape, RejectsBadRank) {
  EXPECT_THROW(Shape(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(Shape({1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(Shape, IndexOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], std::out_of_range);
  EXPECT_THROW(s[-1], std::out_of_range);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 2});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, FillConstructor) {
  Tensor t(Shape{3}, 2.5F);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 2.5F);
}

TEST(Tensor, FromVectorSizeChecked) {
  EXPECT_NO_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, NchwIndexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0F;
  // Last element of the buffer.
  EXPECT_EQ(t[t.numel() - 1], 7.0F);
  t.at(0, 0, 0, 0) = 3.0F;
  EXPECT_EQ(t[0], 3.0F);
}

TEST(Tensor, Rank2Indexing) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 9.0F;
  EXPECT_EQ(t[5], 9.0F);
}

TEST(Tensor, WrongRankAccessorThrows) {
  Tensor r2(Shape{2, 3});
  EXPECT_THROW(r2.at(0, 0, 0, 0), std::logic_error);
  Tensor r4(Shape{1, 1, 2, 2});
  EXPECT_THROW(r4.at(0, 0), std::logic_error);
}

TEST(Tensor, AddInPlace) {
  Tensor a = Tensor::from_vector(Shape{3}, {1, 2, 3});
  Tensor b = Tensor::from_vector(Shape{3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[0], 11.0F);
  EXPECT_EQ(a[2], 33.0F);
}

TEST(Tensor, AddShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
}

TEST(Tensor, ScaleAndAxpy) {
  Tensor a = Tensor::from_vector(Shape{2}, {1, 2});
  a.scale_(3.0F);
  EXPECT_EQ(a[1], 6.0F);
  Tensor b = Tensor::from_vector(Shape{2}, {1, 1});
  a.axpy_(2.0F, b);
  EXPECT_EQ(a[0], 5.0F);
  EXPECT_EQ(a[1], 8.0F);
}

TEST(Tensor, Reductions) {
  Tensor a = Tensor::from_vector(Shape{4}, {1, -5, 3, 1});
  EXPECT_FLOAT_EQ(a.sum(), 0.0F);
  EXPECT_FLOAT_EQ(a.abs_max(), 5.0F);
  Tensor b = Tensor::from_vector(Shape{4}, {1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(b.l2_norm(), 2.0);
}

TEST(Tensor, SliceSample) {
  Tensor t(Shape{2, 1, 2, 2});
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  const Tensor s1 = t.slice_sample(1);
  EXPECT_EQ(s1.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(s1[0], 4.0F);
  EXPECT_EQ(s1[3], 7.0F);
  EXPECT_THROW(t.slice_sample(2), std::out_of_range);
}

TEST(Tensor, ToStringTruncates) {
  Tensor t(Shape{1, 1, 8, 8});
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace micronas
