#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/stats/correlation.hpp"
#include "src/stats/ranking.hpp"
#include "src/stats/summary.hpp"

namespace micronas::stats {
namespace {

TEST(KendallTau, PerfectAgreement) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(kendall_tau(x, y), 1.0);
}

TEST(KendallTau, PerfectDisagreement) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall_tau(x, y), -1.0);
}

TEST(KendallTau, KnownMixedValue) {
  // Pairs: (1,3),(2,1),(3,2): concordant = 1, discordant = 2 -> tau = -1/3.
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {3, 1, 2};
  EXPECT_NEAR(kendall_tau(x, y), -1.0 / 3.0, 1e-12);
}

TEST(KendallTau, TieCorrection) {
  const std::vector<double> x = {1, 1, 2, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  const double tau = kendall_tau(x, y);
  EXPECT_GT(tau, 0.8);  // strongly concordant despite the tie
  EXPECT_LT(tau, 1.0);  // but not perfect under tau-b
}

TEST(KendallTau, AllTiedIsZero) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(kendall_tau(x, y), 0.0);
}

TEST(KendallTau, IndependentNearZero) {
  Rng rng(42);
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(kendall_tau(x, y), 0.0, 0.08);
}

TEST(KendallTau, SizeMismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(kendall_tau(x, y), std::invalid_argument);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // x^3
  EXPECT_NEAR(spearman_rho(x, y), 1.0, 1e-12);
}

TEST(Spearman, HandlesTiesViaAverageRanks) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  const double rho = spearman_rho(x, y);
  EXPECT_GT(rho, 0.9);
}

TEST(Pearson, LinearExact) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {3, 5, 7};  // y = 2x + 1
  EXPECT_NEAR(pearson_r(x, y), 1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson_r(x, y), 0.0);
}

TEST(AverageRanks, TiesAveraged) {
  const std::vector<double> v = {10, 20, 20, 30};
  const auto r = average_ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(OrdinalRanks, AscendingAndDescending) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  const auto asc = ordinal_ranks_ascending(v);
  EXPECT_EQ(asc[0], 2);
  EXPECT_EQ(asc[1], 0);
  EXPECT_EQ(asc[2], 1);
  const auto desc = ordinal_ranks_descending(v);
  EXPECT_EQ(desc[0], 0);
  EXPECT_EQ(desc[1], 2);
  EXPECT_EQ(desc[2], 1);
}

TEST(OrdinalRanks, StableOnTies) {
  const std::vector<double> v = {5.0, 5.0, 5.0};
  const auto asc = ordinal_ranks_ascending(v);
  EXPECT_EQ(asc[0], 0);
  EXPECT_EQ(asc[1], 1);
  EXPECT_EQ(asc[2], 2);
}

TEST(ArgMinMax, FirstOnTies) {
  const std::vector<double> v = {2.0, 1.0, 1.0, 3.0, 3.0};
  EXPECT_EQ(argmin(v), 1U);
  EXPECT_EQ(argmax(v), 3U);
  EXPECT_THROW(argmin(std::vector<double>{}), std::invalid_argument);
}

TEST(Summary, BasicStats) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5U);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, SingleElement) {
  const std::vector<double> v = {7.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
  EXPECT_THROW(percentile(v, 101.0), std::invalid_argument);
}

TEST(Mape, KnownValue) {
  const std::vector<double> pred = {110, 90};
  const std::vector<double> ref = {100, 100};
  EXPECT_NEAR(mape(pred, ref), 0.10, 1e-12);
}

TEST(Mape, SkipsZeroReferences) {
  const std::vector<double> pred = {5, 110};
  const std::vector<double> ref = {0, 100};
  EXPECT_NEAR(mape(pred, ref), 0.10, 1e-12);
}

}  // namespace
}  // namespace micronas::stats
