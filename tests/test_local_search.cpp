#include <gtest/gtest.h>

#include "src/search/local_search.hpp"

namespace micronas {
namespace {

std::unique_ptr<ProxySuite> make_suite(std::uint64_t seed = 1) {
  ProxySuiteConfig cfg;
  cfg.proxy_net.input_size = 8;
  cfg.proxy_net.base_channels = 4;
  cfg.lr.grid = 8;
  cfg.lr.input_size = 8;
  Tensor probe(Shape{6, 3, 8, 8});
  Rng rng(seed);
  rng.fill_normal(probe.data());
  return std::make_unique<ProxySuite>(cfg, std::move(probe), nullptr);
}

TEST(LocalSearch, RespectsEvalBudget) {
  auto suite = make_suite();
  LocalSearchConfig cfg;
  cfg.max_evals = 40;
  cfg.weights = IndicatorWeights::te_nas();
  Rng rng(2);
  const auto res = local_search(*suite, cfg, rng);
  EXPECT_LE(res.proxy_evals, 40);
  EXPECT_GE(res.proxy_evals, 1);
  EXPECT_GE(res.restarts, 1);
  EXPECT_GT(res.wall_seconds, 0.0);
}

TEST(LocalSearch, FindsMoreExpressiveCellThanAverage) {
  // Hill climbing on NTK+LR should end on a cell whose linear-region
  // richness beats the random-cell average.
  auto suite = make_suite(3);
  Rng avg_rng(4);
  double avg_lr = 0.0;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    avg_lr += suite->evaluate(nb201::random_genotype(avg_rng), avg_rng).linear_regions;
  }
  avg_lr /= n;

  LocalSearchConfig cfg;
  cfg.max_evals = 60;
  cfg.weights = IndicatorWeights::te_nas();
  Rng rng(5);
  const auto res = local_search(*suite, cfg, rng);
  EXPECT_GT(res.indicators.linear_regions, avg_lr);
}

TEST(LocalSearch, ConstraintRespectedWhenReachable) {
  auto suite = make_suite(6);
  LocalSearchConfig cfg;
  cfg.max_evals = 80;
  cfg.constraints.max_flops_m = 60.0;
  cfg.weights = IndicatorWeights::te_nas();
  Rng rng(7);
  const auto res = local_search(*suite, cfg, rng);
  EXPECT_LE(res.indicators.flops_m, 60.0);
}

TEST(LocalSearch, RejectsBadConfig) {
  auto suite = make_suite();
  Rng rng(8);
  LocalSearchConfig cfg;
  cfg.max_evals = 0;
  EXPECT_THROW(local_search(*suite, cfg, rng), std::invalid_argument);
  cfg.max_evals = 10;
  cfg.max_restarts = 0;
  EXPECT_THROW(local_search(*suite, cfg, rng), std::invalid_argument);
}

TEST(LocalSearch, DeterministicGivenSeed) {
  auto s1 = make_suite(9);
  auto s2 = make_suite(9);
  LocalSearchConfig cfg;
  cfg.max_evals = 30;
  Rng a(10), b(10);
  const auto ra = local_search(*s1, cfg, a);
  const auto rb = local_search(*s2, cfg, b);
  EXPECT_EQ(ra.genotype, rb.genotype);
}

}  // namespace
}  // namespace micronas
