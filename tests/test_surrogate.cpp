#include <gtest/gtest.h>

#include <algorithm>

#include "src/nb201/space.hpp"
#include "src/nb201/surrogate.hpp"
#include "src/stats/correlation.hpp"

namespace micronas::nb201 {
namespace {

TEST(Dataset, NamesRoundTrip) {
  for (int i = 0; i < kNumDatasets; ++i) {
    const auto d = static_cast<Dataset>(i);
    EXPECT_EQ(dataset_from_name(dataset_name(d)), d);
  }
  EXPECT_THROW(dataset_from_name("mnist"), std::invalid_argument);
}

TEST(Surrogate, Deterministic) {
  const SurrogateOracle oracle;
  const Genotype g = Genotype::from_index(4321);
  EXPECT_DOUBLE_EQ(oracle.accuracy(g, Dataset::kCifar10, 0),
                   oracle.accuracy(g, Dataset::kCifar10, 0));
}

TEST(Surrogate, TrialsDiffer) {
  const SurrogateOracle oracle;
  const Genotype g = Genotype::from_index(9000);
  EXPECT_NE(oracle.accuracy(g, Dataset::kCifar10, 0), oracle.accuracy(g, Dataset::kCifar10, 1));
}

TEST(Surrogate, DisconnectedIsChanceLevel) {
  const SurrogateOracle oracle;
  const Genotype g;  // all none
  EXPECT_NEAR(oracle.accuracy(g, Dataset::kCifar10), 10.0, 0.5);
  EXPECT_NEAR(oracle.accuracy(g, Dataset::kCifar100), 1.0, 0.5);
  EXPECT_NEAR(oracle.accuracy(g, Dataset::kImageNet16), 100.0 / 120.0, 0.5);
}

TEST(Surrogate, AllConv3x3NearPublishedOptimum) {
  const SurrogateOracle oracle;
  std::array<Op, kNumEdges> ops;
  ops.fill(Op::kConv3x3);
  const Genotype g(ops);
  EXPECT_NEAR(oracle.mean_accuracy(g, Dataset::kCifar10), 94.0, 1.5);
  EXPECT_NEAR(oracle.mean_accuracy(g, Dataset::kCifar100), 71.5, 3.0);
  EXPECT_NEAR(oracle.mean_accuracy(g, Dataset::kImageNet16), 44.0, 4.0);
}

TEST(Surrogate, BestArchWithResidualBeatsSkipOnly) {
  const SurrogateOracle oracle;
  std::array<Op, kNumEdges> conv;
  conv.fill(Op::kConv3x3);
  conv[static_cast<std::size_t>(edge_index(0, 3))] = Op::kSkipConnect;
  std::array<Op, kNumEdges> skips;
  skips.fill(Op::kSkipConnect);
  EXPECT_GT(oracle.mean_accuracy(Genotype(conv), Dataset::kCifar10),
            oracle.mean_accuracy(Genotype(skips), Dataset::kCifar10) + 10.0);
}

TEST(Surrogate, AccuracyWithinBounds) {
  const SurrogateOracle oracle;
  for (int i = 0; i < kNumArchitectures; i += 61) {
    const Genotype g = Genotype::from_index(i);
    for (int d = 0; d < kNumDatasets; ++d) {
      const double acc = oracle.accuracy(g, static_cast<Dataset>(d));
      EXPECT_GT(acc, 0.0);
      EXPECT_LE(acc, 100.0);
    }
  }
}

TEST(Surrogate, StructuralScoreMonotoneInConvMass) {
  const SurrogateOracle oracle;
  // Adding a conv3x3 on a live edge should not reduce the score.
  Genotype base;
  base.set_op(edge_index(0, 1), Op::kSkipConnect);
  base.set_op(edge_index(1, 3), Op::kSkipConnect);
  Genotype more = base;
  more.set_op(edge_index(0, 1), Op::kConv3x3);
  EXPECT_GT(oracle.structural_score(more, Dataset::kCifar10),
            oracle.structural_score(base, Dataset::kCifar10));
}

TEST(Surrogate, DatasetsRankSimilarButNotIdentical) {
  const SurrogateOracle oracle;
  Rng rng(5);
  const auto sample = sample_genotypes(rng, 300);
  std::vector<double> c10, c100;
  for (const auto& g : sample) {
    c10.push_back(oracle.mean_accuracy(g, Dataset::kCifar10));
    c100.push_back(oracle.mean_accuracy(g, Dataset::kCifar100));
  }
  const double tau = stats::kendall_tau(c10, c100);
  EXPECT_GT(tau, 0.5);   // the real tables correlate strongly across datasets
  EXPECT_LT(tau, 0.995); // but not perfectly
}

TEST(Surrogate, NoiseSeedShiftsReplicates) {
  const SurrogateOracle a(777), b(778);
  const Genotype g = Genotype::from_index(5555);
  EXPECT_NE(a.accuracy(g, Dataset::kCifar10), b.accuracy(g, Dataset::kCifar10));
}

TEST(Surrogate, MeanAccuracyAveragesTrials) {
  const SurrogateOracle oracle;
  const Genotype g = Genotype::from_index(321);
  const double mean = oracle.mean_accuracy(g, Dataset::kCifar10, 3);
  const double manual = (oracle.accuracy(g, Dataset::kCifar10, 0) +
                         oracle.accuracy(g, Dataset::kCifar10, 1) +
                         oracle.accuracy(g, Dataset::kCifar10, 2)) / 3.0;
  EXPECT_DOUBLE_EQ(mean, manual);
  EXPECT_THROW(oracle.mean_accuracy(g, Dataset::kCifar10, 0), std::invalid_argument);
}

TEST(Surrogate, GlobalMaximumIsRealistic) {
  // Scan the whole space: the best CIFAR-10 cell should land near the
  // published 94.37 % optimum and be conv-heavy.
  const SurrogateOracle oracle;
  double best = 0.0;
  Genotype best_g;
  for (int i = 0; i < kNumArchitectures; ++i) {
    const Genotype g = Genotype::from_index(i);
    const double acc = oracle.mean_accuracy(g, Dataset::kCifar10);
    if (acc > best) {
      best = acc;
      best_g = g;
    }
  }
  EXPECT_GT(best, 93.0);
  EXPECT_LT(best, 96.5);
  int convs = 0;
  for (int e = 0; e < kNumEdges; ++e) {
    if (op_has_params(best_g.op(e))) ++convs;
  }
  EXPECT_GE(convs, 3);
}

}  // namespace
}  // namespace micronas::nb201
