#include <gtest/gtest.h>

#include "src/mcusim/profiler.hpp"
#include "src/search/objective.hpp"

namespace micronas {
namespace {

IndicatorValues make_values(double ntk, double lr, double flops, double lat) {
  IndicatorValues v;
  v.ntk_condition = ntk;
  v.linear_regions = lr;
  v.flops_m = flops;
  v.latency_ms = lat;
  return v;
}

TEST(HybridObjective, RanksDirectionsCorrectly) {
  // Candidate 0 dominates on every axis: lowest κ, most regions,
  // cheapest hardware. It must receive the lowest score.
  const std::vector<IndicatorValues> c = {
      make_values(10.0, 500.0, 50.0, 100.0),
      make_values(100.0, 100.0, 200.0, 900.0),
      make_values(50.0, 300.0, 100.0, 400.0),
  };
  IndicatorWeights w{1.0, 1.0, 1.0, 1.0};
  const auto scores = hybrid_rank_scores(c, w);
  EXPECT_LT(scores[0], scores[2]);
  EXPECT_LT(scores[2], scores[1]);
}

TEST(HybridObjective, WeightsZeroOutIndicators) {
  // With only the latency weight on, ordering follows latency alone.
  const std::vector<IndicatorValues> c = {
      make_values(1.0, 999.0, 1.0, 500.0),
      make_values(999.0, 1.0, 999.0, 100.0),
  };
  const auto scores = hybrid_rank_scores(c, IndicatorWeights::latency_guided());
  // latency_guided keeps ntk+lr at 1: candidate 0 wins those two ranks,
  // candidate 1 wins latency. Now isolate latency entirely:
  IndicatorWeights lat_only{0.0, 0.0, 0.0, 1.0};
  const auto lat_scores = hybrid_rank_scores(c, lat_only);
  EXPECT_LT(lat_scores[1], lat_scores[0]);
  (void)scores;
}

TEST(HybridObjective, TeNasPresetIgnoresHardware) {
  const std::vector<IndicatorValues> c = {
      make_values(10.0, 500.0, 1e9, 1e9),  // terrible hardware, best proxies
      make_values(20.0, 400.0, 1.0, 1.0),
  };
  const auto scores = hybrid_rank_scores(c, IndicatorWeights::te_nas());
  EXPECT_LT(scores[0], scores[1]);
}

TEST(HybridObjective, EmptyThrows) {
  const std::vector<IndicatorValues> empty;
  EXPECT_THROW(hybrid_rank_scores(empty, IndicatorWeights{}), std::invalid_argument);
}

TEST(Constraints, SatisfiedBy) {
  Constraints c;
  EXPECT_FALSE(c.any());
  c.max_latency_ms = 500.0;
  c.max_params_m = 1.0;
  EXPECT_TRUE(c.any());

  IndicatorValues ok;
  ok.latency_ms = 400.0;
  ok.params_m = 0.5;
  EXPECT_TRUE(c.satisfied_by(ok));

  IndicatorValues slow = ok;
  slow.latency_ms = 600.0;
  EXPECT_FALSE(c.satisfied_by(slow));

  IndicatorValues fat = ok;
  fat.params_m = 1.5;
  EXPECT_FALSE(c.satisfied_by(fat));
}

TEST(Constraints, StreamedSramBoundAdmitsStreamableCells) {
  // A cell whose plain peak busts the budget but whose row-strip
  // streamed peak fits is infeasible under the plain bound and feasible
  // under sram_streaming — the knob that lets the search keep cells the
  // deployment compiler can fit via arena_budget.
  Constraints c;
  c.max_sram_kb = 100.0;

  IndicatorValues v;
  v.peak_sram_kb = 150.0;
  v.streamed_sram_kb = 80.0;
  EXPECT_FALSE(c.satisfied_by(v));
  c.sram_streaming = true;
  EXPECT_TRUE(c.satisfied_by(v));
  EXPECT_DOUBLE_EQ(c.bound_sram_kb(v), 80.0);

  // Records that never computed the streamed figure (e.g. rebuilt from
  // an older cache) fall back to the plain peak — never admit blindly.
  IndicatorValues legacy;
  legacy.peak_sram_kb = 150.0;
  EXPECT_FALSE(c.satisfied_by(legacy));
  EXPECT_DOUBLE_EQ(c.bound_sram_kb(legacy), 150.0);
}

TEST(SelectBest, FeasibleBeatsInfeasible) {
  const std::vector<IndicatorValues> c = {
      make_values(1.0, 900.0, 10.0, 900.0),   // best score, violates latency
      make_values(50.0, 100.0, 10.0, 100.0),  // worse score, feasible
  };
  Constraints limits;
  limits.max_latency_ms = 500.0;
  EXPECT_EQ(select_best(c, IndicatorWeights{1, 1, 0, 1}, limits), 1U);
  // Without constraints the first wins.
  EXPECT_EQ(select_best(c, IndicatorWeights{1, 1, 0, 1}, Constraints{}), 0U);
}

TEST(SupernetHwModel, FullSupernetBetweenExtremes) {
  // The expectation over the full supernet must lie between the
  // cheapest (all none) and dearest (all conv3x3) concrete models.
  Rng rng(1);
  ProfilerOptions popts;
  popts.deterministic = true;
  LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, popts);
  const LatencyEstimator est(std::move(table),
                             profile_constant_overhead_ms(McuSpec{}, rng, popts));
  const SupernetHwModel hw(MacroNetConfig{}, &est);

  const auto full = hw.expectation(nb201::OpSet::full());

  nb201::OpSet conv_only = nb201::OpSet::full();
  for (int e = 0; e < nb201::kNumEdges; ++e) {
    for (auto op : {nb201::Op::kNone, nb201::Op::kSkipConnect, nb201::Op::kConv1x1,
                    nb201::Op::kAvgPool3x3}) {
      conv_only.remove(e, op);
    }
  }
  const auto dearest = hw.expectation(conv_only);

  nb201::OpSet none_only = nb201::OpSet::full();
  for (int e = 0; e < nb201::kNumEdges; ++e) {
    for (auto op : {nb201::Op::kConv3x3, nb201::Op::kSkipConnect, nb201::Op::kConv1x1,
                    nb201::Op::kAvgPool3x3}) {
      none_only.remove(e, op);
    }
  }
  const auto cheapest = hw.expectation(none_only);

  EXPECT_LT(cheapest.flops_m, full.flops_m);
  EXPECT_LT(full.flops_m, dearest.flops_m);
  EXPECT_LT(cheapest.latency_ms, full.latency_ms);
  EXPECT_LT(full.latency_ms, dearest.latency_ms);
}

TEST(SupernetHwModel, SingletonMatchesConcreteModelApproximately) {
  // Reducing the op-set to a single genotype should reproduce the
  // concrete model's FLOPs up to the node-sum (kAdd) terms the
  // expectation model ignores.
  Rng rng(2);
  ProfilerOptions popts;
  popts.deterministic = true;
  LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, popts);
  const LatencyEstimator est(std::move(table),
                             profile_constant_overhead_ms(McuSpec{}, rng, popts));
  const SupernetHwModel hw(MacroNetConfig{}, &est);

  nb201::OpSet conv_only = nb201::OpSet::full();
  for (int e = 0; e < nb201::kNumEdges; ++e) {
    for (auto op : {nb201::Op::kNone, nb201::Op::kSkipConnect, nb201::Op::kConv1x1,
                    nb201::Op::kAvgPool3x3}) {
      conv_only.remove(e, op);
    }
  }
  const auto expectation = hw.expectation(conv_only);

  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(nb201::Op::kConv3x3);
  const MacroModel concrete = build_macro_model(nb201::Genotype(ops));
  const double concrete_flops = count_flops(concrete).total_m();
  EXPECT_NEAR(expectation.flops_m, concrete_flops, 0.02 * concrete_flops);
  const double concrete_ms = est.estimate_ms(concrete);
  EXPECT_NEAR(expectation.latency_ms, concrete_ms, 0.05 * concrete_ms);
}

TEST(SupernetHwModel, NullEstimatorReportsZeroLatency) {
  const SupernetHwModel hw(MacroNetConfig{}, nullptr);
  const auto e = hw.expectation(nb201::OpSet::full());
  EXPECT_DOUBLE_EQ(e.latency_ms, 0.0);
  EXPECT_GT(e.flops_m, 0.0);
}

}  // namespace
}  // namespace micronas
