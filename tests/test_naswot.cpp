#include <gtest/gtest.h>

#include "src/proxies/naswot.hpp"

namespace micronas {
namespace {

CellNetConfig tiny_config() {
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  cfg.num_classes = 10;
  return cfg;
}

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

Tensor probe(int n, const CellNetConfig& cfg, Rng& rng) {
  Tensor t(Shape{n, cfg.input_channels, cfg.input_size, cfg.input_size});
  rng.fill_normal(t.data());
  return t;
}

TEST(Naswot, ScoreIsFiniteAndPopulated) {
  Rng rng(1);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(2);
  const Tensor images = probe(8, cfg, data_rng);
  const NaswotResult res = naswot_score(all_op(nb201::Op::kConv3x3), cfg, images, rng);
  EXPECT_TRUE(std::isfinite(res.log_det));
  EXPECT_EQ(res.batch, 8);
  EXPECT_GT(res.code_bits, 0U);
}

TEST(Naswot, ConvCellScoresHigherThanDegenerate) {
  // NASWOT rewards input separation; a conv-heavy cell separates the
  // batch better than a cell that zeroes everything.
  Rng rng(3);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(4);
  const Tensor images = probe(8, cfg, data_rng);
  Rng rng2(3);
  const NaswotResult conv = naswot_score(all_op(nb201::Op::kConv3x3), cfg, images, rng);
  const NaswotResult none = naswot_score(nb201::Genotype{}, cfg, images, rng2);
  EXPECT_GT(conv.log_det, none.log_det);
}

TEST(Naswot, DeterministicGivenSeed) {
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(5);
  const Tensor images = probe(6, cfg, data_rng);
  Rng a(9), b(9);
  const auto ra = naswot_score(all_op(nb201::Op::kConv1x1), cfg, images, a);
  const auto rb = naswot_score(all_op(nb201::Op::kConv1x1), cfg, images, b);
  EXPECT_DOUBLE_EQ(ra.log_det, rb.log_det);
}

TEST(Naswot, RejectsTinyBatch) {
  Rng rng(6);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(7);
  const Tensor images = probe(1, cfg, data_rng);
  EXPECT_THROW(naswot_score(nb201::Genotype{}, cfg, images, rng), std::invalid_argument);
}

}  // namespace
}  // namespace micronas
