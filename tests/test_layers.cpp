#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/tensor/init.hpp"
#include "src/tensor/layers.hpp"

namespace micronas {
namespace {

TEST(Conv2dLayer, ForwardBackwardShapes) {
  Rng rng(1);
  Conv2dLayer conv(3, 8, 3, 1, 1);
  conv.init(rng);
  Tensor x(Shape{2, 3, 8, 8});
  rng.fill_normal(x.data());
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 8, 8, 8}));
  Tensor gy(y.shape(), 1.0F);
  const Tensor gx = conv.backward(gy);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Conv2dLayer, ParamCount) {
  Conv2dLayer conv(3, 8, 3, 1, 1);
  EXPECT_EQ(conv.param_count(), 3U * 8U * 9U);
  Conv2dLayer with_bias(4, 4, 1, 1, 0, /*bias=*/true);
  EXPECT_EQ(with_bias.param_count(), 16U + 4U);
}

TEST(Conv2dLayer, GradAccumulatesAcrossBackwards) {
  Rng rng(2);
  Conv2dLayer conv(1, 1, 1, 1, 0);
  conv.init(rng);
  Tensor x(Shape{1, 1, 2, 2}, 1.0F);
  Tensor gy(Shape{1, 1, 2, 2}, 1.0F);
  (void)conv.forward(x);
  (void)conv.backward(gy);
  const float g1 = conv.grad_spans()[0][0];
  (void)conv.forward(x);
  (void)conv.backward(gy);
  const float g2 = conv.grad_spans()[0][0];
  EXPECT_FLOAT_EQ(g2, 2.0F * g1);
  conv.zero_grad();
  EXPECT_FLOAT_EQ(conv.grad_spans()[0][0], 0.0F);
}

TEST(ReluLayer, MaskExposed) {
  ReluLayer relu;
  Tensor x = Tensor::from_vector(Shape{1, 1, 1, 3}, {-1.0F, 0.5F, 2.0F});
  (void)relu.forward(x);
  const Tensor& mask = relu.last_mask();
  EXPECT_EQ(mask[0], 0.0F);
  EXPECT_EQ(mask[1], 1.0F);
  EXPECT_EQ(mask[2], 1.0F);
}

TEST(ZeroLayer, OutputsAndGradsAreZero) {
  ZeroLayer zero;
  Tensor x(Shape{1, 2, 3, 3}, 5.0F);
  const Tensor y = zero.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_FLOAT_EQ(y.abs_max(), 0.0F);
  Tensor gy(x.shape(), 7.0F);
  const Tensor gx = zero.backward(gy);
  EXPECT_FLOAT_EQ(gx.abs_max(), 0.0F);
}

TEST(IdentityLayer, PassThrough) {
  IdentityLayer id;
  Tensor x(Shape{1, 1, 2, 2}, 3.0F);
  EXPECT_FLOAT_EQ(id.forward(x)[0], 3.0F);
  Tensor gy(x.shape(), 2.0F);
  EXPECT_FLOAT_EQ(id.backward(gy)[0], 2.0F);
}

TEST(AvgPoolLayer, PreservesShapeStride1Pad1) {
  AvgPoolLayer pool(3, 1, 1);
  Tensor x(Shape{1, 2, 6, 6}, 1.0F);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  Tensor gy(y.shape(), 1.0F);
  EXPECT_EQ(pool.backward(gy).shape(), x.shape());
}

TEST(LinearLayer, ForwardKnownValues) {
  LinearLayer fc(2, 1, /*bias=*/true);
  // weight = [1, 2], bias = 3 -> y = x0 + 2 x1 + 3
  fc.param_spans()[0][0] = 1.0F;
  fc.param_spans()[0][1] = 2.0F;
  fc.param_spans()[1][0] = 3.0F;
  Tensor x = Tensor::from_vector(Shape{1, 2}, {10.0F, 20.0F});
  const Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y[0], 53.0F);
}

TEST(GlobalAvgPoolLayer, Averages) {
  GlobalAvgPoolLayer gap;
  Tensor x(Shape{1, 2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) x[i] = 4.0F;   // channel 0
  for (std::size_t i = 4; i < 8; ++i) x[i] = 8.0F;   // channel 1
  const Tensor y = gap.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.0F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 8.0F);
}

TEST(Init, KaimingScale) {
  Rng rng(3);
  Tensor w(Shape{64, 32, 3, 3});
  init_kaiming_normal(w, 32 * 9, rng);
  double sq = 0.0;
  for (float v : w.data()) sq += static_cast<double>(v) * v;
  const double stddev = std::sqrt(sq / static_cast<double>(w.numel()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / (32 * 9)), 0.01);
}

TEST(Init, XavierBounds) {
  Rng rng(4);
  Tensor w(Shape{16, 16});
  init_xavier_uniform(w, 16, 16, rng);
  const float limit = std::sqrt(6.0F / 32.0F);
  for (float v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(Init, RejectsBadFanIn) {
  Rng rng(5);
  Tensor w(Shape{4, 4});
  EXPECT_THROW(init_kaiming_normal(w, 0, rng), std::invalid_argument);
}

TEST(LayerNames, Descriptive) {
  Conv2dLayer conv(3, 8, 3, 2, 1);
  EXPECT_EQ(conv.name(), "conv3x3(3->8,s2)");
  AvgPoolLayer pool(3, 1, 1);
  EXPECT_EQ(pool.name(), "avgpool3x3(s1)");
  LinearLayer fc(10, 2);
  EXPECT_EQ(fc.name(), "linear(10->2)");
}

}  // namespace
}  // namespace micronas
