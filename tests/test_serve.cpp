// ModelServer: batching must be a pure throughput optimization — every
// request's logits bit-identical to a serial Executor run — across
// batch sizes, thread counts, and a save/load round trip of the model.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "src/data/synthetic.hpp"
#include "src/rt/runtime.hpp"
#include "src/serialize/serialize.hpp"
#include "src/serve/model_server.hpp"

namespace micronas {
namespace {

compile::CompiledModel compiled_small() {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  options.seed = 5;
  return compile::compile_genotype(
      nb201::Genotype::from_string("|nor_conv_3x3~0|+|skip_connect~0|nor_conv_1x1~1|+"
                                   "|avg_pool_3x3~0|none~1|nor_conv_3x3~2|"),
      options);
}

std::vector<Tensor> sample_inputs(int n, std::uint64_t seed) {
  DatasetSpec spec;
  spec.height = spec.width = 8;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs.push_back(data.sample_batch(1, rng).images);
  return inputs;
}

void expect_bit_identical(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at logit " << i;
  }
}

TEST(ModelServer, BatchedLogitsEqualSerialLogits) {
  const compile::CompiledModel model = compiled_small();
  const std::vector<Tensor> inputs = sample_inputs(24, 11);

  rt::Executor serial(model.graph, model.plan, rt::ExecOptions{1});
  std::vector<Tensor> expected;
  for (const Tensor& in : inputs) expected.push_back(serial.run(in));

  serve::ServerOptions options;
  options.max_batch = 6;
  options.max_wait_us = 200;
  options.threads = 3;
  serve::ModelServer server(compiled_small(), options);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& in : inputs) futures.push_back(server.submit(in));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_bit_identical(futures[i].get(), expected[i],
                         "request " + std::to_string(i) + " (batched vs serial)");
  }

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, static_cast<long long>(inputs.size()));
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_GE(stats.mean_batch, 1.0);
  EXPECT_LE(stats.p50_ms, stats.p90_ms);
  EXPECT_LE(stats.p90_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms);
  EXPECT_GT(stats.throughput_rps, 0.0);
}

TEST(ModelServer, ServesAReloadedPackageBitExactly) {
  const compile::CompiledModel model = compiled_small();
  const std::vector<Tensor> inputs = sample_inputs(10, 29);

  rt::Executor serial(model.graph, model.plan, rt::ExecOptions{1});
  std::vector<Tensor> expected;
  for (const Tensor& in : inputs) expected.push_back(serial.run(in));

  // Round-trip the model through the package format, then serve it.
  const std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  serve::ServerOptions options;
  options.max_batch = 4;
  options.threads = 2;
  serve::ModelServer server(serialize::load_model_bytes(bytes), options);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    expect_bit_identical(server.infer(inputs[i]), expected[i],
                         "reloaded request " + std::to_string(i));
  }
}

TEST(ModelServer, CoalescesConcurrentClientsIntoBatches) {
  serve::ServerOptions options;
  options.max_batch = 8;
  options.max_wait_us = 200'000;  // generous: coalescing must win over timing noise
  options.threads = 2;
  serve::ModelServer server(compiled_small(), options);

  const std::vector<Tensor> inputs = sample_inputs(16, 3);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& in : inputs) futures.push_back(server.submit(in));
  for (std::future<Tensor>& f : futures) f.get();

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 16);
  // 16 requests enqueued faster than they run must coalesce: strictly
  // fewer invocations than requests, batches capped by max_batch.
  EXPECT_LT(stats.batches, stats.requests);
  EXPECT_GE(stats.batches, 2);  // 16 requests cannot fit one batch of 8
  EXPECT_GT(stats.mean_batch, 1.0);
}

TEST(ModelServer, RejectsWrongInputShape) {
  serve::ModelServer server(compiled_small(), {});
  std::future<Tensor> bad = server.submit(Tensor(Shape{1, 3, 4, 4}));
  EXPECT_THROW(bad.get(), std::invalid_argument);
}

TEST(ModelServer, EveryConcurrentStopWaitsForTheDrain) {
  // Racing stop() calls: only one wins the dispatcher join, but every
  // caller must block until the dispatcher has exited — a loser that
  // returned early would observe incomplete stats(), and a stop()
  // racing the destructor would leave the dispatcher touching freed
  // state. Each thread therefore checks the postcondition right after
  // its own stop() returns.
  serve::ServerOptions options;
  options.max_batch = 2;
  options.max_wait_us = 1'000'000;  // stop() must cut the wait short
  serve::ModelServer server(compiled_small(), options);
  const std::vector<Tensor> inputs = sample_inputs(6, 23);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& in : inputs) futures.push_back(server.submit(in));

  std::vector<long long> seen(4, -1);
  std::vector<std::thread> stoppers;
  for (std::size_t t = 0; t < seen.size(); ++t) {
    stoppers.emplace_back([&server, &seen, t] {
      server.stop();
      seen[t] = server.stats().requests;
    });
  }
  for (std::thread& th : stoppers) th.join();
  for (std::size_t t = 0; t < seen.size(); ++t) {
    EXPECT_EQ(seen[t], 6) << "stop() caller " << t << " returned before the queue drained";
  }
  for (std::future<Tensor>& f : futures) EXPECT_GT(f.get().numel(), 0u);
}

TEST(ModelServer, StopDrainsPendingRequests) {
  serve::ServerOptions options;
  options.max_batch = 4;
  options.max_wait_us = 1'000'000;  // stop() must cut the wait short
  serve::ModelServer server(compiled_small(), options);
  const std::vector<Tensor> inputs = sample_inputs(3, 17);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& in : inputs) futures.push_back(server.submit(in));
  server.stop();
  for (std::future<Tensor>& f : futures) EXPECT_GT(f.get().numel(), 0u);
  EXPECT_THROW(server.submit(inputs[0]), std::runtime_error);
  EXPECT_EQ(server.stats().requests, 3);
}

}  // namespace
}  // namespace micronas
