// Pass pipeline: constant folding, conv+bn+relu fusion and DCE must
// preserve float semantics exactly (up to float round-off from the
// algebraic refactoring) while shrinking the executed graph.
#include <gtest/gtest.h>

#include <cmath>

#include "src/compile/passes.hpp"
#include "src/data/synthetic.hpp"
#include "src/ir/lower.hpp"
#include "src/rt/runtime.hpp"

namespace micronas {
namespace {

ir::LowerOptions small_options() {
  ir::LowerOptions options;
  options.macro.cells_per_stage = 1;
  options.macro.input_size = 8;
  return options;
}

Tensor probe_input(int size, std::uint64_t seed = 3) {
  DatasetSpec spec;
  spec.height = spec.width = size;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  return data.sample_batch(1, rng).images;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  double m = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

TEST(CompilePasses, FoldFuseDcePreserveFloatSemantics) {
  // A genotype exercising every op kind, including `none` zero-adds.
  const nb201::Genotype g = nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|avg_pool_3x3~0|none~1|nor_conv_1x1~2|");
  ir::Graph reference = ir::lower_genotype(g, small_options());
  ir::Graph optimized = ir::lower_genotype(g, small_options());

  compile::PassManager pm;
  pm.add(std::make_unique<compile::ConstantFoldPass>())
      .add(std::make_unique<compile::FuseConvBnReluPass>())
      .add(std::make_unique<compile::DeadCodeElimPass>());
  const auto stats = pm.run(optimized);
  ASSERT_EQ(stats.size(), 3U);
  EXPECT_TRUE(stats[0].changed);  // BN folds, zero-adds dissolve
  EXPECT_TRUE(stats[1].changed);  // conv+affine+relu fuse
  EXPECT_TRUE(stats[2].changed);  // orphaned BN params reclaimed
  EXPECT_LT(optimized.executed_node_count(), reference.executed_node_count());

  // No BN/affine survives, and every conv->relu pattern was absorbed
  // (standalone ReLUs may remain only after adds — the reduction's
  // residual activation — and convs without a trailing ReLU, like the
  // reduction shortcut, legitimately stay un-fused).
  int fused_convs = 0;
  for (const auto& node : optimized.nodes()) {
    EXPECT_NE(node.op, ir::OpKind::kBatchNorm);
    EXPECT_NE(node.op, ir::OpKind::kChannelAffine);
    fused_convs += node.op == ir::OpKind::kConv2d && node.conv.fused_relu ? 1 : 0;
    if (node.op == ir::OpKind::kRelu) {
      EXPECT_NE(optimized.node(node.inputs[0]).op, ir::OpKind::kConv2d)
          << "un-fused conv->relu survived at %" << node.id;
    }
  }
  EXPECT_GT(fused_convs, 0);

  const Tensor input = probe_input(8);
  rt::Executor ref_exec(reference, rt::ExecOptions{});
  rt::Executor opt_exec(optimized, rt::ExecOptions{});
  const Tensor ref_logits = ref_exec.run(input);
  const Tensor opt_logits = opt_exec.run(input);
  // Fusion reassociates float math (w*s at compile time vs (w*x)*s at
  // run time); bound the drift tightly relative to logit magnitude.
  EXPECT_LT(max_abs_diff(ref_logits, opt_logits), 1e-3 * (1.0 + ref_logits.abs_max()));
}

TEST(CompilePasses, ConstantFoldComputesBnParameters) {
  ir::Graph g;
  const int x = g.add_input({Shape{1, 2, 2, 2}, ir::DType::kF32});
  Tensor gamma = Tensor::from_vector(Shape{2}, {2.0F, 0.5F});
  Tensor beta = Tensor::from_vector(Shape{2}, {1.0F, -1.0F});
  Tensor mean = Tensor::from_vector(Shape{2}, {0.5F, 0.25F});
  Tensor var = Tensor::from_vector(Shape{2}, {4.0F, 1.0F});
  ir::ConvAttrs attrs;
  attrs.bn_eps = 0.0;
  const int bn = g.add_node(
      ir::OpKind::kBatchNorm,
      {x, g.add_const(std::move(gamma), "g"), g.add_const(std::move(beta), "b"),
       g.add_const(std::move(mean), "m"), g.add_const(std::move(var), "v")},
      attrs);
  g.set_output(bn);

  compile::ConstantFoldPass fold;
  EXPECT_TRUE(fold.run(g));
  const ir::Node& affine = g.node(g.output());
  ASSERT_EQ(affine.op, ir::OpKind::kChannelAffine);
  const Tensor& scale = g.node(affine.inputs[1]).f32_data;
  const Tensor& shift = g.node(affine.inputs[2]).f32_data;
  EXPECT_FLOAT_EQ(scale[0], 1.0F);    // 2 / sqrt(4)
  EXPECT_FLOAT_EQ(scale[1], 0.5F);    // 0.5 / sqrt(1)
  EXPECT_FLOAT_EQ(shift[0], 0.5F);    // 1 − 0.5·1
  EXPECT_FLOAT_EQ(shift[1], -1.125F); // −1 − 0.25·0.5
}

TEST(CompilePasses, ZeroAddsDissolveAndGenericFoldEvaluates) {
  ir::Graph g;
  const int x = g.add_input({Shape{1, 1, 2, 2}, ir::DType::kF32});
  const int zero = g.add_const(Tensor(Shape{1, 1, 2, 2}), "zero");
  const int a = g.add_node(ir::OpKind::kAdd, {x, zero});  // x + 0 -> x
  // relu(c) on a constant folds to a new constant at compile time.
  Tensor c = Tensor::from_vector(Shape{1, 1, 2, 2}, {-1.0F, 2.0F, -3.0F, 4.0F});
  const int c_id = g.add_const(std::move(c), "c");
  const int relu_c = g.add_node(ir::OpKind::kRelu, {c_id});
  const int sum = g.add_node(ir::OpKind::kAdd, {a, relu_c});
  g.set_output(sum);

  compile::ConstantFoldPass fold;
  EXPECT_TRUE(fold.run(g));
  compile::DeadCodeElimPass dce;
  EXPECT_TRUE(dce.run(g));

  // Result: add(x, const{0,2,0,4}); the zero-add and relu are gone.
  const ir::Node& out = g.node(g.output());
  ASSERT_EQ(out.op, ir::OpKind::kAdd);
  EXPECT_EQ(out.inputs[0], g.input());
  const ir::Node& folded = g.node(out.inputs[1]);
  ASSERT_TRUE(folded.is_const());
  EXPECT_FLOAT_EQ(folded.f32_data[0], 0.0F);
  EXPECT_FLOAT_EQ(folded.f32_data[1], 2.0F);
  EXPECT_FLOAT_EQ(folded.f32_data[3], 4.0F);
  EXPECT_EQ(g.executed_node_count(), 1);
}

TEST(CompilePasses, FusionSkipsMultiUseProducers) {
  // conv feeding BOTH a relu and another consumer must not absorb the
  // relu (the second consumer needs the pre-activation value).
  ir::Graph g;
  const int x = g.add_input({Shape{1, 2, 4, 4}, ir::DType::kF32});
  Tensor w(Shape{2, 2, 1, 1});
  w.fill(1.0F);
  ir::ConvAttrs attrs;  // 1x1
  const int conv = g.add_node(ir::OpKind::kConv2d, {x, g.add_const(std::move(w), "w")}, attrs);
  const int relu = g.add_node(ir::OpKind::kRelu, {conv});
  const int sum = g.add_node(ir::OpKind::kAdd, {conv, relu});
  g.set_output(sum);

  compile::FuseConvBnReluPass fuse;
  EXPECT_FALSE(fuse.run(g));
  EXPECT_FALSE(g.node(conv).conv.fused_relu);
  EXPECT_EQ(g.node(sum).inputs[1], relu);
}

TEST(CompilePasses, PassManagerValidatesAfterEveryPass) {
  /// A deliberately corrupting pass must be caught by validation.
  class CorruptingPass final : public compile::Pass {
   public:
    std::string name() const override { return "corrupt"; }
    bool run(ir::Graph& graph) override {
      graph.node(graph.output()).type.dtype = ir::DType::kI8;  // stale type
      return true;
    }
  };
  ir::Graph g;
  const int x = g.add_input({Shape{1, 1, 2, 2}, ir::DType::kF32});
  g.set_output(g.add_node(ir::OpKind::kRelu, {x}));

  compile::PassManager pm;
  pm.add(std::make_unique<CorruptingPass>());
  EXPECT_THROW(pm.run(g), std::logic_error);
}

}  // namespace
}  // namespace micronas
