#include <gtest/gtest.h>

#include "src/proxies/linear_regions.hpp"

namespace micronas {
namespace {

CellNetConfig tiny_config() {
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  cfg.num_classes = 10;
  return cfg;
}

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

TEST(LinearRegions, CountWithinBounds) {
  Rng rng(1);
  LinearRegionOptions opts;
  opts.grid = 12;
  const auto res = count_linear_regions(all_op(nb201::Op::kConv3x3), tiny_config(), rng, opts);
  EXPECT_GE(res.region_count, 1.0);
  EXPECT_LE(res.region_count, static_cast<double>(res.samples_per_repeat));
  EXPECT_EQ(res.samples_per_repeat, 144);
}

TEST(LinearRegions, ConvCellMoreExpressiveThanSkipCell) {
  // The central expressivity claim: conv-heavy cells carve more linear
  // regions than parameter-free cells. Averaged over repeats to be
  // robust to the random plane.
  Rng rng(2);
  LinearRegionOptions opts;
  opts.grid = 14;
  opts.repeats = 3;
  const auto conv = count_linear_regions(all_op(nb201::Op::kConv3x3), tiny_config(), rng, opts);
  const auto skip = count_linear_regions(all_op(nb201::Op::kSkipConnect), tiny_config(), rng, opts);
  EXPECT_GT(conv.region_count, skip.region_count);
}

TEST(LinearRegions, DisconnectedCellHasFewRegions) {
  // All-none cell: the only ReLUs are in stem/reductions whose input is
  // later zeroed; patterns still vary with the input, but the deep net
  // patterns don't. Expect far fewer regions than a full conv cell.
  Rng rng(3);
  LinearRegionOptions opts;
  opts.grid = 14;
  opts.repeats = 2;
  const auto none = count_linear_regions(nb201::Genotype{}, tiny_config(), rng, opts);
  const auto conv = count_linear_regions(all_op(nb201::Op::kConv3x3), tiny_config(), rng, opts);
  EXPECT_LT(none.region_count, conv.region_count);
}

TEST(LinearRegions, DeterministicGivenSeed) {
  LinearRegionOptions opts;
  opts.grid = 10;
  Rng a(7), b(7);
  const auto ra = count_linear_regions(all_op(nb201::Op::kConv1x1), tiny_config(), a, opts);
  const auto rb = count_linear_regions(all_op(nb201::Op::kConv1x1), tiny_config(), b, opts);
  EXPECT_DOUBLE_EQ(ra.region_count, rb.region_count);
}

TEST(LinearRegions, SupernetEvaluates) {
  Rng rng(8);
  LinearRegionOptions opts;
  opts.grid = 10;
  const auto res =
      count_linear_regions(edge_ops_from_opset(nb201::OpSet::full()), tiny_config(), rng, opts);
  EXPECT_GE(res.region_count, 1.0);
}

TEST(LinearRegions, RejectsBadOptions) {
  Rng rng(9);
  LinearRegionOptions opts;
  opts.grid = 1;
  EXPECT_THROW(count_linear_regions(nb201::Genotype{}, tiny_config(), rng, opts),
               std::invalid_argument);
  opts.grid = 10;
  opts.repeats = 0;
  EXPECT_THROW(count_linear_regions(nb201::Genotype{}, tiny_config(), rng, opts),
               std::invalid_argument);
}

TEST(LinearRegions, WiderGridFindsAtLeastAsManyRegions) {
  Rng a(10), b(10);
  LinearRegionOptions small;
  small.grid = 8;
  LinearRegionOptions big;
  big.grid = 20;
  const auto rs = count_linear_regions(all_op(nb201::Op::kConv3x3), tiny_config(), a, small);
  const auto rb = count_linear_regions(all_op(nb201::Op::kConv3x3), tiny_config(), b, big);
  // Same seed -> same plane and init; a denser grid cannot see fewer
  // distinct patterns in expectation. Allow slack for the RNG consuming
  // pattern differences.
  EXPECT_GE(rb.region_count * 1.1, rs.region_count);
}

}  // namespace
}  // namespace micronas
