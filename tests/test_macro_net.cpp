#include <gtest/gtest.h>

#include "src/net/macro_net.hpp"

namespace micronas {
namespace {

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

TEST(MacroNet, SkeletonStructure) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  // 3 stages x 5 cells.
  EXPECT_EQ(m.cell_starts.size(), 15U);
  // First layer is the stem conv 3->16 at 32x32.
  const LayerSpec& stem = m.layers.front();
  EXPECT_EQ(stem.kind, LayerKind::kConv);
  EXPECT_EQ(stem.cin, 3);
  EXPECT_EQ(stem.cout, 16);
  EXPECT_EQ(stem.h, 32);
  // Last layer is the classifier.
  EXPECT_EQ(m.layers.back().kind, LayerKind::kLinear);
  EXPECT_EQ(m.layers.back().cout, 10);
}

TEST(MacroNet, AllNoneEmitsNoCellLayers) {
  const MacroModel none = build_macro_model(nb201::Genotype{});
  // stem + 2 reductions (4 layers each) + gap + fc = 11 layers.
  EXPECT_EQ(none.layers.size(), 11U);
}

TEST(MacroNet, AllConvCellLayerCount) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  // Per cell: 6 convs + (node1: 0 adds, node2: 1 add, node3: 2 adds) = 9.
  // 15 cells * 9 + 11 skeleton = 146.
  EXPECT_EQ(m.layers.size(), 146U);
}

TEST(MacroNet, ChannelsDoubleAcrossStages) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  // Cells of stage 1 run at 16 channels and 32x32, stage 2 at 32 and
  // 16x16, stage 3 at 64 and 8x8.
  const LayerSpec& first_cell_conv = m.layers[m.cell_starts[0]];
  EXPECT_EQ(first_cell_conv.cin, 16);
  EXPECT_EQ(first_cell_conv.h, 32);
  const LayerSpec& stage2_conv = m.layers[m.cell_starts[5]];
  EXPECT_EQ(stage2_conv.cin, 32);
  EXPECT_EQ(stage2_conv.h, 16);
  const LayerSpec& stage3_conv = m.layers[m.cell_starts[10]];
  EXPECT_EQ(stage3_conv.cin, 64);
  EXPECT_EQ(stage3_conv.h, 8);
}

TEST(MacroNet, ReductionHalvesSpatial) {
  const MacroModel m = build_macro_model(nb201::Genotype{});
  // Layers after the stem: reduction conv3x3 s2 16->32 at 32x32.
  const LayerSpec& red = m.layers[1];
  EXPECT_EQ(red.kind, LayerKind::kConv);
  EXPECT_EQ(red.stride, 2);
  EXPECT_EQ(red.cin, 16);
  EXPECT_EQ(red.cout, 32);
  EXPECT_EQ(red.out_h, 16);
}

TEST(MacroNet, MacsComputation) {
  LayerSpec conv;
  conv.kind = LayerKind::kConv;
  conv.cin = 16;
  conv.cout = 32;
  conv.kernel = 3;
  conv.h = 8;
  conv.w = 8;
  conv.out_h = 8;
  conv.out_w = 8;
  EXPECT_EQ(conv.macs(), 9LL * 16 * 32 * 64);

  LayerSpec skip;
  skip.kind = LayerKind::kSkip;
  EXPECT_EQ(skip.macs(), 0);
}

TEST(MacroNet, CustomConfigRespected) {
  MacroNetConfig cfg;
  cfg.input_size = 16;
  cfg.base_channels = 8;
  cfg.cells_per_stage = 2;
  cfg.num_classes = 100;
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv1x1), cfg);
  EXPECT_EQ(m.cell_starts.size(), 6U);
  EXPECT_EQ(m.layers.front().cout, 8);
  EXPECT_EQ(m.layers.back().cout, 100);
}

TEST(MacroNet, SpecToStringHumanReadable) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const std::string s = m.layers.front().to_string();
  EXPECT_NE(s.find("conv"), std::string::npos);
  EXPECT_NE(s.find("k3"), std::string::npos);
}

TEST(MacroNet, RejectsBadConfig) {
  MacroNetConfig cfg;
  cfg.cells_per_stage = 0;
  EXPECT_THROW(build_macro_model(nb201::Genotype{}, cfg), std::invalid_argument);
}

TEST(MacroNet, SkipCellEmitsSkipSpecs) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kSkipConnect));
  int skips = 0;
  for (const auto& spec : m.layers) {
    if (spec.kind == LayerKind::kSkip) ++skips;
  }
  EXPECT_EQ(skips, 6 * 15);  // 6 edges x 15 cells
}

}  // namespace
}  // namespace micronas
