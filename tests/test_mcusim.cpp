#include <gtest/gtest.h>

#include "src/mcusim/cortex_m7.hpp"
#include "src/mcusim/profiler.hpp"

namespace micronas {
namespace {

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

LayerSpec conv_spec(int c, int hw, int k) {
  LayerSpec s;
  s.kind = LayerKind::kConv;
  s.cin = c;
  s.cout = c;
  s.h = hw;
  s.w = hw;
  s.kernel = k;
  s.stride = 1;
  s.pad = k / 2;
  s.out_h = hw;
  s.out_w = hw;
  return s;
}

TEST(McuSim, LayerCyclesPositiveAndOrdered) {
  const McuSpec mcu;
  const double c3 = layer_cycles(conv_spec(16, 32, 3), mcu);
  const double c1 = layer_cycles(conv_spec(16, 32, 1), mcu);
  EXPECT_GT(c3, c1);  // 9x the MACs at lower throughput
  EXPECT_GT(c1, mcu.layer_overhead_cycles);
}

TEST(McuSim, Conv1x1MoreEfficientPerMac) {
  const McuSpec mcu;
  const LayerSpec s3 = conv_spec(16, 32, 3);
  const LayerSpec s1 = conv_spec(16, 32, 1);
  const double per_mac_3 = (layer_cycles(s3, mcu) - mcu.layer_overhead_cycles) / s3.macs();
  const double per_mac_1 = (layer_cycles(s1, mcu) - mcu.layer_overhead_cycles) / s1.macs();
  EXPECT_LT(per_mac_1, per_mac_3);
}

TEST(McuSim, NetworkSimulationDeterministicWithoutJitter) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const SimulatedRun a = simulate_network(m);
  const SimulatedRun b = simulate_network(m);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.per_layer_cycles.size(), m.layers.size());
}

TEST(McuSim, JitterPerturbsRuns) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv1x1));
  Rng rng(1);
  const double a = simulate_network(m, McuSpec{}, &rng).latency_ms;
  const double b = simulate_network(m, McuSpec{}, &rng).latency_ms;
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, b, 0.1 * a);  // ~1 % jitter, not chaos
}

TEST(McuSim, LatencyOrderingMatchesComputeIntensity) {
  const double l_skip = simulate_network(build_macro_model(all_op(nb201::Op::kSkipConnect))).latency_ms;
  const double l_pool = simulate_network(build_macro_model(all_op(nb201::Op::kAvgPool3x3))).latency_ms;
  const double l_1x1 = simulate_network(build_macro_model(all_op(nb201::Op::kConv1x1))).latency_ms;
  const double l_3x3 = simulate_network(build_macro_model(all_op(nb201::Op::kConv3x3))).latency_ms;
  EXPECT_LT(l_skip, l_pool);
  EXPECT_LT(l_pool, l_1x1);
  EXPECT_LT(l_1x1, l_3x3);
  // The conv3x3-vs-conv1x1 latency gap is what the hardware-aware
  // search exploits; require a healthy factor.
  EXPECT_GT(l_3x3 / l_1x1, 2.0);
}

TEST(McuSim, RealisticLatencyMagnitude) {
  // A ~190 MFLOP fp32 net on a 216 MHz M7 takes high hundreds of ms.
  const double ms = simulate_network(build_macro_model(all_op(nb201::Op::kConv3x3))).latency_ms;
  EXPECT_GT(ms, 200.0);
  EXPECT_LT(ms, 5000.0);
}

TEST(McuSim, SramPressureDetected) {
  // The stock skeleton at 32x32 exceeds a 64 KB budget but fits 320 KB
  // at its peak working set... verify the flag flips with the budget.
  McuSpec tight;
  tight.sram_budget_bytes = 16 * 1024;
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv3x3));
  const SimulatedRun pressured = simulate_network(m, tight);
  EXPECT_TRUE(pressured.sram_pressure);

  McuSpec roomy;
  roomy.sram_budget_bytes = 16LL * 1024 * 1024;
  const SimulatedRun fine = simulate_network(m, roomy);
  EXPECT_FALSE(fine.sram_pressure);
  EXPECT_GT(pressured.latency_ms, fine.latency_ms);
}

TEST(McuSim, MeasureLatencyMedianStable) {
  const MacroModel m = build_macro_model(all_op(nb201::Op::kConv1x1));
  Rng rng(5);
  const double med = measure_latency_ms(m, McuSpec{}, rng, 9);
  const double det = simulate_network(m).latency_ms;
  EXPECT_NEAR(med, det, 0.02 * det);
  EXPECT_THROW(measure_latency_ms(m, McuSpec{}, rng, 0), std::invalid_argument);
}

TEST(Profiler, EnumeratesAllSearchSpaceShapes) {
  const auto layers = enumerate_search_space_layers();
  // Must include conv3x3 and conv1x1 cell ops at all three stage widths
  // (16/32/64), pools, skips, adds, stem, reductions, gap, fc.
  int conv3_cell = 0, conv1_cell = 0, pools = 0, skips = 0;
  for (const auto& s : layers) {
    if (s.kind == LayerKind::kConv && s.kernel == 3 && s.cin == s.cout && s.stride == 1) ++conv3_cell;
    if (s.kind == LayerKind::kConv && s.kernel == 1 && s.cin == s.cout && s.stride == 1) ++conv1_cell;
    if (s.kind == LayerKind::kAvgPool) ++pools;
    if (s.kind == LayerKind::kSkip) ++skips;
  }
  EXPECT_GE(conv3_cell, 3);
  EXPECT_GE(conv1_cell, 3);
  EXPECT_GE(pools, 3);
  EXPECT_GE(skips, 3);
}

TEST(Profiler, MedianRobustToJitter) {
  const McuSpec mcu;
  Rng rng(7);
  const LayerSpec spec = conv_spec(32, 16, 3);
  ProfilerOptions opts;
  opts.runs_per_op = 15;
  const double profiled = profile_layer(spec, mcu, rng, opts);
  const double truth = layer_cycles(spec, mcu);
  EXPECT_NEAR(profiled, truth, 0.02 * truth);
}

TEST(Profiler, DeterministicModeExact) {
  const McuSpec mcu;
  Rng rng(8);
  ProfilerOptions opts;
  opts.deterministic = true;
  const LayerSpec spec = conv_spec(64, 8, 1);
  EXPECT_DOUBLE_EQ(profile_layer(spec, mcu, rng, opts), layer_cycles(spec, mcu));
}

TEST(Profiler, ConstantOverheadMatchesSpec) {
  const McuSpec mcu;
  Rng rng(9);
  ProfilerOptions opts;
  opts.deterministic = true;
  const double ms = profile_constant_overhead_ms(mcu, rng, opts);
  EXPECT_DOUBLE_EQ(ms, mcu.network_overhead_cycles / mcu.clock_hz * 1e3);
}

}  // namespace
}  // namespace micronas
