#include <gtest/gtest.h>

#include <cmath>

#include "src/proxies/zero_cost.hpp"

namespace micronas {
namespace {

CellNetConfig tiny_config() {
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  cfg.num_classes = 10;
  return cfg;
}

nb201::Genotype all_op(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

Tensor probe(int n, const CellNetConfig& cfg, Rng& rng) {
  Tensor t(Shape{n, cfg.input_channels, cfg.input_size, cfg.input_size});
  rng.fill_normal(t.data());
  return t;
}

TEST(Synflow, PositiveAndFinite) {
  Rng rng(1);
  const auto res = synflow_score(all_op(nb201::Op::kConv3x3), tiny_config(), rng);
  EXPECT_GT(res.score, 0.0);
  EXPECT_TRUE(std::isfinite(res.score));
  EXPECT_DOUBLE_EQ(res.log_score, std::log1p(res.score));
}

TEST(Synflow, MoreCapacityMoreSaliency) {
  Rng a(2), b(2);
  const auto conv = synflow_score(all_op(nb201::Op::kConv3x3), tiny_config(), a);
  const auto skip = synflow_score(all_op(nb201::Op::kSkipConnect), tiny_config(), b);
  EXPECT_GT(conv.score, skip.score);
}

TEST(Synflow, DisconnectedCellStillHasSkeletonSaliency) {
  // Saliency flows through stem/reductions/head even when the cell
  // zeroes everything... except the zeroed cell blocks the path, so
  // the score collapses to (numerically) zero.
  Rng rng(3);
  const auto none = synflow_score(nb201::Genotype{}, tiny_config(), rng);
  Rng rng2(3);
  const auto conv = synflow_score(all_op(nb201::Op::kConv1x1), tiny_config(), rng2);
  EXPECT_LT(none.score, conv.score * 1e-6);
}

TEST(Synflow, DeterministicGivenSeed) {
  Rng a(7), b(7);
  EXPECT_DOUBLE_EQ(synflow_score(all_op(nb201::Op::kConv1x1), tiny_config(), a).score,
                   synflow_score(all_op(nb201::Op::kConv1x1), tiny_config(), b).score);
}

TEST(GradNorm, PositiveForTrainableCell) {
  Rng rng(4);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(5);
  const Tensor images = probe(4, cfg, data_rng);
  const auto res = grad_norm_score(all_op(nb201::Op::kConv3x3), cfg, images, rng);
  EXPECT_GT(res.grad_norm, 0.0);
}

TEST(GradNorm, ScalesWithBatch) {
  // Sum-of-logits gradients accumulate over samples: a larger batch
  // cannot shrink the norm for the same net.
  Rng rng_a(6), rng_b(6);
  const CellNetConfig cfg = tiny_config();
  Rng data_rng(7);
  const Tensor big = probe(8, cfg, data_rng);
  Tensor small(Shape{2, cfg.input_channels, cfg.input_size, cfg.input_size});
  for (std::size_t i = 0; i < small.numel(); ++i) small[i] = big[i];
  const auto r_small = grad_norm_score(all_op(nb201::Op::kConv1x1), cfg, small, rng_a);
  const auto r_big = grad_norm_score(all_op(nb201::Op::kConv1x1), cfg, big, rng_b);
  EXPECT_GT(r_big.grad_norm, 0.0);
  EXPECT_GT(r_small.grad_norm, 0.0);
}

TEST(GradNorm, RejectsBadInput) {
  Rng rng(8);
  Tensor bad(Shape{4, 4});
  EXPECT_THROW(grad_norm_score(nb201::Genotype{}, tiny_config(), bad, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace micronas
