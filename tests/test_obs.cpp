// Observability subsystem tests: span recording semantics (nesting,
// thread attribution, ring wraparound, the disabled no-op), the
// Chrome-trace export round-tripping through the strict JSON parser,
// histogram "le"-bucket edge cases, the metrics registry JSON schema,
// the MICRONAS_LOG_LEVEL env hook, and a writers-vs-snapshot stress
// test that the CI TSan job runs to certify the lock-free ring
// handshake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/log.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace micronas {
namespace {

/// Every trace test owns the global recorder: start clean, end clean.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable_tracing();
    obs::reset_trace();
  }
  void TearDown() override {
    obs::disable_tracing();
    obs::reset_trace();
  }
};

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  {
    obs::Span span("never");
    EXPECT_FALSE(span.active());
    span.tag("ignored", std::string("value"));  // must be a no-op
  }
  EXPECT_TRUE(obs::snapshot_trace().empty());
  EXPECT_EQ(obs::dropped_events(), 0U);
}

TEST_F(TraceTest, SpanStraddlingDisableSkipsRecording) {
  obs::enable_tracing();
  {
    obs::Span span("straddle");
    EXPECT_TRUE(span.active());
    obs::disable_tracing();
  }  // destructor sees tracing off -> drop, never a torn record
  EXPECT_TRUE(obs::snapshot_trace().empty());
}

TEST_F(TraceTest, NestingIsReconstructibleFromOneThread) {
  obs::enable_tracing();
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
      inner.tag("depth", static_cast<long long>(2));
    }
    {
      OBS_SPAN("inner2");
    }
  }
  const std::vector<obs::TraceEvent> events = obs::snapshot_trace();
  ASSERT_EQ(events.size(), 3U);

  // Events are recorded at destruction: children retire before their
  // parent, so seq orders inner, inner2, outer.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "inner2");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);

  // Same thread, and interval containment holds: the parent's window
  // covers both children, and the siblings do not overlap.
  const obs::TraceEvent& outer_ev = events[2];
  for (const obs::TraceEvent& child : {events[0], events[1]}) {
    EXPECT_EQ(child.tid, outer_ev.tid);
    EXPECT_GE(child.start_us, outer_ev.start_us);
    EXPECT_LE(child.start_us + child.dur_us, outer_ev.start_us + outer_ev.dur_us + 1e-6);
  }
  EXPECT_LE(events[0].start_us + events[0].dur_us, events[1].start_us + 1e-6);

  ASSERT_EQ(events[0].tags.size(), 1U);
  EXPECT_STREQ(events[0].tags[0].first, "depth");
  EXPECT_EQ(events[0].tags[0].second, "2");
}

TEST_F(TraceTest, ThreadsGetDistinctTidsAndPrivateSequences) {
  obs::enable_tracing();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        OBS_SPAN("worker");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<obs::TraceEvent> events = obs::snapshot_trace();
  std::map<int, std::vector<std::uint64_t>> seq_by_tid;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "worker") seq_by_tid[e.tid].push_back(e.seq);
  }
  ASSERT_EQ(seq_by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, seqs] : seq_by_tid) {
    EXPECT_GE(tid, 0);
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kSpansPerThread)) << "tid " << tid;
    // snapshot_trace sorts by (tid, seq); a thread's sequence is
    // strictly monotone — the per-thread ordering is trustworthy.
    for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_LT(seqs[i - 1], seqs[i]);
  }
}

TEST_F(TraceTest, RingWraparoundKeepsNewestAndCountsDrops) {
  obs::reset_trace();
  obs::set_ring_capacity(64);  // applies to rings registered after
  std::thread recorder([] {
    obs::enable_tracing();
    for (int i = 0; i < 200; ++i) {
      OBS_SPAN("wrap");
    }
  });
  recorder.join();

  const std::uint64_t dropped = obs::dropped_events();
  const std::vector<obs::TraceEvent> events = obs::snapshot_trace();
  std::vector<const obs::TraceEvent*> wraps;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "wrap") wraps.push_back(&e);
  }
  ASSERT_EQ(wraps.size(), 64U);  // ring holds exactly its capacity
  EXPECT_EQ(dropped, 200U - 64U);
  // The survivors are the *newest* 200-64 .. 199 (seq starts at the
  // ring's first record; relative check keeps it robust).
  for (std::size_t i = 1; i < wraps.size(); ++i) {
    EXPECT_EQ(wraps[i]->seq, wraps[i - 1]->seq + 1);
  }
  obs::set_ring_capacity(1 << 16);  // restore the default for later tests
}

TEST_F(TraceTest, ChromeTraceRoundTripsThroughStrictParser) {
  obs::enable_tracing();
  {
    obs::Span span("qconv2d");
    span.tag("kernel", std::string("im2col-gemm"));
    span.tag("bytes", static_cast<long long>(16384));
  }
  { OBS_SPAN("rt.run"); }
  obs::disable_tracing();

  const json::Json doc = obs::chrome_trace_json();
  // Round trip: our serializer's output must satisfy our strict parser.
  const json::Json parsed = json::Json::parse(doc.dump());
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");

  const json::JsonArray& events = parsed.at("traceEvents").as_array();
  std::size_t meta = 0, complete = 0;
  bool saw_tagged = false;
  for (const json::Json& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 1.0);
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    EXPECT_TRUE(e.at("args").is_object());
    if (e.at("name").as_string() == "qconv2d") {
      saw_tagged = true;
      EXPECT_EQ(e.at("args").at("kernel").as_string(), "im2col-gemm");
      EXPECT_EQ(e.at("args").at("bytes").as_string(), "16384");
    }
  }
  EXPECT_GE(meta, 1U);
  EXPECT_EQ(complete, 2U);
  EXPECT_TRUE(saw_tagged);
}

TEST_F(TraceTest, SnapshotWhileRecordingIsRaceFree) {
  // The TSan certification target (CI runs this test under
  // -fsanitize=thread): writer threads hammer spans while the main
  // thread repeatedly snapshots (each snapshot disables tracing,
  // quiesces the rings, reads them) and re-enables.
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  obs::enable_tracing();
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::Span span("stress");
        span.tag("i", static_cast<long long>(1));
      }
    });
  }
  std::size_t total = 0;
  // At least 50 contended rounds; keep going (bounded) until a writer
  // has landed an event — on a loaded CI machine the writers can be
  // descheduled for a whole round, so each round leaves tracing
  // enabled for a real window before snapshotting.
  for (int round = 0; round < 50 || (total == 0 && round < 2000); ++round) {
    obs::enable_tracing();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    total += obs::snapshot_trace().size();  // disables tracing
    (void)obs::dropped_events();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  obs::disable_tracing();
  EXPECT_GT(total, 0U);
}

// ------------------------------------------------------------ histograms

TEST(ObsHistogram, LeBucketBoundariesAreInclusive) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1
  h.observe(1.0);  // <= 1 (boundary lands in its own bucket, "le")
  h.observe(1.5);  // <= 2
  h.observe(2.0);  // <= 2
  h.observe(4.0);  // <= 4
  h.observe(4.1);  // +inf
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4U);
  EXPECT_EQ(buckets[0], 2U);
  EXPECT_EQ(buckets[1], 2U);
  EXPECT_EQ(buckets[2], 1U);
  EXPECT_EQ(buckets[3], 1U);
  EXPECT_EQ(h.count(), 6U);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1);
}

TEST(ObsHistogram, PercentilesInterpolateAndSaturateAtInf) {
  obs::Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);  // all in the first bucket
  EXPECT_GT(h.percentile(0.5), 0.0);
  EXPECT_LE(h.percentile(0.5), 10.0);

  obs::Histogram tail({1.0});
  tail.observe(100.0);  // +inf bucket only
  // The histogram cannot resolve past its largest finite bound.
  EXPECT_DOUBLE_EQ(tail.percentile(0.99), 1.0);

  obs::Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(ObsHistogram, NanCountsTowardInfBucketNotSum) {
  obs::Histogram h({1.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(0.5);
  EXPECT_EQ(h.count(), 2U);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  EXPECT_EQ(buckets[0], 1U);  // the 0.5
  EXPECT_EQ(buckets[1], 1U);  // the NaN
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);  // NaN never poisons the sum
}

TEST(ObsHistogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::runtime_error);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::runtime_error);
  // Degenerate but legal: no finite bounds means everything lands in
  // the +inf bucket and percentiles cannot resolve (report 0).
  obs::Histogram inf_only({});
  inf_only.observe(42.0);
  EXPECT_EQ(inf_only.count(), 1U);
  ASSERT_EQ(inf_only.bucket_counts().size(), 1U);
  EXPECT_EQ(inf_only.bucket_counts()[0], 1U);
  EXPECT_DOUBLE_EQ(inf_only.percentile(0.5), 0.0);
}

// -------------------------------------------------------------- registry

TEST(ObsRegistry, InternsHandlesAndRoundTripsJson) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("test.obs.counter");
  EXPECT_EQ(&c, &reg.counter("test.obs.counter"));  // same handle
  c.reset();
  c.add(3);
  reg.gauge("test.obs.gauge").set(0.75);
  obs::Histogram& h = reg.histogram("test.obs.hist", {1.0, 10.0});
  h.reset();
  h.observe(0.5);
  h.observe(5.0);

  // Same name with different bounds is a registration bug, not a new
  // histogram.
  EXPECT_THROW(reg.histogram("test.obs.hist", {2.0, 20.0}), std::runtime_error);

  const json::Json parsed = json::Json::parse(reg.to_json().dump());
  EXPECT_DOUBLE_EQ(parsed.at("schema_version").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(parsed.at("counters").at("test.obs.counter").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("test.obs.gauge").as_number(), 0.75);
  const json::Json& hist = parsed.at("histograms").at("test.obs.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 5.5);
  EXPECT_EQ(hist.at("bucket_counts").as_array().size(), 3U);  // 2 bounds + inf

  const std::string table = reg.render_table("test.obs.");
  EXPECT_NE(table.find("test.obs.counter"), std::string::npos);
  EXPECT_NE(table.find("test.obs.hist"), std::string::npos);
  EXPECT_EQ(reg.render_table("no.such.prefix."), "");

  c.reset();
  reg.gauge("test.obs.gauge").reset();
  h.reset();
}

// ------------------------------------------------------------------- log

TEST(ObsLog, EnvVarControlsStartupLevel) {
  const LogLevel before = log_level();
  ::setenv("MICRONAS_LOG_LEVEL", "warn", 1);
  EXPECT_EQ(init_log_level_from_env(), LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  ::setenv("MICRONAS_LOG_LEVEL", "DEBUG", 1);  // case-insensitive
  EXPECT_EQ(init_log_level_from_env(), LogLevel::kDebug);
  ::setenv("MICRONAS_LOG_LEVEL", "not-a-level", 1);
  EXPECT_EQ(init_log_level_from_env(), LogLevel::kInfo);  // fallback
  ::unsetenv("MICRONAS_LOG_LEVEL");
  set_log_level(before);
}

}  // namespace
}  // namespace micronas
