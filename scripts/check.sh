#!/usr/bin/env bash
# Tier-1 verify + example smoke test, in one command.
#
#   scripts/check.sh                    # configure, build, ctest, smoke tests
#   scripts/check.sh --sanitize         # same under ASan+UBSan (build-asan/)
#   scripts/check.sh --sanitize=thread  # same under TSan (build-tsan/)
#   scripts/check.sh --werror           # warnings are errors (CI default)
#   scripts/check.sh --portable         # scalar-reference kernels only (build-portable/)
#   JOBS=4 scripts/check.sh             # cap build/test parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

BUILD_DIR=build
CMAKE_FLAGS=""
for arg in "$@"; do
  case "$arg" in
    --sanitize|--sanitize=address)
      BUILD_DIR=build-asan
      CMAKE_FLAGS="$CMAKE_FLAGS -DMICRONAS_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo"
      export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
      ;;
    --sanitize=thread)
      BUILD_DIR=build-tsan
      CMAKE_FLAGS="$CMAKE_FLAGS -DMICRONAS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo"
      export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
      ;;
    --werror)
      CMAKE_FLAGS="$CMAKE_FLAGS -DMICRONAS_WERROR=ON"
      ;;
    --portable)
      BUILD_DIR=build-portable
      CMAKE_FLAGS="$CMAKE_FLAGS -DMICRONAS_PORTABLE=ON"
      ;;
    *)
      echo "usage: $0 [--sanitize[=address|thread]] [--werror] [--portable]" >&2
      exit 2
      ;;
  esac
done

echo "== configure ($BUILD_DIR) =="
# shellcheck disable=SC2086  # CMAKE_FLAGS is intentionally word-split
cmake -B "$BUILD_DIR" -S . $CMAKE_FLAGS >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

echo "== smoke: quickstart =="
"./$BUILD_DIR/quickstart" --threads 2 >/dev/null
echo "quickstart OK"

echo "== smoke: bench_runner (eval_engine, small) =="
"./$BUILD_DIR/bench_runner" --filter eval_engine --set samples=8,sweep=200,max-threads=2 \
  --out "$BUILD_DIR/BENCH_smoke.json"
echo "bench_runner OK"

echo "== smoke: bench_compare (self-compare passes) =="
"./$BUILD_DIR/bench_compare" "$BUILD_DIR/BENCH_smoke.json" "$BUILD_DIR/BENCH_smoke.json" \
  --threshold 0.25 >/dev/null
echo "bench_compare OK"

echo "== smoke: pareto sweep (two targets, tiny) =="
"./$BUILD_DIR/pareto_sweep" --mcus m4,m7 --pop 8 --gens 2 --threads 2 >/dev/null
echo "pareto_sweep OK"

echo "== smoke: compile_and_run (lower + passes + int8 execute, reduced skeleton) =="
"./$BUILD_DIR/compile_and_run" --cells 1 --input 16 --runs 2 --threads 2 >/dev/null
echo "compile_and_run OK"

echo "== smoke: serve_bench (compile -> save -> load -> golden hash -> batched serve) =="
"./$BUILD_DIR/serve_bench" --clients 2 --requests 8 --max-batch 4 --threads 2 \
  --out "$BUILD_DIR/smoke.mnpkg" --golden tests/golden/compile_report.golden >/dev/null
echo "serve_bench OK"

echo "== smoke: model registry (two packages, one process: mmap + dedup + routed serve) =="
"./$BUILD_DIR/serve_bench" --mode multi --clients 2 --requests 8 --max-batch 4 --threads 2 \
  --out "$BUILD_DIR/smoke_multi1.mnpkg" --out2 "$BUILD_DIR/smoke_multi2.mnpkg" >/dev/null
echo "model registry OK"

echo "== smoke: observability (trace + metrics written, strict re-parse) =="
"./$BUILD_DIR/compile_and_run" --cells 1 --input 16 --runs 1 --threads 1 \
  --trace-out "$BUILD_DIR/smoke_trace.json" \
  --metrics-out "$BUILD_DIR/smoke_metrics.json" >/dev/null 2>&1
"./$BUILD_DIR/json_validate" --require-key traceEvents "$BUILD_DIR/smoke_trace.json" >/dev/null
"./$BUILD_DIR/json_validate" --require-key histograms "$BUILD_DIR/smoke_metrics.json" >/dev/null
echo "observability OK"

echo "ALL CHECKS PASSED"
