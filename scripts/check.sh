#!/usr/bin/env bash
# Tier-1 verify + example smoke test, in one command.
#
#   scripts/check.sh              # configure, build, ctest, smoke tests
#   scripts/check.sh --sanitize   # same under ASan+UBSan (build-asan/)
#   JOBS=4 scripts/check.sh       # cap build/test parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

BUILD_DIR=build
CMAKE_FLAGS=""
if [[ "${1:-}" == "--sanitize" ]]; then
  BUILD_DIR=build-asan
  CMAKE_FLAGS="-DMICRONAS_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
elif [[ $# -gt 0 ]]; then
  echo "usage: $0 [--sanitize]" >&2
  exit 2
fi

echo "== configure ($BUILD_DIR) =="
# shellcheck disable=SC2086  # CMAKE_FLAGS is intentionally word-split
cmake -B "$BUILD_DIR" -S . $CMAKE_FLAGS >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

echo "== smoke: quickstart =="
"./$BUILD_DIR/quickstart" --threads 2 >/dev/null
echo "quickstart OK"

echo "== smoke: eval engine bench (small) =="
"./$BUILD_DIR/bench_eval_engine" --samples 8 --sweep 200 --max-threads 2 >/dev/null
echo "bench_eval_engine OK"

echo "== smoke: pareto sweep (two targets, tiny) =="
"./$BUILD_DIR/pareto_sweep" --mcus m4,m7 --pop 8 --gens 2 --threads 2 >/dev/null
echo "pareto_sweep OK"

echo "ALL CHECKS PASSED"
