#!/usr/bin/env bash
# Tier-1 verify + example smoke test, in one command.
#
#   scripts/check.sh            # configure, build, ctest, quickstart smoke
#   JOBS=4 scripts/check.sh     # cap build/test parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== configure =="
cmake -B build -S . >/dev/null

echo "== build =="
cmake --build build -j "$JOBS"

echo "== ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== smoke: quickstart =="
./build/quickstart --threads 2 >/dev/null
echo "quickstart OK"

echo "== smoke: eval engine bench (small) =="
./build/bench_eval_engine --samples 8 --sweep 200 --max-threads 2 >/dev/null
echo "bench_eval_engine OK"

echo "ALL CHECKS PASSED"
