#!/usr/bin/env bash
# Regenerate the golden end-to-end regression file
# (tests/golden/e2e_search.golden) after an INTENTIONAL behaviour
# change, then show what moved so the diff can be committed alongside
# the change that caused it.
#
#   scripts/update_golden.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target test_golden_e2e >/dev/null

MICRONAS_UPDATE_GOLDEN=1 ./build/test_golden_e2e

echo
git --no-pager diff -- tests/golden || true
