#!/usr/bin/env bash
# Regenerate the golden regression fixtures (tests/golden/*.golden:
# the e2e search result, the compile report, and the serialized model
# package layout) after an INTENTIONAL behaviour change, then show
# what moved so the diff can be committed alongside the change that
# caused it.
#
#   scripts/update_golden.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target test_golden_e2e --target test_compile_e2e \
  --target test_serialize >/dev/null

MICRONAS_UPDATE_GOLDEN=1 ./build/test_golden_e2e
MICRONAS_UPDATE_GOLDEN=1 ./build/test_compile_e2e --gtest_filter='CompileGoldenE2e.*'
MICRONAS_UPDATE_GOLDEN=1 ./build/test_serialize --gtest_filter='SerializeGolden.PackageLayoutMatchesGolden'

echo
git --no-pager diff -- tests/golden || true
