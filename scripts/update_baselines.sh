#!/usr/bin/env bash
# Regenerate the checked-in perf baselines (bench/baselines/*.json)
# after an INTENTIONAL performance change, then show what moved so the
# new baseline can be committed alongside the change that caused it.
# Mirrors scripts/update_golden.sh for the golden e2e fixture.
#
#   scripts/update_baselines.sh
set -euo pipefail

cd "$(dirname "$0")/.."

scripts/bench.sh

mkdir -p bench/baselines
# Old baseline (if any) drives the before/after verdict table.
if [[ -f bench/baselines/BENCH_tier1.json ]]; then
  ./build/bench_compare bench/baselines/BENCH_tier1.json BENCH_tier1.json \
    --threshold "${BENCH_THRESHOLD:-0.25}" --allow-missing || true
fi
cp BENCH_tier1.json bench/baselines/BENCH_tier1.json

echo
git --no-pager diff --stat -- bench/baselines || true
echo "bench/baselines/BENCH_tier1.json updated — commit it with the change that moved the numbers."
