#!/usr/bin/env bash
# Build Release and run the benchmark suites through bench_runner,
# emitting one canonical BENCH_*.json telemetry document (schema
# documented in bench/harness.hpp and docs/ARCHITECTURE.md).
#
#   scripts/bench.sh                # tier-1 suites -> BENCH_tier1.json
#   scripts/bench.sh --all          # every suite   -> BENCH_all.json
#   scripts/bench.sh --compare      # also gate vs bench/baselines/ (25 %)
#   BENCH_COUNTER_THRESHOLD=0.001 scripts/bench.sh --compare   # gate counters too
#   BENCH_FILTER=compile.memory_plan scripts/bench.sh --compare # scoped lane
#   BENCH_ARGS="--set samples=16,sweep=500" scripts/bench.sh   # extra runner flags
#   JOBS=4 scripts/bench.sh         # cap build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
THRESHOLD="${BENCH_THRESHOLD:-0.25}"
# Counter gating (arena bytes, reuse factors, ...): deterministic
# planner arithmetic, so the memory CI lane pins it near zero. 0 = off.
COUNTER_THRESHOLD="${BENCH_COUNTER_THRESHOLD:-0}"
# BENCH_FILTER runs a case-name subset (bench_runner --filter). The
# compare step then allows baseline cases to be missing — a scoped run
# is a subset of the tier-1 baseline by construction.
FILTER="${BENCH_FILTER:-}"

TIER_FLAGS=(--tier 1)
OUT=BENCH_tier1.json
COMPARE=0
for arg in "$@"; do
  case "$arg" in
    --all) TIER_FLAGS=(); OUT=BENCH_all.json ;;
    --compare) COMPARE=1 ;;
    *) echo "usage: $0 [--all] [--compare]" >&2; exit 2 ;;
  esac
done

# Fail fast instead of discovering a missing baseline after a long run:
# only tier-1 baselines are checked in (scripts/update_baselines.sh).
if [[ "$COMPARE" == 1 && ! -f "bench/baselines/$OUT" ]]; then
  echo "error: no baseline bench/baselines/$OUT (only tier-1 baselines are maintained)" >&2
  exit 2
fi

echo "== build (Release) =="
# Build type is forced: telemetry/baselines from a build/ that was
# left configured Debug would gate CI at the wrong optimization level.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS" --target bench_runner bench_compare

echo "== bench -> $OUT =="
# --best-of 2 only for the gated tier-1 run: keeping each case's
# fastest pass stops one transient contention spike from tripping the
# regression gate. The --all sweep repeats whole macro searches, where
# doubling minutes of wall time buys nothing. BENCH_ARGS is
# intentionally word-split (extra runner flags); the TIER_FLAGS
# expansion is guarded so an empty array survives `set -u` on bash 3.2
# (macOS default).
BEST_OF_FLAGS=()
if [[ ${#TIER_FLAGS[@]} -gt 0 ]]; then
  BEST_OF_FLAGS=(--best-of 2)
fi
FILTER_FLAGS=()
if [[ -n "$FILTER" ]]; then
  FILTER_FLAGS=(--filter "$FILTER")
fi
# shellcheck disable=SC2086
./build/bench_runner ${TIER_FLAGS[@]+"${TIER_FLAGS[@]}"} \
  ${FILTER_FLAGS[@]+"${FILTER_FLAGS[@]}"} \
  ${BEST_OF_FLAGS[@]+"${BEST_OF_FLAGS[@]}"} --out "$OUT" ${BENCH_ARGS:-}

if [[ "$COMPARE" == 1 ]]; then
  echo "== compare vs bench/baselines/$OUT (threshold ${THRESHOLD}, counters ${COUNTER_THRESHOLD}) =="
  MISSING_FLAGS=()
  if [[ -n "$FILTER" ]]; then
    MISSING_FLAGS=(--allow-missing)
  fi
  ./build/bench_compare "bench/baselines/$OUT" "$OUT" --threshold "$THRESHOLD" \
    --counter-threshold "$COUNTER_THRESHOLD" \
    ${MISSING_FLAGS[@]+"${MISSING_FLAGS[@]}"}
fi
