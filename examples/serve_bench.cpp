// Deploy-once / serve-many, end to end:
//
//   1. compile an NB201 genotype to a CompiledModel (once),
//   2. save it as a versioned .mnpkg binary package,
//   3. load it back — no re-lowering, no re-quantization, no
//      re-calibration — and verify the reloaded logits hash (against
//      the checked-in compile-report golden with --golden),
//   4. serve it: a batching ModelServer coalesces requests from N
//      synthetic clients over the int8 runtime and reports
//      throughput + latency percentiles,
//   5. print the load-vs-recompile speedup the package exists for.
//
//   ./serve_bench                                  # compile+save+load+serve
//   ./serve_bench --mode save --out model.mnpkg --hash-out model.hash
//   ./serve_bench --mode load --package model.mnpkg
//       --golden tests/golden/compile_report.golden  (consumer half, CI job)
//   ./serve_bench --clients 8 --requests 64 --max-batch 8 --threads 4
//   ./serve_bench --mode overload --max-queue 16 --deadline-us 500
//       (admission control under a burst: accepted/rejected/dropped ledger)
//   ./serve_bench --mode multi
//       (two distinct packages -> ONE registry process: mmap-backed
//        zero-copy loads, dedup on re-load, per-model lanes, per-model
//        bit-identity vs a serial Executor; --package/--package2 +
//        --golden/--golden2 pin both logits hashes in CI)
//   ./serve_bench --trace-out trace.json --metrics-out metrics.json
//
// Defaults reproduce the fixed scenario of tests/golden/
// compile_report.golden (genotype, seed 7, reduced skeleton), so the
// reloaded hash is directly comparable against that fixture.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "examples/cli.hpp"
#include "src/compile/compiler.hpp"
#include "src/core/report.hpp"
#include "src/data/synthetic.hpp"
#include "src/rt/runtime.hpp"
#include "src/serialize/serialize.hpp"
#include "src/serve/multi_model_server.hpp"

using namespace micronas;

namespace {

constexpr const char* kGoldenArch =
    "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|";
/// A second, structurally different genotype for --mode multi: the two
/// packages must have distinct arches (and content hashes) so the
/// registry provably keys and routes per model.
constexpr const char* kSecondArch =
    "|avg_pool_3x3~0|+|nor_conv_1x1~0|skip_connect~1|+|nor_conv_3x3~0|skip_connect~1|"
    "nor_conv_1x1~2|";

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The fixed input of the golden scenario: a pure function of (input
/// size, seed), matching tests/test_compile_e2e.cpp.
Tensor scenario_input(int input_size, std::uint64_t seed) {
  DatasetSpec spec;
  spec.height = spec.width = input_size;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  return data.sample_batch(1, rng).images;
}

compile::CompiledModel compile_arch(const std::string& arch, int cells, int input_size,
                                    std::uint64_t seed) {
  const nb201::Genotype genotype = arch.find('|') != std::string::npos
                                       ? nb201::Genotype::from_string(arch)
                                       : nb201::Genotype::from_index(std::stoi(arch));
  compile::CompilerOptions options;
  options.macro.cells_per_stage = cells;
  options.macro.input_size = input_size;
  options.seed = seed;
  return compile::compile_genotype(genotype, options);
}

/// Serial-reference logits hash of a model on its golden-scenario
/// input — what --hash-out records and --golden/--golden2 check.
std::string model_scenario_hash(const compile::CompiledModel& model, std::uint64_t seed) {
  const int input_size = model.graph.node(model.graph.input()).type.shape[2];
  rt::Executor exec(model.graph, model.plan, rt::ExecOptions{1, &model.packed});
  return serialize::logits_hash_hex(exec.run(scenario_input(input_size, seed)));
}

/// `logits_hash <hex>` fixture, same line format the compile-report
/// golden uses, so read_golden_logits_hash() reads both.
void write_hash_file(const std::string& path, const std::string& hash) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) throw std::runtime_error("cannot open " + path + " for writing");
  out << "logits_hash " << hash << "\n";
}

/// --mode multi: two distinct packages served out of ONE registry
/// process. Exercises the whole tentpole: mmap-backed zero-copy loads,
/// dedup on a second load of the same file, per-model lanes behind one
/// routed submit(Request) API, per-model golden hashes, and bit
/// identity of every served logit against a serial Executor.
int run_multi(const CliArgs& args, serve::ServerOptions sopts, std::uint64_t seed,
              std::uint64_t seed2) {
  struct Spec {
    std::string package;  // .mnpkg path (saved here unless provided)
    std::string golden;   // optional logits-hash fixture to enforce
    std::uint64_t seed;
  };
  Spec specs[2];
  specs[0].package = args.get_string("package", args.get_string("out", "model.mnpkg"));
  specs[0].golden = args.get_string("golden", "");
  specs[0].seed = seed;
  specs[1].package = args.get_string("package2", args.get_string("out2", "model2.mnpkg"));
  specs[1].golden = args.get_string("golden2", "");
  specs[1].seed = seed2;

  // Self-contained by default: compile + save both packages unless the
  // caller handed us pre-built ones (the CI job does, in a separate
  // step, to catch format drift).
  if (!args.has("package")) {
    const int cells = args.get_int("cells", 1);
    const int input_size = args.get_int("input", 16);
    serialize::save_model(compile_arch(args.get_string("arch", kGoldenArch), cells, input_size,
                                       seed),
                          specs[0].package);
    serialize::save_model(compile_arch(args.get_string("arch2", kSecondArch), cells, input_size,
                                       seed2),
                          specs[1].package);
  }

  serve::MultiModelServer server(sopts);
  bool ok = true;
  std::string keys[2];
  serve::ModelRegistry::Entry entries[2];
  for (int m = 0; m < 2; ++m) {
    const auto t0 = std::chrono::steady_clock::now();
    keys[m] = server.load(specs[m].package);
    const double load_ms = ms_since(t0);
    entries[m] = server.registry().get(keys[m]);
    std::printf("loaded %s as '%s' in %.2f ms (%s, %llu B zero-copy weights)\n",
                specs[m].package.c_str(), keys[m].c_str(), load_ms,
                entries[m].package->is_mmap() ? "mmap" : "buffered",
                static_cast<unsigned long long>(entries[m].package->zero_copy_bytes()));
  }
  if (keys[0] == keys[1]) {
    std::fprintf(stderr, "FAIL: the two packages resolved to one key (%s) — not distinct\n",
                 keys[0].c_str());
    return 1;
  }

  // Dedup: re-loading package 0 must share the FIRST mapping — same
  // package object, same model object, a registry hit on the metrics.
  const serve::ModelRegistry::Entry again = server.registry().load(specs[0].package);
  const bool deduped =
      again.model.get() == entries[0].model.get() && again.package.get() == entries[0].package.get();
  ok = ok && deduped;

  // Per-model golden gate + serial reference for bit-identity.
  Tensor expected[2];
  for (int m = 0; m < 2; ++m) {
    const compile::CompiledModel& model = *entries[m].model;
    const int input_size = model.graph.node(model.graph.input()).type.shape[2];
    rt::Executor exec(model.graph, model.plan, rt::ExecOptions{1, &model.packed});
    expected[m] = exec.run(scenario_input(input_size, specs[m].seed));
    const std::string hash = serialize::logits_hash_hex(expected[m]);
    std::printf("model '%s' logits hash %s\n", keys[m].c_str(), hash.c_str());
    if (!specs[m].golden.empty()) {
      const std::string want = serialize::read_golden_logits_hash(specs[m].golden);
      if (hash != want) {
        std::fprintf(stderr, "FAIL: model '%s' hash %s != golden %s (%s)\n", keys[m].c_str(),
                     hash.c_str(), want.c_str(), specs[m].golden.c_str());
        ok = false;
      }
    }
  }

  // Interleaved clients against both lanes through the one routed
  // submit(Request); every response must be bit-identical to the
  // serial reference of ITS model.
  const int clients = args.get_int("clients", 4);
  const int requests = args.get_int("requests", 32);
  std::atomic<long long> mismatches{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::vector<std::pair<int, std::future<serve::Response>>> mine;
      for (int r = 0; r < requests; ++r) {
        const int m = (c + r) % 2;
        const compile::CompiledModel& model = *entries[m].model;
        const int input_size = model.graph.node(model.graph.input()).type.shape[2];
        serve::Request req;
        req.input = scenario_input(input_size, specs[m].seed);
        req.model_key = keys[m];
        mine.emplace_back(m, server.submit(std::move(req)));
      }
      for (auto& [m, future] : mine) {
        const serve::Response resp = future.get();
        const Tensor& want = expected[m];
        bool same = resp.logits.numel() == want.numel() && resp.model_key == keys[m];
        for (std::size_t i = 0; same && i < want.numel(); ++i) {
          same = resp.logits[i] == want[i];
        }
        if (!same) ++mismatches;
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Routing failures are synchronous and typed.
  bool unknown_rejected = false;
  try {
    serve::Request req;
    req.input = expected[0];
    req.model_key = "no-such-model";
    server.submit(std::move(req));
  } catch (const serve::UnknownModelError&) {
    unknown_rejected = true;
  }

  server.stop();
  ok = ok && mismatches == 0 && unknown_rejected;

  TablePrinter table({"Metric", "Value"});
  table.add_row({"models resident", std::to_string(server.registry().size())});
  table.add_row({"dedup on re-load", deduped ? "shared mapping" : "NOT SHARED"});
  table.add_row({"unknown key rejected", unknown_rejected ? "yes (UnknownModelError)" : "NO"});
  for (int m = 0; m < 2; ++m) {
    const serve::ServerStats stats = server.stats(keys[m]);
    table.add_row({"lane '" + keys[m].substr(0, 24) + "...' requests",
                   std::to_string(stats.requests) + " in " + std::to_string(stats.batches) +
                       " batches (p50 " + TablePrinter::fmt(stats.p50_ms, 2) + " ms)"});
  }
  table.add_row({"served == serial (both models)", mismatches == 0 ? "yes" : "NO"});
  std::cout << table.render();
  examples::print_metrics_section("Registry metrics:", "serve.");
  examples::write_observability_outputs(args);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "Compile -> save -> load -> serve an NB201 model package; modes cover the\n"
        "single-model pipeline, admission control under overload, and multi-model\n"
        "serving through the mmap-backed package registry.");
    cli.flag("mode", "all|save|load|serve|overload|multi", "all", "which pipeline slice to run")
        .flag("arch", "genotype|index", "(golden arch)", "NB201 genotype to compile")
        .flag("arch2", "genotype|index", "(second arch)", "second genotype (--mode multi)")
        .flag("cells", "N", "1", "cells per stage of the deployment skeleton")
        .flag("input", "N", "16", "input image size")
        .flag("seed", "N", "7", "weights + data seed")
        .flag("seed2", "N", "11", "second model's seed (--mode multi)")
        .flag("out", "file", "model.mnpkg", "package path written by save")
        .flag("out2", "file", "model2.mnpkg", "second package path (--mode multi)")
        .flag("package", "file", "(--out)", "package path to load/serve")
        .flag("package2", "file", "(--out2)", "second package to serve (--mode multi)")
        .flag("golden", "file", "", "logits-hash fixture to enforce after load")
        .flag("golden2", "file", "", "second model's fixture (--mode multi)")
        .flag("hash-out", "file", "", "write `logits_hash <hex>` after save (CI fixture)")
        .flag("clients", "N", "4", "concurrent synthetic clients")
        .flag("requests", "N", "32", "requests per client")
        .flag("max-batch", "N", "8", "batch capacity per coalesced invocation")
        .flag("max-wait-us", "us", "2000", "batch hold-open window")
        .flag("threads", "N", "0", "executor threads (0 = one per core)")
        .flag("max-queue", "N", "16", "admission queue bound (--mode overload)")
        .flag("deadline-us", "us", "0", "per-request deadline (<= 0 = none)");
    const CliArgs args = cli.parse(argc, argv);
    examples::maybe_enable_tracing(args);
    const std::string mode = args.get_string("mode", "all");
    if (mode != "all" && mode != "save" && mode != "load" && mode != "serve" &&
        mode != "overload" && mode != "multi") {
      throw std::runtime_error("--mode must be all|save|load|serve|overload|multi");
    }
    const int input_size = args.get_int("input", 16);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const auto seed2 = static_cast<std::uint64_t>(args.get_int("seed2", 11));
    const std::string out_path = args.get_string("out", "model.mnpkg");
    const std::string package = args.get_string("package", out_path);
    const std::string golden = args.get_string("golden", "");
    const bool do_save = mode == "all" || mode == "save";
    const bool do_load = mode != "save" && mode != "multi";
    const bool do_serve = mode == "all" || mode == "serve";
    const bool do_overload = mode == "overload";

    if (mode == "multi") {
      serve::ServerOptions sopts;
      sopts.max_batch = args.get_int("max-batch", 8);
      sopts.max_wait_us = args.get_int("max-wait-us", 2000);
      sopts.threads = args.get_int("threads", 0);
      return run_multi(args, sopts, seed, seed2);
    }

    double compile_ms = 0.0;
    if (do_save) {
      auto t0 = std::chrono::steady_clock::now();
      const compile::CompiledModel model = compile_arch(
          args.get_string("arch", kGoldenArch), args.get_int("cells", 1), input_size, seed);
      compile_ms = ms_since(t0);

      t0 = std::chrono::steady_clock::now();
      const std::uint64_t bytes = serialize::save_model(model, out_path);
      const double save_ms = ms_since(t0);
      std::printf("compiled %s in %.1f ms; saved %llu B to %s in %.2f ms\n",
                  model.report.arch.c_str(), compile_ms, static_cast<unsigned long long>(bytes),
                  out_path.c_str(), save_ms);
      std::cout << serialize::read_package_info_file(out_path).to_string();
      const std::string hash_out = args.get_string("hash-out", "");
      if (!hash_out.empty()) {
        const std::string hash = model_scenario_hash(model, seed);
        write_hash_file(hash_out, hash);
        std::printf("logits hash %s written to %s\n", hash.c_str(), hash_out.c_str());
      }
    }
    if (!do_load) {
      examples::write_observability_outputs(args);
      return 0;
    }

    auto t0 = std::chrono::steady_clock::now();
    compile::CompiledModel loaded = serialize::load_model(package);
    const double load_ms = ms_since(t0);
    std::printf("loaded %s in %.2f ms (graph %d nodes, arena %lld B)\n", package.c_str(),
                load_ms, loaded.graph.size(), loaded.plan.arena_bytes);
    if (compile_ms > 0.0) {
      std::printf("load vs recompile: %.1fx faster\n", compile_ms / load_ms);
    }

    // One deterministic inference on the golden-scenario input; with
    // --golden this is the format-drift gate the CI model-package job
    // runs in a separate step from the save.
    const int loaded_input = loaded.graph.node(loaded.graph.input()).type.shape[2];
    rt::Executor exec(loaded.graph, loaded.plan, rt::ExecOptions{1});
    const Tensor logits = exec.run(scenario_input(loaded_input, seed));
    const std::string hash = serialize::logits_hash_hex(logits);
    std::printf("reloaded logits hash %s\n", hash.c_str());
    if (!golden.empty()) {
      const std::string want = serialize::read_golden_logits_hash(golden);
      if (hash != want) {
        std::fprintf(stderr,
                     "FAIL: reloaded logits hash %s != golden %s (%s)\n"
                     "      the package format or the runtime drifted\n",
                     hash.c_str(), want.c_str(), golden.c_str());
        return 1;
      }
      std::printf("golden hash check OK (%s)\n", golden.c_str());
    }
    // --mode overload: hammer a deliberately small admission window
    // (bounded queue + per-request deadlines) with burst clients and
    // print where the offered load went. Every submit must end in
    // exactly one of completed / rejected / dropped, and the server's
    // ledger must agree with the clients' own counts — the same
    // invariant tests/test_serve_overload.cpp asserts, observable here
    // on real overload traffic.
    if (do_overload) {
      const int clients = args.get_int("clients", 4);
      const int requests = args.get_int("requests", 64);
      serve::ServerOptions sopts;
      sopts.max_batch = args.get_int("max-batch", 8);
      sopts.max_wait_us = args.get_int("max-wait-us", 200);
      sopts.threads = args.get_int("threads", 0);
      sopts.max_queue = static_cast<std::size_t>(args.get_int("max-queue", 16));
      sopts.deadline_us = args.get_int("deadline-us", 0);
      serve::ModelServer server(std::move(loaded), sopts);

      std::atomic<long long> accepted{0}, rejected{0}, completed{0}, dropped{0};
      std::vector<std::thread> workers;
      const auto burst0 = std::chrono::steady_clock::now();
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          Rng rng(hash_combine(seed, static_cast<std::uint64_t>(c) + 101));
          DatasetSpec spec;
          spec.height = spec.width = loaded_input;
          SyntheticDataset data(spec, rng);
          std::vector<std::future<Tensor>> mine;
          for (int r = 0; r < requests; ++r) {
            try {
              mine.push_back(server.submit(data.sample_batch(1, rng).images));
              ++accepted;
            } catch (const serve::QueueFullError&) {
              ++rejected;
            }
          }
          for (std::future<Tensor>& f : mine) {
            try {
              if (f.get().numel() > 0) ++completed;
            } catch (const serve::DeadlineExpiredError&) {
              ++dropped;
            }
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double burst_s = ms_since(burst0) / 1000.0;
      server.stop();

      const serve::ServerStats stats = server.stats();
      const long long offered = static_cast<long long>(clients) * requests;
      const bool balanced = accepted + rejected == offered &&
                            accepted == completed + dropped &&
                            stats.accepted == accepted && stats.rejected == rejected &&
                            stats.requests == completed && stats.dropped == dropped;
      TablePrinter table({"Metric", "Value"});
      table.add_row({"offered (clients x requests)",
                     std::to_string(clients) + " x " + std::to_string(requests)});
      table.add_row({"queue bound / deadline",
                     std::to_string(sopts.max_queue) + " / " +
                         (sopts.deadline_us > 0 ? std::to_string(sopts.deadline_us) + " us"
                                                : std::string("none"))});
      table.add_row({"accepted", std::to_string(accepted.load())});
      table.add_row({"rejected (queue full)", std::to_string(rejected.load())});
      table.add_row({"dropped (deadline)", std::to_string(dropped.load())});
      table.add_row({"completed", std::to_string(completed.load())});
      table.add_row({"rejected fraction",
                     TablePrinter::fmt(static_cast<double>(rejected.load()) /
                                           static_cast<double>(offered), 3)});
      table.add_row({"served throughput",
                     TablePrinter::fmt(static_cast<double>(completed.load()) / burst_s, 1) +
                         " req/s"});
      table.add_row({"latency p50 / p90 / p99",
                     TablePrinter::fmt(stats.p50_ms, 2) + " / " +
                         TablePrinter::fmt(stats.p90_ms, 2) + " / " +
                         TablePrinter::fmt(stats.p99_ms, 2) + " ms"});
      table.add_row({"ledger balanced", balanced ? "yes" : "NO"});
      std::cout << table.render();
      // Same registry code path pareto_sweep prints from: the server
      // mirrored its admission ledger + latency histogram live.
      examples::print_metrics_section("Registry metrics:", "serve.");
      examples::write_observability_outputs(args);
      return balanced ? 0 : 1;
    }
    if (!do_serve) {
      examples::write_observability_outputs(args);
      return 0;
    }

    const int clients = args.get_int("clients", 4);
    const int requests = args.get_int("requests", 32);
    serve::ServerOptions sopts;
    sopts.max_batch = args.get_int("max-batch", 8);
    sopts.max_wait_us = args.get_int("max-wait-us", 2000);
    sopts.threads = args.get_int("threads", 0);

    // Serial reference pass (and baseline wall time): every request's
    // batched logits must equal this executor's, bit for bit.
    std::vector<std::vector<Tensor>> inputs(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      Rng rng(hash_combine(seed, static_cast<std::uint64_t>(c) + 1));
      DatasetSpec spec;
      spec.height = spec.width = loaded_input;
      SyntheticDataset data(spec, rng);
      for (int r = 0; r < requests; ++r) {
        inputs[static_cast<std::size_t>(c)].push_back(data.sample_batch(1, rng).images);
      }
    }
    t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<Tensor>> expected(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      for (const Tensor& in : inputs[static_cast<std::size_t>(c)]) {
        expected[static_cast<std::size_t>(c)].push_back(exec.run(in));
      }
    }
    const double serial_s = ms_since(t0) / 1000.0;

    serve::ModelServer server(std::move(loaded), sopts);
    std::vector<std::thread> workers;
    std::vector<std::vector<std::future<Tensor>>> futures(static_cast<std::size_t>(clients));
    t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([c, &server, &inputs, &futures] {
        auto& mine = futures[static_cast<std::size_t>(c)];
        for (const Tensor& in : inputs[static_cast<std::size_t>(c)]) {
          mine.push_back(server.submit(in));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    long long mismatches = 0;
    for (int c = 0; c < clients; ++c) {
      for (std::size_t r = 0; r < futures[static_cast<std::size_t>(c)].size(); ++r) {
        const Tensor got = futures[static_cast<std::size_t>(c)][r].get();
        const Tensor& want = expected[static_cast<std::size_t>(c)][r];
        for (std::size_t i = 0; i < got.numel(); ++i) {
          if (got[i] != want[i]) {
            ++mismatches;
            break;
          }
        }
      }
    }
    const double batched_s = ms_since(t0) / 1000.0;
    server.stop();

    const serve::ServerStats stats = server.stats();
    const double total = static_cast<double>(clients) * requests;
    TablePrinter table({"Metric", "Value"});
    table.add_row({"clients x requests",
                   std::to_string(clients) + " x " + std::to_string(requests)});
    table.add_row({"batches", std::to_string(stats.batches)});
    table.add_row({"mean batch", TablePrinter::fmt(stats.mean_batch, 2)});
    table.add_row({"serial throughput", TablePrinter::fmt(total / serial_s, 1) + " req/s"});
    table.add_row({"batched throughput", TablePrinter::fmt(total / batched_s, 1) + " req/s"});
    table.add_row({"batched / serial", TablePrinter::fmt(serial_s / batched_s, 2) + "x"});
    table.add_row({"latency p50 / p90 / p99",
                   TablePrinter::fmt(stats.p50_ms, 2) + " / " + TablePrinter::fmt(stats.p90_ms, 2) +
                       " / " + TablePrinter::fmt(stats.p99_ms, 2) + " ms"});
    table.add_row({"batched logits == serial", mismatches == 0 ? "yes" : "NO"});
    std::cout << table.render();
    examples::print_metrics_section("Registry metrics:", "serve.");
    examples::write_observability_outputs(args);
    return mismatches == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
