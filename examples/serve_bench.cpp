// Deploy-once / serve-many, end to end:
//
//   1. compile an NB201 genotype to a CompiledModel (once),
//   2. save it as a versioned .mnpkg binary package,
//   3. load it back — no re-lowering, no re-quantization, no
//      re-calibration — and verify the reloaded logits hash (against
//      the checked-in compile-report golden with --golden),
//   4. serve it: a batching ModelServer coalesces requests from N
//      synthetic clients over the int8 runtime and reports
//      throughput + latency percentiles,
//   5. print the load-vs-recompile speedup the package exists for.
//
//   ./serve_bench                                  # compile+save+load+serve
//   ./serve_bench --mode save --out model.mnpkg    # producer half (CI job)
//   ./serve_bench --mode load --package model.mnpkg
//       --golden tests/golden/compile_report.golden  (consumer half, CI job)
//   ./serve_bench --clients 8 --requests 64 --max-batch 8 --threads 4
//   ./serve_bench --mode overload --max-queue 16 --deadline-us 500
//       (admission control under a burst: accepted/rejected/dropped ledger)
//   ./serve_bench --trace-out trace.json --metrics-out metrics.json
//       (Chrome trace of compile+serve spans; registry metrics dump)
//
// Defaults reproduce the fixed scenario of tests/golden/
// compile_report.golden (genotype, seed 7, reduced skeleton), so the
// reloaded hash is directly comparable against that fixture.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <thread>

#include "examples/obs_cli.hpp"
#include "src/common/cli.hpp"
#include "src/compile/compiler.hpp"
#include "src/core/report.hpp"
#include "src/data/synthetic.hpp"
#include "src/rt/runtime.hpp"
#include "src/serialize/serialize.hpp"
#include "src/serve/model_server.hpp"

using namespace micronas;

namespace {

constexpr const char* kGoldenArch =
    "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|";

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The fixed input of the golden scenario: a pure function of (input
/// size, seed), matching tests/test_compile_e2e.cpp.
Tensor scenario_input(int input_size, std::uint64_t seed) {
  DatasetSpec spec;
  spec.height = spec.width = input_size;
  Rng rng(seed);
  SyntheticDataset data(spec, rng);
  return data.sample_batch(1, rng).images;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"mode", "arch", "cells", "input", "seed", "out", "package", "golden",
                        "clients", "requests", "max-batch", "max-wait-us", "threads",
                        "max-queue", "deadline-us", examples::kTraceOutFlag,
                        examples::kMetricsOutFlag});
    examples::maybe_enable_tracing(args);
    const std::string mode = args.get_string("mode", "all");
    if (mode != "all" && mode != "save" && mode != "load" && mode != "serve" &&
        mode != "overload") {
      throw std::runtime_error("--mode must be all|save|load|serve|overload");
    }
    const int input_size = args.get_int("input", 16);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const std::string out_path = args.get_string("out", "model.mnpkg");
    const std::string package = args.get_string("package", out_path);
    const std::string golden = args.get_string("golden", "");
    const bool do_save = mode == "all" || mode == "save";
    const bool do_load = mode != "save";
    const bool do_serve = mode == "all" || mode == "serve";
    const bool do_overload = mode == "overload";

    double compile_ms = 0.0;
    if (do_save) {
      const std::string arch = args.get_string("arch", kGoldenArch);
      const nb201::Genotype genotype = arch.find('|') != std::string::npos
                                           ? nb201::Genotype::from_string(arch)
                                           : nb201::Genotype::from_index(std::stoi(arch));
      compile::CompilerOptions options;
      options.macro.cells_per_stage = args.get_int("cells", 1);
      options.macro.input_size = input_size;
      options.seed = seed;

      auto t0 = std::chrono::steady_clock::now();
      const compile::CompiledModel model = compile::compile_genotype(genotype, options);
      compile_ms = ms_since(t0);

      t0 = std::chrono::steady_clock::now();
      const std::uint64_t bytes = serialize::save_model(model, out_path);
      const double save_ms = ms_since(t0);
      std::printf("compiled %s in %.1f ms; saved %llu B to %s in %.2f ms\n",
                  genotype.to_string().c_str(), compile_ms,
                  static_cast<unsigned long long>(bytes), out_path.c_str(), save_ms);
      std::cout << serialize::read_package_info_file(out_path).to_string();
    }
    if (!do_load) {
      examples::write_observability_outputs(args);
      return 0;
    }

    auto t0 = std::chrono::steady_clock::now();
    compile::CompiledModel loaded = serialize::load_model(package);
    const double load_ms = ms_since(t0);
    std::printf("loaded %s in %.2f ms (graph %d nodes, arena %lld B)\n", package.c_str(),
                load_ms, loaded.graph.size(), loaded.plan.arena_bytes);
    if (compile_ms > 0.0) {
      std::printf("load vs recompile: %.1fx faster\n", compile_ms / load_ms);
    }

    // One deterministic inference on the golden-scenario input; with
    // --golden this is the format-drift gate the CI model-package job
    // runs in a separate step from the save.
    const int loaded_input = loaded.graph.node(loaded.graph.input()).type.shape[2];
    rt::Executor exec(loaded.graph, loaded.plan, rt::ExecOptions{1});
    const Tensor logits = exec.run(scenario_input(loaded_input, seed));
    const std::string hash = serialize::logits_hash_hex(logits);
    std::printf("reloaded logits hash %s\n", hash.c_str());
    if (!golden.empty()) {
      const std::string want = serialize::read_golden_logits_hash(golden);
      if (hash != want) {
        std::fprintf(stderr,
                     "FAIL: reloaded logits hash %s != golden %s (%s)\n"
                     "      the package format or the runtime drifted\n",
                     hash.c_str(), want.c_str(), golden.c_str());
        return 1;
      }
      std::printf("golden hash check OK (%s)\n", golden.c_str());
    }
    // --mode overload: hammer a deliberately small admission window
    // (bounded queue + per-request deadlines) with burst clients and
    // print where the offered load went. Every submit must end in
    // exactly one of completed / rejected / dropped, and the server's
    // ledger must agree with the clients' own counts — the same
    // invariant tests/test_serve_overload.cpp asserts, observable here
    // on real overload traffic.
    if (do_overload) {
      const int clients = args.get_int("clients", 4);
      const int requests = args.get_int("requests", 64);
      serve::ServerOptions sopts;
      sopts.max_batch = args.get_int("max-batch", 8);
      sopts.max_wait_us = args.get_int("max-wait-us", 200);
      sopts.threads = args.get_int("threads", 0);
      sopts.max_queue = static_cast<std::size_t>(args.get_int("max-queue", 16));
      sopts.deadline_us = args.get_int("deadline-us", 0);
      serve::ModelServer server(std::move(loaded), sopts);

      std::atomic<long long> accepted{0}, rejected{0}, completed{0}, dropped{0};
      std::vector<std::thread> workers;
      const auto burst0 = std::chrono::steady_clock::now();
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          Rng rng(hash_combine(seed, static_cast<std::uint64_t>(c) + 101));
          DatasetSpec spec;
          spec.height = spec.width = loaded_input;
          SyntheticDataset data(spec, rng);
          std::vector<std::future<Tensor>> mine;
          for (int r = 0; r < requests; ++r) {
            try {
              mine.push_back(server.submit(data.sample_batch(1, rng).images));
              ++accepted;
            } catch (const serve::QueueFullError&) {
              ++rejected;
            }
          }
          for (std::future<Tensor>& f : mine) {
            try {
              if (f.get().numel() > 0) ++completed;
            } catch (const serve::DeadlineExpiredError&) {
              ++dropped;
            }
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double burst_s = ms_since(burst0) / 1000.0;
      server.stop();

      const serve::ServerStats stats = server.stats();
      const long long offered = static_cast<long long>(clients) * requests;
      const bool balanced = accepted + rejected == offered &&
                            accepted == completed + dropped &&
                            stats.accepted == accepted && stats.rejected == rejected &&
                            stats.requests == completed && stats.dropped == dropped;
      TablePrinter table({"Metric", "Value"});
      table.add_row({"offered (clients x requests)",
                     std::to_string(clients) + " x " + std::to_string(requests)});
      table.add_row({"queue bound / deadline",
                     std::to_string(sopts.max_queue) + " / " +
                         (sopts.deadline_us > 0 ? std::to_string(sopts.deadline_us) + " us"
                                                : std::string("none"))});
      table.add_row({"accepted", std::to_string(accepted.load())});
      table.add_row({"rejected (queue full)", std::to_string(rejected.load())});
      table.add_row({"dropped (deadline)", std::to_string(dropped.load())});
      table.add_row({"completed", std::to_string(completed.load())});
      table.add_row({"rejected fraction",
                     TablePrinter::fmt(static_cast<double>(rejected.load()) /
                                           static_cast<double>(offered), 3)});
      table.add_row({"served throughput",
                     TablePrinter::fmt(static_cast<double>(completed.load()) / burst_s, 1) +
                         " req/s"});
      table.add_row({"latency p50 / p90 / p99",
                     TablePrinter::fmt(stats.p50_ms, 2) + " / " +
                         TablePrinter::fmt(stats.p90_ms, 2) + " / " +
                         TablePrinter::fmt(stats.p99_ms, 2) + " ms"});
      table.add_row({"ledger balanced", balanced ? "yes" : "NO"});
      std::cout << table.render();
      // Same registry code path pareto_sweep prints from: the server
      // mirrored its admission ledger + latency histogram live.
      examples::print_metrics_section("Registry metrics:", "serve.");
      examples::write_observability_outputs(args);
      return balanced ? 0 : 1;
    }
    if (!do_serve) {
      examples::write_observability_outputs(args);
      return 0;
    }

    const int clients = args.get_int("clients", 4);
    const int requests = args.get_int("requests", 32);
    serve::ServerOptions sopts;
    sopts.max_batch = args.get_int("max-batch", 8);
    sopts.max_wait_us = args.get_int("max-wait-us", 2000);
    sopts.threads = args.get_int("threads", 0);

    // Serial reference pass (and baseline wall time): every request's
    // batched logits must equal this executor's, bit for bit.
    std::vector<std::vector<Tensor>> inputs(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      Rng rng(hash_combine(seed, static_cast<std::uint64_t>(c) + 1));
      DatasetSpec spec;
      spec.height = spec.width = loaded_input;
      SyntheticDataset data(spec, rng);
      for (int r = 0; r < requests; ++r) {
        inputs[static_cast<std::size_t>(c)].push_back(data.sample_batch(1, rng).images);
      }
    }
    t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<Tensor>> expected(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      for (const Tensor& in : inputs[static_cast<std::size_t>(c)]) {
        expected[static_cast<std::size_t>(c)].push_back(exec.run(in));
      }
    }
    const double serial_s = ms_since(t0) / 1000.0;

    serve::ModelServer server(std::move(loaded), sopts);
    std::vector<std::thread> workers;
    std::vector<std::vector<std::future<Tensor>>> futures(static_cast<std::size_t>(clients));
    t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([c, &server, &inputs, &futures] {
        auto& mine = futures[static_cast<std::size_t>(c)];
        for (const Tensor& in : inputs[static_cast<std::size_t>(c)]) {
          mine.push_back(server.submit(in));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    long long mismatches = 0;
    for (int c = 0; c < clients; ++c) {
      for (std::size_t r = 0; r < futures[static_cast<std::size_t>(c)].size(); ++r) {
        const Tensor got = futures[static_cast<std::size_t>(c)][r].get();
        const Tensor& want = expected[static_cast<std::size_t>(c)][r];
        for (std::size_t i = 0; i < got.numel(); ++i) {
          if (got[i] != want[i]) {
            ++mismatches;
            break;
          }
        }
      }
    }
    const double batched_s = ms_since(t0) / 1000.0;
    server.stop();

    const serve::ServerStats stats = server.stats();
    const double total = static_cast<double>(clients) * requests;
    TablePrinter table({"Metric", "Value"});
    table.add_row({"clients x requests",
                   std::to_string(clients) + " x " + std::to_string(requests)});
    table.add_row({"batches", std::to_string(stats.batches)});
    table.add_row({"mean batch", TablePrinter::fmt(stats.mean_batch, 2)});
    table.add_row({"serial throughput", TablePrinter::fmt(total / serial_s, 1) + " req/s"});
    table.add_row({"batched throughput", TablePrinter::fmt(total / batched_s, 1) + " req/s"});
    table.add_row({"batched / serial", TablePrinter::fmt(serial_s / batched_s, 2) + "x"});
    table.add_row({"latency p50 / p90 / p99",
                   TablePrinter::fmt(stats.p50_ms, 2) + " / " + TablePrinter::fmt(stats.p90_ms, 2) +
                       " / " + TablePrinter::fmt(stats.p99_ms, 2) + " ms"});
    table.add_row({"batched logits == serial", mismatches == 0 ? "yes" : "NO"});
    std::cout << table.render();
    examples::print_metrics_section("Registry metrics:", "serve.");
    examples::write_observability_outputs(args);
    return mismatches == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
