// Quickstart: score a single NAS-Bench-201 cell with every MicroNAS
// indicator — the 60-second tour of the public API.
//
//   ./quickstart                                   # a strong default cell
//   ./quickstart --arch "|nor_conv_3x3~0|+|none~0|nor_conv_3x3~1|+..."
//   ./quickstart --index 4096 --dataset cifar100
//   ./quickstart --threads 4                       # parallel eval engine
#include <iostream>

#include "examples/cli.hpp"
#include "src/core/micronas.hpp"
#include "src/core/report.hpp"

using namespace micronas;

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "The 60-second tour: score one NB201 cell with the zero-cost proxies, then\n"
        "compile and run it through the int8 deployment pipeline.");
    cli.flag("arch", "genotype", "(residual cell)", "NB201 genotype string to score")
        .flag("index", "N", "", "pick the genotype by NB201 index instead")
        .flag("dataset", "name", "cifar10", "NB201 dataset the quality signal targets")
        .flag("seed", "N", "1", "proxy + weights seed")
        .flag("threads", "N", "1", "evaluation threads (0 = one per core)")
        .flag("cache", "0|1", "1", "memoize genotype indicators");
    const CliArgs args = cli.parse(argc, argv);

    // Pick the architecture: by string, by index, or the classic
    // residual-style strong cell by default.
    nb201::Genotype genotype;
    if (args.has("arch")) {
      genotype = nb201::Genotype::from_string(args.get_string("arch", ""));
    } else if (args.has("index")) {
      genotype = nb201::Genotype::from_index(args.get_int("index", 0));
    } else {
      genotype = nb201::Genotype::from_string(
          "|nor_conv_3x3~0|+|nor_conv_3x3~0|nor_conv_3x3~1|+"
          "|skip_connect~0|nor_conv_3x3~1|nor_conv_3x3~2|");
    }

    MicroNasConfig cfg;
    cfg.dataset = nb201::dataset_from_name(args.get_string("dataset", "cifar10"));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.batch_size = 16;
    cfg.proxy_net.input_size = 8;
    cfg.proxy_net.base_channels = 4;
    cfg.lr.grid = 12;
    cfg.lr.input_size = 8;
    cfg.threads = args.get_int("threads", 1);
    cfg.cache = args.get_bool("cache", true);

    std::cout << "MicroNAS quickstart\n"
              << "  cell: " << genotype.to_string() << "\n"
              << "  dataset: " << nb201::dataset_name(cfg.dataset) << "\n\n"
              << "Profiling the MCU and evaluating indicators...\n\n";

    MicroNas nas(cfg);
    const DiscoveredModel m = nas.evaluate(genotype);

    TablePrinter table({"Indicator", "Value", "Meaning"});
    table.add_row({"NTK condition number", TablePrinter::fmt(m.indicators.ntk_condition, 1),
                   "trainability (lower = better)"});
    table.add_row({"Linear-region richness", TablePrinter::fmt(m.indicators.linear_regions, 1),
                   "expressivity, boundary crossings (higher = better)"});
    table.add_row({"FLOPs", TablePrinter::fmt(m.indicators.flops_m, 2) + " M",
                   "compute cost on the deployment skeleton"});
    table.add_row({"Params", TablePrinter::fmt(m.indicators.params_m, 3) + " M",
                   "flash-resident weights"});
    table.add_row({"Latency (LUT estimate)", TablePrinter::fmt(m.indicators.latency_ms, 1) + " ms",
                   "per-op lookup table + constant overhead"});
    table.add_row({"Latency (measured)", TablePrinter::fmt(m.measured_latency_ms, 1) + " ms",
                   "median of 7 simulated MCU runs"});
    table.add_row({"Peak SRAM", TablePrinter::fmt(m.indicators.peak_sram_kb, 1) + " KB",
                   "live activation high-water mark"});
    table.add_row({"Accuracy (surrogate)", TablePrinter::fmt(m.accuracy, 2) + " %",
                   "stand-in for the NB201 trained tables"});
    std::cout << table.render();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
