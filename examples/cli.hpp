// The one example-CLI front door: declared flags, generated --help,
// shared observability wiring.
//
// Before this header, every example re-listed its known flags by hand
// (and the list drifted from the printed usage, when there was one).
// An ExampleCli declares each flag ONCE — name, value hint, default,
// help line — and derives everything from that single table: the
// known-flags list handed to CliArgs (typos still fail fast), the
// generated --help text, and the standard flags every example shares
// (--trace-out / --metrics-out from obs_cli.hpp, --help itself).
//
// Usage shape (see serve_bench.cpp / compile_and_run.cpp /
// pareto_sweep.cpp):
//
//   ExampleCli cli("what this example does");
//   cli.flag("threads", "N", "1", "worker threads (0 = one per core)");
//   const CliArgs args = cli.parse(argc, argv);   // exits 0 on --help
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "examples/obs_cli.hpp"
#include "src/common/cli.hpp"

namespace micronas::examples {

class ExampleCli {
 public:
  explicit ExampleCli(std::string description) : description_(std::move(description)) {}

  /// Declare one flag. `value_hint` names the operand in the usage
  /// line (e.g. "N", "file", "a|b"); `fallback` is shown as the
  /// default ("" shows none). Returns *this for chaining.
  ExampleCli& flag(std::string name, std::string value_hint, std::string fallback,
                   std::string help) {
    flags_.push_back(Flag{std::move(name), std::move(value_hint), std::move(fallback),
                          std::move(help)});
    return *this;
  }

  /// Parse argv against the declared flags plus the standard ones.
  /// `--help` prints the generated usage to stdout and exits 0.
  CliArgs parse(int argc, const char* const* argv) const {
    std::vector<std::string> known;
    known.reserve(flags_.size() + 3);
    for (const Flag& f : flags_) known.push_back(f.name);
    known.push_back(kTraceOutFlag);
    known.push_back(kMetricsOutFlag);
    known.push_back("help");
    const CliArgs args(argc, argv, known);
    if (args.has("help")) {
      std::cout << help_text(args.program());
      std::exit(0);
    }
    return args;
  }

  /// The generated usage text: one line per declared flag, then the
  /// standard observability flags.
  std::string help_text(const std::string& program) const {
    std::string out = "usage: " + program + " [flags]\n\n" + description_ + "\n\nflags:\n";
    for (const Flag& f : flags_) {
      out += render_line("--" + f.name + " <" + f.value_hint + ">", f.help, f.fallback);
    }
    out += render_line("--trace-out <file>",
                       "enable tracing; write Chrome trace-event JSON at exit", "");
    out += render_line("--metrics-out <file>", "dump the process metrics registry as JSON", "");
    out += render_line("--help", "print this text and exit", "");
    return out;
  }

 private:
  struct Flag {
    std::string name;
    std::string value_hint;
    std::string fallback;
    std::string help;
  };

  static std::string render_line(const std::string& left, const std::string& help,
                                 const std::string& fallback) {
    std::string line = "  " + left;
    const std::size_t pad = line.size() < 30 ? 30 - line.size() : 1;
    line.append(pad, ' ');
    line += help;
    if (!fallback.empty()) line += " (default " + fallback + ")";
    line += "\n";
    return line;
  }

  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace micronas::examples
