// Proxy correlation study on user-chosen settings — the tool you reach
// for before trusting any zero-cost indicator on a new dataset: sample
// cells, score them with each indicator, report Kendall-τ against the
// (surrogate) trained accuracy, and dump a CSV for plotting.
//
//   ./proxy_correlation --dataset cifar100 --archs 60 --batch 16 --csv /tmp/proxies.csv
#include <iostream>

#include "examples/cli.hpp"
#include "src/common/csv.hpp"
#include "src/core/report.hpp"
#include "src/data/synthetic.hpp"
#include "src/nb201/space.hpp"
#include "src/proxies/linear_regions.hpp"
#include "src/proxies/naswot.hpp"
#include "src/proxies/ntk.hpp"
#include "src/proxies/zero_cost.hpp"
#include "src/stats/correlation.hpp"

using namespace micronas;

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "Score a random sample of NB201 cells with every zero-cost proxy and print\n"
        "the cross-proxy rank-correlation matrix.");
    cli.flag("dataset", "name", "cifar10", "NB201 dataset the proxies target")
        .flag("archs", "N", "48", "random architectures to sample")
        .flag("batch", "N", "16", "proxy batch size")
        .flag("csv", "file", "", "also write the per-arch scores as CSV")
        .flag("seed", "N", "1", "sampling seed");
    const CliArgs args = cli.parse(argc, argv);
    const auto dataset = nb201::dataset_from_name(args.get_string("dataset", "cifar10"));
    const int n_archs = args.get_int("archs", 48);
    const int batch = args.get_int("batch", 16);
    const std::string csv_path = args.get_string("csv", "");

    CellNetConfig proxy;
    proxy.input_size = 8;
    proxy.base_channels = 4;
    proxy.num_classes = dataset_spec(dataset).num_classes;

    Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
    const auto pool = nb201::sample_genotypes(rng, n_archs);

    SyntheticDataset ds(dataset_spec(dataset), rng);
    const Batch probe = ds.sample_batch_resized(batch, proxy.input_size, rng);

    const nb201::SurrogateOracle oracle;
    LinearRegionOptions lr_opts;
    lr_opts.grid = 12;
    lr_opts.input_size = proxy.input_size;

    std::cout << "Scoring " << n_archs << " cells on " << nb201::dataset_name(dataset)
              << " with every zero-cost proxy (batch " << batch << ")...\n\n";

    CsvWriter csv({"arch_index", "accuracy", "ntk_condition", "linear_regions", "naswot",
                   "synflow_log", "grad_norm"});
    std::vector<double> acc, neg_ntk, lr, woth, syn, gnorm;
    for (const auto& g : pool) {
      const double a = oracle.mean_accuracy(g, dataset);
      const double kappa = ntk_condition(g, proxy, probe.images, rng).condition_number;
      const double regions = count_linear_regions(g, proxy, rng, lr_opts).boundary_crossings;
      const double wot = naswot_score(g, proxy, probe.images, rng).log_det;
      const double sf = synflow_score(g, proxy, rng).log_score;
      const double gn = grad_norm_score(g, proxy, probe.images, rng).grad_norm;
      acc.push_back(a);
      neg_ntk.push_back(-kappa);
      lr.push_back(regions);
      woth.push_back(wot);
      syn.push_back(sf);
      gnorm.push_back(gn);
      csv.add_row({std::to_string(g.index()), TablePrinter::fmt(a, 3), TablePrinter::fmt(kappa, 3),
                   TablePrinter::fmt(regions, 1), TablePrinter::fmt(wot, 2),
                   TablePrinter::fmt(sf, 3), TablePrinter::fmt(gn, 3)});
    }

    TablePrinter table({"Proxy", "Kendall tau", "Spearman rho"});
    auto row = [&](const std::string& name, const std::vector<double>& v) {
      table.add_row({name, TablePrinter::fmt(stats::kendall_tau(v, acc), 3),
                     TablePrinter::fmt(stats::spearman_rho(v, acc), 3)});
    };
    row("-NTK condition", neg_ntk);
    row("Linear regions", lr);
    row("NASWOT", woth);
    row("SynFlow (log)", syn);
    row("GradNorm", gnorm);
    std::cout << table.render();

    if (!csv_path.empty()) {
      csv.save(csv_path);
      std::cout << "\nPer-architecture scores written to " << csv_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
