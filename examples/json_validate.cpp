// Strict-parse one or more JSON files and fail loudly on the first
// malformed one — the CI observability job's gate that every trace /
// metrics / bench document this repo writes re-parses byte for byte.
//
//   ./json_validate trace.json metrics.json
//   ./json_validate --require-key traceEvents trace.json
//
// Exit 0: every file parsed (and carried the required key, if any).
// Exit 1: parse error (with character offset) or missing key.
#include <iostream>
#include <string>

#include "examples/cli.hpp"
#include "src/common/json.hpp"

using namespace micronas;

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "Parse each JSON file with the in-tree parser and fail on malformed input\n"
        "(positional arguments: one or more .json files).");
    cli.flag("require-key", "key", "", "additionally require this top-level key");
    const CliArgs args = cli.parse(argc, argv);
    const std::string require_key = args.get_string("require-key", "");
    if (args.positional().empty()) {
      std::cerr << "usage: json_validate [--require-key <key>] <file.json>...\n";
      return 1;
    }
    for (const std::string& path : args.positional()) {
      const json::Json doc = json::load_json_file(path);  // strict parse
      if (!require_key.empty()) {
        if (!doc.is_object() || doc.find(require_key) == nullptr) {
          std::cerr << path << ": missing required key \"" << require_key << "\"\n";
          return 1;
        }
      }
      // Round-trip check: our own serializer must reproduce a document
      // the strict parser accepts (dump -> parse is lossless).
      json::Json::parse(doc.dump());
      std::cout << path << ": OK\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
