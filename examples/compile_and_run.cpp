// Compile & run a searched model: the deployment pipeline end to end.
//
//   1. lower an NB201 genotype to the dataflow IR,
//   2. run the pass pipeline (constant folding, conv+bn+relu fusion,
//      DCE, calibrated int8 quantization),
//   3. plan the static activation arena and print the memory report
//      (planned arena vs hw/memory_model's predicted peak SRAM),
//   4. execute int8 inference, checking bit-identical logits across
//      repeated runs and thread counts,
//   5. compare against the naive float interpreter (numerics + host
//      wall time) and against the LUT estimator's predicted latency
//      (predicted vs executed on the simulated MCU).
//
//   6. print the per-op runtime profile: the hottest scheduled ops
//      with kernel attribution, measured host latency, and the
//      mcusim-predicted per-layer latency side by side — the
//      estimator-calibration ground truth.
//
//   ./compile_and_run --arch 7777 --cells 5 --runs 3 --threads 4
//   ./compile_and_run --arch "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|avg_pool_3x3~0|none~1|nor_conv_1x1~2|"
//   ./compile_and_run --trace-out trace.json --metrics-out metrics.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <vector>

#include "examples/cli.hpp"
#include "src/compile/compiler.hpp"
#include "src/core/report.hpp"
#include "src/data/synthetic.hpp"
#include "src/hw/latency_estimator.hpp"
#include "src/mcusim/profiler.hpp"
#include "src/rt/runtime.hpp"

using namespace micronas;

namespace {

double time_run_ms(rt::Executor& exec, const Tensor& input) {
  const auto t0 = std::chrono::steady_clock::now();
  exec.run(input);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "Compile an NB201 genotype to int8 and run it end to end: memory report,\n"
        "bit-identity across threads, float-interpreter comparison, and the per-op\n"
        "host-measured vs mcusim-predicted runtime profile.");
    cli.flag("arch", "genotype|index", "(built-in)", "NB201 genotype to compile")
        .flag("cells", "N", "5", "cells per stage of the deployment skeleton")
        .flag("input", "N", "32", "input image size")
        .flag("seed", "N", "1", "weights + data seed")
        .flag("runs", "N", "3", "timed repetitions per executor")
        .flag("threads", "N", "4", "threaded-executor worker count")
        .flag("mcu", "name", "m7", "MCU preset for the latency estimator/simulator")
        .flag("arena-budget", "KB", "0", "activation-arena ceiling (0 = unbounded)")
        .flag("top", "N", "10", "rows in the per-op profile table");
    const CliArgs args = cli.parse(argc, argv);
    examples::maybe_enable_tracing(args);
    const std::string arch = args.get_string("arch", "");
    const int runs = args.get_int("runs", 3);
    const int threads = args.get_int("threads", 4);
    const McuSpec mcu = mcu_preset(args.get_string("mcu", "m7"));

    nb201::Genotype genotype = nb201::Genotype::from_string(
        "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_1x1~1|+|avg_pool_3x3~0|none~1|nor_conv_3x3~2|");
    if (!arch.empty()) {
      genotype = arch.find('|') != std::string::npos
                     ? nb201::Genotype::from_string(arch)
                     : nb201::Genotype::from_index(std::stoi(arch));
    }

    compile::CompilerOptions options;
    options.macro.cells_per_stage = args.get_int("cells", 5);
    options.macro.input_size = args.get_int("input", 32);
    options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    // --arena-budget <KB>: hard activation-arena ceiling. The planner
    // row-strip-streams conv/pool nodes until the plan fits (or fails
    // loudly), without changing a single logit bit.
    options.plan.arena_budget =
        static_cast<long long>(args.get_int("arena-budget", 0)) * 1024;

    std::cout << "Step 1+2: lowering " << genotype.to_string()
              << " and running the pass pipeline\n";
    compile::CompiledModel model = compile::compile_genotype(genotype, options);

    // Predicted latency: profile the target into a LUT estimator (the
    // search-side cost model), on the same quantized deployment model.
    Rng profile_rng(options.seed ^ 0xBEEF);
    LatencyTable table = build_latency_table(mcu, profile_rng, options.macro);
    const LatencyEstimator estimator(std::move(table),
                                     profile_constant_overhead_ms(mcu, profile_rng),
                                     mcu.clock_hz);
    const MacroModel macro =
        quantize_model(build_macro_model(genotype, options.macro), options.quant);
    model.report.predicted_latency_ms = estimator.estimate_ms(macro);
    Rng measure_rng(options.seed ^ 0x3EA5);
    model.report.executed_latency_ms = measure_compiled_latency_ms(model, mcu, measure_rng);

    std::cout << "\n" << model.report.to_string() << "\n";

    std::cout << "Step 4: int8 inference (" << runs << " runs x {1, " << threads
              << "} threads)\n";
    DatasetSpec spec;
    spec.channels = options.macro.input_channels;
    spec.height = spec.width = options.macro.input_size;
    Rng data_rng(options.seed ^ 0xDA7A);
    SyntheticDataset dataset(spec, data_rng);
    const Tensor input = dataset.sample_batch(1, data_rng).images;

    // The serial executor profiles per-node wall time (ExecOptions::
    // profile) so step 6 can print measured vs predicted per-op cost.
    rt::Executor int8_serial(model.graph, model.plan, rt::ExecOptions{1, nullptr, true});
    rt::Executor int8_threaded(model.graph, model.plan, rt::ExecOptions{threads});
    double serial_wall_ms = 0.0;
    auto ref_t0 = std::chrono::steady_clock::now();
    const Tensor reference = int8_serial.run(input);
    serial_wall_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - ref_t0)
                          .count();
    const std::uint64_t hash =
        fnv1a64(reference.data().data(), reference.numel() * sizeof(float));
    bool identical = true;
    double int8_ms = 1e300;
    for (int r = 0; r < runs; ++r) {
      for (rt::Executor* exec : {&int8_serial, &int8_threaded}) {
        const auto t0 = std::chrono::steady_clock::now();
        const Tensor y = exec->run(input);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        int8_ms = std::min(int8_ms, ms);
        if (exec == &int8_serial) serial_wall_ms += ms;
        for (std::size_t i = 0; i < y.numel(); ++i) {
          if (y[i] != reference[i]) identical = false;
        }
      }
    }
    std::printf("  logits hash %016llx, bit-identical across runs/threads: %s\n",
                static_cast<unsigned long long>(hash), identical ? "yes" : "NO");
    if (!identical) return 1;

    std::cout << "Step 5: naive float interpreter comparison\n";
    compile::CompilerOptions naive = options;
    naive.fold = naive.fuse = naive.quantize = false;
    // The float interpreter is the numeric reference, not a deployment:
    // an int8-sized arena budget would be unreachable for f32 buffers.
    naive.plan.arena_budget = 0;
    compile::CompiledModel float_model = compile::compile_genotype(genotype, naive);
    rt::Executor float_exec(float_model.graph, rt::ExecOptions{1});
    const Tensor float_logits = float_exec.run(input);
    double float_ms = 1e300;
    for (int r = 0; r < runs; ++r) float_ms = std::min(float_ms, time_run_ms(float_exec, input));

    int argmax_q = 0, argmax_f = 0;
    for (std::size_t i = 1; i < reference.numel(); ++i) {
      if (reference[i] > reference[static_cast<std::size_t>(argmax_q)])
        argmax_q = static_cast<int>(i);
      if (float_logits[i] > float_logits[static_cast<std::size_t>(argmax_f)])
        argmax_f = static_cast<int>(i);
    }

    TablePrinter out({"Metric", "Value"});
    out.add_row({"executed ops (float naive -> fused int8)",
                 std::to_string(float_model.graph.executed_node_count()) + " -> " +
                     std::to_string(model.graph.executed_node_count())});
    out.add_row({"planned arena", TablePrinter::fmt(model.plan.arena_bytes / 1024.0, 1) + " KB"});
    if (!model.plan.strips.empty()) {
      out.add_row({"row-strip streamed nodes", std::to_string(model.plan.strips.size())});
      out.add_row({"stream scratch",
                   TablePrinter::fmt(model.plan.stream_scratch_bytes / 1024.0, 1) + " KB"});
    }
    out.add_row({"arena / model-predicted peak",
                 TablePrinter::fmt(model.report.arena_to_model_ratio, 3)});
    out.add_row({"predicted latency (LUT)",
                 TablePrinter::fmt(model.report.predicted_latency_ms, 3) + " ms"});
    out.add_row({"executed latency (mcusim)",
                 TablePrinter::fmt(model.report.executed_latency_ms, 3) + " ms"});
    out.add_row({"host: float naive", TablePrinter::fmt(float_ms, 2) + " ms"});
    out.add_row({"host: fused int8", TablePrinter::fmt(int8_ms, 2) + " ms"});
    out.add_row({"host speedup", TablePrinter::fmt(float_ms / int8_ms, 2) + "x"});
    out.add_row({"top-1 agreement (int8 vs float)", argmax_q == argmax_f ? "yes" : "no"});
    std::cout << out.render();

    // Step 6: per-op runtime profile — the serial executor's measured
    // per-node wall time (kernel attribution from the selection table)
    // against the mcusim simulator's predicted per-layer latency on
    // the same schedule (plan.schedule index i <-> per_layer_cycles[i]).
    std::cout << "Step 6: per-op runtime profile (host-measured vs mcusim-predicted)\n";
    const SimulatedRun sim = simulate_compiled(model, mcu);
    std::vector<double> predicted_ms_by_node(static_cast<std::size_t>(model.graph.size()), 0.0);
    for (std::size_t i = 0; i < model.plan.schedule.size(); ++i) {
      if (i < sim.per_layer_cycles.size()) {
        predicted_ms_by_node[static_cast<std::size_t>(model.plan.schedule[i])] =
            sim.per_layer_cycles[i] / mcu.clock_hz * 1000.0;
      }
    }
    std::vector<const rt::OpProfileEntry*> hot;
    double profiled_total_ms = 0.0;
    for (const rt::OpProfileEntry& e : int8_serial.op_profile()) {
      if (e.node_id < 0 || e.calls == 0) continue;
      hot.push_back(&e);
      profiled_total_ms += e.total_ms;
    }
    std::sort(hot.begin(), hot.end(), [](const rt::OpProfileEntry* a,
                                         const rt::OpProfileEntry* b) {
      return a->total_ms > b->total_ms;
    });
    const std::size_t top_n =
        std::min(hot.size(), static_cast<std::size_t>(std::max(args.get_int("top", 10), 1)));
    TablePrinter ops({"Op", "Node", "Kernel", "Calls", "Host mean(ms)", "Predicted(ms)"});
    for (std::size_t i = 0; i < top_n; ++i) {
      const rt::OpProfileEntry& e = *hot[i];
      std::string node_label = "%";
      node_label += std::to_string(e.node_id);
      ops.add_row({e.op, node_label,
                   e.kernel[0] != '\0' ? e.kernel : "-", std::to_string(e.calls),
                   TablePrinter::fmt(e.total_ms / static_cast<double>(e.calls), 4),
                   TablePrinter::fmt(predicted_ms_by_node[static_cast<std::size_t>(e.node_id)],
                                     4)});
    }
    std::cout << ops.render();
    const double coverage =
        serial_wall_ms > 0.0 ? 100.0 * profiled_total_ms / serial_wall_ms : 0.0;
    std::printf("  %zu of %zu executed ops shown; per-op spans cover %.1f%% of the serial "
                "executor wall (%.2f of %.2f ms)\n",
                top_n, hot.size(), coverage, profiled_total_ms, serial_wall_ms);

    examples::write_observability_outputs(args);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
