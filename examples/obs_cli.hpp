// Shared --trace-out / --metrics-out wiring for the example CLIs.
//
// Every example that does real work accepts:
//
//   --trace-out <file>    enable obs tracing for the whole run and
//                         write a Chrome trace-event JSON at exit
//                         (load it at https://ui.perfetto.dev)
//   --metrics-out <file>  dump the process metrics registry as JSON
//
// Both files are produced by the strict serializer in
// src/common/json.hpp, so `json_validate <file>` (and the CI
// observability job) can re-parse them byte for byte. Header-only so
// examples/*.cpp stays the complete list of example executables.
#pragma once

#include <iostream>
#include <string>

#include "src/common/cli.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace micronas::examples {

/// Flag names to append to every example's known-flags list.
inline const char* kTraceOutFlag = "trace-out";
inline const char* kMetricsOutFlag = "metrics-out";

/// Call before the work: turns tracing on when --trace-out was passed.
/// Returns true when tracing is live.
inline bool maybe_enable_tracing(const CliArgs& args) {
  if (!args.has(kTraceOutFlag)) return false;
  obs::enable_tracing();
  return true;
}

/// Call after the work: writes whichever of --trace-out /
/// --metrics-out was requested and says where they went (on stderr,
/// keeping stdout's result tables parseable).
inline void write_observability_outputs(const CliArgs& args) {
  if (args.has(kTraceOutFlag)) {
    const std::string path = args.get_string(kTraceOutFlag, "trace.json");
    obs::write_chrome_trace(path);
    std::cerr << "trace written to " << path
              << " (" << obs::dropped_events() << " events dropped to ring wraparound;"
              << " load in https://ui.perfetto.dev or chrome://tracing)\n";
  }
  if (args.has(kMetricsOutFlag)) {
    const std::string path = args.get_string(kMetricsOutFlag, "metrics.json");
    obs::MetricsRegistry::instance().write_json(path);
    std::cerr << "metrics written to " << path << "\n";
  }
}

/// The one shared print path for registry telemetry: every example
/// that reports metrics on stdout renders the same table format.
inline void print_metrics_section(const std::string& title, const std::string& prefix) {
  const std::string table = obs::MetricsRegistry::instance().render_table(prefix);
  if (table.empty()) return;
  std::cout << title << "\n" << table;
}

}  // namespace micronas::examples
