// Multi-MCU Pareto scenario sweep: one NSGA-II search per hardware
// target, all sharing the facade's memoized genotype-indicator cache —
// the "consistently discovers highly efficient models across various
// constraints" claim, answered as whole trade-off surfaces instead of
// one (weights, budget) query per run.
//
//   ./pareto_sweep                                  # m4 + m7 + m33 portfolio
//   ./pareto_sweep --mcus m4,m7hp --pop 24 --gens 8
//   ./pareto_sweep --threads 0 --csv sweep          # sweep.<target>.csv per target
//   ./pareto_sweep --quality oracle                 # accuracy/latency/memory surface
//   ./pareto_sweep --trace-out trace.json --metrics-out metrics.json
#include <iostream>

#include "examples/cli.hpp"
#include "src/core/micronas.hpp"
#include "src/core/report.hpp"

using namespace micronas;

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "One NSGA-II search per MCU target, all sharing the memoized genotype\n"
        "indicator cache; prints each target's Pareto front (optionally as CSV).");
    cli.flag("mcus", "a,b,...", "m4,m7,m33", "comma-separated MCU presets to sweep")
        .flag("pop", "N", "24", "NSGA-II population size")
        .flag("gens", "N", "8", "NSGA-II generations")
        .flag("rows", "N", "10", "max Pareto rows printed per target")
        .flag("seed", "N", "1", "search seed")
        .flag("threads", "N", "1", "evaluation threads (0 = one per core)")
        .flag("cache", "0|1", "1", "memoize genotype indicators across targets")
        .flag("dataset", "name", "cifar10", "NB201 dataset the quality signal targets")
        .flag("quality", "proxy|oracle", "proxy", "quality signal source")
        .flag("csv", "prefix", "", "write <prefix>.<target>.csv per target")
        .flag("constrain-sram", "0|1", "0", "derive a per-target SRAM bound from each MCU")
        .flag("stream-sram", "0|1", "0", "bound the row-strip-streamed peak instead")
        .flag("sram-kb", "KB", "0", "one explicit SRAM bound for every target");
    const CliArgs args = cli.parse(argc, argv);
    examples::maybe_enable_tracing(args);
    const std::string quality = args.get_string("quality", "proxy");
    if (quality != "proxy" && quality != "oracle") {
      throw std::invalid_argument("--quality must be 'proxy' or 'oracle'");
    }

    MicroNasConfig cfg;
    cfg.dataset = nb201::dataset_from_name(args.get_string("dataset", "cifar10"));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.batch_size = 16;
    cfg.proxy_net.input_size = 8;
    cfg.proxy_net.base_channels = 4;
    cfg.lr.grid = 10;
    cfg.lr.input_size = 8;
    cfg.threads = args.get_int("threads", 1);
    cfg.cache = args.get_bool("cache", true);
    MicroNas nas(cfg);

    ParetoSweepConfig sweep;
    sweep.mcu_presets = args.get_list("mcus", "m4,m7,m33");
    sweep.proxy_quality = quality == "proxy";
    sweep.nsga2.dataset = cfg.dataset;
    sweep.nsga2.population_size = args.get_int("pop", 24);
    sweep.nsga2.generations = args.get_int("gens", 8);
    // SRAM bounds: --sram-kb sets one explicit bound for every target,
    // --constrain-sram derives a per-target bound from each MCU's own
    // capacity (overriding --sram-kb), and --stream-sram counts the
    // row-strip-streamed peak (what an arena_budget-constrained compile
    // achieves) instead of the plain peak. Note the analytic memory
    // model prices fp32 activations — MCU-scale budgets only admit
    // cells here once quantization enters the costing.
    const int sram_kb = args.get_int("sram-kb", 0);
    if (sram_kb > 0) sweep.nsga2.constraints.max_sram_kb = static_cast<double>(sram_kb);
    sweep.constrain_sram_to_mcu = args.get_bool("constrain-sram", false);
    sweep.sram_streaming = args.get_bool("stream-sram", false);

    std::cout << "NSGA-II scenario sweep over " << sweep.mcu_presets.size()
              << " MCU targets (pop " << sweep.nsga2.population_size << ", "
              << sweep.nsga2.generations << " generations, quality = " << quality
              << (sweep.constrain_sram_to_mcu
                      ? std::string(", SRAM bound = per-MCU budget") +
                            (sweep.sram_streaming ? " on streamed peak" : "")
                      : "")
              << ")\n";

    const ParetoSweepResult result = nas.pareto_sweep(sweep);

    const int max_rows = args.get_int("rows", 10);
    const std::string csv_prefix = args.get_string("csv", "");
    for (const ScenarioResult& s : result.scenarios) {
      std::string description = s.mcu_name;
      for (const McuPreset& p : mcu_presets()) {
        if (p.name == s.mcu_name) description = p.description;
      }
      std::cout << "\n--- " << s.mcu_name << ": " << description << " ---\n"
                << "Pareto archive: " << s.search.archive.size() << " non-dominated cells ("
                << s.search.evaluations << " scoring requests)\n\n";

      TablePrinter table(
          {"Latency(ms)", "SRAM(KB)", "Streamed(KB)", "ACC(%)", "NTK k", "LR", "Cell"});
      const std::vector<ParetoEntry> front = s.search.archive.snapshot();
      const std::size_t stride =
          std::max<std::size_t>(1, front.size() / static_cast<std::size_t>(std::max(max_rows, 1)));
      for (std::size_t i = 0; i < front.size(); i += stride) {
        const ParetoEntry& e = front[i];
        table.add_row({TablePrinter::fmt(e.indicators.latency_ms, 1),
                       TablePrinter::fmt(e.indicators.peak_sram_kb, 0),
                       TablePrinter::fmt(e.indicators.streamed_sram_kb, 0),
                       TablePrinter::fmt(e.accuracy, 2),
                       TablePrinter::fmt(e.indicators.ntk_condition, 1),
                       TablePrinter::fmt(e.indicators.linear_regions, 0),
                       e.genotype.to_string()});
      }
      std::cout << table.render();

      if (!csv_prefix.empty()) {
        const std::string path = csv_prefix + "." + s.mcu_name + ".csv";
        s.search.archive.save_csv(path);
        std::cout << "archive written to " << path << "\n";
      }
    }

    std::cout << "\nShared engine: " << result.shared_stats.requests << " proxy requests, "
              << TablePrinter::fmt(100.0 * result.shared_stats.hit_rate(), 1)
              << " % served from the genotype-indicator cache.\n"
              << "Cross-target reuse (targets 2+): "
              << TablePrinter::fmt(100.0 * result.cross_target_hit_rate, 1)
              << " % of quality scorings replayed instead of recomputed.\n";
    // Same registry code path serve_bench prints from: the shared
    // engine mirrored its request/hit counters live and published the
    // hit-rate gauges when pareto_sweep snapshotted its stats.
    examples::print_metrics_section("Registry metrics:", "eval.");
    examples::write_observability_outputs(args);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
