// The paper's latency-modeling workflow as a standalone study:
//   1. profile every op shape in the search space on the (simulated)
//      STM32F746 into a lookup table,
//   2. persist the table as a reusable artifact,
//   3. validate the compositional estimator against end-to-end
//      measurements,
//   4. show where the estimator's error comes from (SRAM pressure),
//   5. close the loop through the deployment compiler: compare the
//      estimator's prediction against the *compiled* (fused, int8,
//      memory-planned) schedule the runtime actually executes.
//
//   ./latency_model_study --table-path /tmp/f746_lut.txt --sample 80
#include <iostream>

#include "examples/cli.hpp"
#include "src/compile/compiler.hpp"
#include "src/core/report.hpp"
#include "src/data/synthetic.hpp"
#include "src/hw/latency_estimator.hpp"
#include "src/mcusim/profiler.hpp"
#include "src/nb201/space.hpp"
#include "src/stats/correlation.hpp"
#include "src/stats/summary.hpp"

using namespace micronas;

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "Profile the simulated MCU into a latency LUT, persist it, and report the\n"
        "estimator's fidelity (rank correlation, error quantiles) on a random sample.");
    cli.flag("table-path", "file", "/tmp/micronas_f746_lut.txt", "where the LUT is cached")
        .flag("sample", "N", "80", "random genotypes in the fidelity sample")
        .flag("seed", "N", "1", "sampling seed");
    const CliArgs args = cli.parse(argc, argv);
    const std::string table_path = args.get_string("table-path", "/tmp/micronas_f746_lut.txt");
    const int sample_size = args.get_int("sample", 80);
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

    const McuSpec mcu;
    std::cout << "Step 1: profiling " << enumerate_search_space_layers().size()
              << " distinct op shapes on the simulated STM32F746 (216 MHz, median of 7 runs)\n";
    LatencyTable table = build_latency_table(mcu, rng);
    const double overhead_ms = profile_constant_overhead_ms(mcu, rng);
    std::cout << "  profiled " << table.size() << " LUT entries + constant overhead "
              << TablePrinter::fmt(overhead_ms, 3) << " ms\n";

    std::cout << "Step 2: saving the table to " << table_path << " and reloading\n";
    table.save(table_path);
    LatencyTable reloaded = LatencyTable::load(table_path);
    std::cout << "  round-trip OK (" << reloaded.size() << " entries)\n";

    const LatencyEstimator estimator(std::move(reloaded), overhead_ms, mcu.clock_hz);

    std::cout << "Step 3: validating the estimator on " << sample_size
              << " random architectures\n\n";
    Rng arch_rng = rng.fork(1);
    Rng jitter_rng = rng.fork(2);
    std::vector<double> predicted, measured;
    std::vector<double> err_pressured, err_free;
    for (const auto& g : nb201::sample_genotypes(arch_rng, sample_size)) {
      const MacroModel m = build_macro_model(g);
      const double est = estimator.estimate_ms(m);
      const double sim = measure_latency_ms(m, mcu, jitter_rng);
      predicted.push_back(est);
      measured.push_back(sim);
      const double rel = std::abs(est - sim) / sim;
      if (simulate_network(m, mcu).sram_pressure) {
        err_pressured.push_back(rel);
      } else {
        err_free.push_back(rel);
      }
    }

    TablePrinter table_out({"Metric", "Value"});
    table_out.add_row({"MAPE", TablePrinter::fmt(stats::mape(predicted, measured) * 100.0, 2) + " %"});
    table_out.add_row({"Spearman rho", TablePrinter::fmt(stats::spearman_rho(predicted, measured), 4)});
    if (!err_free.empty()) {
      table_out.add_row({"Mean error (no SRAM pressure)",
                         TablePrinter::fmt(stats::summarize(err_free).mean * 100.0, 2) + " %"});
    }
    if (!err_pressured.empty()) {
      table_out.add_row({"Mean error (SRAM-pressured)",
                         TablePrinter::fmt(stats::summarize(err_pressured).mean * 100.0, 2) + " %"});
    }
    std::cout << table_out.render();

    std::cout << "\nStep 4: the residual error concentrates in SRAM-pressured networks — the "
                 "cross-layer effect per-op profiling cannot observe. This is the model gap a "
                 "board-validated LUT carries too, and why the paper validates end-to-end.\n";

    const int compiled_sample = std::min(8, sample_size);
    std::cout << "\nStep 5: predicted vs executed through the deployment compiler ("
              << compiled_sample << " genotypes, fused int8 schedules)\n\n";
    Rng compile_rng = rng.fork(3);
    TablePrinter compiled_out(
        {"Architecture", "Predicted ms", "Executed ms", "Delta", "Arena/model peak"});
    for (const auto& g : nb201::sample_genotypes(compile_rng, compiled_sample)) {
      compile::CompilerOptions copts;
      const compile::CompiledModel cm = compile::compile_genotype(g, copts);
      const MacroModel qm = quantize_model(build_macro_model(g), copts.quant);
      const double pred = estimator.estimate_ms(qm);
      Rng m_rng = compile_rng.fork(g.stable_hash());
      const double exec = measure_compiled_latency_ms(cm, mcu, m_rng);
      compiled_out.add_row({std::to_string(g.index()), TablePrinter::fmt(pred, 3),
                            TablePrinter::fmt(exec, 3),
                            TablePrinter::fmt((exec - pred) / pred * 100.0, 1) + " %",
                            TablePrinter::fmt(cm.report.arena_to_model_ratio, 3)});
    }
    std::cout << compiled_out.render();
    std::cout << "\nPredicted and executed agree closely on the compiled schedule: skip edges "
                 "alias away their copy cost while quantize/dequantize add bookkeeping ops, "
                 "and the planned arena stays under the analytic peak — the deployment loop "
                 "validates both cost models end-to-end.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
