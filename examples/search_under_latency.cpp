// End-to-end hardware-aware search under a latency budget — the
// paper's headline workflow: "find me the most accurate cell that runs
// under N milliseconds on my MCU."
//
//   ./search_under_latency --max-latency-ms 600
//   ./search_under_latency --max-latency-ms 400 --dataset cifar100 --seed 3
//   ./search_under_latency --max-flops-m 80 --threads 8
//
// `--threads N` scores each pruning round's candidates on N workers
// (0 = one per hardware thread); the discovered cell is identical for
// every thread count. `--cache false` disables indicator memoization.
#include <iostream>

#include "examples/cli.hpp"
#include "src/core/micronas.hpp"
#include "src/core/report.hpp"

using namespace micronas;

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "Run the constrained evolutionary search: maximize proxy quality under\n"
        "hardware budgets (latency / FLOPs / params / SRAM).");
    cli.flag("max-latency-ms", "ms", "", "latency budget")
        .flag("max-flops-m", "M", "", "FLOPs budget, millions")
        .flag("max-params-m", "M", "", "parameter budget, millions")
        .flag("max-sram-kb", "KB", "", "SRAM budget")
        .flag("dataset", "name", "cifar10", "NB201 dataset the quality signal targets")
        .flag("seed", "N", "1", "search seed")
        .flag("latency-weight", "w", "", "soft latency-penalty weight")
        .flag("threads", "N", "1", "evaluation threads (0 = one per core)")
        .flag("cache", "0|1", "1", "memoize genotype indicators");
    const CliArgs args = cli.parse(argc, argv);

    MicroNasConfig cfg;
    cfg.dataset = nb201::dataset_from_name(args.get_string("dataset", "cifar10"));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.batch_size = 16;
    cfg.proxy_net.input_size = 8;
    cfg.proxy_net.base_channels = 4;
    cfg.lr.grid = 10;
    cfg.lr.input_size = 8;
    cfg.weights = IndicatorWeights::latency_guided(args.get_double("latency-weight", 1.0));
    cfg.threads = args.get_int("threads", 1);
    cfg.cache = args.get_bool("cache", true);

    if (args.has("max-latency-ms")) cfg.constraints.max_latency_ms = args.get_double("max-latency-ms", 0);
    if (args.has("max-flops-m")) cfg.constraints.max_flops_m = args.get_double("max-flops-m", 0);
    if (args.has("max-params-m")) cfg.constraints.max_params_m = args.get_double("max-params-m", 0);
    if (args.has("max-sram-kb")) cfg.constraints.max_sram_kb = args.get_double("max-sram-kb", 0);

    std::cout << "MicroNAS hardware-aware search (" << nb201::dataset_name(cfg.dataset) << ")\n";
    if (cfg.constraints.any()) {
      if (cfg.constraints.max_latency_ms) std::cout << "  constraint: latency <= " << *cfg.constraints.max_latency_ms << " ms\n";
      if (cfg.constraints.max_flops_m) std::cout << "  constraint: FLOPs <= " << *cfg.constraints.max_flops_m << " M\n";
      if (cfg.constraints.max_params_m) std::cout << "  constraint: params <= " << *cfg.constraints.max_params_m << " M\n";
      if (cfg.constraints.max_sram_kb) std::cout << "  constraint: SRAM <= " << *cfg.constraints.max_sram_kb << " KB\n";
    } else {
      std::cout << "  no hard constraints (latency-guided objective only)\n";
    }
    std::cout << "\nSearching (supernet pruning, ~84 proxy evaluations per round)...\n\n";

    MicroNas nas(cfg);
    const DiscoveredModel m = nas.search();

    std::cout << "Discovered cell: " << m.genotype.to_string() << "\n\n";
    TablePrinter table({"Metric", "Value"});
    table.add_row({"Accuracy (surrogate)", TablePrinter::fmt(m.accuracy, 2) + " %"});
    table.add_row({"Latency (estimate)", TablePrinter::fmt(m.indicators.latency_ms, 1) + " ms"});
    table.add_row({"Latency (measured)", TablePrinter::fmt(m.measured_latency_ms, 1) + " ms"});
    table.add_row({"FLOPs", TablePrinter::fmt(m.indicators.flops_m, 2) + " M"});
    table.add_row({"Params", TablePrinter::fmt(m.indicators.params_m, 3) + " M"});
    table.add_row({"Peak SRAM", TablePrinter::fmt(m.indicators.peak_sram_kb, 1) + " KB"});
    table.add_row({"Proxy evaluations", TablePrinter::fmt_int(m.proxy_evals)});
    table.add_row({"Wall time", TablePrinter::fmt(m.wall_seconds, 1) + " s"});
    table.add_row({"Modeled search cost", TablePrinter::fmt(m.modeled_gpu_hours, 3) + " GPU-h"});
    table.add_row({"Adaptive rounds used", TablePrinter::fmt_int(m.adapt_rounds_used)});
    table.add_row({"Eval threads", TablePrinter::fmt_int(nas.engine().threads())});
    // Supernet scoring dominates this workflow; the overall rate folds
    // in the (few) concrete-genotype requests as well.
    table.add_row({"Supernet cache hits", TablePrinter::fmt_int(m.eval_stats.supernet_hits) +
                                              " / " +
                                              TablePrinter::fmt_int(m.eval_stats.supernet_requests)});
    table.add_row({"Cache hit rate", TablePrinter::fmt(100.0 * m.eval_stats.overall_hit_rate(), 1) + " %"});
    table.add_row({"Final hw weights", "flops=" + TablePrinter::fmt(m.final_weights.flops, 2) +
                                           ", latency=" + TablePrinter::fmt(m.final_weights.latency, 2)});
    std::cout << table.render();

    if (cfg.constraints.any()) {
      const bool ok = cfg.constraints.satisfied_by(m.indicators);
      std::cout << "\nConstraints " << (ok ? "SATISFIED" : "NOT satisfied (weight escalation exhausted)")
                << "\n";
      return ok ? 0 : 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
