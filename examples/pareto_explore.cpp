// Accuracy-vs-latency Pareto exploration of the full NAS-Bench-201
// space, and where the MicroNAS search result lands relative to the
// true front — the "is the 84-evaluation search finding genuinely good
// trade-offs?" question a downstream user asks first.
//
//   ./pareto_explore --dataset cifar10 --rows 12
//   ./pareto_explore --threads 0        # sweep on all hardware threads
#include <iostream>

#include "examples/cli.hpp"
#include "src/core/micronas.hpp"
#include "src/core/report.hpp"
#include "src/search/exhaustive.hpp"

using namespace micronas;

int main(int argc, char** argv) {
  try {
    examples::ExampleCli cli(
        "Exhaustively score a slice of the NB201 space and print the proxy-vs-cost\n"
        "Pareto front.");
    cli.flag("dataset", "name", "cifar10", "NB201 dataset the quality signal targets")
        .flag("rows", "N", "12", "max Pareto rows printed")
        .flag("seed", "N", "1", "scoring seed")
        .flag("threads", "N", "1", "evaluation threads (0 = one per core)");
    const CliArgs args = cli.parse(argc, argv);
    const auto dataset = nb201::dataset_from_name(args.get_string("dataset", "cifar10"));
    const int max_rows = args.get_int("rows", 12);
    const int threads = args.get_int("threads", 1);

    // Apparatus: profiled estimator via the MicroNas facade (it owns
    // the profiling pipeline), reused for the exhaustive sweep.
    MicroNasConfig cfg;
    cfg.dataset = dataset;
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.batch_size = 16;
    cfg.proxy_net.input_size = 8;
    cfg.proxy_net.base_channels = 4;
    cfg.lr.grid = 10;
    cfg.lr.input_size = 8;
    cfg.weights = IndicatorWeights::latency_guided(2.0);
    cfg.threads = threads;
    MicroNas nas(cfg);

    std::cout << "Enumerating all " << nb201::kNumArchitectures
              << " cells analytically (surrogate accuracy + LUT latency)...\n\n";
    const nb201::SurrogateOracle oracle;
    // Fan the sweep over an analytic engine's worker pool; record order
    // (and every value) is independent of the thread count.
    EvalEngineConfig ecfg;
    ecfg.threads = threads;
    ecfg.cache = false;  // every index visited exactly once
    const ProxyEvalEngine sweep_engine(MacroNetConfig{}, &nas.estimator(), ecfg);
    auto records = exhaustive_records(oracle, dataset, sweep_engine);
    const auto front = pareto_front(records);

    std::cout << "Pareto front (latency vs accuracy): " << front.size() << " points\n\n";
    TablePrinter table({"Latency(ms)", "ACC(%)", "FLOPs(M)", "Params(M)", "Cell"});
    const std::size_t stride = std::max<std::size_t>(1, front.size() / static_cast<std::size_t>(max_rows));
    for (std::size_t i = 0; i < front.size(); i += stride) {
      const auto& r = front[i];
      table.add_row({TablePrinter::fmt(r.latency_ms, 1), TablePrinter::fmt(r.accuracy, 2),
                     TablePrinter::fmt(r.flops_m, 1), TablePrinter::fmt(r.params_m, 3),
                     r.genotype.to_string()});
    }
    const auto& top = front.back();
    table.add_row({TablePrinter::fmt(top.latency_ms, 1), TablePrinter::fmt(top.accuracy, 2),
                   TablePrinter::fmt(top.flops_m, 1), TablePrinter::fmt(top.params_m, 3),
                   top.genotype.to_string()});
    std::cout << table.render();

    std::cout << "\nRunning the MicroNAS pruning search for comparison...\n";
    const DiscoveredModel found = nas.search();

    // Distance to the front: best front accuracy at <= found latency.
    double frontier_acc = 0.0;
    for (const auto& r : front) {
      if (r.latency_ms <= found.indicators.latency_ms) frontier_acc = r.accuracy;
    }
    std::cout << "\nMicroNAS found: " << found.genotype.to_string() << "\n"
              << "  " << TablePrinter::fmt(found.indicators.latency_ms, 1) << " ms, "
              << TablePrinter::fmt(found.accuracy, 2) << " % (surrogate)\n"
              << "  Pareto-front accuracy at that latency: " << TablePrinter::fmt(frontier_acc, 2)
              << " % -> gap " << TablePrinter::fmt(frontier_acc - found.accuracy, 2)
              << " points, reached with " << found.proxy_evals << " proxy evals instead of "
              << nb201::kNumArchitectures << " trained evals.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
