// The NAS-Bench-201 operation vocabulary.
//
// Every edge of the 4-node cell DAG carries exactly one of these five
// candidate operations; 6 edges × 5 ops = 5^6 = 15625 architectures.
#pragma once

#include <array>
#include <string>

namespace micronas::nb201 {

enum class Op : int {
  kNone = 0,        // "none"          — zeroize the edge
  kSkipConnect = 1, // "skip_connect"  — identity
  kConv1x1 = 2,     // "nor_conv_1x1"  — ReLU-conv1x1(-BN)
  kConv3x3 = 3,     // "nor_conv_3x3"  — ReLU-conv3x3(-BN)
  kAvgPool3x3 = 4,  // "avg_pool_3x3"
};

inline constexpr int kNumOps = 5;
inline constexpr std::array<Op, kNumOps> kAllOps = {
    Op::kNone, Op::kSkipConnect, Op::kConv1x1, Op::kConv3x3, Op::kAvgPool3x3};

/// Canonical NAS-Bench-201 operation names.
const std::string& op_name(Op op);

/// Parse a canonical name; throws std::invalid_argument on unknown.
Op op_from_name(const std::string& name);

/// True if the op propagates signal (everything except `none`).
bool op_carries_signal(Op op);

/// True if the op has trainable parameters (the two convolutions).
bool op_has_params(Op op);

}  // namespace micronas::nb201
