// Search-space level operations: enumeration, sampling, neighbourhoods.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/nb201/genotype.hpp"

namespace micronas::nb201 {

/// All 15 625 genotypes in index order.
std::vector<Genotype> enumerate_space();

/// Uniform random genotype.
Genotype random_genotype(Rng& rng);

/// Sample `count` genotypes without replacement (count ≤ 15625).
std::vector<Genotype> sample_genotypes(Rng& rng, int count);

/// All one-edge mutations of `g` (6 edges × 4 alternatives = 24).
std::vector<Genotype> neighbors(const Genotype& g);

/// Mutate one uniformly chosen edge to a different uniformly chosen op.
Genotype mutate(const Genotype& g, Rng& rng);

/// The supernet / partially pruned supernet: a set of candidate ops per
/// edge. The hardware-aware pruning search shrinks these sets one op at
/// a time until every edge is singleton.
class OpSet {
 public:
  /// Full supernet: all 5 ops on every edge.
  static OpSet full();

  const std::vector<Op>& ops_on_edge(int edge) const;
  bool contains(int edge, Op op) const;
  int total_ops() const;
  bool is_singleton() const;  // every edge reduced to one op

  /// Remove `op` from `edge`; throws if absent or if it would empty the edge.
  void remove(int edge, Op op);

  /// Valid only when is_singleton(): the final architecture.
  Genotype to_genotype() const;

  /// Uniform random genotype drawn from the remaining per-edge choices.
  Genotype sample(Rng& rng) const;

  /// Number of complete architectures representable (product of set sizes).
  long long cardinality() const;

 private:
  std::vector<std::vector<Op>> edge_ops_{
      std::vector<Op>(kAllOps.begin(), kAllOps.end()), std::vector<Op>(kAllOps.begin(), kAllOps.end()),
      std::vector<Op>(kAllOps.begin(), kAllOps.end()), std::vector<Op>(kAllOps.begin(), kAllOps.end()),
      std::vector<Op>(kAllOps.begin(), kAllOps.end()), std::vector<Op>(kAllOps.begin(), kAllOps.end())};
};

}  // namespace micronas::nb201
