#include "src/nb201/canonical.hpp"

#include <set>

#include "src/nb201/features.hpp"

namespace micronas::nb201 {

Genotype canonicalize(const Genotype& g) {
  const CellFeatures f = analyze_cell(g);
  Genotype out;
  for (int e = 0; e < kNumEdges; ++e) {
    out.set_op(e, f.edge_effective[static_cast<std::size_t>(e)] ? g.op(e) : Op::kNone);
  }
  return out;
}

bool is_canonical(const Genotype& g) { return canonicalize(g) == g; }

bool functionally_equivalent(const Genotype& a, const Genotype& b) {
  return canonicalize(a) == canonicalize(b);
}

SpaceRedundancy analyze_space_redundancy() {
  SpaceRedundancy r;
  std::set<int> classes;
  for (int i = 0; i < kNumArchitectures; ++i) {
    const Genotype g = Genotype::from_index(i);
    const Genotype c = canonicalize(g);
    classes.insert(c.index());
    if (c == g) ++r.already_canonical;
  }
  r.canonical_classes = static_cast<int>(classes.size());
  return r;
}

}  // namespace micronas::nb201
