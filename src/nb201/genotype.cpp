#include "src/nb201/genotype.hpp"

#include <sstream>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace micronas::nb201 {

EdgeEndpoints edge_endpoints(int edge_index) {
  static constexpr std::array<EdgeEndpoints, kNumEdges> kEdges = {
      EdgeEndpoints{0, 1}, EdgeEndpoints{0, 2}, EdgeEndpoints{1, 2},
      EdgeEndpoints{0, 3}, EdgeEndpoints{1, 3}, EdgeEndpoints{2, 3}};
  if (edge_index < 0 || edge_index >= kNumEdges) {
    throw std::out_of_range("edge_endpoints: edge index out of range");
  }
  return kEdges[static_cast<std::size_t>(edge_index)];
}

int edge_index(int from, int to) {
  for (int e = 0; e < kNumEdges; ++e) {
    const auto ep = edge_endpoints(e);
    if (ep.from == from && ep.to == to) return e;
  }
  throw std::invalid_argument("edge_index: no edge " + std::to_string(from) + "->" + std::to_string(to));
}

Op Genotype::op(int edge) const {
  if (edge < 0 || edge >= kNumEdges) throw std::out_of_range("Genotype::op: edge index");
  return ops_[static_cast<std::size_t>(edge)];
}

void Genotype::set_op(int edge, Op op) {
  if (edge < 0 || edge >= kNumEdges) throw std::out_of_range("Genotype::set_op: edge index");
  ops_[static_cast<std::size_t>(edge)] = op;
}

int Genotype::index() const {
  int idx = 0;
  int mult = 1;
  for (int e = 0; e < kNumEdges; ++e) {
    idx += static_cast<int>(ops_[static_cast<std::size_t>(e)]) * mult;
    mult *= kNumOps;
  }
  return idx;
}

Genotype Genotype::from_index(int index) {
  if (index < 0 || index >= kNumArchitectures) {
    throw std::out_of_range("Genotype::from_index: index out of range");
  }
  std::array<Op, kNumEdges> ops{};
  for (int e = 0; e < kNumEdges; ++e) {
    ops[static_cast<std::size_t>(e)] = static_cast<Op>(index % kNumOps);
    index /= kNumOps;
  }
  return Genotype(ops);
}

std::string Genotype::to_string() const {
  std::ostringstream ss;
  for (int node = 1; node < kNumNodes; ++node) {
    if (node > 1) ss << "+";
    ss << "|";
    for (int from = 0; from < node; ++from) {
      ss << op_name(op(from, node)) << "~" << from << "|";
    }
  }
  return ss.str();
}

Genotype Genotype::from_string(const std::string& arch) {
  Genotype g;
  // Split node groups on '+', tokens on '|'.
  std::vector<std::string> groups;
  {
    std::string cur;
    for (char c : arch) {
      if (c == '+') {
        groups.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    groups.push_back(cur);
  }
  if (groups.size() != kNumNodes - 1) {
    throw std::invalid_argument("Genotype::from_string: expected 3 node groups");
  }
  for (int node = 1; node < kNumNodes; ++node) {
    const std::string& grp = groups[static_cast<std::size_t>(node - 1)];
    std::vector<std::string> toks;
    std::string cur;
    for (char c : grp) {
      if (c == '|') {
        if (!cur.empty()) toks.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) toks.push_back(cur);
    if (static_cast<int>(toks.size()) != node) {
      throw std::invalid_argument("Genotype::from_string: node " + std::to_string(node) +
                                  " expects " + std::to_string(node) + " ops");
    }
    for (const auto& tok : toks) {
      const auto tilde = tok.rfind('~');
      if (tilde == std::string::npos) {
        throw std::invalid_argument("Genotype::from_string: token missing '~': " + tok);
      }
      const std::string name = tok.substr(0, tilde);
      const int from = std::stoi(tok.substr(tilde + 1));
      if (from < 0 || from >= node) {
        throw std::invalid_argument("Genotype::from_string: bad source node in: " + tok);
      }
      g.set_op(edge_index(from, node), op_from_name(name));
    }
  }
  return g;
}

std::uint64_t Genotype::stable_hash() const {
  std::uint64_t h = 0xC0FFEE5EED5ULL;
  for (int e = 0; e < kNumEdges; ++e) {
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<int>(op(e))) + 1);
  }
  return h;
}

}  // namespace micronas::nb201
