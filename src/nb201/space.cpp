#include "src/nb201/space.hpp"

#include <algorithm>
#include <stdexcept>

namespace micronas::nb201 {

std::vector<Genotype> enumerate_space() {
  std::vector<Genotype> all;
  all.reserve(kNumArchitectures);
  for (int i = 0; i < kNumArchitectures; ++i) all.push_back(Genotype::from_index(i));
  return all;
}

Genotype random_genotype(Rng& rng) {
  std::array<Op, kNumEdges> ops{};
  for (int e = 0; e < kNumEdges; ++e) {
    ops[static_cast<std::size_t>(e)] = static_cast<Op>(rng.uniform_int(0, kNumOps - 1));
  }
  return Genotype(ops);
}

std::vector<Genotype> sample_genotypes(Rng& rng, int count) {
  if (count < 0 || count > kNumArchitectures) {
    throw std::invalid_argument("sample_genotypes: count out of range");
  }
  const auto picks = rng.sample_without_replacement(kNumArchitectures, static_cast<std::size_t>(count));
  std::vector<Genotype> out;
  out.reserve(picks.size());
  for (const auto idx : picks) out.push_back(Genotype::from_index(static_cast<int>(idx)));
  return out;
}

std::vector<Genotype> neighbors(const Genotype& g) {
  std::vector<Genotype> out;
  out.reserve(kNumEdges * (kNumOps - 1));
  for (int e = 0; e < kNumEdges; ++e) {
    for (Op op : kAllOps) {
      if (op == g.op(e)) continue;
      Genotype n = g;
      n.set_op(e, op);
      out.push_back(n);
    }
  }
  return out;
}

Genotype mutate(const Genotype& g, Rng& rng) {
  const int e = rng.uniform_int(0, kNumEdges - 1);
  Op op = g.op(e);
  while (op == g.op(e)) op = static_cast<Op>(rng.uniform_int(0, kNumOps - 1));
  Genotype out = g;
  out.set_op(e, op);
  return out;
}

OpSet OpSet::full() { return OpSet{}; }

const std::vector<Op>& OpSet::ops_on_edge(int edge) const {
  if (edge < 0 || edge >= kNumEdges) throw std::out_of_range("OpSet: edge index");
  return edge_ops_[static_cast<std::size_t>(edge)];
}

bool OpSet::contains(int edge, Op op) const {
  const auto& ops = ops_on_edge(edge);
  return std::find(ops.begin(), ops.end(), op) != ops.end();
}

int OpSet::total_ops() const {
  int n = 0;
  for (const auto& ops : edge_ops_) n += static_cast<int>(ops.size());
  return n;
}

bool OpSet::is_singleton() const {
  return std::all_of(edge_ops_.begin(), edge_ops_.end(),
                     [](const auto& ops) { return ops.size() == 1; });
}

void OpSet::remove(int edge, Op op) {
  if (edge < 0 || edge >= kNumEdges) throw std::out_of_range("OpSet::remove: edge index");
  auto& ops = edge_ops_[static_cast<std::size_t>(edge)];
  const auto it = std::find(ops.begin(), ops.end(), op);
  if (it == ops.end()) throw std::invalid_argument("OpSet::remove: op not present on edge");
  if (ops.size() == 1) throw std::logic_error("OpSet::remove: cannot empty an edge");
  ops.erase(it);
}

Genotype OpSet::to_genotype() const {
  if (!is_singleton()) throw std::logic_error("OpSet::to_genotype: set is not singleton");
  std::array<Op, kNumEdges> ops{};
  for (int e = 0; e < kNumEdges; ++e) ops[static_cast<std::size_t>(e)] = edge_ops_[static_cast<std::size_t>(e)].front();
  return Genotype(ops);
}

Genotype OpSet::sample(Rng& rng) const {
  std::array<Op, kNumEdges> ops{};
  for (int e = 0; e < kNumEdges; ++e) {
    const auto& choices = edge_ops_[static_cast<std::size_t>(e)];
    ops[static_cast<std::size_t>(e)] = choices[rng.index(choices.size())];
  }
  return Genotype(ops);
}

long long OpSet::cardinality() const {
  long long n = 1;
  for (const auto& ops : edge_ops_) n *= static_cast<long long>(ops.size());
  return n;
}

}  // namespace micronas::nb201
