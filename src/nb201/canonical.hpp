// Functional canonicalization of NAS-Bench-201 cells.
//
// Many of the 15 625 genotypes are functionally identical: an edge
// whose source never receives signal, or whose destination never
// reaches the output, contributes nothing regardless of its op. The
// canonical form rewrites every such dead edge to `none`, exposing the
// cell's true behaviour class. Useful for deduplicating search
// trajectories and for reporting how much of the space is redundant.
#pragma once

#include "src/nb201/genotype.hpp"

namespace micronas::nb201 {

/// Canonical representative: dead edges rewritten to `none`. Idempotent;
/// preserves the cell's function exactly.
Genotype canonicalize(const Genotype& g);

/// True if the genotype is its own canonical form.
bool is_canonical(const Genotype& g);

/// Two genotypes are functionally equivalent iff their canonical forms
/// coincide.
bool functionally_equivalent(const Genotype& a, const Genotype& b);

struct SpaceRedundancy {
  int total = kNumArchitectures;
  int canonical_classes = 0;        // distinct behaviour classes
  int already_canonical = 0;        // genotypes equal to their class rep
  double redundancy_fraction() const {
    return 1.0 - static_cast<double>(canonical_classes) / total;
  }
};

/// Exhaustive census of the whole space (fast: pure graph analysis).
SpaceRedundancy analyze_space_redundancy();

}  // namespace micronas::nb201
