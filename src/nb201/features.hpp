// Structural analysis of a cell genotype.
//
// These features drive the surrogate accuracy oracle and are also
// useful diagnostics in their own right (reachability pruning, depth /
// width of the effective computation graph). An edge is *effective* if
// it carries signal (op != none), its source is reachable from the cell
// input through signal-carrying edges, and its destination co-reaches
// the cell output.
#pragma once

#include <array>
#include <vector>

#include "src/nb201/genotype.hpp"

namespace micronas::nb201 {

struct CellFeatures {
  /// True if at least one signal-carrying path connects input to output.
  bool connected = false;

  /// Per-edge effectiveness (signal-carrying and on some live path).
  std::array<bool, kNumEdges> edge_effective{};

  /// Histogram of *effective* edges by op.
  int n_conv3x3 = 0;
  int n_conv1x1 = 0;
  int n_skip = 0;
  int n_pool = 0;

  /// Longest input→output path length counted in *conv* edges.
  int conv_depth = 0;
  /// Longest input→output path length counted in all effective edges.
  int graph_depth = 0;
  /// Number of distinct live input→output paths (0..4).
  int live_paths = 0;
  /// True if an effective skip edge short-circuits some live conv path
  /// (a residual-style connection).
  bool has_residual_skip = false;

  /// Weighted convolutional capacity: 1.0 per effective conv3x3 plus
  /// 0.62 per effective conv1x1 (the 1x1's relative receptive weight).
  double conv_mass() const { return 1.0 * n_conv3x3 + 0.62 * n_conv1x1; }
};

CellFeatures analyze_cell(const Genotype& g);

/// The four node paths of the NB201 DAG, as edge-index sequences:
/// {0→3}, {0→1,1→3}, {0→2,2→3}, {0→1,1→2,2→3}.
const std::vector<std::vector<int>>& all_paths();

}  // namespace micronas::nb201
