#include "src/nb201/surrogate.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "src/common/rng.hpp"
#include "src/nb201/features.hpp"

namespace micronas::nb201 {

const std::string& dataset_name(Dataset d) {
  static const std::array<std::string, kNumDatasets> names = {"cifar10", "cifar100", "imagenet16-120"};
  const int i = static_cast<int>(d);
  if (i < 0 || i >= kNumDatasets) throw std::invalid_argument("dataset_name: invalid dataset");
  return names[static_cast<std::size_t>(i)];
}

Dataset dataset_from_name(const std::string& name) {
  for (int i = 0; i < kNumDatasets; ++i) {
    if (dataset_name(static_cast<Dataset>(i)) == name) return static_cast<Dataset>(i);
  }
  throw std::invalid_argument("dataset_from_name: unknown dataset '" + name + "'");
}

double chance_accuracy(Dataset d) {
  switch (d) {
    case Dataset::kCifar10: return 10.0;
    case Dataset::kCifar100: return 1.0;
    case Dataset::kImageNet16: return 100.0 / 120.0;
  }
  throw std::invalid_argument("chance_accuracy: invalid dataset");
}

const SurrogateParams& surrogate_params(Dataset d) {
  // Ranges put the ceilings near the published NB201 optima; slopes and
  // feature weights differ per dataset so the three rankings disagree
  // mildly, as the real tables (and the paper's Fig. 2a) do.
  static const std::array<SurrogateParams, kNumDatasets> params = {{
      // range  slope  mid   conv  depth  resid breadth pool  noise
      {84.4, 0.75, 1.10, 1.15, 0.90, 1.30, 0.25, 0.10, 0.35},   // CIFAR-10
      {72.5, 0.62, 1.55, 1.08, 0.97, 1.18, 0.22, 0.08, 0.55},   // CIFAR-100
      {46.4, 0.55, 1.95, 0.98, 1.06, 1.02, 0.18, 0.05, 0.80},   // ImageNet16-120
  }};
  const int i = static_cast<int>(d);
  if (i < 0 || i >= kNumDatasets) throw std::invalid_argument("surrogate_params: invalid dataset");
  return params[static_cast<std::size_t>(i)];
}

double SurrogateOracle::structural_score(const Genotype& g, Dataset d) const {
  const CellFeatures f = analyze_cell(g);
  if (!f.connected) return -1e9;
  const SurrogateParams& p = surrogate_params(d);
  double s = 0.0;
  s += p.w_conv_mass * f.conv_mass();
  s += p.w_conv_depth * f.conv_depth;
  s += p.w_residual * (f.has_residual_skip ? 1.0 : 0.0);
  s += p.w_breadth * f.live_paths;
  s += p.w_pool * f.n_pool;
  // Pooling without any convolution smears features and hurts; a mild
  // structured penalty keeps pool-only cells below conv cells.
  if (f.conv_depth == 0) s -= 0.15 * f.n_pool;
  return s;
}

double SurrogateOracle::accuracy(const Genotype& g, Dataset d, int trial) const {
  const SurrogateParams& p = surrogate_params(d);
  const double chance = chance_accuracy(d);
  const CellFeatures f = analyze_cell(g);

  const std::uint64_t key = hash_combine(
      hash_combine(g.stable_hash(), static_cast<std::uint64_t>(static_cast<int>(d)) + 101),
      hash_combine(noise_seed_, static_cast<std::uint64_t>(trial) + 7));

  if (!f.connected) {
    // Untrainable: stuck at chance, with the tiny evaluation jitter the
    // real tables show for degenerate cells.
    return chance + 0.05 * hash_to_normal(key);
  }

  const double s = structural_score(g, d);
  const double sig = 1.0 / (1.0 + std::exp(-p.slope * (s - p.mid)));
  double acc = chance + p.range * sig + p.noise_stddev * hash_to_normal(key);
  if (acc < chance * 0.5) acc = chance * 0.5;
  if (acc > 100.0) acc = 100.0;
  return acc;
}

double SurrogateOracle::mean_accuracy(const Genotype& g, Dataset d, int trials) const {
  if (trials <= 0) throw std::invalid_argument("mean_accuracy: trials must be positive");
  double acc = 0.0;
  for (int t = 0; t < trials; ++t) acc += accuracy(g, d, t);
  return acc / trials;
}

}  // namespace micronas::nb201
