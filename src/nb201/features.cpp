#include "src/nb201/features.hpp"

#include <algorithm>

namespace micronas::nb201 {

const std::vector<std::vector<int>>& all_paths() {
  static const std::vector<std::vector<int>> kPaths = {
      {edge_index(0, 3)},
      {edge_index(0, 1), edge_index(1, 3)},
      {edge_index(0, 2), edge_index(2, 3)},
      {edge_index(0, 1), edge_index(1, 2), edge_index(2, 3)},
  };
  return kPaths;
}

CellFeatures analyze_cell(const Genotype& g) {
  CellFeatures f;

  // A path is live if all of its edges carry signal.
  std::vector<const std::vector<int>*> live;
  for (const auto& path : all_paths()) {
    const bool alive = std::all_of(path.begin(), path.end(),
                                   [&](int e) { return op_carries_signal(g.op(e)); });
    if (alive) {
      live.push_back(&path);
      for (int e : path) f.edge_effective[static_cast<std::size_t>(e)] = true;
    }
  }
  f.live_paths = static_cast<int>(live.size());
  f.connected = !live.empty();
  if (!f.connected) return f;

  for (int e = 0; e < kNumEdges; ++e) {
    if (!f.edge_effective[static_cast<std::size_t>(e)]) continue;
    switch (g.op(e)) {
      case Op::kConv3x3: ++f.n_conv3x3; break;
      case Op::kConv1x1: ++f.n_conv1x1; break;
      case Op::kSkipConnect: ++f.n_skip; break;
      case Op::kAvgPool3x3: ++f.n_pool; break;
      case Op::kNone: break;  // unreachable: effective edges carry signal
    }
  }

  for (const auto* path : live) {
    int convs = 0;
    for (int e : *path) {
      if (op_has_params(g.op(e))) ++convs;
    }
    f.conv_depth = std::max(f.conv_depth, convs);
    f.graph_depth = std::max(f.graph_depth, static_cast<int>(path->size()));
  }

  // Residual-style skip: an effective skip edge (i→j) bridging node pair
  // that is also connected by a longer live sub-path containing a conv.
  // In this 4-node DAG it is sufficient to check each skip edge against
  // the live paths that pass through both its endpoints via other edges.
  const auto path_has_conv = [&](const std::vector<int>& path) {
    return std::any_of(path.begin(), path.end(), [&](int e) { return op_has_params(g.op(e)); });
  };
  for (int e = 0; e < kNumEdges; ++e) {
    if (!f.edge_effective[static_cast<std::size_t>(e)] || g.op(e) != Op::kSkipConnect) continue;
    const auto ep = edge_endpoints(e);
    for (const auto* path : live) {
      // Does this live path route from ep.from to ep.to without edge e?
      bool visits_from = (ep.from == 0);
      bool visits_to = (ep.to == 3);
      bool uses_e = false;
      for (int pe : *path) {
        const auto pep = edge_endpoints(pe);
        if (pe == e) uses_e = true;
        if (pep.to == ep.from || pep.from == ep.from) visits_from = true;
        if (pep.to == ep.to || pep.from == ep.to) visits_to = true;
      }
      if (!uses_e && visits_from && visits_to && path_has_conv(*path)) {
        f.has_residual_skip = true;
        break;
      }
    }
    if (f.has_residual_skip) break;
  }
  return f;
}

}  // namespace micronas::nb201
