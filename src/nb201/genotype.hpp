// Cell genotype: the 6-edge operation assignment of a NAS-Bench-201 cell.
//
// The cell is a DAG over nodes {0,1,2,3}; node 0 is the cell input,
// node 3 the output, and node j computes the sum over i<j of
// op(i→j)(node_i). Edges are ordered canonically:
//   index 0: 0→1
//   index 1: 0→2,  index 2: 1→2
//   index 3: 0→3,  index 4: 1→3,  index 5: 2→3
// which matches the canonical arch string
//   |op~0|+|op~0|op~1|+|op~0|op~1|op~2|
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "src/nb201/ops.hpp"

namespace micronas::nb201 {

inline constexpr int kNumNodes = 4;
inline constexpr int kNumEdges = 6;
inline constexpr int kNumArchitectures = 15625;  // 5^6

/// Source and destination node of each canonical edge index.
struct EdgeEndpoints {
  int from;
  int to;
};
EdgeEndpoints edge_endpoints(int edge_index);

/// Canonical edge index for (from → to); throws if not a valid pair.
int edge_index(int from, int to);

class Genotype {
 public:
  /// All edges `none`.
  Genotype() = default;
  explicit Genotype(std::array<Op, kNumEdges> ops) : ops_(ops) {}

  Op op(int edge_index) const;
  Op op(int from, int to) const { return op(edge_index(from, to)); }
  void set_op(int edge_index, Op op);

  const std::array<Op, kNumEdges>& ops() const { return ops_; }

  /// Dense index in [0, 15625): base-5 little-endian over edges.
  int index() const;
  static Genotype from_index(int index);

  /// Canonical NAS-Bench-201 arch string, e.g.
  /// "|nor_conv_3x3~0|+|none~0|skip_connect~1|+|avg_pool_3x3~0|none~1|nor_conv_1x1~2|"
  std::string to_string() const;
  static Genotype from_string(const std::string& arch);

  /// Stable 64-bit id (used for deterministic surrogate noise).
  std::uint64_t stable_hash() const;

  bool operator==(const Genotype& other) const { return ops_ == other.ops_; }
  bool operator!=(const Genotype& other) const { return !(*this == other); }
  /// Lexicographic on edge ops — usable as a map key.
  bool operator<(const Genotype& other) const { return ops_ < other.ops_; }

 private:
  std::array<Op, kNumEdges> ops_{Op::kNone, Op::kNone, Op::kNone,
                                 Op::kNone, Op::kNone, Op::kNone};
};

}  // namespace micronas::nb201
