#include "src/nb201/ops.hpp"

#include <stdexcept>

namespace micronas::nb201 {

const std::string& op_name(Op op) {
  static const std::array<std::string, kNumOps> names = {
      "none", "skip_connect", "nor_conv_1x1", "nor_conv_3x3", "avg_pool_3x3"};
  const int i = static_cast<int>(op);
  if (i < 0 || i >= kNumOps) throw std::invalid_argument("op_name: invalid op");
  return names[static_cast<std::size_t>(i)];
}

Op op_from_name(const std::string& name) {
  for (Op op : kAllOps) {
    if (op_name(op) == name) return op;
  }
  throw std::invalid_argument("op_from_name: unknown op '" + name + "'");
}

bool op_carries_signal(Op op) { return op != Op::kNone; }

bool op_has_params(Op op) { return op == Op::kConv1x1 || op == Op::kConv3x3; }

}  // namespace micronas::nb201
