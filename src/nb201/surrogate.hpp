// Surrogate accuracy oracle — the stand-in for NAS-Bench-201's
// trained-accuracy tables (see DESIGN.md §3.2).
//
// The real benchmark ships test accuracies for all 15 625 cells on
// CIFAR-10, CIFAR-100 and ImageNet16-120 (a multi-GB artifact not
// available offline). This oracle maps structural cell features through
// a calibrated logistic response to the published accuracy ranges, with
// deterministic per-(architecture, dataset, seed) noise standing in for
// training stochasticity. Disconnected cells collapse to chance level,
// exactly as in the real tables.
//
// The oracle is deliberately a *different functional form* from the
// zero-cost proxies evaluated against it, so rank correlations are
// informative rather than tautological.
#pragma once

#include <string>

#include "src/nb201/genotype.hpp"

namespace micronas::nb201 {

enum class Dataset { kCifar10 = 0, kCifar100 = 1, kImageNet16 = 2 };

inline constexpr int kNumDatasets = 3;

const std::string& dataset_name(Dataset d);
Dataset dataset_from_name(const std::string& name);

/// Chance-level accuracy (%) for each dataset (10 / 100 / 120 classes).
double chance_accuracy(Dataset d);

struct SurrogateParams {
  /// Logistic response acc = chance + range * sigmoid(slope*(s - mid)).
  double range;
  double slope;
  double mid;
  /// Feature weights for the structural score s.
  double w_conv_mass;
  double w_conv_depth;
  double w_residual;
  double w_breadth;
  double w_pool;
  /// Training-noise stddev in accuracy points.
  double noise_stddev;
};

/// Calibrated parameters per dataset (accuracy ceilings ≈ 94.4 / 73.5 /
/// 47.3 %, the published NB201 optima).
const SurrogateParams& surrogate_params(Dataset d);

class SurrogateOracle {
 public:
  /// `noise_seed` shifts every stochastic replicate; the default mimics
  /// NB201's seed-777 tables.
  explicit SurrogateOracle(std::uint64_t noise_seed = 777) : noise_seed_(noise_seed) {}

  /// Test accuracy (%) of one trained replicate (`trial` picks the
  /// replicate, mirroring NB201's multiple training seeds).
  double accuracy(const Genotype& g, Dataset d, int trial = 0) const;

  /// Mean accuracy over `trials` replicates.
  double mean_accuracy(const Genotype& g, Dataset d, int trials = 3) const;

  /// Deterministic structural score s before the logistic map (exposed
  /// for tests and diagnostics).
  double structural_score(const Genotype& g, Dataset d) const;

 private:
  std::uint64_t noise_seed_;
};

}  // namespace micronas::nb201
