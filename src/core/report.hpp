// Fixed-width table formatting for bench/ and examples/ output.
//
// Result tables print to stdout in a stable, diffable layout so
// EXPERIMENTS.md can quote them verbatim.
#pragma once

#include <string>
#include <vector>

namespace micronas {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column widths fitted to content.
  std::string render() const;

  /// Convenience numeric formatting.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt_int(long long value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace micronas
