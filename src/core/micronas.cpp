#include "src/core/micronas.hpp"

#include <chrono>
#include <stdexcept>

#include "src/common/log.hpp"
#include "src/data/synthetic.hpp"

namespace micronas {

MicroNas::MicroNas(MicroNasConfig config)
    : config_(std::move(config)), rng_(config_.seed), oracle_() {
  if (config_.batch_size < 2) throw std::invalid_argument("MicroNas: batch_size must be >= 2");

  // Stage 1 (Fig. 1): profile the target MCU into a latency LUT plus
  // constant overhead, then freeze the estimator.
  Rng profile_rng = rng_.fork(0xBEEF);
  LatencyTable table = build_latency_table(config_.mcu, profile_rng, config_.deploy_net,
                                           config_.profiler);
  const double overhead_ms = profile_constant_overhead_ms(config_.mcu, profile_rng,
                                                          config_.profiler);
  estimator_ = std::make_unique<LatencyEstimator>(std::move(table), overhead_ms,
                                                  config_.mcu.clock_hz);

  // Stage 2: probe mini-batch from the (synthetic) target dataset at
  // the proxy network's input resolution.
  const DatasetSpec spec = dataset_spec(config_.dataset);
  config_.proxy_net.input_channels = spec.channels;
  config_.proxy_net.num_classes = spec.num_classes;
  Rng data_rng = rng_.fork(0xDA7A);
  SyntheticDataset dataset(spec, data_rng);
  Batch batch = dataset.sample_batch_resized(config_.batch_size, config_.proxy_net.input_size,
                                             data_rng);

  ProxySuiteConfig suite_config;
  suite_config.proxy_net = config_.proxy_net;
  suite_config.deploy_net = config_.deploy_net;
  suite_config.ntk = config_.ntk;
  suite_config.lr = config_.lr;
  suite_ = std::make_unique<ProxySuite>(suite_config, std::move(batch.images), estimator_.get());
  hw_model_ = std::make_unique<SupernetHwModel>(config_.deploy_net, estimator_.get());

  // Stage 3: the shared scoring backend. Its stream seed derives from
  // the config seed only, so `threads`/`cache` never change results.
  Rng engine_rng = rng_.fork(0xEA61);
  EvalEngineConfig ecfg;
  ecfg.threads = config_.threads;
  ecfg.cache = config_.cache;
  ecfg.seed = engine_rng.engine()();
  engine_ = std::make_unique<ProxyEvalEngine>(*suite_, ecfg);
}

DiscoveredModel MicroNas::finish(const nb201::Genotype& genotype, long long proxy_evals,
                                 double wall_seconds, Rng& rng) const {
  DiscoveredModel out;
  out.genotype = genotype;
  out.indicators = engine_->evaluate(genotype);
  out.accuracy = oracle_.mean_accuracy(genotype, config_.dataset);
  // Deploy (and measure) the canonical form: dead-code elimination is
  // semantics-preserving and never slower or larger, and it keeps the
  // measurement on the same model the engine's LUT estimate priced.
  const MacroModel model =
      build_macro_model(nb201::canonicalize(genotype), config_.deploy_net);
  Rng measure_rng = rng.fork(0x3EA5);
  out.measured_latency_ms = measure_latency_ms(model, config_.mcu, measure_rng);
  out.eval_stats = engine_->stats();
  out.proxy_evals = proxy_evals;
  out.wall_seconds = wall_seconds;
  out.modeled_gpu_hours = config_.cost_model.proxy_search_gpu_hours(proxy_evals);
  return out;
}

DiscoveredModel MicroNas::search() {
  IndicatorWeights weights = config_.weights;
  long long total_evals = 0;
  double total_wall = 0.0;

  PruningSearchResult result;
  int round = 0;
  for (;; ++round) {
    PruningSearchConfig pcfg;
    pcfg.weights = weights;
    pcfg.constraints = config_.constraints;
    result = pruning_search(*engine_, *hw_model_, pcfg);
    total_evals += result.proxy_evals;
    total_wall += result.wall_seconds;

    const IndicatorValues v = engine_->evaluate(result.genotype);
    ++total_evals;
    if (config_.constraints.satisfied_by(v) || round + 1 >= config_.max_adapt_rounds) break;

    // Constraint violated: escalate the hardware weights and retry —
    // the paper's adaptive indicator weighting.
    weights.flops = weights.flops == 0.0 ? 0.5 : weights.flops * config_.adapt_scale;
    weights.latency = weights.latency == 0.0 ? 0.5 : weights.latency * config_.adapt_scale;
    MICRONAS_LOG(kInfo) << "constraint violated; escalating hw weights to (flops="
                        << weights.flops << ", latency=" << weights.latency << ")";
  }

  Rng finish_rng = rng_.fork(0xF1A1);
  DiscoveredModel model = finish(result.genotype, total_evals, total_wall, finish_rng);
  model.adapt_rounds_used = round + 1;
  model.final_weights = weights;
  model.decisions = result.decisions;
  return model;
}

DiscoveredModel MicroNas::evaluate(const nb201::Genotype& genotype) {
  Rng eval_rng = rng_.fork(genotype.stable_hash());
  return finish(genotype, 1, 0.0, eval_rng);
}

}  // namespace micronas
