#include "src/core/micronas.hpp"

#include <chrono>
#include <stdexcept>

#include "src/common/log.hpp"
#include "src/data/synthetic.hpp"
#include "src/serialize/serialize.hpp"

namespace micronas {

MicroNas::MicroNas(MicroNasConfig config)
    : config_(std::move(config)), rng_(config_.seed), oracle_() {
  if (config_.batch_size < 2) throw std::invalid_argument("MicroNas: batch_size must be >= 2");

  // Stage 1 (Fig. 1): profile the target MCU into a latency LUT plus
  // constant overhead, then freeze the estimator.
  Rng profile_rng = rng_.fork(0xBEEF);
  LatencyTable table = build_latency_table(config_.mcu, profile_rng, config_.deploy_net,
                                           config_.profiler);
  const double overhead_ms = profile_constant_overhead_ms(config_.mcu, profile_rng,
                                                          config_.profiler);
  estimator_ = std::make_unique<LatencyEstimator>(std::move(table), overhead_ms,
                                                  config_.mcu.clock_hz);

  // Stage 2: probe mini-batch from the (synthetic) target dataset at
  // the proxy network's input resolution.
  const DatasetSpec spec = dataset_spec(config_.dataset);
  config_.proxy_net.input_channels = spec.channels;
  config_.proxy_net.num_classes = spec.num_classes;
  Rng data_rng = rng_.fork(0xDA7A);
  SyntheticDataset dataset(spec, data_rng);
  Batch batch = dataset.sample_batch_resized(config_.batch_size, config_.proxy_net.input_size,
                                             data_rng);

  ProxySuiteConfig suite_config;
  suite_config.proxy_net = config_.proxy_net;
  suite_config.deploy_net = config_.deploy_net;
  suite_config.ntk = config_.ntk;
  suite_config.lr = config_.lr;
  suite_ = std::make_unique<ProxySuite>(suite_config, std::move(batch.images), estimator_.get());
  hw_model_ = std::make_unique<SupernetHwModel>(config_.deploy_net, estimator_.get());

  // Stage 3: the shared scoring backend. Its stream seed derives from
  // the config seed only, so `threads`/`cache` never change results.
  Rng engine_rng = rng_.fork(0xEA61);
  EvalEngineConfig ecfg;
  ecfg.threads = config_.threads;
  ecfg.cache = config_.cache;
  ecfg.seed = engine_rng.engine()();
  engine_ = std::make_unique<ProxyEvalEngine>(*suite_, ecfg);
}

DiscoveredModel MicroNas::finish(const nb201::Genotype& genotype, long long proxy_evals,
                                 double wall_seconds, Rng& rng) const {
  DiscoveredModel out;
  out.genotype = genotype;
  out.indicators = engine_->evaluate(genotype);
  out.accuracy = oracle_.mean_accuracy(genotype, config_.dataset);
  // Deploy (and measure) the canonical form: dead-code elimination is
  // semantics-preserving and never slower or larger, and it keeps the
  // measurement on the same model the engine's LUT estimate priced.
  const MacroModel model =
      build_macro_model(nb201::canonicalize(genotype), config_.deploy_net);
  Rng measure_rng = rng.fork(0x3EA5);
  out.measured_latency_ms = measure_latency_ms(model, config_.mcu, measure_rng);
  out.eval_stats = engine_->stats();
  out.proxy_evals = proxy_evals;
  out.wall_seconds = wall_seconds;
  out.modeled_gpu_hours = config_.cost_model.proxy_search_gpu_hours(proxy_evals);
  return out;
}

DiscoveredModel MicroNas::search() {
  IndicatorWeights weights = config_.weights;
  long long total_evals = 0;
  double total_wall = 0.0;

  PruningSearchResult result;
  int round = 0;
  for (;; ++round) {
    PruningSearchConfig pcfg;
    pcfg.weights = weights;
    pcfg.constraints = config_.constraints;
    result = pruning_search(*engine_, *hw_model_, pcfg);
    total_evals += result.proxy_evals;
    total_wall += result.wall_seconds;

    const IndicatorValues v = engine_->evaluate(result.genotype);
    ++total_evals;
    if (config_.constraints.satisfied_by(v) || round + 1 >= config_.max_adapt_rounds) break;

    // Constraint violated: escalate the hardware weights and retry —
    // the paper's adaptive indicator weighting.
    weights.flops = weights.flops == 0.0 ? 0.5 : weights.flops * config_.adapt_scale;
    weights.latency = weights.latency == 0.0 ? 0.5 : weights.latency * config_.adapt_scale;
    MICRONAS_LOG(kInfo) << "constraint violated; escalating hw weights to (flops="
                        << weights.flops << ", latency=" << weights.latency << ")";
  }

  Rng finish_rng = rng_.fork(0xF1A1);
  DiscoveredModel model = finish(result.genotype, total_evals, total_wall, finish_rng);
  model.adapt_rounds_used = round + 1;
  model.final_weights = weights;
  model.decisions = result.decisions;
  return model;
}

DiscoveredModel MicroNas::evaluate(const nb201::Genotype& genotype) {
  Rng eval_rng = rng_.fork(genotype.stable_hash());
  return finish(genotype, 1, 0.0, eval_rng);
}

compile::CompiledModel MicroNas::compile_winner(const DiscoveredModel& model,
                                                compile::CompilerOptions options) const {
  // The facade owns the deployment skeleton and the reproducibility
  // seed; callers customize pass toggles, calibration and threading.
  options.macro = config_.deploy_net;
  options.seed = config_.seed;

  // Compile (and measure) the canonical form, matching finish().
  const nb201::Genotype canonical = nb201::canonicalize(model.genotype);
  compile::CompiledModel compiled = compile::compile_genotype(canonical, options);

  MacroModel macro = build_macro_model(canonical, config_.deploy_net);
  if (options.quantize) macro = quantize_model(macro, options.quant);
  compiled.report.predicted_latency_ms = estimator_->estimate_ms(macro);
  Rng measure_rng = Rng(config_.seed).fork(0xC03B);
  compiled.report.executed_latency_ms =
      measure_compiled_latency_ms(compiled, config_.mcu, measure_rng);
  return compiled;
}

compile::CompiledModel MicroNas::save_winner(const DiscoveredModel& model,
                                             const std::string& path,
                                             compile::CompilerOptions options) const {
  compile::CompiledModel compiled = compile_winner(model, std::move(options));
  serialize::save_model(compiled, path);
  return compiled;
}

compile::CompiledModel MicroNas::load_model(const std::string& path) {
  return serialize::load_model(path);
}

ParetoSweepResult MicroNas::pareto_sweep(const ParetoSweepConfig& sweep) {
  if (sweep.mcu_presets.empty()) {
    throw std::invalid_argument("pareto_sweep: at least one MCU preset required");
  }

  ParetoSweepResult out;
  long long later_requests = 0;  // shared-engine traffic on targets 2..N
  long long later_hits = 0;
  for (std::size_t t = 0; t < sweep.mcu_presets.size(); ++t) {
    const std::string& name = sweep.mcu_presets[t];
    const McuSpec& spec = mcu_preset(name);
    // Every per-target stream derives from (config seed, target name),
    // so a target's archive is the same whatever portfolio it is swept
    // in — and whatever threads/cache the engines use.
    const std::uint64_t tag = hash_combine(config_.seed, fnv1a64(name.data(), name.size()));

    // Profile this target into its own frozen estimator.
    Rng profile_rng(hash_combine(tag, 0x9F0F11E5ULL));
    LatencyTable table =
        build_latency_table(spec, profile_rng, config_.deploy_net, config_.profiler);
    const LatencyEstimator estimator(
        std::move(table), profile_constant_overhead_ms(spec, profile_rng, config_.profiler),
        spec.clock_hz);

    // Per-target analytic engine: only latency/memory re-scores here;
    // the trainless proxies replay from the shared facade engine.
    EvalEngineConfig ecfg;
    ecfg.threads = config_.threads;
    ecfg.cache = config_.cache;
    ecfg.seed = hash_combine(tag, 0xA2C11E55EEDULL);
    const ProxyEvalEngine hw_engine(config_.deploy_net, &estimator, ecfg);

    const EvalEngineStats shared_before = engine_->stats();
    Rng search_rng(hash_combine(tag, 0x5EA2C8ULL));

    Nsga2Config search_cfg = sweep.nsga2;
    if (sweep.constrain_sram_to_mcu) {
      search_cfg.constraints.max_sram_kb = static_cast<double>(spec.sram_budget_bytes) / 1024.0;
    }
    search_cfg.constraints.sram_streaming = sweep.sram_streaming;

    ScenarioResult scenario;
    scenario.mcu_name = name;
    scenario.mcu = spec;
    scenario.search = nsga2_search(hw_engine, sweep.proxy_quality ? engine_.get() : nullptr,
                                   &oracle_, search_cfg, search_rng);
    scenario.hw_stats = hw_engine.stats();
    scenario.shared_delta = engine_->stats() - shared_before;
    if (t > 0) {
      later_requests += scenario.shared_delta.requests;
      later_hits += scenario.shared_delta.cache_hits;
    }
    out.scenarios.push_back(std::move(scenario));
  }
  out.shared_stats = engine_->stats();
  out.cross_target_hit_rate =
      later_requests > 0 ? static_cast<double>(later_hits) / static_cast<double>(later_requests)
                         : 0.0;
  return out;
}

}  // namespace micronas
