#include "src/core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace micronas {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TablePrinter: headers required");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream ss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      ss << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    ss << "\n";
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += std::string(widths[c], '-') + "  ";
  ss << rule << "\n";
  for (const auto& row : rows_) emit_row(row);
  return ss.str();
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string TablePrinter::fmt_int(long long value) { return std::to_string(value); }

}  // namespace micronas
