// MicroNAS public API — the end-to-end pipeline of the paper's Fig. 1.
//
//   probe batch ─┐
//                ├─> pruning search over the cell supernet, scored by
//   latency LUT ─┘    {NTK κ, linear regions, FLOPs, latency} rank sums
//                     └─> discovered cell → deployment model → report
//
// The outer loop adapts the hardware-indicator weights until the
// discovered model satisfies the resource constraints ("MicroNAS
// adapts FLOPs and latency indicator weights, consistently discovering
// highly efficient models across various constraints", §III).
#pragma once

#include <cstdint>

#include "src/mcusim/profiler.hpp"
#include "src/nb201/surrogate.hpp"
#include "src/search/cost_model.hpp"
#include "src/search/pruning_search.hpp"

namespace micronas {

struct MicroNasConfig {
  nb201::Dataset dataset = nb201::Dataset::kCifar10;
  int batch_size = 32;                     // paper §II.A.1: 16–32 optimal
  IndicatorWeights weights = IndicatorWeights::latency_guided();
  Constraints constraints;
  CellNetConfig proxy_net;                 // defaults are the small proxy net
  MacroNetConfig deploy_net;               // defaults are the NB201 skeleton
  NtkOptions ntk;
  LinearRegionOptions lr;
  ProfilerOptions profiler;
  McuSpec mcu;
  CostModel cost_model;
  std::uint64_t seed = 1;
  /// Adaptive hardware-weight escalation (outer loop).
  int max_adapt_rounds = 4;
  double adapt_scale = 1.8;
};

struct DiscoveredModel {
  nb201::Genotype genotype;
  IndicatorValues indicators;    // full indicator set of the winner
  double accuracy = 0.0;         // surrogate trained accuracy (mean of 3)
  double measured_latency_ms = 0.0;  // MCU-simulator measurement
  long long proxy_evals = 0;
  double wall_seconds = 0.0;
  double modeled_gpu_hours = 0.0;
  int adapt_rounds_used = 0;
  IndicatorWeights final_weights;
  std::vector<PruneDecision> decisions;
};

/// End-to-end MicroNAS: owns the profiled latency estimator, probe
/// batch, proxy suite and search loop.
class MicroNas {
 public:
  explicit MicroNas(MicroNasConfig config);

  /// Run the (possibly weight-adapted) hardware-aware pruning search.
  DiscoveredModel search();

  /// Evaluate an arbitrary genotype with the same apparatus (used by
  /// examples and baseline comparisons).
  DiscoveredModel evaluate(const nb201::Genotype& genotype);

  const LatencyEstimator& estimator() const { return *estimator_; }
  const ProxySuite& suite() const { return *suite_; }
  const MicroNasConfig& config() const { return config_; }

 private:
  DiscoveredModel finish(const nb201::Genotype& genotype, long long proxy_evals,
                         double wall_seconds, Rng& rng) const;

  MicroNasConfig config_;
  Rng rng_;
  std::unique_ptr<LatencyEstimator> estimator_;
  std::unique_ptr<ProxySuite> suite_;
  std::unique_ptr<SupernetHwModel> hw_model_;
  nb201::SurrogateOracle oracle_;
};

}  // namespace micronas
