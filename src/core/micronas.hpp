// MicroNAS public API — the end-to-end pipeline of the paper's Fig. 1.
//
//   probe batch ─┐
//                ├─> pruning search over the cell supernet, scored by
//   latency LUT ─┘    {NTK κ, linear regions, FLOPs, latency} rank sums
//                     └─> discovered cell → deployment model → report
//
// The outer loop adapts the hardware-indicator weights until the
// discovered model satisfies the resource constraints ("MicroNAS
// adapts FLOPs and latency indicator weights, consistently discovering
// highly efficient models across various constraints", §III).
#pragma once

#include <cstdint>
#include <string>

#include "src/mcusim/profiler.hpp"
#include "src/nb201/surrogate.hpp"
#include "src/search/cost_model.hpp"
#include "src/search/eval_engine.hpp"
#include "src/search/nsga2_search.hpp"
#include "src/search/pruning_search.hpp"

namespace micronas {

struct MicroNasConfig {
  nb201::Dataset dataset = nb201::Dataset::kCifar10;
  int batch_size = 32;                     // paper §II.A.1: 16–32 optimal
  IndicatorWeights weights = IndicatorWeights::latency_guided();
  Constraints constraints;
  CellNetConfig proxy_net;                 // defaults are the small proxy net
  MacroNetConfig deploy_net;               // defaults are the NB201 skeleton
  NtkOptions ntk;
  LinearRegionOptions lr;
  ProfilerOptions profiler;
  McuSpec mcu;
  CostModel cost_model;
  std::uint64_t seed = 1;
  /// Adaptive hardware-weight escalation (outer loop).
  int max_adapt_rounds = 4;
  double adapt_scale = 1.8;
  /// Worker threads for candidate scoring (1 = serial, 0 = one per
  /// hardware thread). The discovered model is identical for every
  /// setting — the eval engine's scoring streams are a pure function
  /// of the candidate, not of scheduling.
  int threads = 1;
  /// Memoize genotype indicators under the canonical key so revisited
  /// architectures are never re-scored.
  bool cache = true;
};

struct DiscoveredModel {
  nb201::Genotype genotype;
  IndicatorValues indicators;    // full indicator set of the winner
  double accuracy = 0.0;         // surrogate trained accuracy (mean of 3)
  double measured_latency_ms = 0.0;  // MCU-simulator measurement
  long long proxy_evals = 0;
  double wall_seconds = 0.0;
  double modeled_gpu_hours = 0.0;
  int adapt_rounds_used = 0;
  IndicatorWeights final_weights;
  std::vector<PruneDecision> decisions;
  /// Eval-engine counters at the time the model was finalized (cache
  /// hit rates, parallel batch sizes — see EvalEngineStats).
  EvalEngineStats eval_stats;
};

/// Multi-MCU scenario sweep: one NSGA-II Pareto archive per named
/// hardware target (see mcusim::mcu_presets), all sharing the facade's
/// memoized genotype-indicator cache.
struct ParetoSweepConfig {
  /// Target portfolio by preset name; each gets its own profiled
  /// latency estimator and its own archive.
  std::vector<std::string> mcu_presets = {"m4", "m7", "m33"};
  Nsga2Config nsga2;
  /// true: quality objectives are the trainless proxies (NTK κ, linear
  /// regions) scored through the facade's shared engine — the
  /// expensive, target-independent work is computed once and replayed
  /// from the cache on every further target. false: surrogate-oracle
  /// accuracy drives the search instead (cheap; no cross-target reuse).
  bool proxy_quality = true;
  /// Bound every scenario's search by its own MCU's SRAM capacity:
  /// constraints.max_sram_kb = McuSpec::sram_budget_bytes / 1024,
  /// overriding whatever nsga2.constraints carries. This is what makes
  /// the per-target archives trade latency for SRAM instead of drifting
  /// toward cells no target could hold.
  bool constrain_sram_to_mcu = false;
  /// Count the row-strip-streamed peak against the SRAM bound
  /// (Constraints::sram_streaming): cells the deployment compiler can
  /// fit via plan_memory's arena_budget stay feasible.
  bool sram_streaming = false;
};

/// One target's slice of a sweep.
struct ScenarioResult {
  std::string mcu_name;
  McuSpec mcu;
  Nsga2Result search;            // the target's Pareto archive + history
  EvalEngineStats hw_stats;      // per-target analytic engine counters
  EvalEngineStats shared_delta;  // shared-engine requests/hits consumed by this target
};

struct ParetoSweepResult {
  std::vector<ScenarioResult> scenarios;
  /// Hit rate on the shared genotype-indicator cache over targets
  /// 2..N — what the cross-target memo reuse actually saved. 0 when
  /// fewer than two targets or when proxy_quality is off.
  double cross_target_hit_rate = 0.0;
  EvalEngineStats shared_stats;  // facade-engine cumulative counters
};

/// End-to-end MicroNAS: owns the profiled latency estimator, probe
/// batch, proxy suite and search loop.
class MicroNas {
 public:
  explicit MicroNas(MicroNasConfig config);

  /// Run the (possibly weight-adapted) hardware-aware pruning search.
  DiscoveredModel search();

  /// Evaluate an arbitrary genotype with the same apparatus (used by
  /// examples and baseline comparisons).
  DiscoveredModel evaluate(const nb201::Genotype& genotype);

  /// Lower a discovered model through the deployment compiler: IR
  /// frontend, fold/fuse/DCE passes, calibrated int8 quantization and
  /// static arena planning on the facade's deploy_net skeleton. The
  /// returned report carries predicted latency (this facade's profiled
  /// LUT estimator on the quantized macro model) vs executed latency
  /// (MCU simulator on the fused compiled schedule), plus the planned
  /// arena vs analytic-peak-SRAM ratio.
  compile::CompiledModel compile_winner(const DiscoveredModel& model,
                                        compile::CompilerOptions options = {}) const;

  /// compile_winner + serialize: persist the discovered model as a
  /// versioned .mnpkg binary package at `path` (src/serialize/), so
  /// deployments load it without re-running the compiler. Returns the
  /// compiled model that was written.
  compile::CompiledModel save_winner(const DiscoveredModel& model, const std::string& path,
                                     compile::CompilerOptions options = {}) const;

  /// Load a package previously written by save_winner (or
  /// serialize::save_model); validates fail-closed and is bit-exact —
  /// see src/serialize/serialize.hpp. Static: serving a saved model
  /// needs no search apparatus.
  static compile::CompiledModel load_model(const std::string& path);

  /// Multi-objective scenario sweep: profile each named MCU target,
  /// run one NSGA-II archive per target, and reuse the facade engine's
  /// genotype-indicator memo cache across targets so only the analytic
  /// latency/memory scoring is target-specific. Each target's result
  /// depends only on (config seed, target name, sweep config) — not on
  /// the portfolio composition or order, and not on threads/cache.
  ParetoSweepResult pareto_sweep(const ParetoSweepConfig& sweep);

  const LatencyEstimator& estimator() const { return *estimator_; }
  const ProxySuite& suite() const { return *suite_; }
  /// The shared scoring backend (threads/cache per MicroNasConfig).
  const ProxyEvalEngine& engine() const { return *engine_; }
  const MicroNasConfig& config() const { return config_; }

 private:
  DiscoveredModel finish(const nb201::Genotype& genotype, long long proxy_evals,
                         double wall_seconds, Rng& rng) const;

  MicroNasConfig config_;
  Rng rng_;
  std::unique_ptr<LatencyEstimator> estimator_;
  std::unique_ptr<ProxySuite> suite_;
  std::unique_ptr<SupernetHwModel> hw_model_;
  std::unique_ptr<ProxyEvalEngine> engine_;
  nb201::SurrogateOracle oracle_;
};

}  // namespace micronas
