// Operation profiler: runs each distinct layer shape of the search
// space on the MCU simulator and records median cycles into a
// LatencyTable — the paper's "profiling each operation individually
// within the search space" stage.
//
// Profiling measures ops in isolation (single-layer runs), so the
// resulting table knowingly misses cross-layer effects such as the
// simulator's SRAM-pressure slowdown; the estimator-validation bench
// quantifies that gap, mirroring the paper's board validation.
#pragma once

#include "src/compile/compiler.hpp"
#include "src/hw/latency_table.hpp"
#include "src/mcusim/cortex_m7.hpp"

namespace micronas {

struct ProfilerOptions {
  int runs_per_op = 7;      // median over this many jittered runs
  bool deterministic = false;  // skip jitter entirely (for tests)
};

/// All distinct layer shapes reachable in the NB201 space on the given
/// skeleton (5 cell ops × 3 stages + stem + reductions + head).
std::vector<LayerSpec> enumerate_search_space_layers(const MacroNetConfig& config = {});

/// Profile one layer in isolation: median cycles over jittered runs.
double profile_layer(const LayerSpec& spec, const McuSpec& mcu, Rng& rng,
                     const ProfilerOptions& options = {});

/// Profile every search-space layer shape into a lookup table.
LatencyTable build_latency_table(const McuSpec& mcu, Rng& rng,
                                 const MacroNetConfig& config = {},
                                 const ProfilerOptions& options = {});

/// Profile the constant per-inference overhead (the paper's "constant
/// hardware latency overhead"): measured as the latency of an empty
/// model, in milliseconds.
double profile_constant_overhead_ms(const McuSpec& mcu, Rng& rng,
                                    const ProfilerOptions& options = {});

// ------------------------------------------------- compiled-graph path
//
// The measure(CompiledGraph) entry points: map the compiled schedule's
// ops back onto LayerSpecs and run the same cycle model, so the LUT
// estimator's *predicted* latency (on the un-fused macro model) can be
// compared against the *executed* latency of the fused, quantized
// schedule that actually ships — the compile report's
// predicted-vs-executed delta.

/// One LayerSpec per scheduled op of the compiled graph (fused
/// conv+bn+relu is a single conv; quantize/dequantize and leftover
/// elementwise ops count as copies; bits follow the op's dtype).
std::vector<LayerSpec> compiled_layer_specs(const compile::CompiledModel& model);

/// Deterministic single-run simulation of the compiled schedule; SRAM
/// pressure is judged on the *planned* arena, not the analytic peak.
SimulatedRun simulate_compiled(const compile::CompiledModel& model, const McuSpec& mcu = {},
                               Rng* jitter_rng = nullptr);

/// Median latency over `runs` jittered executions of the compiled
/// schedule — the measurement procedure of measure_latency_ms, on the
/// deployed graph.
double measure_compiled_latency_ms(const compile::CompiledModel& model, const McuSpec& mcu,
                                   Rng& rng, int runs = 7);

}  // namespace micronas
