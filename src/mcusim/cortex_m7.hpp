// Cortex-M7 cycle-cost simulator — the stand-in for the STM32
// NUCLEO-F746ZG board the paper profiles on (DESIGN.md §3.1).
//
// The model captures the effects that make MCU latency diverge from a
// pure FLOPs count, which is precisely the paper's argument for a
// dedicated latency indicator:
//   * different MAC throughput per op type (1×1 convs map to tight GEMM
//     loops; 3×3 convs pay im2col/addressing overhead; pooling and
//     copies are memory-bound),
//   * a fixed per-layer invocation overhead (kernel dispatch, DMA
//     setup) that penalizes many-small-layer cells,
//   * a constant per-inference runtime overhead,
//   * an SRAM-pressure slowdown once the network's peak activation
//     footprint exceeds the data-TCM budget (cache-miss regime) — a
//     *cross-layer* effect that per-op profiling cannot see, which is
//     what makes the paper's LUT estimator validation non-trivial,
//   * multiplicative measurement jitter on timed runs.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/net/macro_net.hpp"

namespace micronas {

struct McuSpec {
  double clock_hz = 216e6;             // STM32F746 @ 216 MHz
  double macs_per_cycle_conv3x3 = 0.42;
  double macs_per_cycle_conv1x1 = 0.58;
  double macs_per_cycle_linear = 0.52;
  double pool_cycles_per_out = 11.0;   // 9 loads + adds + store per output
  double copy_cycles_per_elem = 1.25;  // identity edges
  double add_cycles_per_elem = 2.0;    // elementwise sums
  double layer_overhead_cycles = 2200.0;
  double network_overhead_cycles = 170000.0;  // runtime init + I/O
  long long sram_budget_bytes = 320 * 1024;   // usable data SRAM
  double sram_pressure_slowdown = 0.12;       // +12 % when over budget
  double jitter_stddev = 0.01;                // 1 % timing noise

  /// int8 path: SMLAD dual-MAC kernels (CMSIS-NN style) raise MAC
  /// throughput ~3.5x for convolutions; memory-bound ops scale with
  /// the 4x narrower element width.
  double int8_mac_speedup = 3.5;
  double int8_mem_speedup = 4.0;
};

/// A named MCU target for scenario sweeps (see MicroNas::pareto_sweep).
struct McuPreset {
  std::string name;         // stable CLI identifier, e.g. "m7"
  std::string description;  // human-readable class, e.g. "STM32F746 @ 216 MHz"
  McuSpec spec;
};

/// The built-in target portfolio, ordered from weakest to strongest:
///   m4   — Cortex-M4 class (STM32F446 @ 180 MHz, 96 KB data SRAM)
///   m33  — Cortex-M33 class (STM32U585 @ 160 MHz, 256 KB)
///   m7   — Cortex-M7 class (STM32F746 @ 216 MHz, 320 KB; the paper's board)
///   m7hp — high-end Cortex-M7 (STM32H743 @ 480 MHz, 512 KB)
const std::vector<McuPreset>& mcu_presets();

/// Look up a preset spec by name; throws std::invalid_argument on an
/// unknown name (the message lists the valid ones).
const McuSpec& mcu_preset(const std::string& name);

/// Deterministic cycle cost of one layer, excluding cross-layer effects.
double layer_cycles(const LayerSpec& spec, const McuSpec& mcu = {});

struct SimulatedRun {
  double total_cycles = 0.0;
  double latency_ms = 0.0;
  bool sram_pressure = false;          // cross-layer slowdown applied
  std::vector<double> per_layer_cycles;
};

/// End-to-end inference simulation of the deployment model.
/// Deterministic unless `jitter_rng` is provided.
SimulatedRun simulate_network(const MacroModel& model, const McuSpec& mcu = {},
                              Rng* jitter_rng = nullptr);

/// Core of simulate_network, reusable for arbitrary schedules (the
/// profiler's compiled-graph measure path): per-layer cycle costs plus
/// the constant network overhead, with the SRAM-pressure slowdown
/// applied when `peak_sram_bytes` (activations + runtime arena)
/// exceeds the target's budget.
SimulatedRun simulate_layers(const std::vector<LayerSpec>& layers, long long peak_sram_bytes,
                             const McuSpec& mcu = {}, Rng* jitter_rng = nullptr);

/// Median latency over `runs` jittered executions — what a careful
/// on-board measurement procedure reports.
double measure_latency_ms(const MacroModel& model, const McuSpec& mcu, Rng& rng, int runs = 7);

}  // namespace micronas
