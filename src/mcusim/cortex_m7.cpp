#include "src/mcusim/cortex_m7.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/hw/memory_model.hpp"

namespace micronas {

const std::vector<McuPreset>& mcu_presets() {
  // Throughputs and budgets are class-typical, not board-exact: what
  // matters for the sweeps is that the targets rank differently on
  // clock, MAC efficiency and SRAM so the per-target Pareto fronts
  // genuinely diverge (SRAM pressure bites at different cells).
  static const std::vector<McuPreset> presets = [] {
    std::vector<McuPreset> p;

    McuSpec m4;
    m4.clock_hz = 180e6;
    m4.macs_per_cycle_conv3x3 = 0.30;   // single-issue MAC, narrower bus
    m4.macs_per_cycle_conv1x1 = 0.44;
    m4.macs_per_cycle_linear = 0.40;
    m4.layer_overhead_cycles = 2600.0;  // slower flash wait-states
    m4.network_overhead_cycles = 190000.0;
    m4.sram_budget_bytes = 96 * 1024;
    m4.sram_pressure_slowdown = 0.18;   // no cache to absorb spills
    p.push_back({"m4", "Cortex-M4 class (STM32F446 @ 180 MHz, 96 KB SRAM)", m4});

    McuSpec m33;
    m33.clock_hz = 160e6;
    m33.macs_per_cycle_conv3x3 = 0.36;
    m33.macs_per_cycle_conv1x1 = 0.50;
    m33.macs_per_cycle_linear = 0.46;
    m33.layer_overhead_cycles = 2400.0;
    m33.network_overhead_cycles = 180000.0;
    m33.sram_budget_bytes = 256 * 1024;
    m33.sram_pressure_slowdown = 0.15;
    p.push_back({"m33", "Cortex-M33 class (STM32U585 @ 160 MHz, 256 KB SRAM)", m33});

    p.push_back({"m7", "Cortex-M7 class (STM32F746 @ 216 MHz, 320 KB SRAM)", McuSpec{}});

    McuSpec m7hp;                        // dual-issue core + big caches
    m7hp.clock_hz = 480e6;
    m7hp.macs_per_cycle_conv3x3 = 0.48;
    m7hp.macs_per_cycle_conv1x1 = 0.64;
    m7hp.macs_per_cycle_linear = 0.58;
    m7hp.layer_overhead_cycles = 1800.0;
    m7hp.network_overhead_cycles = 150000.0;
    m7hp.sram_budget_bytes = 512 * 1024;
    m7hp.sram_pressure_slowdown = 0.08;
    p.push_back({"m7hp", "high-end Cortex-M7 (STM32H743 @ 480 MHz, 512 KB SRAM)", m7hp});
    return p;
  }();
  return presets;
}

const McuSpec& mcu_preset(const std::string& name) {
  for (const McuPreset& p : mcu_presets()) {
    if (p.name == name) return p.spec;
  }
  std::string known;
  for (const McuPreset& p : mcu_presets()) {
    if (!known.empty()) known += ", ";
    known += p.name;
  }
  throw std::invalid_argument("mcu_preset: unknown target '" + name + "' (known: " + known + ")");
}

double layer_cycles(const LayerSpec& spec, const McuSpec& mcu) {
  const bool int8 = spec.bits == 8;
  const double mac_scale = int8 ? mcu.int8_mac_speedup : 1.0;
  const double mem_scale = int8 ? mcu.int8_mem_speedup : 1.0;

  double cycles = mcu.layer_overhead_cycles;
  switch (spec.kind) {
    case LayerKind::kConv: {
      const double macs = static_cast<double>(spec.macs());
      const double throughput =
          spec.kernel == 1 ? mcu.macs_per_cycle_conv1x1 : mcu.macs_per_cycle_conv3x3;
      cycles += macs / (throughput * mac_scale);
      break;
    }
    case LayerKind::kLinear:
      cycles += static_cast<double>(spec.macs()) / (mcu.macs_per_cycle_linear * mac_scale);
      break;
    case LayerKind::kAvgPool:
      cycles += mcu.pool_cycles_per_out * static_cast<double>(spec.out_elems()) / mem_scale;
      break;
    case LayerKind::kGlobalPool:
      cycles += 1.5 * static_cast<double>(spec.in_elems()) / mem_scale;
      break;
    case LayerKind::kSkip:
      cycles += mcu.copy_cycles_per_elem * static_cast<double>(spec.out_elems()) / mem_scale;
      break;
    case LayerKind::kAdd:
      cycles += mcu.add_cycles_per_elem * static_cast<double>(spec.out_elems()) / mem_scale;
      break;
  }
  return cycles;
}

SimulatedRun simulate_layers(const std::vector<LayerSpec>& layers, long long peak_sram_bytes,
                             const McuSpec& mcu, Rng* jitter_rng) {
  SimulatedRun run;
  run.per_layer_cycles.reserve(layers.size());
  run.sram_pressure = peak_sram_bytes > mcu.sram_budget_bytes;
  const double pressure = run.sram_pressure ? (1.0 + mcu.sram_pressure_slowdown) : 1.0;

  double total = mcu.network_overhead_cycles;
  for (const auto& spec : layers) {
    double c = layer_cycles(spec, mcu) * pressure;
    run.per_layer_cycles.push_back(c);
    total += c;
  }
  if (jitter_rng != nullptr) {
    total *= 1.0 + jitter_rng->normal(0.0, mcu.jitter_stddev);
  }
  run.total_cycles = total;
  run.latency_ms = total / mcu.clock_hz * 1e3;
  return run;
}

SimulatedRun simulate_network(const MacroModel& model, const McuSpec& mcu, Rng* jitter_rng) {
  // The runtime arena (scheduler + im2col scratch) shares SRAM with the
  // activations on the real board, so it counts against the budget.
  // Activation width follows the model's precision (int8 shrinks 4x).
  const int bpa = model.layers.empty() ? 4 : model.layers.front().bits / 8;
  const long long peak =
      peak_activation_bytes(model, bpa) + MemoryModelSpec{}.runtime_arena_bytes;
  return simulate_layers(model.layers, peak, mcu, jitter_rng);
}

double measure_latency_ms(const MacroModel& model, const McuSpec& mcu, Rng& rng, int runs) {
  if (runs < 1) throw std::invalid_argument("measure_latency_ms: runs must be >= 1");
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    samples.push_back(simulate_network(model, mcu, &rng).latency_ms);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace micronas
