#include "src/mcusim/profiler.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace micronas {

std::vector<LayerSpec> enumerate_search_space_layers(const MacroNetConfig& config) {
  // Build macro models for a handful of genotypes that jointly cover
  // every op at every stage, then dedupe by lookup key.
  std::vector<nb201::Genotype> probes;
  for (nb201::Op op : nb201::kAllOps) {
    std::array<nb201::Op, nb201::kNumEdges> ops;
    ops.fill(op);
    probes.emplace_back(ops);
  }
  // A mixed genotype adds the kAdd specs that uniform `none` misses.
  {
    std::array<nb201::Op, nb201::kNumEdges> ops;
    ops.fill(nb201::Op::kConv3x3);
    ops[0] = nb201::Op::kSkipConnect;
    ops[1] = nb201::Op::kAvgPool3x3;
    ops[2] = nb201::Op::kConv1x1;
    probes.emplace_back(ops);
  }

  std::set<LatencyKey> seen;
  std::vector<LayerSpec> out;
  for (const auto& g : probes) {
    const MacroModel m = build_macro_model(g, config);
    for (const auto& spec : m.layers) {
      if (seen.insert(LatencyKey::from_spec(spec)).second) out.push_back(spec);
      // int8 kernels have their own cost profile (see McuSpec) and
      // therefore their own LUT entries.
      LayerSpec q = spec;
      q.bits = 8;
      if (seen.insert(LatencyKey::from_spec(q)).second) out.push_back(q);
    }
  }
  return out;
}

double profile_layer(const LayerSpec& spec, const McuSpec& mcu, Rng& rng,
                     const ProfilerOptions& options) {
  if (options.runs_per_op < 1) throw std::invalid_argument("profile_layer: runs_per_op >= 1");
  std::vector<double> cycles;
  cycles.reserve(static_cast<std::size_t>(options.runs_per_op));
  for (int r = 0; r < options.runs_per_op; ++r) {
    double c = layer_cycles(spec, mcu);
    if (!options.deterministic) c *= 1.0 + rng.normal(0.0, mcu.jitter_stddev);
    cycles.push_back(c);
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles[cycles.size() / 2];
}

LatencyTable build_latency_table(const McuSpec& mcu, Rng& rng, const MacroNetConfig& config,
                                 const ProfilerOptions& options) {
  LatencyTable table;
  for (const auto& spec : enumerate_search_space_layers(config)) {
    table.insert(LatencyKey::from_spec(spec), profile_layer(spec, mcu, rng, options));
  }
  return table;
}

double profile_constant_overhead_ms(const McuSpec& mcu, Rng& rng, const ProfilerOptions& options) {
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(options.runs_per_op));
  for (int r = 0; r < options.runs_per_op; ++r) {
    double cycles = mcu.network_overhead_cycles;
    if (!options.deterministic) cycles *= 1.0 + rng.normal(0.0, mcu.jitter_stddev);
    ms.push_back(cycles / mcu.clock_hz * 1e3);
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

std::vector<LayerSpec> compiled_layer_specs(const compile::CompiledModel& model) {
  std::vector<LayerSpec> specs;
  const ir::Graph& g = model.graph;
  for (int id : model.plan.schedule) {
    const ir::Node& node = g.node(id);
    const Shape& out = node.type.shape;
    LayerSpec s;
    s.bits = node.type.dtype == ir::DType::kI8 ? 8 : 32;
    if (!node.inputs.empty()) {
      const Shape& in = g.node(node.inputs[0]).type.shape;
      if (in.rank() >= 2) s.cin = in[1];
      if (in.rank() == 4) {
        s.h = in[2];
        s.w = in[3];
      }
    }
    if (out.rank() >= 2) s.cout = out[1];
    if (out.rank() == 4) {
      s.out_h = out[2];
      s.out_w = out[3];
    } else {
      s.out_h = 1;
      s.out_w = 1;
    }
    switch (node.op) {
      case ir::OpKind::kConv2d:
      case ir::OpKind::kQConv2d:
        s.kind = LayerKind::kConv;
        s.kernel = node.conv.kernel;
        s.stride = node.conv.stride;
        s.pad = node.conv.pad;
        break;
      case ir::OpKind::kAvgPool:
      case ir::OpKind::kQAvgPool:
        s.kind = LayerKind::kAvgPool;
        s.kernel = node.conv.kernel;
        s.stride = node.conv.stride;
        s.pad = node.conv.pad;
        break;
      case ir::OpKind::kAdd:
      case ir::OpKind::kQAdd:
        s.kind = LayerKind::kAdd;
        break;
      case ir::OpKind::kGlobalAvgPool:
      case ir::OpKind::kQGlobalAvgPool:
        s.kind = LayerKind::kGlobalPool;
        if (!node.inputs.empty()) {
          const Shape& in = g.node(node.inputs[0]).type.shape;
          s.h = in[2];
          s.w = in[3];
        }
        break;
      case ir::OpKind::kLinear:
      case ir::OpKind::kQLinear:
        s.kind = LayerKind::kLinear;
        s.h = 1;
        s.w = 1;
        break;
      default:
        // quantize/dequantize and any surviving elementwise op
        // (relu, batch norm, channel affine) cost an element-wise pass.
        s.kind = LayerKind::kSkip;
        break;
    }
    specs.push_back(s);
  }
  return specs;
}

SimulatedRun simulate_compiled(const compile::CompiledModel& model, const McuSpec& mcu,
                               Rng* jitter_rng) {
  const long long peak = model.plan.arena_bytes + MemoryModelSpec{}.runtime_arena_bytes;
  return simulate_layers(compiled_layer_specs(model), peak, mcu, jitter_rng);
}

double measure_compiled_latency_ms(const compile::CompiledModel& model, const McuSpec& mcu,
                                   Rng& rng, int runs) {
  if (runs < 1) throw std::invalid_argument("measure_compiled_latency_ms: runs must be >= 1");
  // Only the jitter differs between runs: derive the schedule once.
  const std::vector<LayerSpec> specs = compiled_layer_specs(model);
  const long long peak = model.plan.arena_bytes + MemoryModelSpec{}.runtime_arena_bytes;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    samples.push_back(simulate_layers(specs, peak, mcu, &rng).latency_ms);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace micronas
