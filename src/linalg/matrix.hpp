// Small dense double-precision matrices for spectrum analysis.
//
// The NTK Gram matrix is B×B (B = batch size ≤ 128), so simple O(n³)
// dense algorithms are the right tool; double precision avoids losing
// the small eigenvalues that dominate the condition number.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace micronas {

/// Row-major dense matrix of double.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  double operator()(int r, int c) const { return data_[static_cast<std::size_t>(r) * cols_ + c]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  static Matrix identity(int n);

  /// this * other.
  Matrix multiply(const Matrix& other) const;
  Matrix transpose() const;

  bool is_square() const { return rows_ == cols_; }
  /// max |A - Aᵀ| over all entries.
  double asymmetry() const;
  /// Force exact symmetry: A = (A + Aᵀ)/2.
  void symmetrize();

  /// Frobenius norm.
  double frobenius_norm() const;

  std::string to_string() const;

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Gram matrix G·Gᵀ of a row-major [n × p] data block (rows are
/// flattened per-sample gradient vectors in the NTK use case).
Matrix gram_matrix(const std::vector<std::vector<float>>& rows);

}  // namespace micronas
