// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// The NTK spectrum analysis needs all eigenvalues of a small (≤128²)
// symmetric PSD Gram matrix. Jacobi is simple, unconditionally stable,
// and accurate for small eigenvalues — exactly what a condition-number
// estimate requires.
#pragma once

#include <vector>

#include "src/linalg/matrix.hpp"

namespace micronas {

struct SymEigResult {
  /// Eigenvalues sorted in descending order.
  std::vector<double> eigenvalues;
  /// Number of Jacobi sweeps used.
  int sweeps = 0;
  /// Final off-diagonal Frobenius norm (convergence residual).
  double off_diagonal_norm = 0.0;
};

/// Eigenvalues of a symmetric matrix. Throws if `a` is not square or
/// deviates from symmetry by more than `symmetry_tol` (the matrix is
/// symmetrized internally below that tolerance).
SymEigResult sym_eig(Matrix a, double symmetry_tol = 1e-6, int max_sweeps = 64);

/// Pseudo-condition number λmax / λmin⁺, where λmin⁺ is the smallest
/// eigenvalue above `rel_floor`·λmax. Eigenvalues below that threshold
/// are numerical rank deficiency (e.g. an NTK Gram whose batch exceeds
/// the parameter count), not trainability signal — including them
/// would saturate κ at the floor for every small cell. Returns 1.0 for
/// an all-zero spectrum.
double condition_number(const std::vector<double>& eigenvalues_desc, double rel_floor = 1e-10);

/// Generalized condition index K_i = λ1 / λi (1-based i; i ≤ count).
/// This is the x-axis of the paper's Fig. 2a.
double condition_index(const std::vector<double>& eigenvalues_desc, int i, double floor = 1e-12);

}  // namespace micronas
