#include "src/linalg/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace micronas {

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0) throw std::invalid_argument("Matrix: dimensions must be positive");
  data_.assign(static_cast<std::size_t>(rows) * cols, 0.0);
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (int j = 0; j < other.cols_; ++j) out(i, j) += a * other(k, j);
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double Matrix::asymmetry() const {
  if (!is_square()) throw std::logic_error("Matrix::asymmetry: square matrix required");
  double m = 0.0;
  for (int i = 0; i < rows_; ++i) {
    for (int j = i + 1; j < cols_; ++j) m = std::max(m, std::abs((*this)(i, j) - (*this)(j, i)));
  }
  return m;
}

void Matrix::symmetrize() {
  if (!is_square()) throw std::logic_error("Matrix::symmetrize: square matrix required");
  for (int i = 0; i < rows_; ++i) {
    for (int j = i + 1; j < cols_; ++j) {
      const double v = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = v;
      (*this)(j, i) = v;
    }
  }
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::string Matrix::to_string() const {
  std::ostringstream ss;
  ss << "Matrix(" << rows_ << "x" << cols_ << ")";
  return ss.str();
}

Matrix gram_matrix(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) throw std::invalid_argument("gram_matrix: empty input");
  const int n = static_cast<int>(rows.size());
  const std::size_t p = rows.front().size();
  for (const auto& r : rows) {
    if (r.size() != p) throw std::invalid_argument("gram_matrix: ragged rows");
  }
  Matrix g(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < p; ++k) s += static_cast<double>(rows[i][k]) * rows[j][k];
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

}  // namespace micronas
