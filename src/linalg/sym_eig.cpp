#include "src/linalg/sym_eig.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace micronas {

SymEigResult sym_eig(Matrix a, double symmetry_tol, int max_sweeps) {
  if (!a.is_square()) throw std::invalid_argument("sym_eig: square matrix required");
  const int n = a.rows();
  if (a.asymmetry() > symmetry_tol * std::max(1.0, a.frobenius_norm())) {
    throw std::invalid_argument("sym_eig: matrix is not symmetric");
  }
  a.symmetrize();

  SymEigResult res;
  if (n == 1) {
    res.eigenvalues = {a(0, 0)};
    return res;
  }

  auto off_norm = [&]() {
    double s = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) s += 2.0 * a(i, j) * a(i, j);
    }
    return std::sqrt(s);
  };

  const double tol = 1e-14 * std::max(1.0, a.frobenius_norm());
  int sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= tol / n) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Numerically stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
      }
    }
  }

  res.sweeps = sweep;
  res.off_diagonal_norm = off_norm();
  res.eigenvalues.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) res.eigenvalues[static_cast<std::size_t>(i)] = a(i, i);
  std::sort(res.eigenvalues.begin(), res.eigenvalues.end(), std::greater<>());
  return res;
}

double condition_number(const std::vector<double>& eig, double rel_floor) {
  if (eig.empty()) throw std::invalid_argument("condition_number: empty spectrum");
  const double lmax = eig.front();
  if (lmax <= 0.0) return 1.0;  // zero (or negative-noise) spectrum
  const double threshold = rel_floor * lmax;
  double lmin = lmax;
  for (double l : eig) {
    if (l > threshold) lmin = l;
  }
  return lmax / lmin;
}

double condition_index(const std::vector<double>& eig, int i, double floor) {
  if (eig.empty()) throw std::invalid_argument("condition_index: empty spectrum");
  if (i < 1 || i > static_cast<int>(eig.size())) {
    throw std::out_of_range("condition_index: i out of range");
  }
  const double lmax = std::max(eig.front(), floor);
  const double li = std::max(eig[static_cast<std::size_t>(i - 1)], floor);
  return lmax / li;
}

}  // namespace micronas
