#include "src/serialize/serialize.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/rng.hpp"  // fnv1a64
#include "src/rt/memory_planner.hpp"

// MappedPackage's zero-copy backend. The non-POSIX fallback reads the
// file into an owned buffer — consts still borrow (from the buffer),
// only the page-cache sharing is lost.
#if defined(__unix__) || defined(__APPLE__)
#define MICRONAS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

// Writer provenance stamped into the META section. The definition is
// scoped to this translation unit (CMake set_source_files_properties)
// so a new commit only rebuilds the serializer, not the library.
#ifndef MICRONAS_GIT_SHA
#define MICRONAS_GIT_SHA "unknown"
#endif

namespace micronas::serialize {

namespace {

constexpr char kMagic[8] = {'M', 'N', 'A', 'S', 'P', 'K', 'G', '\0'};
constexpr std::uint32_t kEndianTag = 0x01020304;
// magic | version | endian | file_size | section_count | reserved
// | file checksum (fnv1a64 over every file byte except this field —
// so corruption anywhere, including inter-section padding, is caught).
constexpr std::size_t kChecksumOffset = 8 + 4 + 4 + 8 + 4 + 4;
constexpr std::size_t kHeaderBytes = kChecksumOffset + 8;
constexpr std::size_t kTableEntryBytes = 4 + 4 + 8 + 8 + 8;
constexpr std::uint32_t kMaxSections = 64;

/// Chained fnv1a64 so the file checksum can skip its own storage field.
std::uint64_t file_checksum(std::span<const std::byte> bytes) {
  const std::uint64_t h = fnv1a64(kFnv1a64Basis, bytes.data(), kChecksumOffset);
  return fnv1a64(h, bytes.data() + kHeaderBytes, bytes.size() - kHeaderBytes);
}

// Section four-character codes, little-endian packed.
constexpr std::uint32_t fourcc(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}
constexpr std::uint32_t kTagMeta = fourcc("META");
constexpr std::uint32_t kTagGraph = fourcc("GRPH");
constexpr std::uint32_t kTagConst = fourcc("CNST");
constexpr std::uint32_t kTagPlan = fourcc("PLAN");
constexpr std::uint32_t kTagReport = fourcc("RPRT");
constexpr std::uint32_t kTagPack = fourcc("PACK");

std::string tag_name(std::uint32_t tag) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    s[static_cast<std::size_t>(i)] = (c >= 32 && c < 127) ? c : '?';
  }
  return s;
}

// Sanity caps for deserialized dimensions: a corrupted count must be
// rejected before it can drive a multi-gigabyte allocation or an
// integer-overflowed bytes() computation.
constexpr int kMaxDim = 1 << 24;
constexpr std::uint64_t kMaxNumel = 1ULL << 31;

// ------------------------------------------------------------- writers

void write_affine(ByteWriter& w, const AffineParams& p) {
  w.f64(p.scale);
  w.i32(p.zero_point);
}

void write_type(ByteWriter& w, const ir::TensorType& t) {
  w.u8(static_cast<std::uint8_t>(t.shape.rank()));
  for (int d = 0; d < t.shape.rank(); ++d) w.i32(t.shape[d]);
  w.u8(static_cast<std::uint8_t>(t.dtype));
}

/// GRPH node records; const payloads are appended to `consts`, each at
/// a kConstAlignment boundary relative to the CNST section start (the
/// section itself lands on a 64-byte file offset, so payloads are
/// mmap-aligned in the file too).
void write_graph(ByteWriter& w, ByteWriter& consts, const ir::Graph& graph) {
  w.u32(static_cast<std::uint32_t>(graph.size()));
  w.i32(graph.input());
  w.i32(graph.output());
  for (const ir::Node& node : graph.nodes()) {
    w.i32(node.id);
    w.u8(static_cast<std::uint8_t>(node.op));
    w.str(node.name);
    w.u32(static_cast<std::uint32_t>(node.inputs.size()));
    for (int in : node.inputs) w.i32(in);
    write_type(w, node.type);

    w.i32(node.conv.kernel);
    w.i32(node.conv.stride);
    w.i32(node.conv.pad);
    w.u8(node.conv.fused_relu ? 1 : 0);
    w.f64(node.conv.bn_eps);

    write_affine(w, node.quant.in_q);
    write_affine(w, node.quant.in2_q);
    write_affine(w, node.quant.out_q);
    w.u32(static_cast<std::uint32_t>(node.quant.mantissa.size()));
    for (std::int32_t m : node.quant.mantissa) w.i32(m);
    w.u32(static_cast<std::uint32_t>(node.quant.shift.size()));
    for (int s : node.quant.shift) w.i32(s);
    w.i32(node.quant.mantissa2);
    w.i32(node.quant.shift2);

    w.u8(node.is_const() ? 1 : 0);
    if (!node.is_const()) continue;
    consts.align(kConstAlignment);
    const std::uint64_t offset = consts.size();
    switch (node.type.dtype) {
      case ir::DType::kF32:
        for (float v : node.f32_data.data()) consts.f32(v);
        break;
      case ir::DType::kI8:
        consts.raw(node.i8_data.data(), node.i8_data.size());
        break;
      case ir::DType::kI32:
        for (std::int32_t v : node.i32_data) consts.i32(v);
        break;
    }
    w.u64(offset);
    w.u64(consts.size() - offset);
  }
}

void write_plan(ByteWriter& w, const rt::MemoryPlan& plan) {
  w.i64(plan.arena_bytes);
  w.i64(plan.naive_bytes);
  w.u32(static_cast<std::uint32_t>(plan.buffers.size()));
  for (const rt::BufferPlacement& b : plan.buffers) {
    w.i32(b.node_id);
    w.i64(b.offset);
    w.i64(b.size);
    w.i32(b.def_step);
    w.i32(b.last_use_step);
  }
  w.u32(static_cast<std::uint32_t>(plan.schedule.size()));
  for (int id : plan.schedule) w.i32(id);
  // In-place alias and row-strip records, appended after the legacy
  // layout so pre-alias readers (which stop at the schedule) would
  // reject only the trailing bytes, and new readers accept old
  // packages by treating the absent tail as "no aliases, no strips".
  std::uint32_t alias_count = 0;
  for (const rt::BufferPlacement& b : plan.buffers) alias_count += b.alias_of >= 0 ? 1 : 0;
  w.u32(alias_count);
  for (const rt::BufferPlacement& b : plan.buffers) {
    if (b.alias_of < 0) continue;
    w.i32(b.node_id);
    w.i32(b.alias_of);
  }
  w.u32(static_cast<std::uint32_t>(plan.strips.size()));
  for (const rt::StripStream& s : plan.strips) {
    w.i32(s.node_id);
    w.i32(s.strip_h);
  }
  w.i64(plan.stream_scratch_bytes);
}

void write_report(ByteWriter& w, const compile::CompileReport& report) {
  w.str(report.arch);
  w.i32(report.lowered_nodes);
  w.i32(report.final_nodes);
  w.i32(report.lowered_executed);
  w.i32(report.final_executed);
  w.u32(static_cast<std::uint32_t>(report.passes.size()));
  for (const compile::PassStat& p : report.passes) {
    w.str(p.name);
    w.u8(p.changed ? 1 : 0);
    w.i32(p.nodes_before);
    w.i32(p.nodes_after);
    w.f64(p.wall_ms);
  }
  w.i64(report.arena_bytes);
  w.i64(report.naive_arena_bytes);
  w.i64(report.const_bytes);
  w.i64(report.model_peak_sram_bytes);
  w.f64(report.arena_to_model_ratio);
  w.f64(report.predicted_latency_ms);
  w.f64(report.executed_latency_ms);
  w.str(report.memory_plan);
}

/// PACK: the kernel weight-layout table. Each entry names a qconv /
/// qlinear node, its layout tag and geometry, and where its packed
/// blob lives — the blobs themselves are appended to CNST (64-byte
/// aligned like every const) so a flash/mmap deployment can run the
/// blocked GEMM straight off the file image with zero repacking.
/// Entries are written in node-id order, so re-saving a loaded model
/// reproduces the section byte-identically. Returns false (emit no
/// section) when the model carries no packed weights — a float-only
/// model's package is unchanged. The section is additive: readers that
/// don't know the PACK tag ignore it, so the format version stays put.
bool write_pack(ByteWriter& w, ByteWriter& consts, const rt::PackedWeightSet& packed) {
  std::uint32_t count = 0;
  for (const rt::PackedWeights& pw : packed.by_node) {
    if (!pw.empty()) ++count;
  }
  if (count == 0) return false;
  w.u32(count);
  for (std::size_t id = 0; id < packed.by_node.size(); ++id) {
    const rt::PackedWeights& pw = packed.by_node[id];
    if (pw.empty()) continue;
    consts.align(kConstAlignment);
    const std::uint64_t offset = consts.size();
    consts.raw(pw.data.data(), pw.data.size() * sizeof(std::int16_t));
    w.i32(static_cast<std::int32_t>(id));
    w.u8(static_cast<std::uint8_t>(pw.layout));
    w.i32(pw.cout);
    w.i32(pw.patch);
    w.u64(offset);
    w.u64(consts.size() - offset);
  }
  return true;
}

void write_meta(ByteWriter& w, const compile::CompiledModel& model) {
  w.str("micronas-serialize");
  w.u32(kFormatVersion);
  w.str(MICRONAS_GIT_SHA);
  w.str(model.report.arch);
}

// ------------------------------------------------------------- readers

AffineParams read_affine(ByteReader& r) {
  AffineParams p;
  p.scale = r.f64();
  p.zero_point = r.i32();
  return p;
}

ir::TensorType read_type(ByteReader& r) {
  const int rank = r.u8();
  if (rank < 1 || rank > 4) {
    throw SerializeError("GRPH: tensor rank " + std::to_string(rank) + " out of range");
  }
  std::vector<int> dims(static_cast<std::size_t>(rank));
  std::uint64_t numel = 1;
  for (int d = 0; d < rank; ++d) {
    const std::int32_t v = r.i32();
    if (v < 1 || v > kMaxDim) {
      throw SerializeError("GRPH: tensor dim " + std::to_string(v) + " out of range");
    }
    dims[static_cast<std::size_t>(d)] = v;
    numel *= static_cast<std::uint64_t>(v);
    if (numel > kMaxNumel) throw SerializeError("GRPH: tensor numel exceeds cap");
  }
  const int dtype = r.u8();
  if (dtype < 0 || dtype > 2) {
    throw SerializeError("GRPH: dtype byte " + std::to_string(dtype) + " out of range");
  }
  return ir::TensorType{Shape(std::move(dims)), static_cast<ir::DType>(dtype)};
}

/// zero_copy: leave int8 const payloads as ConstView::borrowed
/// pointers into `consts` instead of copying — only valid when the
/// caller keeps the backing storage alive past the returned Graph
/// (MappedPackage). i8 is endian-neutral so borrowing is always safe;
/// f32/i32 payloads are decoded little-endian element-wise as before
/// (they are a few KB of scales/biases — copying them costs nothing,
/// and Tensor owns its storage anyway).
ir::Graph read_graph(ByteReader& r, std::span<const std::byte> consts, bool zero_copy = false) {
  const std::size_t node_count = r.count(16);
  const int input = r.i32();
  const int output = r.i32();
  std::vector<ir::Node> nodes;
  nodes.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    ir::Node node;
    node.id = r.i32();
    const int op = r.u8();
    if (op < 0 || op >= ir::kOpKindCount) {
      throw SerializeError("GRPH: op byte " + std::to_string(op) + " out of range");
    }
    node.op = static_cast<ir::OpKind>(op);
    node.name = r.str();
    const std::size_t num_inputs = r.count(4);
    node.inputs.reserve(num_inputs);
    for (std::size_t k = 0; k < num_inputs; ++k) node.inputs.push_back(r.i32());
    node.type = read_type(r);

    node.conv.kernel = r.i32();
    node.conv.stride = r.i32();
    node.conv.pad = r.i32();
    // These attrs feed ops::conv_out_size (`in + 2*pad - kernel`, then
    // `/ stride`) during Graph::from_nodes type inference, which cannot
    // defend itself against stride 0 (SIGFPE) or pad near INT_MAX
    // (signed overflow), and pool ops have no weight shape to cross-
    // check them against — reject hostile values here, where the
    // failure is still a catchable SerializeError. Ops that ignore the
    // attrs keep whatever the writer recorded (nothing computes with
    // them), preserving bit-exact re-serialization.
    const bool uses_conv_attrs =
        node.op == ir::OpKind::kConv2d || node.op == ir::OpKind::kQConv2d ||
        node.op == ir::OpKind::kAvgPool || node.op == ir::OpKind::kQAvgPool;
    if (uses_conv_attrs &&
        (node.conv.kernel < 1 || node.conv.kernel > kMaxDim || node.conv.stride < 1 ||
         node.conv.stride > kMaxDim || node.conv.pad < 0 || node.conv.pad > kMaxDim)) {
      throw SerializeError("GRPH: conv kernel/stride/pad out of range on node " +
                           std::to_string(i));
    }
    node.conv.fused_relu = r.u8() != 0;
    node.conv.bn_eps = r.f64();

    node.quant.in_q = read_affine(r);
    node.quant.in2_q = read_affine(r);
    node.quant.out_q = read_affine(r);
    const std::size_t num_mantissa = r.count(4);
    node.quant.mantissa.reserve(num_mantissa);
    for (std::size_t k = 0; k < num_mantissa; ++k) node.quant.mantissa.push_back(r.i32());
    const std::size_t num_shift = r.count(4);
    node.quant.shift.reserve(num_shift);
    for (std::size_t k = 0; k < num_shift; ++k) node.quant.shift.push_back(r.i32());
    node.quant.mantissa2 = r.i32();
    node.quant.shift2 = r.i32();

    const int has_payload = r.u8();
    if (has_payload != (node.is_const() ? 1 : 0)) {
      throw SerializeError("GRPH: payload flag disagrees with op on node " + std::to_string(i));
    }
    if (node.is_const()) {
      const std::uint64_t offset = r.u64();
      const std::uint64_t size = r.u64();
      if (offset > consts.size() || size > consts.size() - offset) {
        throw SerializeError("GRPH: const payload of node " + std::to_string(i) +
                             " escapes the CNST section");
      }
      if (static_cast<long long>(size) != node.type.bytes()) {
        throw SerializeError("GRPH: const payload size disagrees with type on node " +
                             std::to_string(i));
      }
      ByteReader payload(consts.subspan(offset, size), "CNST");
      const std::size_t numel = node.type.shape.numel();
      switch (node.type.dtype) {
        case ir::DType::kF32: {
          std::vector<float> values(numel);
          for (float& v : values) v = payload.f32();
          node.f32_data = Tensor::from_vector(node.type.shape, std::move(values));
          break;
        }
        case ir::DType::kI8: {
          if (zero_copy) {
            node.i8_data = ConstView<std::int8_t>::borrowed(
                reinterpret_cast<const std::int8_t*>(consts.data() + offset), numel);
          } else {
            std::vector<std::int8_t> values(numel);
            payload.raw(values.data(), numel);
            node.i8_data = std::move(values);
          }
          break;
        }
        case ir::DType::kI32: {
          node.i32_data.resize(numel);
          for (std::int32_t& v : node.i32_data) v = payload.i32();
          break;
        }
      }
    }
    nodes.push_back(std::move(node));
  }
  if (!r.exhausted()) throw SerializeError("GRPH: trailing bytes after node records");
  try {
    return ir::Graph::from_nodes(std::move(nodes), input, output);
  } catch (const std::exception& e) {
    throw SerializeError(std::string("GRPH: graph validation failed: ") + e.what());
  }
}

rt::MemoryPlan read_plan(ByteReader& r) {
  rt::MemoryPlan plan;
  plan.arena_bytes = r.i64();
  plan.naive_bytes = r.i64();
  const std::size_t num_buffers = r.count(28);
  plan.buffers.reserve(num_buffers);
  for (std::size_t i = 0; i < num_buffers; ++i) {
    rt::BufferPlacement b;
    b.node_id = r.i32();
    b.offset = r.i64();
    b.size = r.i64();
    b.def_step = r.i32();
    b.last_use_step = r.i32();
    plan.buffers.push_back(b);
  }
  const std::size_t num_schedule = r.count(4);
  plan.schedule.reserve(num_schedule);
  for (std::size_t i = 0; i < num_schedule; ++i) plan.schedule.push_back(r.i32());
  // Legacy packages end here: no aliases, no strips, no stream scratch.
  // Anything check_plan-relevant about the tail (alias eligibility,
  // strip geometry, scratch accounting) is validated by the loader's
  // check_plan call, not trusted from the file.
  if (!r.exhausted()) {
    const std::size_t num_aliases = r.count(8);
    for (std::size_t i = 0; i < num_aliases; ++i) {
      const int node_id = r.i32();
      const int alias_of = r.i32();
      bool found = false;
      for (rt::BufferPlacement& b : plan.buffers) {
        if (b.node_id != node_id) continue;
        b.alias_of = alias_of;
        found = true;
        break;
      }
      if (!found) throw SerializeError("PLAN: alias record for unplaced node");
    }
    const std::size_t num_strips = r.count(8);
    plan.strips.reserve(num_strips);
    for (std::size_t i = 0; i < num_strips; ++i) {
      rt::StripStream s;
      s.node_id = r.i32();
      s.strip_h = r.i32();
      plan.strips.push_back(s);
    }
    plan.stream_scratch_bytes = r.i64();
  }
  if (!r.exhausted()) throw SerializeError("PLAN: trailing bytes after plan records");
  return plan;
}

compile::CompileReport read_report(ByteReader& r) {
  compile::CompileReport report;
  report.arch = r.str();
  report.lowered_nodes = r.i32();
  report.final_nodes = r.i32();
  report.lowered_executed = r.i32();
  report.final_executed = r.i32();
  const std::size_t num_passes = r.count(17);
  report.passes.reserve(num_passes);
  for (std::size_t i = 0; i < num_passes; ++i) {
    compile::PassStat p;
    p.name = r.str();
    p.changed = r.u8() != 0;
    p.nodes_before = r.i32();
    p.nodes_after = r.i32();
    p.wall_ms = r.f64();
    report.passes.push_back(std::move(p));
  }
  report.arena_bytes = r.i64();
  report.naive_arena_bytes = r.i64();
  report.const_bytes = r.i64();
  report.model_peak_sram_bytes = r.i64();
  report.arena_to_model_ratio = r.f64();
  report.predicted_latency_ms = r.f64();
  report.executed_latency_ms = r.f64();
  report.memory_plan = r.str();
  if (!r.exhausted()) throw SerializeError("RPRT: trailing bytes after report");
  return report;
}

/// Geometry of a node's weight tensor (input 1) — what PACK entries
/// and the load-time repack fallback validate/pack against.
void weight_geometry(const ir::Graph& graph, const ir::Node& node, int* cout, int* patch) {
  const ir::Node& w = graph.node(node.inputs[1]);
  *cout = w.type.shape[0];
  *patch = static_cast<int>(w.type.shape.numel()) / *cout;
}

/// Structural validation only: layout byte known, geometry agrees with
/// the weight node, blob sized and in bounds. The blob *contents* are
/// covered by the CNST checksum like every const; verifying the
/// permutation against the canonical weights would cost exactly a
/// repack, which is the cost this section exists to avoid. An entry
/// with an unknown layout tag is skipped (a newer writer's layout),
/// and the caller repacks that node from the canonical weights.
rt::PackedWeightSet read_pack(ByteReader& r, std::span<const std::byte> consts,
                              const ir::Graph& graph, bool zero_copy = false) {
  rt::PackedWeightSet set;
  set.by_node.resize(static_cast<std::size_t>(graph.size()));
  const std::size_t count = r.count(29);  // i32 + u8 + 2*i32 + 2*u64 per entry
  for (std::size_t i = 0; i < count; ++i) {
    const int node_id = r.i32();
    const int layout = r.u8();
    const int cout = r.i32();
    const int patch = r.i32();
    const std::uint64_t offset = r.u64();
    const std::uint64_t size = r.u64();
    if (node_id < 0 || node_id >= graph.size()) {
      throw SerializeError("PACK: entry " + std::to_string(i) + " node id out of range");
    }
    const ir::Node& node = graph.node(node_id);
    if (node.op != ir::OpKind::kQConv2d && node.op != ir::OpKind::kQLinear) {
      throw SerializeError("PACK: entry " + std::to_string(i) + " targets node %" +
                           std::to_string(node_id) + ", which is not a qconv/qlinear");
    }
    if (layout != static_cast<int>(rt::WeightLayout::kPackedDot16)) continue;
    int want_cout = 0;
    int want_patch = 0;
    weight_geometry(graph, node, &want_cout, &want_patch);
    if (cout != want_cout || patch != want_patch) {
      throw SerializeError("PACK: entry " + std::to_string(i) +
                           " geometry disagrees with the weight of node %" +
                           std::to_string(node_id));
    }
    rt::PackedWeights pw;
    pw.layout = rt::WeightLayout::kPackedDot16;
    pw.cout = cout;
    pw.patch = patch;
    if (size != static_cast<std::uint64_t>(pw.padded_patch()) * static_cast<std::uint64_t>(cout) *
                    sizeof(std::int16_t)) {
      throw SerializeError("PACK: entry " + std::to_string(i) + " blob size disagrees with " +
                           "its layout/geometry");
    }
    if (offset > consts.size() || size > consts.size() - offset) {
      throw SerializeError("PACK: blob of entry " + std::to_string(i) +
                           " escapes the CNST section");
    }
    if (!set.by_node[static_cast<std::size_t>(node_id)].empty()) {
      throw SerializeError("PACK: duplicate entry for node %" + std::to_string(node_id));
    }
    // The int16 panels are multi-byte little-endian data, so borrowing
    // them in place needs a little-endian host AND an int16-aligned
    // file offset (CNST blobs are 64B-aligned relative to file start
    // and mmap is page-aligned, so this holds for every mapped
    // package; the check keeps a hand-built misaligned span safe).
    const std::byte* blob = consts.data() + offset;
    const bool can_borrow = zero_copy && std::endian::native == std::endian::little &&
                            reinterpret_cast<std::uintptr_t>(blob) % alignof(std::int16_t) == 0;
    if (can_borrow) {
      pw.data = ConstView<std::int16_t>::borrowed(reinterpret_cast<const std::int16_t*>(blob),
                                                  static_cast<std::size_t>(size) /
                                                      sizeof(std::int16_t));
    } else {
      ByteReader payload(consts.subspan(offset, size), "CNST");
      std::vector<std::int16_t> panels(static_cast<std::size_t>(size) / sizeof(std::int16_t));
      payload.raw(panels.data(), static_cast<std::size_t>(size));
      pw.data = std::move(panels);
    }
    set.by_node[static_cast<std::size_t>(node_id)] = std::move(pw);
  }
  if (!r.exhausted()) throw SerializeError("PACK: trailing bytes after entries");
  return set;
}

// ---------------------------------------------------- header / sections

struct RawSection {
  std::uint32_t tag = 0;
  std::span<const std::byte> payload;
};

std::uint64_t checksum_of(std::span<const std::byte> bytes) {
  return fnv1a64(bytes.data(), bytes.size());
}

std::size_t align_file(std::size_t offset) {
  const std::size_t a = kConstAlignment;
  return (offset + a - 1) / a * a;
}

/// Parse header + section table; bounds-check and checksum-verify every
/// section. Shared by load_model_bytes and read_package_info.
std::vector<RawSection> read_sections(std::span<const std::byte> bytes,
                                      std::vector<SectionInfo>* info) {
  ByteReader r(bytes, "header");
  if (bytes.size() < kHeaderBytes) throw SerializeError("header: file too small");
  char magic[8];
  r.raw(magic, sizeof(magic));
  if (!std::equal(magic, magic + 8, kMagic)) throw SerializeError("header: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion) {
    throw SerializeError("header: unsupported format version " + std::to_string(version) +
                         " (this reader understands " + std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t endian = r.u32();
  if (endian != kEndianTag) throw SerializeError("header: endian tag mismatch");
  const std::uint64_t file_size = r.u64();
  if (file_size != bytes.size()) {
    throw SerializeError("header: declared file size " + std::to_string(file_size) +
                         " != actual " + std::to_string(bytes.size()) + " (truncated?)");
  }
  const std::uint32_t section_count = r.u32();
  if (section_count == 0 || section_count > kMaxSections) {
    throw SerializeError("header: section count " + std::to_string(section_count) +
                         " out of range");
  }
  r.u32();  // reserved
  const std::uint64_t declared_checksum = r.u64();
  if (file_checksum(bytes) != declared_checksum) {
    throw SerializeError("header: file checksum mismatch (corrupted)");
  }

  std::vector<RawSection> sections;
  sections.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t tag = r.u32();
    r.u32();  // reserved
    const std::uint64_t offset = r.u64();
    const std::uint64_t size = r.u64();
    const std::uint64_t checksum = r.u64();
    if (offset > bytes.size() || size > bytes.size() - offset) {
      throw SerializeError("section " + tag_name(tag) + ": escapes the file");
    }
    const auto payload = bytes.subspan(offset, size);
    if (checksum_of(payload) != checksum) {
      throw SerializeError("section " + tag_name(tag) + ": checksum mismatch (corrupted)");
    }
    sections.push_back(RawSection{tag, payload});
    if (info) info->push_back(SectionInfo{tag_name(tag), offset, size, checksum});
  }
  return sections;
}

/// The unique section with `tag`, or nullptr when absent (optional
/// sections like PACK); duplicates fail closed.
const RawSection* find_section(const std::vector<RawSection>& sections, std::uint32_t tag) {
  const RawSection* found = nullptr;
  for (const RawSection& s : sections) {
    if (s.tag != tag) continue;
    if (found) throw SerializeError("section " + tag_name(tag) + ": duplicated");
    found = &s;
  }
  return found;
}

/// The unique section with `tag`; duplicates and absence fail closed.
std::span<const std::byte> require_section(const std::vector<RawSection>& sections,
                                           std::uint32_t tag) {
  const RawSection* found = find_section(sections, tag);
  if (!found) throw SerializeError("section " + tag_name(tag) + ": missing");
  return found->payload;
}

}  // namespace

std::vector<std::byte> save_model_bytes(const compile::CompiledModel& model) {
  model.graph.validate();

  struct Pending {
    std::uint32_t tag;
    std::vector<std::byte> payload;
  };
  ByteWriter grph;
  ByteWriter cnst;
  write_graph(grph, cnst, model.graph);
  ByteWriter pack;
  const bool has_pack = write_pack(pack, cnst, model.packed);  // appends blobs to CNST
  ByteWriter meta;
  write_meta(meta, model);
  ByteWriter plan;
  write_plan(plan, model.plan);
  ByteWriter rprt;
  write_report(rprt, model.report);

  std::vector<Pending> sections;
  sections.push_back(Pending{kTagMeta, meta.take()});
  sections.push_back(Pending{kTagGraph, grph.take()});
  sections.push_back(Pending{kTagConst, cnst.take()});
  sections.push_back(Pending{kTagPlan, plan.take()});
  sections.push_back(Pending{kTagReport, rprt.take()});
  if (has_pack) sections.push_back(Pending{kTagPack, pack.take()});

  // Lay out: header, table, then sections each at a 64-byte file
  // offset (so CNST's internally aligned const blobs stay aligned
  // relative to the file start — mmap friendly).
  std::size_t offset = align_file(kHeaderBytes + sections.size() * kTableEntryBytes);
  std::vector<std::uint64_t> offsets;
  for (const Pending& s : sections) {
    offsets.push_back(offset);
    offset = align_file(offset + s.payload.size());
  }
  const std::uint64_t file_size =
      offsets.back() + sections.back().payload.size();  // no trailing pad

  ByteWriter out;
  out.raw(kMagic, sizeof(kMagic));
  out.u32(kFormatVersion);
  out.u32(kEndianTag);
  out.u64(file_size);
  out.u32(static_cast<std::uint32_t>(sections.size()));
  out.u32(0);
  out.u64(0);  // file checksum, patched below once the image is complete
  for (std::size_t i = 0; i < sections.size(); ++i) {
    out.u32(sections[i].tag);
    out.u32(0);
    out.u64(offsets[i]);
    out.u64(sections[i].payload.size());
    out.u64(checksum_of(sections[i].payload));
  }
  for (std::size_t i = 0; i < sections.size(); ++i) {
    while (out.size() < offsets[i]) out.u8(0);
    out.raw(sections[i].payload.data(), sections[i].payload.size());
  }
  std::vector<std::byte> image = out.take();
  const std::uint64_t checksum = file_checksum(image);
  for (int i = 0; i < 8; ++i) {
    image[kChecksumOffset + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((checksum >> (8 * i)) & 0xFF);
  }
  return image;
}

std::uint64_t save_model(const compile::CompiledModel& model, const std::string& path) {
  const std::vector<std::byte> bytes = save_model_bytes(model);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw SerializeError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) throw SerializeError("short write to " + path);
  return bytes.size();
}

namespace {

/// Shared loader core: load_model_bytes copies every payload
/// (self-contained model); MappedPackage::map passes zero_copy=true so
/// i8 consts and packed panels borrow from `bytes`, which the caller
/// then must keep alive. Validation is identical either way.
compile::CompiledModel load_model_image(std::span<const std::byte> bytes, bool zero_copy) {
  const std::vector<RawSection> sections = read_sections(bytes, nullptr);

  compile::CompiledModel model;
  {
    ByteReader r(require_section(sections, kTagGraph), "GRPH");
    model.graph = read_graph(r, require_section(sections, kTagConst), zero_copy);
  }
  {
    ByteReader r(require_section(sections, kTagPlan), "PLAN");
    model.plan = read_plan(r);
  }
  {
    ByteReader r(require_section(sections, kTagReport), "RPRT");
    model.report = read_report(r);
  }

  // Plan/arena invariants re-derived from the loaded graph: a package
  // whose plan cannot be proven safe never reaches an Executor.
  try {
    rt::check_plan(model.graph, model.plan);
  } catch (const std::exception& e) {
    throw SerializeError(std::string("PLAN: ") + e.what());
  }

  // Cross-section consistency: the report must describe this graph and
  // this plan, and META's arch must agree with the report's.
  if (model.report.final_nodes != model.graph.size() ||
      model.report.final_executed != model.graph.executed_node_count() ||
      model.report.const_bytes != model.graph.const_bytes() ||
      model.report.arena_bytes != model.plan.arena_bytes ||
      model.report.naive_arena_bytes != model.plan.naive_bytes) {
    throw SerializeError("RPRT: report disagrees with the loaded graph/plan");
  }
  {
    ByteReader r(require_section(sections, kTagMeta), "META");
    r.str();                             // producer
    r.u32();                             // format version (repeated for tools)
    r.str();                             // writer git sha
    const std::string arch = r.str();
    if (arch != model.report.arch) throw SerializeError("META: arch disagrees with RPRT");
    if (!r.exhausted()) throw SerializeError("META: trailing bytes after metadata");
  }

  // PACK: packed kernel weight layouts. Optional — packages written
  // before the section existed (or by a writer with layouts this
  // reader doesn't know) simply lack usable entries.
  if (const RawSection* pack = find_section(sections, kTagPack)) {
    ByteReader r(pack->payload, "PACK");
    model.packed = read_pack(r, require_section(sections, kTagConst), model.graph, zero_copy);
  } else {
    model.packed.by_node.resize(static_cast<std::size_t>(model.graph.size()));
  }
  // Legacy fallback: repack any packable node the package didn't
  // cover, so old packages still run the blocked kernels (they just
  // pay the one-time repack the PACK section exists to avoid). Gated
  // on the same predicate the pack-weights step uses, so a loaded
  // model re-saves byte-identically.
  for (const ir::Node& node : model.graph.nodes()) {
    if (!rt::node_wants_packed_weights(model.graph, node)) continue;
    rt::PackedWeights& slot = model.packed.by_node[static_cast<std::size_t>(node.id)];
    if (!slot.empty()) continue;
    int cout = 0;
    int patch = 0;
    weight_geometry(model.graph, node, &cout, &patch);
    slot = rt::pack_weights_dot16(model.graph.node(node.inputs[1]).i8_data.data(), cout, patch);
  }
  return model;
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) throw SerializeError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in.good()) throw SerializeError("short read from " + path);
  return bytes;
}

}  // namespace

compile::CompiledModel load_model_bytes(std::span<const std::byte> bytes) {
  return load_model_image(bytes, /*zero_copy=*/false);
}

compile::CompiledModel load_model(const std::string& path) {
  const std::vector<std::byte> bytes = read_file(path);
  return load_model_bytes(bytes);
}

// ------------------------------------------------------ MappedPackage

std::shared_ptr<const MappedPackage> MappedPackage::map(const std::string& path) {
  // shared_ptr wraps the raw `new` because the ctor is private; if
  // validation below throws, the destructor runs and unmaps.
  std::shared_ptr<MappedPackage> pkg(new MappedPackage());
  pkg->path_ = path;
#ifdef MICRONAS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw SerializeError("cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw SerializeError("cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file referenced
  if (addr == MAP_FAILED) throw SerializeError("mmap failed for " + path);
  pkg->map_addr_ = addr;
  pkg->base_ = static_cast<const std::byte*>(addr);
  pkg->size_ = size;
#else
  pkg->fallback_ = read_file(path);
  pkg->base_ = pkg->fallback_.data();
  pkg->size_ = pkg->fallback_.size();
#endif
  const std::span<const std::byte> bytes(pkg->base_, static_cast<std::size_t>(pkg->size_));
  // Full fail-closed validation against the mapping. The header's
  // declared file size is checked against the actual mapping length
  // FIRST (read_sections), so a truncated file is rejected before any
  // payload byte is dereferenced — no SIGBUS window at load time.
  pkg->model_ = load_model_image(bytes, /*zero_copy=*/true);
  pkg->arch_ = pkg->model_.report.arch;
  {
    ByteReader r(bytes.subspan(kChecksumOffset, 8), "header");
    pkg->checksum_ = r.u64();
  }
  std::uint64_t in_place = 0;
  for (const ir::Node& node : pkg->model_.graph.nodes()) {
    if (node.i8_data.is_borrowed()) in_place += node.i8_data.size();
  }
  for (const rt::PackedWeights& pw : pkg->model_.packed.by_node) {
    if (pw.data.is_borrowed()) in_place += pw.data.size() * sizeof(std::int16_t);
  }
  pkg->zero_copy_bytes_ = in_place;
  return pkg;
}

MappedPackage::~MappedPackage() {
#ifdef MICRONAS_HAVE_MMAP
  if (map_addr_ != nullptr) ::munmap(map_addr_, static_cast<std::size_t>(size_));
#endif
}

PackageInfo read_package_info(std::span<const std::byte> bytes) {
  PackageInfo info;
  std::vector<RawSection> sections = read_sections(bytes, &info.sections);
  info.format_version = kFormatVersion;
  info.file_bytes = bytes.size();
  ByteReader r(require_section(sections, kTagMeta), "META");
  info.producer = r.str();
  r.u32();
  info.git_sha = r.str();
  info.arch = r.str();
  if (!r.exhausted()) throw SerializeError("META: trailing bytes after metadata");
  return info;
}

PackageInfo read_package_info_file(const std::string& path) {
  const std::vector<std::byte> bytes = read_file(path);
  return read_package_info(bytes);
}

std::string logits_hash_hex(const Tensor& logits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    fnv1a64(logits.data().data(), logits.numel() * sizeof(float))));
  return buf;
}

std::string read_golden_logits_hash(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw SerializeError("cannot open golden file " + path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string key, value;
    if (ss >> key >> value && key == "logits_hash") return value;
  }
  throw SerializeError("no logits_hash line in " + path);
}

std::string PackageInfo::to_string() const {
  std::ostringstream ss;
  ss << "mnpkg v" << format_version << ", " << file_bytes << " B, arch " << arch
     << ", written by " << producer << " @ " << git_sha << "\n";
  for (const SectionInfo& s : sections) {
    char line[96];
    std::snprintf(line, sizeof(line), "  %s  %8llu B at %8llu  fnv64 %016llx", s.tag.c_str(),
                  static_cast<unsigned long long>(s.size),
                  static_cast<unsigned long long>(s.offset),
                  static_cast<unsigned long long>(s.checksum));
    ss << line << "\n";
  }
  return ss.str();
}

}  // namespace micronas::serialize
