// Endian-explicit byte-stream primitives for the model package format.
//
// Every multi-byte value is encoded little-endian one byte at a time,
// so the on-disk format is identical whatever the host byte order and
// nothing ever depends on type punning a struct. The reader side is
// the security boundary of the loader: every read is bounds-checked
// against the underlying span and throws SerializeError instead of
// walking off the end, so a truncated or corrupted package fails
// closed — never undefined behavior.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace micronas::serialize {

/// Every malformed-package condition (bad magic, unsupported version,
/// out-of-bounds offset, checksum mismatch, inconsistent graph/plan)
/// surfaces as this one exception type so callers can catch corruption
/// distinctly from programming errors.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what) : std::runtime_error("mnpkg: " + what) {}
};

/// Growable little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

  /// Length-prefixed UTF-8/byte string.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  /// Zero-pad so the NEXT byte lands on a multiple of `alignment`
  /// relative to the start of this writer.
  void align(std::size_t alignment) {
    while (bytes_.size() % alignment != 0) u8(0);
  }

  std::size_t size() const { return bytes_.size(); }
  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Bounds-checked little-endian byte source over a borrowed span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes, std::string what = "package")
      : bytes_(bytes), what_(std::move(what)) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  float f32() { return std::bit_cast<float>(u32()); }

  std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxString) {
      throw SerializeError(what_ + ": string length " + std::to_string(n) + " exceeds cap");
    }
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Element count prefix for a vector whose elements occupy at least
  /// `min_elem_bytes` each — rejects counts the remaining bytes cannot
  /// possibly hold, so corrupted counts cannot trigger huge allocations.
  std::size_t count(std::size_t min_elem_bytes) {
    const std::uint32_t n = u32();
    if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
      throw SerializeError(what_ + ": element count " + std::to_string(n) +
                           " exceeds remaining bytes");
    }
    return n;
  }

  void raw(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }

  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  /// True when the reader consumed the span exactly — trailing garbage
  /// in a section is treated as corruption by callers.
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  static constexpr std::uint32_t kMaxString = 1U << 22;  // 4 MiB

  void need(std::size_t n) const {
    if (n > remaining()) {
      throw SerializeError(what_ + ": truncated at byte " + std::to_string(pos_) + " (need " +
                           std::to_string(n) + ", have " + std::to_string(remaining()) + ")");
    }
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  std::string what_;
};

}  // namespace micronas::serialize
