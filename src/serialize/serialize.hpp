// Versioned binary model package (.mnpkg): persistent CompiledModel.
//
// PR 4 closed the search -> executable loop but a compiled model died
// with the process; this module is the deploy-once/serve-many half
// (the TFLite-Micro flatbuffer-model idiom, scaled to this repo's IR).
// save_model() serializes a compile::CompiledModel — IR graph in
// schedule order, const/weight blobs, quant params, memory plan and
// compile metadata — and load_model() reconstructs it bit-exactly: the
// reloaded graph executes to the same logits hash the compile report
// golden records, and save(load(save(m))) is byte-identical.
//
// File layout (all integers little-endian; see bytes.hpp):
//
//   header   magic "MNASPKG\0" | u32 format_version | u32 endian tag
//            0x01020304 | u64 file_size | u32 section_count | u32 pad
//   table    section_count x { u32 tag | u32 pad | u64 offset
//            | u64 size | u64 fnv1a64 checksum }
//   payload  sections, each zero-padded to a 64-byte file offset
//
// Sections (unknown tags are ignored for forward compatibility; the
// format version only bumps on incompatible layout changes):
//
//   META  producer, format version, git sha of the writer, arch string
//   GRPH  node records in schedule order; const payloads point into CNST
//   CNST  raw constant blobs, each 64-byte aligned relative to the file
//         start so a flash/mmap deployment can use them in place
//   PLAN  static arena plan (offsets, lifetimes, schedule)
//   RPRT  the full CompileReport (pass telemetry, latency, plan text)
//   PACK  kernel weight-layout table (optional, additive): per qconv /
//         qlinear node, a rt::WeightLayout tag plus the CNST location
//         of the packed GEMM panels, so a server runs the blocked int8
//         kernels straight off the loaded image with zero repacking.
//         Packages without it (or with layout tags this reader doesn't
//         know) load fine and repack from the canonical weights.
//
// The loader is fail-closed: every offset/size is bounds-checked,
// section checksums must match (any single flipped byte is rejected),
// the graph is re-validated node by node (declared output types must
// equal re-inferred types), and the memory plan's liveness and overlap
// invariants are re-derived from the loaded graph before an Executor
// ever sees the model. A package that loads is a package that runs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/compile/compiler.hpp"
#include "src/serialize/bytes.hpp"

namespace micronas::serialize {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr int kConstAlignment = 64;  // mmap/flash-friendly

/// Section table entry as read back from a package header.
struct SectionInfo {
  std::string tag;            // four-character code, e.g. "GRPH"
  std::uint64_t offset = 0;   // from the start of the file
  std::uint64_t size = 0;     // payload bytes (before padding)
  std::uint64_t checksum = 0; // fnv1a64 over the payload
};

/// Header + section table peek (no graph reconstruction): what a
/// registry or CLI shows before deciding to load the blob.
struct PackageInfo {
  std::uint32_t format_version = 0;
  std::uint64_t file_bytes = 0;
  std::string producer;
  std::string git_sha;   // writer provenance, "unknown" outside git
  std::string arch;      // canonical genotype string
  std::vector<SectionInfo> sections;

  std::string to_string() const;
};

/// Serialize to an in-memory package image.
std::vector<std::byte> save_model_bytes(const compile::CompiledModel& model);

/// Serialize to `path` (atomically enough for tests: write then flush;
/// throws SerializeError on I/O failure). Returns the package size.
std::uint64_t save_model(const compile::CompiledModel& model, const std::string& path);

/// Parse + validate a package image; throws SerializeError on any
/// corruption. The returned model is self-contained (owns its consts).
compile::CompiledModel load_model_bytes(std::span<const std::byte> bytes);

/// Load from `path`; throws SerializeError on I/O failure or corruption.
compile::CompiledModel load_model(const std::string& path);

/// A .mnpkg mapped read-only into the address space, validated, with
/// the CompiledModel rebuilt IN PLACE: int8 const payloads and packed
/// GEMM panels are ConstView::borrowed pointers into the mapping
/// (zero-copy weights — this is what the CNST section's 64-byte
/// file-relative alignment exists for), while the graph structure,
/// plan and report are reconstructed through exactly the same
/// fail-closed validation as load_model (header/section checksums,
/// attr range checks, Graph::from_nodes re-inference, rt::check_plan).
/// A corrupted or truncated file throws SerializeError at map() time —
/// the declared-file-size check runs against the actual mapping length
/// before any payload is dereferenced, so truncation can never SIGBUS.
///
/// Lifetime contract: model() borrows the mapping, so the
/// MappedPackage must outlive every Graph/Executor that references the
/// model. map() returns a shared_ptr precisely so callers (the serve
/// registry) can alias model handles to the package's lifetime; the
/// destructor unmaps. Instances are immutable after map() — sharing
/// one across threads is race-free.
class MappedPackage {
 public:
  static std::shared_ptr<const MappedPackage> map(const std::string& path);
  ~MappedPackage();

  MappedPackage(const MappedPackage&) = delete;
  MappedPackage& operator=(const MappedPackage&) = delete;

  const compile::CompiledModel& model() const { return model_; }
  const std::string& path() const { return path_; }
  std::uint64_t file_bytes() const { return size_; }
  /// The package header's whole-file fnv1a64 — the content identity a
  /// registry keys on (two byte-identical files share it).
  std::uint64_t content_checksum() const { return checksum_; }
  /// Canonical genotype string from META (registry key half two).
  const std::string& arch() const { return arch_; }
  /// True when `p` points inside the mapped file image — what the
  /// zero-copy tests assert about every borrowed const.
  bool contains(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b < base_ + size_;
  }
  /// Bytes the model references in place instead of copying (i8 consts
  /// + packed panels). On a non-POSIX or big-endian fallback some or
  /// all payloads are copied and this shrinks accordingly.
  std::uint64_t zero_copy_bytes() const { return zero_copy_bytes_; }
  /// False when the platform fallback read the file into an owned
  /// buffer instead of mmap (consts still point into that buffer).
  bool is_mmap() const { return map_addr_ != nullptr; }

 private:
  MappedPackage() = default;

  compile::CompiledModel model_;
  std::string path_;
  std::string arch_;
  const std::byte* base_ = nullptr;
  std::uint64_t size_ = 0;
  std::uint64_t checksum_ = 0;
  std::uint64_t zero_copy_bytes_ = 0;
  void* map_addr_ = nullptr;  // munmap handle (null on fallback)
  std::vector<std::byte> fallback_;  // owned image when mmap is unavailable
};

/// Header/section-table/META inspection without reconstructing the
/// graph (still checksum-verifies the META section it reads).
PackageInfo read_package_info(std::span<const std::byte> bytes);
PackageInfo read_package_info_file(const std::string& path);

/// FNV-1a64 over the raw logits bytes as the 16-hex-digit string the
/// golden fixtures record (`logits_hash <hex>`). One definition shared
/// by the goldens' writer (test_compile_e2e), the round-trip tests and
/// the serve_bench/CI format-drift gate, so they cannot diverge.
std::string logits_hash_hex(const Tensor& logits);

/// The value of the `logits_hash <hex>` line in a golden fixture;
/// throws SerializeError when the file or the line is missing.
std::string read_golden_logits_hash(const std::string& path);

}  // namespace micronas::serialize
