// Versioned binary model package (.mnpkg): persistent CompiledModel.
//
// PR 4 closed the search -> executable loop but a compiled model died
// with the process; this module is the deploy-once/serve-many half
// (the TFLite-Micro flatbuffer-model idiom, scaled to this repo's IR).
// save_model() serializes a compile::CompiledModel — IR graph in
// schedule order, const/weight blobs, quant params, memory plan and
// compile metadata — and load_model() reconstructs it bit-exactly: the
// reloaded graph executes to the same logits hash the compile report
// golden records, and save(load(save(m))) is byte-identical.
//
// File layout (all integers little-endian; see bytes.hpp):
//
//   header   magic "MNASPKG\0" | u32 format_version | u32 endian tag
//            0x01020304 | u64 file_size | u32 section_count | u32 pad
//   table    section_count x { u32 tag | u32 pad | u64 offset
//            | u64 size | u64 fnv1a64 checksum }
//   payload  sections, each zero-padded to a 64-byte file offset
//
// Sections (unknown tags are ignored for forward compatibility; the
// format version only bumps on incompatible layout changes):
//
//   META  producer, format version, git sha of the writer, arch string
//   GRPH  node records in schedule order; const payloads point into CNST
//   CNST  raw constant blobs, each 64-byte aligned relative to the file
//         start so a flash/mmap deployment can use them in place
//   PLAN  static arena plan (offsets, lifetimes, schedule)
//   RPRT  the full CompileReport (pass telemetry, latency, plan text)
//   PACK  kernel weight-layout table (optional, additive): per qconv /
//         qlinear node, a rt::WeightLayout tag plus the CNST location
//         of the packed GEMM panels, so a server runs the blocked int8
//         kernels straight off the loaded image with zero repacking.
//         Packages without it (or with layout tags this reader doesn't
//         know) load fine and repack from the canonical weights.
//
// The loader is fail-closed: every offset/size is bounds-checked,
// section checksums must match (any single flipped byte is rejected),
// the graph is re-validated node by node (declared output types must
// equal re-inferred types), and the memory plan's liveness and overlap
// invariants are re-derived from the loaded graph before an Executor
// ever sees the model. A package that loads is a package that runs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/compile/compiler.hpp"
#include "src/serialize/bytes.hpp"

namespace micronas::serialize {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr int kConstAlignment = 64;  // mmap/flash-friendly

/// Section table entry as read back from a package header.
struct SectionInfo {
  std::string tag;            // four-character code, e.g. "GRPH"
  std::uint64_t offset = 0;   // from the start of the file
  std::uint64_t size = 0;     // payload bytes (before padding)
  std::uint64_t checksum = 0; // fnv1a64 over the payload
};

/// Header + section table peek (no graph reconstruction): what a
/// registry or CLI shows before deciding to load the blob.
struct PackageInfo {
  std::uint32_t format_version = 0;
  std::uint64_t file_bytes = 0;
  std::string producer;
  std::string git_sha;   // writer provenance, "unknown" outside git
  std::string arch;      // canonical genotype string
  std::vector<SectionInfo> sections;

  std::string to_string() const;
};

/// Serialize to an in-memory package image.
std::vector<std::byte> save_model_bytes(const compile::CompiledModel& model);

/// Serialize to `path` (atomically enough for tests: write then flush;
/// throws SerializeError on I/O failure). Returns the package size.
std::uint64_t save_model(const compile::CompiledModel& model, const std::string& path);

/// Parse + validate a package image; throws SerializeError on any
/// corruption. The returned model is self-contained (owns its consts).
compile::CompiledModel load_model_bytes(std::span<const std::byte> bytes);

/// Load from `path`; throws SerializeError on I/O failure or corruption.
compile::CompiledModel load_model(const std::string& path);

/// Header/section-table/META inspection without reconstructing the
/// graph (still checksum-verifies the META section it reads).
PackageInfo read_package_info(std::span<const std::byte> bytes);
PackageInfo read_package_info_file(const std::string& path);

/// FNV-1a64 over the raw logits bytes as the 16-hex-digit string the
/// golden fixtures record (`logits_hash <hex>`). One definition shared
/// by the goldens' writer (test_compile_e2e), the round-trip tests and
/// the serve_bench/CI format-drift gate, so they cannot diverge.
std::string logits_hash_hex(const Tensor& logits);

/// The value of the `logits_hash <hex>` line in a golden fixture;
/// throws SerializeError when the file or the line is missing.
std::string read_golden_logits_hash(const std::string& path);

}  // namespace micronas::serialize
