#include "src/net/macro_net.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

#include "src/tensor/ops.hpp"

namespace micronas {

const std::string& layer_kind_name(LayerKind kind) {
  static const std::array<std::string, 6> names = {"conv", "avg_pool", "skip",
                                                   "add",  "gap",      "linear"};
  const int i = static_cast<int>(kind);
  if (i < 0 || i >= 6) throw std::invalid_argument("layer_kind_name: invalid kind");
  return names[static_cast<std::size_t>(i)];
}

long long LayerSpec::macs() const {
  switch (kind) {
    case LayerKind::kConv:
      return static_cast<long long>(kernel) * kernel * cin * cout * out_h * out_w;
    case LayerKind::kLinear:
      return static_cast<long long>(cin) * cout;
    default:
      return 0;
  }
}

std::string LayerSpec::to_string() const {
  std::ostringstream ss;
  ss << layer_kind_name(kind) << " " << cin << "x" << h << "x" << w << " -> " << cout << "x"
     << out_h << "x" << out_w;
  if (kind == LayerKind::kConv || kind == LayerKind::kAvgPool) {
    ss << " k" << kernel << "s" << stride;
  }
  return ss.str();
}

namespace {

LayerSpec make_conv_spec(int cin, int cout, int hw, int kernel, int stride, int pad) {
  LayerSpec s;
  s.kind = LayerKind::kConv;
  s.cin = cin;
  s.cout = cout;
  s.h = hw;
  s.w = hw;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  s.out_h = ops::conv_out_size(hw, kernel, stride, pad);
  s.out_w = s.out_h;
  return s;
}

LayerSpec make_simple_spec(LayerKind kind, int channels, int hw) {
  LayerSpec s;
  s.kind = kind;
  s.cin = channels;
  s.cout = channels;
  s.h = hw;
  s.w = hw;
  s.out_h = hw;
  s.out_w = hw;
  if (kind == LayerKind::kAvgPool) {
    s.kernel = 3;
    s.stride = 1;
    s.pad = 1;
  }
  if (kind == LayerKind::kGlobalPool) {
    s.out_h = 1;
    s.out_w = 1;
  }
  return s;
}

/// Append the layers of one cell at (channels, hw). Node j sums the
/// outputs of its signal-carrying incoming edges; each sum of k terms
/// emits k-1 kAdd specs.
void append_cell(const nb201::Genotype& g, int channels, int hw, std::vector<LayerSpec>& out) {
  for (int node = 1; node < nb201::kNumNodes; ++node) {
    int live_inputs = 0;
    for (int from = 0; from < node; ++from) {
      const nb201::Op op = g.op(from, node);
      switch (op) {
        case nb201::Op::kNone:
          continue;
        case nb201::Op::kSkipConnect:
          out.push_back(make_simple_spec(LayerKind::kSkip, channels, hw));
          break;
        case nb201::Op::kConv1x1:
          out.push_back(make_conv_spec(channels, channels, hw, 1, 1, 0));
          break;
        case nb201::Op::kConv3x3:
          out.push_back(make_conv_spec(channels, channels, hw, 3, 1, 1));
          break;
        case nb201::Op::kAvgPool3x3:
          out.push_back(make_simple_spec(LayerKind::kAvgPool, channels, hw));
          break;
      }
      ++live_inputs;
    }
    for (int k = 1; k < live_inputs; ++k) {
      out.push_back(make_simple_spec(LayerKind::kAdd, channels, hw));
    }
  }
}

/// NB201 residual reduction block: conv3x3(s2) + conv3x3(s1) on the
/// main path, 1x1(s2) shortcut, elementwise add.
void append_reduction(int cin, int hw, std::vector<LayerSpec>& out) {
  const int cout = cin * 2;
  out.push_back(make_conv_spec(cin, cout, hw, 3, 2, 1));
  const int hw2 = out.back().out_h;
  out.push_back(make_conv_spec(cout, cout, hw2, 3, 1, 1));
  out.push_back(make_conv_spec(cin, cout, hw, 1, 2, 0));
  out.push_back(make_simple_spec(LayerKind::kAdd, cout, hw2));
}

}  // namespace

MacroModel build_macro_model(const nb201::Genotype& genotype, const MacroNetConfig& config) {
  if (config.num_stages < 1 || config.cells_per_stage < 1) {
    throw std::invalid_argument("build_macro_model: stages and cells_per_stage must be >= 1");
  }
  MacroModel m;
  m.config = config;
  m.genotype = genotype;

  int channels = config.base_channels;
  int hw = config.input_size;

  m.layers.push_back(make_conv_spec(config.input_channels, channels, hw, 3, 1, 1));

  for (int stage = 0; stage < config.num_stages; ++stage) {
    if (stage > 0) {
      append_reduction(channels, hw, m.layers);
      channels *= 2;
      hw = (hw + 1) / 2;
    }
    for (int c = 0; c < config.cells_per_stage; ++c) {
      m.cell_starts.push_back(m.layers.size());
      append_cell(genotype, channels, hw, m.layers);
    }
  }

  m.layers.push_back(make_simple_spec(LayerKind::kGlobalPool, channels, hw));

  LayerSpec fc;
  fc.kind = LayerKind::kLinear;
  fc.cin = channels;
  fc.cout = config.num_classes;
  fc.h = 1;
  fc.w = 1;
  fc.out_h = 1;
  fc.out_w = 1;
  m.layers.push_back(fc);

  return m;
}

}  // namespace micronas
