// Deployment-model metadata: the full NAS-Bench-201 macro skeleton that
// actually ships to the MCU, described as a flat list of layer specs.
//
// FLOPs counting, parameter counting, MCU latency estimation and peak
// memory analysis all run on this metadata — no tensors are
// instantiated. The skeleton is the standard NB201 one: 3×3 stem
// (16 ch) → 5 cells @16 → reduction → 5 cells @32 → reduction →
// 5 cells @64 → GAP → FC, on 32×32 inputs.
#pragma once

#include <string>
#include <vector>

#include "src/nb201/genotype.hpp"

namespace micronas {

enum class LayerKind {
  kConv,        // K×K convolution (+ folded batch norm)
  kAvgPool,     // K×K average pooling
  kSkip,        // identity copy
  kAdd,         // elementwise sum of two buffers (cell node / residual)
  kGlobalPool,  // global average pooling
  kLinear,      // fully connected classifier
};

const std::string& layer_kind_name(LayerKind kind);

/// One scheduled layer of the deployment model.
struct LayerSpec {
  LayerKind kind = LayerKind::kConv;
  int cin = 0;
  int cout = 0;
  int h = 0;       // input spatial height
  int w = 0;       // input spatial width
  int kernel = 1;
  int stride = 1;
  int pad = 0;
  int out_h = 0;
  int out_w = 0;
  /// Numeric precision of weights and activations (32 = fp32, 8 =
  /// int8). Quantization changes MCU throughput and memory footprints;
  /// see src/hw/quant.hpp.
  int bits = 32;

  /// Multiply-accumulate count (0 for copies/adds/pools — see flops.cpp
  /// for the full op cost accounting).
  long long macs() const;
  /// Output elements.
  long long out_elems() const { return static_cast<long long>(cout) * out_h * out_w; }
  /// Input elements.
  long long in_elems() const { return static_cast<long long>(cin) * h * w; }

  std::string to_string() const;
};

struct MacroNetConfig {
  int input_size = 32;
  int input_channels = 3;
  int num_classes = 10;
  int base_channels = 16;
  int cells_per_stage = 5;
  int num_stages = 3;
};

/// The scheduled deployment model.
struct MacroModel {
  MacroNetConfig config;
  nb201::Genotype genotype;
  std::vector<LayerSpec> layers;

  /// Indices in `layers` where each cell begins (diagnostics).
  std::vector<std::size_t> cell_starts;
};

/// Expand a genotype into the scheduled macro model. Edges carrying
/// `none` emit no layers; cell node sums emit kAdd specs.
MacroModel build_macro_model(const nb201::Genotype& genotype, const MacroNetConfig& config = {});

}  // namespace micronas
