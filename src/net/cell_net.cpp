#include "src/net/cell_net.hpp"

#include <stdexcept>

namespace micronas {

namespace {

/// A straight-line chain of layers.
class SequenceBlock final : public Block {
 public:
  explicit SequenceBlock(std::vector<std::unique_ptr<Layer>> layers) : layers_(std::move(layers)) {}

  Tensor forward(const Tensor& input) override {
    Tensor x = input;
    for (auto& l : layers_) x = l->forward(x);
    return x;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }

  void for_each_layer(const std::function<void(Layer&)>& fn) override {
    for (auto& l : layers_) fn(*l);
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// One candidate operation on an edge, instantiated as a layer chain.
struct EdgeOpInstance {
  nb201::Op op;
  std::vector<std::unique_ptr<Layer>> layers;

  Tensor forward(const Tensor& x) {
    Tensor y = x;
    for (auto& l : layers) y = l->forward(y);
    return y;
  }
  Tensor backward(const Tensor& g) {
    Tensor gx = g;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) gx = (*it)->backward(gx);
    return gx;
  }
};

std::vector<std::unique_ptr<Layer>> instantiate_op(nb201::Op op, int channels) {
  std::vector<std::unique_ptr<Layer>> layers;
  switch (op) {
    case nb201::Op::kNone:
      layers.push_back(std::make_unique<ZeroLayer>());
      break;
    case nb201::Op::kSkipConnect:
      layers.push_back(std::make_unique<IdentityLayer>());
      break;
    case nb201::Op::kConv1x1:
      layers.push_back(std::make_unique<Conv2dLayer>(channels, channels, 1, 1, 0));
      layers.push_back(std::make_unique<ReluLayer>());
      break;
    case nb201::Op::kConv3x3:
      layers.push_back(std::make_unique<Conv2dLayer>(channels, channels, 3, 1, 1));
      layers.push_back(std::make_unique<ReluLayer>());
      break;
    case nb201::Op::kAvgPool3x3:
      layers.push_back(std::make_unique<AvgPoolLayer>(3, 1, 1));
      break;
  }
  return layers;
}

/// The searched cell: node j = Σ_{i<j} Σ_{op ∈ edge(i,j)} op(node_i).
class CellBlock final : public Block {
 public:
  CellBlock(const EdgeOps& edge_ops, int channels) {
    for (int e = 0; e < nb201::kNumEdges; ++e) {
      for (nb201::Op op : edge_ops[static_cast<std::size_t>(e)]) {
        EdgeOpInstance inst;
        inst.op = op;
        inst.layers = instantiate_op(op, channels);
        edges_[static_cast<std::size_t>(e)].push_back(std::move(inst));
      }
    }
  }

  Tensor forward(const Tensor& input) override {
    node_act_[0] = input;
    for (int node = 1; node < nb201::kNumNodes; ++node) {
      Tensor acc(input.shape());
      for (int from = 0; from < node; ++from) {
        const int e = nb201::edge_index(from, node);
        for (auto& inst : edges_[static_cast<std::size_t>(e)]) {
          acc.add_(inst.forward(node_act_[static_cast<std::size_t>(from)]));
        }
      }
      node_act_[static_cast<std::size_t>(node)] = std::move(acc);
    }
    return node_act_[nb201::kNumNodes - 1];
  }

  Tensor backward(const Tensor& grad_output) override {
    std::array<Tensor, nb201::kNumNodes> node_grad;
    for (int n = 0; n < nb201::kNumNodes; ++n) node_grad[static_cast<std::size_t>(n)] = Tensor(grad_output.shape());
    node_grad[nb201::kNumNodes - 1] = grad_output;
    for (int node = nb201::kNumNodes - 1; node >= 1; --node) {
      const Tensor& g = node_grad[static_cast<std::size_t>(node)];
      for (int from = 0; from < node; ++from) {
        const int e = nb201::edge_index(from, node);
        for (auto& inst : edges_[static_cast<std::size_t>(e)]) {
          node_grad[static_cast<std::size_t>(from)].add_(inst.backward(g));
        }
      }
    }
    return node_grad[0];
  }

  void for_each_layer(const std::function<void(Layer&)>& fn) override {
    for (auto& edge : edges_) {
      for (auto& inst : edge) {
        for (auto& l : inst.layers) fn(*l);
      }
    }
  }

 private:
  std::array<std::vector<EdgeOpInstance>, nb201::kNumEdges> edges_;
  std::array<Tensor, nb201::kNumNodes> node_act_;
};

}  // namespace

EdgeOps edge_ops_from_genotype(const nb201::Genotype& genotype) {
  EdgeOps ops;
  for (int e = 0; e < nb201::kNumEdges; ++e) ops[static_cast<std::size_t>(e)] = {genotype.op(e)};
  return ops;
}

EdgeOps edge_ops_from_opset(const nb201::OpSet& opset) {
  EdgeOps ops;
  for (int e = 0; e < nb201::kNumEdges; ++e) ops[static_cast<std::size_t>(e)] = opset.ops_on_edge(e);
  return ops;
}

CellNet::CellNet(const nb201::Genotype& genotype, const CellNetConfig& config, Rng& rng)
    : config_(config) {
  build(edge_ops_from_genotype(genotype), rng);
}

CellNet::CellNet(const nb201::OpSet& opset, const CellNetConfig& config, Rng& rng) : config_(config) {
  build(edge_ops_from_opset(opset), rng);
}

CellNet::CellNet(const EdgeOps& edge_ops, const CellNetConfig& config, Rng& rng) : config_(config) {
  build(edge_ops, rng);
}

void CellNet::build(const EdgeOps& edge_ops, Rng& rng) {
  if (config_.num_stages < 1) throw std::invalid_argument("CellNet: num_stages >= 1 required");
  if (config_.cells_per_stage < 1) throw std::invalid_argument("CellNet: cells_per_stage >= 1 required");

  int channels = config_.base_channels;
  int spatial = config_.input_size;

  // Stem: 3x3 conv into the base width, followed by ReLU.
  {
    std::vector<std::unique_ptr<Layer>> stem;
    stem.push_back(std::make_unique<Conv2dLayer>(config_.input_channels, channels, 3, 1, 1));
    stem.push_back(std::make_unique<ReluLayer>());
    blocks_.push_back(std::make_unique<SequenceBlock>(std::move(stem)));
  }

  for (int stage = 0; stage < config_.num_stages; ++stage) {
    if (stage > 0) {
      // Reduction between stages: stride-2 conv doubling the width.
      std::vector<std::unique_ptr<Layer>> red;
      red.push_back(std::make_unique<Conv2dLayer>(channels, channels * 2, 3, 2, 1));
      red.push_back(std::make_unique<ReluLayer>());
      blocks_.push_back(std::make_unique<SequenceBlock>(std::move(red)));
      channels *= 2;
      spatial = (spatial + 1) / 2;
    }
    for (int c = 0; c < config_.cells_per_stage; ++c) {
      auto cell = std::make_unique<CellBlock>(edge_ops, channels);
      cell->for_each_layer([&](Layer& l) {
        if (const auto* relu = dynamic_cast<const ReluLayer*>(&l)) {
          cell_relu_layers_.push_back(relu);
        }
        cell_param_layers_.push_back(&l);
      });
      blocks_.push_back(std::move(cell));
    }
  }

  // Head: GAP + linear classifier.
  {
    std::vector<std::unique_ptr<Layer>> head;
    head.push_back(std::make_unique<GlobalAvgPoolLayer>());
    head.push_back(std::make_unique<LinearLayer>(channels, config_.num_classes));
    blocks_.push_back(std::make_unique<SequenceBlock>(std::move(head)));
  }

  for (auto& b : blocks_) {
    b->for_each_layer([&](Layer& l) {
      l.init(rng);
      if (const auto* relu = dynamic_cast<const ReluLayer*>(&l)) relu_layers_.push_back(relu);
    });
  }
}

Tensor CellNet::forward(const Tensor& input) {
  if (input.shape().rank() != 4) throw std::invalid_argument("CellNet::forward: rank-4 input required");
  Tensor x = input;
  for (auto& b : blocks_) x = b->forward(x);
  return x;
}

Tensor CellNet::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void CellNet::zero_grad() {
  for (auto& b : blocks_) {
    b->for_each_layer([](Layer& l) { l.zero_grad(); });
  }
}

std::size_t CellNet::param_count() {
  std::size_t n = 0;
  for (auto& b : blocks_) {
    b->for_each_layer([&](Layer& l) { n += l.param_count(); });
  }
  return n;
}

void CellNet::for_each_param(const std::function<void(std::span<float>)>& fn) {
  for (auto& b : blocks_) {
    b->for_each_layer([&](Layer& l) {
      for (auto s : l.param_spans()) fn(s);
    });
  }
}

void CellNet::collect_grads(std::vector<float>& out, bool cells_only) {
  out.clear();
  if (cells_only) {
    for (Layer* l : cell_param_layers_) {
      for (auto s : l->grad_spans()) out.insert(out.end(), s.begin(), s.end());
    }
    return;
  }
  for (auto& b : blocks_) {
    b->for_each_layer([&](Layer& l) {
      for (auto s : l.grad_spans()) out.insert(out.end(), s.begin(), s.end());
    });
  }
}

void CellNet::collect_relu_pattern(int sample, std::vector<unsigned char>& bits,
                                   bool cells_only) const {
  for (const auto* relu : cells_only ? cell_relu_layers_ : relu_layers_) {
    const Tensor& mask = relu->last_mask();
    if (mask.empty()) throw std::logic_error("CellNet::collect_relu_pattern: no forward recorded");
    const int n = mask.shape()[0];
    if (sample < 0 || sample >= n) throw std::out_of_range("CellNet::collect_relu_pattern: sample index");
    const std::size_t per = mask.numel() / static_cast<std::size_t>(n);
    const auto data = mask.data();
    for (std::size_t i = 0; i < per; ++i) {
      bits.push_back(data[static_cast<std::size_t>(sample) * per + i] > 0.5F ? 1 : 0);
    }
  }
}

}  // namespace micronas
