// Instantiated proxy network: stem + searched cells + classifier head,
// with full forward/backward through the cell DAG.
//
// This is the network the zero-cost indicators actually run on. It is
// intentionally small (one cell per stage, 8 base channels, 16×16
// inputs by default): the NTK condition number and the linear-region
// count are *relative* quantities across candidate cells, so a compact
// instantiation preserves ranking while keeping CPU cost low — the same
// argument TE-NAS makes for proxy networks.
//
// Supernets are supported directly: an edge may carry several candidate
// operations, in which case the edge output is the sum of its op
// outputs (weight-free DARTS-style aggregation). The pruning search
// scores supernet variants by removing one (edge, op) at a time.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nb201/space.hpp"
#include "src/tensor/layers.hpp"

namespace micronas {

struct CellNetConfig {
  int input_channels = 3;
  int input_size = 16;     // square inputs
  int num_classes = 10;
  int base_channels = 8;   // doubled at each reduction
  int cells_per_stage = 1;
  int num_stages = 3;
};

/// Per-edge candidate operations; a concrete architecture has exactly
/// one op per edge, a supernet has several.
using EdgeOps = std::array<std::vector<nb201::Op>, nb201::kNumEdges>;

EdgeOps edge_ops_from_genotype(const nb201::Genotype& genotype);
EdgeOps edge_ops_from_opset(const nb201::OpSet& opset);

/// Common interface for the blocks a CellNet chains together.
class Block {
 public:
  virtual ~Block() = default;
  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;
  virtual void for_each_layer(const std::function<void(Layer&)>& fn) = 0;
};

class CellNet {
 public:
  CellNet(const nb201::Genotype& genotype, const CellNetConfig& config, Rng& rng);
  CellNet(const nb201::OpSet& opset, const CellNetConfig& config, Rng& rng);
  CellNet(const EdgeOps& edge_ops, const CellNetConfig& config, Rng& rng);

  /// Forward a batch [N, C, H, W] to logits [N, num_classes].
  Tensor forward(const Tensor& input);

  /// Backward from logit gradients [N, num_classes]; accumulates
  /// parameter gradients and returns the input gradient.
  Tensor backward(const Tensor& grad_logits);

  void zero_grad();

  /// Total number of scalar parameters.
  std::size_t param_count();

  /// Visit every parameter tensor (mutable view), in the same order
  /// collect_grads flattens gradients. Used by saliency proxies that
  /// transform weights in place (e.g. SynFlow's |θ|).
  void for_each_param(const std::function<void(std::span<float>)>& fn);

  /// Flatten parameter gradients into `out` (resized to fit). With
  /// `cells_only`, only parameters inside searched cells contribute:
  /// stem/reduction/head gradients are shared by every candidate cell
  /// and only dilute the NTK's ranking signal (the wide reduction convs
  /// dominate the full parameter vector).
  void collect_grads(std::vector<float>& out, bool cells_only = false);

  /// Concatenated ReLU activation signs of the last forward for sample
  /// `n`, appended to `bits` as 0/1 bytes. With `cells_only` the
  /// pattern covers only ReLUs inside searched cells — the paper's
  /// linear-region count measures *cell* expressivity, so stem /
  /// reduction / head nonlinearities are excluded there (the NASWOT
  /// proxy uses the full pattern instead).
  void collect_relu_pattern(int sample, std::vector<unsigned char>& bits,
                            bool cells_only = false) const;

  const CellNetConfig& config() const { return config_; }

 private:
  void build(const EdgeOps& edge_ops, Rng& rng);

  CellNetConfig config_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<const ReluLayer*> relu_layers_;       // all ReLUs
  std::vector<const ReluLayer*> cell_relu_layers_;  // ReLUs inside cells
  std::vector<Layer*> cell_param_layers_;           // layers inside cells
};

}  // namespace micronas
