#include "src/serve/model_server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <sstream>
#include <stdexcept>

#include "src/obs/trace.hpp"

namespace micronas::serve {

namespace {

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string ServerStats::to_string() const {
  std::ostringstream ss;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%lld requests in %lld batches (mean batch %.2f; accepted %lld, rejected %lld, "
                "dropped %lld), %.1f req/s, latency p50 %.3f ms p90 %.3f ms p99 %.3f ms max "
                "%.3f ms",
                requests, batches, mean_batch, accepted, rejected, dropped, throughput_rps,
                p50_ms, p90_ms, p99_ms, max_ms);
  ss << buf;
  return ss.str();
}

ModelServer::ModelServer(compile::CompiledModel model, ServerOptions options)
    : ModelServer(std::make_shared<const compile::CompiledModel>(std::move(model)), options) {}

ModelServer::ModelServer(std::shared_ptr<const compile::CompiledModel> model,
                         ServerOptions options)
    : model_(std::move(model)), options_(options) {
  if (!model_) throw std::invalid_argument("ModelServer: null model");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  metric_accepted_ = &registry.counter("serve.accepted");
  metric_rejected_ = &registry.counter("serve.rejected");
  metric_dropped_ = &registry.counter("serve.dropped");
  metric_completed_ = &registry.counter("serve.completed");
  metric_batches_ = &registry.counter("serve.batches");
  metric_latency_ms_ = &registry.latency_histogram("serve.latency_ms");
  if (options_.max_batch < 1) throw std::invalid_argument("ModelServer: max_batch must be >= 1");
  if (options_.max_wait_us < 0) {
    throw std::invalid_argument("ModelServer: max_wait_us must be >= 0");
  }
  if (options_.per_slot_fanout) {
    // Legacy path: one planned executor (arena) per batch slot; slot i
    // of a batch always runs on lanes_[i], so concurrent requests are
    // isolated by construction.
    lanes_.reserve(static_cast<std::size_t>(options_.max_batch));
    for (int i = 0; i < options_.max_batch; ++i) {
      // The model's package-built packed weights flow into every lane:
      // the server never repacks, no matter how many executors it runs.
      lanes_.push_back(std::make_unique<rt::Executor>(model_->graph, model_->plan,
                                                      rt::ExecOptions{1, &model_->packed}));
    }
    if (options_.max_batch > 1) pool_ = std::make_unique<ThreadPool>(options_.threads);
  } else {
    // One-invocation path: compile the planned graph at batch capacity
    // max_batch — the arena holds max_batch samples of every value and
    // a coalesced batch is a single run_batch call.
    batched_ = std::make_unique<rt::BatchedExecutor>(
        model_->graph, model_->plan_for_batch(options_.max_batch), options_.max_batch,
        rt::ExecOptions{options_.threads, &model_->packed});
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ModelServer::~ModelServer() { stop(); }

std::future<Response> ModelServer::submit(Request request) {
  Pending pending;
  pending.input = std::move(request.input);
  pending.model_key = std::move(request.model_key);
  pending.typed = true;
  std::future<Response> result = pending.response_promise.get_future();
  // An explicit deadline (even <= 0: already expired) always binds;
  // nullopt defers to the server-wide default.
  const bool has_deadline = request.deadline_us.has_value() || options_.deadline_us > 0;
  enqueue(std::move(pending), has_deadline, request.deadline_us.value_or(options_.deadline_us));
  return result;
}

std::future<Tensor> ModelServer::submit(Tensor input) {
  Pending pending;
  pending.input = std::move(input);
  std::future<Tensor> result = pending.tensor_promise.get_future();
  enqueue(std::move(pending), options_.deadline_us > 0, options_.deadline_us);
  return result;
}

std::future<Tensor> ModelServer::submit(Tensor input, long long deadline_us) {
  Pending pending;
  pending.input = std::move(input);
  std::future<Tensor> result = pending.tensor_promise.get_future();
  enqueue(std::move(pending), true, deadline_us);
  return result;
}

void ModelServer::enqueue(Pending pending, bool has_deadline, long long deadline_us) {
  pending.enqueued = std::chrono::steady_clock::now();
  pending.deadline = has_deadline ? pending.enqueued + std::chrono::microseconds(deadline_us)
                                  : std::chrono::steady_clock::time_point::max();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("ModelServer::submit: server is stopped");
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      ++rejected_;
      metric_rejected_->add();
      throw QueueFullError("ModelServer::submit: queue full (" +
                           std::to_string(options_.max_queue) + " requests pending)");
    }
    ++accepted_;
    metric_accepted_->add();
    if (!saw_first_) {
      saw_first_ = true;
      first_enqueue_ = pending.enqueued;
    }
    queue_.push_back(std::move(pending));
  }
  wake_.notify_all();
}

void ModelServer::stop() {
  // Claim the thread under the lock: of racing stop() calls (e.g. an
  // explicit stop against the destructor) exactly one gets a joinable
  // handle and joins it. Losers must NOT return early — the dispatcher
  // may still be draining queue_ and touching batched_/lanes_/pool_,
  // and the losing caller could be the destructor — so they block on
  // dispatcher_done_, which the winner flags after its join. Every
  // stop() therefore returns only once the queue is drained and the
  // dispatcher has exited.
  std::thread claimed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    claimed = std::move(dispatcher_);
  }
  wake_.notify_all();
  if (claimed.joinable()) {
    claimed.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      dispatcher_done_ = true;
    }
    wake_.notify_all();
  } else {
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [this] { return dispatcher_done_; });
  }
}

void ModelServer::drop_expired_locked(std::vector<Pending>& dropped) {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline <= now) {
      ++dropped_;
      metric_dropped_->add();
      dropped.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void ModelServer::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> dropped;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue

      // Admission control first: requests already past their deadline
      // never enter a batch (and never block one open).
      drop_expired_locked(dropped);
      if (!queue_.empty()) {
        // Hold the batch open until it is full, the oldest request has
        // waited max_wait_us, or the server is stopping.
        const auto deadline =
            queue_.front().enqueued + std::chrono::microseconds(options_.max_wait_us);
        while (!stopping_ && static_cast<int>(queue_.size()) < options_.max_batch &&
               wake_.wait_until(lock, deadline,
                                [this] {
                                  return stopping_ ||
                                         static_cast<int>(queue_.size()) >= options_.max_batch;
                                })) {
        }
        // ...and requests that expired during the hold are dropped,
        // not served late.
        drop_expired_locked(dropped);

        const std::size_t take =
            std::min(queue_.size(), static_cast<std::size_t>(options_.max_batch));
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
    }
    // Promises resolve outside the lock; dropped_ was already counted,
    // so a client that observed the error also observes the counter.
    for (Pending& req : dropped) {
      req.fail(std::make_exception_ptr(DeadlineExpiredError(
          "ModelServer: request deadline expired before a batch picked it up")));
    }
    if (!batch.empty()) run_batch(batch);
  }
}

void ModelServer::run_batch(std::vector<Pending>& batch) {
  obs::Span span("serve.batch");
  span.tag("requests", static_cast<long long>(batch.size()));
  // Dispatch timestamp: the queue_ms / total_ms split in Response.
  const auto dispatched = std::chrono::steady_clock::now();
  std::vector<Tensor> results(batch.size());
  std::vector<std::exception_ptr> errors(batch.size());
  if (batched_) {
    // ONE executor invocation for the whole coalesced batch. Requests
    // with a bad input shape fail individually (their future rethrows)
    // without poisoning the batch for everyone else.
    const ir::Node& in_node = model_->graph.node(model_->graph.input());
    std::vector<const Tensor*> good;
    std::vector<std::size_t> slot;  // good index -> batch index
    good.reserve(batch.size());
    slot.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].input.shape() == in_node.type.shape) {
        good.push_back(&batch[i].input);
        slot.push_back(i);
      } else {
        errors[i] = std::make_exception_ptr(std::invalid_argument(
            "ModelServer: input shape " + batch[i].input.shape().to_string() +
            " != model input " + in_node.type.shape.to_string()));
      }
    }
    if (!good.empty()) {
      try {
        std::vector<Tensor> logits =
            batched_->run_batch(std::span<const Tensor* const>(good.data(), good.size()));
        for (std::size_t g = 0; g < logits.size(); ++g) {
          results[slot[g]] = std::move(logits[g]);
        }
      } catch (...) {
        for (std::size_t g = 0; g < slot.size(); ++g) {
          errors[slot[g]] = std::current_exception();
        }
      }
    }
  } else {
    const auto run_one = [this, &batch, &results, &errors](std::size_t i) {
      try {
        results[i] = lanes_[i]->run(batch[i].input);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    };
    if (pool_ && batch.size() > 1) {
      pool_->parallel_for(batch.size(), run_one);
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) run_one(i);
    }
  }

  // Telemetry strictly before the promises: a client that observed its
  // future ready must also observe its request in stats().
  const auto done = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    metric_batches_->add();
    completed_ += static_cast<long long>(batch.size());
    metric_completed_->add(batch.size());
    last_done_ = done;
    for (const Pending& req : batch) {
      const double ms = std::chrono::duration<double, std::milli>(done - req.enqueued).count();
      metric_latency_ms_->observe(ms);
      if (latency_ms_.size() < kLatencySampleCap) {
        latency_ms_.push_back(ms);
      } else {
        latency_ms_[latency_next_] = ms;
        latency_next_ = (latency_next_ + 1) % kLatencySampleCap;
      }
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (errors[i]) {
      batch[i].fail(errors[i]);
    } else if (batch[i].typed) {
      Response resp;
      resp.logits = std::move(results[i]);
      resp.model_key = std::move(batch[i].model_key);
      resp.queue_ms =
          std::chrono::duration<double, std::milli>(dispatched - batch[i].enqueued).count();
      resp.total_ms = std::chrono::duration<double, std::milli>(done - batch[i].enqueued).count();
      resp.batch_size = static_cast<int>(batch.size());
      batch[i].response_promise.set_value(std::move(resp));
    } else {
      batch[i].tensor_promise.set_value(std::move(results[i]));
    }
  }
}

ServerStats ModelServer::stats() const {
  std::vector<double> sorted;
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = latency_ms_;
    s.requests = completed_;
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.dropped = dropped_;
    s.batches = batches_;
    if (completed_ > 0) {
      const double span =
          std::chrono::duration<double>(last_done_ - first_enqueue_).count();
      s.throughput_rps = span > 0.0 ? static_cast<double>(completed_) / span : 0.0;
    }
  }
  std::sort(sorted.begin(), sorted.end());
  s.mean_batch = s.batches > 0 ? static_cast<double>(s.requests) / static_cast<double>(s.batches)
                               : 0.0;
  s.p50_ms = percentile(sorted, 0.50);
  s.p90_ms = percentile(sorted, 0.90);
  s.p99_ms = percentile(sorted, 0.99);
  s.max_ms = sorted.empty() ? 0.0 : sorted.back();
  return s;
}

}  // namespace micronas::serve
