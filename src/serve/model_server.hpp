// Batching inference server over the deterministic int8 runtime — the
// deploy-once/serve-many half of the ROADMAP's "heavy traffic" North
// star, fed by src/serialize/'s persistent model packages.
//
// A ModelServer owns one loaded CompiledModel, a request queue and a
// dispatcher thread. Clients submit single inputs and get a future;
// the dispatcher coalesces up to `max_batch` queued requests (waiting
// at most `max_wait_us` after the first one arrives) into one batched
// invocation that fans the requests out over the shared ThreadPool.
// Each of the `max_batch` batch slots owns a pre-built planned
// Executor with its own arena, so concurrent requests never share
// mutable state and every request's logits are bit-identical to a
// serial Executor run of the same input — batching is a pure
// throughput optimization, never a numerics change (asserted by
// tests/test_serve.cpp).
//
// The server keeps a bounded ring of recent per-request latency
// samples and exact batch-size counters; stats() aggregates them into
// the throughput/percentile summary examples/serve_bench and
// bench/suites/serve.cpp report.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/compile/compiler.hpp"
#include "src/rt/runtime.hpp"

namespace micronas::serve {

struct ServerOptions {
  /// Most requests coalesced into one batched invocation (also the
  /// number of pre-built executors, i.e. resident arenas).
  int max_batch = 8;
  /// How long the dispatcher holds an underfull batch open after its
  /// first request arrived before running it anyway.
  long long max_wait_us = 200;
  /// Worker threads the batch fans out over (1 = serial, 0 = one per
  /// hardware thread). Logits never depend on this.
  int threads = 0;
};

struct ServerStats {
  long long requests = 0;       // completed requests
  long long batches = 0;        // batched executor invocations
  double mean_batch = 0.0;      // requests / batches
  double p50_ms = 0.0;          // request latency: enqueue -> logits ready,
  double p90_ms = 0.0;          // over the most recent samples (bounded ring)
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double throughput_rps = 0.0;  // completed / (last completion - first enqueue)

  std::string to_string() const;
};

class ModelServer {
 public:
  /// Takes ownership of the model (typically fresh from
  /// serialize::load_model) and starts the dispatcher.
  ModelServer(compile::CompiledModel model, ServerOptions options = {});
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Enqueue one input (must match the model's input shape). The
  /// future yields the logits, or rethrows the executor's error.
  std::future<Tensor> submit(Tensor input);

  /// Blocking convenience wrapper around submit().
  Tensor infer(const Tensor& input) { return submit(input).get(); }

  /// Drain the queue, finish in-flight batches and join the
  /// dispatcher. Idempotent and safe against concurrent calls: every
  /// call (not just the one that wins the join) blocks until the
  /// dispatcher has exited, so the queue-drained postcondition holds
  /// for all callers and the destructor can never destroy state the
  /// dispatcher still uses. submit() after stop() throws
  /// std::runtime_error.
  void stop();

  ServerStats stats() const;

  const compile::CompiledModel& model() const { return model_; }

 private:
  struct Request {
    Tensor input;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void dispatcher_loop();
  void run_batch(std::vector<Request>& batch);

  compile::CompiledModel model_;
  ServerOptions options_;
  std::unique_ptr<ThreadPool> pool_;                     // batch fan-out
  std::vector<std::unique_ptr<rt::Executor>> lanes_;     // one per batch slot

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool dispatcher_done_ = false;  // set by the stop() that joined

  // Telemetry (guarded by mutex_). Latency percentiles are computed
  // over a bounded ring of the most recent samples so a long-running
  // server's memory and stats() cost stay O(1) in request count; the
  // request/batch/throughput counters are exact.
  static constexpr std::size_t kLatencySampleCap = 16384;
  std::vector<double> latency_ms_;  // ring once kLatencySampleCap is reached
  std::size_t latency_next_ = 0;    // ring write cursor
  long long batches_ = 0;
  long long completed_ = 0;
  bool saw_first_ = false;
  std::chrono::steady_clock::time_point first_enqueue_;
  std::chrono::steady_clock::time_point last_done_;

  std::thread dispatcher_;
};

}  // namespace micronas::serve
