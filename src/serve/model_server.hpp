// Batching inference server over the deterministic int8 runtime — the
// deploy-once/serve-many half of the ROADMAP's "heavy traffic" North
// star, fed by src/serialize/'s persistent model packages.
//
// A ModelServer serves one immutable CompiledModel (shared_ptr —
// typically a registry entry aliased to its mapped package) through a
// request queue and a dispatcher thread. Clients submit a typed
// serve::Request and get a std::future<serve::Response> (logits +
// per-request timing; the legacy Tensor-future overloads remain as
// deprecated wrappers — see api.hpp for the taxonomy rationale);
// the dispatcher coalesces up to `max_batch` queued requests (waiting
// at most `max_wait_us` after the first one arrived) and dispatches
// the whole batch as ONE rt::BatchedExecutor::run_batch invocation —
// the graph is compiled at batch capacity `max_batch`, so a coalesced
// batch widens the int8-GEMM M dimension instead of fanning out one
// Executor per request. Every request's logits are bit-identical to a
// serial Executor run of the same input — batching is a pure
// throughput optimization, never a numerics change (asserted by
// tests/test_serve.cpp and tests/test_batched_executor.cpp). The
// legacy per-slot fan-out (one pre-built Executor per batch slot, run
// over the shared ThreadPool) stays available behind
// ServerOptions::per_slot_fanout so the one-invocation speedup remains
// measurable (bench/suites/serve.cpp `batched_one_invocation`).
//
// Admission control bounds the server under overload:
//
//   * a bounded queue (`max_queue`): submit() on a full queue throws
//     QueueFullError synchronously — offered load past capacity is
//     turned away at the door, not buffered without bound;
//   * per-request deadlines (`deadline_us`, or the submit() overload):
//     a request still queued when its deadline passes is dropped by
//     the dispatcher and its future rethrows DeadlineExpiredError;
//   * exact accepted/rejected/dropped counters in ServerStats — every
//     submit() call ends in exactly one of rejected (throw), dropped
//     (deadline error) or requests (logits delivered), so the
//     counters balance offered load (asserted by
//     tests/test_serve_overload.cpp).
//
// The server keeps a bounded ring of recent per-request latency
// samples and exact batch-size counters; stats() aggregates them into
// the throughput/percentile summary examples/serve_bench and
// bench/suites/serve.cpp report.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/compile/compiler.hpp"
#include "src/obs/metrics.hpp"
#include "src/rt/runtime.hpp"
#include "src/serve/api.hpp"

namespace micronas::serve {

struct ServerOptions {
  /// Most requests coalesced into one batched executor invocation
  /// (the BatchedExecutor's compiled batch capacity — also its arena
  /// scale; or, under per_slot_fanout, the number of per-slot arenas).
  int max_batch = 8;
  /// How long the dispatcher holds an underfull batch open after its
  /// first request arrived before running it anyway.
  long long max_wait_us = 200;
  /// Worker threads for the batched kernels' channel/sample partition
  /// (1 = serial, 0 = one per hardware thread). Logits never depend on
  /// this.
  int threads = 0;
  /// Bound on queued (admitted, not yet batched) requests; submit()
  /// past it throws QueueFullError. 0 = unbounded.
  std::size_t max_queue = 1024;
  /// Default per-request deadline, measured from submit(); <= 0 means
  /// none. The submit() overload sets a per-request value.
  long long deadline_us = 0;
  /// Legacy batching mode: fan each coalesced batch out over one
  /// pre-built Executor per slot instead of one BatchedExecutor
  /// invocation. Kept benchable so the one-invocation speedup claim
  /// stays measurable; numerics are identical either way.
  bool per_slot_fanout = false;
};

struct ServerStats {
  long long requests = 0;       // completed: future resolved by a batch
                                // (logits, or a per-request executor error)
  long long accepted = 0;       // admitted by submit() (got a future)
  long long rejected = 0;       // refused by submit() (queue full)
  long long dropped = 0;        // deadline expired while queued
  long long batches = 0;        // batched executor invocations
  double mean_batch = 0.0;      // requests / batches
  double p50_ms = 0.0;          // request latency: enqueue -> logits ready,
  double p90_ms = 0.0;          // over the most recent samples (bounded ring)
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double throughput_rps = 0.0;  // completed / (last completion - first enqueue)

  std::string to_string() const;
};

class ModelServer {
 public:
  /// Shares an immutable model (a registry entry, or a mapped
  /// package's aliased handle — the shared_ptr is what keeps a
  /// serialize::MappedPackage's mapping alive for as long as this
  /// server might touch its weights) and starts the dispatcher.
  ModelServer(std::shared_ptr<const compile::CompiledModel> model, ServerOptions options = {});

  /// Takes ownership of a model by value (typically fresh from
  /// serialize::load_model or compile_genotype) and starts the
  /// dispatcher.
  ModelServer(compile::CompiledModel model, ServerOptions options = {});

  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// The typed API: enqueue one Request (input must match the model's
  /// input shape). The future yields a Response (logits + per-request
  /// timing), or rethrows the executor's error or
  /// DeadlineExpiredError. Throws QueueFullError when the bounded
  /// queue is full and std::runtime_error after stop().
  /// Request::model_key is echoed into the Response; a single-model
  /// server does not route on it (MultiModelServer does).
  std::future<Response> submit(Request request);

  /// Deprecated: legacy overload, equivalent to
  /// submit(Request{input, nullopt, ""}) with the Response reduced to
  /// its logits. Prefer the typed submit(Request).
  std::future<Tensor> submit(Tensor input);

  /// Deprecated: legacy overload, equivalent to submit(Request{input,
  /// deadline_us, ""}) with the Response reduced to its logits (zero
  /// or negative deadlines are already expired — a guaranteed drop,
  /// which tests use for deterministic drop coverage). Prefer the
  /// typed submit(Request).
  std::future<Tensor> submit(Tensor input, long long deadline_us);

  /// Blocking convenience wrapper around submit().
  Tensor infer(const Tensor& input) { return submit(input).get(); }

  /// Drain the queue, finish in-flight batches and join the
  /// dispatcher; queued requests whose deadline has passed are dropped
  /// (DeadlineExpiredError), everything else completes. Idempotent and
  /// safe against concurrent calls: every call (not just the one that
  /// wins the join) blocks until the dispatcher has exited, so the
  /// queue-drained postcondition holds for all callers and the
  /// destructor can never destroy state the dispatcher still uses.
  /// submit() after stop() throws std::runtime_error.
  void stop();

  ServerStats stats() const;

  const compile::CompiledModel& model() const { return *model_; }
  /// The shared handle itself — what a router passes between lanes
  /// without re-loading (keeps any backing mapping alive with it).
  const std::shared_ptr<const compile::CompiledModel>& model_ptr() const { return model_; }

 private:
  /// A queued request: the union of both submit surfaces. Exactly one
  /// promise is live, per `typed`; resolve()/fail() pick it.
  struct Pending {
    Tensor input;
    std::string model_key;
    bool typed = false;                   // which promise to resolve
    std::promise<Response> response_promise;
    std::promise<Tensor> tensor_promise;
    std::chrono::steady_clock::time_point enqueued;
    // time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline;

    void fail(std::exception_ptr error) {
      if (typed) {
        response_promise.set_exception(std::move(error));
      } else {
        tensor_promise.set_exception(std::move(error));
      }
    }
  };

  /// Admission control + enqueue, shared by every submit surface.
  void enqueue(Pending pending, bool has_deadline, long long deadline_us);
  void dispatcher_loop();
  void run_batch(std::vector<Pending>& batch);
  /// Move deadline-expired requests out of queue_ into `dropped`,
  /// bumping dropped_. Caller must hold mutex_ and resolve the
  /// promises after unlocking.
  void drop_expired_locked(std::vector<Pending>& dropped);

  std::shared_ptr<const compile::CompiledModel> model_;
  ServerOptions options_;
  /// One-invocation path: the graph compiled at batch capacity
  /// max_batch (arena planned via CompiledModel::plan_for_batch).
  std::unique_ptr<rt::BatchedExecutor> batched_;
  /// Legacy fan-out path (per_slot_fanout): slot i of a batch always
  /// runs on lanes_[i], isolated by construction.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<rt::Executor>> lanes_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool dispatcher_done_ = false;  // set by the stop() that joined

  // Telemetry (guarded by mutex_). Latency percentiles are computed
  // over a bounded ring of the most recent samples so a long-running
  // server's memory and stats() cost stay O(1) in request count; the
  // request/batch/admission counters are exact.
  static constexpr std::size_t kLatencySampleCap = 16384;
  std::vector<double> latency_ms_;  // ring once kLatencySampleCap is reached
  std::size_t latency_next_ = 0;    // ring write cursor
  long long batches_ = 0;
  long long completed_ = 0;
  long long accepted_ = 0;
  long long rejected_ = 0;
  long long dropped_ = 0;
  bool saw_first_ = false;
  std::chrono::steady_clock::time_point first_enqueue_;
  std::chrono::steady_clock::time_point last_done_;

  // Process-wide metrics mirrors of the exact counters above, updated
  // at the same increment sites so serve_bench / pareto_sweep print
  // admission + latency telemetry through the one registry code path
  // (handles resolved once in the ctor; updates are lock-free).
  obs::Counter* metric_accepted_ = nullptr;
  obs::Counter* metric_rejected_ = nullptr;
  obs::Counter* metric_dropped_ = nullptr;
  obs::Counter* metric_completed_ = nullptr;
  obs::Counter* metric_batches_ = nullptr;
  obs::Histogram* metric_latency_ms_ = nullptr;

  std::thread dispatcher_;
};

}  // namespace micronas::serve
