// Registry-routed serving: many models, one process, one API.
//
// A MultiModelServer composes the pieces this directory already has:
// a ModelRegistry (mmap-backed, deduped, zero-copy model handles) and
// one ModelServer lane per resident model (each lane its own
// BatchedExecutor, bounded queue, deadlines and admission ledger —
// exactly the single-model behavior, per model). Requests carry the
// routing axis themselves (serve::Request::model_key); submit() looks
// the lane up and forwards, so per-model isolation is structural: one
// model's overload rejects on ITS queue without touching another's.
//
// Lane lifetime rides the registry's ref-counted model handles: an
// unload() stops the lane (draining its queue per ModelServer::stop)
// and drops the registry entry, but the mapping itself lives until the
// last executor/handle releases — see docs/ARCHITECTURE.md "Model
// registry & zero-copy loading".
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/serve/model_registry.hpp"
#include "src/serve/model_server.hpp"

namespace micronas::serve {

class MultiModelServer {
 public:
  /// `options` apply to every lane (per-lane tuning would be another
  /// Request-style axis; today the fleet shares one shape).
  explicit MultiModelServer(ServerOptions options = {});
  ~MultiModelServer();

  MultiModelServer(const MultiModelServer&) = delete;
  MultiModelServer& operator=(const MultiModelServer&) = delete;

  /// Load the package at `path` through the registry (mmap + validate
  /// + dedupe) and open a serving lane for it if one isn't already
  /// running. Returns the model key requests should carry. Safe to
  /// call for an already-served package: the registry dedupes and the
  /// existing lane is reused.
  std::string load(const std::string& path);

  /// Serve an already-built model under an explicit key (tests, or
  /// models compiled in-process). Throws std::invalid_argument when
  /// the key is empty or already serving.
  void add_model(const std::string& key, std::shared_ptr<const compile::CompiledModel> model);

  /// Route on request.model_key and forward to that model's lane.
  /// Throws UnknownModelError for a key without a lane, and the lane's
  /// admission errors (QueueFullError, stopped-server) synchronously —
  /// all deriving from ServeError except the latter.
  std::future<Response> submit(Request request);

  /// Blocking convenience wrapper around submit().
  Response infer(Request request) { return submit(std::move(request)).get(); }

  /// Stop `key`'s lane (drains its queue), then drop the registry
  /// entry. Outstanding model handles keep the mapping alive. Throws
  /// UnknownModelError when no lane serves `key`.
  void unload(const std::string& key);

  /// Stop every lane (each drains per ModelServer::stop). Idempotent;
  /// submit() afterwards throws per-lane. Lanes and registry entries
  /// stay queryable for stats.
  void stop();

  /// Per-model admission/latency ledger; throws UnknownModelError.
  ServerStats stats(const std::string& key) const;

  /// Keys with an open lane, sorted.
  std::vector<std::string> keys() const;

  /// The shared registry (metrics, direct get()/contains() checks).
  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }

 private:
  /// Snapshot the lane handle under the lock; callers invoke it
  /// outside, so a concurrent unload() can never free a server
  /// mid-call (shared_ptr pins it; stop() is idempotent and safe).
  std::shared_ptr<ModelServer> lane(const std::string& key) const;

  ServerOptions options_;
  ModelRegistry registry_;
  mutable std::mutex mutex_;  // guards lanes_ (table shape, not the servers)
  std::map<std::string, std::shared_ptr<ModelServer>> lanes_;
};

}  // namespace micronas::serve
