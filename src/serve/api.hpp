// The typed serving API surface: one request/response shape and one
// error taxonomy, shared by ModelServer (single model) and
// MultiModelServer (registry-routed).
//
// History: submit() grew by overload — submit(x), then
// submit(x, deadline_us) — and the next axis (which model?) would have
// doubled the set again. serve::Request names every axis instead, so
// new ones are an aggregate field, not an overload; serve::Response
// carries the logits plus the per-request timing the old Tensor future
// silently discarded. The legacy overloads survive as thin deprecated
// wrappers over the typed call (see model_server.hpp) so existing
// clients and tests compile unchanged.
//
// Errors form one taxonomy rooted at ServeError (itself a
// std::runtime_error, so pre-taxonomy clients that caught
// runtime_error still work): clients that want "anything the serving
// layer refused" catch ServeError; the concrete types say why.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "src/tensor/tensor.hpp"

namespace micronas::serve {

/// Root of the serving error taxonomy. Every refusal the serving layer
/// itself originates (admission, deadlines, routing) derives from this
/// one type; executor errors (bad input shape, runtime failures)
/// propagate unwrapped, because they are the model's verdict, not the
/// server's.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// submit() refused the request because the bounded queue
/// (ServerOptions::max_queue) is at capacity. Thrown synchronously —
/// the caller never got a future, and the request counts as rejected.
class QueueFullError : public ServeError {
 public:
  using ServeError::ServeError;
};

/// The request's deadline expired before the dispatcher placed it in a
/// batch. The request's future rethrows this, and the request counts
/// as dropped.
class DeadlineExpiredError : public ServeError {
 public:
  using ServeError::ServeError;
};

/// The request named a model key the registry/router has not loaded
/// (or has evicted). Thrown synchronously by MultiModelServer::submit
/// and ModelRegistry::get.
class UnknownModelError : public ServeError {
 public:
  using ServeError::ServeError;
};

/// One inference request, every axis named. Extend by adding fields —
/// never by adding submit() overloads.
struct Request {
  Tensor input;
  /// Deadline measured from submit(), in microseconds. nullopt defers
  /// to ServerOptions::deadline_us; values <= 0 are already expired (a
  /// guaranteed drop — tests use this for deterministic coverage).
  std::optional<long long> deadline_us;
  /// Which model serves this request. Ignored by a single-model
  /// ModelServer; required routing key for MultiModelServer.
  std::string model_key;
};

/// What the future resolves to: logits plus the per-request timing the
/// server already measured for its own telemetry.
struct Response {
  Tensor logits;
  std::string model_key;      // echo of Request::model_key
  double queue_ms = 0.0;      // enqueue -> batch dispatch
  double total_ms = 0.0;      // enqueue -> logits ready
  int batch_size = 0;         // how many requests shared the invocation
};

}  // namespace micronas::serve
