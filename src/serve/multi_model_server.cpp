#include "src/serve/multi_model_server.hpp"

#include <stdexcept>
#include <utility>

namespace micronas::serve {

MultiModelServer::MultiModelServer(ServerOptions options) : options_(options) {}

MultiModelServer::~MultiModelServer() { stop(); }

std::string MultiModelServer::load(const std::string& path) {
  // Registry first: mmap + validate + dedupe. Throws on corruption
  // before any lane state changes.
  const ModelRegistry::Entry entry = registry_.load(path);
  std::lock_guard<std::mutex> lock(mutex_);
  if (lanes_.find(entry.key) == lanes_.end()) {
    // The lane's shared model handle is aliased to the mapped package:
    // while this server (or any in-flight batch) lives, so do the
    // bytes its weights point into.
    lanes_.emplace(entry.key, std::make_shared<ModelServer>(entry.model, options_));
  }
  return entry.key;
}

void MultiModelServer::add_model(const std::string& key,
                                 std::shared_ptr<const compile::CompiledModel> model) {
  if (key.empty()) throw std::invalid_argument("MultiModelServer: empty model key");
  std::lock_guard<std::mutex> lock(mutex_);
  if (lanes_.find(key) != lanes_.end()) {
    throw std::invalid_argument("MultiModelServer: key '" + key + "' already serving");
  }
  lanes_.emplace(key, std::make_shared<ModelServer>(std::move(model), options_));
}

std::shared_ptr<ModelServer> MultiModelServer::lane(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = lanes_.find(key);
  if (it == lanes_.end()) {
    throw UnknownModelError("MultiModelServer: no lane for model key '" + key + "'");
  }
  return it->second;
}

std::future<Response> MultiModelServer::submit(Request request) {
  std::shared_ptr<ModelServer> server = lane(request.model_key);
  return server->submit(std::move(request));
}

void MultiModelServer::unload(const std::string& key) {
  std::shared_ptr<ModelServer> server;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = lanes_.find(key);
    if (it == lanes_.end()) {
      throw UnknownModelError("MultiModelServer: no lane for model key '" + key + "'");
    }
    server = std::move(it->second);
    lanes_.erase(it);
  }
  // Drain outside the lock: other models keep serving while this lane
  // finishes its queue.
  server->stop();
  registry_.evict(key);
}

void MultiModelServer::stop() {
  std::vector<std::shared_ptr<ModelServer>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.reserve(lanes_.size());
    for (const auto& [key, server] : lanes_) snapshot.push_back(server);
  }
  for (const std::shared_ptr<ModelServer>& server : snapshot) server->stop();
}

ServerStats MultiModelServer::stats(const std::string& key) const { return lane(key)->stats(); }

std::vector<std::string> MultiModelServer::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(lanes_.size());
  for (const auto& [key, server] : lanes_) out.push_back(key);
  return out;
}

}  // namespace micronas::serve
