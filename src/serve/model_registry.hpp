// Multi-model package registry: map once, validate always, serve many.
//
// A ModelRegistry turns .mnpkg paths into immutable, shareable model
// handles. Each load mmaps the package read-only
// (serialize::MappedPackage — zero-copy weights), runs the full
// fail-closed validation, then dedupes on the package identity
// (arch + whole-file fnv1a64): a second load of byte-identical content
// discards its transient mapping and returns the FIRST load's entry,
// so however many callers hold the model, there is exactly one mapping
// and one CompiledModel in the process. The model handle is a
// shared_ptr aliased to the package, so holding the model is holding
// the mapping — an Executor built over a registry model can never
// outlive the bytes its weights point into.
//
// Eviction is ref-counted by construction: evict(key) only drops the
// registry's own reference. Outstanding handles (a ModelServer lane
// mid-drain, a client holding an Entry) keep the mapping alive until
// the last one releases; the munmap happens wherever that last release
// is. A key evicted and re-loaded maps the file afresh.
//
// Validation is never skipped for dedup: a load() that hits still
// mapped + validated its file first, so a corrupted copy of a resident
// package is rejected, not silently aliased to the good one.
//
// Thread safety: every public method is safe to call concurrently
// (one mutex over the table; MappedPackage/CompiledModel are immutable
// after construction). Metrics: `serve.models_loaded` counts fresh
// loads, `serve.registry_hits` counts dedup hits,
// `serve.models_resident` gauges the current table size.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/serialize/serialize.hpp"
#include "src/serve/api.hpp"

namespace micronas::serve {

class ModelRegistry {
 public:
  /// One resident model: the registry key, the mapped package (lifetime
  /// anchor) and the model handle aliased to it. Copying an Entry
  /// copies shared_ptrs — cheap, and each copy pins the mapping.
  struct Entry {
    std::string key;
    std::shared_ptr<const serialize::MappedPackage> package;
    std::shared_ptr<const compile::CompiledModel> model;
  };

  ModelRegistry();

  /// Map + validate the package at `path`; dedupe against resident
  /// entries by identity. Returns the (new or shared) entry. Throws
  /// serialize::SerializeError on a corrupt/truncated package — a file
  /// that fails validation never touches the table.
  Entry load(const std::string& path);

  /// The resident entry for `key`; throws UnknownModelError when the
  /// key was never loaded or has been evicted.
  Entry get(const std::string& key) const;

  bool contains(const std::string& key) const;

  /// Drop the registry's reference to `key`. Returns false when the
  /// key is not resident. Outstanding Entry/model handles remain valid
  /// — the mapping unmaps when the last of them releases.
  bool evict(const std::string& key);

  /// Resident keys, sorted (the table is an ordered map).
  std::vector<std::string> keys() const;
  std::size_t size() const;

  /// The identity a package dedupes on: "<arch>@<16-hex fnv1a64>" of
  /// the validated file content.
  static std::string key_of(const serialize::MappedPackage& package);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;

  obs::Counter* metric_loaded_ = nullptr;  // fresh loads (mapped + validated)
  obs::Counter* metric_hits_ = nullptr;    // dedup hits (shared an entry)
  obs::Gauge* metric_resident_ = nullptr;  // current table size
};

}  // namespace micronas::serve
