#include "src/serve/model_registry.hpp"

#include <cstdio>

namespace micronas::serve {

ModelRegistry::ModelRegistry() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  metric_loaded_ = &registry.counter("serve.models_loaded");
  metric_hits_ = &registry.counter("serve.registry_hits");
  metric_resident_ = &registry.gauge("serve.models_resident");
}

std::string ModelRegistry::key_of(const serialize::MappedPackage& package) {
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(package.content_checksum()));
  return package.arch() + "@" + hex;
}

ModelRegistry::Entry ModelRegistry::load(const std::string& path) {
  // Map + validate OUTSIDE the lock: checksumming a large package must
  // not serialize every other registry call behind it. A corrupt file
  // throws here and never reaches the table.
  std::shared_ptr<const serialize::MappedPackage> package = serialize::MappedPackage::map(path);
  const std::string key = key_of(*package);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Dedup hit: this load's transient mapping is dropped (package
    // releases on return) and the caller shares the FIRST load's
    // mapping + model — one copy of the weights, however often the
    // file is loaded.
    metric_hits_->add();
    return it->second;
  }
  Entry entry;
  entry.key = key;
  entry.package = package;
  // Aliasing ctor: the model handle shares the package's control
  // block, so `model` alone keeps the mapping (and the borrowed
  // weights inside it) alive.
  entry.model = std::shared_ptr<const compile::CompiledModel>(package, &package->model());
  it = entries_.emplace(key, std::move(entry)).first;
  metric_loaded_->add();
  metric_resident_->set(static_cast<double>(entries_.size()));
  return it->second;
}

ModelRegistry::Entry ModelRegistry::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw UnknownModelError("ModelRegistry: unknown model key '" + key + "'");
  }
  return it->second;
}

bool ModelRegistry::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

bool ModelRegistry::evict(const std::string& key) {
  Entry evicted;  // destroyed after the lock releases
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  evicted = std::move(it->second);
  entries_.erase(it);
  metric_resident_->set(static_cast<double>(entries_.size()));
  return true;
}

std::vector<std::string> ModelRegistry::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace micronas::serve
