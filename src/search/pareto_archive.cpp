#include "src/search/pareto_archive.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/common/csv.hpp"
#include "src/nb201/canonical.hpp"

namespace micronas {

namespace {

/// Shortest round-trippable decimal form: archive exports must be
/// byte-comparable across runs, so payload doubles print at full
/// precision.
std::string fmt_full(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool lex_less(std::span<const double> a, std::span<const double> b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

bool pareto_dominates(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pareto_dominates: objective-vector length mismatch");
  }
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

ParetoArchive::ParetoArchive(std::vector<std::string> objective_names)
    : objective_names_(std::move(objective_names)) {
  if (objective_names_.empty()) {
    throw std::invalid_argument("ParetoArchive: at least one objective required");
  }
}

bool ParetoArchive::insert(ParetoEntry entry) {
  if (objective_names_.empty()) {
    throw std::logic_error("ParetoArchive: default-constructed archive cannot insert");
  }
  if (entry.objectives.size() != objective_names_.size()) {
    throw std::invalid_argument("ParetoArchive::insert: wrong objective-vector length");
  }
  Keyed keyed;
  keyed.canonical_index = nb201::canonicalize(entry.genotype).index();
  keyed.raw_index = entry.genotype.index();
  keyed.entry = std::move(entry);

  const auto key = [](const Keyed& k) { return std::make_pair(k.canonical_index, k.raw_index); };

  // Reject if dominated, or if an objective-tie incumbent has a
  // smaller-or-equal key (the invariant allows at most one tie).
  for (const Keyed& e : entries_) {
    if (pareto_dominates(e.entry.objectives, keyed.entry.objectives)) return false;
    if (e.entry.objectives == keyed.entry.objectives && key(e) <= key(keyed)) return false;
  }
  // Retained: evict everything it dominates or out-ties.
  std::erase_if(entries_, [&](const Keyed& e) {
    return pareto_dominates(keyed.entry.objectives, e.entry.objectives) ||
           e.entry.objectives == keyed.entry.objectives;
  });
  entries_.push_back(std::move(keyed));
  return true;
}

std::vector<ParetoEntry> ParetoArchive::snapshot() const {
  std::vector<const Keyed*> order;
  order.reserve(entries_.size());
  for (const Keyed& e : entries_) order.push_back(&e);
  std::sort(order.begin(), order.end(), [](const Keyed* a, const Keyed* b) {
    if (a->entry.objectives != b->entry.objectives) {
      return lex_less(a->entry.objectives, b->entry.objectives);
    }
    if (a->canonical_index != b->canonical_index) return a->canonical_index < b->canonical_index;
    return a->raw_index < b->raw_index;
  });
  std::vector<ParetoEntry> out;
  out.reserve(order.size());
  for (const Keyed* k : order) out.push_back(k->entry);
  return out;
}

double ParetoArchive::hypervolume(std::span<const double> reference) const {
  std::vector<std::vector<double>> pts;
  pts.reserve(entries_.size());
  for (const Keyed& e : entries_) pts.push_back(e.entry.objectives);
  return micronas::hypervolume(pts, reference);
}

std::string ParetoArchive::to_csv() const {
  std::vector<std::string> header = {"genotype", "index", "canonical_index"};
  // "obj:" disambiguates objectives from the same-named payload
  // columns (e.g. latency_ms appears in both roles).
  for (const std::string& n : objective_names_) header.push_back("obj:" + n);
  header.insert(header.end(), {"accuracy", "ntk_kappa", "linear_regions", "flops_m", "params_m",
                               "latency_ms", "peak_sram_kb"});
  CsvWriter csv(std::move(header));
  for (const ParetoEntry& e : snapshot()) {
    std::vector<std::string> row = {e.genotype.to_string(), std::to_string(e.genotype.index()),
                                    std::to_string(nb201::canonicalize(e.genotype).index())};
    for (double o : e.objectives) row.push_back(fmt_full(o));
    const IndicatorValues& v = e.indicators;
    for (double p : {e.accuracy, v.ntk_condition, v.linear_regions, v.flops_m, v.params_m,
                     v.latency_ms, v.peak_sram_kb}) {
      row.push_back(fmt_full(p));
    }
    csv.add_row(std::move(row));
  }
  return csv.to_string();
}

void ParetoArchive::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ParetoArchive::save_csv: cannot open " + path);
  out << to_csv();
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    std::span<const std::vector<double>> objectives) {
  const std::size_t n = objectives.size();
  std::vector<int> dominated_by(n, 0);             // # points dominating i
  std::vector<std::vector<std::size_t>> dominates_set(n);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (pareto_dominates(objectives[i], objectives[j])) {
        dominates_set[i].push_back(j);
        ++dominated_by[j];
      } else if (pareto_dominates(objectives[j], objectives[i])) {
        dominates_set[j].push_back(i);
        ++dominated_by[i];
      }
    }
  }

  std::vector<std::vector<std::size_t>> fronts;
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (dominated_by[i] == 0) current.push_back(i);
  }
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominates_set[i]) {
        if (--dominated_by[j] == 0) next.push_back(j);
      }
    }
    std::sort(next.begin(), next.end());  // deterministic within-front order
    fronts.push_back(std::move(current));
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> crowding_distances(std::span<const std::vector<double>> objectives,
                                       std::span<const std::size_t> front) {
  const std::size_t n = front.size();
  std::vector<double> dist(n, 0.0);
  if (n == 0) return dist;
  const std::size_t m = objectives[front[0]].size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> order(n);
  for (std::size_t obj = 0; obj < m; ++obj) {
    std::iota(order.begin(), order.end(), 0);
    // Stable: ties keep front order, so distances are deterministic.
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return objectives[front[a]][obj] < objectives[front[b]][obj];
    });
    const double lo = objectives[front[order.front()]][obj];
    const double hi = objectives[front[order.back()]][obj];
    dist[order.front()] = kInf;
    dist[order.back()] = kInf;
    if (hi <= lo) continue;  // degenerate objective: no spread to reward
    for (std::size_t k = 1; k + 1 < n; ++k) {
      if (dist[order[k]] == kInf) continue;
      dist[order[k]] += (objectives[front[order[k + 1]]][obj] -
                         objectives[front[order[k - 1]]][obj]) /
                        (hi - lo);
    }
  }
  return dist;
}

namespace {

/// Recursive hypervolume by objective slicing (exact, all-minimize).
/// Callers guarantee every point strictly dominates `ref`.
double hv_recursive(std::vector<std::vector<double>> pts, std::span<const double> ref) {
  const std::size_t d = ref.size();
  if (pts.empty()) return 0.0;
  if (d == 1) {
    double lo = pts[0][0];
    for (const auto& p : pts) lo = std::min(lo, p[0]);
    return ref[0] - lo;
  }
  if (d == 2) {
    std::sort(pts.begin(), pts.end());  // x ascending, y ascending on x-ties
    double best_y = ref[1];
    double area = 0.0;
    for (const auto& p : pts) {
      if (p[1] < best_y) {
        area += (ref[0] - p[0]) * (best_y - p[1]);
        best_y = p[1];
      }
    }
    return area;
  }
  // Slice along the last objective: between consecutive distinct
  // levels, the dominated set is the (d-1)-dim volume of the prefix.
  std::sort(pts.begin(), pts.end(), [d](const auto& a, const auto& b) {
    return a[d - 1] < b[d - 1];
  });
  const std::span<const double> subref(ref.data(), d - 1);
  std::vector<std::vector<double>> prefix;
  prefix.reserve(pts.size());
  double total = 0.0;
  std::size_t i = 0;
  while (i < pts.size()) {
    const double z = pts[i][d - 1];
    while (i < pts.size() && pts[i][d - 1] == z) {
      prefix.emplace_back(pts[i].begin(), pts[i].end() - 1);
      ++i;
    }
    const double next_z = i < pts.size() ? pts[i][d - 1] : ref[d - 1];
    total += hv_recursive(prefix, subref) * (next_z - z);
  }
  return total;
}

}  // namespace

double hypervolume(std::span<const std::vector<double>> points, std::span<const double> reference) {
  if (reference.empty()) throw std::invalid_argument("hypervolume: empty reference");
  std::vector<std::vector<double>> inside;
  inside.reserve(points.size());
  for (const auto& p : points) {
    if (p.size() != reference.size()) {
      throw std::invalid_argument("hypervolume: point/reference length mismatch");
    }
    bool strict = true;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] >= reference[i]) {
        strict = false;
        break;
      }
    }
    if (strict) inside.push_back(p);
  }
  return hv_recursive(std::move(inside), reference);
}

}  // namespace micronas
