// Dominance-sorted Pareto archive — the single multi-objective kernel
// every front in the repo is computed with (NSGA-II populations, the
// exhaustive sweep's accuracy/cost front, the multi-MCU scenario
// sweeps).
//
// Conventions:
//   * Every objective is MINIMIZED. Maximized quantities (accuracy,
//     linear regions) enter negated; the payload fields keep the
//     original sign for reporting.
//   * Dominance is weak Pareto dominance: a dominates b iff a <= b in
//     every objective and a < b in at least one.
//   * Ties are deterministic. Entries with *identical* objective
//     vectors collapse to one representative — the one with the
//     smallest (canonical genotype index, raw genotype index) pair —
//     so archive contents are independent of insertion order, thread
//     counts and duplicate/isomorphic candidates.
//   * `snapshot()` orders entries lexicographically by objective
//     vector (then canonical key), so exports are reproducible
//     byte-for-byte.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/nb201/genotype.hpp"
#include "src/proxies/proxy_suite.hpp"

namespace micronas {

/// One archived candidate: the genotype, its minimized objective
/// vector, and reporting payload (full indicators + oracle accuracy).
struct ParetoEntry {
  nb201::Genotype genotype;
  std::vector<double> objectives;  // minimized, one per archive objective
  IndicatorValues indicators;      // payload: full indicator set
  double accuracy = 0.0;           // payload: surrogate accuracy (%; 0 if unused)
};

/// True iff `a` weakly dominates `b` (same length, all-minimize).
bool pareto_dominates(std::span<const double> a, std::span<const double> b);

/// Non-dominated archive with deterministic tie-breaking.
///
/// Not thread-safe: searches score candidates in parallel but insert
/// serially from the driving thread, which is what keeps archive
/// contents bit-identical across thread counts.
class ParetoArchive {
 public:
  ParetoArchive() = default;
  /// `objective_names` label the CSV columns; their count fixes the
  /// expected objective-vector length.
  explicit ParetoArchive(std::vector<std::string> objective_names);

  /// Insert a candidate, dropping it if dominated (or an objective-tie
  /// with a smaller-keyed incumbent) and evicting any entries it
  /// dominates. Returns true iff the entry was retained.
  bool insert(ParetoEntry entry);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t num_objectives() const { return objective_names_.size(); }
  const std::vector<std::string>& objective_names() const { return objective_names_; }

  /// Entries sorted by (objective vector lexicographic, canonical
  /// index, raw index) — a deterministic, insertion-order-independent
  /// view. For two objectives this is the classic monotone front:
  /// first objective ascending, second strictly descending.
  std::vector<ParetoEntry> snapshot() const;

  /// Dominated hypervolume of the archive relative to `reference`
  /// (all-minimize; entries not strictly inside the reference box are
  /// ignored). Exact for any objective count via recursive slicing.
  double hypervolume(std::span<const double> reference) const;

  /// RFC-4180 CSV: genotype, raw/canonical indices, objectives,
  /// accuracy and the full indicator payload, in snapshot order.
  std::string to_csv() const;
  void save_csv(const std::string& path) const;

 private:
  struct Keyed {
    ParetoEntry entry;
    int canonical_index = 0;
    int raw_index = 0;
  };

  std::vector<std::string> objective_names_;
  std::vector<Keyed> entries_;  // invariant: mutually non-dominated, no objective ties
};

/// Fast non-dominated sort (Deb et al.): partition indices into fronts
/// (rank 0 = non-dominated). Index order within a front follows the
/// input order, so the result is deterministic.
std::vector<std::vector<std::size_t>> non_dominated_sort(
    std::span<const std::vector<double>> objectives);

/// NSGA-II crowding distances for the subset `front` of `objectives`
/// (aligned with `front`; boundary points get +infinity). Objective
/// ties are resolved by stable sort, so distances are deterministic.
std::vector<double> crowding_distances(std::span<const std::vector<double>> objectives,
                                       std::span<const std::size_t> front);

/// Dominated hypervolume of `points` relative to `reference`
/// (all-minimize). Points not strictly dominating the reference in
/// every coordinate are ignored. Exact for any dimension (recursive
/// slicing; intended for archive-sized point sets).
double hypervolume(std::span<const std::vector<double>> points, std::span<const double> reference);

}  // namespace micronas
