// Hardware-aware pruning-based search (paper contribution #3).
//
// The search starts from the full supernet (all 5 candidate ops on
// every edge, edge outputs summed) and iteratively discards operators:
// each round, for every remaining (edge, op) pair, the supernet with
// that op removed is scored by the hybrid objective — NTK condition
// number and linear-region count measured on the pruned supernet, plus
// analytic FLOPs/latency expectations over the remaining choices. On
// every edge, the op whose removal yields the *best* score (i.e. the
// least important op) is pruned. Four rounds reduce 5 ops/edge to 1,
// for 6·(5+4+3+2) = 84 proxy evaluations versus 15 625 trained
// evaluations for exhaustive search — the source of the paper's
// three-orders-of-magnitude efficiency gain.
#pragma once

#include <vector>

#include "src/search/eval_engine.hpp"
#include "src/search/objective.hpp"

namespace micronas {

struct PruningSearchConfig {
  IndicatorWeights weights;
  Constraints constraints;  // used by select-time feasibility bias
  /// Number of independent repeats per proxy measurement (averaging
  /// over inits stabilizes small-net proxies).
  int proxy_repeats = 1;
};

struct PruneDecision {
  int round = 0;
  int edge = 0;
  nb201::Op removed = nb201::Op::kNone;
  double score = 0.0;  // hybrid score of the post-removal supernet
};

struct PruningSearchResult {
  nb201::Genotype genotype;
  long long proxy_evals = 0;
  double wall_seconds = 0.0;
  std::vector<PruneDecision> decisions;
};

/// Run the pruning search. `engine` scores each round's candidate
/// removals as one parallel supernet batch (NTK/LR measurements are a
/// pure function of the candidate supernet and the engine's stream
/// seed, so the discovered cell is independent of the thread count);
/// `hw_model` supplies the analytic hardware expectations.
PruningSearchResult pruning_search(const ProxyEvalEngine& engine, const SupernetHwModel& hw_model,
                                   const PruningSearchConfig& config);

/// Convenience wrapper: serial cached engine over `suite`, seeded from
/// `rng`.
PruningSearchResult pruning_search(const ProxySuite& suite, const SupernetHwModel& hw_model,
                                   const PruningSearchConfig& config, Rng& rng);

}  // namespace micronas
