// Aging-evolution search with trained evaluations — the µNAS-method
// baseline (DESIGN.md §3.5).
//
// µNAS couples an evolutionary search loop with resource constraints
// and *trains* every sampled candidate, which is why its search costs
// hundreds of GPU-hours. We reproduce that method inside NAS-Bench-201:
// regularized (aging) evolution, one-edge mutations, tournament parent
// selection, fitness = surrogate trained accuracy, hard resource
// constraints enforced by rejection. Each fitness call is charged at
// the trained-evaluation rate by the cost model.
#pragma once

#include "src/nb201/surrogate.hpp"
#include "src/search/eval_engine.hpp"
#include "src/search/objective.hpp"

namespace micronas {

struct EvolutionSearchConfig {
  int population_size = 50;
  int tournament_size = 10;
  int total_evals = 1000;       // trained evaluations, incl. initial population
  nb201::Dataset dataset = nb201::Dataset::kCifar10;
  Constraints constraints;
  /// Reject-and-resample budget when a mutation violates constraints.
  int max_resample = 25;
};

struct EvolutionSearchResult {
  nb201::Genotype genotype;
  double accuracy = 0.0;        // surrogate trained accuracy of the winner
  long long trained_evals = 0;
  double wall_seconds = 0.0;
  /// Best-so-far accuracy after each evaluation (search trajectory).
  std::vector<double> history;
};

/// Resource feasibility of a genotype on the deployment skeleton.
bool feasible(const nb201::Genotype& g, const Constraints& constraints,
              const MacroNetConfig& deploy, const LatencyEstimator* estimator);

/// Same, answered from `engine`'s memoized analytic indicators — the
/// rejection loop revisits genotypes constantly, so the cache removes
/// most macro-model builds.
bool feasible(const nb201::Genotype& g, const Constraints& constraints,
              const ProxyEvalEngine& engine);

/// Evolution with constraint feasibility routed through `engine`
/// (analytic-only engines suffice; see ProxyEvalEngine).
EvolutionSearchResult evolution_search(const nb201::SurrogateOracle& oracle,
                                       const EvolutionSearchConfig& config,
                                       const ProxyEvalEngine& engine, Rng& rng);

/// Convenience wrapper: builds a serial cached analytic engine over
/// (`deploy`, `estimator`).
EvolutionSearchResult evolution_search(const nb201::SurrogateOracle& oracle,
                                       const EvolutionSearchConfig& config,
                                       const MacroNetConfig& deploy,
                                       const LatencyEstimator* estimator, Rng& rng);

}  // namespace micronas
