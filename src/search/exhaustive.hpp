// Exhaustive analytic sweeps over the full 15 625-cell space.
//
// The analytic indicators (FLOPs, params, latency, memory, surrogate
// accuracy) are cheap enough to evaluate on every architecture, which
// powers the Pareto-front example and provides the ground-truth pools
// the correlation studies (Fig. 2) sample from.
#pragma once

#include <functional>

#include "src/nb201/surrogate.hpp"
#include "src/search/eval_engine.hpp"
#include "src/search/objective.hpp"

namespace micronas {

struct ArchRecord {
  nb201::Genotype genotype;
  double accuracy = 0.0;     // surrogate mean accuracy
  double flops_m = 0.0;
  double params_m = 0.0;
  double latency_ms = 0.0;   // 0 when no estimator given
  double peak_sram_kb = 0.0;
  double streamed_sram_kb = 0.0;  // row-strip-streamed peak (<= peak_sram_kb)
};

/// Evaluate every architecture analytically, fanning the 15 625 cells
/// over `engine`'s worker pool (records are index-ordered and
/// independent of the thread count).
std::vector<ArchRecord> exhaustive_records(const nb201::SurrogateOracle& oracle,
                                           nb201::Dataset dataset, const ProxyEvalEngine& engine);

/// Convenience wrapper: serial analytic engine over (`deploy`,
/// `estimator`). `estimator` may be null.
std::vector<ArchRecord> exhaustive_records(const nb201::SurrogateOracle& oracle,
                                           nb201::Dataset dataset, const MacroNetConfig& deploy,
                                           const LatencyEstimator* estimator);

/// Accuracy-maximizing record subject to constraints; throws if none
/// are feasible.
const ArchRecord& best_by_accuracy(const std::vector<ArchRecord>& records,
                                   const Constraints& constraints);

/// Pareto front over (cost ascending, accuracy strictly ascending),
/// computed through ParetoArchive — the repo's single dominance
/// implementation. Records with latency 0 (no estimator) use FLOPs as
/// the cost axis. Deterministic under ties: exact (cost, accuracy)
/// duplicates collapse to the entry with the smallest canonical
/// genotype index, regardless of input order.
std::vector<ArchRecord> pareto_front(std::vector<ArchRecord> records);

}  // namespace micronas
