#include "src/search/nsga2_search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/nb201/space.hpp"

namespace micronas {

namespace {

/// One scored population member. rank/crowding are populated by
/// environmental selection and read by tournament selection.
struct Individual {
  nb201::Genotype genotype;
  std::vector<double> objectives;  // minimized
  IndicatorValues indicators;      // payload: hw (raw) + proxies when scored
  double accuracy = 0.0;           // payload: oracle accuracy (0 without oracle)
  double violation = 0.0;          // summed relative constraint excess; 0 = feasible
  int rank = 0;
  double crowding = 0.0;
};

double relative_excess(double value, double bound) {
  return value > bound ? (value - bound) / std::max(bound, 1e-12) : 0.0;
}

double constraint_violation(const IndicatorValues& v, const Constraints& c) {
  double total = 0.0;
  if (c.max_latency_ms) total += relative_excess(v.latency_ms, *c.max_latency_ms);
  if (c.max_flops_m) total += relative_excess(v.flops_m, *c.max_flops_m);
  if (c.max_params_m) total += relative_excess(v.params_m, *c.max_params_m);
  if (c.max_sram_kb) total += relative_excess(c.bound_sram_kb(v), *c.max_sram_kb);
  return total;
}

/// Deb's constrained fronts: feasible individuals are Pareto-sorted
/// first; infeasible ones follow in ascending-violation tiers (equal
/// violations share a tier). Returned fronts index into `pop`.
std::vector<std::vector<std::size_t>> constrained_fronts(const std::vector<Individual>& pop) {
  std::vector<std::size_t> feasible;
  std::vector<std::size_t> infeasible;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    (pop[i].violation == 0.0 ? feasible : infeasible).push_back(i);
  }

  std::vector<std::vector<std::size_t>> fronts;
  if (!feasible.empty()) {
    std::vector<std::vector<double>> objectives;
    objectives.reserve(feasible.size());
    for (std::size_t i : feasible) objectives.push_back(pop[i].objectives);
    for (const auto& front : non_dominated_sort(objectives)) {
      std::vector<std::size_t> mapped;
      mapped.reserve(front.size());
      for (std::size_t k : front) mapped.push_back(feasible[k]);
      fronts.push_back(std::move(mapped));
    }
  }
  // Stable on (violation, index): deterministic tier order.
  std::stable_sort(infeasible.begin(), infeasible.end(), [&](std::size_t a, std::size_t b) {
    return pop[a].violation < pop[b].violation;
  });
  std::size_t i = 0;
  while (i < infeasible.size()) {
    std::vector<std::size_t> tier;
    const double v = pop[infeasible[i]].violation;
    while (i < infeasible.size() && pop[infeasible[i]].violation == v) tier.push_back(infeasible[i++]);
    fronts.push_back(std::move(tier));
  }
  return fronts;
}

/// Crowded-comparison winner of a binary tournament (Deb's rules:
/// feasibility, then violation, then rank, then crowding; final
/// tie-break on population index keeps the pick deterministic).
std::size_t tournament(const std::vector<Individual>& pop, Rng& rng) {
  const std::size_t a = rng.index(pop.size());
  const std::size_t b = rng.index(pop.size());
  const Individual& ia = pop[a];
  const Individual& ib = pop[b];
  if (ia.violation != ib.violation) return ia.violation < ib.violation ? a : b;
  if (ia.rank != ib.rank) return ia.rank < ib.rank ? a : b;
  if (ia.crowding != ib.crowding) return ia.crowding > ib.crowding ? a : b;
  return std::min(a, b);
}

nb201::Genotype mutate_edges(const nb201::Genotype& g, double per_edge_prob, Rng& rng) {
  nb201::Genotype out = g;
  for (int e = 0; e < nb201::kNumEdges; ++e) {
    if (!rng.bernoulli(per_edge_prob)) continue;
    // Replace with a uniformly chosen *different* op.
    const int cur = static_cast<int>(out.op(e));
    const int shift = rng.uniform_int(1, nb201::kNumOps - 1);
    out.set_op(e, static_cast<nb201::Op>((cur + shift) % nb201::kNumOps));
  }
  return out;
}

}  // namespace

Nsga2Result nsga2_search(const ProxyEvalEngine& hw_engine, const ProxyEvalEngine* proxy_engine,
                         const nb201::SurrogateOracle* oracle, const Nsga2Config& config,
                         Rng& rng) {
  if (config.population_size < 2) throw std::invalid_argument("nsga2_search: population >= 2");
  if (config.generations < 0) throw std::invalid_argument("nsga2_search: generations >= 0");
  if (proxy_engine == nullptr && oracle == nullptr) {
    throw std::invalid_argument("nsga2_search: need a proxy engine or an oracle for quality");
  }
  if (proxy_engine != nullptr && proxy_engine->suite() == nullptr) {
    throw std::invalid_argument("nsga2_search: proxy engine must carry a proxy suite");
  }
  if (config.constraints.max_latency_ms && hw_engine.estimator() == nullptr) {
    throw std::invalid_argument("nsga2_search: latency constraint requires an estimator");
  }
  const auto t0 = std::chrono::steady_clock::now();

  const int pop_size = config.population_size + (config.population_size % 2);
  const double mutation_prob =
      config.mutation_prob < 0.0 ? 1.0 / nb201::kNumEdges : config.mutation_prob;
  const bool proxy_quality = proxy_engine != nullptr;
  const char* cost_name = hw_engine.estimator() != nullptr ? "latency_ms" : "flops_m";

  std::vector<std::string> names;
  if (proxy_quality) {
    names = {"log10_ntk_kappa", "neg_linear_regions"};
  } else {
    names = {"neg_accuracy"};
  }
  names.emplace_back(cost_name);
  names.emplace_back("peak_sram_kb");

  Nsga2Result res;
  res.archive = ParetoArchive(names);

  // Score a batch: hardware analytically (raw genotype — the honest
  // deployment price), quality through the proxy engine's memoized
  // batch path or the oracle. Every value is a pure function of the
  // candidate, so the result is independent of thread count and cache
  // state; archive insertion stays on this thread, in index order.
  auto score_batch = [&](const std::vector<nb201::Genotype>& batch) {
    const std::size_t n = batch.size();
    std::vector<IndicatorValues> hw(n);
    hw_engine.parallel_for(n, [&](std::size_t i) { hw[i] = hw_engine.hardware_indicators(batch[i]); });

    std::vector<IndicatorValues> prox;
    if (proxy_quality) prox = proxy_engine->evaluate_batch(batch);

    std::vector<Individual> scored(n);
    for (std::size_t i = 0; i < n; ++i) {
      Individual& ind = scored[i];
      ind.genotype = batch[i];
      ind.indicators = hw[i];
      if (proxy_quality) {
        ind.indicators.ntk_condition = prox[i].ntk_condition;
        ind.indicators.linear_regions = prox[i].linear_regions;
      }
      if (oracle != nullptr) ind.accuracy = oracle->mean_accuracy(batch[i], config.dataset);
      const double cost = hw_engine.estimator() != nullptr ? hw[i].latency_ms : hw[i].flops_m;
      if (proxy_quality) {
        ind.objectives = {std::log10(std::max(prox[i].ntk_condition, 1.0)),
                          -prox[i].linear_regions, cost, hw[i].peak_sram_kb};
      } else {
        ind.objectives = {-ind.accuracy, cost, hw[i].peak_sram_kb};
      }
      ind.violation = constraint_violation(hw[i], config.constraints);
    }
    res.evaluations += static_cast<long long>(n);

    for (const Individual& ind : scored) {
      if (ind.violation != 0.0) continue;  // only feasible points archive
      ParetoEntry entry;
      entry.genotype = ind.genotype;
      entry.objectives = ind.objectives;
      entry.indicators = ind.indicators;
      entry.accuracy = ind.accuracy;
      res.archive.insert(std::move(entry));
    }
    return scored;
  };

  // Environmental selection: fill from the constrained fronts; the
  // partial front is truncated by crowding (stable on front order).
  auto select = [&](std::vector<Individual> pool) {
    std::vector<std::vector<double>> objectives;
    objectives.reserve(pool.size());
    for (const Individual& ind : pool) objectives.push_back(ind.objectives);

    std::vector<Individual> next;
    next.reserve(static_cast<std::size_t>(pop_size));
    int rank = 0;
    for (const auto& front : constrained_fronts(pool)) {
      const std::vector<double> dist = crowding_distances(objectives, front);
      std::vector<std::size_t> order(front.size());
      std::iota(order.begin(), order.end(), 0);
      if (next.size() + front.size() > static_cast<std::size_t>(pop_size)) {
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });
      }
      for (std::size_t k : order) {
        if (next.size() == static_cast<std::size_t>(pop_size)) break;
        Individual ind = pool[front[k]];
        ind.rank = rank;
        ind.crowding = dist[k];
        next.push_back(std::move(ind));
      }
      if (next.size() == static_cast<std::size_t>(pop_size)) break;
      ++rank;
    }
    return next;
  };

  // Initial population.
  std::vector<nb201::Genotype> batch(static_cast<std::size_t>(pop_size));
  for (auto& g : batch) g = nb201::random_genotype(rng);
  std::vector<Individual> population = select(score_batch(batch));

  if (config.track_hypervolume) {
    // Reference: the initial population's worst value per objective,
    // padded 10 % — deterministic, and fixed for the whole run.
    res.hv_reference.assign(res.archive.num_objectives(),
                            -std::numeric_limits<double>::infinity());
    for (const Individual& ind : population) {
      for (std::size_t j = 0; j < res.hv_reference.size(); ++j) {
        res.hv_reference[j] = std::max(res.hv_reference[j], ind.objectives[j]);
      }
    }
    for (double& r : res.hv_reference) r += std::max(0.1 * std::abs(r), 1e-6);
  }

  auto record = [&](int generation) {
    Nsga2GenerationStats s;
    s.generation = generation;
    s.archive_size = res.archive.size();
    s.evaluations = res.evaluations;
    if (config.track_hypervolume) s.hypervolume = res.archive.hypervolume(res.hv_reference);
    res.history.push_back(s);
  };
  record(0);

  for (int gen = 1; gen <= config.generations; ++gen) {
    batch.clear();
    while (batch.size() < static_cast<std::size_t>(pop_size)) {
      const Individual& p1 = population[tournament(population, rng)];
      const Individual& p2 = population[tournament(population, rng)];
      nb201::Genotype c1 = p1.genotype;
      nb201::Genotype c2 = p2.genotype;
      if (rng.bernoulli(config.crossover_prob)) {
        for (int e = 0; e < nb201::kNumEdges; ++e) {
          if (rng.bernoulli(0.5)) continue;  // keep own edge
          c1.set_op(e, p2.genotype.op(e));
          c2.set_op(e, p1.genotype.op(e));
        }
      }
      batch.push_back(mutate_edges(c1, mutation_prob, rng));
      if (batch.size() < static_cast<std::size_t>(pop_size)) {
        batch.push_back(mutate_edges(c2, mutation_prob, rng));
      }
    }

    std::vector<Individual> offspring = score_batch(batch);
    std::vector<Individual> pool = std::move(population);
    pool.insert(pool.end(), std::make_move_iterator(offspring.begin()),
                std::make_move_iterator(offspring.end()));
    population = select(std::move(pool));
    record(gen);
  }

  res.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace micronas
