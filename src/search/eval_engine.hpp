// Parallel proxy-evaluation engine with a memoized indicator cache —
// the shared scoring backend of every search strategy.
//
// Two observations drive the design:
//
//  1. Candidate scoring dominates every search backend's runtime, and
//     candidates within a batch (a pruning round, a random-search
//     sample, a hill-climbing neighbourhood) are independent — so the
//     engine scores them across a fixed-size worker pool.
//  2. Searches revisit architectures (mutation cycles, neighbourhood
//     overlap) and many NB201 genotypes are *functionally identical*
//     (dead edges contribute nothing — see nb201/canonical.hpp) — so
//     the engine memoizes genotype → IndicatorValues under the
//     canonical key and never scores a behaviour class twice.
//
// Determinism contract: results are bit-identical across thread counts
// and cache states. Every measurement draws from a private Rng stream
// seeded by hash(stream seed, canonical genotype hash) — a pure
// function of the candidate, never of evaluation order. Scoring a
// genotype therefore returns the same bits whether it is computed
// serially, on 8 threads, or replayed from the cache.
//
// Semantics note: the engine scores the *canonical representative* of
// each genotype — the dead-code-eliminated cell that deployment would
// use (canonicalization is semantics-preserving and never slower or
// larger; see tests/test_canonical.cpp). This is what makes the cache
// exact rather than approximate for isomorphic genotypes.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/nb201/canonical.hpp"
#include "src/proxies/proxy_suite.hpp"

namespace micronas {

struct EvalEngineConfig {
  /// Worker threads for batch scoring. 1 = serial (no pool is spun
  /// up); 0 = one per hardware thread.
  int threads = 1;
  /// Memoize genotype → IndicatorValues under the canonical key.
  bool cache = true;
  /// Stream seed: all proxy measurements derive their Rng from this
  /// and the candidate's canonical hash.
  std::uint64_t seed = 1;
};

/// Cumulative engine counters (cheap, thread-safe, monotone).
struct EvalEngineStats {
  long long requests = 0;        // full-indicator scoring requests
  long long cache_hits = 0;      // requests answered from the cache
  long long evaluations = 0;     // proxy-suite computations actually run
  long long hw_requests = 0;     // analytic (hardware-only) requests
  long long hw_cache_hits = 0;
  long long supernet_requests = 0;  // supernet scoring requests
  long long supernet_hits = 0;      // answered from the supernet cache
  long long supernet_evals = 0;     // supernet proxy computations run

  double hit_rate() const {
    return requests > 0 ? static_cast<double>(cache_hits) / static_cast<double>(requests) : 0.0;
  }
  double hw_hit_rate() const {
    return hw_requests > 0 ? static_cast<double>(hw_cache_hits) / static_cast<double>(hw_requests)
                           : 0.0;
  }
  double supernet_hit_rate() const {
    return supernet_requests > 0
               ? static_cast<double>(supernet_hits) / static_cast<double>(supernet_requests)
               : 0.0;
  }
  /// Hit rate over every kind of scoring request the engine served.
  double overall_hit_rate() const {
    const long long req = requests + hw_requests + supernet_requests;
    const long long hits = cache_hits + hw_cache_hits + supernet_hits;
    return req > 0 ? static_cast<double>(hits) / static_cast<double>(req) : 0.0;
  }
};

/// Counter-wise difference — before/after deltas for attributing
/// engine traffic to a phase (e.g. one sweep target). Keep in sync
/// with the counter list above when adding counters.
EvalEngineStats operator-(const EvalEngineStats& a, const EvalEngineStats& b);

/// Shared scoring backend: batched, parallel, memoized.
///
/// Thread-safe: all public methods may be called concurrently; the
/// engine is also safe to use from inside its own worker items (the
/// nested call simply degrades to inline execution).
class ProxyEvalEngine {
 public:
  /// Full engine over a proxy suite (NTK + linear regions + hardware).
  ProxyEvalEngine(const ProxySuite& suite, EvalEngineConfig config);

  /// Analytic-only engine: no proxy suite, `evaluate` is unavailable
  /// but `hardware_indicators` works. Used by backends (evolution
  /// feasibility, exhaustive sweeps) that never touch the trainless
  /// proxies. `estimator` may be null (latency reported as 0).
  ProxyEvalEngine(const MacroNetConfig& deploy, const LatencyEstimator* estimator,
                  EvalEngineConfig config);

  /// Every indicator for one genotype, from the cache when possible.
  IndicatorValues evaluate(const nb201::Genotype& genotype) const;

  /// Score a batch across the worker pool. Equivalent to calling
  /// `evaluate` on each element; results are independent of the thread
  /// count and of duplicate/isomorphic elements within the batch.
  std::vector<IndicatorValues> evaluate_batch(std::span<const nb201::Genotype> genotypes) const;

  /// Analytic hardware indicators only (FLOPs, params, latency, peak
  /// SRAM — no proxy nets are built). Unlike `evaluate`, this reports
  /// the *raw* genotype's deployment cost — the honest price of the
  /// cell as written, before the dead-code-elimination pass the facade
  /// applies only to the final winner — so backends that constrain or
  /// census raw genotypes (evolution feasibility, exhaustive sweeps)
  /// see exactly what they asked about. Cached under the raw genotype
  /// index; orders of magnitude cheaper than `evaluate`, and the
  /// analytic values are exact so cache replay is too.
  IndicatorValues hardware_indicators(const nb201::Genotype& genotype) const;

  /// Trainability/expressivity indicators for a batch of (partially
  /// pruned) supernets — the pruning search's per-round candidate set.
  /// Each candidate's Rng stream is seeded from the content hash of
  /// its edge-op sets, so scores are a pure function of the candidate.
  /// `repeats` measurements are averaged per candidate. Memoized under
  /// (content hash, repeats): a single pruning run never revisits a
  /// supernet, but the adaptive outer loop re-prunes from the full
  /// supernet every round and replays the overlap from the cache.
  std::vector<IndicatorValues> evaluate_supernets(std::span<const EdgeOps> candidates,
                                                  int repeats = 1) const;

  /// Run arbitrary independent work items on the engine's worker pool
  /// (inline when the engine is serial). Used by backends whose batch
  /// loop mixes engine scoring with other per-candidate work (e.g. the
  /// exhaustive sweep's oracle queries).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  void clear_cache() const;
  EvalEngineStats stats() const;

  int threads() const { return threads_; }
  bool cache_enabled() const { return config_.cache; }
  /// Null for analytic-only engines.
  const ProxySuite* suite() const { return suite_; }
  /// Null when latency estimation is unavailable.
  const LatencyEstimator* estimator() const { return estimator_; }

 private:
  IndicatorValues compute(const nb201::Genotype& canonical) const;
  IndicatorValues compute_hardware(const nb201::Genotype& genotype) const;

  EvalEngineConfig config_;
  int threads_ = 1;
  const ProxySuite* suite_ = nullptr;
  MacroNetConfig deploy_;
  const LatencyEstimator* estimator_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;  // only when threads_ > 1

  // Proxy cache keyed by canonical genotype index, hardware cache by
  // raw index (both dense in [0, 15625)), supernet cache by content
  // hash combined with the repeat count.
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<int, IndicatorValues> cache_;
  mutable std::unordered_map<int, IndicatorValues> hw_cache_;
  mutable std::unordered_map<std::uint64_t, IndicatorValues> supernet_cache_;

  mutable std::atomic<long long> requests_ = 0;
  mutable std::atomic<long long> cache_hits_ = 0;
  mutable std::atomic<long long> evaluations_ = 0;
  mutable std::atomic<long long> hw_requests_ = 0;
  mutable std::atomic<long long> hw_cache_hits_ = 0;
  mutable std::atomic<long long> supernet_requests_ = 0;
  mutable std::atomic<long long> supernet_hits_ = 0;
  mutable std::atomic<long long> supernet_evals_ = 0;
};

/// Content hash of a supernet's per-edge op sets (order-sensitive over
/// the canonical edge order, order-insensitive over evaluation order).
std::uint64_t edge_ops_hash(const EdgeOps& edge_ops);

}  // namespace micronas
