#include "src/search/local_search.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <stdexcept>

namespace micronas {

namespace {

/// Pairwise comparison consistent with the hybrid objective: rank the
/// two candidates against each other and prefer the lower score, with
/// feasibility taking precedence.
bool better(const IndicatorValues& a, const IndicatorValues& b, const IndicatorWeights& weights,
            const Constraints& constraints) {
  const bool fa = constraints.satisfied_by(a);
  const bool fb = constraints.satisfied_by(b);
  if (fa != fb) return fa;
  // Exact indicator ties (common since the engine scores canonical
  // representatives: every cell in a behaviour class reports the same
  // bits) are not improvements — the ordinal rank tie-break below would
  // otherwise declare any tied neighbour "better" and the climb would
  // walk plateaus forever.
  if (a.ntk_condition == b.ntk_condition && a.linear_regions == b.linear_regions &&
      a.flops_m == b.flops_m && a.latency_ms == b.latency_ms) {
    return false;
  }
  const std::array<IndicatorValues, 2> pair = {a, b};
  const auto scores = hybrid_rank_scores(pair, weights);
  return scores[0] < scores[1];
}

}  // namespace

LocalSearchResult local_search(const ProxyEvalEngine& engine, const LocalSearchConfig& config,
                               Rng& rng) {
  if (config.max_evals < 1) throw std::invalid_argument("local_search: max_evals >= 1");
  if (config.max_restarts < 1) throw std::invalid_argument("local_search: max_restarts >= 1");
  const auto t0 = std::chrono::steady_clock::now();

  LocalSearchResult res;
  bool have_best = false;

  for (int restart = 0; restart < config.max_restarts && res.proxy_evals < config.max_evals;
       ++restart) {
    res.restarts = restart + 1;
    nb201::Genotype current = nb201::random_genotype(rng);
    IndicatorValues current_v = engine.evaluate(current);
    ++res.proxy_evals;

    bool improved = true;
    while (improved && res.proxy_evals < config.max_evals) {
      improved = false;
      // First-improvement scan in canonical neighbour order. A parallel
      // engine scores the scan speculatively one thread-sized chunk at
      // a time, and the scan charges exactly the prefix a serial scan
      // would have evaluated — the trajectory and the eval accounting
      // are identical for every thread count, speculative overshoot is
      // bounded by threads-1 per move, and the extras only warm the
      // cache.
      std::vector<nb201::Genotype> neighborhood = nb201::neighbors(current);
      const auto budget = static_cast<std::size_t>(config.max_evals - res.proxy_evals);
      if (neighborhood.size() > budget) neighborhood.resize(budget);
      const auto chunk = static_cast<std::size_t>(std::max(engine.threads(), 1));

      for (std::size_t base = 0; base < neighborhood.size() && !improved; base += chunk) {
        const std::size_t end = std::min(base + chunk, neighborhood.size());
        const std::span<const nb201::Genotype> slice(neighborhood.data() + base, end - base);
        const std::vector<IndicatorValues> values = engine.evaluate_batch(slice);
        for (std::size_t i = 0; i < values.size(); ++i) {
          ++res.proxy_evals;
          if (better(values[i], current_v, config.weights, config.constraints)) {
            current = neighborhood[base + i];
            current_v = values[i];
            improved = true;
            break;  // first-improvement hill climbing
          }
        }
      }
    }

    if (!have_best || better(current_v, res.indicators, config.weights, config.constraints)) {
      res.genotype = current;
      res.indicators = current_v;
      have_best = true;
    }
  }

  res.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

LocalSearchResult local_search(const ProxySuite& suite, const LocalSearchConfig& config,
                               Rng& rng) {
  EvalEngineConfig ecfg;  // serial + cached defaults
  ecfg.seed = rng.engine()();
  const ProxyEvalEngine engine(suite, ecfg);
  return local_search(engine, config, rng);
}

}  // namespace micronas
