#include "src/search/local_search.hpp"

#include <chrono>
#include <stdexcept>

namespace micronas {

namespace {

/// Pairwise comparison consistent with the hybrid objective: rank the
/// two candidates against each other and prefer the lower score, with
/// feasibility taking precedence.
bool better(const IndicatorValues& a, const IndicatorValues& b, const IndicatorWeights& weights,
            const Constraints& constraints) {
  const bool fa = constraints.satisfied_by(a);
  const bool fb = constraints.satisfied_by(b);
  if (fa != fb) return fa;
  const std::array<IndicatorValues, 2> pair = {a, b};
  const auto scores = hybrid_rank_scores(pair, weights);
  return scores[0] < scores[1];
}

}  // namespace

LocalSearchResult local_search(const ProxySuite& suite, const LocalSearchConfig& config,
                               Rng& rng) {
  if (config.max_evals < 1) throw std::invalid_argument("local_search: max_evals >= 1");
  if (config.max_restarts < 1) throw std::invalid_argument("local_search: max_restarts >= 1");
  const auto t0 = std::chrono::steady_clock::now();

  LocalSearchResult res;
  bool have_best = false;

  for (int restart = 0; restart < config.max_restarts && res.proxy_evals < config.max_evals;
       ++restart) {
    res.restarts = restart + 1;
    nb201::Genotype current = nb201::random_genotype(rng);
    IndicatorValues current_v = suite.evaluate(current, rng);
    ++res.proxy_evals;

    bool improved = true;
    while (improved && res.proxy_evals < config.max_evals) {
      improved = false;
      for (const auto& neighbor : nb201::neighbors(current)) {
        if (res.proxy_evals >= config.max_evals) break;
        const IndicatorValues v = suite.evaluate(neighbor, rng);
        ++res.proxy_evals;
        if (better(v, current_v, config.weights, config.constraints)) {
          current = neighbor;
          current_v = v;
          improved = true;
          break;  // first-improvement hill climbing
        }
      }
    }

    if (!have_best || better(current_v, res.indicators, config.weights, config.constraints)) {
      res.genotype = current;
      res.indicators = current_v;
      have_best = true;
    }
  }

  res.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace micronas
