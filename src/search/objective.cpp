#include "src/search/objective.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/stats/ranking.hpp"

namespace micronas {

bool Constraints::satisfied_by(const IndicatorValues& v) const {
  if (max_latency_ms && v.latency_ms > *max_latency_ms) return false;
  if (max_flops_m && v.flops_m > *max_flops_m) return false;
  if (max_params_m && v.params_m > *max_params_m) return false;
  if (max_sram_kb && bound_sram_kb(v) > *max_sram_kb) return false;
  return true;
}

std::vector<double> hybrid_rank_scores(std::span<const IndicatorValues> candidates,
                                       const IndicatorWeights& weights,
                                       const ObjectiveScales& scales) {
  if (candidates.empty()) throw std::invalid_argument("hybrid_rank_scores: empty candidate set");
  const std::size_t n = candidates.size();

  std::vector<double> ntk(n), lr(n), flops(n), lat(n);
  for (std::size_t i = 0; i < n; ++i) {
    ntk[i] = candidates[i].ntk_condition;
    lr[i] = candidates[i].linear_regions;
    flops[i] = candidates[i].flops_m;
    lat[i] = candidates[i].latency_ms;
  }
  // Performance indicators enter as ordinal ranks: their raw scales are
  // arbitrary (a condition number and a crossing count are not
  // commensurable), which is TE-NAS's rank-combination argument.
  const auto r_ntk = stats::ordinal_ranks_ascending(ntk);  // low κ is rank 0
  const auto r_lr = stats::ordinal_ranks_descending(lr);   // high LR is rank 0

  // Hardware indicators enter as min-max-normalized *magnitudes* scaled
  // to rank units. Ranks would be wrong here: they renormalize every
  // round, so there is always maximal pressure to drop whatever is
  // currently most expensive — the search cascades into the degenerate
  // all-cheap cell. Magnitudes preserve the physical scale: once the
  // candidates are all cheap, the hardware term stops discriminating
  // and the trainless indicators take over. This is the "precise
  // control over the contributions of F and L" the paper's tunable
  // weights provide.
  auto normalized = [&](const std::vector<double>& v, double scale) {
    double lo = v[0], hi = v[0];
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    const double denom = std::max(scale > 0.0 ? scale : hi, 1e-12);
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) out[i] = (v[i] - lo) / denom * static_cast<double>(n - 1);
    return out;
  };
  const auto m_flops = normalized(flops, scales.flops_m);
  const auto m_lat = normalized(lat, scales.latency_ms);

  std::vector<double> scores(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = weights.ntk * r_ntk[i] + weights.linear_regions * r_lr[i] +
                weights.flops * m_flops[i] + weights.latency * m_lat[i];
  }
  return scores;
}

std::size_t select_best(std::span<const IndicatorValues> candidates,
                        const IndicatorWeights& weights, const Constraints& constraints) {
  const auto scores = hybrid_rank_scores(candidates, weights);
  std::size_t best = candidates.size();
  bool best_feasible = false;
  double best_score = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const bool feasible = constraints.satisfied_by(candidates[i]);
    const bool wins = best == candidates.size() ||
                      (feasible && !best_feasible) ||
                      (feasible == best_feasible && scores[i] < best_score);
    if (wins) {
      best = i;
      best_feasible = feasible;
      best_score = scores[i];
    }
  }
  return best;
}

SupernetHwModel::SupernetHwModel(const MacroNetConfig& config, const LatencyEstimator* estimator) {
  if (config.num_stages > 8) throw std::invalid_argument("SupernetHwModel: too many stages");
  num_stages_ = config.num_stages;
  cells_per_stage_ = config.cells_per_stage;

  // Fixed skeleton cost = macro model of the all-`none` genotype.
  const nb201::Genotype empty;  // all edges none
  const MacroModel skeleton = build_macro_model(empty, config);
  fixed_flops_m_ = count_flops(skeleton).total_m();
  fixed_latency_ms_ = estimator != nullptr ? estimator->estimate_ms(skeleton) : 0.0;

  // Per-(stage, op) incremental cost of one edge instance.
  int channels = config.base_channels;
  int hw = config.input_size;
  for (int stage = 0; stage < num_stages_; ++stage) {
    if (stage > 0) {
      channels *= 2;
      hw = (hw + 1) / 2;
    }
    for (int oi = 0; oi < nb201::kNumOps; ++oi) {
      const auto op = static_cast<nb201::Op>(oi);
      LayerSpec spec;
      spec.cin = channels;
      spec.cout = channels;
      spec.h = hw;
      spec.w = hw;
      spec.out_h = hw;
      spec.out_w = hw;
      switch (op) {
        case nb201::Op::kNone:
          continue;  // zero cost
        case nb201::Op::kSkipConnect:
          spec.kind = LayerKind::kSkip;
          break;
        case nb201::Op::kConv1x1:
          spec.kind = LayerKind::kConv;
          spec.kernel = 1;
          spec.stride = 1;
          spec.pad = 0;
          break;
        case nb201::Op::kConv3x3:
          spec.kind = LayerKind::kConv;
          spec.kernel = 3;
          spec.stride = 1;
          spec.pad = 1;
          break;
        case nb201::Op::kAvgPool3x3:
          spec.kind = LayerKind::kAvgPool;
          spec.kernel = 3;
          spec.stride = 1;
          spec.pad = 1;
          break;
      }
      flops_m_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(oi)] =
          static_cast<double>(layer_flops(spec)) / 1e6;
      latency_ms_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(oi)] =
          estimator != nullptr ? estimator->layer_ms(spec) : 0.0;
    }
  }
}

SupernetHwExpectation SupernetHwModel::expectation(const nb201::OpSet& opset) const {
  SupernetHwExpectation e;
  e.flops_m = fixed_flops_m_;
  e.latency_ms = fixed_latency_ms_;
  for (int stage = 0; stage < num_stages_; ++stage) {
    for (int edge = 0; edge < nb201::kNumEdges; ++edge) {
      const auto& ops = opset.ops_on_edge(edge);
      double f = 0.0, l = 0.0;
      for (nb201::Op op : ops) {
        f += flops_m_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(static_cast<int>(op))];
        l += latency_ms_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(static_cast<int>(op))];
      }
      e.flops_m += cells_per_stage_ * f / static_cast<double>(ops.size());
      e.latency_ms += cells_per_stage_ * l / static_cast<double>(ops.size());
    }
  }
  return e;
}

}  // namespace micronas
