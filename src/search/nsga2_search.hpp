// NSGA-II multi-objective evolutionary backend over the NB201 space.
//
// Instead of answering one (objective weights, constraint budget)
// query per run, the backend emits the whole trade-off surface in one
// search: populations evolve under fast non-dominated sorting with
// crowding-distance diversity (Deb et al., 2002) and every feasible
// candidate ever scored is folded into a ParetoArchive.
//
// Objectives (all minimized internally):
//   * quality — either the trainless proxies (log10 NTK κ ascending,
//     linear regions descending) scored in batches through a full
//     ProxyEvalEngine, or surrogate oracle accuracy (descending) when
//     no proxy engine is given;
//   * cost — LUT-estimated latency from the hardware engine (FLOPs
//     when it has no estimator), plus peak SRAM.
//
// Determinism contract (matching the other backends): results are
// bit-identical across thread counts and cache states. All evolution
// randomness (sampling, tournaments, crossover, mutation) draws from
// the caller's Rng on the driving thread; candidate scores are pure
// functions of the candidate via the engines' per-candidate streams;
// sorting uses stable, key-based tie-breaks throughout.
#pragma once

#include "src/nb201/surrogate.hpp"
#include "src/search/eval_engine.hpp"
#include "src/search/objective.hpp"
#include "src/search/pareto_archive.hpp"

namespace micronas {

struct Nsga2Config {
  int population_size = 32;     // rounded up to even
  int generations = 16;         // offspring generations after the initial one
  double crossover_prob = 0.9;  // per-pair uniform crossover probability
  double mutation_prob = -1.0;  // per-edge; < 0 picks 1/kNumEdges
  nb201::Dataset dataset = nb201::Dataset::kCifar10;
  /// Hard resource constraints, enforced by Deb's constrained
  /// dominance: feasible beats infeasible, lower total violation beats
  /// higher. Only feasible candidates enter the archive.
  Constraints constraints;
  /// Record per-generation hypervolume in the result history. The
  /// reference point is derived from the initial population (worst
  /// value per objective, padded 10 %), so it is deterministic.
  bool track_hypervolume = false;
};

/// Per-generation search trajectory (for benches and regression tests).
struct Nsga2GenerationStats {
  int generation = 0;           // 0 = initial population
  std::size_t archive_size = 0;
  long long evaluations = 0;    // cumulative scoring requests
  double hypervolume = 0.0;     // 0 unless track_hypervolume
};

struct Nsga2Result {
  ParetoArchive archive;
  long long evaluations = 0;    // quality-scoring requests (cache hits included)
  double wall_seconds = 0.0;
  std::vector<Nsga2GenerationStats> history;
  /// Reference point used for hypervolume tracking (empty otherwise).
  std::vector<double> hv_reference;
};

/// Run NSGA-II. `hw_engine` prices latency/FLOPs/SRAM (analytic-only
/// engines suffice). Quality objectives come from `proxy_engine`
/// (NTK/linear regions; must have a proxy suite) when non-null,
/// otherwise from `oracle` (surrogate accuracy), which must then be
/// non-null. When both are given, the proxies drive the search and the
/// oracle only annotates archive entries with accuracy for reporting.
Nsga2Result nsga2_search(const ProxyEvalEngine& hw_engine, const ProxyEvalEngine* proxy_engine,
                         const nb201::SurrogateOracle* oracle, const Nsga2Config& config,
                         Rng& rng);

}  // namespace micronas
