// Proxy-guided local search (hill climbing) — a stronger trainless
// baseline than random search: start from a random cell, evaluate all
// 24 one-edge neighbours with the indicator suite, move to the best
// improving neighbour, restart when stuck. Costs more proxy
// evaluations than the pruning search but explores concrete cells
// rather than supernets.
#pragma once

#include "src/search/objective.hpp"

namespace micronas {

struct LocalSearchConfig {
  int max_evals = 200;             // total proxy-evaluation budget
  int max_restarts = 8;
  IndicatorWeights weights;
  Constraints constraints;
};

struct LocalSearchResult {
  nb201::Genotype genotype;
  IndicatorValues indicators;
  long long proxy_evals = 0;
  int restarts = 0;
  double wall_seconds = 0.0;
};

LocalSearchResult local_search(const ProxySuite& suite, const LocalSearchConfig& config,
                               Rng& rng);

}  // namespace micronas
