// Proxy-guided local search (hill climbing) — a stronger trainless
// baseline than random search: start from a random cell, scan the 24
// one-edge neighbours in canonical order and move to the first
// improving one, restart when stuck. A parallel engine scores the scan
// speculatively in thread-sized chunks; the trajectory and the charged
// eval budget match the serial scan exactly. Costs more proxy
// evaluations than the pruning search but explores concrete cells
// rather than supernets.
#pragma once

#include "src/search/eval_engine.hpp"
#include "src/search/objective.hpp"

namespace micronas {

struct LocalSearchConfig {
  int max_evals = 200;             // total proxy-evaluation budget
  int max_restarts = 8;
  IndicatorWeights weights;
  Constraints constraints;
};

struct LocalSearchResult {
  nb201::Genotype genotype;
  IndicatorValues indicators;
  long long proxy_evals = 0;  // scoring requests (cache hits included)
  int restarts = 0;
  double wall_seconds = 0.0;
};

/// Hill-climb with neighbourhoods scored as engine batches. The climb
/// trajectory depends only on `rng` and the engine's scoring stream —
/// not on its thread count.
LocalSearchResult local_search(const ProxyEvalEngine& engine, const LocalSearchConfig& config,
                               Rng& rng);

/// Convenience wrapper: serial cached engine over `suite`, seeded from
/// `rng`.
LocalSearchResult local_search(const ProxySuite& suite, const LocalSearchConfig& config,
                               Rng& rng);

}  // namespace micronas
