#include "src/search/exhaustive.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/search/pareto_archive.hpp"

namespace micronas {

std::vector<ArchRecord> exhaustive_records(const nb201::SurrogateOracle& oracle,
                                           nb201::Dataset dataset, const ProxyEvalEngine& engine) {
  std::vector<ArchRecord> records(nb201::kNumArchitectures);
  engine.parallel_for(records.size(), [&](std::size_t i) {
    ArchRecord& r = records[i];
    r.genotype = nb201::Genotype::from_index(static_cast<int>(i));
    r.accuracy = oracle.mean_accuracy(r.genotype, dataset);
    const IndicatorValues v = engine.hardware_indicators(r.genotype);
    r.flops_m = v.flops_m;
    r.params_m = v.params_m;
    r.peak_sram_kb = v.peak_sram_kb;
    r.streamed_sram_kb = v.streamed_sram_kb;
    r.latency_ms = v.latency_ms;
  });
  return records;
}

std::vector<ArchRecord> exhaustive_records(const nb201::SurrogateOracle& oracle,
                                           nb201::Dataset dataset, const MacroNetConfig& deploy,
                                           const LatencyEstimator* estimator) {
  EvalEngineConfig ecfg;
  ecfg.cache = false;  // every index is visited exactly once
  const ProxyEvalEngine engine(deploy, estimator, ecfg);
  return exhaustive_records(oracle, dataset, engine);
}

const ArchRecord& best_by_accuracy(const std::vector<ArchRecord>& records,
                                   const Constraints& constraints) {
  const ArchRecord* best = nullptr;
  for (const auto& r : records) {
    IndicatorValues v;
    v.flops_m = r.flops_m;
    v.params_m = r.params_m;
    v.latency_ms = r.latency_ms;
    v.peak_sram_kb = r.peak_sram_kb;
    v.streamed_sram_kb = r.streamed_sram_kb;
    if (!constraints.satisfied_by(v)) continue;
    if (best == nullptr || r.accuracy > best->accuracy) best = &r;
  }
  if (best == nullptr) throw std::runtime_error("best_by_accuracy: no feasible architecture");
  return *best;
}

std::vector<ArchRecord> pareto_front(std::vector<ArchRecord> records) {
  if (records.empty()) return {};
  const bool use_latency = std::any_of(records.begin(), records.end(),
                                       [](const ArchRecord& r) { return r.latency_ms > 0.0; });

  // One dominance implementation for the whole repo: the archive keeps
  // the (cost ascending, accuracy strictly ascending) staircase and
  // resolves exact (cost, accuracy) ties deterministically by smallest
  // canonical genotype index, independent of the input order.
  ParetoArchive archive({use_latency ? "latency_ms" : "flops_m", "neg_accuracy"});
  for (ArchRecord& r : records) {
    ParetoEntry e;
    e.genotype = r.genotype;
    e.objectives = {use_latency ? r.latency_ms : r.flops_m, -r.accuracy};
    e.accuracy = r.accuracy;
    e.indicators.flops_m = r.flops_m;
    e.indicators.params_m = r.params_m;
    e.indicators.latency_ms = r.latency_ms;
    e.indicators.peak_sram_kb = r.peak_sram_kb;
    e.indicators.streamed_sram_kb = r.streamed_sram_kb;
    archive.insert(std::move(e));
  }

  std::vector<ArchRecord> front;
  front.reserve(archive.size());
  for (const ParetoEntry& e : archive.snapshot()) {
    ArchRecord r;
    r.genotype = e.genotype;
    r.accuracy = e.accuracy;
    r.flops_m = e.indicators.flops_m;
    r.params_m = e.indicators.params_m;
    r.latency_ms = e.indicators.latency_ms;
    r.peak_sram_kb = e.indicators.peak_sram_kb;
    r.streamed_sram_kb = e.indicators.streamed_sram_kb;
    front.push_back(r);
  }
  return front;
}

}  // namespace micronas
