#include "src/search/evolution_search.hpp"

#include <chrono>
#include <deque>
#include <stdexcept>

#include "src/hw/memory_model.hpp"
#include "src/proxies/flops.hpp"

namespace micronas {

bool feasible(const nb201::Genotype& g, const Constraints& constraints,
              const MacroNetConfig& deploy, const LatencyEstimator* estimator) {
  if (!constraints.any()) return true;
  const MacroModel model = build_macro_model(g, deploy);
  IndicatorValues v;
  v.flops_m = count_flops(model).total_m();
  v.params_m = count_params(model).total_m();
  const MemoryReport mem = analyze_memory(model);
  v.peak_sram_kb = mem.peak_sram_kb();
  v.streamed_sram_kb = mem.streamed_peak_sram_kb();
  v.latency_ms = estimator != nullptr ? estimator->estimate_ms(model) : 0.0;
  if (constraints.max_latency_ms && estimator == nullptr) {
    throw std::invalid_argument("feasible: latency constraint requires an estimator");
  }
  return constraints.satisfied_by(v);
}

bool feasible(const nb201::Genotype& g, const Constraints& constraints,
              const ProxyEvalEngine& engine) {
  if (!constraints.any()) return true;
  if (constraints.max_latency_ms && engine.estimator() == nullptr) {
    throw std::invalid_argument("feasible: latency constraint requires an estimator");
  }
  return constraints.satisfied_by(engine.hardware_indicators(g));
}

EvolutionSearchResult evolution_search(const nb201::SurrogateOracle& oracle,
                                       const EvolutionSearchConfig& config,
                                       const ProxyEvalEngine& engine, Rng& rng) {
  if (config.population_size < 2) throw std::invalid_argument("evolution_search: population >= 2");
  if (config.tournament_size < 1 || config.tournament_size > config.population_size) {
    throw std::invalid_argument("evolution_search: bad tournament size");
  }
  if (config.total_evals < config.population_size) {
    throw std::invalid_argument("evolution_search: total_evals must cover the initial population");
  }

  const auto t0 = std::chrono::steady_clock::now();

  struct Individual {
    nb201::Genotype genotype;
    double fitness;
  };

  EvolutionSearchResult res;
  std::deque<Individual> population;

  auto sample_feasible = [&]() {
    for (int tries = 0; tries < config.max_resample; ++tries) {
      const nb201::Genotype g = nb201::random_genotype(rng);
      if (feasible(g, config.constraints, engine)) return g;
    }
    // Constraints too tight for random sampling: fall back to the
    // cheapest structure (all skip), which is feasible in practice.
    std::array<nb201::Op, nb201::kNumEdges> ops;
    ops.fill(nb201::Op::kSkipConnect);
    return nb201::Genotype(ops);
  };

  auto evaluate = [&](const nb201::Genotype& g) {
    const double acc = oracle.accuracy(g, config.dataset, /*trial=*/0);
    ++res.trained_evals;
    if (res.history.empty() || acc > res.history.back()) {
      res.history.push_back(acc);
      res.genotype = g;
      res.accuracy = acc;
    } else {
      res.history.push_back(res.history.back());
    }
    return acc;
  };

  for (int i = 0; i < config.population_size; ++i) {
    const nb201::Genotype g = sample_feasible();
    population.push_back({g, evaluate(g)});
  }

  while (res.trained_evals < config.total_evals) {
    // Tournament parent selection.
    const Individual* parent = nullptr;
    for (int t = 0; t < config.tournament_size; ++t) {
      const Individual& cand = population[rng.index(population.size())];
      if (parent == nullptr || cand.fitness > parent->fitness) parent = &cand;
    }

    // One-edge mutation with constraint rejection.
    nb201::Genotype child = nb201::mutate(parent->genotype, rng);
    for (int tries = 0;
         tries < config.max_resample && !feasible(child, config.constraints, engine);
         ++tries) {
      child = nb201::mutate(parent->genotype, rng);
    }
    if (!feasible(child, config.constraints, engine)) child = sample_feasible();

    population.push_back({child, evaluate(child)});
    population.pop_front();  // aging: retire the oldest individual
  }

  res.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

EvolutionSearchResult evolution_search(const nb201::SurrogateOracle& oracle,
                                       const EvolutionSearchConfig& config,
                                       const MacroNetConfig& deploy,
                                       const LatencyEstimator* estimator, Rng& rng) {
  const ProxyEvalEngine engine(deploy, estimator, EvalEngineConfig{});  // serial + cached
  return evolution_search(oracle, config, engine, rng);
}

}  // namespace micronas
