// Random search with proxy scoring — the standard sanity baseline for
// NAS ablations: sample N architectures, score each with the full
// indicator suite, keep the hybrid-objective winner under constraints.
#pragma once

#include "src/search/eval_engine.hpp"
#include "src/search/objective.hpp"

namespace micronas {

struct RandomSearchConfig {
  int num_samples = 50;
  IndicatorWeights weights;
  Constraints constraints;
};

struct RandomSearchResult {
  nb201::Genotype genotype;
  IndicatorValues indicators;
  long long proxy_evals = 0;  // scoring requests (cache hits included)
  double wall_seconds = 0.0;
};

/// Sample with `rng`, score the whole batch through `engine` (parallel
/// and memoized per the engine config). The sampled set and the winner
/// are independent of the engine's thread count.
RandomSearchResult random_search(const ProxyEvalEngine& engine, const RandomSearchConfig& config,
                                 Rng& rng);

/// Convenience wrapper: serial cached engine over `suite`, seeded from
/// `rng`.
RandomSearchResult random_search(const ProxySuite& suite, const RandomSearchConfig& config,
                                 Rng& rng);

}  // namespace micronas
