// Random search with proxy scoring — the standard sanity baseline for
// NAS ablations: sample N architectures, score each with the full
// indicator suite, keep the hybrid-objective winner under constraints.
#pragma once

#include "src/search/objective.hpp"

namespace micronas {

struct RandomSearchConfig {
  int num_samples = 50;
  IndicatorWeights weights;
  Constraints constraints;
};

struct RandomSearchResult {
  nb201::Genotype genotype;
  IndicatorValues indicators;
  long long proxy_evals = 0;
  double wall_seconds = 0.0;
};

RandomSearchResult random_search(const ProxySuite& suite, const RandomSearchConfig& config,
                                 Rng& rng);

}  // namespace micronas
