#include "src/search/cost_model.hpp"

#include <stdexcept>

namespace micronas {

double search_efficiency_ratio(double baseline_gpu_hours, double ours_gpu_hours) {
  if (baseline_gpu_hours < 0.0 || ours_gpu_hours <= 0.0) {
    throw std::invalid_argument("search_efficiency_ratio: hours must be positive");
  }
  return baseline_gpu_hours / ours_gpu_hours;
}

}  // namespace micronas
