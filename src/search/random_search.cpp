#include "src/search/random_search.hpp"

#include <chrono>
#include <stdexcept>

namespace micronas {

RandomSearchResult random_search(const ProxyEvalEngine& engine, const RandomSearchConfig& config,
                                 Rng& rng) {
  if (config.num_samples < 1) throw std::invalid_argument("random_search: num_samples >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  const long long requests0 = engine.stats().requests;

  const std::vector<nb201::Genotype> genotypes = nb201::sample_genotypes(rng, config.num_samples);
  const std::vector<IndicatorValues> values = engine.evaluate_batch(genotypes);

  const std::size_t best = select_best(values, config.weights, config.constraints);

  RandomSearchResult res;
  res.genotype = genotypes[best];
  res.indicators = values[best];
  res.proxy_evals = engine.stats().requests - requests0;
  res.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

RandomSearchResult random_search(const ProxySuite& suite, const RandomSearchConfig& config,
                                 Rng& rng) {
  EvalEngineConfig ecfg;  // serial + cached defaults
  ecfg.seed = rng.engine()();
  const ProxyEvalEngine engine(suite, ecfg);
  return random_search(engine, config, rng);
}

}  // namespace micronas
