#include "src/search/random_search.hpp"

#include <chrono>
#include <stdexcept>

namespace micronas {

RandomSearchResult random_search(const ProxySuite& suite, const RandomSearchConfig& config,
                                 Rng& rng) {
  if (config.num_samples < 1) throw std::invalid_argument("random_search: num_samples >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  const long long evals0 = suite.proxy_eval_count();

  std::vector<nb201::Genotype> genotypes = nb201::sample_genotypes(rng, config.num_samples);
  std::vector<IndicatorValues> values;
  values.reserve(genotypes.size());
  for (const auto& g : genotypes) values.push_back(suite.evaluate(g, rng));

  const std::size_t best = select_best(values, config.weights, config.constraints);

  RandomSearchResult res;
  res.genotype = genotypes[best];
  res.indicators = values[best];
  res.proxy_evals = suite.proxy_eval_count() - evals0;
  res.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace micronas
