#include "src/search/eval_engine.hpp"

#include <stdexcept>

#include "src/hw/memory_model.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/proxies/flops.hpp"

namespace micronas {

namespace {

/// Registry mirrors of the engine's atomic counters, bumped at the
/// same sites so metrics exports see live engine traffic (summed over
/// every engine in the process). Handles interned once, lazily.
struct EngineMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  obs::Counter& requests = reg.counter("eval.requests");
  obs::Counter& cache_hits = reg.counter("eval.cache_hits");
  obs::Counter& evaluations = reg.counter("eval.evaluations");
  obs::Counter& hw_requests = reg.counter("eval.hw_requests");
  obs::Counter& hw_cache_hits = reg.counter("eval.hw_cache_hits");
  obs::Counter& supernet_requests = reg.counter("eval.supernet_requests");
  obs::Counter& supernet_hits = reg.counter("eval.supernet_hits");
  obs::Counter& supernet_evals = reg.counter("eval.supernet_evals");
};

EngineMetrics& engine_metrics() {
  static EngineMetrics* m = new EngineMetrics();  // leaked: process lifetime
  return *m;
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace

EvalEngineStats operator-(const EvalEngineStats& a, const EvalEngineStats& b) {
  EvalEngineStats d;
  d.requests = a.requests - b.requests;
  d.cache_hits = a.cache_hits - b.cache_hits;
  d.evaluations = a.evaluations - b.evaluations;
  d.hw_requests = a.hw_requests - b.hw_requests;
  d.hw_cache_hits = a.hw_cache_hits - b.hw_cache_hits;
  d.supernet_requests = a.supernet_requests - b.supernet_requests;
  d.supernet_hits = a.supernet_hits - b.supernet_hits;
  d.supernet_evals = a.supernet_evals - b.supernet_evals;
  return d;
}

std::uint64_t edge_ops_hash(const EdgeOps& edge_ops) {
  std::uint64_t h = 0x0DDC0FFEEULL;
  for (const auto& ops : edge_ops) {
    h = hash_combine(h, static_cast<std::uint64_t>(ops.size()));
    for (nb201::Op op : ops) h = hash_combine(h, static_cast<std::uint64_t>(op));
  }
  return h;
}

ProxyEvalEngine::ProxyEvalEngine(const ProxySuite& suite, EvalEngineConfig config)
    : config_(config),
      threads_(resolve_threads(config.threads)),
      suite_(&suite),
      deploy_(suite.config().deploy_net),
      estimator_(suite.estimator()) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

ProxyEvalEngine::ProxyEvalEngine(const MacroNetConfig& deploy, const LatencyEstimator* estimator,
                                 EvalEngineConfig config)
    : config_(config),
      threads_(resolve_threads(config.threads)),
      deploy_(deploy),
      estimator_(estimator) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

void ProxyEvalEngine::parallel_for(std::size_t n,
                                   const std::function<void(std::size_t)>& fn) const {
  if (pool_ != nullptr) {
    pool_->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

IndicatorValues ProxyEvalEngine::compute(const nb201::Genotype& canonical) const {
  if (suite_ == nullptr) {
    throw std::logic_error("ProxyEvalEngine: analytic-only engine cannot run proxy evaluation");
  }
  // Private stream: a pure function of (engine seed, behaviour class),
  // independent of evaluation order, thread placement and cache state.
  Rng rng(hash_combine(config_.seed, canonical.stable_hash()));
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  engine_metrics().evaluations.add();
  return suite_->evaluate(canonical, rng);
}

IndicatorValues ProxyEvalEngine::compute_hardware(const nb201::Genotype& genotype) const {
  const MacroModel model = build_macro_model(genotype, deploy_);
  IndicatorValues v;
  v.flops_m = count_flops(model).total_m();
  v.params_m = count_params(model).total_m();
  const MemoryReport mem = analyze_memory(model);
  v.peak_sram_kb = mem.peak_sram_kb();
  v.streamed_sram_kb = mem.streamed_peak_sram_kb();
  v.latency_ms = estimator_ != nullptr ? estimator_->estimate_ms(model) : 0.0;
  return v;
}

IndicatorValues ProxyEvalEngine::evaluate(const nb201::Genotype& genotype) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  engine_metrics().requests.add();
  const nb201::Genotype canonical = nb201::canonicalize(genotype);
  if (!config_.cache) return compute(canonical);

  const int key = canonical.index();
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      engine_metrics().cache_hits.add();
      return it->second;
    }
  }
  // Compute outside the lock; a concurrent duplicate computes the same
  // bits (content-hash seeding), so a racing insert is benign.
  const IndicatorValues v = compute(canonical);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.emplace(key, v);
  }
  return v;
}

std::vector<IndicatorValues> ProxyEvalEngine::evaluate_batch(
    std::span<const nb201::Genotype> genotypes) const {
  obs::Span span("eval.evaluate_batch");
  span.tag("candidates", static_cast<long long>(genotypes.size()));
  std::vector<IndicatorValues> out(genotypes.size());
  parallel_for(genotypes.size(), [&](std::size_t i) { out[i] = evaluate(genotypes[i]); });
  return out;
}

IndicatorValues ProxyEvalEngine::hardware_indicators(const nb201::Genotype& genotype) const {
  hw_requests_.fetch_add(1, std::memory_order_relaxed);
  engine_metrics().hw_requests.add();
  if (!config_.cache) return compute_hardware(genotype);

  const int key = genotype.index();
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = hw_cache_.find(key);
    if (it != hw_cache_.end()) {
      hw_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      engine_metrics().hw_cache_hits.add();
      return it->second;
    }
  }
  const IndicatorValues v = compute_hardware(genotype);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    hw_cache_.emplace(key, v);
  }
  return v;
}

std::vector<IndicatorValues> ProxyEvalEngine::evaluate_supernets(
    std::span<const EdgeOps> candidates, int repeats) const {
  if (repeats < 1) throw std::invalid_argument("evaluate_supernets: repeats >= 1");
  if (suite_ == nullptr) {
    throw std::logic_error("ProxyEvalEngine: analytic-only engine cannot score supernets");
  }
  obs::Span span("eval.evaluate_supernets");
  span.tag("candidates", static_cast<long long>(candidates.size()));
  span.tag("repeats", static_cast<long long>(repeats));
  std::vector<IndicatorValues> out(candidates.size());
  parallel_for(candidates.size(), [&](std::size_t i) {
    supernet_requests_.fetch_add(1, std::memory_order_relaxed);
    engine_metrics().supernet_requests.add();
    const std::uint64_t content = edge_ops_hash(candidates[i]);
    const std::uint64_t key = hash_combine(content, static_cast<std::uint64_t>(repeats));
    if (config_.cache) {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      const auto it = supernet_cache_.find(key);
      if (it != supernet_cache_.end()) {
        supernet_hits_.fetch_add(1, std::memory_order_relaxed);
        engine_metrics().supernet_hits.add();
        out[i] = it->second;
        return;
      }
    }
    const std::uint64_t cand_seed = hash_combine(config_.seed, content);
    double ntk_acc = 0.0, lr_acc = 0.0;
    for (int r = 0; r < repeats; ++r) {
      Rng rng(hash_combine(cand_seed, static_cast<std::uint64_t>(r)));
      const IndicatorValues single = suite_->evaluate_supernet(candidates[i], rng);
      ntk_acc += single.ntk_condition;
      lr_acc += single.linear_regions;
    }
    out[i].ntk_condition = ntk_acc / repeats;
    out[i].linear_regions = lr_acc / repeats;
    supernet_evals_.fetch_add(repeats, std::memory_order_relaxed);
    engine_metrics().supernet_evals.add(static_cast<std::uint64_t>(repeats));
    if (config_.cache) {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      supernet_cache_.emplace(key, out[i]);
    }
  });
  return out;
}

void ProxyEvalEngine::clear_cache() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
  hw_cache_.clear();
  supernet_cache_.clear();
}

EvalEngineStats ProxyEvalEngine::stats() const {
  EvalEngineStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.hw_requests = hw_requests_.load(std::memory_order_relaxed);
  s.hw_cache_hits = hw_cache_hits_.load(std::memory_order_relaxed);
  s.supernet_requests = supernet_requests_.load(std::memory_order_relaxed);
  s.supernet_hits = supernet_hits_.load(std::memory_order_relaxed);
  s.supernet_evals = supernet_evals_.load(std::memory_order_relaxed);
  // Publish derived hit rates as gauges whenever anyone snapshots the
  // stats, so a metrics export after a search reports current rates.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.gauge("eval.hit_rate").set(s.hit_rate());
  reg.gauge("eval.hw_hit_rate").set(s.hw_hit_rate());
  reg.gauge("eval.supernet_hit_rate").set(s.supernet_hit_rate());
  reg.gauge("eval.overall_hit_rate").set(s.overall_hit_rate());
  return s;
}

}  // namespace micronas
