// Hybrid objective function (paper contribution #2).
//
// Within a candidate set, each indicator is converted to an ordinal
// rank (κ ascending — lower is more trainable; linear regions
// descending — higher is more expressive; FLOPs and latency ascending —
// cheaper is better) and candidates are scored by the weighted rank
// sum. Rank combination makes indicators with wildly different scales
// commensurable, following TE-NAS, and the hardware weights are the
// tunable knobs the paper's §III adapts per constraint level.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/nb201/space.hpp"
#include "src/proxies/proxy_suite.hpp"

namespace micronas {

/// Per-indicator weights of the hybrid rank-sum objective. The two
/// trainless terms default to 1 (TE-NAS parity); the hardware terms
/// default to 0 and are the knobs the adaptive outer loop escalates
/// when a constraint is violated.
struct IndicatorWeights {
  double ntk = 1.0;             // trainability (κ rank, ascending)
  double linear_regions = 1.0;  // expressivity (LR rank, descending)
  double flops = 0.0;           // compute pressure (normalized magnitude)
  double latency = 0.0;         // on-device pressure (normalized magnitude)

  /// TE-NAS-style trainless baseline (no hardware terms).
  static IndicatorWeights te_nas() { return {1.0, 1.0, 0.0, 0.0}; }
  /// FLOPs-guided MicroNAS.
  static IndicatorWeights flops_guided(double w = 1.0) { return {1.0, 1.0, w, 0.0}; }
  /// Latency-guided MicroNAS (the paper's best configuration).
  static IndicatorWeights latency_guided(double w = 1.0) { return {1.0, 1.0, 0.0, w}; }
};

/// Hard resource constraints; unset fields are unconstrained.
struct Constraints {
  std::optional<double> max_latency_ms;  // end-to-end MCU inference budget
  std::optional<double> max_flops_m;     // compute budget (millions)
  std::optional<double> max_params_m;    // flash budget (millions of weights)
  std::optional<double> max_sram_kb;     // peak live-activation budget
  /// When true, max_sram_kb bounds the row-strip-streamed peak
  /// (IndicatorValues::streamed_sram_kb) instead of the plain peak —
  /// admitting cells the deployment compiler can fit into the budget
  /// via rung-3 streaming (plan_memory's arena_budget). Candidates
  /// that never computed the streamed figure (streamed_sram_kb == 0,
  /// e.g. records reconstructed from older caches) fall back to the
  /// plain peak, which is always an upper bound.
  bool sram_streaming = false;

  /// The SRAM figure max_sram_kb applies to for candidate `v`.
  double bound_sram_kb(const IndicatorValues& v) const {
    return sram_streaming && v.streamed_sram_kb > 0.0 ? v.streamed_sram_kb : v.peak_sram_kb;
  }

  /// True when `v` violates no set bound.
  bool satisfied_by(const IndicatorValues& v) const;
  /// True when at least one bound is set.
  bool any() const {
    return max_latency_ms || max_flops_m || max_params_m || max_sram_kb;
  }
};

/// Fixed normalization scales for the hardware magnitudes. Without a
/// fixed scale the hardware term renormalizes every pruning round and
/// keeps maximal pressure on whatever is currently most expensive,
/// cascading into the degenerate all-cheap cell; anchoring to the full
/// supernet's expected cost makes the pressure proportional to the
/// *absolute* savings, which fades out once the cell is cheap.
/// Zero fields fall back to the per-candidate-set maximum.
struct ObjectiveScales {
  double flops_m = 0.0;
  double latency_ms = 0.0;
};

/// Weighted rank-sum scores (lower is better), one per candidate.
/// NTK/LR enter as ordinal ranks, FLOPs/latency as normalized
/// magnitudes scaled to rank units (see ObjectiveScales).
std::vector<double> hybrid_rank_scores(std::span<const IndicatorValues> candidates,
                                       const IndicatorWeights& weights,
                                       const ObjectiveScales& scales = {});

/// Index of the best candidate by hybrid score; constraint-violating
/// candidates lose to any feasible one. Throws on empty input.
std::size_t select_best(std::span<const IndicatorValues> candidates,
                        const IndicatorWeights& weights, const Constraints& constraints);

/// Analytic hardware expectation for a supernet: the mean deployment
/// cost over the remaining per-edge op choices (exact expectation of a
/// uniform sample from the op-set). Cheap — no proxy net is built.
struct SupernetHwExpectation {
  double flops_m = 0.0;
  double latency_ms = 0.0;
};

/// Precomputed per-(stage, op) deployment costs enabling O(edges · ops)
/// expectation queries during pruning — no macro model is built per
/// candidate.
class SupernetHwModel {
 public:
  /// `estimator` may be null (latency expectation reported as 0).
  SupernetHwModel(const MacroNetConfig& config, const LatencyEstimator* estimator);

  /// Expected deployment cost of a uniform sample from `opset`.
  SupernetHwExpectation expectation(const nb201::OpSet& opset) const;

 private:
  // Per (stage, op) deployment cost of placing `op` on one cell edge.
  std::array<std::array<double, nb201::kNumOps>, 8> flops_m_{};
  std::array<std::array<double, nb201::kNumOps>, 8> latency_ms_{};
  double fixed_flops_m_ = 0.0;    // stem + reductions + head
  double fixed_latency_ms_ = 0.0;
  int num_stages_ = 0;
  int cells_per_stage_ = 0;
};

}  // namespace micronas
