// Search-cost accounting in GPU-hours (DESIGN.md §3.4).
//
// The paper compares search cost across frameworks whose evaluation
// unit differs by orders of magnitude: µNAS *trains* every candidate,
// while TE-NAS and MicroNAS run trainless proxies. We account both in
// modeled GPU-hours with constants calibrated to the paper's Table I
// (552 GPU-h for a 1000-evaluation trained search; 0.43 GPU-h for an
// 84-evaluation proxy search), and additionally report measured wall
// time for transparency.
#pragma once

namespace micronas {

struct CostModel {
  /// GPU-hours to train + evaluate one candidate (µNAS-style).
  double trained_eval_gpu_hours = 0.552;
  /// GPU-hours per trainless proxy evaluation (TE-NAS/MicroNAS-style;
  /// 0.43 GPU-h / 84 supernet evaluations).
  double proxy_eval_gpu_hours = 0.43 / 84.0;

  double trained_search_gpu_hours(long long evals) const {
    return trained_eval_gpu_hours * static_cast<double>(evals);
  }
  double proxy_search_gpu_hours(long long evals) const {
    return proxy_eval_gpu_hours * static_cast<double>(evals);
  }
};

/// Search efficiency ratio (the paper's "1104× improvement").
double search_efficiency_ratio(double baseline_gpu_hours, double ours_gpu_hours);

}  // namespace micronas
