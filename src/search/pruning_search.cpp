#include "src/search/pruning_search.hpp"

#include <chrono>
#include <stdexcept>

#include "src/common/log.hpp"
#include "src/nb201/features.hpp"

namespace micronas {

namespace {

/// A supernet is connected if input reaches output through edges that
/// still carry at least one signal op. Removals that sever every path
/// are invalid: they can only produce untrainable chance-level cells,
/// which no deployment-oriented search should ever select.
bool supernet_connected(const nb201::OpSet& opset) {
  nb201::Genotype probe;
  for (int e = 0; e < nb201::kNumEdges; ++e) {
    const auto& ops = opset.ops_on_edge(e);
    const bool carries = std::any_of(ops.begin(), ops.end(), nb201::op_carries_signal);
    probe.set_op(e, carries ? nb201::Op::kSkipConnect : nb201::Op::kNone);
  }
  return nb201::analyze_cell(probe).connected;
}

}  // namespace

PruningSearchResult pruning_search(const ProxyEvalEngine& engine, const SupernetHwModel& hw_model,
                                   const PruningSearchConfig& config) {
  if (config.proxy_repeats < 1) throw std::invalid_argument("pruning_search: proxy_repeats >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  long long candidates_evaluated = 0;

  PruningSearchResult result;
  nb201::OpSet opset = nb201::OpSet::full();

  // Anchor the hardware-magnitude normalization to the full supernet's
  // expected cost so the hardware pressure is proportional to absolute
  // savings across all rounds (see ObjectiveScales).
  const SupernetHwExpectation full_cost = hw_model.expectation(opset);
  ObjectiveScales scales;
  scales.flops_m = full_cost.flops_m;
  scales.latency_ms = full_cost.latency_ms;

  int round = 0;
  while (!opset.is_singleton()) {
    // Candidate = one (edge, op) removal. Gather this round's candidate
    // supernets, score them as one parallel engine batch, then rank
    // them jointly.
    struct Candidate {
      int edge;
      nb201::Op op;
    };
    std::vector<Candidate> candidates;
    std::vector<EdgeOps> trials;
    std::vector<IndicatorValues> values;

    for (int e = 0; e < nb201::kNumEdges; ++e) {
      const auto ops = opset.ops_on_edge(e);  // copy: we mutate trial sets
      if (ops.size() <= 1) continue;
      for (nb201::Op op : ops) {
        nb201::OpSet trial = opset;
        trial.remove(e, op);
        if (!supernet_connected(trial)) continue;  // invalid removal

        IndicatorValues v;
        const SupernetHwExpectation hw = hw_model.expectation(trial);
        v.flops_m = hw.flops_m;
        v.latency_ms = hw.latency_ms;

        candidates.push_back({e, op});
        trials.push_back(edge_ops_from_opset(trial));
        values.push_back(v);
        ++candidates_evaluated;
      }
    }
    if (candidates.empty()) break;  // defensive: nothing left to prune

    const std::vector<IndicatorValues> proxies =
        engine.evaluate_supernets(trials, config.proxy_repeats);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i].ntk_condition = proxies[i].ntk_condition;
      values[i].linear_regions = proxies[i].linear_regions;
    }

    const auto scores = hybrid_rank_scores(values, config.weights, scales);

    // Per edge, prune the best-scoring (least important) removal that is
    // still valid *now*: earlier removals in this round may have changed
    // what this edge can afford to lose, so re-validate at application
    // time and fall back to the edge's next-best candidate.
    for (int e = 0; e < nb201::kNumEdges; ++e) {
      if (opset.ops_on_edge(e).size() <= 1) continue;
      std::vector<std::size_t> edge_candidates;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].edge == e) edge_candidates.push_back(i);
      }
      std::sort(edge_candidates.begin(), edge_candidates.end(),
                [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
      for (std::size_t i : edge_candidates) {
        nb201::OpSet trial = opset;
        trial.remove(e, candidates[i].op);
        if (!supernet_connected(trial)) continue;
        opset = std::move(trial);
        result.decisions.push_back({round, e, candidates[i].op, scores[i]});
        MICRONAS_LOG(kDebug) << "prune round " << round << ": edge " << e << " drops "
                             << nb201::op_name(candidates[i].op);
        break;
      }
    }
    ++round;
  }

  result.genotype = opset.to_genotype();
  result.proxy_evals = candidates_evaluated;  // repeats are averaging, not extra candidates
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

PruningSearchResult pruning_search(const ProxySuite& suite, const SupernetHwModel& hw_model,
                                   const PruningSearchConfig& config, Rng& rng) {
  EvalEngineConfig ecfg;  // serial + cached defaults
  ecfg.seed = rng.engine()();
  const ProxyEvalEngine engine(suite, ecfg);
  return pruning_search(engine, hw_model, config);
}

}  // namespace micronas
