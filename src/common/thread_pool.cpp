#include "src/common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace micronas {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : static_cast<int>(hc);
  }
  concurrency_ = threads;
  // The caller of parallel_for supplies one lane, so spawn one fewer
  // worker than the configured concurrency.
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline serial path: exact index order, no scheduling overhead.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared per-call state: a work cursor plus completion accounting.
  // `done` is atomic so finishing an item is lock-free; the mutex is
  // only taken to record an error or to publish the final wakeup.
  struct CallState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable finished;
  };
  auto state = std::make_shared<CallState>();

  const std::size_t jobs = std::min(workers_.size(), n - 1);
  auto drain = [state, n, &fn] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        // Take the lock before notifying so the waiter cannot check the
        // predicate and sleep between our increment and the notify.
        std::lock_guard<std::mutex> lock(state->mutex);
        state->finished.notify_all();
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // `drain` outlives this scope via the queue; `fn` is only borrowed,
    // which is safe because parallel_for blocks until every index is done.
    for (std::size_t j = 0; j < jobs; ++j) tasks_.push(drain);
  }
  task_ready_.notify_all();

  // The caller participates too, so a busy pool cannot starve the call.
  drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->finished.wait(lock, [&] { return state->done.load(std::memory_order_acquire) == n; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace micronas
