// Minimal CSV writer with RFC-4180 quoting.
//
// Benches print human-readable tables to stdout and can additionally
// persist machine-readable CSVs (plot scripts, regression tracking).
#pragma once

#include <string>
#include <vector>

namespace micronas {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);  // throws on width mismatch

  std::string to_string() const;
  void save(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

  /// Quote a single field per RFC 4180 (exposed for tests).
  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace micronas
