// Minimal JSON value — just enough for the benchmark telemetry schema
// and the observability exports (objects, arrays, strings, numbers,
// bools, null) with a strict parser and a deterministic serializer.
//
// Started life in bench/ when only the harness needed JSON; it moved
// into the library once src/obs's Chrome-trace and metrics exports
// needed the same strict round-trip guarantees. bench/ re-exports it
// into micronas::bench (see bench/harness.hpp).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace micronas::json {

class Json;
using JsonArray = std::vector<Json>;
/// std::map keeps keys sorted, so serialization is deterministic and
/// two semantically equal documents serialize identically.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                      // NOLINT(google-explicit-constructor)
  Json(double n) : type_(Type::kNumber), number_(n) {}                // NOLINT(google-explicit-constructor)
  Json(int n) : type_(Type::kNumber), number_(n) {}                   // NOLINT(google-explicit-constructor)
  Json(long long n)                                                   // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(std::size_t n)                                                 // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : type_(Type::kString), string_(s) {}           // NOLINT(google-explicit-constructor)
  Json(JsonArray a);                                                  // NOLINT(google-explicit-constructor)
  Json(JsonObject o);                                                 // NOLINT(google-explicit-constructor)

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; throws if not an object or key missing.
  const Json& at(const std::string& key) const;
  /// Object member lookup with nullptr on absence (no throw).
  const Json* find(const std::string& key) const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Strict parse of a complete document; throws std::runtime_error
  /// with a character offset on malformed input or trailing garbage.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirection keeps Json copyable while the recursive containers
  // hold incomplete-type elements during class definition.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Read/write a whole file; throw std::runtime_error on I/O failure.
Json load_json_file(const std::string& path);
void save_json_file(const Json& value, const std::string& path);

}  // namespace micronas::json
