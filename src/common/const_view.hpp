// Owns-or-views immutable constant storage.
//
// The IR's const payloads (`ir::Node::i8_data`) and the packed GEMM
// panels (`rt::PackedWeights::data`) historically were std::vectors —
// every package load copied every weight byte out of the file image.
// The .mnpkg format 64B-aligns CNST blobs relative to the file start
// precisely so a deployment can run off the mapped file instead
// (serialize::MappedPackage); a ConstView<T> is the storage type that
// makes both worlds share one code path:
//
//   * owning mode (constructed from a std::vector<T>): the view owns
//     its elements — graphs built in memory, copy-loaded packages and
//     on-the-fly repacks behave exactly as before;
//   * borrowed mode (ConstView::borrowed(ptr, n)): the view points
//     into storage someone else keeps alive — a read-only mmap of a
//     .mnpkg. The *caller* owns the lifetime contract: the mapping
//     must outlive every graph/executor that references it (the
//     registry enforces this with shared_ptr aliasing; see
//     serialize::MappedPackage and docs/ARCHITECTURE.md).
//
// Read access is the std::vector subset the runtime and tests already
// use (data/size/empty/operator[]/iteration/operator==); there is no
// mutable access — constants are immutable by construction, which is
// also what makes sharing one mapping across executors race-free.
#pragma once

#include <cstddef>
#include <vector>

namespace micronas {

template <typename T>
class ConstView {
 public:
  using value_type = T;

  ConstView() = default;

  /// Owning mode. Implicit on purpose: every site that used to assign
  /// a std::vector into the field keeps compiling unchanged.
  ConstView(std::vector<T> data)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(data)), ptr_(owned_.data()), size_(owned_.size()), owns_(true) {}

  /// Borrowed mode: view `size` elements at `data` without copying.
  /// The caller guarantees the storage outlives the view.
  static ConstView borrowed(const T* data, std::size_t size) {
    ConstView v;
    v.ptr_ = data;
    v.size_ = size;
    return v;
  }

  ConstView(const ConstView& o) { *this = o; }
  ConstView& operator=(const ConstView& o) {
    if (this == &o) return *this;
    owned_ = o.owned_;
    owns_ = o.owns_;
    ptr_ = owns_ ? owned_.data() : o.ptr_;
    size_ = o.size_;
    return *this;
  }
  ConstView(ConstView&& o) noexcept { *this = std::move(o); }
  ConstView& operator=(ConstView&& o) noexcept {
    if (this == &o) return *this;
    owns_ = o.owns_;
    size_ = o.size_;
    owned_ = std::move(o.owned_);
    ptr_ = owns_ ? owned_.data() : o.ptr_;
    o.owned_.clear();
    o.ptr_ = nullptr;
    o.size_ = 0;
    o.owns_ = false;
    return *this;
  }

  const T* data() const { return ptr_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const { return ptr_[i]; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + size_; }

  /// True when this view points into external storage (an mmap) rather
  /// than owning its elements — what the zero-copy tests assert.
  bool is_borrowed() const { return !owns_ && ptr_ != nullptr; }

  /// Element-wise equality regardless of ownership mode.
  friend bool operator==(const ConstView& a, const ConstView& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.ptr_[i] == b.ptr_[i])) return false;
    }
    return true;
  }

 private:
  std::vector<T> owned_;
  const T* ptr_ = nullptr;
  std::size_t size_ = 0;
  bool owns_ = false;
};

}  // namespace micronas
