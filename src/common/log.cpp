#include "src/common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace micronas {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Startup level: MICRONAS_LOG_LEVEL env var when set and valid
/// (silently falls back on garbage — the logger cannot log about
/// itself before it is configured), else kInfo.
LogLevel initial_level() {
  if (const char* env = std::getenv("MICRONAS_LOG_LEVEL")) {
    try {
      return parse_log_level(env);
    } catch (const std::invalid_argument&) {
    }
  }
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_flag() {
  static std::atomic<LogLevel> g_level{initial_level()};
  return g_level;
}

}  // namespace

void set_log_level(LogLevel level) { level_flag().store(level); }
LogLevel log_level() { return level_flag().load(); }

LogLevel init_log_level_from_env() {
  const LogLevel level = initial_level();
  set_log_level(level);
  return level;
}

LogLevel parse_log_level(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(level_flag().load())) return;
  if (level == LogLevel::kOff) return;
  // One buffered fwrite per record: concurrent loggers (server worker,
  // pool threads) each land a whole line, never interleaved fragments
  // the way `std::cerr << a << b << c` chains could tear.
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[";
  line += level_name(level);
  line += "] ";
  line += msg;
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace micronas
