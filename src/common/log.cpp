#include "src/common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <iostream>
#include <stdexcept>

namespace micronas {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  if (level == LogLevel::kOff) return;
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}
}  // namespace detail

}  // namespace micronas
