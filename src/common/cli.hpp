// Tiny command-line flag parser for the examples and benches.
//
// Supports `--name value` and `--name=value` forms with typed getters
// and defaults; unknown flags are an error so typos fail fast.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace micronas {

class CliArgs {
 public:
  /// Parse argv. `known` lists accepted flag names (without `--`).
  CliArgs(int argc, const char* const* argv, const std::vector<std::string>& known);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  /// Comma-separated list flag, e.g. `--mcus m4,m7`; empty items are
  /// dropped. `fallback` is itself parsed as a comma-separated list.
  std::vector<std::string> get_list(const std::string& name, const std::string& fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Split a comma-separated string; empty items are dropped. The
  /// list-flag parsing above and non-flag callers (bench suites) share
  /// this one implementation.
  static std::vector<std::string> split_csv(const std::string& joined);

  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace micronas
