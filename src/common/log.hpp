// Minimal leveled logging to stderr.
//
// Benches and examples print their tabular *results* to stdout; all
// diagnostics go through this logger so result streams stay parseable.
#pragma once

#include <sstream>
#include <string>

namespace micronas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: LOG(kInfo) << "x = " << x;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { detail::log_emit(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace micronas

#define MICRONAS_LOG(level) ::micronas::LogStream(::micronas::LogLevel::level)
