// Minimal leveled logging to stderr.
//
// Benches and examples print their tabular *results* to stdout; all
// diagnostics go through this logger so result streams stay parseable.
// Each record is emitted with a single buffered fwrite, so lines from
// concurrent threads (server worker, thread pool) never interleave
// mid-record. The startup level honors the MICRONAS_LOG_LEVEL
// environment variable ("debug"/"info"/"warn"/"error"/"off").
#pragma once

#include <sstream>
#include <string>

namespace micronas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Re-apply the MICRONAS_LOG_LEVEL environment variable (already
/// applied automatically at startup); returns the resulting level.
/// Exposed so tests can exercise the env parsing after setenv().
LogLevel init_log_level_from_env();

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: LOG(kInfo) << "x = " << x;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { detail::log_emit(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace micronas

#define MICRONAS_LOG(level) ::micronas::LogStream(::micronas::LogLevel::level)
