#include "src/common/rng.hpp"

#include <cmath>
#include <numbers>

namespace micronas {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork(std::uint64_t salt) {
  const std::uint64_t base = engine_();
  return Rng(splitmix64(base ^ splitmix64(salt)));
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (splitmix64(b) + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

double hash_to_uniform(std::uint64_t h) {
  // Take the top 53 bits for a uniform double in [0,1).
  return static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
}

double hash_to_normal(std::uint64_t h) {
  // Box–Muller on two independent uniforms derived from h.
  const double u1 = hash_to_uniform(h);
  const double u2 = hash_to_uniform(splitmix64(h ^ 0xA5A5A5A5A5A5A5A5ULL));
  const double r = std::sqrt(-2.0 * std::log(u1 + 1e-300));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t fnv1a64(std::uint64_t state, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= 0x100000001B3ULL;
  }
  return state;
}

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  return fnv1a64(kFnv1a64Basis, data, n);
}

}  // namespace micronas
