#include "src/common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace micronas {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("CsvWriter: header required");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) throw std::invalid_argument("CsvWriter: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream ss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) ss << ",";
      ss << escape(row[i]);
    }
    ss << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return ss.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvWriter::save: cannot open " + path);
  out << to_string();
}

}  // namespace micronas
