#include "src/common/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace micronas {

CliArgs::CliArgs(int argc, const char* const* argv, const std::vector<std::string>& known) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(tok);
      continue;
    }
    tok = tok.substr(2);
    std::string name;
    std::string value;
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      name = tok.substr(0, eq);
      value = tok.substr(eq + 1);
    } else {
      name = tok;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare flag treated as boolean
      }
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    values_[name] = value;
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::optional<std::string> CliArgs::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  const auto v = raw(name);
  return v ? std::stoi(*v) : fallback;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  return v ? std::stod(*v) : fallback;
}

std::vector<std::string> CliArgs::get_list(const std::string& name,
                                           const std::string& fallback) const {
  return split_csv(get_string(name, fallback));
}

std::vector<std::string> CliArgs::split_csv(const std::string& joined) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= joined.size()) {
    const std::size_t comma = joined.find(',', start);
    const std::size_t end = comma == std::string::npos ? joined.size() : comma;
    if (end > start) out.push_back(joined.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

}  // namespace micronas
