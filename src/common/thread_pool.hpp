// Fixed-size worker pool for data-parallel candidate scoring.
//
// The pool is deliberately minimal: `parallel_for` partitions an index
// range over the workers via an atomic cursor, so work items of uneven
// cost (NTK on cells of very different size) balance dynamically.
// Determinism is the caller's job — work items must not share mutable
// state, and any randomness must be derived from the item index or a
// content hash, never from a shared sequential stream (see
// search/eval_engine.hpp for the seeding discipline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace micronas {

class ThreadPool {
 public:
  /// `threads` worker threads; 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured concurrency. The pool spawns size()-1 workers; the
  /// thread calling parallel_for is the size()-th lane, so a pool of N
  /// never runs more than N work items at once.
  int size() const { return concurrency_; }

  /// Run `fn(i)` for every i in [0, n), distributing indices over the
  /// workers. Blocks until all items complete. The first exception
  /// thrown by any item is rethrown in the caller (remaining items are
  /// still drained so the pool stays usable). With n == 0 returns
  /// immediately; with one worker the items run in index order.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  int concurrency_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stop_ = false;
};

}  // namespace micronas
