// Deterministic random number generation utilities.
//
// All stochastic components of MicroNAS (weight initialization, data
// synthesis, search tie-breaking, simulator jitter) draw from an
// explicitly seeded Rng so that every experiment in bench/ is exactly
// reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace micronas {

/// Deterministic pseudo-random source wrapping a 64-bit Mersenne twister.
///
/// A thin, value-semantic wrapper so that components can hold their own
/// independent stream (split via `fork`) instead of sharing hidden
/// global state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal (mean 0, stddev 1) scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fill a span with i.i.d. normal samples.
  void fill_normal(std::span<float> out, float mean = 0.0F, float stddev = 1.0F) {
    std::normal_distribution<float> dist(mean, stddev);
    for (auto& v : out) v = dist(engine_);
  }

  /// Fill a span with i.i.d. uniform samples in [lo, hi).
  void fill_uniform(std::span<float> out, float lo, float hi) {
    std::uniform_real_distribution<float> dist(lo, hi);
    for (auto& v : out) v = dist(engine_);
  }

  /// Sample k distinct indices from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derive an independent child stream; deterministic given (this, salt).
  Rng fork(std::uint64_t salt);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 step — used for stateless hashing of seeds and arch ids.
std::uint64_t splitmix64(std::uint64_t x);

/// Stateless hash combining (used by the surrogate oracle for
/// deterministic per-architecture noise).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// Map a 64-bit hash to a deterministic standard normal value.
double hash_to_normal(std::uint64_t h);

/// Map a 64-bit hash to a deterministic uniform in [0,1).
double hash_to_uniform(std::uint64_t h);

/// FNV-1a over a byte range — the one stable content hash the repo
/// uses (preset-name seeds, ReLU-pattern counting, compiled-logits
/// golden hashes). Never std::hash: results must not depend on the
/// standard library implementation.
std::uint64_t fnv1a64(const void* data, std::size_t n);

/// Chained form with an explicit running state, for hashes over
/// discontiguous ranges (e.g. a file checksum that skips its own
/// storage field). Seed with kFnv1a64Basis for the first range.
inline constexpr std::uint64_t kFnv1a64Basis = 0xCBF29CE484222325ULL;
std::uint64_t fnv1a64(std::uint64_t state, const void* data, std::size_t n);

}  // namespace micronas
