// Simple key=value configuration store with file round-trip.
//
// Used to persist profiling/calibration artifacts (e.g. the latency
// lookup table header) in a human-diffable text format.
#pragma once

#include <map>
#include <string>

namespace micronas {

/// Ordered string->string map with typed accessors and `#` comments.
class Config {
 public:
  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, long long value);
  void set_double(const std::string& key, double value);

  bool has(const std::string& key) const;
  std::string get(const std::string& key) const;                  // throws if absent
  std::string get_or(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key) const;                // throws if absent/bad
  double get_double(const std::string& key) const;                // throws if absent/bad

  /// Serialize as `key = value` lines, keys sorted.
  std::string to_string() const;
  /// Parse `key = value` lines; `#`-prefixed lines and blanks ignored.
  static Config parse(const std::string& text);

  void save(const std::string& path) const;
  static Config load(const std::string& path);

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace micronas
