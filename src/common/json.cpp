#include "src/common/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace micronas::json {

Json::Json(JsonArray a) : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}
Json::Json(JsonObject o)
    : type_(Type::kObject), object_(std::make_shared<JsonObject>(std::move(o))) {}

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("json: expected ") + want + ", got type #" +
                           std::to_string(static_cast<int>(got)));
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return *array_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return *object_;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) throw std::runtime_error("json: missing key '" + key + "'");
  return *found;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

// ----------------------------------------------------------- serialize

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null round-trips as "absent measurement".
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (array_->empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Json& item : *array_) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_->empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : *object_) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

// --------------------------------------------------------------- parse

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The telemetry schema is ASCII; encode BMP code points as
          // UTF-8 so parse(dump(x)) is lossless for what we emit.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    // strtod over a NUL-terminated copy: floating-point from_chars is
    // still missing from libc++ on current AppleClang toolchains.
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(token.c_str(), &end);
    // ERANGE underflow (subnormals, which %.17g legitimately emits)
    // returns the best denormal approximation — accept it; only
    // overflow and trailing garbage are malformed.
    const bool overflow = errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL);
    if (overflow || end != token.c_str() + token.size()) fail("malformed number");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

Json load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Json::parse(ss.str());
}

void save_json_file(const Json& value, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << value.dump(2);
  if (!out) throw std::runtime_error("short write to " + path);
}

}  // namespace micronas::json
