#include "src/common/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace micronas {

namespace {
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}
}  // namespace

void Config::set(const std::string& key, const std::string& value) { entries_[key] = value; }

void Config::set_int(const std::string& key, long long value) { entries_[key] = std::to_string(value); }

void Config::set_double(const std::string& key, double value) {
  std::ostringstream ss;
  ss.precision(17);
  ss << value;
  entries_[key] = ss.str();
}

bool Config::has(const std::string& key) const { return entries_.count(key) > 0; }

std::string Config::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) throw std::out_of_range("Config: missing key '" + key + "'");
  return it->second;
}

std::string Config::get_or(const std::string& key, const std::string& fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

long long Config::get_int(const std::string& key) const { return std::stoll(get(key)); }

double Config::get_double(const std::string& key) const { return std::stod(get(key)); }

std::string Config::to_string() const {
  std::ostringstream ss;
  for (const auto& [k, v] : entries_) ss << k << " = " << v << "\n";
  return ss.str();
}

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("Config: malformed line " + std::to_string(lineno) + ": " + line);
    }
    cfg.set(trim(t.substr(0, eq)), trim(t.substr(eq + 1)));
  }
  return cfg;
}

void Config::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Config: cannot open for write: " + path);
  out << to_string();
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace micronas
