// Calibration-based post-training int8 quantization.
//
// The pass runs the (folded + fused) float graph on a handful of
// calibration batches through the unplanned reference executor,
// records per-value activation ranges, and rewrites the graph into the
// integer domain:
//
//   input -> quantize -> {qconv2d / qadd / qavg_pool / qgap / qlinear /
//   qrelu}* -> dequantize -> f32 logits
//
// Activations are asymmetric per-tensor (zero point nudged onto the
// int8 grid), weights symmetric per-output-channel, biases int32 at
// scale in_scale * w_scale[c], and every requantization goes through
// hw/quant's fixed-point multiplier — no float arithmetic survives
// between the quantize and dequantize endpoints, which is what makes
// inference bit-identical across runs and thread counts.
#pragma once

#include <vector>

#include "src/compile/pass_manager.hpp"
#include "src/hw/quant.hpp"
#include "src/tensor/tensor.hpp"

namespace micronas::compile {

struct QuantizePassOptions {
  QuantSpec spec;   // must be 8-bit
  int threads = 1;  // calibration executor concurrency
};

class QuantizePass final : public Pass {
 public:
  /// `calibration` batches must match the graph's input type.
  QuantizePass(std::vector<Tensor> calibration, QuantizePassOptions options = {});

  std::string name() const override { return "int8-ptq"; }
  bool run(ir::Graph& graph) override;

 private:
  std::vector<Tensor> calibration_;
  QuantizePassOptions options_;
};

}  // namespace micronas::compile
