// The float-graph optimization passes.
//
//   constant-fold  — evaluates everything computable at compile time:
//                    batch-norm parameter chains collapse into
//                    channel-affine scale/shift vectors, `none`-edge
//                    zero constants vanish from node sums, and any
//                    all-constant subgraph is executed once with the
//                    runtime's own f32 kernels (so folding is exact).
//   fuse-conv-bn-relu — folds channel affines into conv weights/bias
//                    and absorbs trailing ReLUs into the conv's fused
//                    activation, the classic deployment fusion.
//   dce            — drops nodes unreachable from the output (orphaned
//                    weights, BN parameters, replaced ops).
//   schedule-reorder — permutes the (topological) node list to shrink
//                    the planned arena: list scheduling with a
//                    memory-pressure cost over the liveness intervals
//                    the planner derives. Runs last (after quantize,
//                    before weight packing — packed weights are keyed
//                    by node id) and keeps the new order only when the
//                    planner proves it strictly smaller, so graphs
//                    where reordering cannot help are byte-stable.
//
// Passes rewrite via a replacement map and leave dead nodes behind;
// run dce afterwards to reclaim them (the canonical pipeline in
// src/compile/compiler.cpp does).
#pragma once

#include "src/compile/pass_manager.hpp"
#include "src/rt/memory_planner.hpp"

namespace micronas::compile {

class ConstantFoldPass final : public Pass {
 public:
  std::string name() const override { return "constant-fold"; }
  bool run(ir::Graph& graph) override;
};

class FuseConvBnReluPass final : public Pass {
 public:
  std::string name() const override { return "fuse-conv-bn-relu"; }
  bool run(ir::Graph& graph) override;
};

class DeadCodeElimPass final : public Pass {
 public:
  std::string name() const override { return "dce"; }
  bool run(ir::Graph& graph) override;
};

class ScheduleReorderPass final : public Pass {
 public:
  /// `plan_options` are the deployment plan's options, so the
  /// before/after arena comparison measures exactly what the compiler
  /// will plan — except arena_budget, which is ignored here (the guard
  /// plans must never throw or stream).
  explicit ScheduleReorderPass(rt::MemoryPlanOptions plan_options = {})
      : plan_options_(plan_options) {
    plan_options_.arena_budget = 0;
  }
  std::string name() const override { return "schedule-reorder"; }
  bool run(ir::Graph& graph) override;

 private:
  rt::MemoryPlanOptions plan_options_;
};

}  // namespace micronas::compile
