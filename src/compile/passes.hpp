// The float-graph optimization passes.
//
//   constant-fold  — evaluates everything computable at compile time:
//                    batch-norm parameter chains collapse into
//                    channel-affine scale/shift vectors, `none`-edge
//                    zero constants vanish from node sums, and any
//                    all-constant subgraph is executed once with the
//                    runtime's own f32 kernels (so folding is exact).
//   fuse-conv-bn-relu — folds channel affines into conv weights/bias
//                    and absorbs trailing ReLUs into the conv's fused
//                    activation, the classic deployment fusion.
//   dce            — drops nodes unreachable from the output (orphaned
//                    weights, BN parameters, replaced ops).
//
// Passes rewrite via a replacement map and leave dead nodes behind;
// run dce afterwards to reclaim them (the canonical pipeline in
// src/compile/compiler.cpp does).
#pragma once

#include "src/compile/pass_manager.hpp"

namespace micronas::compile {

class ConstantFoldPass final : public Pass {
 public:
  std::string name() const override { return "constant-fold"; }
  bool run(ir::Graph& graph) override;
};

class FuseConvBnReluPass final : public Pass {
 public:
  std::string name() const override { return "fuse-conv-bn-relu"; }
  bool run(ir::Graph& graph) override;
};

class DeadCodeElimPass final : public Pass {
 public:
  std::string name() const override { return "dce"; }
  bool run(ir::Graph& graph) override;
};

}  // namespace micronas::compile
