#include "src/compile/compiler.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "src/compile/passes.hpp"
#include "src/compile/quantize.hpp"
#include "src/data/synthetic.hpp"
#include "src/obs/trace.hpp"

namespace micronas::compile {

namespace {

std::vector<Tensor> make_calibration_batches(const CompilerOptions& options) {
  DatasetSpec spec;
  spec.channels = options.macro.input_channels;
  spec.height = options.macro.input_size;
  spec.width = options.macro.input_size;
  spec.num_classes = options.macro.num_classes;
  Rng rng(splitmix64(options.seed ^ 0x5EED5EEDULL));
  SyntheticDataset data(spec, rng);
  std::vector<Tensor> batches;
  batches.reserve(static_cast<std::size_t>(options.calibration_batches));
  for (int i = 0; i < options.calibration_batches; ++i) {
    batches.push_back(data.sample_batch(options.batch, rng).images);
  }
  return batches;
}

}  // namespace

rt::MemoryPlan CompiledModel::plan_for_batch(int batch_capacity,
                                             rt::MemoryPlanOptions options) const {
  options.batch = batch_capacity;
  return rt::plan_memory(graph, options);
}

CompiledModel compile_genotype(const nb201::Genotype& genotype, const CompilerOptions& options) {
  if (options.quantize && !(options.fold && options.fuse)) {
    throw std::invalid_argument(
        "compile_genotype: int8 quantization requires fold and fuse enabled");
  }

  CompiledModel model;
  CompileReport& report = model.report;
  report.arch = genotype.to_string();

  ir::LowerOptions lower;
  lower.macro = options.macro;
  lower.batch = options.batch;
  lower.seed = options.seed;
  {
    OBS_SPAN("compile.lower");
    model.graph = ir::lower_genotype(genotype, lower);
  }
  report.lowered_nodes = model.graph.size();
  report.lowered_executed = model.graph.executed_node_count();

  PassManager pm;
  if (options.fold) pm.add(std::make_unique<ConstantFoldPass>());
  if (options.fuse) pm.add(std::make_unique<FuseConvBnReluPass>());
  if (options.fold || options.fuse) pm.add(std::make_unique<DeadCodeElimPass>());
  if (options.quantize) {
    QuantizePassOptions qopts;
    qopts.spec = options.quant;
    qopts.threads = options.threads;
    pm.add(std::make_unique<QuantizePass>(make_calibration_batches(options), qopts));
    pm.add(std::make_unique<DeadCodeElimPass>());
  }
  // Last graph rewrite: reordering renumbers node ids, so it must run
  // before anything keyed by them (weight packing, the memory plan).
  if (options.reorder) pm.add(std::make_unique<ScheduleReorderPass>(options.plan));
  {
    OBS_SPAN("compile.passes");
    report.passes = pm.run(model.graph);
  }
  report.final_nodes = model.graph.size();
  report.final_executed = model.graph.executed_node_count();
  report.const_bytes = model.graph.const_bytes();

  // Pack-weights pass: choose the int8 GEMM weight layout now, at
  // package-build time, so executors (and every server that loads the
  // serialized package) skip the repack. Runs outside the PassManager
  // because it produces sidecar data rather than rewriting the graph —
  // the padded panels must not widen the IR consts the quantized graph
  // type-checks against — but is reported like any other pass.
  {
    OBS_SPAN("compile.pack_weights");
    const auto t0 = std::chrono::steady_clock::now();
    model.packed = rt::pack_graph_weights(model.graph);
    PassStat stat;
    stat.name = "pack-weights";
    stat.changed = false;  // graph untouched; layout sidecar only
    stat.nodes_before = model.graph.size();
    stat.nodes_after = model.graph.size();
    stat.wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    report.passes.push_back(std::move(stat));
  }

  {
    OBS_SPAN("compile.plan_memory");
    model.plan = rt::plan_memory(model.graph, options.plan);
  }
  report.arena_bytes = model.plan.arena_bytes;
  report.naive_arena_bytes = model.plan.naive_bytes;
  report.memory_plan = model.plan.to_string(model.graph);

  // Validate the plan against the analytic memory model's prediction
  // for the same (possibly quantized) deployment model.
  const MacroModel macro = build_macro_model(genotype, options.macro);
  const MemoryReport predicted = options.quantize
                                     ? analyze_quantized_memory(quantize_model(macro, options.quant),
                                                                options.quant)
                                     : analyze_memory(macro);
  report.model_peak_sram_bytes = predicted.peak_sram_bytes;
  report.arena_to_model_ratio =
      predicted.peak_sram_bytes > 0
          ? static_cast<double>(report.arena_bytes) / static_cast<double>(predicted.peak_sram_bytes)
          : 0.0;
  return model;
}

std::string CompileReport::to_string(bool include_timing) const {
  std::ostringstream ss;
  char buf[160];
  ss << "compile report: " << arch << "\n";
  std::snprintf(buf, sizeof(buf), "nodes: %d -> %d (executed %d -> %d), flash %lld B\n",
                lowered_nodes, final_nodes, lowered_executed, final_executed, const_bytes);
  ss << buf;
  for (const auto& p : passes) {
    if (include_timing) {
      std::snprintf(buf, sizeof(buf), "  pass %-18s %4d -> %4d nodes%s  (%.2f ms)\n",
                    p.name.c_str(), p.nodes_before, p.nodes_after,
                    p.changed ? "  [changed]" : "", p.wall_ms);
    } else {
      std::snprintf(buf, sizeof(buf), "  pass %-18s %4d -> %4d nodes%s\n", p.name.c_str(),
                    p.nodes_before, p.nodes_after, p.changed ? "  [changed]" : "");
    }
    ss << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "arena: %lld B planned (naive %lld B), model-predicted peak %lld B, ratio %.4f\n",
                arena_bytes, naive_arena_bytes, model_peak_sram_bytes, arena_to_model_ratio);
  ss << buf;
  if (predicted_latency_ms > 0.0 || executed_latency_ms > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "latency: predicted %.3f ms (LUT estimator), executed %.3f ms (mcusim on "
                  "compiled schedule)\n",
                  predicted_latency_ms, executed_latency_ms);
    ss << buf;
  }
  ss << "memory plan:\n" << memory_plan;
  return ss.str();
}

}  // namespace micronas::compile
