#include "src/compile/pass_manager.hpp"

#include <chrono>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace micronas::compile {

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<PassStat> PassManager::run(ir::Graph& graph) const {
  std::vector<PassStat> stats;
  stats.reserve(passes_.size());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  obs::Counter& passes_run = registry.counter("compile.passes_run");
  obs::Counter& passes_changed = registry.counter("compile.passes_changed");
  obs::Histogram& pass_ms = registry.latency_histogram("compile.pass_ms");
  for (const auto& pass : passes_) {
    PassStat s;
    s.name = pass->name();
    s.nodes_before = graph.size();
    obs::Span span("compile.pass");
    span.tag("pass", s.name);
    const auto t0 = std::chrono::steady_clock::now();
    s.changed = pass->run(graph);
    const auto t1 = std::chrono::steady_clock::now();
    s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    s.nodes_after = graph.size();
    if (span.active()) {
      span.tag("changed", static_cast<long long>(s.changed ? 1 : 0));
      span.tag("nodes_after", static_cast<long long>(s.nodes_after));
    }
    passes_run.add();
    if (s.changed) passes_changed.add();
    pass_ms.observe(s.wall_ms);
    graph.validate();
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace micronas::compile
