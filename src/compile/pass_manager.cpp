#include "src/compile/pass_manager.hpp"

#include <chrono>

namespace micronas::compile {

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<PassStat> PassManager::run(ir::Graph& graph) const {
  std::vector<PassStat> stats;
  stats.reserve(passes_.size());
  for (const auto& pass : passes_) {
    PassStat s;
    s.name = pass->name();
    s.nodes_before = graph.size();
    const auto t0 = std::chrono::steady_clock::now();
    s.changed = pass->run(graph);
    const auto t1 = std::chrono::steady_clock::now();
    s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    s.nodes_after = graph.size();
    graph.validate();
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace micronas::compile
