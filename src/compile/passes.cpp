#include "src/compile/passes.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "src/rt/kernels_f32.hpp"

namespace micronas::compile {

namespace {

bool is_zero_const(const ir::Node& n) {
  if (!n.is_const() || n.type.dtype != ir::DType::kF32) return false;
  for (float v : n.f32_data.data()) {
    if (v != 0.0F) return false;
  }
  return true;
}

bool all_inputs_const(const ir::Graph& g, const ir::Node& n) {
  if (n.inputs.empty()) return false;
  for (int in : n.inputs) {
    if (!g.node(in).is_const()) return false;
  }
  return true;
}

/// Rewrite every edge (and the output) through the replacement map,
/// resolving chains a->b->c. Returns true if any edge moved.
bool apply_replacements(ir::Graph& g, const std::map<int, int>& replace) {
  if (replace.empty()) return false;
  auto resolve = [&](int id) {
    auto it = replace.find(id);
    while (it != replace.end()) {
      id = it->second;
      it = replace.find(id);
    }
    return id;
  };
  bool changed = false;
  for (int id = 0; id < g.size(); ++id) {
    ir::Node& node = g.node(id);
    for (int& in : node.inputs) {
      const int r = resolve(in);
      if (r != in) {
        in = r;
        changed = true;
      }
    }
  }
  const int out = resolve(g.output());
  if (out != g.output()) {
    g.set_output(out);
    changed = true;
  }
  return changed;
}

/// Compile-time evaluation of an all-constant node with the runtime's
/// own f32 kernels. Returns an empty Tensor for unsupported ops.
Tensor evaluate_const_node(const ir::Graph& g, const ir::Node& n) {
  const auto in = [&](std::size_t i) -> const Tensor& { return g.node(n.inputs[i]).f32_data; };
  Tensor out(n.type.shape);
  switch (n.op) {
    case ir::OpKind::kRelu:
      rt::relu_f32(in(0).data().data(), out.data().data(), out.numel());
      return out;
    case ir::OpKind::kAdd:
      rt::add_f32(in(0).data().data(), in(1).data().data(), out.data().data(), out.numel());
      return out;
    case ir::OpKind::kChannelAffine: {
      const Shape& x = in(0).shape();
      rt::channel_affine_f32(in(0).data().data(), in(1).data().data(), in(2).data().data(),
                             out.data().data(), x[0], x[1], x[2] * x[3]);
      return out;
    }
    case ir::OpKind::kAvgPool: {
      const Shape& x = in(0).shape();
      rt::avg_pool_f32(in(0).data().data(), out.data().data(), x[0], x[1], x[2], x[3],
                       n.conv.kernel, n.conv.stride, n.conv.pad, n.type.shape[2],
                       n.type.shape[3]);
      return out;
    }
    case ir::OpKind::kGlobalAvgPool: {
      const Shape& x = in(0).shape();
      rt::global_avg_pool_f32(in(0).data().data(), out.data().data(), x[0], x[1], x[2] * x[3]);
      return out;
    }
    case ir::OpKind::kConv2d: {
      const Shape& x = in(0).shape();
      const float* bias = n.inputs.size() == 3 ? in(2).data().data() : nullptr;
      rt::conv2d_f32(in(0).data().data(), in(1).data().data(), bias, out.data().data(), x[0],
                     x[1], x[2], x[3], n.type.shape[1], n.conv.kernel, n.conv.stride, n.conv.pad,
                     n.type.shape[2], n.type.shape[3], n.conv.fused_relu, nullptr);
      return out;
    }
    case ir::OpKind::kLinear: {
      const Shape& x = in(0).shape();
      const float* bias = n.inputs.size() == 3 ? in(2).data().data() : nullptr;
      rt::linear_f32(in(0).data().data(), in(1).data().data(), bias, out.data().data(), x[0],
                     x[1], n.type.shape[1]);
      return out;
    }
    default:
      return Tensor();
  }
}

}  // namespace

bool ConstantFoldPass::run(ir::Graph& graph) {
  bool changed_any = false;
  // Nodes rewritten away stay in the graph until dce; track them so a
  // later fixpoint iteration does not fold the corpse again.
  std::vector<char> dead(static_cast<std::size_t>(graph.size()), 0);
  for (bool changed = true; changed;) {
    changed = false;
    std::map<int, int> replace;
    dead.resize(static_cast<std::size_t>(graph.size()), 0);

    for (int id = 0; id < graph.size(); ++id) {
      ir::Node& node = graph.node(id);
      if (node.is_const() || node.op == ir::OpKind::kInput || dead[static_cast<std::size_t>(id)])
        continue;

      // Batch norm with constant parameters folds to a channel affine:
      // scale = γ/√(σ²+ε), shift = β − μ·scale, computed now.
      if (node.op == ir::OpKind::kBatchNorm) {
        bool params_const = true;
        for (std::size_t i = 1; i < node.inputs.size(); ++i) {
          if (!graph.node(node.inputs[i]).is_const()) params_const = false;
        }
        if (params_const) {
          const std::string bn_name = node.name;  // survives nodes_ realloc
          const Tensor& gamma = graph.node(node.inputs[1]).f32_data;
          const Tensor& beta = graph.node(node.inputs[2]).f32_data;
          const Tensor& mean = graph.node(node.inputs[3]).f32_data;
          const Tensor& var = graph.node(node.inputs[4]).f32_data;
          const int channels = gamma.shape()[0];
          Tensor scale(Shape{channels}), shift(Shape{channels});
          for (int c = 0; c < channels; ++c) {
            const float s =
                gamma[static_cast<std::size_t>(c)] /
                std::sqrt(var[static_cast<std::size_t>(c)] + static_cast<float>(node.conv.bn_eps));
            scale[static_cast<std::size_t>(c)] = s;
            shift[static_cast<std::size_t>(c)] =
                beta[static_cast<std::size_t>(c)] - mean[static_cast<std::size_t>(c)] * s;
          }
          const int s_id = graph.add_const(std::move(scale), bn_name + ".scale");
          const int b_id = graph.add_const(std::move(shift), bn_name + ".shift");
          ir::Node& bn = graph.node(id);  // add_const may reallocate nodes_
          bn.op = ir::OpKind::kChannelAffine;
          bn.inputs = {bn.inputs[0], s_id, b_id};
          changed = true;
          continue;
        }
      }

      // x + 0 == x: `none` edges lower to zero constants; their adds
      // dissolve here and dce reclaims the constants.
      if (node.op == ir::OpKind::kAdd) {
        const bool a_zero = is_zero_const(graph.node(node.inputs[0]));
        const bool b_zero = is_zero_const(graph.node(node.inputs[1]));
        if (a_zero || b_zero) {
          replace[id] = b_zero ? node.inputs[0] : node.inputs[1];
          dead[static_cast<std::size_t>(id)] = 1;
          changed = true;
          continue;
        }
      }

      // Whole-node folding: all inputs constant -> run the kernel once
      // at compile time and keep only the result.
      if (all_inputs_const(graph, node)) {
        Tensor folded = evaluate_const_node(graph, node);
        if (!folded.empty()) {
          const int c_id = graph.add_const(std::move(folded), node.name + ".folded");
          replace[id] = c_id;
          dead.resize(static_cast<std::size_t>(graph.size()), 0);
          dead[static_cast<std::size_t>(id)] = 1;
          changed = true;
          continue;
        }
      }
    }

    apply_replacements(graph, replace);
    changed_any = changed_any || changed;
  }
  return changed_any;
}

bool FuseConvBnReluPass::run(ir::Graph& graph) {
  bool changed_any = false;
  std::vector<char> dead(static_cast<std::size_t>(graph.size()), 0);
  for (bool changed = true; changed;) {
    changed = false;
    std::map<int, int> replace;
    dead.resize(static_cast<std::size_t>(graph.size()), 0);

    // Use counts over *live* nodes only: a replaced (dead) consumer
    // must not pin its producer against fusion.
    std::vector<int> uses(static_cast<std::size_t>(graph.size()), 0);
    for (int id = 0; id < graph.size(); ++id) {
      if (dead[static_cast<std::size_t>(id)]) continue;
      for (int in : graph.node(id).inputs) ++uses[static_cast<std::size_t>(in)];
    }
    ++uses[static_cast<std::size_t>(graph.output())];

    for (int id = 0; id < graph.size(); ++id) {
      ir::Node& node = graph.node(id);
      if (dead[static_cast<std::size_t>(id)]) continue;

      // conv -> channel_affine: scale the weights per output channel
      // and fold the shift into the bias.
      if (node.op == ir::OpKind::kChannelAffine) {
        const int conv_id = node.inputs[0];
        const ir::Node& conv = graph.node(conv_id);
        if (conv.op != ir::OpKind::kConv2d || conv.conv.fused_relu ||
            uses[static_cast<std::size_t>(conv_id)] != 1 ||
            !graph.node(node.inputs[1]).is_const() || !graph.node(node.inputs[2]).is_const()) {
          continue;
        }
        const std::string conv_name = conv.name;  // survives nodes_ realloc
        const Tensor& scale = graph.node(node.inputs[1]).f32_data;
        const Tensor& shift = graph.node(node.inputs[2]).f32_data;
        const ir::Node& w_const = graph.node(conv.inputs[1]);
        const Shape w_shape = w_const.type.shape;
        const int cout = w_shape[0];
        const std::size_t per_channel = w_const.f32_data.numel() / static_cast<std::size_t>(cout);

        Tensor new_w(w_shape);
        for (int c = 0; c < cout; ++c) {
          const float s = scale[static_cast<std::size_t>(c)];
          for (std::size_t k = 0; k < per_channel; ++k) {
            const std::size_t i = static_cast<std::size_t>(c) * per_channel + k;
            new_w[i] = w_const.f32_data[i] * s;
          }
        }
        Tensor new_b(Shape{cout});
        const bool had_bias = conv.inputs.size() == 3;
        for (int c = 0; c < cout; ++c) {
          const float old_b =
              had_bias ? graph.node(conv.inputs[2]).f32_data[static_cast<std::size_t>(c)] : 0.0F;
          new_b[static_cast<std::size_t>(c)] =
              old_b * scale[static_cast<std::size_t>(c)] + shift[static_cast<std::size_t>(c)];
        }
        const int w_id = graph.add_const(std::move(new_w), conv_name + ".w.fused");
        const int b_id = graph.add_const(std::move(new_b), conv_name + ".b.fused");
        ir::Node& conv_mut = graph.node(conv_id);  // re-fetch after add_const
        conv_mut.inputs = {conv_mut.inputs[0], w_id, b_id};
        replace[id] = conv_id;
        dead.resize(static_cast<std::size_t>(graph.size()), 0);
        dead[static_cast<std::size_t>(id)] = 1;
        changed = true;
        continue;
      }

      // conv -> relu: absorb into the conv's fused activation.
      if (node.op == ir::OpKind::kRelu) {
        const int conv_id = node.inputs[0];
        ir::Node& conv = graph.node(conv_id);
        if (conv.op != ir::OpKind::kConv2d || conv.conv.fused_relu ||
            uses[static_cast<std::size_t>(conv_id)] != 1) {
          continue;
        }
        conv.conv.fused_relu = true;
        replace[id] = conv_id;
        dead[static_cast<std::size_t>(id)] = 1;
        changed = true;
        continue;
      }
    }

    apply_replacements(graph, replace);
    changed_any = changed_any || changed;
  }
  return changed_any;
}

bool DeadCodeElimPass::run(ir::Graph& graph) { return graph.compact() > 0; }

bool ScheduleReorderPass::run(ir::Graph& graph) {
  // Executed nodes other than the input are the reorderable set; the
  // input always runs at step 0 and constants take no step at all.
  std::vector<int> executed;
  for (const auto& node : graph.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    executed.push_back(node.id);
  }
  if (executed.size() < 2) return false;

  const long long before = rt::plan_memory(graph, plan_options_).arena_bytes;

  // List scheduling: at each step pick the ready node with the lowest
  // memory pressure — bytes its output allocates minus bytes it frees
  // (non-const inputs for which it is the last unscheduled consumer;
  // the graph output never frees, it stays live to the end). Ties go to
  // the lowest node id, keeping the pass deterministic.
  std::vector<int> pending(static_cast<std::size_t>(graph.size()), 0);   // unscheduled deps
  std::vector<int> consumers(static_cast<std::size_t>(graph.size()), 0);  // unscheduled readers
  for (const int id : executed) {
    for (const int in : graph.node(id).inputs) {
      if (graph.node(in).is_const()) continue;
      consumers[static_cast<std::size_t>(in)]++;
      if (graph.node(in).op != ir::OpKind::kInput) pending[static_cast<std::size_t>(id)]++;
    }
  }
  std::vector<int> ready;
  for (const int id : executed) {
    if (pending[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
  }
  std::vector<int> order;
  order.reserve(executed.size());
  while (!ready.empty()) {
    std::size_t best = 0;
    long long best_cost = 0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const ir::Node& node = graph.node(ready[i]);
      long long cost = node.type.bytes();
      for (const int in : node.inputs) {
        const ir::Node& src = graph.node(in);
        if (src.is_const() || in == graph.output()) continue;
        if (consumers[static_cast<std::size_t>(in)] == 1) cost -= src.type.bytes();
      }
      if (i == 0 || cost < best_cost ||
          (cost == best_cost && ready[i] < ready[best])) {
        best = i;
        best_cost = cost;
      }
    }
    const int id = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    order.push_back(id);
    for (const int in : graph.node(id).inputs) {
      if (!graph.node(in).is_const()) consumers[static_cast<std::size_t>(in)]--;
    }
    for (const int other : executed) {
      int uses = 0;  // an op may read the same value twice (add(x, x))
      for (const int in : graph.node(other).inputs) uses += in == id ? 1 : 0;
      if (uses == 0) continue;
      if ((pending[static_cast<std::size_t>(other)] -= uses) == 0) ready.push_back(other);
    }
  }
  if (order.size() != executed.size()) {
    throw std::logic_error("schedule-reorder: list scheduling did not cover the graph");
  }
  if (order == executed) return false;

  // Rebuild the node list in the new order: input first, each node's
  // const operands right before their first consumer, stragglers (a
  // const output of a fully folded graph, say) in original order last.
  std::vector<int> remap(static_cast<std::size_t>(graph.size()), -1);
  std::vector<int> new_order;
  new_order.reserve(static_cast<std::size_t>(graph.size()));
  const auto emit = [&](int id) {
    if (remap[static_cast<std::size_t>(id)] >= 0) return;
    remap[static_cast<std::size_t>(id)] = static_cast<int>(new_order.size());
    new_order.push_back(id);
  };
  emit(graph.input());
  for (const int id : order) {
    for (const int in : graph.node(id).inputs) {
      if (graph.node(in).is_const()) emit(in);
    }
    emit(id);
  }
  for (const auto& node : graph.nodes()) emit(node.id);

  std::vector<ir::Node> nodes;
  nodes.reserve(new_order.size());
  for (const int id : new_order) {
    ir::Node node = graph.node(id);
    node.id = remap[static_cast<std::size_t>(id)];
    for (int& in : node.inputs) in = remap[static_cast<std::size_t>(in)];
    nodes.push_back(std::move(node));
  }
  ir::Graph reordered =
      ir::Graph::from_nodes(std::move(nodes), remap[static_cast<std::size_t>(graph.input())],
                            remap[static_cast<std::size_t>(graph.output())]);

  // Keep the permutation only when the planner proves it smaller —
  // anything else would churn node ids (and package bytes) for nothing.
  const long long after = rt::plan_memory(reordered, plan_options_).arena_bytes;
  if (after >= before) return false;
  graph = std::move(reordered);
  return true;
}

}  // namespace micronas::compile
