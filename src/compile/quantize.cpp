#include "src/compile/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/rt/runtime.hpp"

namespace micronas::compile {

namespace {

struct Range {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  bool seen() const { return min <= max; }
};

/// Per-output-channel symmetric weight quantization (int8 in
/// [-127, 127] so +/- ranges stay symmetric).
struct QuantizedWeights {
  std::vector<std::int8_t> data;
  std::vector<double> scales;  // per output channel
};

QuantizedWeights quantize_weights(const Tensor& w, int cout) {
  QuantizedWeights out;
  const std::size_t per_channel = w.numel() / static_cast<std::size_t>(cout);
  out.data.resize(w.numel());
  out.scales.resize(static_cast<std::size_t>(cout));
  for (int c = 0; c < cout; ++c) {
    double abs_max = 0.0;
    for (std::size_t k = 0; k < per_channel; ++k) {
      abs_max = std::max(abs_max,
                         std::abs(static_cast<double>(w[static_cast<std::size_t>(c) * per_channel + k])));
    }
    const double scale = choose_symmetric_scale(abs_max);
    out.scales[static_cast<std::size_t>(c)] = scale;
    for (std::size_t k = 0; k < per_channel; ++k) {
      const std::size_t i = static_cast<std::size_t>(c) * per_channel + k;
      const long q = std::lround(static_cast<double>(w[i]) / scale);
      out.data[i] = static_cast<std::int8_t>(std::clamp<long>(q, -kInt8Max, kInt8Max));
    }
  }
  return out;
}

std::vector<std::int32_t> quantize_bias(const Tensor* bias, int cout, double in_scale,
                                        const std::vector<double>& w_scales) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(cout), 0);
  if (!bias) return out;
  for (int c = 0; c < cout; ++c) {
    const double scale = in_scale * w_scales[static_cast<std::size_t>(c)];
    const double q = static_cast<double>((*bias)[static_cast<std::size_t>(c)]) / scale;
    out[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(std::llround(q));
  }
  return out;
}

}  // namespace

QuantizePass::QuantizePass(std::vector<Tensor> calibration, QuantizePassOptions options)
    : calibration_(std::move(calibration)), options_(options) {
  if (calibration_.empty()) {
    throw std::invalid_argument("QuantizePass: at least one calibration batch required");
  }
  if (options_.spec.bits != 8) {
    throw std::invalid_argument("QuantizePass: only 8-bit quantization is implemented");
  }
}

bool QuantizePass::run(ir::Graph& graph) {
  // Only the canonical post-fusion op set can be lowered to int8.
  for (const auto& node : graph.nodes()) {
    switch (node.op) {
      case ir::OpKind::kInput:
      case ir::OpKind::kConst:
      case ir::OpKind::kConv2d:
      case ir::OpKind::kRelu:
      case ir::OpKind::kAvgPool:
      case ir::OpKind::kAdd:
      case ir::OpKind::kGlobalAvgPool:
      case ir::OpKind::kLinear:
        break;
      case ir::OpKind::kBatchNorm:
      case ir::OpKind::kChannelAffine:
        throw std::invalid_argument(
            "QuantizePass: graph still contains " + op_kind_name(node.op) +
            " — run constant-fold and fuse-conv-bn-relu first");
      default:
        throw std::invalid_argument("QuantizePass: graph is already quantized (" +
                                    op_kind_name(node.op) + ")");
    }
  }

  // ---- calibration: per-value activation ranges on the float graph.
  std::vector<Range> ranges(static_cast<std::size_t>(graph.size()));
  {
    rt::Executor calib(graph, rt::ExecOptions{options_.threads});
    calib.set_observer([&ranges](int id, std::span<const float> values) {
      Range& r = ranges[static_cast<std::size_t>(id)];
      for (float v : values) {
        r.min = std::min(r.min, static_cast<double>(v));
        r.max = std::max(r.max, static_cast<double>(v));
      }
    });
    for (const Tensor& batch : calibration_) calib.run(batch);
  }
  const auto activation_params = [&](int old_id) {
    const Range& r = ranges[static_cast<std::size_t>(old_id)];
    if (!r.seen()) {
      throw std::logic_error("QuantizePass: no calibration data for node %" +
                             std::to_string(old_id));
    }
    return choose_affine_params(r.min, r.max);
  };

  // ---- rewrite into a fresh integer graph.
  ir::Graph q;
  std::vector<int> map(static_cast<std::size_t>(graph.size()), -1);
  std::vector<AffineParams> qparams(static_cast<std::size_t>(graph.size()));

  // Activation-position operand: a rewritten node, or an f32 constant
  // that survived folding (e.g. an all-`none` cell output) which gets
  // quantized in place with its own range.
  const auto operand = [&](int old_id) {
    if (map[static_cast<std::size_t>(old_id)] >= 0) return map[static_cast<std::size_t>(old_id)];
    const ir::Node& c = graph.node(old_id);
    if (!c.is_const() || c.type.dtype != ir::DType::kF32) {
      throw std::logic_error("QuantizePass: unmapped operand %" + std::to_string(old_id));
    }
    double lo = 0.0, hi = 0.0;
    for (float v : c.f32_data.data()) {
      lo = std::min(lo, static_cast<double>(v));
      hi = std::max(hi, static_cast<double>(v));
    }
    const AffineParams p = choose_affine_params(lo, hi);
    std::vector<std::int8_t> data(c.f32_data.numel());
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = quantize_one(c.f32_data[i], p);
    const int id = q.add_const_i8(c.type.shape, std::move(data), c.name + ".q");
    map[static_cast<std::size_t>(old_id)] = id;
    qparams[static_cast<std::size_t>(old_id)] = p;
    return id;
  };
  const auto params_of = [&](int old_id) { return qparams[static_cast<std::size_t>(old_id)]; };
  const auto single_multiplier = [](double m) {
    ir::QuantAttrs a;
    a.mantissa.resize(1);
    a.shift.resize(1);
    quantize_multiplier(m, &a.mantissa[0], &a.shift[0]);
    return a;
  };

  for (const auto& old_node : graph.nodes()) {
    const int old_id = old_node.id;
    switch (old_node.op) {
      case ir::OpKind::kConst:
        break;  // consumed lazily via operand()/weight handling

      case ir::OpKind::kInput: {
        const int in_id = q.add_input(old_node.type, old_node.name);
        const AffineParams p = activation_params(old_id);
        const int quant_id = q.add_node(ir::OpKind::kQuantize, {in_id}, {}, "quantize_input");
        q.node(quant_id).quant.out_q = p;
        map[static_cast<std::size_t>(old_id)] = quant_id;
        qparams[static_cast<std::size_t>(old_id)] = p;
        break;
      }

      case ir::OpKind::kConv2d:
      case ir::OpKind::kLinear: {
        const bool is_conv = old_node.op == ir::OpKind::kConv2d;
        const int x = operand(old_node.inputs[0]);
        const AffineParams in_p = params_of(old_node.inputs[0]);
        const AffineParams out_p = activation_params(old_id);
        const ir::Node& w_const = graph.node(old_node.inputs[1]);
        const int cout = w_const.type.shape[0];
        QuantizedWeights qw = quantize_weights(w_const.f32_data, cout);
        const Tensor* bias =
            old_node.inputs.size() == 3 ? &graph.node(old_node.inputs[2]).f32_data : nullptr;
        std::vector<std::int32_t> qb = quantize_bias(bias, cout, in_p.scale, qw.scales);

        const int w_id = q.add_const_i8(w_const.type.shape, std::move(qw.data),
                                        w_const.name + ".q");
        const int b_id = q.add_const_i32(Shape{cout}, std::move(qb),
                                         old_node.name + ".bias.q");
        const int id = q.add_node(is_conv ? ir::OpKind::kQConv2d : ir::OpKind::kQLinear,
                                  {x, w_id, b_id}, old_node.conv, old_node.name);
        ir::QuantAttrs attrs;
        attrs.in_q = in_p;
        attrs.out_q = out_p;
        attrs.mantissa.resize(static_cast<std::size_t>(cout));
        attrs.shift.resize(static_cast<std::size_t>(cout));
        for (int c = 0; c < cout; ++c) {
          const double m = in_p.scale * qw.scales[static_cast<std::size_t>(c)] / out_p.scale;
          quantize_multiplier(m, &attrs.mantissa[static_cast<std::size_t>(c)],
                              &attrs.shift[static_cast<std::size_t>(c)]);
        }
        q.node(id).quant = std::move(attrs);
        map[static_cast<std::size_t>(old_id)] = id;
        qparams[static_cast<std::size_t>(old_id)] = out_p;
        break;
      }

      case ir::OpKind::kAvgPool: {
        const int x = operand(old_node.inputs[0]);
        const AffineParams in_p = params_of(old_node.inputs[0]);
        const AffineParams out_p = activation_params(old_id);
        const int id = q.add_node(ir::OpKind::kQAvgPool, {x}, old_node.conv, old_node.name);
        const int window = old_node.conv.kernel * old_node.conv.kernel;
        ir::QuantAttrs attrs = single_multiplier(in_p.scale / (window * out_p.scale));
        attrs.in_q = in_p;
        attrs.out_q = out_p;
        q.node(id).quant = std::move(attrs);
        map[static_cast<std::size_t>(old_id)] = id;
        qparams[static_cast<std::size_t>(old_id)] = out_p;
        break;
      }

      case ir::OpKind::kGlobalAvgPool: {
        const int x = operand(old_node.inputs[0]);
        const AffineParams in_p = params_of(old_node.inputs[0]);
        const AffineParams out_p = activation_params(old_id);
        const Shape& xs = graph.node(old_node.inputs[0]).type.shape;
        const int id = q.add_node(ir::OpKind::kQGlobalAvgPool, {x}, {}, old_node.name);
        ir::QuantAttrs attrs = single_multiplier(in_p.scale / (xs[2] * xs[3] * out_p.scale));
        attrs.in_q = in_p;
        attrs.out_q = out_p;
        q.node(id).quant = std::move(attrs);
        map[static_cast<std::size_t>(old_id)] = id;
        qparams[static_cast<std::size_t>(old_id)] = out_p;
        break;
      }

      case ir::OpKind::kAdd: {
        const int a = operand(old_node.inputs[0]);
        const AffineParams a_p = params_of(old_node.inputs[0]);
        const int b = operand(old_node.inputs[1]);
        const AffineParams b_p = params_of(old_node.inputs[1]);
        const AffineParams out_p = activation_params(old_id);
        const int id = q.add_node(ir::OpKind::kQAdd, {a, b}, {}, old_node.name);
        ir::QuantAttrs attrs = single_multiplier(a_p.scale / out_p.scale);
        attrs.in_q = a_p;
        attrs.in2_q = b_p;
        attrs.out_q = out_p;
        quantize_multiplier(b_p.scale / out_p.scale, &attrs.mantissa2, &attrs.shift2);
        q.node(id).quant = std::move(attrs);
        map[static_cast<std::size_t>(old_id)] = id;
        qparams[static_cast<std::size_t>(old_id)] = out_p;
        break;
      }

      case ir::OpKind::kRelu: {
        // Integer ReLU is max(q, zp) on the *input* grid; output keeps
        // the producer's parameters (the TFLite convention).
        const int x = operand(old_node.inputs[0]);
        const AffineParams in_p = params_of(old_node.inputs[0]);
        const int id = q.add_node(ir::OpKind::kQRelu, {x}, {}, old_node.name);
        q.node(id).quant.in_q = in_p;
        q.node(id).quant.out_q = in_p;
        map[static_cast<std::size_t>(old_id)] = id;
        qparams[static_cast<std::size_t>(old_id)] = in_p;
        break;
      }

      default:
        throw std::logic_error("QuantizePass: unexpected op " + op_kind_name(old_node.op));
    }
  }

  const int q_out = operand(graph.output());
  const int deq = q.add_node(ir::OpKind::kDequantize, {q_out}, {}, "dequantize_output");
  q.node(deq).quant.in_q = params_of(graph.output());
  q.set_output(deq);
  q.validate();

  graph = std::move(q);
  return true;
}

}  // namespace micronas::compile
