// Deployment compiler driver: genotype -> executable, memory-planned
// int8 graph.
//
// Pipeline (each stage optional via CompilerOptions, defaults all-on):
//
//   lower_genotype            (src/ir/lower.hpp)
//     -> constant-fold        (BN params, `none`-edge zeros)
//     -> fuse-conv-bn-relu
//     -> dce
//     -> int8-ptq             (calibrated on synthetic batches)
//     -> dce
//     -> memory planning      (src/rt/memory_planner.hpp)
//
// The CompileReport carries per-pass telemetry, the memory-plan
// summary, and the planned-arena vs hw/memory_model-predicted peak
// ratio — the end-to-end validation of the analytic model the search
// relies on. Latency fields are filled by callers that own a profiled
// estimator (MicroNas::compile_winner, examples/compile_and_run).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/compile/pass_manager.hpp"
#include "src/hw/quant.hpp"
#include "src/ir/lower.hpp"
#include "src/rt/kernels_int8_gemm.hpp"
#include "src/rt/memory_planner.hpp"

namespace micronas::compile {

struct CompilerOptions {
  MacroNetConfig macro;         // deployment skeleton
  int batch = 1;
  std::uint64_t seed = 1;       // weights + calibration data
  bool fold = true;
  bool fuse = true;
  bool quantize = true;         // requires fold && fuse
  /// Schedule-reorder pass: permute the node list when list scheduling
  /// finds an order the planner proves strictly arena-smaller.
  bool reorder = true;
  int calibration_batches = 2;  // each of shape [batch, C, H, W]
  QuantSpec quant;
  rt::MemoryPlanOptions plan;
  int threads = 1;              // calibration executor concurrency
};

struct CompileReport {
  std::string arch;             // canonical genotype string
  int lowered_nodes = 0;        // node count straight out of the frontend
  int final_nodes = 0;
  int lowered_executed = 0;     // executed (non-const) ops before/after
  int final_executed = 0;
  std::vector<PassStat> passes;

  long long arena_bytes = 0;        // planned activation arena
  long long naive_arena_bytes = 0;  // without lifetime reuse
  long long const_bytes = 0;        // flash image (weights + quant params)

  /// hw/memory_model predicted peak SRAM for the quantized deployment
  /// model, and planned/predicted — the memory planner's end-to-end
  /// validation of the analytic model (< 1 means the plan fits the
  /// prediction).
  long long model_peak_sram_bytes = 0;
  double arena_to_model_ratio = 0.0;

  /// Filled by callers holding a latency estimator / MCU simulator.
  double predicted_latency_ms = 0.0;   // LUT estimator on the macro model
  double executed_latency_ms = 0.0;    // mcusim on the compiled schedule

  std::string memory_plan;  // rt::MemoryPlan::to_string

  /// `include_timing` also prints per-pass wall milliseconds (excluded
  /// from the golden fixture, which must be machine-independent).
  std::string to_string(bool include_timing = true) const;
};

struct CompiledModel {
  ir::Graph graph;
  rt::MemoryPlan plan;
  CompileReport report;
  /// Kernel-layout weights for the int8 GEMM (pack-weights pass):
  /// chosen at package-build time, serialized into the .mnpkg PACK
  /// section so the server never repacks on load. Hand to executors
  /// via ExecOptions::packed; empty when the model is not quantized.
  rt::PackedWeightSet packed;

  /// Re-plan the activation arena at `batch_capacity`: the same graph
  /// and schedule with every buffer scaled to hold batch_capacity
  /// samples — what a serving deployment hands rt::BatchedExecutor so a
  /// coalesced batch is one executor invocation. batch_capacity == 1
  /// reproduces `plan` (up to the alignment in `options`). The batch
  /// capacity is a deployment choice, not a model property, so it is
  /// not part of the serialized package; re-planning is pure and cheap.
  rt::MemoryPlan plan_for_batch(int batch_capacity,
                                rt::MemoryPlanOptions options = {}) const;
};

/// Run the full pipeline. Throws on inconsistent options
/// (quantize without fold+fuse).
CompiledModel compile_genotype(const nb201::Genotype& genotype,
                               const CompilerOptions& options = {});

}  // namespace micronas::compile
