// Compiler pass infrastructure (the npu_compiler-style pass pipeline,
// scaled to this repo's IR).
//
// A Pass is a named graph-to-graph rewrite; the PassManager runs an
// ordered list of them, validates the graph after every rewrite (a
// pass that corrupts types or topology fails loudly at compile time,
// not at inference time), and records per-pass telemetry that feeds
// the CompileReport and the compile bench suite.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ir/graph.hpp"

namespace micronas::compile {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  /// Rewrite the graph in place; true if anything changed.
  virtual bool run(ir::Graph& graph) = 0;
};

struct PassStat {
  std::string name;
  bool changed = false;
  int nodes_before = 0;
  int nodes_after = 0;
  double wall_ms = 0.0;
};

class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);

  /// Run every pass in order; throws std::logic_error (from
  /// Graph::validate) if a pass leaves the graph inconsistent.
  std::vector<PassStat> run(ir::Graph& graph) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace micronas::compile
