// Additional zero-cost proxies from the literature (extensions beyond
// the paper, used for ablations against the paper's NTK+LR choice).
//
// * SynFlow (Tanaka et al. 2020): parameter saliency Σ|θ · ∂R/∂θ| with
//   R the output of the network under absolute-valued weights on an
//   all-ones input — measures how much trainable signal can flow
//   without ever looking at data.
// * GradNorm (Abdelfattah et al. 2021): the L2 norm of the parameter
//   gradient of the sum of logits over a probe batch — a crude but
//   cheap trainability signal.
#pragma once

#include "src/net/cell_net.hpp"

namespace micronas {

struct SynflowResult {
  double score = 0.0;       // raw saliency sum
  double log_score = 0.0;   // log1p(score): spans many decades
};

/// Data-free SynFlow saliency of the cell's proxy network.
/// `input_size` probes at the proxy net's configured resolution.
SynflowResult synflow_score(const nb201::Genotype& genotype, const CellNetConfig& config,
                            Rng& rng);

struct GradNormResult {
  double grad_norm = 0.0;
};

/// Gradient-norm proxy on a probe batch ([N,C,H,W]).
GradNormResult grad_norm_score(const nb201::Genotype& genotype, const CellNetConfig& config,
                               const Tensor& images, Rng& rng);

}  // namespace micronas
