#include "src/proxies/zero_cost.hpp"

#include <cmath>
#include <stdexcept>

namespace micronas {

SynflowResult synflow_score(const nb201::Genotype& genotype, const CellNetConfig& config,
                            Rng& rng) {
  CellNet net(genotype, config, rng);

  // SynFlow linearizes the network: every weight is replaced by its
  // absolute value so ReLUs stay open on the all-ones input and the
  // saliency measures pure connectivity × magnitude, with no data.
  net.for_each_param([](std::span<float> s) {
    for (auto& v : s) v = std::abs(v);
  });

  Tensor ones(Shape{1, config.input_channels, config.input_size, config.input_size}, 1.0F);
  (void)net.forward(ones);
  net.zero_grad();
  Tensor grad(Shape{1, config.num_classes}, 1.0F);
  (void)net.backward(grad);

  std::vector<float> grads;
  net.collect_grads(grads);
  double score = 0.0;
  std::size_t i = 0;
  net.for_each_param([&](std::span<float> s) {
    for (float v : s) {
      score += std::abs(static_cast<double>(v) * grads[i]);
      ++i;
    }
  });
  if (i != grads.size()) throw std::logic_error("synflow_score: param/grad size mismatch");

  SynflowResult res;
  res.score = score;
  res.log_score = std::log1p(score);
  return res;
}

GradNormResult grad_norm_score(const nb201::Genotype& genotype, const CellNetConfig& config,
                               const Tensor& images, Rng& rng) {
  if (images.shape().rank() != 4) throw std::invalid_argument("grad_norm_score: rank-4 images");
  CellNet net(genotype, config, rng);
  (void)net.forward(images);
  net.zero_grad();
  Tensor grad(Shape{images.shape()[0], config.num_classes}, 1.0F);
  (void)net.backward(grad);
  std::vector<float> grads;
  net.collect_grads(grads);
  double sq = 0.0;
  for (float g : grads) sq += static_cast<double>(g) * g;
  GradNormResult res;
  res.grad_norm = std::sqrt(sq);
  return res;
}

}  // namespace micronas
