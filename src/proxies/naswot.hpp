// NASWOT log-determinant proxy (extension beyond the paper).
//
// Mellor et al.'s "NAS without training" scores an architecture by the
// log-determinant of the ReLU activation-pattern kernel over a batch:
// K_ij = N_a - d_H(c_i, c_j) with d_H the Hamming distance between the
// binary activation codes of samples i and j. It measures how well the
// untrained network separates inputs — closely related to the linear
// region count but computed on data rather than a plane. Provided as an
// alternative expressivity indicator for ablations.
#pragma once

#include "src/net/cell_net.hpp"

namespace micronas {

struct NaswotResult {
  double log_det = 0.0;
  int batch = 0;
  std::size_t code_bits = 0;
};

/// Score a genotype on a batch of probe images.
NaswotResult naswot_score(const nb201::Genotype& genotype, const CellNetConfig& config,
                          const Tensor& images, Rng& rng);

}  // namespace micronas
