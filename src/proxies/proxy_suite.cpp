#include "src/proxies/proxy_suite.hpp"

#include <stdexcept>

namespace micronas {

ProxySuite::ProxySuite(ProxySuiteConfig config, Tensor probe_images,
                       const LatencyEstimator* estimator)
    : config_(std::move(config)), probe_images_(std::move(probe_images)), estimator_(estimator) {
  if (probe_images_.shape().rank() != 4) {
    throw std::invalid_argument("ProxySuite: probe images must be rank-4");
  }
  if (probe_images_.shape()[2] != config_.proxy_net.input_size ||
      probe_images_.shape()[1] != config_.proxy_net.input_channels) {
    throw std::invalid_argument("ProxySuite: probe images do not match proxy net input spec");
  }
}

IndicatorValues ProxySuite::evaluate(const nb201::Genotype& genotype, Rng& rng) const {
  IndicatorValues v;
  const NtkResult ntk = ntk_condition(genotype, config_.proxy_net, probe_images_, rng, config_.ntk);
  v.ntk_condition = ntk.condition_number;
  const LinearRegionResult lr = count_linear_regions(genotype, config_.proxy_net, rng, config_.lr);
  v.linear_regions = lr.boundary_crossings;
  ++evals_;

  const MacroModel model = build_macro_model(genotype, config_.deploy_net);
  v.flops_m = count_flops(model).total_m();
  v.params_m = count_params(model).total_m();
  const MemoryReport mem = analyze_memory(model);
  v.peak_sram_kb = mem.peak_sram_kb();
  v.streamed_sram_kb = mem.streamed_peak_sram_kb();
  v.latency_ms = estimator_ != nullptr ? estimator_->estimate_ms(model) : 0.0;
  return v;
}

IndicatorValues ProxySuite::evaluate_supernet(const EdgeOps& edge_ops, Rng& rng) const {
  IndicatorValues v;
  const NtkResult ntk = ntk_condition(edge_ops, config_.proxy_net, probe_images_, rng, config_.ntk);
  v.ntk_condition = ntk.condition_number;
  const LinearRegionResult lr = count_linear_regions(edge_ops, config_.proxy_net, rng, config_.lr);
  v.linear_regions = lr.boundary_crossings;
  ++evals_;
  return v;
}

}  // namespace micronas
