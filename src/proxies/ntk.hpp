// Neural tangent kernel spectrum proxy (paper §II.A.1).
//
// At initialization, the empirical NTK over a mini-batch {x_i} is
//   Θ_ij = ⟨∂f(x_i)/∂θ, ∂f(x_j)/∂θ⟩
// and its condition number κ = λmax/λmin predicts trainability: badly
// conditioned kernels train slowly and generalize poorly (Xiao et al.,
// 2020). MicroNAS ranks candidate cells by κ — smaller is better.
//
// f is the scalar sum of logits by default (one backward per sample);
// per-logit mode sums the per-class Jacobian Grams (K backwards per
// sample) for a finer estimate at K× the cost.
#pragma once

#include <vector>

#include "src/data/synthetic.hpp"
#include "src/linalg/sym_eig.hpp"
#include "src/net/cell_net.hpp"

namespace micronas {

enum class NtkMode {
  kSumLogits,  // f(x) = Σ_k logit_k(x); B backward passes
  kPerLogit,   // block-trace NTK; B*K backward passes
};

struct NtkOptions {
  NtkMode mode = NtkMode::kSumLogits;
  /// Average the condition number over this many re-initializations.
  int repeats = 1;
  /// Eigenvalue floor when forming ratios.
  double eig_floor = 1e-12;
  /// Restrict the Jacobian to cell parameters. Stem/reduction/head
  /// gradients are identical machinery for every candidate and dilute
  /// the ranking signal; the cell-restricted NTK discriminates cells
  /// far better (and the degenerate no-parameter cell is reported as
  /// untrainable, κ = kDegenerateCondition).
  bool cell_params_only = true;
};

/// κ reported for cells whose restricted Jacobian vanishes (no
/// trainable cell parameters or a fully zeroed cell).
inline constexpr double kDegenerateCondition = 1e12;

struct NtkResult {
  /// Eigenvalues of the (averaged) NTK, descending.
  std::vector<double> eigenvalues;
  /// κ = λ1 / λB.
  double condition_number = 0.0;
  /// Number of parameters of the evaluated network.
  std::size_t param_count = 0;
};

/// Compute the empirical NTK Gram of `net` on `images` ([B,C,H,W]).
Matrix compute_ntk_gram(CellNet& net, const Tensor& images, NtkMode mode,
                        bool cell_params_only = false);

/// Full spectrum analysis for one architecture: builds a fresh proxy
/// net per repeat (seeded from `rng`), evaluates on `images`, averages
/// the condition numbers.
NtkResult ntk_condition(const nb201::Genotype& genotype, const CellNetConfig& config,
                        const Tensor& images, Rng& rng, const NtkOptions& options = {});

/// Same, for a (partially pruned) supernet.
NtkResult ntk_condition(const EdgeOps& edge_ops, const CellNetConfig& config,
                        const Tensor& images, Rng& rng, const NtkOptions& options = {});

/// K_i = λ1/λi for 1-based i (Fig. 2a sweeps this index).
double ntk_condition_index(const NtkResult& result, int i, double floor = 1e-12);

}  // namespace micronas
