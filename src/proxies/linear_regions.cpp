#include "src/proxies/linear_regions.hpp"

#include <stdexcept>
#include <unordered_set>

#include "src/common/rng.hpp"

namespace micronas {

namespace {

/// FNV-1a over the activation bit string; collisions are vanishingly
/// unlikely at the few hundred patterns we count per repeat.
std::uint64_t hash_bits(const std::vector<unsigned char>& bits) {
  return fnv1a64(bits.data(), bits.size());
}

LinearRegionResult count_impl(const EdgeOps& edge_ops, CellNetConfig config, Rng& rng,
                              const LinearRegionOptions& options) {
  if (options.grid < 2) throw std::invalid_argument("count_linear_regions: grid must be >= 2");
  if (options.repeats < 1) throw std::invalid_argument("count_linear_regions: repeats must be >= 1");

  config.input_size = options.input_size;
  const int C = config.input_channels;
  const int S = config.input_size;
  const std::size_t dim = static_cast<std::size_t>(C) * S * S;

  double total = 0.0;
  double total_crossings = 0.0;
  for (int rep = 0; rep < options.repeats; ++rep) {
    CellNet net(edge_ops, config, rng);

    // Random affine plane: x(u,v) = x0 + u*d1 + v*d2 with unit-norm
    // direction vectors.
    std::vector<float> x0(dim), d1(dim), d2(dim);
    rng.fill_normal(x0, 0.0F, 1.0F);
    rng.fill_normal(d1, 0.0F, 1.0F);
    rng.fill_normal(d2, 0.0F, 1.0F);
    auto normalize = [&](std::vector<float>& v) {
      double norm = 0.0;
      for (float x : v) norm += static_cast<double>(x) * x;
      const float inv = static_cast<float>(1.0 / std::sqrt(std::max(norm, 1e-12)));
      for (auto& x : v) x *= inv;
    };
    normalize(d1);
    normalize(d2);

    std::unordered_set<std::uint64_t> patterns;
    const int G = options.grid;
    std::vector<std::vector<unsigned char>> row(static_cast<std::size_t>(G));
    std::vector<std::vector<unsigned char>> prev_row;
    double crossings = 0.0;
    // Evaluate the grid row by row in batches of G to amortize forward
    // overhead while keeping memory bounded.
    for (int gu = 0; gu < G; ++gu) {
      const double u = options.span * (2.0 * gu / (G - 1) - 1.0);
      Tensor batch(Shape{G, C, S, S});
      auto bd = batch.data();
      for (int gv = 0; gv < G; ++gv) {
        const double v = options.span * (2.0 * gv / (G - 1) - 1.0);
        for (std::size_t i = 0; i < dim; ++i) {
          bd[static_cast<std::size_t>(gv) * dim + i] =
              x0[i] + static_cast<float>(u) * d1[i] + static_cast<float>(v) * d2[i];
        }
      }
      (void)net.forward(batch);
      for (int gv = 0; gv < G; ++gv) {
        auto& bits = row[static_cast<std::size_t>(gv)];
        bits.clear();
        net.collect_relu_pattern(gv, bits, /*cells_only=*/true);
        patterns.insert(hash_bits(bits));
      }
      // Per-unit sign flips along the row (v axis) and vs the previous
      // row (u axis): total boundary length crossed by the grid.
      auto hamming = [](const std::vector<unsigned char>& a, const std::vector<unsigned char>& b) {
        std::size_t d = 0;
        for (std::size_t i = 0; i < a.size(); ++i) d += static_cast<std::size_t>(a[i] != b[i]);
        return static_cast<double>(d);
      };
      for (int gv = 1; gv < G; ++gv) {
        crossings += hamming(row[static_cast<std::size_t>(gv - 1)], row[static_cast<std::size_t>(gv)]);
      }
      if (!prev_row.empty()) {
        for (int gv = 0; gv < G; ++gv) {
          crossings += hamming(prev_row[static_cast<std::size_t>(gv)], row[static_cast<std::size_t>(gv)]);
        }
      }
      std::swap(prev_row, row);
      row.resize(static_cast<std::size_t>(G));  // swap may leave row undersized
    }
    total += static_cast<double>(patterns.size());
    total_crossings += crossings;
  }

  LinearRegionResult res;
  res.region_count = total / options.repeats;
  res.boundary_crossings = total_crossings / options.repeats;
  res.samples_per_repeat = options.grid * options.grid;
  return res;
}

}  // namespace

LinearRegionResult count_linear_regions(const nb201::Genotype& genotype, const CellNetConfig& config,
                                        Rng& rng, const LinearRegionOptions& options) {
  return count_impl(edge_ops_from_genotype(genotype), config, rng, options);
}

LinearRegionResult count_linear_regions(const EdgeOps& edge_ops, const CellNetConfig& config,
                                        Rng& rng, const LinearRegionOptions& options) {
  return count_impl(edge_ops, config, rng, options);
}

}  // namespace micronas
