#include "src/proxies/ntk.hpp"

#include <algorithm>
#include <stdexcept>

namespace micronas {

Matrix compute_ntk_gram(CellNet& net, const Tensor& images, NtkMode mode,
                        bool cell_params_only) {
  if (images.shape().rank() != 4) throw std::invalid_argument("compute_ntk_gram: rank-4 images required");
  const int batch = images.shape()[0];
  const int classes = net.config().num_classes;

  std::vector<std::vector<float>> jac_rows;

  auto backward_collect = [&](const Tensor& grad_logits) {
    net.zero_grad();
    net.backward(grad_logits);
    std::vector<float> row;
    net.collect_grads(row, cell_params_only);
    return row;
  };

  if (mode == NtkMode::kSumLogits) {
    jac_rows.reserve(static_cast<std::size_t>(batch));
    for (int n = 0; n < batch; ++n) {
      (void)net.forward(images.slice_sample(n));
      Tensor grad(Shape{1, classes}, 1.0F);
      jac_rows.push_back(backward_collect(grad));
    }
    return gram_matrix(jac_rows);
  }

  // Per-logit mode: Θ_ij = Σ_k ⟨∂f_k(x_i)/∂θ, ∂f_k(x_j)/∂θ⟩, i.e. the
  // sum of per-class Jacobian Grams.
  Matrix total(batch, batch);
  for (int k = 0; k < classes; ++k) {
    jac_rows.clear();
    jac_rows.reserve(static_cast<std::size_t>(batch));
    for (int n = 0; n < batch; ++n) {
      (void)net.forward(images.slice_sample(n));
      Tensor grad(Shape{1, classes});
      grad.at(0, k) = 1.0F;
      jac_rows.push_back(backward_collect(grad));
    }
    const Matrix gram = gram_matrix(jac_rows);
    for (int i = 0; i < batch; ++i) {
      for (int j = 0; j < batch; ++j) total(i, j) += gram(i, j);
    }
  }
  return total;
}

namespace {

NtkResult ntk_condition_impl(const EdgeOps& edge_ops, const CellNetConfig& config,
                             const Tensor& images, Rng& rng, const NtkOptions& options) {
  if (options.repeats < 1) throw std::invalid_argument("ntk_condition: repeats must be >= 1");
  const int batch = images.shape()[0];

  NtkResult res;
  double cond_sum = 0.0;
  std::vector<double> eig_sum(static_cast<std::size_t>(batch), 0.0);

  for (int r = 0; r < options.repeats; ++r) {
    CellNet net(edge_ops, config, rng);
    res.param_count = net.param_count();
    const Matrix gram = compute_ntk_gram(net, images, options.mode, options.cell_params_only);
    // A vanishing Gram means the candidate has no trainable signal path
    // through the cell: report it as maximally ill-conditioned rather
    // than feeding zeros to the eigensolver.
    if (gram.frobenius_norm() < 1e-20) {
      cond_sum += kDegenerateCondition;
      continue;
    }
    const SymEigResult eig = sym_eig(gram);
    cond_sum += std::min(condition_number(eig.eigenvalues, options.eig_floor),
                         kDegenerateCondition);
    for (std::size_t i = 0; i < eig.eigenvalues.size(); ++i) eig_sum[i] += eig.eigenvalues[i];
  }

  res.condition_number = cond_sum / options.repeats;
  res.eigenvalues.resize(eig_sum.size());
  for (std::size_t i = 0; i < eig_sum.size(); ++i) res.eigenvalues[i] = eig_sum[i] / options.repeats;
  return res;
}

}  // namespace

NtkResult ntk_condition(const nb201::Genotype& genotype, const CellNetConfig& config,
                        const Tensor& images, Rng& rng, const NtkOptions& options) {
  return ntk_condition_impl(edge_ops_from_genotype(genotype), config, images, rng, options);
}

NtkResult ntk_condition(const EdgeOps& edge_ops, const CellNetConfig& config,
                        const Tensor& images, Rng& rng, const NtkOptions& options) {
  return ntk_condition_impl(edge_ops, config, images, rng, options);
}

double ntk_condition_index(const NtkResult& result, int i, double floor) {
  if (i == 1) return 1.0;  // K_1 = λ1/λ1 by definition, degenerate or not
  // A vanishing spectrum (no trainable cell parameters) must rank as
  // untrainable, not as a perfectly conditioned kernel.
  if (result.eigenvalues.empty() || result.eigenvalues.front() <= floor) {
    return kDegenerateCondition;
  }
  return condition_index(result.eigenvalues, i, floor);
}

}  // namespace micronas
