#include "src/proxies/naswot.hpp"

#include <cmath>
#include <stdexcept>

#include "src/linalg/sym_eig.hpp"

namespace micronas {

NaswotResult naswot_score(const nb201::Genotype& genotype, const CellNetConfig& config,
                          const Tensor& images, Rng& rng) {
  if (images.shape().rank() != 4) throw std::invalid_argument("naswot_score: rank-4 images required");
  const int batch = images.shape()[0];
  if (batch < 2) throw std::invalid_argument("naswot_score: batch must be >= 2");

  CellNet net(genotype, config, rng);
  (void)net.forward(images);

  std::vector<std::vector<unsigned char>> codes(static_cast<std::size_t>(batch));
  for (int n = 0; n < batch; ++n) net.collect_relu_pattern(n, codes[static_cast<std::size_t>(n)]);
  const std::size_t bits = codes.front().size();

  Matrix k(batch, batch);
  for (int i = 0; i < batch; ++i) {
    for (int j = i; j < batch; ++j) {
      std::size_t hamming = 0;
      for (std::size_t b = 0; b < bits; ++b) {
        hamming += static_cast<std::size_t>(codes[static_cast<std::size_t>(i)][b] !=
                                            codes[static_cast<std::size_t>(j)][b]);
      }
      const double v = static_cast<double>(bits - hamming);
      k(i, j) = v;
      k(j, i) = v;
    }
  }

  const SymEigResult eig = sym_eig(k);
  double log_det = 0.0;
  for (double lambda : eig.eigenvalues) log_det += std::log(std::max(lambda, 1e-6));

  NaswotResult res;
  res.log_det = log_det;
  res.batch = batch;
  res.code_bits = bits;
  return res;
}

}  // namespace micronas
