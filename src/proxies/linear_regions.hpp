// Linear-region count proxy (paper §II.A.2).
//
// A ReLU network partitions its input space into affine regions; the
// number of regions a cell can realize measures its expressivity
// (Xiong et al., 2020). Exhaustive counting is intractable, so we use
// the standard low-dimensional-slice estimator: sample a random 2-D
// affine plane through input space, evaluate the network on a G×G grid
// of points in the plane, and count distinct ReLU activation patterns.
// More expressive cells split the plane into more regions.
#pragma once

#include <cstdint>

#include "src/net/cell_net.hpp"

namespace micronas {

struct LinearRegionOptions {
  /// Grid resolution per axis; the estimator evaluates grid²
  /// points, so the count saturates at grid².
  int grid = 20;
  /// Radius of the sampled plane in input space.
  double span = 3.0;
  /// Average over this many independent (plane, init) draws.
  int repeats = 1;
  /// Spatial size of the probe inputs (small keeps it cheap).
  int input_size = 8;
};

struct LinearRegionResult {
  /// Mean distinct activation patterns per repeat. Bounded by grid², so
  /// it saturates for very expressive networks (e.g. supernets) — use
  /// `boundary_crossings` when ranking those.
  double region_count = 0.0;
  /// Mean number of (ReLU unit, adjacent grid pair) sign flips — the
  /// total length of region boundaries crossed by the grid. A monotone
  /// surrogate of the region count that does not saturate: each conv
  /// operator adds units and hyperplanes, each removal strictly lowers
  /// the score. This is the expressivity indicator the pruning search
  /// ranks by.
  double boundary_crossings = 0.0;
  /// Grid² (the saturation ceiling of region_count, for diagnostics).
  int samples_per_repeat = 0;
};

/// Estimate the linear-region count of the cell's proxy network.
LinearRegionResult count_linear_regions(const nb201::Genotype& genotype, const CellNetConfig& config,
                                        Rng& rng, const LinearRegionOptions& options = {});

/// Supernet variant used by the pruning search.
LinearRegionResult count_linear_regions(const EdgeOps& edge_ops, const CellNetConfig& config,
                                        Rng& rng, const LinearRegionOptions& options = {});

}  // namespace micronas
