// Bundled indicator evaluation: one call computes every performance
// and hardware indicator MicroNAS combines (Fig. 1's "performance
// indicators" + "hardware indicators" boxes).
#pragma once

#include <atomic>
#include <optional>

#include "src/hw/latency_estimator.hpp"
#include "src/hw/memory_model.hpp"
#include "src/proxies/flops.hpp"
#include "src/proxies/linear_regions.hpp"
#include "src/proxies/ntk.hpp"

namespace micronas {

/// Indicator values for one candidate. Lower κ, FLOPs, latency and
/// memory are better; higher linear-region count is better.
struct IndicatorValues {
  double ntk_condition = 0.0;   // NTK κ on the proxy net (trainability)
  double linear_regions = 0.0;  // boundary crossings (expressivity)
  double flops_m = 0.0;         // deployment compute, millions
  double params_m = 0.0;        // deployment weights, millions
  double latency_ms = 0.0;      // LUT-estimated MCU inference latency
  double peak_sram_kb = 0.0;    // live-activation high-water mark
  /// High-water mark when the deployment compiler may row-strip-stream
  /// stride-1 conv/pool layers (MemoryReport::streamed_peak_sram_kb);
  /// what Constraints::max_sram_kb bounds under `sram_streaming`.
  double streamed_sram_kb = 0.0;
};


/// Configuration shared by all indicator evaluations: the small proxy
/// net the trainless indicators probe, and the deployment skeleton the
/// hardware indicators price.
struct ProxySuiteConfig {
  CellNetConfig proxy_net;    // what NTK / linear regions are measured on
  MacroNetConfig deploy_net;  // what FLOPs / latency / SRAM are priced on
  NtkOptions ntk;
  LinearRegionOptions lr;
};

/// Evaluates indicators for genotypes; owns the probe batch and the
/// latency estimator so repeated evaluations are comparable.
class ProxySuite {
 public:
  /// `estimator` may be null: latency_ms is then reported as 0 and the
  /// hybrid objective must not weight it.
  ProxySuite(ProxySuiteConfig config, Tensor probe_images,
             const LatencyEstimator* estimator);

  /// All indicators for one concrete architecture. `rng` seeds the
  /// proxy-net initializations; callers needing order-independent
  /// results (the eval engine) pass a stream derived from the genotype
  /// itself. Thread-safe: concurrent calls share only immutable state
  /// plus the atomic eval counter.
  IndicatorValues evaluate(const nb201::Genotype& genotype, Rng& rng) const;

  /// Trainability/expressivity indicators for a supernet candidate
  /// (hardware indicators for supernets are analytic expectations —
  /// see search/objective.hpp).
  IndicatorValues evaluate_supernet(const EdgeOps& edge_ops, Rng& rng) const;

  const ProxySuiteConfig& config() const { return config_; }
  const Tensor& probe_images() const { return probe_images_; }
  const LatencyEstimator* estimator() const { return estimator_; }

  /// Number of NTK+LR evaluations performed so far (search-cost metric).
  /// Thread-safe: concurrent `evaluate` calls from the eval engine's
  /// worker pool each count exactly once.
  long long proxy_eval_count() const { return evals_.load(std::memory_order_relaxed); }

 private:
  ProxySuiteConfig config_;
  Tensor probe_images_;
  const LatencyEstimator* estimator_;
  mutable std::atomic<long long> evals_ = 0;
};

}  // namespace micronas
