#include "src/proxies/flops.hpp"

namespace micronas {

long long layer_flops(const LayerSpec& spec) {
  switch (spec.kind) {
    case LayerKind::kConv:
    case LayerKind::kLinear:
      // NB201 convention: FLOPs are reported as MACs (1 MAC = 1 FLOP),
      // which is what puts the all-conv3x3 cell at ~220 M and TE-NAS's
      // discovered cell at 188.66 M in the paper's Table I.
      return spec.macs();
    case LayerKind::kAvgPool:
      // K*K-1 adds + 1 multiply per output element.
      return (static_cast<long long>(spec.kernel) * spec.kernel) * spec.out_elems();
    case LayerKind::kGlobalPool:
      return spec.in_elems();
    case LayerKind::kAdd:
      return spec.out_elems();
    case LayerKind::kSkip:
      return 0;
  }
  return 0;
}

FlopsBreakdown count_flops(const MacroModel& model) {
  FlopsBreakdown b;
  for (const auto& spec : model.layers) {
    const long long f = layer_flops(spec);
    switch (spec.kind) {
      case LayerKind::kConv: b.conv_flops += f; break;
      case LayerKind::kLinear: b.linear_flops += f; break;
      case LayerKind::kAvgPool:
      case LayerKind::kGlobalPool: b.pool_flops += f; break;
      case LayerKind::kAdd: b.add_flops += f; break;
      case LayerKind::kSkip: break;
    }
  }
  return b;
}

ParamsBreakdown count_params(const MacroModel& model) {
  ParamsBreakdown p;
  for (const auto& spec : model.layers) {
    switch (spec.kind) {
      case LayerKind::kConv:
        p.conv_params += static_cast<long long>(spec.kernel) * spec.kernel * spec.cin * spec.cout;
        p.bn_params += 2LL * spec.cout;  // folded batch-norm scale + shift
        break;
      case LayerKind::kLinear:
        p.linear_params += static_cast<long long>(spec.cin) * spec.cout + spec.cout;
        break;
      default:
        break;
    }
  }
  return p;
}

double flops_m(const nb201::Genotype& genotype, const MacroNetConfig& config) {
  return count_flops(build_macro_model(genotype, config)).total_m();
}

double params_m(const nb201::Genotype& genotype, const MacroNetConfig& config) {
  return count_params(build_macro_model(genotype, config)).total_m();
}

}  // namespace micronas
