// Hardware indicator: FLOPs and parameter counting (paper §II.B.1).
//
// FLOPs are counted on the deployment macro model: 2 FLOPs per MAC for
// convolutions and the classifier, one add per accumulated element for
// pooling and residual sums. Parameters include the folded batch-norm
// scale/shift pairs the NB201 reference counts.
#pragma once

#include "src/net/macro_net.hpp"

namespace micronas {

struct FlopsBreakdown {
  long long conv_flops = 0;
  long long linear_flops = 0;
  long long pool_flops = 0;
  long long add_flops = 0;
  long long total() const { return conv_flops + linear_flops + pool_flops + add_flops; }
  double total_m() const { return static_cast<double>(total()) / 1e6; }
};

FlopsBreakdown count_flops(const MacroModel& model);

/// FLOPs of a single layer spec.
long long layer_flops(const LayerSpec& spec);

struct ParamsBreakdown {
  long long conv_params = 0;
  long long bn_params = 0;
  long long linear_params = 0;
  long long total() const { return conv_params + bn_params + linear_params; }
  double total_m() const { return static_cast<double>(total()) / 1e6; }
};

ParamsBreakdown count_params(const MacroModel& model);

/// Convenience: FLOPs (millions) straight from a genotype on the
/// standard skeleton.
double flops_m(const nb201::Genotype& genotype, const MacroNetConfig& config = {});

/// Convenience: parameters (millions) on the standard skeleton.
double params_m(const nb201::Genotype& genotype, const MacroNetConfig& config = {});

}  // namespace micronas
