#include "src/ir/graph.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

#include "src/tensor/ops.hpp"

namespace micronas::ir {

const std::string& dtype_name(DType d) {
  static const std::array<std::string, 3> names = {"f32", "i8", "i32"};
  return names[static_cast<std::size_t>(d)];
}

int dtype_bytes(DType d) {
  switch (d) {
    case DType::kF32: return 4;
    case DType::kI8: return 1;
    case DType::kI32: return 4;
  }
  throw std::invalid_argument("dtype_bytes: invalid dtype");
}

std::string TensorType::to_string() const {
  return dtype_name(dtype) + shape.to_string();
}

const std::string& op_kind_name(OpKind kind) {
  static_assert(kOpKindCount == 18, "update kOpKindCount alongside the name table");
  static const std::array<std::string, 18> names = {
      "input",      "const",     "conv2d",  "batch_norm", "channel_affine", "relu",
      "avg_pool",   "add",       "gap",     "linear",     "quantize",       "dequantize",
      "qconv2d",    "qavg_pool", "qadd",    "qgap",       "qlinear",        "qrelu"};
  const auto i = static_cast<std::size_t>(kind);
  if (i >= names.size()) throw std::invalid_argument("op_kind_name: invalid kind");
  return names[i];
}

std::string Node::to_string() const {
  std::ostringstream ss;
  ss << "%" << id << " = " << op_kind_name(op);
  if (!inputs.empty()) {
    ss << "(";
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      ss << (i ? ", " : "") << "%" << inputs[i];
    }
    ss << ")";
  }
  ss << " : " << type.to_string();
  if (op == OpKind::kConv2d || op == OpKind::kQConv2d || op == OpKind::kAvgPool ||
      op == OpKind::kQAvgPool) {
    ss << " k" << conv.kernel << "s" << conv.stride << "p" << conv.pad;
  }
  if (conv.fused_relu) ss << " +relu";
  if (!name.empty()) ss << "  // " << name;
  return ss.str();
}

int Graph::add_input(TensorType type, std::string name) {
  if (input_ >= 0) throw std::invalid_argument("Graph::add_input: input already declared");
  Node n;
  n.op = OpKind::kInput;
  n.type = std::move(type);
  n.name = std::move(name);
  input_ = append(std::move(n));
  return input_;
}

int Graph::add_const(Tensor data, std::string name) {
  Node n;
  n.op = OpKind::kConst;
  n.type = TensorType{data.shape(), DType::kF32};
  n.f32_data = std::move(data);
  n.name = std::move(name);
  return append(std::move(n));
}

int Graph::add_const_i8(Shape shape, std::vector<std::int8_t> data, std::string name) {
  if (shape.numel() != data.size()) {
    throw std::invalid_argument("Graph::add_const_i8: shape/data size mismatch");
  }
  Node n;
  n.op = OpKind::kConst;
  n.type = TensorType{std::move(shape), DType::kI8};
  n.i8_data = std::move(data);
  n.name = std::move(name);
  return append(std::move(n));
}

int Graph::add_const_i32(Shape shape, std::vector<std::int32_t> data, std::string name) {
  if (shape.numel() != data.size()) {
    throw std::invalid_argument("Graph::add_const_i32: shape/data size mismatch");
  }
  Node n;
  n.op = OpKind::kConst;
  n.type = TensorType{std::move(shape), DType::kI32};
  n.i32_data = std::move(data);
  n.name = std::move(name);
  return append(std::move(n));
}

int Graph::add_node(OpKind op, std::vector<int> inputs, ConvAttrs attrs, std::string name) {
  if (op == OpKind::kInput || op == OpKind::kConst) {
    throw std::invalid_argument("Graph::add_node: use add_input/add_const");
  }
  Node n;
  n.op = op;
  n.inputs = std::move(inputs);
  n.conv = attrs;
  n.name = std::move(name);
  for (int in : n.inputs) {
    if (in < 0 || in >= size()) {
      throw std::invalid_argument("Graph::add_node: input id out of range");
    }
  }
  n.type = infer_type(n);
  return append(std::move(n));
}

void Graph::set_output(int id) {
  if (id < 0 || id >= size()) throw std::invalid_argument("Graph::set_output: id out of range");
  output_ = id;
}

int Graph::append(Node n) {
  n.id = size();
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("ir type inference: " + what);
}

const TensorType& in_type(const Graph& g, const Node& n, std::size_t i) {
  require(i < n.inputs.size(), op_kind_name(n.op) + ": missing input " + std::to_string(i));
  return g.node(n.inputs[i]).type;
}

}  // namespace

TensorType Graph::infer_type(const Node& n) const {
  const auto arity = [&](std::size_t lo, std::size_t hi) {
    require(n.inputs.size() >= lo && n.inputs.size() <= hi,
            op_kind_name(n.op) + ": wrong arity " + std::to_string(n.inputs.size()));
  };
  switch (n.op) {
    case OpKind::kInput:
    case OpKind::kConst:
      return n.type;

    case OpKind::kConv2d:
    case OpKind::kQConv2d: {
      const bool q = n.op == OpKind::kQConv2d;
      arity(q ? 3 : 2, 3);
      const TensorType& x = in_type(*this, n, 0);
      const TensorType& w = in_type(*this, n, 1);
      require(x.shape.rank() == 4 && w.shape.rank() == 4, "conv2d: rank-4 x and weight required");
      require(x.dtype == (q ? DType::kI8 : DType::kF32), "conv2d: activation dtype");
      require(w.dtype == (q ? DType::kI8 : DType::kF32), "conv2d: weight dtype");
      require(w.shape[1] == x.shape[1], "conv2d: Cin mismatch");
      require(w.shape[2] == n.conv.kernel && w.shape[3] == n.conv.kernel,
              "conv2d: kernel attr/weight mismatch");
      if (n.inputs.size() == 3) {
        const TensorType& b = in_type(*this, n, 2);
        require(b.shape.rank() == 1 && b.shape[0] == w.shape[0], "conv2d: bias shape");
        require(b.dtype == (q ? DType::kI32 : DType::kF32), "conv2d: bias dtype");
      }
      const int ho = ops::conv_out_size(x.shape[2], n.conv.kernel, n.conv.stride, n.conv.pad);
      const int wo = ops::conv_out_size(x.shape[3], n.conv.kernel, n.conv.stride, n.conv.pad);
      return {Shape{x.shape[0], w.shape[0], ho, wo}, x.dtype};
    }

    case OpKind::kBatchNorm: {
      arity(5, 5);
      const TensorType& x = in_type(*this, n, 0);
      require(x.shape.rank() == 4 && x.dtype == DType::kF32, "batch_norm: rank-4 f32 input");
      for (std::size_t i = 1; i < 5; ++i) {
        const TensorType& p = in_type(*this, n, i);
        require(p.shape.rank() == 1 && p.shape[0] == x.shape[1] && p.dtype == DType::kF32,
                "batch_norm: per-channel f32 params required");
      }
      return x;
    }

    case OpKind::kChannelAffine: {
      arity(3, 3);
      const TensorType& x = in_type(*this, n, 0);
      require(x.shape.rank() == 4 && x.dtype == DType::kF32, "channel_affine: rank-4 f32 input");
      for (std::size_t i = 1; i < 3; ++i) {
        const TensorType& p = in_type(*this, n, i);
        require(p.shape.rank() == 1 && p.shape[0] == x.shape[1] && p.dtype == DType::kF32,
                "channel_affine: per-channel f32 params required");
      }
      return x;
    }

    case OpKind::kRelu:
    case OpKind::kQRelu: {
      arity(1, 1);
      const TensorType& x = in_type(*this, n, 0);
      require(x.dtype == (n.op == OpKind::kQRelu ? DType::kI8 : DType::kF32), "relu: dtype");
      return x;
    }

    case OpKind::kAvgPool:
    case OpKind::kQAvgPool: {
      arity(1, 1);
      const TensorType& x = in_type(*this, n, 0);
      require(x.shape.rank() == 4, "avg_pool: rank-4 input");
      require(x.dtype == (n.op == OpKind::kQAvgPool ? DType::kI8 : DType::kF32),
              "avg_pool: dtype");
      const int ho = ops::conv_out_size(x.shape[2], n.conv.kernel, n.conv.stride, n.conv.pad);
      const int wo = ops::conv_out_size(x.shape[3], n.conv.kernel, n.conv.stride, n.conv.pad);
      return {Shape{x.shape[0], x.shape[1], ho, wo}, x.dtype};
    }

    case OpKind::kAdd:
    case OpKind::kQAdd: {
      arity(2, 2);
      const TensorType& a = in_type(*this, n, 0);
      const TensorType& b = in_type(*this, n, 1);
      require(a.shape == b.shape, "add: shape mismatch");
      require(a.dtype == b.dtype, "add: dtype mismatch");
      require(a.dtype == (n.op == OpKind::kQAdd ? DType::kI8 : DType::kF32), "add: dtype");
      return a;
    }

    case OpKind::kGlobalAvgPool:
    case OpKind::kQGlobalAvgPool: {
      arity(1, 1);
      const TensorType& x = in_type(*this, n, 0);
      require(x.shape.rank() == 4, "gap: rank-4 input");
      require(x.dtype == (n.op == OpKind::kQGlobalAvgPool ? DType::kI8 : DType::kF32),
              "gap: dtype");
      return {Shape{x.shape[0], x.shape[1]}, x.dtype};
    }

    case OpKind::kLinear:
    case OpKind::kQLinear: {
      const bool q = n.op == OpKind::kQLinear;
      arity(q ? 3 : 2, 3);
      const TensorType& x = in_type(*this, n, 0);
      const TensorType& w = in_type(*this, n, 1);
      require(x.shape.rank() == 2 && w.shape.rank() == 2, "linear: rank-2 x and weight");
      require(w.shape[1] == x.shape[1], "linear: feature mismatch");
      require(x.dtype == (q ? DType::kI8 : DType::kF32), "linear: activation dtype");
      if (n.inputs.size() == 3) {
        const TensorType& b = in_type(*this, n, 2);
        require(b.shape.rank() == 1 && b.shape[0] == w.shape[0], "linear: bias shape");
        require(b.dtype == (q ? DType::kI32 : DType::kF32), "linear: bias dtype");
      }
      return {Shape{x.shape[0], w.shape[0]}, x.dtype};
    }

    case OpKind::kQuantize: {
      arity(1, 1);
      const TensorType& x = in_type(*this, n, 0);
      require(x.dtype == DType::kF32, "quantize: f32 input required");
      return {x.shape, DType::kI8};
    }

    case OpKind::kDequantize: {
      arity(1, 1);
      const TensorType& x = in_type(*this, n, 0);
      require(x.dtype == DType::kI8, "dequantize: i8 input required");
      return {x.shape, DType::kF32};
    }
  }
  throw std::invalid_argument("infer_type: unhandled op kind");
}

int Graph::executed_node_count() const {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node.op != OpKind::kConst && node.op != OpKind::kInput) ++n;
  }
  return n;
}

long long Graph::const_bytes() const {
  long long total = 0;
  for (const auto& node : nodes_) {
    if (node.is_const()) total += node.type.bytes();
  }
  return total;
}

int Graph::compact() {
  if (output_ < 0) throw std::logic_error("Graph::compact: no output set");
  std::vector<bool> live(nodes_.size(), false);
  std::vector<int> stack = {output_};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (live[static_cast<std::size_t>(id)]) continue;
    live[static_cast<std::size_t>(id)] = true;
    for (int in : nodes_[static_cast<std::size_t>(id)].inputs) stack.push_back(in);
  }
  // The input stays even if a pass disconnected it (the runtime's entry
  // contract); unreachable inputs would make the executable ill-formed.
  if (input_ >= 0) live[static_cast<std::size_t>(input_)] = true;

  std::vector<int> remap(nodes_.size(), -1);
  std::vector<Node> kept;
  kept.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!live[i]) continue;
    remap[i] = static_cast<int>(kept.size());
    kept.push_back(std::move(nodes_[i]));
  }
  const int removed = static_cast<int>(nodes_.size() - kept.size());
  nodes_ = std::move(kept);
  for (auto& node : nodes_) {
    node.id = remap[static_cast<std::size_t>(node.id)];
    for (int& in : node.inputs) in = remap[static_cast<std::size_t>(in)];
  }
  input_ = input_ >= 0 ? remap[static_cast<std::size_t>(input_)] : -1;
  output_ = remap[static_cast<std::size_t>(output_)];
  return removed;
}

void Graph::validate() const {
  if (input_ < 0) throw std::logic_error("Graph::validate: no input declared");
  if (output_ < 0) throw std::logic_error("Graph::validate: no output set");
  for (const auto& node : nodes_) {
    for (int in : node.inputs) {
      if (in < 0 || in >= size()) throw std::logic_error("Graph::validate: dangling input id");
      // Topology: an executed node may only consume constants or
      // earlier nodes — the node list must be a valid schedule.
      const Node& producer = nodes_[static_cast<std::size_t>(in)];
      if (!producer.is_const() && in >= node.id) {
        throw std::logic_error("Graph::validate: node %" + std::to_string(node.id) +
                               " consumes later node %" + std::to_string(in));
      }
    }
    // Re-infer and compare: passes must keep types consistent.
    if (node.op != OpKind::kInput && node.op != OpKind::kConst) {
      TensorType t = infer_type(node);
      if (!(t == node.type)) {
        throw std::logic_error("Graph::validate: stale type on %" + std::to_string(node.id) +
                               " (" + node.type.to_string() + " vs inferred " + t.to_string() +
                               ")");
      }
    }
  }
}

Graph Graph::from_nodes(std::vector<Node> nodes, int input, int output) {
  Graph g;
  g.nodes_ = std::move(nodes);
  const int n = g.size();
  if (input < 0 || input >= n) {
    throw std::invalid_argument("Graph::from_nodes: input id out of range");
  }
  if (output < 0 || output >= n) {
    throw std::invalid_argument("Graph::from_nodes: output id out of range");
  }
  for (int i = 0; i < n; ++i) {
    const Node& node = g.nodes_[static_cast<std::size_t>(i)];
    if (node.id != i) {
      throw std::invalid_argument("Graph::from_nodes: node id/index mismatch at " +
                                  std::to_string(i));
    }
    if ((node.op == OpKind::kInput) != (i == input)) {
      throw std::invalid_argument(
          "Graph::from_nodes: exactly the declared input node may be kInput (node " +
          std::to_string(i) + ")");
    }
    const std::size_t numel = node.type.shape.numel();
    bool payload_ok = false;
    if (node.is_const()) {
      switch (node.type.dtype) {
        case DType::kF32:
          payload_ok = node.f32_data.shape() == node.type.shape && node.i8_data.empty() &&
                       node.i32_data.empty();
          break;
        case DType::kI8:
          payload_ok = node.i8_data.size() == numel && node.f32_data.empty() &&
                       node.i32_data.empty();
          break;
        case DType::kI32:
          payload_ok = node.i32_data.size() == numel && node.f32_data.empty() &&
                       node.i8_data.empty();
          break;
      }
    } else {
      payload_ok = node.f32_data.empty() && node.i8_data.empty() && node.i32_data.empty();
    }
    if (!payload_ok) {
      throw std::invalid_argument("Graph::from_nodes: const payload/type mismatch on %" +
                                  std::to_string(i));
    }
  }
  g.input_ = input;
  g.output_ = output;
  g.validate();
  return g;
}

std::string Graph::to_string() const {
  std::ostringstream ss;
  ss << "graph {  // " << size() << " nodes, " << executed_node_count() << " executed\n";
  for (const auto& node : nodes_) ss << "  " << node.to_string() << "\n";
  ss << "  output %" << output_ << "\n}";
  return ss.str();
}

}  // namespace micronas::ir
