// Typed dataflow IR for the deployment compiler (src/compile/) and the
// reference runtime (src/rt/).
//
// A Graph is a flat, topologically ordered list of single-output nodes;
// a node's id doubles as the id of the value it produces, so the node
// list *is* the execution schedule. Constants (weights, folded
// batch-norm parameters, quantized tensors) are nodes too — they model
// flash-resident data, are skipped by the executor and the memory
// planner, and may appear anywhere in the list (passes append new
// constants after the nodes that consume them).
//
// Shape and dtype inference runs at construction: add_node computes the
// output TensorType from the inputs and attributes and throws on
// inconsistent wiring, so a Graph that exists is well-typed. The
// mid-level op set intentionally mirrors what the NB201 deployment
// skeleton needs — this is a TinyML deployment IR, not a general one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/const_view.hpp"
#include "src/hw/quant.hpp"
#include "src/tensor/tensor.hpp"

namespace micronas::ir {

enum class DType { kF32, kI8, kI32 };

const std::string& dtype_name(DType d);
int dtype_bytes(DType d);

/// Static type of one value: shape + element dtype.
struct TensorType {
  Shape shape;
  DType dtype = DType::kF32;

  long long bytes() const {
    return static_cast<long long>(shape.numel()) * dtype_bytes(dtype);
  }
  bool operator==(const TensorType& o) const { return shape == o.shape && dtype == o.dtype; }
  std::string to_string() const;
};

enum class OpKind {
  kInput,        // graph input placeholder
  kConst,        // flash-resident constant (weights, scales, zeros)
  kConv2d,       // inputs: x, weight[, bias]; optional fused ReLU
  kBatchNorm,    // inputs: x, gamma, beta, mean, var (all [C])
  kChannelAffine,// inputs: x, scale[C], shift[C] — folded batch norm
  kRelu,         // inputs: x
  kAvgPool,      // inputs: x (count_include_pad)
  kAdd,          // inputs: a, b (same type)
  kGlobalAvgPool,// inputs: x; [N,C,H,W] -> [N,C]
  kLinear,       // inputs: x, weight[, bias]
  kQuantize,     // f32 -> i8 with out_q
  kDequantize,   // i8 -> f32 with in_q
  kQConv2d,      // inputs: x(i8), weight(i8), bias(i32); per-channel requant
  kQAvgPool,     // i8 pooling with requant
  kQAdd,         // i8 add; per-operand requant
  kQGlobalAvgPool,
  kQLinear,
  kQRelu,        // max(q, zero_point); in/out share params
};

const std::string& op_kind_name(OpKind kind);

/// Number of OpKind values — range check for deserialized op bytes
/// (static_assert'd against the name table in graph.cpp).
inline constexpr int kOpKindCount = 18;

/// Convolution / pooling geometry (also reused by kLinear for nothing
/// but uniformity — unused fields stay at their defaults).
struct ConvAttrs {
  int kernel = 1;
  int stride = 1;
  int pad = 0;
  bool fused_relu = false;
  double bn_eps = 1e-5;  // kBatchNorm only
};

/// Quantization attributes of a quantized node's output (and, for
/// requantizing ops, the fixed-point multipliers that map the int32
/// accumulator domain onto it). Populated by the int8-ptq pass.
struct QuantAttrs {
  AffineParams in_q;    // input activation params (kQuantize: of the f32 source)
  AffineParams in2_q;   // second operand (kQAdd)
  AffineParams out_q;   // output activation params
  /// Per-output-channel requant multipliers (kQConv2d / kQLinear:
  /// in_scale * w_scale[c] / out_scale; kQAvgPool / kQGlobalAvgPool /
  /// kQAdd: single-entry).
  std::vector<std::int32_t> mantissa;
  std::vector<int> shift;
  /// Second-operand multiplier (kQAdd).
  std::int32_t mantissa2 = 0;
  int shift2 = 0;
};

struct Node {
  int id = -1;
  OpKind op = OpKind::kInput;
  std::string name;            // diagnostic label, e.g. "cell2.n3.e1.conv3x3"
  std::vector<int> inputs;     // producer node ids
  TensorType type;             // output type
  ConvAttrs conv;
  QuantAttrs quant;

  // Constant payload; exactly one is populated, per type.dtype.
  // i8_data is a ConstView so a mapped package (serialize::
  // MappedPackage) can point weights straight into the file image —
  // graphs built in memory keep owning their payloads through the
  // implicit vector conversion.
  Tensor f32_data;
  ConstView<std::int8_t> i8_data;
  std::vector<std::int32_t> i32_data;

  bool is_const() const { return op == OpKind::kConst; }
  std::string to_string() const;
};

class Graph {
 public:
  /// Declare the (single) graph input; must be the first node added.
  int add_input(TensorType type, std::string name = "input");

  int add_const(Tensor data, std::string name);
  int add_const_i8(Shape shape, std::vector<std::int8_t> data, std::string name);
  int add_const_i32(Shape shape, std::vector<std::int32_t> data, std::string name);

  /// Append an op node; infers and validates the output type, throws
  /// std::invalid_argument on malformed wiring. Returns the node id.
  int add_node(OpKind op, std::vector<int> inputs, ConvAttrs attrs = {},
               std::string name = {});

  void set_output(int id);
  int output() const { return output_; }
  int input() const { return input_; }

  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Number of non-const, non-input (i.e. executed) nodes.
  int executed_node_count() const;
  /// Total bytes of constant payloads (the flash image of the graph).
  long long const_bytes() const;

  /// Drop every node not reachable from the output, preserving order,
  /// and remap ids. Returns the number of nodes removed.
  int compact();

  /// Structural validation (wiring, types, topology of executed nodes);
  /// throws std::logic_error with a description on violation.
  void validate() const;

  /// Reassemble a graph from raw node records — the deserializer path:
  /// constants may appear after their consumers (passes append them),
  /// so a saved node list cannot be replayed through add_node. Checks
  /// id/index agreement, the single-kInput invariant and const
  /// payload/type consistency, then runs the same type re-inference
  /// and topology validation as validate(); throws on any violation.
  static Graph from_nodes(std::vector<Node> nodes, int input, int output);

  std::string to_string() const;

 private:
  int append(Node n);
  TensorType infer_type(const Node& n) const;

  std::vector<Node> nodes_;
  int input_ = -1;
  int output_ = -1;
};

}  // namespace micronas::ir
