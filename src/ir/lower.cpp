#include "src/ir/lower.hpp"

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nb201/ops.hpp"

namespace micronas::ir {

namespace {

/// Builder threaded through the skeleton emission. Every parameterized
/// layer draws from its own forked stream so the weights of one layer
/// do not depend on how many layers precede it.
struct Lowering {
  Graph graph;
  const LowerOptions& options;
  Rng rng;
  std::uint64_t layer_counter = 0;
  // One shared all-zero constant per activation shape (`none` edges).
  std::map<std::vector<int>, int> zero_consts;

  explicit Lowering(const LowerOptions& opts) : options(opts), rng(splitmix64(opts.seed)) {}

  Rng layer_rng() { return rng.fork(++layer_counter); }

  int zero_const(const Shape& shape) {
    auto it = zero_consts.find(shape.dims());
    if (it != zero_consts.end()) return it->second;
    const int id = graph.add_const(Tensor(shape), "zero" + shape.to_string());
    zero_consts.emplace(shape.dims(), id);
    return id;
  }

  /// conv(+BN)(+ReLU): the canonical parameterized chain. Returns the
  /// id of the chain's last node.
  int conv_bn_relu(int x, int cout, int kernel, int stride, int pad, bool relu,
                   const std::string& name) {
    Rng wrng = layer_rng();
    const int cin = graph.node(x).type.shape[1];
    Tensor weight(Shape{cout, cin, kernel, kernel});
    const float stddev =
        std::sqrt(2.0F / static_cast<float>(cin * kernel * kernel));  // Kaiming
    wrng.fill_normal(weight.data(), 0.0F, stddev);
    const int w = graph.add_const(std::move(weight), name + ".w");

    ConvAttrs attrs;
    attrs.kernel = kernel;
    attrs.stride = stride;
    attrs.pad = pad;
    int y = graph.add_node(OpKind::kConv2d, {x, w}, attrs, name);

    if (options.emit_batch_norm) {
      Tensor gamma(Shape{cout}), beta(Shape{cout}), mean(Shape{cout}), var(Shape{cout});
      wrng.fill_uniform(gamma.data(), 0.8F, 1.2F);
      wrng.fill_normal(beta.data(), 0.0F, 0.1F);
      wrng.fill_normal(mean.data(), 0.0F, 0.1F);
      wrng.fill_uniform(var.data(), 0.5F, 1.5F);
      const int g = graph.add_const(std::move(gamma), name + ".bn.gamma");
      const int b = graph.add_const(std::move(beta), name + ".bn.beta");
      const int mu = graph.add_const(std::move(mean), name + ".bn.mean");
      const int v = graph.add_const(std::move(var), name + ".bn.var");
      y = graph.add_node(OpKind::kBatchNorm, {y, g, b, mu, v}, {}, name + ".bn");
    }
    if (relu) y = graph.add_node(OpKind::kRelu, {y}, {}, name + ".relu");
    return y;
  }

  /// One searched cell: node j = Σ_{i<j} op(i→j)(node_i).
  int cell(int x, const nb201::Genotype& g, const std::string& name) {
    std::vector<int> node_vals(nb201::kNumNodes, -1);
    node_vals[0] = x;
    for (int node = 1; node < nb201::kNumNodes; ++node) {
      int acc = -1;
      for (int from = 0; from < node; ++from) {
        const std::string ename =
            name + ".n" + std::to_string(node) + ".e" + std::to_string(from);
        const int src = node_vals[static_cast<std::size_t>(from)];
        int contrib = -1;
        switch (g.op(from, node)) {
          case nb201::Op::kNone:
            contrib = zero_const(graph.node(src).type.shape);
            break;
          case nb201::Op::kSkipConnect:
            contrib = src;  // identity edges alias their source value
            break;
          case nb201::Op::kConv1x1: {
            const int c = graph.node(src).type.shape[1];
            contrib = conv_bn_relu(src, c, 1, 1, 0, true, ename + ".conv1x1");
            break;
          }
          case nb201::Op::kConv3x3: {
            const int c = graph.node(src).type.shape[1];
            contrib = conv_bn_relu(src, c, 3, 1, 1, true, ename + ".conv3x3");
            break;
          }
          case nb201::Op::kAvgPool3x3: {
            ConvAttrs attrs;
            attrs.kernel = 3;
            attrs.stride = 1;
            attrs.pad = 1;
            contrib = graph.add_node(OpKind::kAvgPool, {src}, attrs, ename + ".avg_pool");
            break;
          }
        }
        acc = acc < 0 ? contrib
                      : graph.add_node(OpKind::kAdd, {acc, contrib}, {},
                                       name + ".n" + std::to_string(node) + ".sum");
      }
      node_vals[static_cast<std::size_t>(node)] = acc;
    }
    return node_vals[nb201::kNumNodes - 1];
  }

  /// NB201 residual reduction: conv3x3(s2)-BN-ReLU → conv3x3-BN on the
  /// main path, 1x1(s2)-BN shortcut, elementwise add, ReLU.
  int reduction(int x, const std::string& name) {
    const int cin = graph.node(x).type.shape[1];
    const int cout = cin * 2;
    int main_path = conv_bn_relu(x, cout, 3, 2, 1, true, name + ".conv_a");
    main_path = conv_bn_relu(main_path, cout, 3, 1, 1, false, name + ".conv_b");
    const int shortcut = conv_bn_relu(x, cout, 1, 2, 0, false, name + ".shortcut");
    const int sum = graph.add_node(OpKind::kAdd, {main_path, shortcut}, {}, name + ".add");
    return graph.add_node(OpKind::kRelu, {sum}, {}, name + ".relu");
  }
};

}  // namespace

Graph lower_genotype(const nb201::Genotype& genotype, const LowerOptions& options) {
  const MacroNetConfig& m = options.macro;
  if (m.num_stages < 1 || m.cells_per_stage < 1) {
    throw std::invalid_argument("lower_genotype: stages and cells_per_stage must be >= 1");
  }
  Lowering lw(options);

  int x = lw.graph.add_input(
      TensorType{Shape{options.batch, m.input_channels, m.input_size, m.input_size},
                 DType::kF32});

  x = lw.conv_bn_relu(x, m.base_channels, 3, 1, 1, true, "stem");

  for (int stage = 0; stage < m.num_stages; ++stage) {
    const std::string sname = std::string("s") + std::to_string(stage);
    if (stage > 0) x = lw.reduction(x, sname + ".reduce");
    for (int c = 0; c < m.cells_per_stage; ++c) {
      x = lw.cell(x, genotype, sname + ".c" + std::to_string(c));
    }
  }

  x = lw.graph.add_node(OpKind::kGlobalAvgPool, {x}, {}, "gap");

  {
    Rng wrng = lw.layer_rng();
    const int features = lw.graph.node(x).type.shape[1];
    Tensor weight(Shape{m.num_classes, features});
    wrng.fill_normal(weight.data(), 0.0F, std::sqrt(1.0F / static_cast<float>(features)));
    Tensor bias(Shape{m.num_classes});
    wrng.fill_normal(bias.data(), 0.0F, 0.01F);
    const int w = lw.graph.add_const(std::move(weight), "fc.w");
    const int b = lw.graph.add_const(std::move(bias), "fc.b");
    x = lw.graph.add_node(OpKind::kLinear, {x, w, b}, {}, "fc");
  }

  lw.graph.set_output(x);
  lw.graph.validate();
  return std::move(lw.graph);
}

}  // namespace micronas::ir
