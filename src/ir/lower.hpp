// Lowering frontend: NB201 genotype -> dataflow IR.
//
// Expands the searched cell into the full deployment skeleton (the same
// macro structure as net/macro_net.cpp: stem -> cells_per_stage cells
// per stage with residual reductions between stages -> GAP -> FC), but
// as an executable graph with materialized weights instead of a flat
// LayerSpec list. Convolutions are emitted un-fused as
// conv -> batch_norm -> relu chains with freshly initialized parameters
// (there is no trained checkpoint in this environment; weights are a
// deterministic function of the seed), which is exactly the shape the
// compile passes expect: constant folding collapses the four BN
// parameter vectors into a channel affine, fusion folds the affine and
// the ReLU into the conv, and DCE sweeps the orphaned constants.
//
// `none` edges lower to an explicit zero constant feeding the node sum
// — semantically faithful to the supernet, and eliminated at compile
// time by the add-zero rewrite rather than special-cased here.
#pragma once

#include <cstdint>

#include "src/ir/graph.hpp"
#include "src/net/macro_net.hpp"

namespace micronas::ir {

struct LowerOptions {
  MacroNetConfig macro;         // deployment skeleton (NB201 defaults)
  int batch = 1;                // inference batch size
  std::uint64_t seed = 1;       // weight/BN parameter streams
  bool emit_batch_norm = true;  // false: bare conv(+relu) chains
};

/// Build the float deployment graph for `genotype`.
Graph lower_genotype(const nb201::Genotype& genotype, const LowerOptions& options = {});

}  // namespace micronas::ir
