// Post-training int8 quantization model (extension beyond the paper).
//
// The paper's fp32 deployment is what the latency numbers in §III
// describe, but real MCU deployments of CIFAR-scale networks are int8
// (TFLite-Micro / X-CUBE-AI style): the Cortex-M7's SMLAD dual-MAC
// path roughly quadruples MAC throughput and activations shrink 4×,
// which is what lets full cells fit the F746's 320 KB SRAM. This
// module derives the quantized deployment model and its accuracy
// penalty so quantization can participate in search constraints.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "src/hw/memory_model.hpp"
#include "src/net/macro_net.hpp"

namespace micronas {

struct QuantSpec {
  int bits = 8;
  /// Accuracy drop (percentage points) of post-training int8
  /// quantization on well-conditioned CNNs — sub-point in practice.
  double accuracy_penalty_pts = 0.4;
  /// Per-channel scale/zero-point pairs stored alongside the weights.
  int overhead_bytes_per_channel = 8;
};

/// Copy of `model` with every layer retagged to the quantized
/// precision. Shapes and schedules are unchanged.
MacroModel quantize_model(const MacroModel& model, const QuantSpec& spec = {});

/// True if every layer of the model carries the same precision `bits`.
bool model_is_uniform_precision(const MacroModel& model, int bits);

/// Memory accounting for a (possibly quantized) model: byte widths are
/// taken from the layer specs, plus quantizer metadata in flash.
MemoryReport analyze_quantized_memory(const MacroModel& model, const QuantSpec& spec = {});

/// Surrogate accuracy after quantization.
double quantized_accuracy(double fp32_accuracy, const QuantSpec& spec = {});

// ------------------------------------------------------- affine arithmetic
//
// The numeric substrate of the int8 deployment path (src/compile/,
// src/rt/): TFLite-style affine quantization. real = scale * (q - zp),
// with asymmetric per-tensor activations and symmetric per-channel
// weights. Requantization of int32 accumulators goes through a
// fixed-point multiplier (gemmlowp idiom: saturating rounding doubling
// high mul + rounding right shift) so inference is integer-exact and
// bit-identical across runs, threads and hosts.

inline constexpr int kInt8Min = -128;
inline constexpr int kInt8Max = 127;

/// real = scale * (q - zero_point), q in [-128, 127].
struct AffineParams {
  double scale = 1.0;
  int zero_point = 0;
};

/// Asymmetric parameters covering [min, max] (range is widened to
/// include 0 so that real zero is exactly representable; degenerate
/// ranges get scale 1). The zero point is nudged onto the int8 grid.
AffineParams choose_affine_params(double min, double max);

/// Symmetric weight scale for |w| <= abs_max mapped onto [-127, 127]
/// (zero point fixed at 0; degenerate abs_max gets scale 1).
double choose_symmetric_scale(double abs_max);

/// Decompose a positive real multiplier into a Q31 fixed-point
/// `mantissa` and a power-of-two `shift` such that
/// m ~= mantissa * 2^(shift - 31). Exact for powers of two.
void quantize_multiplier(double m, std::int32_t* mantissa, int* shift);

/// (a * b) rounded to the high 32 bits of the doubled 64-bit product.
/// Saturates the single overflow case a == b == INT32_MIN.
///
/// This and the two helpers below are defined inline: every int8
/// kernel calls them once per OUTPUT element, so a function call here
/// is a measurable fraction of conv/add/pool wall time and blocks the
/// compiler from vectorizing the requant tail of the kernels.
inline std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a, std::int32_t b) {
  const bool overflow = a == b && a == std::numeric_limits<std::int32_t>::min();
  if (overflow) return std::numeric_limits<std::int32_t>::max();
  const std::int64_t ab = static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
  const std::int32_t nudge = ab >= 0 ? (1 << 30) : (1 - (1 << 30));
  return static_cast<std::int32_t>((ab + nudge) / (1LL << 31));
}

/// x / 2^exponent with round-to-nearest, ties away from zero.
inline std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent) {
  if (exponent < 0 || exponent > 31) [[unlikely]] {
    throw std::invalid_argument("rounding_divide_by_pot: exponent out of [0, 31]");
  }
  if (exponent == 0) return x;
  const std::int32_t mask = static_cast<std::int32_t>((1LL << exponent) - 1);
  const std::int32_t remainder = x & mask;
  std::int32_t threshold = mask >> 1;
  if (x < 0) threshold += 1;
  std::int32_t result = x >> exponent;
  if (remainder > threshold) result += 1;
  return result;
}

/// Apply a quantized multiplier produced by quantize_multiplier.
inline std::int32_t multiply_by_quantized_multiplier(std::int32_t x, std::int32_t mantissa,
                                                     int shift) {
  // x * mantissa * 2^(shift - 31): the high mul supplies 2^-31; the
  // remaining power of two is applied as a shift on either side.
  const int left_shift = shift > 0 ? shift : 0;
  const int right_shift = shift > 0 ? 0 : -shift;
  const std::int32_t shifted =
      static_cast<std::int32_t>(static_cast<std::uint32_t>(x) << left_shift);
  return rounding_divide_by_pot(saturating_rounding_doubling_high_mul(shifted, mantissa),
                                right_shift);
}

/// Round-to-nearest quantization with saturation to [-128, 127].
std::int8_t quantize_one(float v, const AffineParams& p);
float dequantize_one(std::int8_t q, const AffineParams& p);

}  // namespace micronas
