// Post-training int8 quantization model (extension beyond the paper).
//
// The paper's fp32 deployment is what the latency numbers in §III
// describe, but real MCU deployments of CIFAR-scale networks are int8
// (TFLite-Micro / X-CUBE-AI style): the Cortex-M7's SMLAD dual-MAC
// path roughly quadruples MAC throughput and activations shrink 4×,
// which is what lets full cells fit the F746's 320 KB SRAM. This
// module derives the quantized deployment model and its accuracy
// penalty so quantization can participate in search constraints.
#pragma once

#include "src/hw/memory_model.hpp"
#include "src/net/macro_net.hpp"

namespace micronas {

struct QuantSpec {
  int bits = 8;
  /// Accuracy drop (percentage points) of post-training int8
  /// quantization on well-conditioned CNNs — sub-point in practice.
  double accuracy_penalty_pts = 0.4;
  /// Per-channel scale/zero-point pairs stored alongside the weights.
  int overhead_bytes_per_channel = 8;
};

/// Copy of `model` with every layer retagged to the quantized
/// precision. Shapes and schedules are unchanged.
MacroModel quantize_model(const MacroModel& model, const QuantSpec& spec = {});

/// True if every layer of the model carries the same precision `bits`.
bool model_is_uniform_precision(const MacroModel& model, int bits);

/// Memory accounting for a (possibly quantized) model: byte widths are
/// taken from the layer specs, plus quantizer metadata in flash.
MemoryReport analyze_quantized_memory(const MacroModel& model, const QuantSpec& spec = {});

/// Surrogate accuracy after quantization.
double quantized_accuracy(double fp32_accuracy, const QuantSpec& spec = {});

}  // namespace micronas
