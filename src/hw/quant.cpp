#include "src/hw/quant.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/proxies/flops.hpp"

namespace micronas {

MacroModel quantize_model(const MacroModel& model, const QuantSpec& spec) {
  if (spec.bits != 8 && spec.bits != 16 && spec.bits != 32) {
    throw std::invalid_argument("quantize_model: bits must be 8, 16 or 32");
  }
  MacroModel q = model;
  for (auto& layer : q.layers) layer.bits = spec.bits;
  return q;
}

bool model_is_uniform_precision(const MacroModel& model, int bits) {
  return std::all_of(model.layers.begin(), model.layers.end(),
                     [&](const LayerSpec& l) { return l.bits == bits; });
}

MemoryReport analyze_quantized_memory(const MacroModel& model, const QuantSpec& spec) {
  MemoryModelSpec mem;
  mem.bytes_per_activation = spec.bits / 8;
  mem.bytes_per_weight = spec.bits / 8;
  MemoryReport r = analyze_memory(model, mem);

  // Quantizer metadata: per-output-channel scale + zero point for every
  // parameterized layer, stored in flash.
  long long channels = 0;
  for (const auto& layer : model.layers) {
    if (layer.kind == LayerKind::kConv || layer.kind == LayerKind::kLinear) {
      channels += layer.cout;
    }
  }
  r.flash_bytes += channels * spec.overhead_bytes_per_channel;
  return r;
}

double quantized_accuracy(double fp32_accuracy, const QuantSpec& spec) {
  if (spec.bits >= 32) return fp32_accuracy;
  // 16-bit is lossless in practice; 8-bit pays the configured penalty.
  const double penalty = spec.bits <= 8 ? spec.accuracy_penalty_pts : 0.0;
  return std::max(0.0, fp32_accuracy - penalty);
}

}  // namespace micronas
