#include "src/hw/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "src/proxies/flops.hpp"

namespace micronas {

MacroModel quantize_model(const MacroModel& model, const QuantSpec& spec) {
  if (spec.bits != 8 && spec.bits != 16 && spec.bits != 32) {
    throw std::invalid_argument("quantize_model: bits must be 8, 16 or 32");
  }
  MacroModel q = model;
  for (auto& layer : q.layers) layer.bits = spec.bits;
  return q;
}

bool model_is_uniform_precision(const MacroModel& model, int bits) {
  return std::all_of(model.layers.begin(), model.layers.end(),
                     [&](const LayerSpec& l) { return l.bits == bits; });
}

MemoryReport analyze_quantized_memory(const MacroModel& model, const QuantSpec& spec) {
  MemoryModelSpec mem;
  mem.bytes_per_activation = spec.bits / 8;
  mem.bytes_per_weight = spec.bits / 8;
  MemoryReport r = analyze_memory(model, mem);

  // Quantizer metadata: per-output-channel scale + zero point for every
  // parameterized layer, stored in flash.
  long long channels = 0;
  for (const auto& layer : model.layers) {
    if (layer.kind == LayerKind::kConv || layer.kind == LayerKind::kLinear) {
      channels += layer.cout;
    }
  }
  r.flash_bytes += channels * spec.overhead_bytes_per_channel;
  return r;
}

double quantized_accuracy(double fp32_accuracy, const QuantSpec& spec) {
  if (spec.bits >= 32) return fp32_accuracy;
  // 16-bit is lossless in practice; 8-bit pays the configured penalty.
  const double penalty = spec.bits <= 8 ? spec.accuracy_penalty_pts : 0.0;
  return std::max(0.0, fp32_accuracy - penalty);
}

AffineParams choose_affine_params(double min, double max) {
  // Real zero must quantize exactly (zero padding, ReLU cutoff).
  min = std::min(min, 0.0);
  max = std::max(max, 0.0);
  AffineParams p;
  if (max - min < 1e-12) return p;  // degenerate: identity scale, zp 0
  p.scale = (max - min) / static_cast<double>(kInt8Max - kInt8Min);
  const double zp_real = static_cast<double>(kInt8Min) - min / p.scale;
  p.zero_point = static_cast<int>(std::lround(zp_real));
  p.zero_point = std::clamp(p.zero_point, kInt8Min, kInt8Max);
  return p;
}

double choose_symmetric_scale(double abs_max) {
  if (abs_max < 1e-12) return 1.0;
  return abs_max / static_cast<double>(kInt8Max);
}

void quantize_multiplier(double m, std::int32_t* mantissa, int* shift) {
  if (m <= 0.0 || !std::isfinite(m)) {
    throw std::invalid_argument("quantize_multiplier: multiplier must be positive and finite");
  }
  int exponent = 0;
  const double significand = std::frexp(m, &exponent);  // in [0.5, 1)
  auto q = static_cast<std::int64_t>(std::llround(significand * (1LL << 31)));
  if (q == (1LL << 31)) {  // rounding carried significand up to 1.0
    q /= 2;
    ++exponent;
  }
  *mantissa = static_cast<std::int32_t>(q);
  *shift = exponent;
}

std::int8_t quantize_one(float v, const AffineParams& p) {
  const long q = std::lround(static_cast<double>(v) / p.scale) + p.zero_point;
  return static_cast<std::int8_t>(std::clamp<long>(q, kInt8Min, kInt8Max));
}

float dequantize_one(std::int8_t q, const AffineParams& p) {
  return static_cast<float>(p.scale * (static_cast<int>(q) - p.zero_point));
}

}  // namespace micronas
