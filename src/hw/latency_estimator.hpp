// Compositional MCU latency estimator (paper §II.B.2).
//
// latency(model) ≈ Σ_layers LUT(layer) + constant overhead. The LUT is
// produced by the profiler; the constant overhead is profiled
// separately, exactly as the paper describes. `estimate` falls back to
// work-scaled nearest entries for shapes missing from the table.
#pragma once

#include "src/hw/latency_table.hpp"
#include "src/net/macro_net.hpp"

namespace micronas {

/// Frozen per-target estimator: profile once (hw/latency_table.hpp),
/// then estimate any candidate model without touching the device
/// again. Immutable after construction, so concurrent estimates from
/// the eval engine's workers are safe.
class LatencyEstimator {
 public:
  /// `table` is the profiled per-layer LUT; `constant_overhead_ms` the
  /// separately profiled fixed cost (interrupt setup, I/O);
  /// `clock_hz` converts table cycles to wall time.
  LatencyEstimator(LatencyTable table, double constant_overhead_ms, double clock_hz = 216e6);

  /// Estimated end-to-end inference latency in milliseconds.
  double estimate_ms(const MacroModel& model) const;

  /// Per-layer cycle estimate (exact lookup or scaled fallback; throws
  /// std::out_of_range if neither is possible).
  double layer_cycles(const LayerSpec& spec) const;

  /// Per-layer estimate in milliseconds.
  double layer_ms(const LayerSpec& spec) const { return layer_cycles(spec) / clock_hz_ * 1e3; }

  /// The profiled per-layer lookup table backing the estimates.
  const LatencyTable& table() const { return table_; }
  /// Fixed per-inference cost added on top of the per-layer sum.
  double constant_overhead_ms() const { return constant_overhead_ms_; }

 private:
  LatencyTable table_;
  double constant_overhead_ms_;
  double clock_hz_;
};

}  // namespace micronas
