// Compositional MCU latency estimator (paper §II.B.2).
//
// latency(model) ≈ Σ_layers LUT(layer) + constant overhead. The LUT is
// produced by the profiler; the constant overhead is profiled
// separately, exactly as the paper describes. `estimate` falls back to
// work-scaled nearest entries for shapes missing from the table.
#pragma once

#include "src/hw/latency_table.hpp"
#include "src/net/macro_net.hpp"

namespace micronas {

class LatencyEstimator {
 public:
  LatencyEstimator(LatencyTable table, double constant_overhead_ms, double clock_hz = 216e6);

  /// Estimated end-to-end inference latency in milliseconds.
  double estimate_ms(const MacroModel& model) const;

  /// Per-layer cycle estimate (exact lookup or scaled fallback; throws
  /// std::out_of_range if neither is possible).
  double layer_cycles(const LayerSpec& spec) const;

  /// Per-layer estimate in milliseconds.
  double layer_ms(const LayerSpec& spec) const { return layer_cycles(spec) / clock_hz_ * 1e3; }

  const LatencyTable& table() const { return table_; }
  double constant_overhead_ms() const { return constant_overhead_ms_; }

 private:
  LatencyTable table_;
  double constant_overhead_ms_;
  double clock_hz_;
};

}  // namespace micronas
