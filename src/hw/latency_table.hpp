// Per-operation latency lookup table (paper §II.B.2).
//
// "The approach involves profiling each operation individually within
// the search space and generating a reference lookup table." Keys are
// the structural fields that determine an op's cost on the MCU; values
// are median profiled cycles. The table round-trips through a text
// format so a profiling run is a reusable artifact.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "src/net/macro_net.hpp"

namespace micronas {

/// Lookup key: everything that determines a layer's cost.
struct LatencyKey {
  LayerKind kind = LayerKind::kConv;
  int cin = 0;
  int cout = 0;
  int h = 0;
  int w = 0;
  int kernel = 1;
  int stride = 1;
  int bits = 32;  // numeric precision (fp32 vs int8 kernels differ)

  static LatencyKey from_spec(const LayerSpec& spec);
  auto operator<=>(const LatencyKey&) const = default;
  std::string to_string() const;
};

class LatencyTable {
 public:
  void insert(const LatencyKey& key, double cycles);
  std::optional<double> lookup(const LatencyKey& key) const;
  bool contains(const LatencyKey& key) const { return lookup(key).has_value(); }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Nearest-entry fallback: same kind and kernel, cost scaled by the
  /// MAC (or element) ratio. Returns nullopt if no same-kind entry.
  std::optional<double> lookup_scaled(const LayerSpec& spec) const;

  /// Text round-trip: one `kind cin cout h w kernel stride cycles` line
  /// per entry, '#' comments allowed.
  std::string serialize() const;
  static LatencyTable deserialize(const std::string& text);
  void save(const std::string& path) const;
  static LatencyTable load(const std::string& path);

  const std::map<LatencyKey, double>& entries() const { return entries_; }

 private:
  std::map<LatencyKey, double> entries_;
};

}  // namespace micronas
