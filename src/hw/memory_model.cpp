#include "src/hw/memory_model.hpp"

#include <algorithm>

#include "src/proxies/flops.hpp"

namespace micronas {

namespace {

/// Live-buffer high-water mark for one layer: its input, its output,
/// and — inside a cell — the other node buffers the schedule keeps
/// alive. We bound the cell contribution by the worst case of the
/// NB201 schedule: when computing node 3, nodes 0..2 plus the partial
/// sum are resident (4 node buffers + 1 edge temporary).
long long layer_live_bytes(const LayerSpec& spec, int bpa) {
  return (spec.in_elems() + spec.out_elems()) * bpa;
}

/// True when the deployment compiler's row-strip streaming applies:
/// stride-1, resolution-preserving conv/pool geometry (the same test
/// rt::strip_streamable makes on the lowered graph), letting output
/// storage overlay the dying input.
bool layer_streamable(const LayerSpec& spec) {
  if (spec.kind != LayerKind::kConv && spec.kind != LayerKind::kAvgPool) return false;
  return spec.stride == 1 && spec.out_h == spec.h && spec.out_w == spec.w;
}

long long layer_streamed_live_bytes(const LayerSpec& spec, int bpa) {
  if (!layer_streamable(spec)) return layer_live_bytes(spec, bpa);
  return std::max(spec.in_elems(), spec.out_elems()) * bpa;
}

/// Cell-schedule term: while computing the cell output, the input
/// buffer, every *live* intermediate node buffer (a node is live when
/// some signal-carrying edge feeds it), the accumulating output and
/// one edge temporary are simultaneously resident. Streaming does not
/// shrink this term — it bounds the many-buffer interior of a cell,
/// not one layer's in/out pair.
long long cell_schedule_bytes(const MacroModel& model, int bytes_per_activation) {
  int live_nodes = 0;
  for (int node = 1; node < nb201::kNumNodes; ++node) {
    for (int from = 0; from < node; ++from) {
      if (nb201::op_carries_signal(model.genotype.op(from, node))) {
        ++live_nodes;
        break;
      }
    }
  }
  const long long live_buffers = 2 + live_nodes;  // input + temp + live nodes
  long long peak = 0;
  for (std::size_t start : model.cell_starts) {
    if (start >= model.layers.size()) continue;
    const auto& first = model.layers[start];
    const long long node_bytes = static_cast<long long>(first.cin) * first.h * first.w *
                                 bytes_per_activation;
    peak = std::max(peak, live_buffers * node_bytes);
  }
  return peak;
}

}  // namespace

long long peak_activation_bytes(const MacroModel& model, int bytes_per_activation) {
  long long peak = 0;
  for (const auto& spec : model.layers) {
    peak = std::max(peak, layer_live_bytes(spec, bytes_per_activation));
  }
  return std::max(peak, cell_schedule_bytes(model, bytes_per_activation));
}

MemoryReport analyze_memory(const MacroModel& model, const MemoryModelSpec& spec) {
  MemoryReport r;
  long long peak = 0;
  long long streamed_peak = 0;
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const long long live = layer_live_bytes(model.layers[i], spec.bytes_per_activation);
    streamed_peak = std::max(streamed_peak,
                             layer_streamed_live_bytes(model.layers[i], spec.bytes_per_activation));
    if (live > peak) {
      peak = live;
      peak_idx = i;
    }
  }
  const long long sched = cell_schedule_bytes(model, spec.bytes_per_activation);
  r.peak_sram_bytes = std::max(peak, sched) + spec.runtime_arena_bytes;
  r.streamed_peak_sram_bytes = std::max(streamed_peak, sched) + spec.runtime_arena_bytes;
  r.peak_layer_index = peak_idx;

  const ParamsBreakdown params = count_params(model);
  r.flash_bytes = params.total() * spec.bytes_per_weight + spec.code_flash_bytes;
  return r;
}

}  // namespace micronas
