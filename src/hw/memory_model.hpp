// Peak memory analysis of the deployment model (the paper lists peak
// MCU memory modeling as future work; we implement it).
//
// MCU inference is SRAM-bound: activations live in SRAM while weights
// stream from flash. The model follows the standard TinyML accounting
// (as in MCUNet/µNAS): peak SRAM = the largest set of simultaneously
// live activation buffers under the cell's execution schedule, plus a
// fixed runtime arena; flash = parameter bytes plus code.
#pragma once

#include "src/net/macro_net.hpp"

namespace micronas {

struct MemoryModelSpec {
  int bytes_per_activation = 4;   // fp32 inference
  int bytes_per_weight = 4;
  long long runtime_arena_bytes = 24 * 1024;  // scheduler + im2col scratch
  long long code_flash_bytes = 96 * 1024;     // runtime + kernels
};

struct MemoryReport {
  long long peak_sram_bytes = 0;
  long long flash_bytes = 0;
  /// Peak SRAM when the deployment compiler may row-strip-stream: a
  /// stride-1 resolution-preserving conv/pool can overlay its output on
  /// its dying input (rt::plan_memory rung 3), so that layer costs
  /// max(in, out) instead of in + out. This is the analytic floor the
  /// search compares against an `arena_budget`-constrained compile;
  /// always <= peak_sram_bytes.
  long long streamed_peak_sram_bytes = 0;
  /// Index into MacroModel::layers where the SRAM peak occurs.
  std::size_t peak_layer_index = 0;
  double peak_sram_kb() const { return static_cast<double>(peak_sram_bytes) / 1024.0; }
  double streamed_peak_sram_kb() const {
    return static_cast<double>(streamed_peak_sram_bytes) / 1024.0;
  }
  double flash_kb() const { return static_cast<double>(flash_bytes) / 1024.0; }
};

MemoryReport analyze_memory(const MacroModel& model, const MemoryModelSpec& spec = {});

/// Peak activation bytes only (no arena), used by the MCU simulator's
/// SRAM-pressure term.
long long peak_activation_bytes(const MacroModel& model, int bytes_per_activation = 4);

}  // namespace micronas
