#include "src/hw/latency_table.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace micronas {

LatencyKey LatencyKey::from_spec(const LayerSpec& spec) {
  LatencyKey k;
  k.kind = spec.kind;
  k.cin = spec.cin;
  k.cout = spec.cout;
  k.h = spec.h;
  k.w = spec.w;
  k.kernel = spec.kernel;
  k.stride = spec.stride;
  k.bits = spec.bits;
  return k;
}

std::string LatencyKey::to_string() const {
  std::ostringstream ss;
  ss << layer_kind_name(kind) << " " << cin << " " << cout << " " << h << " " << w << " "
     << kernel << " " << stride << " " << bits;
  return ss.str();
}

void LatencyTable::insert(const LatencyKey& key, double cycles) {
  if (cycles < 0.0 || !std::isfinite(cycles)) {
    throw std::invalid_argument("LatencyTable::insert: cycles must be finite and non-negative");
  }
  entries_[key] = cycles;
}

std::optional<double> LatencyTable::lookup(const LatencyKey& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> LatencyTable::lookup_scaled(const LayerSpec& spec) const {
  const LatencyKey key = LatencyKey::from_spec(spec);
  if (const auto exact = lookup(key)) return exact;

  // Scale from the nearest same-kind/kernel entry by work ratio.
  const double want_work = spec.kind == LayerKind::kConv || spec.kind == LayerKind::kLinear
                               ? static_cast<double>(spec.macs())
                               : static_cast<double>(spec.out_elems());
  const LatencyKey* best_key = nullptr;
  double best_cycles = 0.0;
  double best_ratio = 0.0;
  for (const auto& [k, cycles] : entries_) {
    if (k.kind != spec.kind || k.kernel != spec.kernel || k.bits != spec.bits) continue;
    LayerSpec ref;
    ref.kind = k.kind;
    ref.cin = k.cin;
    ref.cout = k.cout;
    ref.h = k.h;
    ref.w = k.w;
    ref.kernel = k.kernel;
    ref.stride = k.stride;
    ref.bits = k.bits;
    ref.pad = spec.pad;
    ref.out_h = (k.h + 2 * spec.pad - k.kernel) / k.stride + 1;
    ref.out_w = (k.w + 2 * spec.pad - k.kernel) / k.stride + 1;
    const double ref_work = ref.kind == LayerKind::kConv || ref.kind == LayerKind::kLinear
                                ? static_cast<double>(ref.macs())
                                : static_cast<double>(ref.out_elems());
    if (ref_work <= 0.0) continue;
    const double ratio = want_work / ref_work;
    // Prefer the reference whose work is closest (ratio nearest 1).
    if (best_key == nullptr || std::abs(std::log(ratio)) < std::abs(std::log(best_ratio))) {
      best_key = &k;
      best_cycles = cycles;
      best_ratio = ratio;
    }
  }
  if (best_key == nullptr) return std::nullopt;
  return best_cycles * best_ratio;
}

std::string LatencyTable::serialize() const {
  std::ostringstream ss;
  ss << "# micronas latency table: kind cin cout h w kernel stride bits cycles\n";
  ss.precision(17);
  for (const auto& [k, cycles] : entries_) {
    ss << layer_kind_name(k.kind) << " " << k.cin << " " << k.cout << " " << k.h << " " << k.w
       << " " << k.kernel << " " << k.stride << " " << k.bits << " " << cycles << "\n";
  }
  return ss.str();
}

namespace {
LayerKind kind_from_name(const std::string& name) {
  for (int i = 0; i < 6; ++i) {
    if (layer_kind_name(static_cast<LayerKind>(i)) == name) return static_cast<LayerKind>(i);
  }
  throw std::invalid_argument("LatencyTable: unknown layer kind '" + name + "'");
}
}  // namespace

LatencyTable LatencyTable::deserialize(const std::string& text) {
  LatencyTable table;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind_name;
    LatencyKey k;
    double cycles = 0.0;
    if (!(ls >> kind_name >> k.cin >> k.cout >> k.h >> k.w >> k.kernel >> k.stride >> k.bits >>
          cycles)) {
      throw std::invalid_argument("LatencyTable: malformed line: " + line);
    }
    k.kind = kind_from_name(kind_name);
    table.insert(k, cycles);
  }
  return table;
}

void LatencyTable::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("LatencyTable::save: cannot open " + path);
  out << serialize();
}

LatencyTable LatencyTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LatencyTable::load: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return deserialize(ss.str());
}

}  // namespace micronas
