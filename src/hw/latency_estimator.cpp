#include "src/hw/latency_estimator.hpp"

#include <stdexcept>

namespace micronas {

LatencyEstimator::LatencyEstimator(LatencyTable table, double constant_overhead_ms, double clock_hz)
    : table_(std::move(table)), constant_overhead_ms_(constant_overhead_ms), clock_hz_(clock_hz) {
  if (table_.empty()) throw std::invalid_argument("LatencyEstimator: empty table");
  if (clock_hz <= 0.0) throw std::invalid_argument("LatencyEstimator: clock must be positive");
  if (constant_overhead_ms < 0.0) throw std::invalid_argument("LatencyEstimator: negative overhead");
}

double LatencyEstimator::layer_cycles(const LayerSpec& spec) const {
  if (const auto scaled = table_.lookup_scaled(spec)) return *scaled;
  throw std::out_of_range("LatencyEstimator: no table entry for " + spec.to_string());
}

double LatencyEstimator::estimate_ms(const MacroModel& model) const {
  double cycles = 0.0;
  for (const auto& spec : model.layers) cycles += layer_cycles(spec);
  return cycles / clock_hz_ * 1e3 + constant_overhead_ms_;
}

}  // namespace micronas
