// Stateful layers: parameters + cached activations + backward.
//
// `Layer` is the unit the cell-network executor composes into a DAG.
// Each layer caches what its backward pass needs during forward;
// backward accumulates parameter gradients internally and returns the
// gradient w.r.t. its input. The NTK proxy reads parameter gradients
// through the param_spans()/grad_spans() views after each per-sample
// backward pass.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace micronas {

class Rng;

/// Abstract differentiable layer with zero or more parameter tensors.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  /// Gradient w.r.t. the *input* of the last forward; accumulates
  /// parameter gradients internally. Must be called after forward.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Mutable views over each parameter tensor / its gradient.
  virtual std::vector<std::span<float>> param_spans() { return {}; }
  virtual std::vector<std::span<float>> grad_spans() { return {}; }

  void zero_grad() {
    for (auto s : grad_spans()) {
      for (auto& g : s) g = 0.0F;
    }
  }

  /// Initialize parameters (no-op for parameter-free layers).
  virtual void init(Rng& /*rng*/) {}

  virtual std::string name() const = 0;

  /// Number of scalar parameters.
  std::size_t param_count() {
    std::size_t n = 0;
    for (auto s : param_spans()) n += s.size();
    return n;
  }
};

/// Convolution (square kernel, no bias by default — matching the
/// ReLU-conv blocks of NAS-Bench-201 where BN absorbs the bias).
class Conv2dLayer final : public Layer {
 public:
  Conv2dLayer(int cin, int cout, int kernel, int stride, int pad, bool bias = false);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::span<float>> param_spans() override;
  std::vector<std::span<float>> grad_spans() override;
  void init(Rng& rng) override;
  std::string name() const override;

  int cin() const { return cin_; }
  int cout() const { return cout_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int cin_, cout_, kernel_, stride_, pad_;
  bool has_bias_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;
};

/// ReLU; exposes the last activation mask for the linear-region proxy.
class ReluLayer final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "relu"; }

  const Tensor& last_mask() const { return mask_; }

 private:
  Tensor mask_;
};

/// Average pooling (count_include_pad semantics).
class AvgPoolLayer final : public Layer {
 public:
  AvgPoolLayer(int kernel, int stride, int pad) : kernel_(kernel), stride_(stride), pad_(pad) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;

 private:
  int kernel_, stride_, pad_;
  Shape input_shape_;
};

/// Identity (skip connection).
class IdentityLayer final : public Layer {
 public:
  Tensor forward(const Tensor& input) override { return input; }
  Tensor backward(const Tensor& grad_output) override { return grad_output; }
  std::string name() const override { return "identity"; }
};

/// Zero (the `none` operation): output is a zero tensor of input shape.
class ZeroLayer final : public Layer {
 public:
  Tensor forward(const Tensor& input) override {
    shape_ = input.shape();
    return Tensor(shape_);
  }
  Tensor backward(const Tensor& grad_output) override {
    (void)grad_output;
    return Tensor(shape_);
  }
  std::string name() const override { return "zero"; }

 private:
  Shape shape_;
};

/// Global average pool [N,C,H,W] -> [N,C].
class GlobalAvgPoolLayer final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "gap"; }

 private:
  Shape input_shape_;
};

/// Fully connected classifier head.
class LinearLayer final : public Layer {
 public:
  LinearLayer(int in_features, int out_features, bool bias = true);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::span<float>> param_spans() override;
  std::vector<std::span<float>> grad_spans() override;
  void init(Rng& rng) override;
  std::string name() const override;

 private:
  int in_features_, out_features_;
  bool has_bias_;
  Tensor weight_, bias_, grad_weight_, grad_bias_;
  Tensor cached_input_;
};

std::unique_ptr<Layer> make_conv(int cin, int cout, int kernel, int stride, int pad, bool bias = false);

}  // namespace micronas
