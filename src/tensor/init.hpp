// Weight initialization schemes.
//
// Zero-shot proxies are evaluated at initialization, so the init
// distribution *is* the measurement apparatus: Kaiming-normal keeps
// activation scale stable with depth, which is what the NTK and
// linear-region literature assumes.
#pragma once

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace micronas {

/// He/Kaiming normal: stddev = sqrt(2 / fan_in).
void init_kaiming_normal(Tensor& w, int fan_in, Rng& rng);

/// Xavier/Glorot uniform: limit = sqrt(6 / (fan_in + fan_out)).
void init_xavier_uniform(Tensor& w, int fan_in, int fan_out, Rng& rng);

/// Plain normal with explicit stddev.
void init_normal(Tensor& w, float stddev, Rng& rng);

}  // namespace micronas
