#include "src/tensor/tensor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace micronas {

Shape::Shape(std::initializer_list<int> dims) : dims_(dims) {
  for (int d : dims_) {
    if (d <= 0) throw std::invalid_argument("Shape: dimensions must be positive");
  }
  if (dims_.empty() || dims_.size() > 4) throw std::invalid_argument("Shape: rank must be 1..4");
}

Shape::Shape(std::vector<int> dims) : dims_(std::move(dims)) {
  for (int d : dims_) {
    if (d <= 0) throw std::invalid_argument("Shape: dimensions must be positive");
  }
  if (dims_.empty() || dims_.size() > 4) throw std::invalid_argument("Shape: rank must be 1..4");
}

int Shape::operator[](int i) const {
  if (i < 0 || i >= rank()) throw std::out_of_range("Shape: index out of range");
  return dims_[static_cast<std::size_t>(i)];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (int d : dims_) n *= static_cast<std::size_t>(d);
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream ss;
  ss << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) ss << ", ";
    ss << dims_[i];
  }
  ss << "]";
  return ss.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_.numel(), 0.0F) {}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)), data_(shape_.numel(), fill) {}

Tensor Tensor::from_vector(Shape shape, std::vector<float> values) {
  if (shape.numel() != values.size()) {
    throw std::invalid_argument("Tensor::from_vector: size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

void Tensor::check_rank4() const {
  if (shape_.rank() != 4) throw std::logic_error("Tensor: rank-4 accessor on rank-" + std::to_string(shape_.rank()));
}

std::size_t Tensor::offset(int n, int c, int h, int w) const {
  check_rank4();
  const int C = shape_[1], H = shape_[2], W = shape_[3];
  return ((static_cast<std::size_t>(n) * C + c) * H + h) * W + w;
}

float& Tensor::at(int n, int c, int h, int w) { return data_[offset(n, c, h, w)]; }
float Tensor::at(int n, int c, int h, int w) const { return data_[offset(n, c, h, w)]; }

float& Tensor::at(int r, int c) {
  if (shape_.rank() != 2) throw std::logic_error("Tensor: rank-2 accessor on rank-" + std::to_string(shape_.rank()));
  return data_[static_cast<std::size_t>(r) * shape_[1] + c];
}

float Tensor::at(int r, int c) const {
  if (shape_.rank() != 2) throw std::logic_error("Tensor: rank-2 accessor on rank-" + std::to_string(shape_.rank()));
  return data_[static_cast<std::size_t>(r) * shape_[1] + c];
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void require_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " + a.shape().to_string() +
                                " vs " + b.shape().to_string());
  }
}

Tensor& Tensor::add_(const Tensor& other) {
  require_same_shape(*this, other, "Tensor::add_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::axpy_(float a, const Tensor& x) {
  require_same_shape(*this, x, "Tensor::axpy_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * x.data_[i];
  return *this;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::abs_max() const {
  float m = 0.0F;
  for (float x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Tensor::dot(const Tensor& other) const {
  require_same_shape(*this, other, "Tensor::dot");
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    s += static_cast<double>(data_[i]) * other.data_[i];
  }
  return s;
}

double Tensor::l2_norm() const { return std::sqrt(dot(*this)); }

Tensor Tensor::slice_sample(int n) const {
  check_rank4();
  const int N = shape_[0], C = shape_[1], H = shape_[2], W = shape_[3];
  if (n < 0 || n >= N) throw std::out_of_range("Tensor::slice_sample: sample index");
  Tensor out(Shape{1, C, H, W});
  const std::size_t per = static_cast<std::size_t>(C) * H * W;
  for (std::size_t i = 0; i < per; ++i) out.data_[i] = data_[static_cast<std::size_t>(n) * per + i];
  return out;
}

std::string Tensor::to_string(int max_items) const {
  std::ostringstream ss;
  ss << "Tensor" << shape_.to_string() << " {";
  const std::size_t n = std::min<std::size_t>(data_.size(), static_cast<std::size_t>(max_items));
  for (std::size_t i = 0; i < n; ++i) {
    if (i) ss << ", ";
    ss << data_[i];
  }
  if (n < data_.size()) ss << ", ...";
  ss << "}";
  return ss.str();
}

}  // namespace micronas
