#include "src/tensor/init.hpp"

#include <cmath>
#include <stdexcept>

namespace micronas {

void init_kaiming_normal(Tensor& w, int fan_in, Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("init_kaiming_normal: fan_in must be positive");
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  rng.fill_normal(w.data(), 0.0F, stddev);
}

void init_xavier_uniform(Tensor& w, int fan_in, int fan_out, Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) throw std::invalid_argument("init_xavier_uniform: fans must be positive");
  const float limit = std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  rng.fill_uniform(w.data(), -limit, limit);
}

void init_normal(Tensor& w, float stddev, Rng& rng) { rng.fill_normal(w.data(), 0.0F, stddev); }

}  // namespace micronas
