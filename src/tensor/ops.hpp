// Free-function neural-network primitives with explicit backward passes.
//
// Each forward has a matching backward that maps (inputs, grad_output)
// to (grad_input, grad_params). Gradients are validated against finite
// differences in tests/test_ops_grad.cpp — the NTK proxy is only as
// good as these derivatives.
#pragma once

#include <vector>

#include "src/tensor/tensor.hpp"

namespace micronas::ops {

/// 2-D convolution, NCHW. weight shape [Cout, Cin, K, K]; optional bias [Cout].
/// Output spatial size: (H + 2*pad - K)/stride + 1 (must divide exactly or
/// truncate like standard frameworks — we use floor semantics).
/// Reference implementation (direct loops, double accumulation).
Tensor conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor* bias,
                      int stride, int pad);

/// im2col + GEMM convolution: identical semantics to conv2d_forward
/// (validated against it in tests), substantially faster for the
/// channel counts the proxy networks use. This is the path CellNet's
/// convolution layers run.
Tensor conv2d_forward_gemm(const Tensor& input, const Tensor& weight, const Tensor* bias,
                           int stride, int pad);

/// Lower one sample's padded receptive fields into a [Cin*K*K, Ho*Wo]
/// column matrix (exposed for testing).
void im2col(const Tensor& input, int sample, int kernel, int stride, int pad,
            std::vector<float>& columns, int out_h, int out_w);

struct Conv2dGrads {
  Tensor grad_input;
  Tensor grad_weight;
  Tensor grad_bias;  // empty if no bias
};

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight, bool has_bias,
                            int stride, int pad, const Tensor& grad_output);

/// ReLU. Mask (1 where input > 0) is produced by forward for reuse in
/// backward and by the linear-region proxy.
Tensor relu_forward(const Tensor& input, Tensor* mask_out = nullptr);
Tensor relu_backward(const Tensor& mask, const Tensor& grad_output);

/// Average pooling with square window, padding included in the divisor
/// (count_include_pad semantics, divisor = K*K).
Tensor avg_pool_forward(const Tensor& input, int kernel, int stride, int pad);
Tensor avg_pool_backward(const Shape& input_shape, int kernel, int stride, int pad,
                         const Tensor& grad_output);

/// Global average pooling: [N,C,H,W] -> [N,C].
Tensor global_avg_pool_forward(const Tensor& input);
Tensor global_avg_pool_backward(const Shape& input_shape, const Tensor& grad_output);

/// Fully connected: input [N,F], weight [Out,F], bias [Out] optional.
Tensor linear_forward(const Tensor& input, const Tensor& weight, const Tensor* bias);

struct LinearGrads {
  Tensor grad_input;
  Tensor grad_weight;
  Tensor grad_bias;  // empty if no bias
};

LinearGrads linear_backward(const Tensor& input, const Tensor& weight, bool has_bias,
                            const Tensor& grad_output);

/// Output spatial size helper (floor semantics).
int conv_out_size(int in, int kernel, int stride, int pad);

}  // namespace micronas::ops
