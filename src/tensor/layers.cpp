#include "src/tensor/layers.hpp"

#include <sstream>

#include "src/tensor/init.hpp"
#include "src/tensor/ops.hpp"

namespace micronas {

Conv2dLayer::Conv2dLayer(int cin, int cout, int kernel, int stride, int pad, bool bias)
    : cin_(cin),
      cout_(cout),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_(Shape{cout, cin, kernel, kernel}),
      grad_weight_(Shape{cout, cin, kernel, kernel}) {
  if (has_bias_) {
    bias_ = Tensor(Shape{cout});
    grad_bias_ = Tensor(Shape{cout});
  }
}

Tensor Conv2dLayer::forward(const Tensor& input) {
  cached_input_ = input;
  // GEMM path: bit-compatible semantics with ops::conv2d_forward (see
  // tests/test_ops_grad.cpp equivalence check), much faster per proxy
  // evaluation.
  return ops::conv2d_forward_gemm(input, weight_, has_bias_ ? &bias_ : nullptr, stride_, pad_);
}

Tensor Conv2dLayer::backward(const Tensor& grad_output) {
  auto g = ops::conv2d_backward(cached_input_, weight_, has_bias_, stride_, pad_, grad_output);
  grad_weight_.add_(g.grad_weight);
  if (has_bias_) grad_bias_.add_(g.grad_bias);
  return std::move(g.grad_input);
}

std::vector<std::span<float>> Conv2dLayer::param_spans() {
  std::vector<std::span<float>> v{weight_.data()};
  if (has_bias_) v.push_back(bias_.data());
  return v;
}

std::vector<std::span<float>> Conv2dLayer::grad_spans() {
  std::vector<std::span<float>> v{grad_weight_.data()};
  if (has_bias_) v.push_back(grad_bias_.data());
  return v;
}

void Conv2dLayer::init(Rng& rng) {
  init_kaiming_normal(weight_, cin_ * kernel_ * kernel_, rng);
  if (has_bias_) bias_.zero();
}

std::string Conv2dLayer::name() const {
  std::ostringstream ss;
  ss << "conv" << kernel_ << "x" << kernel_ << "(" << cin_ << "->" << cout_ << ",s" << stride_ << ")";
  return ss.str();
}

Tensor ReluLayer::forward(const Tensor& input) { return ops::relu_forward(input, &mask_); }

Tensor ReluLayer::backward(const Tensor& grad_output) { return ops::relu_backward(mask_, grad_output); }

Tensor AvgPoolLayer::forward(const Tensor& input) {
  input_shape_ = input.shape();
  return ops::avg_pool_forward(input, kernel_, stride_, pad_);
}

Tensor AvgPoolLayer::backward(const Tensor& grad_output) {
  return ops::avg_pool_backward(input_shape_, kernel_, stride_, pad_, grad_output);
}

std::string AvgPoolLayer::name() const {
  std::ostringstream ss;
  ss << "avgpool" << kernel_ << "x" << kernel_ << "(s" << stride_ << ")";
  return ss.str();
}

Tensor GlobalAvgPoolLayer::forward(const Tensor& input) {
  input_shape_ = input.shape();
  return ops::global_avg_pool_forward(input);
}

Tensor GlobalAvgPoolLayer::backward(const Tensor& grad_output) {
  return ops::global_avg_pool_backward(input_shape_, grad_output);
}

LinearLayer::LinearLayer(int in_features, int out_features, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_(Shape{out_features, in_features}),
      grad_weight_(Shape{out_features, in_features}) {
  if (has_bias_) {
    bias_ = Tensor(Shape{out_features});
    grad_bias_ = Tensor(Shape{out_features});
  }
}

Tensor LinearLayer::forward(const Tensor& input) {
  cached_input_ = input;
  return ops::linear_forward(input, weight_, has_bias_ ? &bias_ : nullptr);
}

Tensor LinearLayer::backward(const Tensor& grad_output) {
  auto g = ops::linear_backward(cached_input_, weight_, has_bias_, grad_output);
  grad_weight_.add_(g.grad_weight);
  if (has_bias_) grad_bias_.add_(g.grad_bias);
  return std::move(g.grad_input);
}

std::vector<std::span<float>> LinearLayer::param_spans() {
  std::vector<std::span<float>> v{weight_.data()};
  if (has_bias_) v.push_back(bias_.data());
  return v;
}

std::vector<std::span<float>> LinearLayer::grad_spans() {
  std::vector<std::span<float>> v{grad_weight_.data()};
  if (has_bias_) v.push_back(grad_bias_.data());
  return v;
}

void LinearLayer::init(Rng& rng) {
  init_kaiming_normal(weight_, in_features_, rng);
  if (has_bias_) bias_.zero();
}

std::string LinearLayer::name() const {
  std::ostringstream ss;
  ss << "linear(" << in_features_ << "->" << out_features_ << ")";
  return ss.str();
}

std::unique_ptr<Layer> make_conv(int cin, int cout, int kernel, int stride, int pad, bool bias) {
  return std::make_unique<Conv2dLayer>(cin, cout, kernel, stride, pad, bias);
}

}  // namespace micronas
