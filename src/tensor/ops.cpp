#include "src/tensor/ops.hpp"

#include <stdexcept>

namespace micronas::ops {

int conv_out_size(int in, int kernel, int stride, int pad) {
  const int eff = in + 2 * pad - kernel;
  if (eff < 0) throw std::invalid_argument("conv_out_size: kernel larger than padded input");
  return eff / stride + 1;
}

Tensor conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor* bias,
                      int stride, int pad) {
  if (input.shape().rank() != 4 || weight.shape().rank() != 4) {
    throw std::invalid_argument("conv2d: rank-4 input and weight required");
  }
  const int N = input.shape()[0], Cin = input.shape()[1], H = input.shape()[2], W = input.shape()[3];
  const int Cout = weight.shape()[0], K = weight.shape()[2];
  if (weight.shape()[1] != Cin || weight.shape()[3] != K) {
    throw std::invalid_argument("conv2d: weight shape inconsistent with input channels");
  }
  const int Ho = conv_out_size(H, K, stride, pad);
  const int Wo = conv_out_size(W, K, stride, pad);
  Tensor out(Shape{N, Cout, Ho, Wo});

  const auto x = input.data();
  const auto w = weight.data();
  auto y = out.data();

  for (int n = 0; n < N; ++n) {
    for (int co = 0; co < Cout; ++co) {
      const float b = bias ? (*bias)[static_cast<std::size_t>(co)] : 0.0F;
      for (int ho = 0; ho < Ho; ++ho) {
        for (int wo = 0; wo < Wo; ++wo) {
          double acc = b;
          const int h0 = ho * stride - pad;
          const int w0 = wo * stride - pad;
          for (int ci = 0; ci < Cin; ++ci) {
            for (int kh = 0; kh < K; ++kh) {
              const int hi = h0 + kh;
              if (hi < 0 || hi >= H) continue;
              const std::size_t xrow = ((static_cast<std::size_t>(n) * Cin + ci) * H + hi) * W;
              const std::size_t wrow = ((static_cast<std::size_t>(co) * Cin + ci) * K + kh) * K;
              for (int kw = 0; kw < K; ++kw) {
                const int wi = w0 + kw;
                if (wi < 0 || wi >= W) continue;
                acc += static_cast<double>(x[xrow + wi]) * w[wrow + kw];
              }
            }
          }
          y[((static_cast<std::size_t>(n) * Cout + co) * Ho + ho) * Wo + wo] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

void im2col(const Tensor& input, int sample, int kernel, int stride, int pad,
            std::vector<float>& columns, int out_h, int out_w) {
  const int Cin = input.shape()[1], H = input.shape()[2], W = input.shape()[3];
  const std::size_t cols = static_cast<std::size_t>(out_h) * out_w;
  columns.assign(static_cast<std::size_t>(Cin) * kernel * kernel * cols, 0.0F);
  const auto x = input.data();
  const std::size_t sample_base = static_cast<std::size_t>(sample) * Cin * H * W;

  std::size_t row = 0;
  for (int ci = 0; ci < Cin; ++ci) {
    for (int kh = 0; kh < kernel; ++kh) {
      for (int kw = 0; kw < kernel; ++kw, ++row) {
        float* dst = columns.data() + row * cols;
        for (int ho = 0; ho < out_h; ++ho) {
          const int hi = ho * stride - pad + kh;
          if (hi < 0 || hi >= H) {
            dst += out_w;
            continue;
          }
          const std::size_t src_row = sample_base + (static_cast<std::size_t>(ci) * H + hi) * W;
          for (int wo = 0; wo < out_w; ++wo, ++dst) {
            const int wi = wo * stride - pad + kw;
            if (wi >= 0 && wi < W) *dst = x[src_row + wi];
          }
        }
      }
    }
  }
}

Tensor conv2d_forward_gemm(const Tensor& input, const Tensor& weight, const Tensor* bias,
                           int stride, int pad) {
  if (input.shape().rank() != 4 || weight.shape().rank() != 4) {
    throw std::invalid_argument("conv2d_gemm: rank-4 input and weight required");
  }
  const int N = input.shape()[0], Cin = input.shape()[1], H = input.shape()[2], W = input.shape()[3];
  const int Cout = weight.shape()[0], K = weight.shape()[2];
  if (weight.shape()[1] != Cin || weight.shape()[3] != K) {
    throw std::invalid_argument("conv2d_gemm: weight shape inconsistent with input channels");
  }
  const int Ho = conv_out_size(H, K, stride, pad);
  const int Wo = conv_out_size(W, K, stride, pad);
  Tensor out(Shape{N, Cout, Ho, Wo});

  const std::size_t kdim = static_cast<std::size_t>(Cin) * K * K;
  const std::size_t cols = static_cast<std::size_t>(Ho) * Wo;
  const auto w = weight.data();
  auto y = out.data();
  std::vector<float> columns;

  for (int n = 0; n < N; ++n) {
    im2col(input, n, K, stride, pad, columns, Ho, Wo);
    // GEMM: out[n] = W[Cout x kdim] * columns[kdim x cols], with an
    // ikj loop order so the inner loop streams both operands.
    for (int co = 0; co < Cout; ++co) {
      float* orow = y.data() + (static_cast<std::size_t>(n) * Cout + co) * cols;
      const float b = bias ? (*bias)[static_cast<std::size_t>(co)] : 0.0F;
      for (std::size_t j = 0; j < cols; ++j) orow[j] = b;
      const float* wrow = w.data() + static_cast<std::size_t>(co) * kdim;
      for (std::size_t k = 0; k < kdim; ++k) {
        const float wk = wrow[k];
        if (wk == 0.0F) continue;
        const float* crow = columns.data() + k * cols;
        for (std::size_t j = 0; j < cols; ++j) orow[j] += wk * crow[j];
      }
    }
  }
  return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight, bool has_bias,
                            int stride, int pad, const Tensor& grad_output) {
  const int N = input.shape()[0], Cin = input.shape()[1], H = input.shape()[2], W = input.shape()[3];
  const int Cout = weight.shape()[0], K = weight.shape()[2];
  const int Ho = grad_output.shape()[2], Wo = grad_output.shape()[3];
  if (grad_output.shape()[0] != N || grad_output.shape()[1] != Cout) {
    throw std::invalid_argument("conv2d_backward: grad_output shape mismatch");
  }

  Conv2dGrads g;
  g.grad_input = Tensor(input.shape());
  g.grad_weight = Tensor(weight.shape());
  if (has_bias) g.grad_bias = Tensor(Shape{Cout});

  const auto x = input.data();
  const auto w = weight.data();
  const auto go = grad_output.data();
  auto gx = g.grad_input.data();
  auto gw = g.grad_weight.data();

  for (int n = 0; n < N; ++n) {
    for (int co = 0; co < Cout; ++co) {
      for (int ho = 0; ho < Ho; ++ho) {
        for (int wo = 0; wo < Wo; ++wo) {
          const float gy = go[((static_cast<std::size_t>(n) * Cout + co) * Ho + ho) * Wo + wo];
          if (gy == 0.0F) continue;
          if (has_bias) g.grad_bias[static_cast<std::size_t>(co)] += gy;
          const int h0 = ho * stride - pad;
          const int w0 = wo * stride - pad;
          for (int ci = 0; ci < Cin; ++ci) {
            for (int kh = 0; kh < K; ++kh) {
              const int hi = h0 + kh;
              if (hi < 0 || hi >= H) continue;
              const std::size_t xrow = ((static_cast<std::size_t>(n) * Cin + ci) * H + hi) * W;
              const std::size_t wrow = ((static_cast<std::size_t>(co) * Cin + ci) * K + kh) * K;
              for (int kw = 0; kw < K; ++kw) {
                const int wi = w0 + kw;
                if (wi < 0 || wi >= W) continue;
                gx[xrow + wi] += gy * w[wrow + kw];
                gw[wrow + kw] += gy * x[xrow + wi];
              }
            }
          }
        }
      }
    }
  }
  return g;
}

Tensor relu_forward(const Tensor& input, Tensor* mask_out) {
  Tensor out(input.shape());
  Tensor mask(input.shape());
  const auto x = input.data();
  auto y = out.data();
  auto m = mask.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool on = x[i] > 0.0F;
    y[i] = on ? x[i] : 0.0F;
    m[i] = on ? 1.0F : 0.0F;
  }
  if (mask_out) *mask_out = std::move(mask);
  return out;
}

Tensor relu_backward(const Tensor& mask, const Tensor& grad_output) {
  require_same_shape(mask, grad_output, "relu_backward");
  Tensor gx(grad_output.shape());
  const auto m = mask.data();
  const auto go = grad_output.data();
  auto g = gx.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = m[i] * go[i];
  return gx;
}

Tensor avg_pool_forward(const Tensor& input, int kernel, int stride, int pad) {
  const int N = input.shape()[0], C = input.shape()[1], H = input.shape()[2], W = input.shape()[3];
  const int Ho = conv_out_size(H, kernel, stride, pad);
  const int Wo = conv_out_size(W, kernel, stride, pad);
  Tensor out(Shape{N, C, Ho, Wo});
  const float inv = 1.0F / static_cast<float>(kernel * kernel);
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      for (int ho = 0; ho < Ho; ++ho) {
        for (int wo = 0; wo < Wo; ++wo) {
          double acc = 0.0;
          for (int kh = 0; kh < kernel; ++kh) {
            const int hi = ho * stride - pad + kh;
            if (hi < 0 || hi >= H) continue;
            for (int kw = 0; kw < kernel; ++kw) {
              const int wi = wo * stride - pad + kw;
              if (wi < 0 || wi >= W) continue;
              acc += input.at(n, c, hi, wi);
            }
          }
          out.at(n, c, ho, wo) = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  return out;
}

Tensor avg_pool_backward(const Shape& input_shape, int kernel, int stride, int pad,
                         const Tensor& grad_output) {
  const int N = input_shape[0], C = input_shape[1], H = input_shape[2], W = input_shape[3];
  const int Ho = grad_output.shape()[2], Wo = grad_output.shape()[3];
  Tensor gx(input_shape);
  const float inv = 1.0F / static_cast<float>(kernel * kernel);
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      for (int ho = 0; ho < Ho; ++ho) {
        for (int wo = 0; wo < Wo; ++wo) {
          const float gy = grad_output.at(n, c, ho, wo) * inv;
          if (gy == 0.0F) continue;
          for (int kh = 0; kh < kernel; ++kh) {
            const int hi = ho * stride - pad + kh;
            if (hi < 0 || hi >= H) continue;
            for (int kw = 0; kw < kernel; ++kw) {
              const int wi = wo * stride - pad + kw;
              if (wi < 0 || wi >= W) continue;
              gx.at(n, c, hi, wi) += gy;
            }
          }
        }
      }
    }
  }
  return gx;
}

Tensor global_avg_pool_forward(const Tensor& input) {
  const int N = input.shape()[0], C = input.shape()[1], H = input.shape()[2], W = input.shape()[3];
  Tensor out(Shape{N, C});
  const float inv = 1.0F / static_cast<float>(H * W);
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      double acc = 0.0;
      for (int h = 0; h < H; ++h) {
        for (int w = 0; w < W; ++w) acc += input.at(n, c, h, w);
      }
      out.at(n, c) = static_cast<float>(acc) * inv;
    }
  }
  return out;
}

Tensor global_avg_pool_backward(const Shape& input_shape, const Tensor& grad_output) {
  const int N = input_shape[0], C = input_shape[1], H = input_shape[2], W = input_shape[3];
  Tensor gx(input_shape);
  const float inv = 1.0F / static_cast<float>(H * W);
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      const float gy = grad_output.at(n, c) * inv;
      for (int h = 0; h < H; ++h) {
        for (int w = 0; w < W; ++w) gx.at(n, c, h, w) = gy;
      }
    }
  }
  return gx;
}

Tensor linear_forward(const Tensor& input, const Tensor& weight, const Tensor* bias) {
  if (input.shape().rank() != 2 || weight.shape().rank() != 2) {
    throw std::invalid_argument("linear: rank-2 input/weight required");
  }
  const int N = input.shape()[0], F = input.shape()[1];
  const int Out = weight.shape()[0];
  if (weight.shape()[1] != F) throw std::invalid_argument("linear: weight/in feature mismatch");
  Tensor out(Shape{N, Out});
  for (int n = 0; n < N; ++n) {
    for (int o = 0; o < Out; ++o) {
      double acc = bias ? (*bias)[static_cast<std::size_t>(o)] : 0.0F;
      for (int f = 0; f < F; ++f) acc += static_cast<double>(input.at(n, f)) * weight.at(o, f);
      out.at(n, o) = static_cast<float>(acc);
    }
  }
  return out;
}

LinearGrads linear_backward(const Tensor& input, const Tensor& weight, bool has_bias,
                            const Tensor& grad_output) {
  const int N = input.shape()[0], F = input.shape()[1];
  const int Out = weight.shape()[0];
  LinearGrads g;
  g.grad_input = Tensor(input.shape());
  g.grad_weight = Tensor(weight.shape());
  if (has_bias) g.grad_bias = Tensor(Shape{Out});
  for (int n = 0; n < N; ++n) {
    for (int o = 0; o < Out; ++o) {
      const float gy = grad_output.at(n, o);
      if (gy == 0.0F) continue;
      if (has_bias) g.grad_bias[static_cast<std::size_t>(o)] += gy;
      for (int f = 0; f < F; ++f) {
        g.grad_input.at(n, f) += gy * weight.at(o, f);
        g.grad_weight.at(o, f) += gy * input.at(n, f);
      }
    }
  }
  return g;
}

}  // namespace micronas::ops
