// Dense float tensor in NCHW layout.
//
// This is the numerical substrate for the zero-shot proxies: the NTK
// condition number requires per-sample parameter Jacobians, so every
// layer built on top of Tensor implements an explicit backward pass
// (no external autograd framework is available in this environment).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace micronas {

/// Shape of a tensor; rank 1..4. NCHW convention for rank-4.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int> dims);
  explicit Shape(std::vector<int> dims);

  int rank() const { return static_cast<int>(dims_.size()); }
  int operator[](int i) const;
  std::size_t numel() const;
  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }
  const std::vector<int>& dims() const { return dims_; }
  std::string to_string() const;

 private:
  std::vector<int> dims_;
};

/// Owning dense float tensor. Value semantics; contiguous row-major
/// storage with the last dimension fastest (NCHW for rank-4).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);         // zero-initialized
  Tensor(Shape shape, float fill);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor from_vector(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// NCHW accessors (rank-4 only; bounds-checked in debug builds).
  float& at(int n, int c, int h, int w);
  float at(int n, int c, int h, int w) const;
  /// Rank-2 accessor (rows, cols).
  float& at(int r, int c);
  float at(int r, int c) const;

  std::size_t offset(int n, int c, int h, int w) const;

  void fill(float v);
  void zero() { fill(0.0F); }

  /// Elementwise in-place operations.
  Tensor& add_(const Tensor& other);           // this += other (same shape)
  Tensor& scale_(float s);                     // this *= s
  Tensor& axpy_(float a, const Tensor& x);     // this += a * x

  /// Reductions.
  float sum() const;
  float abs_max() const;
  double dot(const Tensor& other) const;       // throws on shape mismatch
  double l2_norm() const;

  /// View a single sample n of a rank-4 tensor as a new rank-4 tensor
  /// with N == 1 (copies; the library favors clarity over aliasing).
  Tensor slice_sample(int n) const;

  std::string to_string(int max_items = 16) const;

 private:
  void check_rank4() const;
  Shape shape_;
  std::vector<float> data_;
};

/// Throws std::invalid_argument unless the two shapes match.
void require_same_shape(const Tensor& a, const Tensor& b, const char* what);

}  // namespace micronas
