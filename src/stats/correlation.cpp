#include "src/stats/correlation.hpp"

#include <cmath>
#include <stdexcept>

#include "src/stats/ranking.hpp"

namespace micronas::stats {

namespace {
void check_sizes(std::span<const double> x, std::span<const double> y, const char* what) {
  if (x.size() != y.size()) throw std::invalid_argument(std::string(what) + ": size mismatch");
  if (x.size() < 2) throw std::invalid_argument(std::string(what) + ": need at least 2 points");
}
}  // namespace

double kendall_tau(std::span<const double> x, std::span<const double> y) {
  check_sizes(x, y, "kendall_tau");
  const std::size_t n = x.size();
  // O(n²) pair scan with tau-b tie correction; n in our experiments is
  // a few hundred to a few thousand, well within budget.
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) {
        ++ties_x;
        ++ties_y;
      } else if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0.0) == (dy > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = 0.5 * static_cast<double>(n) * (static_cast<double>(n) - 1.0);
  const double denom = std::sqrt((n0 - static_cast<double>(ties_x)) * (n0 - static_cast<double>(ties_y)));
  if (denom == 0.0) return 0.0;  // all values tied in one series
  return static_cast<double>(concordant - discordant) / denom;
}

double spearman_rho(std::span<const double> x, std::span<const double> y) {
  check_sizes(x, y, "spearman_rho");
  const auto rx = average_ranks(x);
  const auto ry = average_ranks(y);
  return pearson_r(rx, ry);
}

double pearson_r(std::span<const double> x, std::span<const double> y) {
  check_sizes(x, y, "pearson_r");
  const std::size_t n = x.size();
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom == 0.0) return 0.0;
  return sxy / denom;
}

}  // namespace micronas::stats
