#include "src/stats/ranking.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace micronas::stats {

std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // positions i..j (0-based) share the average 1-based rank.
    const double avg = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

namespace {
std::vector<int> ordinal_ranks(std::span<const double> values, bool descending) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return descending ? values[a] > values[b] : values[a] < values[b];
    return a < b;
  });
  std::vector<int> ranks(n, 0);
  for (std::size_t pos = 0; pos < n; ++pos) ranks[order[pos]] = static_cast<int>(pos);
  return ranks;
}
}  // namespace

std::vector<int> ordinal_ranks_ascending(std::span<const double> values) {
  return ordinal_ranks(values, /*descending=*/false);
}

std::vector<int> ordinal_ranks_descending(std::span<const double> values) {
  return ordinal_ranks(values, /*descending=*/true);
}

std::size_t argmin(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("argmin: empty range");
  return static_cast<std::size_t>(std::min_element(values.begin(), values.end()) - values.begin());
}

std::size_t argmax(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("argmax: empty range");
  return static_cast<std::size_t>(std::max_element(values.begin(), values.end()) - values.begin());
}

}  // namespace micronas::stats
