// Rank correlation statistics.
//
// Kendall-τ is the paper's headline metric (Fig. 2a/2b measure how well
// a proxy *ranks* architectures against their trained accuracy); the
// tau-b variant handles ties, which proxies like FLOPs produce often.
#pragma once

#include <span>
#include <vector>

namespace micronas::stats {

/// Kendall tau-b (tie-corrected). Throws on size mismatch or n < 2.
double kendall_tau(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (average ranks for ties).
double spearman_rho(std::span<const double> x, std::span<const double> y);

/// Pearson linear correlation.
double pearson_r(std::span<const double> x, std::span<const double> y);

/// Convenience overloads for vectors.
inline double kendall_tau(const std::vector<double>& x, const std::vector<double>& y) {
  return kendall_tau(std::span<const double>(x), std::span<const double>(y));
}
inline double spearman_rho(const std::vector<double>& x, const std::vector<double>& y) {
  return spearman_rho(std::span<const double>(x), std::span<const double>(y));
}
inline double pearson_r(const std::vector<double>& x, const std::vector<double>& y) {
  return pearson_r(std::span<const double>(x), std::span<const double>(y));
}

}  // namespace micronas::stats
