#include "src/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace micronas::stats {

Summary summarize(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("summarize: empty input");
  Summary s;
  s.count = values.size();
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count >= 2) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  s.median = percentile(values, 50.0);
  return s;
}

double percentile(std::span<const double> values, double pct) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (pct < 0.0 || pct > 100.0) throw std::invalid_argument("percentile: pct out of [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mape(std::span<const double> predicted, std::span<const double> reference) {
  if (predicted.size() != reference.size()) throw std::invalid_argument("mape: size mismatch");
  if (predicted.empty()) throw std::invalid_argument("mape: empty input");
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (reference[i] == 0.0) continue;
    acc += std::abs(predicted[i] - reference[i]) / std::abs(reference[i]);
    ++n;
  }
  if (n == 0) throw std::invalid_argument("mape: all references are zero");
  return acc / static_cast<double>(n);
}

}  // namespace micronas::stats
