// Descriptive statistics for experiment reporting.
#pragma once

#include <span>
#include <vector>

namespace micronas::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(std::span<const double> values);

/// Percentile in [0,100] by linear interpolation on the sorted values.
double percentile(std::span<const double> values, double pct);

/// Mean absolute percentage error of predictions vs references (skips
/// zero references); returned as a fraction (0.05 == 5 %).
double mape(std::span<const double> predicted, std::span<const double> reference);

}  // namespace micronas::stats
