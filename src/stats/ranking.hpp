// Rank transforms used by the hybrid objective and Spearman's rho.
#pragma once

#include <span>
#include <vector>

namespace micronas::stats {

/// Average ranks (1-based): ties receive the mean of their positions.
std::vector<double> average_ranks(std::span<const double> values);

/// Ordinal ranks (0-based) of `values` when sorted ascending; ties
/// broken by original index for determinism.
std::vector<int> ordinal_ranks_ascending(std::span<const double> values);

/// Ordinal ranks (0-based) when sorted descending.
std::vector<int> ordinal_ranks_descending(std::span<const double> values);

/// Index of the minimum / maximum element (first on ties).
std::size_t argmin(std::span<const double> values);
std::size_t argmax(std::span<const double> values);

}  // namespace micronas::stats
