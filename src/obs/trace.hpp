// Low-overhead scoped tracing: RAII spans recorded into per-thread
// lock-free ring buffers, exported as Chrome trace-event JSON.
//
// Design constraints, in priority order:
//
//   1. Disabled tracing must cost ONE predicted branch per span site
//      (a relaxed atomic load + compare). No clock reads, no
//      allocation, no stores. The `obs.trace_overhead` bench case
//      measures this and CI gates it, because spans sit inside the
//      int8 executor's per-node loop — the hottest serving path.
//   2. Enabled tracing must never block the traced thread. Each thread
//      owns a single-writer ring buffer: recording is two atomic
//      flag/cursor stores around plain writes, and when the ring is
//      full the oldest events are overwritten (drop count reported).
//      The only lock is taken once per thread, at ring registration.
//   3. Export must be race-free without slowing recording down. A
//      snapshot first disables tracing (spans finishing afterwards see
//      the flag and skip recording), then waits for each ring's
//      in-flight record to retire via its `writing` flag — the classic
//      store-buffering handshake, seq_cst on both sides — and only
//      then reads the slots. tests/test_obs.cpp runs this concurrently
//      under TSan.
//
// Span attribution: every event carries the recording thread's stable
// small integer tid (assigned at ring registration, not the OS id) and
// a per-thread monotone sequence number, so nesting and ordering can
// be reconstructed per thread even after ring wraparound.
//
// The export format is the Chrome trace-event JSON "X" (complete)
// event flavor — loadable in chrome://tracing and Perfetto — built on
// the strict serializer in src/common/json.hpp, so a written trace
// always re-parses (round-trip asserted by tests/test_obs.cpp and the
// CI observability job).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.hpp"

namespace micronas::obs {

/// One completed span. `name` and tag keys must be string literals (or
/// otherwise outlive the trace) — recording never copies them.
struct TraceEvent {
  const char* name = "";
  double start_us = 0.0;  // since the trace epoch (first enable)
  double dur_us = 0.0;
  int tid = 0;            // stable per-thread id, 0-based registration order
  std::uint64_t seq = 0;  // per-thread monotone sequence number
  std::vector<std::pair<const char*, std::string>> tags;
};

/// Global recording switch. Spans constructed while disabled are
/// permanent no-ops; spans that straddle a disable skip recording.
void enable_tracing();
void disable_tracing();
bool tracing_enabled();

/// Drop every recorded event (rings stay registered, tids are stable).
void reset_trace();

/// Per-thread ring capacity for rings registered *after* the call
/// (existing rings keep theirs). Rounded up to a power of two;
/// default 1 << 16 events.
void set_ring_capacity(std::size_t events);

/// Microseconds since the trace epoch (steady clock). The epoch is
/// pinned at first use — first enable_tracing() or first now_us()
/// call (executor profiling reads the clock with tracing disabled).
double now_us();

/// Events dropped to ring wraparound since the last reset, summed over
/// all rings (quiesces writers like snapshot_trace).
std::uint64_t dropped_events();

/// Stop-the-world snapshot: disables tracing, quiesces every ring's
/// writer, and returns all retained events sorted by (tid, seq).
/// Recording can be re-enabled afterwards; the epoch is preserved.
std::vector<TraceEvent> snapshot_trace();

/// snapshot_trace() rendered as a Chrome trace-event document:
/// {"displayTimeUnit": "ms", "traceEvents": [{"ph": "X", ...}, ...]}
/// with thread-name metadata ("M") events for each registered ring.
json::Json chrome_trace_json();

/// chrome_trace_json() written via the strict serializer; throws
/// std::runtime_error on I/O failure.
void write_chrome_trace(const std::string& path);

namespace detail {
/// Record a completed span into the calling thread's ring. Callers
/// must have checked tracing_enabled() (the Span does); the function
/// re-checks under the writing flag so exports never tear.
void record(TraceEvent&& event);
/// The calling thread's stable tid (registers a ring on first use).
int thread_id();
}  // namespace detail

/// RAII scoped span. Construction samples the clock only when tracing
/// is enabled; destruction records the completed event. Tags attach
/// op-level attribution (kernel variant, bytes, strip count, ...) and
/// are ignored — at zero cost beyond the call — on inactive spans.
///
///   obs::Span span("rt.node");
///   if (span.active()) span.tag("kernel", "im2col_gemm");
class Span {
 public:
  explicit Span(const char* name) : active_(tracing_enabled()) {
    if (active_) {
      name_ = name;
      start_us_ = now_us();
    }
  }
  ~Span() {
    if (active_) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording (tracing was enabled at
  /// construction). Guard tag computation on this so disabled spans
  /// stay a single branch.
  bool active() const { return active_; }

  /// Attach "key": value attribution. `key` must be a string literal.
  void tag(const char* key, std::string value) {
    if (active_) tags_.emplace_back(key, std::move(value));
  }
  void tag(const char* key, long long value) {
    if (active_) tags_.emplace_back(key, std::to_string(value));
  }

 private:
  void finish();

  bool active_;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  std::vector<std::pair<const char*, std::string>> tags_;
};

}  // namespace micronas::obs

#define MICRONAS_OBS_CONCAT_(a, b) a##b
#define MICRONAS_OBS_CONCAT(a, b) MICRONAS_OBS_CONCAT_(a, b)

/// Anonymous scoped span: OBS_SPAN("compile.lower"); — for scopes that
/// need timing but no tags.
#define OBS_SPAN(name) \
  ::micronas::obs::Span MICRONAS_OBS_CONCAT(obs_span_, __LINE__)(name)
